#!/usr/bin/env bash
# Builds bench_kernels and runs the message-passing comparison: the
# seed full-scan scatter vs the CSR segment-plan kernels (DESIGN.md
# §12) at feature widths 1/16/64, serial and pooled. Emits the table
# on stdout and the machine-readable report to
# BENCH_message_passing.json (override with OUT=path). THREADS
# defaults to 8, matching the determinism contract's widest test
# point.
#
# Usage: scripts/run_bench_message_passing.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
THREADS="${THREADS:-8}"
OUT="${OUT:-BENCH_message_passing.json}"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target bench_kernels > /dev/null

"${BUILD_DIR}/bench/bench_kernels" --mp --threads "${THREADS}" \
  --mp-json "${OUT}"
