#!/usr/bin/env bash
# Lints every metric name registered through MetricsRegistry::
# Get{Counter,Gauge,Histogram} in src/ against the area/object/unit
# convention the exporters and dashboards key on: at least three
# lowercase [a-z0-9_] segments separated by '/', e.g. "serve/e2e/us"
# or "kernel/matmul/calls".
#
# Dynamically composed names (some_prefix + "/unit") are validated on
# their literal tail, which must itself be one or more '/'-led
# segments; the prefix side is covered by the convention that
# composed prefixes are "area/<dynamic-object>" ("kernel/" + op,
# "slo/" + name). A registration whose argument carries no literal at
# all fails the lint — names must be greppable.
#
# Run from the repo root (the ctest "lint" label does). Exits non-zero
# on any violation, printing file:line diagnostics.
set -u
cd "$(dirname "$0")/.."

fail=0
checked=0

while IFS= read -r hit; do
  file=${hit%%:*}
  rest=${hit#*:}
  lineno=${rest%%:*}
  text=${rest#*:}
  while IFS= read -r call; do
    [ -n "$call" ] || continue
    arg=${call#*(}
    checked=$((checked + 1))
    if printf '%s' "$arg" | grep -Eq '^"[^"]*"$'; then
      # Single literal: the full name must be area/object/unit.
      name=${arg#\"}
      name=${name%\"}
      if ! printf '%s' "$name" | grep -Eq '^[a-z0-9_]+(/[a-z0-9_]+){2,}$'; then
        echo "$file:$lineno: metric name '$name' violates area/object/unit" >&2
        fail=1
      fi
    else
      # Composed: the trailing literal must be a '/'-led segment chain.
      suffix=$(printf '%s' "$arg" | grep -Eo '"[^"]*"' | tail -n1)
      if [ -z "$suffix" ]; then
        echo "$file:$lineno: metric registration has no literal name part:" \
             "$arg" >&2
        fail=1
        continue
      fi
      suffix=${suffix#\"}
      suffix=${suffix%\"}
      if ! printf '%s' "$suffix" | grep -Eq '^(/[a-z0-9_]+)+$'; then
        echo "$file:$lineno: composed metric suffix '$suffix' must be" \
             "'/'-led lowercase segments" >&2
        fail=1
      fi
    fi
  done < <(printf '%s\n' "$text" | grep -Eo 'Get(Counter|Gauge|Histogram)\([^)]*' || true)
done < <(grep -rnE 'Get(Counter|Gauge|Histogram)\(' src \
           --include='*.cc' --include='*.h' \
         | grep -v '^src/obs/metrics\.')

# Family-presence check: the scheduler's shed accounting and the
# rollout manager's version accounting are exporter/dashboard contracts
# — every name below must stay registered somewhere in src/. Renaming
# one silently breaks alerts keyed on the old name, so the rename must
# land here in the same change.
required_names="
serve/shed/total
serve/shed/queue_full
serve/shed/quota
serve/shed/deadline
serve/shed/slo
serve/sched/submitted
serve/sched/admitted
serve/sched/dispatched
serve/version/current
serve/version/rollouts
serve/version/rollbacks
serve/version/requests
serve/quant/publishes
serve/quant/params
serve/quant/bytes
kernel/simd/vector_calls
kernel/simd/scalar_calls
train/plan/replays
train/plan/retraces
train/plan/fallbacks
train/plan/arena_bytes
"
for name in $required_names; do
  checked=$((checked + 1))
  if ! grep -rqF "\"$name\"" src --include='*.cc' --include='*.h'; then
    echo "required metric '$name' is no longer registered in src/" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_metric_names: FAILED" >&2
  exit 1
fi
echo "check_metric_names: OK ($checked registrations checked)"
