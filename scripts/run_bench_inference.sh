#!/usr/bin/env bash
# Builds bench_inference and runs the serving-path comparison: taped vs
# no-grad forwards, the scalar-vs-SIMD forward (DESIGN.md §16), then
# the eager vs plan-then-execute engine (DESIGN.md §13) and the int8
# quantized engine on latency percentiles and pooled throughput. fp32
# engine outputs are checked bitwise against the tape-based reference;
# the quantized engine is checked against the committed logit
# tolerance. Emits the tables on stdout and the machine-readable
# report to BENCH_inference.json (override with OUT=path). THREADS
# defaults to 4, matching the benchmark's default backend pool.
#
# Usage: scripts/run_bench_inference.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
THREADS="${THREADS:-4}"
OUT="${OUT:-BENCH_inference.json}"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target bench_inference > /dev/null

"${BUILD_DIR}/bench/bench_inference" --threads "${THREADS}" \
  --json "${OUT}"
