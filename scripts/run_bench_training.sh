#!/usr/bin/env bash
# Builds bench_training and runs the eager vs plan-then-execute
# training-step comparison (DESIGN.md §17): steady-state step latency,
# steady-state heap tensor allocations per step (must be exactly zero
# compiled), and per-bucket replay/retrace/fallback counts. Compiled
# training is checked bitwise against the eager run (final parameters,
# Adam moments, loss curve) — the binary exits nonzero on any
# mismatch. Emits the table on stdout and the machine-readable report
# to BENCH_training.json (override with OUT=path). THREADS defaults to
# 1: training steps are latency-bound on the trainer thread, and the
# bitwise contract holds at any thread count (ctest's compiled label
# re-checks under OODGNN_THREADS=4).
#
# Usage: scripts/run_bench_training.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
THREADS="${THREADS:-1}"
OUT="${OUT:-BENCH_training.json}"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target bench_training > /dev/null

"${BUILD_DIR}/bench/bench_training" --threads "${THREADS}" \
  --json "${OUT}"
