#!/usr/bin/env bash
# Builds bench_serving and runs the open-loop serving load generator:
# capacity calibration, then Poisson arrival tiers at 0.5x / 0.8x /
# 1.2x of the calibrated saturation rate through the eager and the
# plan-then-execute engines, with a heavy-tailed graph-size mix.
# Per tier it reports exact client-side span percentiles (p50/p95/p99
# for queue wait, batch build, execute and e2e), goodput (within-SLO
# completions/sec) and the queue-depth trajectory — the committed
# reference lives in BENCH_serving.json (override with OUT=path).
#
# THREADS defaults to 1 (the backend pool; workers batch on top of it),
# REQUESTS to 400 arrivals per tier.
#
# Usage: scripts/run_bench_serving.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
THREADS="${THREADS:-1}"
REQUESTS="${REQUESTS:-400}"
OUT="${OUT:-BENCH_serving.json}"

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j --target bench_serving > /dev/null

"${BUILD_DIR}/bench/bench_serving" --threads "${THREADS}" \
  --requests "${REQUESTS}" --json "${OUT}"
