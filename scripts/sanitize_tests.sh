#!/usr/bin/env bash
# Builds the project under a sanitizer and runs the hardened-surface
# suites (ctest label "sanitize": serialize_test, kernels_test,
# checkpoint_test, serve_test, golden_test, exec_plan_test — the
# untrusted-byte parsers, the parallel kernels, the concurrent
# inference engine, and the arena allocator / plan record-replay layer,
# whose pointer arithmetic over shared slabs is exactly what ASan is
# for). The "thread" build is the TSan pass over the engine's request
# queue, shared-weight locking, and plan/arena swaps.
#
# Usage: scripts/sanitize_tests.sh [address|undefined|thread]
set -euo pipefail

SANITIZER="${1:-address}"
BUILD_DIR="build-${SANITIZER}"

cmake -B "${BUILD_DIR}" -S . -DOODGNN_SANITIZE="${SANITIZER}"
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" -L sanitize --output-on-failure -j
