// Reproduces §4.8 (number of parameters): OOD-GNN's trainable
// parameters come from the GIN encoder + classifier only (the graph
// weights are per-sample scalars, not model parameters), so it matches
// GIN and is far smaller than PNA at identical hyper-parameters. The
// paper quotes ≈0.9M for GIN/OOD-GNN vs 6.0M for PNA at d=300, L=5 on
// OGBG-MOLBACE.

#include <cstdio>
#include <vector>

#include "src/gnn/model_zoo.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace oodgnn {
namespace {

int64_t CountParams(Method method, int feature_dim, int hidden, int layers,
                    int output_dim) {
  Rng rng(1);
  EncoderConfig config;
  config.feature_dim = feature_dim;
  config.hidden_dim = hidden;
  config.num_layers = layers;
  GraphPredictionModel model(method, config, output_dim, &rng);
  return model.NumParameters();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  // OGBG-MOLBACE-like shapes: 13 input features, 1 output task.
  const int feature_dim = flags.GetInt("features", 13);
  const int output_dim = flags.GetInt("outputs", 1);

  std::printf("=== §4.8: parameter counts (OGBG-MOLBACE shapes) ===\n");
  struct Setting {
    const char* label;
    int hidden;
    int layers;
  };
  const std::vector<Setting> settings = {
      {"paper (d=300, L=5)", 300, 5},
      {"bench default (d=32, L=3)", 32, 3},
  };
  for (const Setting& setting : settings) {
    std::printf("--- %s ---\n", setting.label);
    ResultTable table({"Method", "#Parameters"});
    for (Method method :
         {Method::kGin, Method::kOodGnn, Method::kGcn, Method::kPna,
          Method::kFactorGcn, Method::kSagPool}) {
      char count[32];
      std::snprintf(count, sizeof(count), "%lld",
                    static_cast<long long>(
                        CountParams(method, feature_dim, setting.hidden,
                                    setting.layers, output_dim)));
      table.AddRow({MethodName(method), count});
    }
    table.Print();
  }
  std::printf(
      "Expected shape: OOD-GNN == GIN (reweighting adds no model "
      "parameters); PNA is several times larger.\n");
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
