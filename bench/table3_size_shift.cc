// Reproduces Table 3: graph classification accuracy (%) on the
// molecule/social datasets under graph-size distribution shift
// (COLLAB_35, PROTEINS_25, D&D_200, D&D_300 — trained on small graphs,
// tested on strictly larger ones).
//
// Flags: --full, --seeds N, --epochs N, --scale F, --hidden D.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/2, /*epochs=*/16,
                    /*scale=*/0.35, &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  const std::vector<std::string> names = {"COLLAB", "PROTEINS_25", "DD_200",
                                          "DD_300"};
  std::vector<GraphDataset> datasets;
  for (const std::string& name : names) {
    datasets.push_back(MakeDatasetByName(name, options.data_scale, data_seed));
  }

  std::printf(
      "=== Table 3: test accuracy (%%) under size shift "
      "(seeds=%d, epochs=%d) ===\n",
      options.seeds, options.train.epochs);
  {
    ResultTable stats({"Dataset", "#Train/Test", "#NodesTrain", "#NodesTest"});
    for (const GraphDataset& ds : datasets) {
      int train_min = 1 << 30, train_max = 0, test_min = 1 << 30,
          test_max = 0;
      for (size_t idx : ds.train_idx) {
        train_min = std::min(train_min, ds.graphs[idx].num_nodes());
        train_max = std::max(train_max, ds.graphs[idx].num_nodes());
      }
      for (size_t idx : ds.test_idx) {
        test_min = std::min(test_min, ds.graphs[idx].num_nodes());
        test_max = std::max(test_max, ds.graphs[idx].num_nodes());
      }
      char counts[64], ntr[32], nte[32];
      std::snprintf(counts, sizeof(counts), "%zu/%zu", ds.train_idx.size(),
                    ds.test_idx.size());
      std::snprintf(ntr, sizeof(ntr), "%d-%d", train_min, train_max);
      std::snprintf(nte, sizeof(nte), "%d-%d", test_min, test_max);
      stats.AddRow({ds.name, counts, ntr, nte});
    }
    stats.Print();
  }

  Timer timer;
  ResultTable table(
      {"Method", "COLLAB_35", "PROTEINS_25", "DD_200", "DD_300"});
  for (Method method : AllMethods()) {
    std::vector<std::string> row = {MethodName(method)};
    for (const GraphDataset& dataset : datasets) {
      MethodScores scores =
          RunSeeds(method, dataset, options.train, options.seeds);
      row.push_back(FormatCell(scores.test, true));
    }
    table.AddRow(row);
    std::printf("  [%s done, %.0fs elapsed]\n", MethodName(method),
                timer.ElapsedSeconds());
  }
  table.Print();
  if (flags.Has("csv")) {
    const std::string csv_path = flags.GetString("csv", "");
    if (WriteStringToFile(csv_path, table.ToCsv())) {
      std::printf("[csv written to %s]\n", csv_path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
