// Open-loop load generator for the serving path (src/serve) and its
// request-span telemetry (src/obs/span.h).
//
// Unlike bench_inference's closed-loop throughput run (submitters wait
// for completions before issuing more work), this bench drives the
// engine the way production traffic does: arrivals follow a Poisson
// process at a fixed offered rate, independent of how fast the engine
// drains them. Under overload the queue grows and latency explodes —
// exactly the regime the SLO trackers, shed counters and queue-depth
// gauges exist to expose, and one a closed-loop bench can never reach.
//
// Traffic is a three-tenant mix with distinct scheduling policies, so
// the shed machinery actually fires at overload:
//
//   pro    30%  priority 0, per-request deadline (--deadline-us):
//               expires at dispatch when the queue ramp exceeds it
//   free   60%  priority 1, token-bucket quota at 0.45x the calibrated
//               capacity: clean at 0.5x, progressively shed above
//   batch  10%  priority 2, unprotected: shed outright while the SLO
//               burn-rate signal exceeds 1 (--shed-on-slo)
//
// Procedure:
//   1. Calibrate capacity: closed-loop bursts through the eager
//      engine. The phase is iteration-bound (--calib graphs per round,
//      --calib-rounds rounds) and takes the best round, so a slow or
//      noisy CI machine lengthens the run but cannot skew the measured
//      rate the way a single wall-time-bound burst could.
//   2. For each mode (eager, compiled) and each rate tier
//      (0.5x / 0.8x / 1.2x of capacity — the last deliberately past
//      saturation), replay the same Poisson arrival schedule and
//      heavy-tailed graph mix through a fresh engine. Halfway through
//      each tier a hot weight rollout is published, so the per-version
//      request counts show the staggered swap under live traffic.
//   3. Report, per tier: exact client-side percentiles (p50/p95/p99)
//      for every span phase over the served requests, goodput
//      (within-SLO completions/sec), shed rate with per-reason and
//      per-tenant breakdowns, per-version serve counts, and the
//      queue-depth trajectory sampled from the engine's live gauge.
//
// Percentiles come from RequestSpan mirrors captured via
// Submit(graph, options, &span) — exact timestamps, not the engine
// histograms' factor-of-2 buckets. Each tier gets a private
// MetricsRegistry so per-tier gauges never bleed across runs.
//
// Flags: --threads N        compute-backend pool size (default 1)
//        --workers N        engine workers (default 2)
//        --batch N          micro-batch size cutoff (default 16)
//        --wait-us N        batching window in microseconds (default 200)
//        --max-inflight N   per-worker slot budget (default = --batch;
//                           continuous batching tops slots up from the
//                           admission queue every iteration)
//        --requests N       arrivals per tier (default 400; long enough
//                           that the overload tier's queue ramp pushes
//                           e2e past the SLO and goodput detaches from
//                           raw throughput)
//        --calib N          graphs per calibration round (default 512)
//        --calib-rounds N   calibration rounds; best kept (default 3)
//        --slo-ms N         e2e goodput threshold in ms (default 50 —
//                           comfortably above steady-state p99 but
//                           inside the overload tier's queue ramp)
//        --deadline-us N    pro-tenant relative deadline (default
//                           --slo-ms in us)
//        --shed-on-slo B    burn-rate shedding of batch traffic
//                           (default true)
//        --seed N           arrival-schedule / graph-mix seed (default 42)
//        --smoke            tiny deterministic run asserting monotone
//                           tier rates and request conservation; exits
//                           nonzero on violation (wired into ctest)
//        --json PATH        machine-readable report
//                           (scripts/run_bench_serving.sh wraps this
//                           into BENCH_serving.json)
//        --metrics-out P    stream the global registry to P.prom/P.jsonl
//        --metrics-json P   final global-registry snapshot at exit

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/serve/inference.h"
#include "src/serve/scheduler.h"
#include "src/serve/version.h"
#include "src/tensor/backend.h"
#include "src/train/experiment.h"
#include "src/tensor/tensor.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct PhaseQuantiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

PhaseQuantiles Quantiles(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  PhaseQuantiles q;
  q.p50 = Percentile(values, 50);
  q.p95 = Percentile(values, 95);
  q.p99 = Percentile(values, 99);
  return q;
}

std::string PhaseJson(const PhaseQuantiles& q) {
  return obs::JsonObjectWriter()
      .Put("p50", q.p50)
      .Put("p95", q.p95)
      .Put("p99", q.p99)
      .Build();
}

/// The tenant mix. Index doubles as the schedule's tenant id.
struct TenantProfile {
  const char* name;
  double share;      ///< Of total traffic.
  int priority;      ///< Scheduler priority (0 = most urgent).
  bool deadline;     ///< Carries the --deadline-us relative deadline.
};

constexpr TenantProfile kTenants[] = {
    {"free", 0.60, 1, false},
    {"pro", 0.30, 0, true},
    {"batch", 0.10, 2, false},
};
constexpr int kNumTenants = 3;

/// The per-tier workload, fixed up front so every (mode, tier) run
/// replays identical arrivals: a heavy-tailed graph sequence, the
/// cumulative Poisson arrival offsets in microseconds, and the tenant
/// each request bills to.
struct Schedule {
  std::vector<const Graph*> graphs;
  std::vector<std::int64_t> arrival_us;
  std::vector<int> tenant;  ///< Index into kTenants.
};

/// Heavy-tailed size mix: graphs sorted by node count, index drawn as
/// floor(n * u^3) — mostly small graphs, occasionally the giants that
/// dominate batch-build and execute time (the realistic shape for
/// graph serving, and the one that stresses the plan envelope).
Schedule MakeSchedule(const std::vector<const Graph*>& sorted_graphs,
                      int requests, double rate_rps, Rng* rng) {
  Schedule schedule;
  schedule.graphs.reserve(static_cast<size_t>(requests));
  schedule.arrival_us.reserve(static_cast<size_t>(requests));
  schedule.tenant.reserve(static_cast<size_t>(requests));
  double clock_us = 0.0;
  const double mean_gap_us = 1e6 / rate_rps;
  for (int i = 0; i < requests; ++i) {
    const double u = rng->Uniform(0.0, 1.0);
    const size_t idx = std::min(
        static_cast<size_t>(static_cast<double>(sorted_graphs.size()) * u * u *
                            u),
        sorted_graphs.size() - 1);
    schedule.graphs.push_back(sorted_graphs[idx]);
    // Exponential inter-arrival gap: -ln(1 - v) * mean.
    const double v = rng->Uniform(0.0, 1.0);
    clock_us += -std::log(1.0 - v) * mean_gap_us;
    schedule.arrival_us.push_back(static_cast<std::int64_t>(clock_us));
    const double t = rng->Uniform(0.0, 1.0);
    double cum = 0.0;
    int tenant = kNumTenants - 1;
    for (int k = 0; k < kNumTenants; ++k) {
      cum += kTenants[k].share;
      if (t < cum) {
        tenant = k;
        break;
      }
    }
    schedule.tenant.push_back(tenant);
  }
  return schedule;
}

struct QueueTrajectory {
  std::vector<double> samples;  ///< Depth every sample_interval_ms.
  double mean = 0;
  double max = 0;
  int sample_interval_ms = 2;
};

struct TierResult {
  double target_rps = 0;
  double achieved_rps = 0;  ///< Served completions / makespan.
  double goodput_rps = 0;   ///< Within-SLO completions / makespan.
  std::int64_t served = 0;
  std::int64_t shed = 0;
  std::int64_t within_slo = 0;
  std::int64_t shed_by[serve::kNumShedReasons] = {0, 0, 0, 0, 0};
  double makespan_s = 0;
  PhaseQuantiles queue_wait;
  PhaseQuantiles batch_build;
  PhaseQuantiles execute;
  PhaseQuantiles e2e;
  QueueTrajectory queue;
  serve::InferenceStats stats;
};

/// Replays `schedule` through a fresh engine at its embedded offered
/// rate. One submitter thread sleeps to each arrival offset and
/// enqueues without waiting for completions (open loop); a sampler
/// thread polls the live queue-depth gauge for the trajectory. Halfway
/// through the arrivals a hot rollout (same weights, new version) is
/// published so the per-version serve counts exercise the staggered
/// swap under live traffic.
TierResult RunTier(const serve::ModelSpec& spec,
                   serve::InferenceOptions options,
                   const GraphPredictionModel& model,
                   const Schedule& schedule, double target_rps,
                   double slo_us, std::int64_t deadline_us) {
  obs::MetricsRegistry registry;
  options.telemetry_registry = &registry;
  serve::InferenceEngine engine(spec, options);
  engine.SyncFrom(model);
  engine.Predict(*schedule.graphs[0]);  // Warm-up off the clock.

  const size_t n = schedule.graphs.size();
  std::vector<obs::RequestSpan> spans(n);
  std::vector<serve::SubmitResult> results;
  results.reserve(n);

  TierResult result;
  result.target_rps = target_rps;
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      result.queue.samples.push_back(engine.stats().queue_depth);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(result.queue.sample_interval_ms));
    }
  });

  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(schedule.arrival_us[i]));
    if (i == n / 2) engine.SyncFrom(model);  // Mid-tier hot rollout.
    const TenantProfile& profile =
        kTenants[static_cast<size_t>(schedule.tenant[i])];
    serve::SubmitOptions submit;
    submit.tenant = profile.name;
    submit.priority = profile.priority;
    if (profile.deadline) submit.deadline_us = deadline_us;
    results.push_back(engine.Submit(*schedule.graphs[i], submit, &spans[i]));
  }
  // Drain: every future resolves — to a row, or to a typed ShedError.
  std::vector<bool> was_served(n, false);
  for (size_t i = 0; i < n; ++i) {
    try {
      (void)results[i].future.get();
      was_served[i] = true;
      ++result.served;
    } catch (const serve::ShedError& error) {
      ++result.shed;
      ++result.shed_by[static_cast<int>(error.reason())];
    }
  }
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();
  result.stats = engine.stats();

  // Exact client-side aggregates from the span mirrors of the served
  // requests (complete once every future resolved).
  std::vector<double> queue_wait, batch_build, execute, e2e;
  std::int64_t first_enqueue = std::numeric_limits<std::int64_t>::max();
  std::int64_t last_done = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!was_served[i]) continue;
    const obs::RequestSpan& span = spans[i];
    queue_wait.push_back(static_cast<double>(span.queue_wait_us()));
    batch_build.push_back(static_cast<double>(span.batch_build_us()));
    execute.push_back(static_cast<double>(span.execute_dur_us()));
    e2e.push_back(static_cast<double>(span.e2e_us()));
    if (static_cast<double>(span.e2e_us()) <= slo_us) ++result.within_slo;
    first_enqueue = std::min(first_enqueue, span.enqueue_us);
    last_done = std::max(last_done, span.done_us);
  }
  result.queue_wait = Quantiles(std::move(queue_wait));
  result.batch_build = Quantiles(std::move(batch_build));
  result.execute = Quantiles(std::move(execute));
  result.e2e = Quantiles(std::move(e2e));
  result.makespan_s = static_cast<double>(last_done - first_enqueue) / 1e6;
  if (result.makespan_s > 0) {
    result.achieved_rps =
        static_cast<double>(result.served) / result.makespan_s;
    result.goodput_rps =
        static_cast<double>(result.within_slo) / result.makespan_s;
  }
  for (const double d : result.queue.samples) {
    result.queue.mean += d;
    result.queue.max = std::max(result.queue.max, d);
  }
  if (!result.queue.samples.empty()) {
    result.queue.mean /= static_cast<double>(result.queue.samples.size());
  }
  return result;
}

/// Decimates the trajectory to at most `limit` points so the committed
/// JSON stays small while keeping the ramp shape.
std::vector<double> Decimate(const std::vector<double>& samples,
                             size_t limit) {
  if (samples.size() <= limit) return samples;
  std::vector<double> out;
  out.reserve(limit);
  const double stride =
      static_cast<double>(samples.size()) / static_cast<double>(limit);
  for (size_t i = 0; i < limit; ++i) {
    out.push_back(samples[static_cast<size_t>(static_cast<double>(i) *
                                              stride)]);
  }
  return out;
}

std::string TierJson(const std::string& mode, const std::string& tier,
                     int requests, double slo_ms, const TierResult& r) {
  const serve::InferenceStats& s = r.stats;
  std::string tenants_json = "[";
  for (size_t i = 0; i < s.scheduler.tenants.size(); ++i) {
    const serve::TenantStats& tenant = s.scheduler.tenants[i];
    if (i > 0) tenants_json += ",";
    tenants_json += obs::JsonObjectWriter()
                        .Put("tenant", tenant.tenant)
                        .Put("submitted", tenant.submitted)
                        .Put("dispatched", tenant.dispatched)
                        .Put("shed", tenant.shed)
                        .Build();
  }
  tenants_json += "]";
  std::string versions_json = "[";
  for (size_t i = 0; i < s.versions.size(); ++i) {
    if (i > 0) versions_json += ",";
    versions_json += obs::JsonObjectWriter()
                         .Put("version", s.versions[i].version)
                         .Put("requests", s.versions[i].requests)
                         .Build();
  }
  versions_json += "]";
  return obs::JsonObjectWriter()
      .Put("mode", mode)
      .Put("tier", tier)
      .Put("target_rps", r.target_rps)
      .Put("requests", requests)
      .Put("achieved_rps", r.achieved_rps)
      .Put("goodput_rps", r.goodput_rps)
      .Put("served", r.served)
      .Put("within_slo", r.within_slo)
      .Put("slo_ms", slo_ms)
      .Put("makespan_s", r.makespan_s)
      .PutRaw("sched",
              obs::JsonObjectWriter()
                  .Put("submitted", s.scheduler.submitted)
                  .Put("dispatched", s.scheduler.dispatched)
                  .Put("shed", s.scheduler.shed)
                  .Put("shed_rate",
                       s.scheduler.submitted > 0
                           ? static_cast<double>(s.scheduler.shed) /
                                 static_cast<double>(s.scheduler.submitted)
                           : 0.0)
                  .PutRaw("shed_by",
                          obs::JsonObjectWriter()
                              .Put("queue_full",
                                   r.shed_by[static_cast<int>(
                                       serve::ShedReason::kQueueFull)])
                              .Put("quota",
                                   r.shed_by[static_cast<int>(
                                       serve::ShedReason::kTenantQuota)])
                              .Put("deadline",
                                   r.shed_by[static_cast<int>(
                                       serve::ShedReason::kDeadlineExpired)])
                              .Put("slo",
                                   r.shed_by[static_cast<int>(
                                       serve::ShedReason::kSloShed)])
                              .Build())
                  .PutRaw("tenants", tenants_json)
                  .Build())
      .PutRaw("rollout",
              obs::JsonObjectWriter()
                  .Put("weight_version", s.weight_version)
                  .Put("rollouts", s.rollouts)
                  .PutRaw("versions", versions_json)
                  .Build())
      .PutRaw("latency_us", obs::JsonObjectWriter()
                                .PutRaw("queue_wait", PhaseJson(r.queue_wait))
                                .PutRaw("batch_build",
                                        PhaseJson(r.batch_build))
                                .PutRaw("execute", PhaseJson(r.execute))
                                .PutRaw("e2e", PhaseJson(r.e2e))
                                .Build())
      .PutRaw("queue_depth",
              obs::JsonObjectWriter()
                  .Put("mean", r.queue.mean)
                  .Put("max", r.queue.max)
                  .Put("sample_interval_ms", r.queue.sample_interval_ms)
                  .Put("trajectory", Decimate(r.queue.samples, 64))
                  .Build())
      .PutRaw("engine",
              obs::JsonObjectWriter()
                  .Put("batches", s.batches)
                  .Put("avg_batch_graphs",
                       s.batches > 0
                           ? static_cast<double>(s.scheduler.dispatched) /
                                 static_cast<double>(s.batches)
                           : 0.0)
                  .Put("planned_batches", s.planned_batches)
                  .Put("eager_batches", s.eager_batches)
                  .Put("fallback_heap_allocs", s.fallback_heap_allocs)
                  .Build())
      .Build();
}

void PrintTier(const std::string& mode, const std::string& tier,
               int requests, const TierResult& r) {
  std::printf("  %-8s %-5s  offered %7.1f rps  achieved %7.1f  goodput "
              "%7.1f  (%lld/%d in SLO)\n",
              mode.c_str(), tier.c_str(), r.target_rps, r.achieved_rps,
              r.goodput_rps, static_cast<long long>(r.within_slo), requests);
  std::printf("           e2e p50 %8.0f us  p95 %8.0f us  p99 %8.0f us   "
              "queue depth mean %.1f max %.0f\n",
              r.e2e.p50, r.e2e.p95, r.e2e.p99, r.queue.mean, r.queue.max);
  std::printf("           shed %lld/%d (%.1f%%): quota %lld deadline %lld "
              "slo %lld queue %lld\n",
              static_cast<long long>(r.shed), requests,
              100.0 * static_cast<double>(r.shed) /
                  static_cast<double>(requests),
              static_cast<long long>(r.shed_by[static_cast<int>(
                  serve::ShedReason::kTenantQuota)]),
              static_cast<long long>(r.shed_by[static_cast<int>(
                  serve::ShedReason::kDeadlineExpired)]),
              static_cast<long long>(r.shed_by[static_cast<int>(
                  serve::ShedReason::kSloShed)]),
              static_cast<long long>(r.shed_by[static_cast<int>(
                  serve::ShedReason::kQueueFull)]));
  std::printf("           wait p95 %7.0f us  build p95 %6.0f us  exec p95 "
              "%7.0f us   %lld batches (%.1f graphs avg)\n",
              r.queue_wait.p95, r.batch_build.p95, r.execute.p95,
              static_cast<long long>(r.stats.batches),
              r.stats.batches > 0
                  ? static_cast<double>(r.stats.scheduler.dispatched) /
                        static_cast<double>(r.stats.batches)
                  : 0.0);
}

/// Returns false (after printing why) when a smoke invariant fails.
bool RunBench(const Flags& flags) {
  const bool smoke = flags.GetBool("smoke", false);
  const int workers = flags.GetInt("workers", 2);
  const int max_batch = flags.GetInt("batch", 16);
  const int wait_us = flags.GetInt("wait-us", 200);
  const int max_inflight = flags.GetMaxInflight(max_batch);
  const int requests = flags.GetInt("requests", smoke ? 60 : 400);
  const int calib_requests = flags.GetInt("calib", smoke ? 96 : 512);
  const int calib_rounds = flags.GetInt("calib-rounds", smoke ? 2 : 3);
  const double slo_ms = flags.GetDouble("slo-ms", 50.0);
  const std::int64_t deadline_us =
      flags.GetDeadlineUs(static_cast<std::int64_t>(slo_ms * 1000.0));
  const bool shed_on_slo = flags.GetShedOnSlo(true);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::string json_path = flags.GetString("json", "");

  TrianglesConfig data_config;
  data_config.num_train = 64;
  data_config.num_valid = 16;
  data_config.num_test = 128;
  GraphDataset dataset = MakeTrianglesDataset(data_config, 7);

  serve::ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder.feature_dim = dataset.feature_dim;
  spec.encoder.hidden_dim = 64;
  spec.encoder.num_layers = 3;
  spec.output_dim = dataset.OutputDim();

  Rng model_rng(19);
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim,
                             &model_rng);

  // Eval graphs sorted by size: the heavy-tailed sampler indexes into
  // this so low draws hit small graphs and rare high draws the giants.
  std::vector<const Graph*> sorted_graphs;
  for (const size_t idx : dataset.test_idx) {
    sorted_graphs.push_back(&dataset.graphs[idx]);
  }
  std::sort(sorted_graphs.begin(), sorted_graphs.end(),
            [](const Graph* a, const Graph* b) {
              return a->num_nodes() < b->num_nodes();
            });
  int max_graph_nodes = 0;
  int max_graph_edges = 0;
  for (const Graph* g : sorted_graphs) {
    max_graph_nodes = std::max(max_graph_nodes, g->num_nodes());
    max_graph_edges = std::max(max_graph_edges, g->num_edges());
  }

  serve::InferenceOptions base_options;
  base_options.num_workers = workers;
  base_options.max_batch_graphs = max_batch;
  base_options.max_batch_wait_us = wait_us;
  base_options.max_inflight = max_inflight;
  obs::SloSpec slo_spec;
  slo_spec.name = "e2e";
  slo_spec.quantile = 0.9;
  slo_spec.threshold_us = slo_ms * 1000.0;
  slo_spec.window = 64;
  base_options.slos = {slo_spec};

  std::printf("Serving load generator: %s, %zu eval graphs "
              "(%d..%d nodes), hidden=%d, layers=%d, backend threads=%d\n",
              MethodName(spec.method), sorted_graphs.size(),
              sorted_graphs.front()->num_nodes(), max_graph_nodes,
              spec.encoder.hidden_dim, spec.encoder.num_layers,
              GetBackend().num_threads());
  std::printf("engine: %d workers, batch<=%d, inflight<=%d, wait %d us; "
              "SLO: e2e <= %.0f ms; pro deadline %lld us\n\n",
              workers, max_batch, max_inflight, wait_us, slo_ms,
              static_cast<long long>(deadline_us));

  // --- Capacity calibration: closed-loop bursts, eager engine --------
  // Everything submitted at once, so the engine coalesces maximal
  // batches and the completion rate approximates saturation throughput.
  // Iteration-bound and best-of-N so CI noise only lengthens the run.
  double capacity_rps = 0;
  {
    obs::MetricsRegistry registry;
    serve::InferenceOptions options = base_options;
    options.compiled = false;
    options.telemetry_registry = &registry;
    serve::InferenceEngine engine(spec, options);
    engine.SyncFrom(model);
    engine.Predict(*sorted_graphs[0]);
    Rng calib_rng(seed);
    for (int round = 0; round < calib_rounds; ++round) {
      std::vector<std::future<Tensor>> futures;
      futures.reserve(static_cast<size_t>(calib_requests));
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < calib_requests; ++i) {
        const double u = calib_rng.Uniform(0.0, 1.0);
        const size_t idx = std::min(
            static_cast<size_t>(static_cast<double>(sorted_graphs.size()) *
                                u * u * u),
            sorted_graphs.size() - 1);
        futures.push_back(engine.Submit(*sorted_graphs[idx]));
      }
      for (auto& f : futures) f.get();
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      capacity_rps = std::max(
          capacity_rps, static_cast<double>(calib_requests) / seconds);
    }
    std::printf("capacity (closed-loop, %d rounds x %d graphs, eager, "
                "best): %.1f graphs/sec\n\n",
                calib_rounds, calib_requests, capacity_rps);
  }
  if (!(capacity_rps > 0)) {
    std::printf("SMOKE FAIL: calibrated capacity %.1f not positive\n",
                capacity_rps);
    return false;
  }

  // Shared scheduling policy: by default the free tenant's bucket sits
  // at 0.45x capacity — clean at the 0.5x tier (free offers 0.3x),
  // progressively shed above it — and burn-rate shedding protects
  // priorities 0 and 1 (pro + free), so only batch traffic sheds on
  // SLO burn. Explicit --tenant-quota entries replace the default
  // bucket wholesale.
  base_options.scheduler.shed_on_slo = shed_on_slo;
  base_options.scheduler.slo_shed_burn_rate = 1.0;
  base_options.scheduler.slo_protected_priority = 1;
  const std::vector<TenantQuotaFlag> quota_flags = flags.GetTenantQuotas();
  if (quota_flags.empty()) {
    base_options.scheduler.tenant_quotas.push_back(
        serve::TenantQuotaSpec{"free", 0.45 * capacity_rps, 32.0});
  } else {
    for (const TenantQuotaFlag& quota : quota_flags) {
      base_options.scheduler.tenant_quotas.push_back(serve::TenantQuotaSpec{
          quota.tenant, quota.tokens_per_sec, quota.burst});
    }
  }

  // --- Rate tiers, eager vs compiled ---------------------------------
  // The same Poisson schedule per tier drives both modes, so the only
  // difference between paired rows is the execution path. 1.2x sits
  // past the calibrated saturation point on purpose: that is where the
  // queue ramps, deadlines expire, quotas bite and the SLO burns.
  const std::vector<std::pair<std::string, double>> tiers = {
      {"0.5x", 0.5}, {"0.8x", 0.8}, {"1.2x", 1.2}};
  std::vector<std::string> tier_rows;
  bool smoke_ok = true;
  double previous_rate = 0.0;
  std::printf("open-loop Poisson tiers (%d arrivals each)\n", requests);
  for (const auto& [tier_name, fraction] : tiers) {
    const double rate = fraction * capacity_rps;
    if (!(rate > previous_rate)) {
      std::printf("SMOKE FAIL: tier %s rate %.1f not above previous %.1f\n",
                  tier_name.c_str(), rate, previous_rate);
      smoke_ok = false;
    }
    previous_rate = rate;
    Rng schedule_rng(seed + static_cast<std::uint64_t>(fraction * 1000));
    const Schedule schedule =
        MakeSchedule(sorted_graphs, requests, rate, &schedule_rng);
    for (const bool compiled : {false, true}) {
      serve::InferenceOptions options = base_options;
      options.compiled = compiled;
      if (compiled) {
        const int plan_graphs = std::max(max_batch, max_inflight);
        options.plan_max_nodes = plan_graphs * max_graph_nodes;
        options.plan_max_edges = plan_graphs * max_graph_edges;
      }
      const std::string mode = compiled ? "compiled" : "eager";
      const TierResult result = RunTier(spec, options, model, schedule, rate,
                                        slo_ms * 1000.0, deadline_us);
      PrintTier(mode, tier_name, requests, result);
      tier_rows.push_back(
          TierJson(mode, tier_name, requests, slo_ms, result));
      // Conservation: every arrival resolved exactly one way, and the
      // engine's accounting agrees with the client's (the engine also
      // dispatched the one off-the-clock warm-up request).
      if (result.served + result.shed != requests ||
          result.stats.scheduler.dispatched != result.served + 1 ||
          result.stats.scheduler.shed != result.shed) {
        std::printf("SMOKE FAIL: %s %s conservation: served %lld + shed "
                    "%lld != %d (engine dispatched %lld shed %lld)\n",
                    mode.c_str(), tier_name.c_str(),
                    static_cast<long long>(result.served),
                    static_cast<long long>(result.shed), requests,
                    static_cast<long long>(result.stats.scheduler.dispatched),
                    static_cast<long long>(result.stats.scheduler.shed));
        smoke_ok = false;
      }
    }
  }

  if (!json_path.empty()) {
    std::string tiers_json = "[";
    for (size_t i = 0; i < tier_rows.size(); ++i) {
      if (i > 0) tiers_json += ",";
      tiers_json += tier_rows[i];
    }
    tiers_json += "]";
    const std::string report =
        obs::JsonObjectWriter()
            .Put("bench", "serving")
            .Put("method", MethodName(spec.method))
            .Put("eval_graphs",
                 static_cast<std::int64_t>(sorted_graphs.size()))
            .Put("hidden_dim", spec.encoder.hidden_dim)
            .Put("num_layers", spec.encoder.num_layers)
            .Put("threads", GetBackend().num_threads())
            .Put("hardware_concurrency", BenchOptions::HardwareConcurrency())
            .Put("workers", workers)
            .Put("max_batch", max_batch)
            .Put("max_inflight", max_inflight)
            .Put("wait_us", wait_us)
            .Put("requests_per_tier", requests)
            .Put("slo_ms", slo_ms)
            .Put("deadline_us", deadline_us)
            .Put("shed_on_slo", shed_on_slo)
            .Put("free_quota_rps", 0.45 * capacity_rps)
            .Put("seed", static_cast<std::int64_t>(seed))
            .Put("capacity_rps", capacity_rps)
            .PutRaw("tiers", tiers_json)
            .Build();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    } else {
      std::printf("\nERROR: cannot write %s\n", json_path.c_str());
    }
  }
  if (smoke) {
    std::printf("\nbench_serving smoke: %s\n", smoke_ok ? "PASS" : "FAIL");
  }
  return smoke_ok;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  oodgnn::SetBackendThreads(flags.GetThreads(1));
  // Uniform observability flags (same surface as the table binaries):
  // --metrics-out streams the global registry while tiers run;
  // --metrics-json dumps one final snapshot at exit. Note the tier
  // engines publish to private registries — the global stream carries
  // the process-wide metrics (kernel counters, exporter health).
  const std::string metrics_out = flags.GetMetricsOut();
  if (!metrics_out.empty()) {
    oodgnn::obs::StartGlobalExporter(metrics_out,
                                     flags.GetMetricsIntervalMs());
  }
  const std::string metrics_json = flags.GetString("metrics-json", "");
  if (!metrics_json.empty()) {
    oodgnn::obs::RegisterMetricsJsonDumpAtExit(metrics_json);
  }
  return oodgnn::RunBench(flags) ? 0 : 1;
}
