// Reproduces Table 1: dataset statistics (graph counts, average
// nodes/edges, task arity and type, split method, metric) for every
// benchmark the paper evaluates on.

#include <algorithm>
#include <cstdio>

#include "src/data/registry.h"
#include "src/graph/algorithms.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace oodgnn {
namespace {

const char* SplitMethodFor(const std::string& name) {
  if (name == "TRIANGLES" || name == "COLLAB" || name == "PROTEINS_25" ||
      name == "DD_200" || name == "DD_300") {
    return "Size";
  }
  if (name == "MNIST-75SP") return "Feature";
  return "Scaffold";
}

const char* MetricFor(const GraphDataset& dataset) {
  switch (dataset.task_type) {
    case TaskType::kMulticlass:
      return "Accuracy";
    case TaskType::kBinary:
      return "ROC-AUC";
    case TaskType::kRegression:
      return "RMSE";
  }
  return "?";
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  std::printf("=== Table 1: dataset statistics ===\n");
  ResultTable table({"Name", "#Graphs", "Avg#Nodes", "Avg#Edges",
                     "AvgClust", "#Tasks", "TaskType", "Split", "Metric"});
  for (const std::string& name : AllDatasetNames()) {
    GraphDataset dataset = MakeDatasetByName(name, scale, seed);
    // Mean clustering coefficient over a sample of graphs (an extra
    // structural statistic beyond the paper's columns).
    double clustering = 0.0;
    const size_t sample = std::min<size_t>(dataset.graphs.size(), 50);
    for (size_t i = 0; i < sample; ++i) {
      clustering += ClusteringCoefficient(dataset.graphs[i]);
    }
    clustering /= static_cast<double>(sample);

    char graphs[32], nodes[32], edges[32], clust[32], tasks[16];
    std::snprintf(graphs, sizeof(graphs), "%zu", dataset.graphs.size());
    std::snprintf(nodes, sizeof(nodes), "%.1f", dataset.AverageNodes());
    std::snprintf(edges, sizeof(edges), "%.1f", dataset.AverageEdges());
    std::snprintf(clust, sizeof(clust), "%.3f", clustering);
    std::snprintf(tasks, sizeof(tasks), "%d", dataset.num_tasks);
    table.AddRow({name, graphs, nodes, edges, clust, tasks,
                  TaskTypeName(dataset.task_type), SplitMethodFor(name),
                  MetricFor(dataset)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
