// Micro-benchmarks of the computational kernels behind OOD-GNN: dense
// GEMM, message-passing gather/scatter, the RFF feature map, the
// weighted decorrelation objective, and one full inner weight-update
// step. Supports the §4.7 complexity analysis: the decorrelation cost
// is O(K·|B|·d²) — independent of the dataset size.

#include <vector>

#include "benchmark/benchmark.h"
#include "src/core/decorrelation.h"
#include "src/core/rff.h"
#include "src/core/weight_bank.h"
#include "src/core/weight_optimizer.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Variable a = Variable::Constant(Tensor::RandomNormal(n, n, &rng));
  Variable b = Variable::Constant(Tensor::RandomNormal(n, n, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).value().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GatherScatter(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int edges = nodes * 8;
  const int dim = 64;
  Rng rng(2);
  Variable h = Variable::Constant(Tensor::RandomNormal(nodes, dim, &rng));
  std::vector<int> src(static_cast<size_t>(edges));
  std::vector<int> dst(static_cast<size_t>(edges));
  for (int e = 0; e < edges; ++e) {
    src[static_cast<size_t>(e)] =
        static_cast<int>(rng.UniformInt(0, nodes - 1));
    dst[static_cast<size_t>(e)] =
        static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  for (auto _ : state) {
    Variable out = ScatterAddRows(RowGather(h, src), dst, nodes);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{edges} * dim);
}
BENCHMARK(BM_GatherScatter)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_RffTransform(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = 64;
  Rng rng(3);
  RffConfig config;
  RffFeatureMap rff(dim, config, &rng);
  Tensor z = Tensor::RandomNormal(n, dim, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rff.Transform(z).data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * dim);
}
BENCHMARK(BM_RffTransform)->Arg(128)->Arg(512)->Arg(2048);

void BM_DecorrelationLoss(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = 64;
  Rng rng(4);
  RffConfig config;
  RffFeatureMap rff(dim, config, &rng);
  Tensor features = rff.Transform(Tensor::RandomNormal(n, dim, &rng));
  Variable w = Variable::Param(Tensor(n, 1, 1.f));
  for (auto _ : state) {
    Variable loss = DecorrelationLoss(features, rff.feature_source_dim(), w);
    loss.Backward();
    benchmark::DoNotOptimize(w.grad().data());
    w.ZeroGrad();
  }
}
BENCHMARK(BM_DecorrelationLoss)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_WeightOptimizerStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int dim = 32;
  Rng rng(5);
  RffConfig rff_config;
  RffFeatureMap rff(dim, rff_config, &rng);
  GlobalWeightBank bank =
      GlobalWeightBank::WithUniformGamma(1, batch, dim, 0.9f);
  Tensor z = Tensor::RandomNormal(batch, dim, &rng);
  bank.Update(z, Tensor(batch, 1, 1.f));
  WeightOptimizerConfig config;
  config.epochs_reweight = 1;  // One inner step per iteration.
  GraphWeightOptimizer optimizer(config);
  for (auto _ : state) {
    WeightOptimizerResult result = optimizer.Optimize(z, rff, &bank);
    benchmark::DoNotOptimize(result.weights.data());
  }
}
BENCHMARK(BM_WeightOptimizerStep)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace oodgnn
