// Benchmarks of the computational kernels behind OOD-GNN.
//
// Run with no arguments to get a serial-vs-parallel backend comparison
// (GFLOP/s, speedup, and a bitwise-identity check) for the three dense
// hot paths — matmul, segment sum, RFF cross-covariance — at the
// paper's batch scale and at 10× that scale. `--threads N` selects the
// parallel pool size (default 4, matching the CI configuration).
//
// Pass any --benchmark* flag to run the google-benchmark micro-suite
// instead (GEMM, gather/scatter, RFF map, decorrelation loss, weight
// update), which supports the §4.7 complexity analysis: the
// decorrelation cost is O(K·|B|·d²) — independent of the dataset size.
//
// Pass --mp to run the message-passing comparison instead: the seed
// full-scan scatter vs the CSR segment-plan kernels (DESIGN.md §12) at
// several feature widths, serial and pooled. --mp-json <path> also
// writes the rows as a JSON report (scripts/run_bench_message_passing.sh
// wraps this into BENCH_message_passing.json).
//
// Pass --simd for the scalar-vs-SIMD-vs-int8 dense-kernel table
// (DESIGN.md §16): single-threaded GFLOP/s for the vectorized matmul
// variants, axpy, and the RFF map, plus the bitwise scalar==simd check.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmark/benchmark.h"
#include "src/core/decorrelation.h"
#include "src/core/dependence.h"
#include "src/core/rff.h"
#include "src/core/weight_bank.h"
#include "src/core/weight_optimizer.h"
#include "src/obs/json.h"
#include "src/tensor/backend.h"
#include "src/train/experiment.h"
#include "src/tensor/kernels.h"
#include "src/tensor/ops.h"
#include "src/tensor/quant.h"
#include "src/tensor/segment_plan.h"
#include "src/tensor/simd.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

// ---------------------------------------------------------------------------
// Serial-vs-parallel backend comparison.
// ---------------------------------------------------------------------------

/// Median-free best-of-repetitions wall-clock of `fn`, in seconds per
/// call. Calibrates the iteration count so each repetition runs at
/// least ~50 ms.
double TimePerCall(const std::function<void()>& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up.
  int iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt >= 0.05 || iters >= (1 << 22)) break;
    iters *= 2;
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt / iters < best) best = dt / iters;
  }
  return best;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

struct Workload {
  std::string name;
  std::string shape;
  int64_t flops = 0;                ///< Per call, for the GFLOP/s column.
  std::function<Tensor()> run;      ///< Executes under the active backend.
};

void CompareBackends(int threads) {
  if (threads < 1) threads = 1;  // MakeBackend clamps the same way.
  const int cores = BenchOptions::HardwareConcurrency();
  std::printf("Compute backend comparison: serial vs parallel (%d threads)\n",
              threads);
  std::printf("hardware_concurrency=%d%s\n\n", cores,
              cores <= 1 ? "  (single core: speedup <= 1 is expected here; "
                           "bitwise identity is the portable check)"
                         : "");

  std::vector<Workload> workloads;
  Rng rng(7);

  // Matmul at the encoder's batch shape: hidden states [N, d] times a
  // layer weight [d, d], N = batch of 128 graphs, d = 64.
  for (int scale : {1, 10}) {
    const int m = 128 * scale, k = 64, n = 64;
    auto a = std::make_shared<Tensor>(Tensor::RandomNormal(m, k, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandomNormal(k, n, &rng));
    workloads.push_back(
        {scale == 1 ? "matmul (paper)" : "matmul (10x)",
         "[" + std::to_string(m) + "x" + std::to_string(k) + "]x[" +
             std::to_string(k) + "x" + std::to_string(n) + "]",
         2ll * m * k * n, [a, b, m, n] {
           Tensor out(m, n);
           GetBackend().MatMulAcc(*a, *b, &out);
           return out;
         }});
  }

  // Segment sum (graph readout): ~25 nodes per graph scattered into N
  // graph rows, d = 64.
  for (int scale : {1, 10}) {
    const int segs = 128 * scale, rows = segs * 25, dim = 64;
    auto h = std::make_shared<Tensor>(Tensor::RandomNormal(rows, dim, &rng));
    auto index = std::make_shared<std::vector<int>>();
    for (int r = 0; r < rows; ++r) {
      index->push_back(static_cast<int>(rng.UniformInt(0, segs - 1)));
    }
    workloads.push_back(
        {scale == 1 ? "segment-sum (paper)" : "segment-sum (10x)",
         std::to_string(rows) + " rows -> " + std::to_string(segs) + " segs",
         static_cast<int64_t>(rows) * dim, [h, index, segs, dim] {
           Tensor out(segs, dim);
           GetBackend().ScatterAddRowsAcc(*h, *index, &out);
           return out;
         }});
  }

  // RFF cross-covariance: the pairwise dependence matrix over RFF
  // features of a [N, 32] representation with Q = 5 Fourier functions
  // per dimension (Eq. 4 / §4.7 decorrelation cost).
  for (int scale : {1, 10}) {
    const int n = 128 * scale, d = 32;
    RffConfig config;
    config.num_functions = 5;
    auto rff = std::make_shared<RffFeatureMap>(d, config, &rng);
    auto z = std::make_shared<Tensor>(Tensor::RandomNormal(n, d, &rng));
    const int features = rff->num_features();
    workloads.push_back(
        {scale == 1 ? "rff-cross-cov (paper)" : "rff-cross-cov (10x)",
         "[" + std::to_string(n) + "x" + std::to_string(d) + "] Q=5",
         2ll * n * features * features,
         [rff, z] { return PairwiseDependenceMatrix(*z, *rff); }});
  }

  std::printf("%-22s %-22s %12s %14s %8s %8s\n", "workload", "shape",
              "serial GF/s", "parallel GF/s", "speedup", "bitwise");
  for (const Workload& w : workloads) {
    Tensor serial_out;
    double serial_s;
    {
      ScopedBackendThreads scoped(1);
      serial_out = w.run();
      serial_s = TimePerCall([&] { w.run(); });
    }
    Tensor parallel_out;
    double parallel_s;
    {
      ScopedBackendThreads scoped(threads);
      parallel_out = w.run();
      parallel_s = TimePerCall([&] { w.run(); });
    }
    const double gf_serial = static_cast<double>(w.flops) / serial_s / 1e9;
    const double gf_parallel = static_cast<double>(w.flops) / parallel_s / 1e9;
    std::printf("%-22s %-22s %12.2f %14.2f %7.2fx %8s\n", w.name.c_str(),
                w.shape.c_str(), gf_serial, gf_parallel,
                serial_s / parallel_s,
                BitwiseEqual(serial_out, parallel_out) ? "OK" : "DIVERGED");
  }
}

// ---------------------------------------------------------------------------
// Scalar vs SIMD vs int8-quantized kernel comparison (--simd).
// ---------------------------------------------------------------------------

/// Single-threaded GFLOP/s for the vectorized dense kernels
/// (DESIGN.md §16): the scalar oracle, its SIMD mirror (direct simd::
/// calls, bypassing the Backend dispatch toggle), and — for the plain
/// matmul — the Q8_0 quantized kernel pair. SIMD rows must be bitwise
/// identical to scalar; the quant column compares its own scalar/SIMD
/// pair (quant-vs-fp32 accuracy is tests/quant_test.cc's job).
void CompareSimd() {
  std::printf("Dense kernels: scalar vs %s vs int8 (single thread)\n",
              simd::IsaName());
  if (!simd::Available()) {
    std::printf("(no vector ISA compiled/detected: simd:: delegates to the "
                "scalar kernels, so speedup ~1.0x is expected)\n");
  }
  std::printf("\n%-14s %-24s %12s %12s %8s %12s %8s\n", "kernel", "shape",
              "scalar GF/s", "simd GF/s", "speedup", "int8 GF/s", "bitwise");

  struct Row {
    const char* name;
    std::string shape;
    int64_t flops;
    std::function<void(Tensor*)> scalar;
    std::function<void(Tensor*)> vector;
    std::function<void(Tensor*)> quant;  ///< May be empty.
    int out_rows, out_cols;
  };
  std::vector<Row> rows;
  Rng rng(13);

  // The three matmul variants at the encoder shape and 10x.
  for (int scale : {1, 10}) {
    const int m = 128 * scale, k = 64, n = 64;
    auto a = std::make_shared<Tensor>(Tensor::RandomNormal(m, k, &rng));
    auto b = std::make_shared<Tensor>(Tensor::RandomNormal(k, n, &rng));
    auto bt = std::make_shared<Tensor>(Tensor::RandomNormal(n, k, &rng));
    // TransA contracts over the m rows of both operands: a is m x k,
    // bm is m x n, out is k x n.
    auto bm = std::make_shared<Tensor>(Tensor::RandomNormal(m, n, &rng));
    auto qb = std::make_shared<QuantizedTensor>(QuantizeQ8(*b));
    const std::string shape = "[" + std::to_string(m) + "x" +
                              std::to_string(k) + "]x[" + std::to_string(k) +
                              "x" + std::to_string(n) + "]";
    const int64_t flops = 2ll * m * k * n;
    rows.push_back({"matmul", shape, flops,
                    [a, b, m](Tensor* o) { kernels::MatMulAcc(*a, *b, o, 0, m); },
                    [a, b, m](Tensor* o) { simd::MatMulAcc(*a, *b, o, 0, m); },
                    [a, qb, m](Tensor* o) {
                      simd::MatMulQuantAcc(*a, *qb, o, 0, m);
                    },
                    m, n});
    rows.push_back(
        {"matmul-transA",
         "[" + std::to_string(m) + "x" + std::to_string(k) + "]Tx[" +
             std::to_string(m) + "x" + std::to_string(n) + "]",
         flops,
         [a, bm, k](Tensor* o) { kernels::MatMulTransAAcc(*a, *bm, o, 0, k); },
         [a, bm, k](Tensor* o) { simd::MatMulTransAAcc(*a, *bm, o, 0, k); },
         nullptr, k, n});
    rows.push_back(
        {"matmul-transB", shape, flops,
         [a, bt, m](Tensor* o) { kernels::MatMulTransBAcc(*a, *bt, o, 0, m); },
         [a, bt, m](Tensor* o) { simd::MatMulTransBAcc(*a, *bt, o, 0, m); },
         nullptr, m, n});
  }

  // Elementwise (axpy at optimizer scale) and the RFF feature map.
  {
    const int m = 2048, n = 64;
    auto x = std::make_shared<Tensor>(Tensor::RandomNormal(m, n, &rng));
    rows.push_back({"axpy", "[" + std::to_string(m) + "x" + std::to_string(n) +
                                "]",
                    2ll * m * n,
                    [x, m, n](Tensor* o) {
                      kernels::Axpy(-0.01f, *x, o, 0, m * n);
                    },
                    [x, m, n](Tensor* o) {
                      simd::Axpy(-0.01f, *x, o, 0, m * n);
                    },
                    nullptr, m, n});
  }
  {
    const int n = 1280, d = 32, q = 5;
    auto z = std::make_shared<Tensor>(Tensor::RandomNormal(n, d, &rng));
    auto source_dim = std::make_shared<std::vector<int>>();
    auto omega = std::make_shared<std::vector<float>>();
    auto phase = std::make_shared<std::vector<float>>();
    for (int j = 0; j < d * q; ++j) {
      source_dim->push_back(j % d);
      omega->push_back(static_cast<float>(rng.Normal()));
      phase->push_back(static_cast<float>(rng.Normal()));
    }
    const float scale = std::sqrt(2.f);
    const int features = d * q;
    rows.push_back({"rff-map",
                    "[" + std::to_string(n) + "x" + std::to_string(d) + "] Q=" +
                        std::to_string(q),
                    // cos + mul per feature, counted as 2 flops.
                    2ll * n * features,
                    [=](Tensor* o) {
                      kernels::RffMap(*z, *source_dim, *omega, *phase, false,
                                      scale, o, 0, n);
                    },
                    [=](Tensor* o) {
                      simd::RffMap(*z, *source_dim, *omega, *phase, false,
                                   scale, o, 0, n);
                    },
                    nullptr, n, features});
  }

  for (const Row& row : rows) {
    Tensor scalar_out(row.out_rows, row.out_cols);
    row.scalar(&scalar_out);
    const double scalar_s = TimePerCall([&] {
      Tensor out(row.out_rows, row.out_cols);
      row.scalar(&out);
    });
    Tensor simd_out(row.out_rows, row.out_cols);
    row.vector(&simd_out);
    const double simd_s = TimePerCall([&] {
      Tensor out(row.out_rows, row.out_cols);
      row.vector(&out);
    });
    double quant_gf = 0;
    if (row.quant) {
      const double quant_s = TimePerCall([&] {
        Tensor out(row.out_rows, row.out_cols);
        row.quant(&out);
      });
      quant_gf = static_cast<double>(row.flops) / quant_s / 1e9;
    }
    char quant_col[16];
    if (row.quant) {
      std::snprintf(quant_col, sizeof(quant_col), "%.2f", quant_gf);
    } else {
      std::snprintf(quant_col, sizeof(quant_col), "-");
    }
    std::printf("%-14s %-24s %12.2f %12.2f %7.2fx %12s %8s\n", row.name,
                row.shape.c_str(),
                static_cast<double>(row.flops) / scalar_s / 1e9,
                static_cast<double>(row.flops) / simd_s / 1e9,
                scalar_s / simd_s, quant_col,
                BitwiseEqual(scalar_out, simd_out) ? "OK" : "DIVERGED");
  }
}

// ---------------------------------------------------------------------------
// Message-passing comparison: seed chunk-scan scatter vs segment plans.
// ---------------------------------------------------------------------------

/// One gather/scatter workload at a fixed feature width. The unplanned
/// variant is the seed path (each parallel chunk rescans the full edge
/// list); planned scatters over contiguous destination segments; fused
/// additionally skips materializing the [E, d] gathered tensor.
void CompareMessagePassing(int threads, const std::string& json_path) {
  if (threads < 1) threads = 1;
  const int nodes = 25000;
  const int edges = 200000;
  const int cores = BenchOptions::HardwareConcurrency();
  std::printf(
      "Message passing: full-scan scatter vs CSR segment plans\n"
      "N=%d nodes, E=%d edges, %d threads, hardware_concurrency=%d\n"
      "(speedup = unplanned / planned wall-clock at %d threads; the\n"
      "unplanned kernel rescans all E rows once per chunk, so the ratio\n"
      "reflects eliminated scan work even on few cores)\n\n",
      nodes, edges, threads, cores, threads);

  Rng rng(11);
  std::vector<int> src(static_cast<size_t>(edges));
  std::vector<int> dst(static_cast<size_t>(edges));
  for (int e = 0; e < edges; ++e) {
    src[static_cast<size_t>(e)] =
        static_cast<int>(rng.UniformInt(0, nodes - 1));
    dst[static_cast<size_t>(e)] =
        static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  const MessagePlan plan = MessagePlan::Build(src, dst, nodes);

  std::string json_rows;
  std::printf("%-4s %-10s %14s %14s %9s %8s\n", "dim", "variant",
              "serial ms", "parallel ms", "speedup", "bitwise");
  // dim=1 matches attention-score segment sums ([E,1] tensors in GAT);
  // 16 and 64 are hidden widths. The scan term is per-edge and
  // dim-independent, so small dims gain the most.
  for (const int dim : {1, 16, 64}) {
    const Tensor h = Tensor::RandomNormal(nodes, dim, &rng);
    Tensor gathered(edges, dim);
    {
      ScopedBackendThreads scoped(1);
      GetBackend().GatherRows(h, src, &gathered);
    }
    struct Variant {
      const char* name;
      std::function<Tensor()> run;
    };
    const std::vector<Variant> variants = {
        {"unplanned",
         [&] {
           Tensor out(nodes, dim);
           GetBackend().ScatterAddRowsAcc(gathered, dst, &out);
           return out;
         }},
        {"planned",
         [&] {
           Tensor out(nodes, dim);
           GetBackend().ScatterAddRowsPlanned(gathered, plan.by_dst, &out);
           return out;
         }},
        {"fused",
         [&] {
           Tensor out(nodes, dim);
           GetBackend().GatherScatterAcc(h, plan.src_by_dst, plan.by_dst,
                                         &out);
           return out;
         }},
    };
    Tensor reference;
    double unplanned_parallel = 0.0;
    for (const Variant& v : variants) {
      Tensor serial_out;
      double serial_s;
      {
        ScopedBackendThreads scoped(1);
        serial_out = v.run();
        serial_s = TimePerCall([&] { v.run(); });
      }
      Tensor parallel_out;
      double parallel_s;
      {
        ScopedBackendThreads scoped(threads);
        parallel_out = v.run();
        parallel_s = TimePerCall([&] { v.run(); });
      }
      // All variants must agree bitwise with the seed serial scatter,
      // at every thread count.
      if (!reference.SameShape(serial_out)) reference = serial_out;
      const bool bitwise = BitwiseEqual(serial_out, parallel_out) &&
                           BitwiseEqual(reference, serial_out);
      if (std::strcmp(v.name, "unplanned") == 0) {
        unplanned_parallel = parallel_s;
      }
      const double speedup = unplanned_parallel / parallel_s;
      std::printf("%-4d %-10s %14.3f %14.3f %8.2fx %8s\n", dim, v.name,
                  serial_s * 1e3, parallel_s * 1e3, speedup,
                  bitwise ? "OK" : "DIVERGED");
      if (!json_path.empty()) {
        if (!json_rows.empty()) json_rows += ",";
        json_rows += obs::JsonObjectWriter()
                         .Put("dim", dim)
                         .Put("variant", v.name)
                         .Put("nodes", nodes)
                         .Put("edges", edges)
                         .Put("threads", threads)
                         .Put("serial_ms", serial_s * 1e3)
                         .Put("parallel_ms", parallel_s * 1e3)
                         .Put("speedup_vs_unplanned", speedup)
                         .Put("bitwise", bitwise)
                         .Build();
      }
    }
  }
  if (!json_path.empty()) {
    const std::string report =
        obs::JsonObjectWriter()
            .Put("bench", "message_passing")
            .Put("nodes", nodes)
            .Put("edges", edges)
            .Put("threads", threads)
            .Put("hardware_concurrency", cores)
            .PutRaw("rows", "[" + json_rows + "]")
            .Build();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    } else {
      std::printf("\nERROR: cannot write %s\n", json_path.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// google-benchmark micro-suite (run with --benchmark* flags).
// ---------------------------------------------------------------------------

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Variable a = Variable::Constant(Tensor::RandomNormal(n, n, &rng));
  Variable b = Variable::Constant(Tensor::RandomNormal(n, n, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).value().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GatherScatter(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int edges = nodes * 8;
  const int dim = 64;
  Rng rng(2);
  Variable h = Variable::Constant(Tensor::RandomNormal(nodes, dim, &rng));
  std::vector<int> src(static_cast<size_t>(edges));
  std::vector<int> dst(static_cast<size_t>(edges));
  for (int e = 0; e < edges; ++e) {
    src[static_cast<size_t>(e)] =
        static_cast<int>(rng.UniformInt(0, nodes - 1));
    dst[static_cast<size_t>(e)] =
        static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  for (auto _ : state) {
    Variable out = ScatterAddRows(RowGather(h, src), dst, nodes);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{edges} * dim);
}
BENCHMARK(BM_GatherScatter)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_RffTransform(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = 64;
  Rng rng(3);
  RffConfig config;
  RffFeatureMap rff(dim, config, &rng);
  Tensor z = Tensor::RandomNormal(n, dim, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rff.Transform(z).data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * dim);
}
BENCHMARK(BM_RffTransform)->Arg(128)->Arg(512)->Arg(2048);

void BM_DecorrelationLoss(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int dim = 64;
  Rng rng(4);
  RffConfig config;
  RffFeatureMap rff(dim, config, &rng);
  Tensor features = rff.Transform(Tensor::RandomNormal(n, dim, &rng));
  Variable w = Variable::Param(Tensor(n, 1, 1.f));
  for (auto _ : state) {
    Variable loss = DecorrelationLoss(features, rff.feature_source_dim(), w);
    loss.Backward();
    benchmark::DoNotOptimize(w.grad().data());
    w.ZeroGrad();
  }
}
BENCHMARK(BM_DecorrelationLoss)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_WeightOptimizerStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int dim = 32;
  Rng rng(5);
  RffConfig rff_config;
  RffFeatureMap rff(dim, rff_config, &rng);
  GlobalWeightBank bank =
      GlobalWeightBank::WithUniformGamma(1, batch, dim, 0.9f);
  Tensor z = Tensor::RandomNormal(batch, dim, &rng);
  bank.Update(z, Tensor(batch, 1, 1.f));
  WeightOptimizerConfig config;
  config.epochs_reweight = 1;  // One inner step per iteration.
  GraphWeightOptimizer optimizer(config);
  for (auto _ : state) {
    WeightOptimizerResult result = optimizer.Optimize(z, rff, &bank);
    benchmark::DoNotOptimize(result.weights.data());
  }
}
BENCHMARK(BM_WeightOptimizerStep)->Arg(32)->Arg(64)->Arg(128);

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) {
  bool gbench = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark", 0) == 0) gbench = true;
  }
  if (gbench) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  oodgnn::Flags flags(argc, argv);
  if (flags.Has("mp")) {
    oodgnn::CompareMessagePassing(flags.GetThreads(4),
                                  flags.GetString("mp-json", ""));
  } else if (flags.Has("simd")) {
    oodgnn::CompareSimd();
  } else {
    oodgnn::CompareBackends(flags.GetThreads(4));
  }
  return 0;
}
