// Extension study (beyond the paper's tables): how the attention-based
// GAT and sampling-free GraphSAGE — both cited in the paper's related
// work but absent from its comparison — behave under the same
// distribution shifts, next to the GIN backbone and OOD-GNN.
//
// Flags: --full, --seeds N, --epochs N, --scale F.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/2, /*epochs=*/15, /*scale=*/0.4,
                    &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  const std::vector<std::string> names = {"PROTEINS_25", "BACE"};
  std::vector<GraphDataset> datasets;
  for (const std::string& name : names) {
    datasets.push_back(MakeDatasetByName(name, options.data_scale, data_seed));
  }

  std::vector<Method> methods = {Method::kGin};
  for (Method m : ExtensionMethods()) methods.push_back(m);
  methods.push_back(Method::kOodGnn);

  std::printf(
      "=== Extension study: GAT / GraphSAGE under distribution shift "
      "(OOD test metric; seeds=%d, epochs=%d) ===\n",
      options.seeds, options.train.epochs);
  Timer timer;
  ResultTable table({"Method", "PROTEINS_25 (acc%)", "BACE (ROC-AUC%)"});
  for (Method method : methods) {
    std::vector<std::string> row = {MethodName(method)};
    for (const GraphDataset& dataset : datasets) {
      MethodScores scores =
          RunSeeds(method, dataset, options.train, options.seeds);
      row.push_back(FormatCell(scores.test, true));
    }
    table.AddRow(row);
    std::printf("  [%s done, %.0fs elapsed]\n", MethodName(method),
                timer.ElapsedSeconds());
  }
  table.Print();
  if (flags.Has("csv")) {
    const std::string csv_path = flags.GetString("csv", "");
    if (WriteStringToFile(csv_path, table.ToCsv())) {
      std::printf("[csv written to %s]\n", csv_path.c_str());
    }
  }
  std::printf(
      "Expected shape: the extension architectures inherit the same OOD "
      "brittleness as the paper's baselines; OOD-GNN's reweighting is "
      "architecture-orthogonal.\n");
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
