// Reproduces Table 4: results on the nine OGB-like molecule datasets
// under scaffold split — ROC-AUC (%) for the seven classification
// datasets (higher is better), RMSE for ESOL/FREESOLV (lower is
// better).
//
// Flags: --full, --seeds N, --epochs N, --scale F, --hidden D,
// --datasets TOX21,BACE (comma list to restrict columns).

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/data/molecule.h"
#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> parts;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/1, /*epochs=*/12,
                    /*scale=*/0.6, &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  std::vector<std::string> names = OgbMoleculeNames();
  if (flags.Has("datasets")) {
    names = SplitCommaList(flags.GetString("datasets", ""));
  }

  std::vector<GraphDataset> datasets;
  for (const std::string& name : names) {
    datasets.push_back(MakeDatasetByName(name, options.data_scale, data_seed));
  }

  std::printf(
      "=== Table 4: OGB scaffold-split test metrics "
      "(ROC-AUC %% ↑ for classification, RMSE ↓ for regression; "
      "seeds=%d, epochs=%d) ===\n",
      options.seeds, options.train.epochs);

  Timer timer;
  std::vector<std::string> headers = {"Method"};
  for (const GraphDataset& ds : datasets) headers.push_back(ds.name);
  ResultTable table(headers);
  for (Method method : AllMethods()) {
    std::vector<std::string> row = {MethodName(method)};
    for (const GraphDataset& dataset : datasets) {
      MethodScores scores =
          RunSeeds(method, dataset, options.train, options.seeds);
      const bool percent = dataset.task_type != TaskType::kRegression;
      row.push_back(FormatCell(scores.test, percent));
    }
    table.AddRow(row);
    std::printf("  [%s done, %.0fs elapsed]\n", MethodName(method),
                timer.ElapsedSeconds());
  }
  table.Print();
  if (flags.Has("csv")) {
    const std::string csv_path = flags.GetString("csv", "");
    if (WriteStringToFile(csv_path, table.ToCsv())) {
      std::printf("[csv written to %s]\n", csv_path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
