// Reproduces §4.7 (time complexity): one OOD-GNN training step costs
// O(|E|·d + |V|·d² + K·|B|·d²) versus GIN's O(|E|·d + |V|·d²) — i.e.
// the reweighting adds a term independent of the dataset size. The
// benchmarks below measure full train steps of GIN vs OOD-GNN while
// scaling batch size, representation width d, and the number of global
// groups K, so the reported times can be compared against the claimed
// growth rates.

#include <memory>

#include "benchmark/benchmark.h"
#include "src/core/ood_gnn.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

struct StepFixture {
  GraphDataset dataset;
  std::unique_ptr<GraphPredictionModel> model;
  std::unique_ptr<Adam> optimizer;
  std::unique_ptr<OodGnnReweighter> reweighter;
  std::unique_ptr<Rng> rng;
  GraphBatch batch;

  StepFixture(bool ood, int batch_size, int hidden, int num_groups) {
    TrianglesConfig data_config;
    data_config.num_train = batch_size;
    data_config.num_valid = 10;
    data_config.num_test = 10;
    dataset = MakeTrianglesDataset(data_config, 99);

    rng = std::make_unique<Rng>(7);
    EncoderConfig encoder;
    encoder.feature_dim = dataset.feature_dim;
    encoder.hidden_dim = hidden;
    encoder.num_layers = 3;
    model = std::make_unique<GraphPredictionModel>(
        ood ? Method::kOodGnn : Method::kGin, encoder, dataset.num_tasks,
        rng.get());
    optimizer = std::make_unique<Adam>(model->Parameters(), 1e-3f);
    if (ood) {
      OodGnnConfig config;
      config.num_global_groups = num_groups;
      config.weights.epochs_reweight = 5;
      reweighter = std::make_unique<OodGnnReweighter>(
          model->representation_dim(), batch_size, config, rng.get());
    }
    batch = MakeBatch(dataset.graphs, dataset.train_idx, 0,
                      dataset.train_idx.size());
  }

  void Step() {
    Variable z = model->Encode(batch, /*training=*/true, rng.get());
    std::vector<float> weights;
    if (reweighter) weights = reweighter->ComputeWeights(z.value());
    Variable logits = model->Classify(z, /*training=*/true);
    Variable loss = SoftmaxCrossEntropy(logits, batch.class_labels, weights);
    optimizer->ZeroGrad();
    loss.Backward();
    optimizer->Step();
  }
};

void BM_TrainStepGin(benchmark::State& state) {
  StepFixture fixture(/*ood=*/false, static_cast<int>(state.range(0)),
                      /*hidden=*/32, /*num_groups=*/1);
  for (auto _ : state) fixture.Step();
}
BENCHMARK(BM_TrainStepGin)->Arg(32)->Arg(64)->Arg(128);

void BM_TrainStepOodGnn(benchmark::State& state) {
  StepFixture fixture(/*ood=*/true, static_cast<int>(state.range(0)),
                      /*hidden=*/32, /*num_groups=*/1);
  for (auto _ : state) fixture.Step();
}
BENCHMARK(BM_TrainStepOodGnn)->Arg(32)->Arg(64)->Arg(128);

void BM_TrainStepOodGnnDim(benchmark::State& state) {
  StepFixture fixture(/*ood=*/true, /*batch=*/64,
                      static_cast<int>(state.range(0)), /*num_groups=*/1);
  for (auto _ : state) fixture.Step();
}
BENCHMARK(BM_TrainStepOodGnnDim)->Arg(16)->Arg(32)->Arg(64);

void BM_TrainStepOodGnnGroups(benchmark::State& state) {
  StepFixture fixture(/*ood=*/true, /*batch=*/64, /*hidden=*/32,
                      static_cast<int>(state.range(0)));
  for (auto _ : state) fixture.Step();
}
BENCHMARK(BM_TrainStepOodGnnGroups)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace oodgnn
