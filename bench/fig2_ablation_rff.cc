// Reproduces Figure 2: ablation on the random-Fourier-feature
// dimensionality. Sweeps the RFF budget {0.2x, 0.5x, 1x, 2x} (fractions
// subsample representation dimensions, multiples increase Q), the
// "no RFF" variant (linear decorrelation only), and the plain GIN
// baseline, on TRIANGLES, D&D_300 and OGBG-MOLBACE.
//
// Flags: --full, --seeds N, --epochs N, --scale F.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

struct Variant {
  std::string label;
  bool is_gin = false;       // Plain GIN baseline row.
  bool linear_only = false;  // "no RFF" row.
  float dim_fraction = 1.f;
  int num_functions = 1;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/2, /*epochs=*/15,
                    /*scale=*/0.4, &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  const std::vector<std::string> names = {"TRIANGLES", "DD_300", "BACE"};
  std::vector<GraphDataset> datasets;
  for (const std::string& name : names) {
    datasets.push_back(MakeDatasetByName(name, options.data_scale, data_seed));
  }

  const std::vector<Variant> variants = {
      {"GIN", /*is_gin=*/true, false, 1.f, 1},
      {"no RFF", false, /*linear_only=*/true, 1.f, 1},
      {"0.2x", false, false, 0.2f, 1},
      {"0.5x", false, false, 0.5f, 1},
      {"1x", false, false, 1.f, 1},
      {"2x", false, false, 1.f, 2},
  };

  std::printf(
      "=== Figure 2: RFF-dimensionality ablation (OOD test metric; "
      "accuracy %% for TRIANGLES/DD_300, ROC-AUC %% for BACE; "
      "seeds=%d, epochs=%d) ===\n",
      options.seeds, options.train.epochs);

  Timer timer;
  ResultTable table({"Variant", "TRIANGLES", "DD_300", "BACE"});
  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.label};
    for (const GraphDataset& dataset : datasets) {
      TrainConfig config = options.train;
      config.ood.rff.linear_only = variant.linear_only;
      config.ood.rff.dim_fraction = variant.dim_fraction;
      config.ood.rff.num_functions = variant.num_functions;
      const Method method =
          variant.is_gin ? Method::kGin : Method::kOodGnn;
      MethodScores scores = RunSeeds(method, dataset, config, options.seeds);
      row.push_back(FormatCell(scores.test, true));
    }
    table.AddRow(row);
    std::printf("  [%s done, %.0fs elapsed]\n", variant.label.c_str(),
                timer.ElapsedSeconds());
  }
  table.Print();
  std::printf(
      "Expected shape: metric grows with RFF budget (0.2x -> 2x); "
      "'no RFF' drops clearly below 1x; GIN is the no-reweighting "
      "reference.\n");
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
