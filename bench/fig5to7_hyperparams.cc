// Reproduces Figures 5–7: hyper-parameter sensitivity of OOD-GNN on
// TRIANGLES (Fig. 5), D&D_300 (Fig. 6) and OGBG-MOLBACE (Fig. 7).
// Four sweeps per dataset, matching the paper's panels:
//   (a) number of message-passing layers,
//   (b) representation dimensionality d,
//   (c) size of the global weights (number of memory groups K),
//   (d) momentum coefficient γ.
//
// Flags: --full, --seeds N, --epochs N, --scale F.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/1, /*epochs=*/8,
                    /*scale=*/0.3, &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  const std::vector<std::string> names = {"TRIANGLES", "DD_300", "BACE"};
  const std::vector<int> layer_sweep = {2, 3, 4, 5};
  const std::vector<int> dim_sweep = {16, 32, 64};
  const std::vector<int> group_sweep = {1, 2, 4};
  const std::vector<float> momentum_sweep = {0.5f, 0.7f, 0.9f, 0.99f};

  Timer timer;
  std::printf(
      "=== Figures 5-7: hyper-parameter sensitivity of OOD-GNN "
      "(OOD test metric; seeds=%d, epochs=%d) ===\n",
      options.seeds, options.train.epochs);

  for (size_t d = 0; d < names.size(); ++d) {
    GraphDataset dataset =
        MakeDatasetByName(names[d], options.data_scale, data_seed);
    std::printf("--- Figure %zu: %s ---\n", 5 + d, names[d].c_str());

    auto run = [&](const TrainConfig& config) {
      MethodScores scores =
          RunSeeds(Method::kOodGnn, dataset, config, options.seeds);
      return FormatCell(scores.test, true);
    };

    {
      ResultTable table({"#Layers", "Test metric"});
      for (int layers : layer_sweep) {
        TrainConfig config = options.train;
        config.encoder.num_layers = layers;
        table.AddRow({std::to_string(layers), run(config)});
      }
      table.Print();
    }
    {
      ResultTable table({"Dim d", "Test metric"});
      for (int dim : dim_sweep) {
        TrainConfig config = options.train;
        config.encoder.hidden_dim = dim;
        table.AddRow({std::to_string(dim), run(config)});
      }
      table.Print();
    }
    {
      ResultTable table({"GlobalGroups K", "Test metric"});
      for (int groups : group_sweep) {
        TrainConfig config = options.train;
        config.ood.num_global_groups = groups;
        table.AddRow({std::to_string(groups), run(config)});
      }
      table.Print();
    }
    {
      ResultTable table({"Momentum γ", "Test metric"});
      for (float momentum : momentum_sweep) {
        TrainConfig config = options.train;
        config.ood.momentum = momentum;
        char label[16];
        std::snprintf(label, sizeof(label), "%.2f", momentum);
        table.AddRow({label, run(config)});
      }
      table.Print();
    }
    std::printf("  [%s done, %.0fs elapsed]\n", names[d].c_str(),
                timer.ElapsedSeconds());
  }
  std::printf(
      "Expected shape: layer count has a dataset-dependent sweet spot "
      "(shallow suffices for TRIANGLES), larger K helps slightly, γ has "
      "mild influence.\n");
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
