// Reproduces Table 2: graph classification accuracy (%) on the two
// synthetic datasets. TRIANGLES is tested on larger graphs
// (Test(large)); MNIST-75SP is tested with grayscale feature noise
// (Test(noise)) and independent per-channel noise (Test(color)).
//
// Flags: --full (paper-leaning scale), --seeds N, --epochs N,
// --scale F, --hidden D, --layers L, --methods ood-only.

#include <cstdio>
#include <string>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/2, /*epochs=*/15,
                    /*scale=*/0.5, &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  Timer timer;
  GraphDataset triangles =
      MakeDatasetByName("TRIANGLES", options.data_scale, data_seed);
  GraphDataset mnist =
      MakeDatasetByName("MNIST-75SP", options.data_scale, data_seed);

  std::printf(
      "=== Table 2: accuracy (%%) on synthetic datasets "
      "(seeds=%d, epochs=%d) ===\n",
      options.seeds, options.train.epochs);
  ResultTable table({"Method", "TRI Train", "TRI Test(large)", "SP Train",
                     "SP Test(noise)", "SP Test(color)"});
  for (Method method : AllMethods()) {
    MethodScores tri =
        RunSeeds(method, triangles, options.train, options.seeds);
    MethodScores sp = RunSeeds(method, mnist, options.train, options.seeds);
    table.AddRow({MethodName(method), FormatCell(tri.train, true),
                  FormatCell(tri.test, true), FormatCell(sp.train, true),
                  FormatCell(sp.test, true), FormatCell(sp.test2, true)});
    std::printf("  [%s done, %.0fs elapsed]\n", MethodName(method),
                timer.ElapsedSeconds());
  }
  table.Print();
  if (flags.Has("csv")) {
    const std::string csv_path = flags.GetString("csv", "");
    if (WriteStringToFile(csv_path, table.ToCsv())) {
      std::printf("[csv written to %s]\n", csv_path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
