// Ablation of the global-local weight estimator (§3.3): compares
// learning the sample weights from the local mini-batch alone (the
// "straightforward alternative" the paper argues against — weight
// consistency across batches is lost) with the memory-bank estimator
// at K = 1, 2, 4 groups, plus the GIN reference.
//
// Flags: --full, --seeds N, --epochs N, --scale F.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/2, /*epochs=*/15, /*scale=*/0.4,
                    &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  const std::vector<std::string> names = {"PROTEINS_25", "BACE"};
  std::vector<GraphDataset> datasets;
  for (const std::string& name : names) {
    datasets.push_back(MakeDatasetByName(name, options.data_scale, data_seed));
  }

  struct Variant {
    std::string label;
    bool is_gin = false;
    bool use_bank = true;
    int num_groups = 1;
  };
  const std::vector<Variant> variants = {
      {"GIN (no reweighting)", /*is_gin=*/true, false, 0},
      {"local-only weights", false, /*use_bank=*/false, 0},
      {"global-local K=1", false, true, 1},
      {"global-local K=2", false, true, 2},
      {"global-local K=4", false, true, 4},
  };

  std::printf(
      "=== §3.3 ablation: global-local weight estimator "
      "(OOD test metric; seeds=%d, epochs=%d) ===\n",
      options.seeds, options.train.epochs);
  Timer timer;
  ResultTable table({"Variant", "PROTEINS_25 (acc%)", "BACE (ROC-AUC%)"});
  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.label};
    for (const GraphDataset& dataset : datasets) {
      TrainConfig config = options.train;
      config.ood.use_global_bank = variant.use_bank;
      if (variant.use_bank) {
        config.ood.num_global_groups = variant.num_groups;
      }
      const Method method = variant.is_gin ? Method::kGin : Method::kOodGnn;
      MethodScores scores = RunSeeds(method, dataset, config, options.seeds);
      row.push_back(FormatCell(scores.test, true));
    }
    table.AddRow(row);
    std::printf("  [%s done, %.0fs elapsed]\n", variant.label.c_str(),
                timer.ElapsedSeconds());
  }
  table.Print();
  if (flags.Has("csv")) {
    const std::string csv_path = flags.GetString("csv", "");
    if (WriteStringToFile(csv_path, table.ToCsv())) {
      std::printf("[csv written to %s]\n", csv_path.c_str());
    }
  }
  std::printf(
      "Expected shape: the memory-bank variants match or beat "
      "local-only weights (weight consistency across batches), and all "
      "reweighting variants beat plain GIN on the OOD split.\n");
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
