// Reproduces Figure 3: the weighted prediction loss over training
// epochs of OOD-GNN on TRIANGLES, D&D_300 and OGBG-MOLBACE, showing
// empirical convergence of the iterative optimization (Eqs. 6–7).
//
// Flags: --full, --epochs N, --scale F.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/flags.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

void PrintSeries(const std::string& name,
                 const std::vector<double>& losses,
                 const std::vector<double>& decor_losses) {
  std::printf("--- %s: weighted prediction loss per epoch ---\n",
              name.c_str());
  std::printf("epoch,pred_loss,decorrelation_loss\n");
  for (size_t e = 0; e < losses.size(); ++e) {
    std::printf("%zu,%.4f,%.6f\n", e + 1, losses[e],
                e < decor_losses.size() ? decor_losses[e] : 0.0);
  }
  // Compact ASCII sparkline of the prediction loss.
  double lo = 1e30, hi = -1e30;
  for (double v : losses) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::printf("trend: ");
  for (double v : losses) {
    const char* levels[] = {"_", ".", "-", "=", "#"};
    int level = hi > lo ? static_cast<int>((v - lo) / (hi - lo) * 4.999)
                        : 0;
    std::printf("%s", levels[level]);
  }
  std::printf("  (start=%.3f, end=%.3f)\n\n", losses.front(), losses.back());
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/1, /*epochs=*/30,
                    /*scale=*/0.4, &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  std::printf(
      "=== Figure 3: OOD-GNN training dynamics (epochs=%d) ===\n",
      options.train.epochs);
  Timer timer;
  for (const std::string& name :
       std::vector<std::string>{"TRIANGLES", "DD_300", "BACE"}) {
    GraphDataset dataset =
        MakeDatasetByName(name, options.data_scale, data_seed);
    MethodScores scores =
        RunSeeds(Method::kOodGnn, dataset, options.train, 1);
    PrintSeries(name, scores.last_run.epoch_losses,
                scores.last_run.epoch_decorrelation_losses);
  }
  std::printf("[done in %.0fs] Expected shape: losses decrease and "
              "flatten within the epoch budget (paper: converges in "
              "<100 epochs).\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
