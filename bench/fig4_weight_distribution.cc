// Reproduces Figure 4: the distribution of the learned graph weights
// after training OOD-GNN on TRIANGLES, D&D_300 and OGBG-MOLBACE. The
// paper's observation: the learned weights are non-trivial (not all 1)
// and their distribution differs slightly across datasets.
//
// Flags: --full, --epochs N, --scale F.

#include <cstdio>
#include <string>
#include <vector>

#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  ApplyFastDefaults(flags, /*seeds=*/1, /*epochs=*/15,
                    /*scale=*/0.4, &options);
  const uint64_t data_seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  std::printf(
      "=== Figure 4: learned graph-weight distributions (epochs=%d) "
      "===\n",
      options.train.epochs);
  Timer timer;
  for (const std::string& name :
       std::vector<std::string>{"TRIANGLES", "DD_300", "BACE"}) {
    GraphDataset dataset =
        MakeDatasetByName(name, options.data_scale, data_seed);
    MethodScores scores =
        RunSeeds(Method::kOodGnn, dataset, options.train, 1);
    const std::vector<float>& weights = scores.last_run.final_weights;
    std::vector<double> values(weights.begin(), weights.end());
    std::printf("--- %s (%zu weights) ---\n", name.c_str(), values.size());
    std::printf("mean=%s  min=%.3f  max=%.3f\n",
                MeanStdString(values, 3).c_str(),
                *std::min_element(values.begin(), values.end()),
                *std::max_element(values.begin(), values.end()));
    std::printf("%s\n",
                RenderHistogram(MakeHistogram(values, 12)).c_str());
  }
  std::printf("[done in %.0fs] Expected shape: weights spread around 1 "
              "with dataset-dependent tails (non-trivial reweighting).\n",
              timer.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) { return oodgnn::Main(argc, argv); }
