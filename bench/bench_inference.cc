// Benchmarks of the grad-free inference path (src/serve).
//
// Prints four sections:
//   1. taped vs no-grad forward on a full eval batch — the measured
//      speedup from skipping tape construction in eval, plus a bitwise
//      check that both paths produce identical logits;
//   2. single-graph latency percentiles (p50/p90/p99) through the
//      InferenceEngine versus a direct no-grad forward, for the eager
//      engine and the plan-then-execute (compiled) engine;
//   3. batched throughput (graphs/sec): a serial one-graph-at-a-time
//      loop versus the engine coalescing concurrent submissions into
//      dynamic micro-batches, eager vs compiled, with every engine
//      output checked bitwise against the tape-based reference;
//   4. the compiled engine's plan report: arena footprint, slot count,
//      liveness reuse ratio, and the steady-state allocation counters
//      (fallback_heap_allocs must be 0 — the zero-allocation serving
//      guarantee).
//
// Plus two DESIGN.md §16 sections:
//   5. scalar vs SIMD dispatch on the full no-grad eval forward — wall
//      clock for both plus the bitwise check (the vector path must be
//      invisible except in speed);
//   6. int8 quantized serving: single-graph latency through a
//      QuantizeMode::kOn engine, quantized-compiled throughput, the
//      max logit deviation against the fp32 reference (must stay
//      within the tolerance committed in tests/quant_test.cc), and the
//      zero-allocation check for the quantized compiled path.
//
// Flags: --threads N   compute-backend pool size (default 4)
//        --workers N   engine worker count for the pooled run (default 4)
//        --batch N     engine micro-batch size cutoff (default 32)
//        --wait-us N   engine batching window in microseconds (default 200)
//        --requests N  total graphs submitted in the throughput run
//                      (default 2000)
//        --smoke       small deterministic run that exits nonzero if any
//                      correctness gate fails (bitwise checks, quant
//                      tolerance, zero-alloc steady state) — registered
//                      as the bench_inference_smoke ctest
//        --json PATH   also write the machine-readable report to PATH
//                      (scripts/run_bench_inference.sh wraps this into
//                      BENCH_inference.json)
//        --metrics-out PREFIX   stream the global metrics registry to
//                      PREFIX.prom / PREFIX.jsonl while the bench runs
//        --metrics-json PATH    final global-registry snapshot at exit

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/serve/inference.h"
#include "src/tensor/backend.h"
#include "src/train/experiment.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/quant.h"
#include "src/tensor/simd.h"
#include "src/tensor/variable.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

/// Best-of-repetitions wall-clock of `fn`, in seconds per call.
/// Calibrates the iteration count so each repetition runs ~50 ms.
double TimePerCall(const std::function<void()>& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up.
  int iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt >= 0.05 || iters >= (1 << 22)) break;
    iters *= 2;
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt / iters < best) best = dt / iters;
  }
  return best;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

double Percentile(const std::vector<double>& sorted, double p) {
  const size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LatencyReport {
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
};

/// Sorted single-graph Predict latencies through a one-worker,
/// batch-of-one engine (queue handoff + one forward per sample).
LatencyReport MeasureLatency(serve::InferenceEngine* engine,
                             const std::vector<const Graph*>& graphs,
                             int samples) {
  engine->Predict(*graphs[0]);  // Warm-up (worker spin-up, plan touch).
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const Graph& g = *graphs[static_cast<size_t>(i) % graphs.size()];
    const auto t0 = std::chrono::steady_clock::now();
    engine->Predict(g);
    latencies_us.push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  LatencyReport report;
  report.p50_us = Percentile(latencies_us, 50);
  report.p90_us = Percentile(latencies_us, 90);
  report.p99_us = Percentile(latencies_us, 99);
  return report;
}

struct ThroughputReport {
  double seconds = 0;
  bool bitwise_ok = true;
  serve::InferenceStats stats;
};

/// `total_requests` graphs through `engine` from 4 submitter threads.
/// With `tolerance` 0 every returned row is checked bitwise against
/// `reference`; a positive tolerance instead bounds the max absolute
/// deviation (the quantized-serving contract) and reports it via
/// `max_diff_out`.
ThroughputReport MeasureThroughput(serve::InferenceEngine* engine,
                                   const std::vector<const Graph*>& graphs,
                                   const std::vector<Tensor>& reference,
                                   int total_requests, float tolerance = 0.f,
                                   double* max_diff_out = nullptr) {
  engine->Predict(*graphs[0]);  // Warm-up off the clock.
  ThroughputReport report;
  const int submitters = 4;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::pair<size_t, std::future<Tensor>>>> futures(
      static_cast<size_t>(submitters));
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (int i = s; i < total_requests; i += submitters) {
        const size_t gi = static_cast<size_t>(i) % graphs.size();
        futures[static_cast<size_t>(s)].emplace_back(
            gi, engine->Submit(*graphs[gi]));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double max_diff = 0;
  for (auto& shard : futures) {
    for (auto& [gi, future] : shard) {
      const Tensor row = future.get();
      if (tolerance == 0.f) {
        if (!BitwiseEqual(row, reference[gi])) report.bitwise_ok = false;
        continue;
      }
      for (int j = 0; j < row.size(); ++j) {
        const double diff =
            std::fabs(static_cast<double>(row[j]) - reference[gi][j]);
        max_diff = std::max(max_diff, diff);
        if (diff > tolerance) report.bitwise_ok = false;
      }
    }
  }
  if (max_diff_out != nullptr) *max_diff_out = max_diff;
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.stats = engine->stats();
  return report;
}

/// Quantized-serving logit tolerance, matching tests/quant_test.cc's
/// kQuantLogitTolerance.
constexpr float kQuantTolerance = 0.25f;

/// Runs the bench; returns the number of failed correctness gates
/// (bitwise divergence, quant tolerance breach, steady-state heap
/// allocation) — the --smoke exit code.
int RunBench(const Flags& flags) {
  const bool smoke = flags.Has("smoke");
  const int workers = flags.GetInt("workers", 4);
  const int max_batch = flags.GetInt("batch", 32);
  const int wait_us = flags.GetInt("wait-us", 200);
  const int total_requests = flags.GetInt("requests", smoke ? 120 : 2000);
  const int latency_samples = smoke ? 40 : 400;
  const std::string json_path = flags.GetString("json", "");

  // Dataset + model at the paper's Triangles scale (scaled-down test
  // split: the serving path only touches eval graphs). --smoke shrinks
  // everything: the run is a correctness gate, not a measurement.
  TrianglesConfig data_config;
  data_config.num_train = 64;
  data_config.num_valid = 16;
  data_config.num_test = smoke ? 24 : 128;
  GraphDataset dataset = MakeTrianglesDataset(data_config, 7);

  serve::ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder.feature_dim = dataset.feature_dim;
  spec.encoder.hidden_dim = 64;
  spec.encoder.num_layers = 3;
  spec.output_dim = dataset.OutputDim();

  Rng model_rng(19);
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim,
                             &model_rng);

  std::vector<const Graph*> eval_graphs;
  for (const size_t idx : dataset.test_idx) {
    eval_graphs.push_back(&dataset.graphs[idx]);
  }
  const GraphBatch eval_batch = GraphBatch::FromGraphs(eval_graphs);
  Rng eval_rng(23);

  // Plan envelope sized from the known graph population (the serving
  // operator's job): a worst-case batch of max_batch copies of the
  // biggest eval graph. Keeps every batch inside the plan, so the
  // steady state allocates nothing.
  int max_graph_nodes = 0;
  int max_graph_edges = 0;
  for (const Graph* g : eval_graphs) {
    max_graph_nodes = std::max(max_graph_nodes, g->num_nodes());
    max_graph_edges = std::max(max_graph_edges, g->num_edges());
  }

  const int cores = BenchOptions::HardwareConcurrency();
  std::printf("Inference-path benchmark: %s, %zu eval graphs, hidden=%d, "
              "layers=%d, backend threads=%d\n",
              MethodName(spec.method), eval_graphs.size(),
              spec.encoder.hidden_dim, spec.encoder.num_layers,
              GetBackend().num_threads());
  std::printf("hardware_concurrency=%d%s\n\n", cores,
              cores <= 1 ? "  (single core: pooled speedup <= 1 is expected "
                           "here; bitwise identity is the portable check)"
                         : "");

  // --- 1. taped vs no-grad forward -----------------------------------
  Tensor taped_logits =
      model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
  Tensor nograd_logits;
  {
    NoGradGuard no_grad;
    nograd_logits =
        model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
  }
  const bool nograd_bitwise = BitwiseEqual(taped_logits, nograd_logits);
  const double taped_s = TimePerCall(
      [&] { model.Predict(eval_batch, /*training=*/false, &eval_rng); });
  const double nograd_s = TimePerCall([&] {
    NoGradGuard no_grad;
    model.Predict(eval_batch, /*training=*/false, &eval_rng);
  });
  std::printf("eval forward (full batch, %zu graphs)\n", eval_graphs.size());
  std::printf("  taped:   %9.3f ms/call\n", taped_s * 1e3);
  std::printf("  no-grad: %9.3f ms/call   speedup %.2fx   bitwise %s\n\n",
              nograd_s * 1e3, taped_s / nograd_s,
              nograd_bitwise ? "OK" : "DIVERGED");

  // --- 5. scalar vs SIMD dispatch on the no-grad eval forward --------
  double scalar_fwd_s;
  double simd_fwd_s;
  bool simd_bitwise;
  {
    NoGradGuard no_grad;
    Tensor scalar_out, simd_out;
    {
      simd::ScopedSimdEnabled off(false);
      scalar_out =
          model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
      scalar_fwd_s = TimePerCall(
          [&] { model.Predict(eval_batch, /*training=*/false, &eval_rng); });
    }
    {
      simd::ScopedSimdEnabled on(true);
      simd_out =
          model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
      simd_fwd_s = TimePerCall(
          [&] { model.Predict(eval_batch, /*training=*/false, &eval_rng); });
    }
    simd_bitwise = BitwiseEqual(scalar_out, simd_out);
  }
  std::printf("simd dispatch (no-grad eval forward, isa=%s)\n",
              simd::IsaName());
  std::printf("  scalar:  %9.3f ms/call\n", scalar_fwd_s * 1e3);
  std::printf("  simd:    %9.3f ms/call   speedup %.2fx   bitwise %s%s\n\n",
              simd_fwd_s * 1e3, scalar_fwd_s / simd_fwd_s,
              simd_bitwise ? "OK" : "DIVERGED",
              simd::Available() ? "" : "  (no vector ISA: scalar==scalar)");

  // --- 5b. bandwidth-regime quantized matmul probe -------------------
  // Weight-only int8 cannot beat fp32 SIMD on cache-resident weights
  // (the int8->f32 conversion adds work and the 4x byte saving never
  // reaches a bottleneck); its payoff regime is few-row activations
  // against weights too large for the cache hierarchy — the GEMV shape
  // production serving hits on wide layers — where fp32 must stream 4x
  // the bytes. This times exactly that: one activation row against a
  // 512 MiB fp32 weight matrix vs its 132 MiB Q8_0 image. Skipped
  // under --smoke (the allocation alone is half a gigabyte).
  double gemv_fp32_s = 0;
  double gemv_q8_s = 0;
  std::int64_t gemv_fp32_bytes = 0;
  std::int64_t gemv_q8_bytes = 0;
  if (!smoke && simd::Available()) {
    const int gk = 4096, gn = 32768;
    Tensor ga(1, gk);
    Tensor gw(gk, gn);
    for (int p = 0; p < gk; ++p) {
      ga.data()[p] = 0.5f + 0.25f * static_cast<float>(p % 7);
    }
    float* wd = gw.data();
    const std::int64_t wn = static_cast<std::int64_t>(gk) * gn;
    for (std::int64_t idx = 0; idx < wn; ++idx) {
      wd[idx] = static_cast<float>(
                    static_cast<int>((idx * 2654435761ull >> 7) & 255) - 128) /
                64.f;
    }
    const QuantizedTensor gq = QuantizeQ8(gw);
    gemv_fp32_bytes = wn * static_cast<std::int64_t>(sizeof(float));
    gemv_q8_bytes = static_cast<std::int64_t>(gq.byte_size());
    Tensor gout(1, gn);
    gemv_fp32_s = TimePerCall([&] { simd::MatMulAcc(ga, gw, &gout, 0, 1); });
    gemv_q8_s =
        TimePerCall([&] { simd::MatMulQuantAcc(ga, gq, &gout, 0, 1); });
    const double gflops = 2.0 * static_cast<double>(wn) / 1e9;
    std::printf(
        "bandwidth-regime quant probe (1 row x [%dx%d] weights, "
        "%.0f MiB fp32 vs %.0f MiB q8)\n",
        gk, gn, gemv_fp32_bytes / 1048576.0, gemv_q8_bytes / 1048576.0);
    std::printf("  fp32 simd: %9.3f ms/call  (%6.2f GF/s)\n",
                gemv_fp32_s * 1e3, gflops / gemv_fp32_s);
    std::printf(
        "  int8 q8:   %9.3f ms/call  (%6.2f GF/s)   int8-vs-fp32 %.2fx\n\n",
        gemv_q8_s * 1e3, gflops / gemv_q8_s, gemv_fp32_s / gemv_q8_s);
  }

  // --- 2. single-graph latency percentiles: eager vs compiled --------
  // One worker, batch size 1, no batching window: each Predict measures
  // queue handoff + one forward.
  LatencyReport eager_latency;
  LatencyReport planned_latency;
  LatencyReport quant_latency;
  double direct_us = 0;
  {
    const int samples = latency_samples;
    serve::InferenceOptions options;
    options.num_workers = 1;
    options.max_batch_graphs = 1;
    options.max_batch_wait_us = 0;
    options.quantize = serve::QuantizeMode::kOff;  // fp32 rows below.

    options.compiled = false;
    serve::InferenceEngine eager(spec, options);
    eager.SyncFrom(model);
    eager_latency = MeasureLatency(&eager, eval_graphs, samples);

    options.compiled = true;
    options.plan_max_nodes = max_graph_nodes;
    options.plan_max_edges = max_graph_edges;
    serve::InferenceEngine planned(spec, options);
    planned.SyncFrom(model);
    planned_latency = MeasureLatency(&planned, eval_graphs, samples);

    options.compiled = false;
    options.quantize = serve::QuantizeMode::kOn;
    serve::InferenceEngine quantized(spec, options);
    quantized.SyncFrom(model);
    quant_latency = MeasureLatency(&quantized, eval_graphs, samples);

    const Graph& probe = *eval_graphs[0];
    const GraphBatch probe_batch = GraphBatch::FromGraphs({&probe});
    const double direct_s = TimePerCall([&] {
      NoGradGuard no_grad;
      model.Predict(probe_batch, /*training=*/false, &eval_rng);
    });
    direct_us = direct_s * 1e6;
    std::printf("single-graph latency (engine, %d samples)\n", samples);
    std::printf("  eager:    p50 %8.1f us   p90 %8.1f us   p99 %8.1f us\n",
                eager_latency.p50_us, eager_latency.p90_us,
                eager_latency.p99_us);
    std::printf("  compiled: p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   "
                "(direct no-grad forward: %.1f us)\n",
                planned_latency.p50_us, planned_latency.p90_us,
                planned_latency.p99_us, direct_us);
    std::printf("  int8:     p50 %8.1f us   p90 %8.1f us   p99 %8.1f us\n\n",
                quant_latency.p50_us, quant_latency.p90_us,
                quant_latency.p99_us);
  }

  // --- 3. batched throughput: serial loop vs pooled engines ----------
  // Reference rows for the bitwise check, via the tape-based path.
  std::vector<Tensor> reference;
  for (const Graph* g : eval_graphs) {
    reference.push_back(
        model.Predict(GraphBatch::FromGraphs({g}), false, &eval_rng).value());
  }

  double serial_s;
  {
    const auto t0 = std::chrono::steady_clock::now();
    NoGradGuard no_grad;
    for (int i = 0; i < total_requests; ++i) {
      const Graph* g = eval_graphs[static_cast<size_t>(i) % eval_graphs.size()];
      model.Predict(GraphBatch::FromGraphs({g}), false, &eval_rng);
    }
    serial_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  serve::InferenceOptions options;
  options.num_workers = workers;
  options.max_batch_graphs = max_batch;
  options.max_batch_wait_us = wait_us;
  options.quantize = serve::QuantizeMode::kOff;  // fp32 rows first.

  options.compiled = false;
  serve::InferenceEngine eager_engine(spec, options);
  eager_engine.SyncFrom(model);
  const ThroughputReport eager_tp =
      MeasureThroughput(&eager_engine, eval_graphs, reference, total_requests);

  options.compiled = true;
  options.plan_max_nodes = max_batch * max_graph_nodes;
  options.plan_max_edges = max_batch * max_graph_edges;
  serve::InferenceEngine planned_engine(spec, options);
  planned_engine.SyncFrom(model);
  const ThroughputReport planned_tp = MeasureThroughput(
      &planned_engine, eval_graphs, reference, total_requests);

  // Quantized + compiled: the int8 serving configuration. Checked
  // against the fp32 reference within the committed tolerance instead
  // of bitwise (quantized serving is approximate by design).
  options.quantize = serve::QuantizeMode::kOn;
  serve::InferenceEngine quant_engine(spec, options);
  quant_engine.SyncFrom(model);
  double quant_max_diff = 0;
  const ThroughputReport quant_tp =
      MeasureThroughput(&quant_engine, eval_graphs, reference, total_requests,
                        kQuantTolerance, &quant_max_diff);

  std::printf("batched throughput (%d requests)\n", total_requests);
  std::printf("  serial loop:     %10.1f graphs/sec\n",
              total_requests / serial_s);
  std::printf("  eager engine:    %10.1f graphs/sec   speedup %.2fx   "
              "bitwise %s\n",
              total_requests / eager_tp.seconds, serial_s / eager_tp.seconds,
              eager_tp.bitwise_ok ? "OK" : "DIVERGED");
  std::printf("  compiled engine: %10.1f graphs/sec   speedup %.2fx   "
              "bitwise %s   (vs eager %.2fx)\n",
              total_requests / planned_tp.seconds,
              serial_s / planned_tp.seconds,
              planned_tp.bitwise_ok ? "OK" : "DIVERGED",
              eager_tp.seconds / planned_tp.seconds);
  std::printf("  int8 compiled:   %10.1f graphs/sec   speedup %.2fx   "
              "max|dlogit| %.4f %s (tol %.2f)\n",
              total_requests / quant_tp.seconds, serial_s / quant_tp.seconds,
              quant_max_diff, quant_tp.bitwise_ok ? "OK" : "BREACHED",
              static_cast<double>(kQuantTolerance));
  std::printf("  engine: %d workers, batch<=%d, wait %d us, "
              "%lld batches (%.1f graphs/batch avg)\n\n",
              workers, max_batch, wait_us,
              static_cast<long long>(planned_tp.stats.batches),
              planned_tp.stats.batches > 0
                  ? static_cast<double>(planned_tp.stats.requests) /
                        static_cast<double>(planned_tp.stats.batches)
                  : 0.0);

  // --- 4. compiled plan report ---------------------------------------
  const std::shared_ptr<const ComputePlan> plan = planned_engine.plan();
  const serve::InferenceStats ps = planned_tp.stats;
  if (plan != nullptr) {
    std::printf("compiled plan (per worker)\n");
    std::printf("  arena %.1f KiB, %zu slots (%.1f KiB demand, reuse "
                "%.2fx), %zu kernels, %zu ops\n",
                static_cast<double>(plan->capacity_bytes()) / 1024.0,
                plan->slots.size(),
                static_cast<double>(plan->slot_floats_total) * 4.0 / 1024.0,
                plan->reuse_ratio(), plan->kernels.size(), plan->ops.size());
    std::printf("  planned %lld / eager %lld / diverged %lld batches, "
                "fallback heap allocs %lld%s\n\n",
                static_cast<long long>(ps.planned_batches),
                static_cast<long long>(ps.eager_batches),
                static_cast<long long>(ps.diverged_batches),
                static_cast<long long>(ps.fallback_heap_allocs),
                ps.fallback_heap_allocs == 0
                    ? "  (zero-allocation steady state: OK)"
                    : "");
  }

  // --- 6. quantized compiled plan report -----------------------------
  const std::shared_ptr<const ComputePlan> quant_plan = quant_engine.plan();
  const serve::InferenceStats qs = quant_tp.stats;
  std::printf("int8 quantized serving (Q8_0 blocks of %d)\n", kQuantBlockSize);
  std::printf("  plan dtype %s, planned %lld / diverged %lld batches, "
              "fallback heap allocs %lld%s\n\n",
              quant_plan != nullptr ? WeightDtypeName(quant_plan->weight_dtype)
                                    : "none",
              static_cast<long long>(qs.planned_batches),
              static_cast<long long>(qs.diverged_batches),
              static_cast<long long>(qs.fallback_heap_allocs),
              qs.fallback_heap_allocs == 0
                  ? "  (zero-allocation steady state: OK)"
                  : "");

  if (!json_path.empty()) {
    const bool bitwise_ok =
        nograd_bitwise && eager_tp.bitwise_ok && planned_tp.bitwise_ok;
    obs::JsonObjectWriter plan_json;
    if (plan != nullptr) {
      plan_json.Put("arena_bytes", static_cast<std::int64_t>(ps.arena_bytes))
          .Put("slots", static_cast<std::int64_t>(plan->slots.size()))
          .Put("kernels", static_cast<std::int64_t>(plan->kernels.size()))
          .Put("ops", static_cast<std::int64_t>(plan->ops.size()))
          .Put("reuse_ratio", plan->reuse_ratio())
          .Put("planned_batches", ps.planned_batches)
          .Put("eager_batches", ps.eager_batches)
          .Put("diverged_batches", ps.diverged_batches)
          .Put("fallback_heap_allocs", ps.fallback_heap_allocs)
          .Put("recompiles", ps.plan_recompiles);
    }
    const std::string report =
        obs::JsonObjectWriter()
            .Put("bench", "inference")
            .Put("method", MethodName(spec.method))
            .Put("eval_graphs", static_cast<std::int64_t>(eval_graphs.size()))
            .Put("hidden_dim", spec.encoder.hidden_dim)
            .Put("num_layers", spec.encoder.num_layers)
            .Put("threads", GetBackend().num_threads())
            .Put("hardware_concurrency", cores)
            .Put("workers", workers)
            .Put("max_batch", max_batch)
            .Put("wait_us", wait_us)
            .Put("requests", total_requests)
            .Put("taped_ms", taped_s * 1e3)
            .Put("nograd_ms", nograd_s * 1e3)
            .Put("nograd_speedup", taped_s / nograd_s)
            .PutRaw("latency_us",
                    obs::JsonObjectWriter()
                        .Put("direct", direct_us)
                        .Put("eager_p50", eager_latency.p50_us)
                        .Put("eager_p90", eager_latency.p90_us)
                        .Put("eager_p99", eager_latency.p99_us)
                        .Put("compiled_p50", planned_latency.p50_us)
                        .Put("compiled_p90", planned_latency.p90_us)
                        .Put("compiled_p99", planned_latency.p99_us)
                        .Put("quant_p50", quant_latency.p50_us)
                        .Put("quant_p90", quant_latency.p90_us)
                        .Put("quant_p99", quant_latency.p99_us)
                        .Build())
            .PutRaw("throughput_gps",
                    obs::JsonObjectWriter()
                        .Put("serial", total_requests / serial_s)
                        .Put("eager", total_requests / eager_tp.seconds)
                        .Put("compiled", total_requests / planned_tp.seconds)
                        .Put("compiled_vs_eager",
                             eager_tp.seconds / planned_tp.seconds)
                        .Put("quant_compiled",
                             total_requests / quant_tp.seconds)
                        .Put("quant_vs_fp32_compiled",
                             planned_tp.seconds / quant_tp.seconds)
                        .Build())
            .PutRaw("simd",
                    obs::JsonObjectWriter()
                        .Put("isa", simd::IsaName())
                        .Put("available", simd::Available())
                        .Put("scalar_forward_ms", scalar_fwd_s * 1e3)
                        .Put("simd_forward_ms", simd_fwd_s * 1e3)
                        .Put("speedup", scalar_fwd_s / simd_fwd_s)
                        .Put("bitwise", simd_bitwise)
                        .Build())
            .PutRaw("quant",
                    obs::JsonObjectWriter()
                        .Put("block_size", kQuantBlockSize)
                        .Put("tolerance", static_cast<double>(kQuantTolerance))
                        .Put("max_logit_diff", quant_max_diff)
                        .Put("within_tolerance", quant_tp.bitwise_ok)
                        .Put("diverged_batches", qs.diverged_batches)
                        .Put("fallback_heap_allocs", qs.fallback_heap_allocs)
                        .PutRaw("bandwidth_gemv",
                                obs::JsonObjectWriter()
                                    .Put("fp32_weight_bytes",
                                         gemv_fp32_bytes)
                                    .Put("q8_weight_bytes", gemv_q8_bytes)
                                    .Put("fp32_ms", gemv_fp32_s * 1e3)
                                    .Put("q8_ms", gemv_q8_s * 1e3)
                                    .Put("q8_vs_fp32",
                                         gemv_q8_s > 0
                                             ? gemv_fp32_s / gemv_q8_s
                                             : 0.0)
                                    .Build())
                        .Build())
            .PutRaw("plan", plan_json.Build())
            .Put("bitwise_ok", bitwise_ok)
            .Build();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("ERROR: cannot write %s\n", json_path.c_str());
    }
  }

  // Correctness gates — the --smoke contract (always evaluated; only
  // the PASS/FAIL table is smoke-gated so a plain run stays a report).
  int failures = 0;
  const auto gate = [&](bool ok, const char* what) {
    if (!ok) ++failures;
    if (smoke) std::printf("smoke %-32s %s\n", what, ok ? "PASS" : "FAIL");
  };
  gate(nograd_bitwise, "nograd-bitwise");
  gate(simd_bitwise, "simd-bitwise");
  gate(eager_tp.bitwise_ok, "eager-engine-bitwise");
  gate(planned_tp.bitwise_ok, "compiled-engine-bitwise");
  gate(planned_tp.stats.fallback_heap_allocs == 0, "compiled-zero-alloc");
  gate(quant_tp.bitwise_ok, "quant-within-tolerance");
  gate(quant_max_diff > 0, "quant-path-engaged");
  gate(qs.diverged_batches == 0, "quant-no-diverged-replays");
  gate(qs.fallback_heap_allocs == 0, "quant-compiled-zero-alloc");
  gate(quant_plan != nullptr &&
           quant_plan->weight_dtype == WeightDtype::kQ8,
       "quant-plan-dtype-q8");
  if (smoke && failures > 0) std::printf("smoke: %d FAILURES\n", failures);
  return failures;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  oodgnn::SetBackendThreads(flags.GetThreads(4));
  // Uniform observability flags (same surface as the table binaries).
  const std::string metrics_out = flags.GetMetricsOut();
  if (!metrics_out.empty()) {
    oodgnn::obs::StartGlobalExporter(metrics_out,
                                     flags.GetMetricsIntervalMs());
  }
  const std::string metrics_json = flags.GetString("metrics-json", "");
  if (!metrics_json.empty()) {
    oodgnn::obs::RegisterMetricsJsonDumpAtExit(metrics_json);
  }
  return oodgnn::RunBench(flags);
}
