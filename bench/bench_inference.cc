// Benchmarks of the grad-free inference path (src/serve).
//
// Prints four sections:
//   1. taped vs no-grad forward on a full eval batch — the measured
//      speedup from skipping tape construction in eval, plus a bitwise
//      check that both paths produce identical logits;
//   2. single-graph latency percentiles (p50/p90/p99) through the
//      InferenceEngine versus a direct no-grad forward, for the eager
//      engine and the plan-then-execute (compiled) engine;
//   3. batched throughput (graphs/sec): a serial one-graph-at-a-time
//      loop versus the engine coalescing concurrent submissions into
//      dynamic micro-batches, eager vs compiled, with every engine
//      output checked bitwise against the tape-based reference;
//   4. the compiled engine's plan report: arena footprint, slot count,
//      liveness reuse ratio, and the steady-state allocation counters
//      (fallback_heap_allocs must be 0 — the zero-allocation serving
//      guarantee).
//
// Flags: --threads N   compute-backend pool size (default 4)
//        --workers N   engine worker count for the pooled run (default 4)
//        --batch N     engine micro-batch size cutoff (default 32)
//        --wait-us N   engine batching window in microseconds (default 200)
//        --requests N  total graphs submitted in the throughput run
//                      (default 2000)
//        --json PATH   also write the machine-readable report to PATH
//                      (scripts/run_bench_inference.sh wraps this into
//                      BENCH_inference.json)
//        --metrics-out PREFIX   stream the global metrics registry to
//                      PREFIX.prom / PREFIX.jsonl while the bench runs
//        --metrics-json PATH    final global-registry snapshot at exit

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/serve/inference.h"
#include "src/tensor/backend.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/variable.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

/// Best-of-repetitions wall-clock of `fn`, in seconds per call.
/// Calibrates the iteration count so each repetition runs ~50 ms.
double TimePerCall(const std::function<void()>& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up.
  int iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt >= 0.05 || iters >= (1 << 22)) break;
    iters *= 2;
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt / iters < best) best = dt / iters;
  }
  return best;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

double Percentile(const std::vector<double>& sorted, double p) {
  const size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct LatencyReport {
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
};

/// Sorted single-graph Predict latencies through a one-worker,
/// batch-of-one engine (queue handoff + one forward per sample).
LatencyReport MeasureLatency(serve::InferenceEngine* engine,
                             const std::vector<const Graph*>& graphs,
                             int samples) {
  engine->Predict(*graphs[0]);  // Warm-up (worker spin-up, plan touch).
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const Graph& g = *graphs[static_cast<size_t>(i) % graphs.size()];
    const auto t0 = std::chrono::steady_clock::now();
    engine->Predict(g);
    latencies_us.push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  LatencyReport report;
  report.p50_us = Percentile(latencies_us, 50);
  report.p90_us = Percentile(latencies_us, 90);
  report.p99_us = Percentile(latencies_us, 99);
  return report;
}

struct ThroughputReport {
  double seconds = 0;
  bool bitwise_ok = true;
  serve::InferenceStats stats;
};

/// `total_requests` graphs through `engine` from 4 submitter threads,
/// every returned row checked bitwise against `reference`.
ThroughputReport MeasureThroughput(serve::InferenceEngine* engine,
                                   const std::vector<const Graph*>& graphs,
                                   const std::vector<Tensor>& reference,
                                   int total_requests) {
  engine->Predict(*graphs[0]);  // Warm-up off the clock.
  ThroughputReport report;
  const int submitters = 4;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::pair<size_t, std::future<Tensor>>>> futures(
      static_cast<size_t>(submitters));
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      for (int i = s; i < total_requests; i += submitters) {
        const size_t gi = static_cast<size_t>(i) % graphs.size();
        futures[static_cast<size_t>(s)].emplace_back(
            gi, engine->Submit(*graphs[gi]));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (auto& shard : futures) {
    for (auto& [gi, future] : shard) {
      const Tensor row = future.get();
      if (!BitwiseEqual(row, reference[gi])) report.bitwise_ok = false;
    }
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.stats = engine->stats();
  return report;
}

void RunBench(const Flags& flags) {
  const int workers = flags.GetInt("workers", 4);
  const int max_batch = flags.GetInt("batch", 32);
  const int wait_us = flags.GetInt("wait-us", 200);
  const int total_requests = flags.GetInt("requests", 2000);
  const std::string json_path = flags.GetString("json", "");

  // Dataset + model at the paper's Triangles scale (scaled-down test
  // split: the serving path only touches eval graphs).
  TrianglesConfig data_config;
  data_config.num_train = 64;
  data_config.num_valid = 16;
  data_config.num_test = 128;
  GraphDataset dataset = MakeTrianglesDataset(data_config, 7);

  serve::ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder.feature_dim = dataset.feature_dim;
  spec.encoder.hidden_dim = 64;
  spec.encoder.num_layers = 3;
  spec.output_dim = dataset.OutputDim();

  Rng model_rng(19);
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim,
                             &model_rng);

  std::vector<const Graph*> eval_graphs;
  for (const size_t idx : dataset.test_idx) {
    eval_graphs.push_back(&dataset.graphs[idx]);
  }
  const GraphBatch eval_batch = GraphBatch::FromGraphs(eval_graphs);
  Rng eval_rng(23);

  // Plan envelope sized from the known graph population (the serving
  // operator's job): a worst-case batch of max_batch copies of the
  // biggest eval graph. Keeps every batch inside the plan, so the
  // steady state allocates nothing.
  int max_graph_nodes = 0;
  int max_graph_edges = 0;
  for (const Graph* g : eval_graphs) {
    max_graph_nodes = std::max(max_graph_nodes, g->num_nodes());
    max_graph_edges = std::max(max_graph_edges, g->num_edges());
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Inference-path benchmark: %s, %zu eval graphs, hidden=%d, "
              "layers=%d, backend threads=%d\n",
              MethodName(spec.method), eval_graphs.size(),
              spec.encoder.hidden_dim, spec.encoder.num_layers,
              GetBackend().num_threads());
  std::printf("hardware_concurrency=%u%s\n\n", cores,
              cores <= 1 ? "  (single core: pooled speedup <= 1 is expected "
                           "here; bitwise identity is the portable check)"
                         : "");

  // --- 1. taped vs no-grad forward -----------------------------------
  Tensor taped_logits =
      model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
  Tensor nograd_logits;
  {
    NoGradGuard no_grad;
    nograd_logits =
        model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
  }
  const bool nograd_bitwise = BitwiseEqual(taped_logits, nograd_logits);
  const double taped_s = TimePerCall(
      [&] { model.Predict(eval_batch, /*training=*/false, &eval_rng); });
  const double nograd_s = TimePerCall([&] {
    NoGradGuard no_grad;
    model.Predict(eval_batch, /*training=*/false, &eval_rng);
  });
  std::printf("eval forward (full batch, %zu graphs)\n", eval_graphs.size());
  std::printf("  taped:   %9.3f ms/call\n", taped_s * 1e3);
  std::printf("  no-grad: %9.3f ms/call   speedup %.2fx   bitwise %s\n\n",
              nograd_s * 1e3, taped_s / nograd_s,
              nograd_bitwise ? "OK" : "DIVERGED");

  // --- 2. single-graph latency percentiles: eager vs compiled --------
  // One worker, batch size 1, no batching window: each Predict measures
  // queue handoff + one forward.
  LatencyReport eager_latency;
  LatencyReport planned_latency;
  double direct_us = 0;
  {
    const int samples = 400;
    serve::InferenceOptions options;
    options.num_workers = 1;
    options.max_batch_graphs = 1;
    options.max_batch_wait_us = 0;

    options.compiled = false;
    serve::InferenceEngine eager(spec, options);
    eager.SyncFrom(model);
    eager_latency = MeasureLatency(&eager, eval_graphs, samples);

    options.compiled = true;
    options.plan_max_nodes = max_graph_nodes;
    options.plan_max_edges = max_graph_edges;
    serve::InferenceEngine planned(spec, options);
    planned.SyncFrom(model);
    planned_latency = MeasureLatency(&planned, eval_graphs, samples);

    const Graph& probe = *eval_graphs[0];
    const GraphBatch probe_batch = GraphBatch::FromGraphs({&probe});
    const double direct_s = TimePerCall([&] {
      NoGradGuard no_grad;
      model.Predict(probe_batch, /*training=*/false, &eval_rng);
    });
    direct_us = direct_s * 1e6;
    std::printf("single-graph latency (engine, %d samples)\n", samples);
    std::printf("  eager:    p50 %8.1f us   p90 %8.1f us   p99 %8.1f us\n",
                eager_latency.p50_us, eager_latency.p90_us,
                eager_latency.p99_us);
    std::printf("  compiled: p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   "
                "(direct no-grad forward: %.1f us)\n\n",
                planned_latency.p50_us, planned_latency.p90_us,
                planned_latency.p99_us, direct_us);
  }

  // --- 3. batched throughput: serial loop vs pooled engines ----------
  // Reference rows for the bitwise check, via the tape-based path.
  std::vector<Tensor> reference;
  for (const Graph* g : eval_graphs) {
    reference.push_back(
        model.Predict(GraphBatch::FromGraphs({g}), false, &eval_rng).value());
  }

  double serial_s;
  {
    const auto t0 = std::chrono::steady_clock::now();
    NoGradGuard no_grad;
    for (int i = 0; i < total_requests; ++i) {
      const Graph* g = eval_graphs[static_cast<size_t>(i) % eval_graphs.size()];
      model.Predict(GraphBatch::FromGraphs({g}), false, &eval_rng);
    }
    serial_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  serve::InferenceOptions options;
  options.num_workers = workers;
  options.max_batch_graphs = max_batch;
  options.max_batch_wait_us = wait_us;

  options.compiled = false;
  serve::InferenceEngine eager_engine(spec, options);
  eager_engine.SyncFrom(model);
  const ThroughputReport eager_tp =
      MeasureThroughput(&eager_engine, eval_graphs, reference, total_requests);

  options.compiled = true;
  options.plan_max_nodes = max_batch * max_graph_nodes;
  options.plan_max_edges = max_batch * max_graph_edges;
  serve::InferenceEngine planned_engine(spec, options);
  planned_engine.SyncFrom(model);
  const ThroughputReport planned_tp = MeasureThroughput(
      &planned_engine, eval_graphs, reference, total_requests);

  std::printf("batched throughput (%d requests)\n", total_requests);
  std::printf("  serial loop:     %10.1f graphs/sec\n",
              total_requests / serial_s);
  std::printf("  eager engine:    %10.1f graphs/sec   speedup %.2fx   "
              "bitwise %s\n",
              total_requests / eager_tp.seconds, serial_s / eager_tp.seconds,
              eager_tp.bitwise_ok ? "OK" : "DIVERGED");
  std::printf("  compiled engine: %10.1f graphs/sec   speedup %.2fx   "
              "bitwise %s   (vs eager %.2fx)\n",
              total_requests / planned_tp.seconds,
              serial_s / planned_tp.seconds,
              planned_tp.bitwise_ok ? "OK" : "DIVERGED",
              eager_tp.seconds / planned_tp.seconds);
  std::printf("  engine: %d workers, batch<=%d, wait %d us, "
              "%lld batches (%.1f graphs/batch avg)\n\n",
              workers, max_batch, wait_us,
              static_cast<long long>(planned_tp.stats.batches),
              planned_tp.stats.batches > 0
                  ? static_cast<double>(planned_tp.stats.requests) /
                        static_cast<double>(planned_tp.stats.batches)
                  : 0.0);

  // --- 4. compiled plan report ---------------------------------------
  const std::shared_ptr<const ComputePlan> plan = planned_engine.plan();
  const serve::InferenceStats ps = planned_tp.stats;
  if (plan != nullptr) {
    std::printf("compiled plan (per worker)\n");
    std::printf("  arena %.1f KiB, %zu slots (%.1f KiB demand, reuse "
                "%.2fx), %zu kernels, %zu ops\n",
                static_cast<double>(plan->capacity_bytes()) / 1024.0,
                plan->slots.size(),
                static_cast<double>(plan->slot_floats_total) * 4.0 / 1024.0,
                plan->reuse_ratio(), plan->kernels.size(), plan->ops.size());
    std::printf("  planned %lld / eager %lld / diverged %lld batches, "
                "fallback heap allocs %lld%s\n\n",
                static_cast<long long>(ps.planned_batches),
                static_cast<long long>(ps.eager_batches),
                static_cast<long long>(ps.diverged_batches),
                static_cast<long long>(ps.fallback_heap_allocs),
                ps.fallback_heap_allocs == 0
                    ? "  (zero-allocation steady state: OK)"
                    : "");
  }

  if (!json_path.empty()) {
    const bool bitwise_ok =
        nograd_bitwise && eager_tp.bitwise_ok && planned_tp.bitwise_ok;
    obs::JsonObjectWriter plan_json;
    if (plan != nullptr) {
      plan_json.Put("arena_bytes", static_cast<std::int64_t>(ps.arena_bytes))
          .Put("slots", static_cast<std::int64_t>(plan->slots.size()))
          .Put("kernels", static_cast<std::int64_t>(plan->kernels.size()))
          .Put("ops", static_cast<std::int64_t>(plan->ops.size()))
          .Put("reuse_ratio", plan->reuse_ratio())
          .Put("planned_batches", ps.planned_batches)
          .Put("eager_batches", ps.eager_batches)
          .Put("diverged_batches", ps.diverged_batches)
          .Put("fallback_heap_allocs", ps.fallback_heap_allocs)
          .Put("recompiles", ps.plan_recompiles);
    }
    const std::string report =
        obs::JsonObjectWriter()
            .Put("bench", "inference")
            .Put("method", MethodName(spec.method))
            .Put("eval_graphs", static_cast<std::int64_t>(eval_graphs.size()))
            .Put("hidden_dim", spec.encoder.hidden_dim)
            .Put("num_layers", spec.encoder.num_layers)
            .Put("threads", GetBackend().num_threads())
            .Put("hardware_concurrency", static_cast<int>(cores))
            .Put("workers", workers)
            .Put("max_batch", max_batch)
            .Put("wait_us", wait_us)
            .Put("requests", total_requests)
            .Put("taped_ms", taped_s * 1e3)
            .Put("nograd_ms", nograd_s * 1e3)
            .Put("nograd_speedup", taped_s / nograd_s)
            .PutRaw("latency_us",
                    obs::JsonObjectWriter()
                        .Put("direct", direct_us)
                        .Put("eager_p50", eager_latency.p50_us)
                        .Put("eager_p90", eager_latency.p90_us)
                        .Put("eager_p99", eager_latency.p99_us)
                        .Put("compiled_p50", planned_latency.p50_us)
                        .Put("compiled_p90", planned_latency.p90_us)
                        .Put("compiled_p99", planned_latency.p99_us)
                        .Build())
            .PutRaw("throughput_gps",
                    obs::JsonObjectWriter()
                        .Put("serial", total_requests / serial_s)
                        .Put("eager", total_requests / eager_tp.seconds)
                        .Put("compiled", total_requests / planned_tp.seconds)
                        .Put("compiled_vs_eager",
                             eager_tp.seconds / planned_tp.seconds)
                        .Build())
            .PutRaw("plan", plan_json.Build())
            .Put("bitwise_ok", bitwise_ok)
            .Build();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("ERROR: cannot write %s\n", json_path.c_str());
    }
  }
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  oodgnn::SetBackendThreads(flags.GetThreads(4));
  // Uniform observability flags (same surface as the table binaries).
  const std::string metrics_out = flags.GetMetricsOut();
  if (!metrics_out.empty()) {
    oodgnn::obs::StartGlobalExporter(metrics_out,
                                     flags.GetMetricsIntervalMs());
  }
  const std::string metrics_json = flags.GetString("metrics-json", "");
  if (!metrics_json.empty()) {
    oodgnn::obs::RegisterMetricsJsonDumpAtExit(metrics_json);
  }
  oodgnn::RunBench(flags);
  return 0;
}
