// Benchmarks of the grad-free inference path (src/serve).
//
// Prints three sections:
//   1. taped vs no-grad forward on a full eval batch — the measured
//      speedup from skipping tape construction in eval, plus a bitwise
//      check that both paths produce identical logits;
//   2. single-graph latency percentiles (p50/p90/p99) through the
//      InferenceEngine versus a direct no-grad forward;
//   3. batched throughput (graphs/sec): a serial one-graph-at-a-time
//      loop versus the engine coalescing concurrent submissions into
//      dynamic micro-batches, with the engine outputs checked bitwise
//      against the tape-based reference.
//
// Flags: --threads N   compute-backend pool size (default 4)
//        --workers N   engine worker count for the pooled run (default 4)
//        --batch N     engine micro-batch size cutoff (default 32)
//        --wait-us N   engine batching window in microseconds (default 200)
//        --requests N  total graphs submitted in the throughput run
//                      (default 2000)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/serve/inference.h"
#include "src/tensor/backend.h"
#include "src/tensor/variable.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

/// Best-of-repetitions wall-clock of `fn`, in seconds per call.
/// Calibrates the iteration count so each repetition runs ~50 ms.
double TimePerCall(const std::function<void()>& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // Warm-up.
  int iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt >= 0.05 || iters >= (1 << 22)) break;
    iters *= 2;
  }
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt / iters < best) best = dt / iters;
  }
  return best;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

double Percentile(std::vector<double> sorted, double p) {
  const size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void RunBench(const Flags& flags) {
  const int workers = flags.GetInt("workers", 4);
  const int max_batch = flags.GetInt("batch", 32);
  const int wait_us = flags.GetInt("wait-us", 200);
  const int total_requests = flags.GetInt("requests", 2000);

  // Dataset + model at the paper's Triangles scale (scaled-down test
  // split: the serving path only touches eval graphs).
  TrianglesConfig data_config;
  data_config.num_train = 64;
  data_config.num_valid = 16;
  data_config.num_test = 128;
  GraphDataset dataset = MakeTrianglesDataset(data_config, 7);

  serve::ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder.feature_dim = dataset.feature_dim;
  spec.encoder.hidden_dim = 64;
  spec.encoder.num_layers = 3;
  spec.output_dim = dataset.OutputDim();

  Rng model_rng(19);
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim,
                             &model_rng);

  std::vector<const Graph*> eval_graphs;
  for (const size_t idx : dataset.test_idx) {
    eval_graphs.push_back(&dataset.graphs[idx]);
  }
  const GraphBatch eval_batch = GraphBatch::FromGraphs(eval_graphs);
  Rng eval_rng(23);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Inference-path benchmark: %s, %zu eval graphs, hidden=%d, "
              "layers=%d, backend threads=%d\n",
              MethodName(spec.method), eval_graphs.size(),
              spec.encoder.hidden_dim, spec.encoder.num_layers,
              GetBackend().num_threads());
  std::printf("hardware_concurrency=%u%s\n\n", cores,
              cores <= 1 ? "  (single core: pooled speedup <= 1 is expected "
                           "here; bitwise identity is the portable check)"
                         : "");

  // --- 1. taped vs no-grad forward -----------------------------------
  Tensor taped_logits =
      model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
  Tensor nograd_logits;
  {
    NoGradGuard no_grad;
    nograd_logits =
        model.Predict(eval_batch, /*training=*/false, &eval_rng).value();
  }
  const double taped_s = TimePerCall(
      [&] { model.Predict(eval_batch, /*training=*/false, &eval_rng); });
  const double nograd_s = TimePerCall([&] {
    NoGradGuard no_grad;
    model.Predict(eval_batch, /*training=*/false, &eval_rng);
  });
  std::printf("eval forward (full batch, %zu graphs)\n", eval_graphs.size());
  std::printf("  taped:   %9.3f ms/call\n", taped_s * 1e3);
  std::printf("  no-grad: %9.3f ms/call   speedup %.2fx   bitwise %s\n\n",
              nograd_s * 1e3, taped_s / nograd_s,
              BitwiseEqual(taped_logits, nograd_logits) ? "OK" : "DIVERGED");

  // --- 2. single-graph latency percentiles ---------------------------
  // One worker, batch size 1, no batching window: each Predict measures
  // queue handoff + one forward.
  {
    serve::InferenceOptions options;
    options.num_workers = 1;
    options.max_batch_graphs = 1;
    options.max_batch_wait_us = 0;
    serve::InferenceEngine engine(spec, options);
    engine.SyncFrom(model);

    const int samples = 400;
    std::vector<double> latencies_us;
    latencies_us.reserve(static_cast<size_t>(samples));
    for (int i = 0; i < samples; ++i) {
      const Graph& g =
          *eval_graphs[static_cast<size_t>(i) % eval_graphs.size()];
      const auto t0 = std::chrono::steady_clock::now();
      engine.Predict(g);
      latencies_us.push_back(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
    }
    std::sort(latencies_us.begin(), latencies_us.end());

    const Graph& probe = *eval_graphs[0];
    const GraphBatch probe_batch = GraphBatch::FromGraphs({&probe});
    const double direct_s = TimePerCall([&] {
      NoGradGuard no_grad;
      model.Predict(probe_batch, /*training=*/false, &eval_rng);
    });
    std::printf("single-graph latency (engine, %d samples)\n", samples);
    std::printf("  p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   "
                "(direct no-grad forward: %.1f us)\n\n",
                Percentile(latencies_us, 50), Percentile(latencies_us, 90),
                Percentile(latencies_us, 99), direct_s * 1e6);
  }

  // --- 3. batched throughput: serial loop vs pooled engine -----------
  // Reference rows for the bitwise check, via the tape-based path.
  std::vector<Tensor> reference;
  for (const Graph* g : eval_graphs) {
    reference.push_back(
        model.Predict(GraphBatch::FromGraphs({g}), false, &eval_rng).value());
  }

  double serial_s;
  {
    const auto t0 = std::chrono::steady_clock::now();
    NoGradGuard no_grad;
    for (int i = 0; i < total_requests; ++i) {
      const Graph* g = eval_graphs[static_cast<size_t>(i) % eval_graphs.size()];
      model.Predict(GraphBatch::FromGraphs({g}), false, &eval_rng);
    }
    serial_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  serve::InferenceOptions options;
  options.num_workers = workers;
  options.max_batch_graphs = max_batch;
  options.max_batch_wait_us = wait_us;
  serve::InferenceEngine engine(spec, options);
  engine.SyncFrom(model);
  // Warm-up so thread creation/first-touch costs are off the clock.
  engine.Predict(*eval_graphs[0]);

  bool bitwise_ok = true;
  double pooled_s;
  {
    const int submitters = 4;
    std::vector<std::thread> threads;
    std::vector<std::vector<std::pair<size_t, std::future<Tensor>>>> futures(
        static_cast<size_t>(submitters));
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < submitters; ++s) {
      threads.emplace_back([&, s] {
        for (int i = s; i < total_requests; i += submitters) {
          const size_t gi = static_cast<size_t>(i) % eval_graphs.size();
          futures[static_cast<size_t>(s)].emplace_back(
              gi, engine.Submit(*eval_graphs[gi]));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (auto& shard : futures) {
      for (auto& [gi, future] : shard) {
        const Tensor row = future.get();
        if (!BitwiseEqual(row, reference[gi])) bitwise_ok = false;
      }
    }
    pooled_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  const serve::InferenceStats stats = engine.stats();
  std::printf("batched throughput (%d requests)\n", total_requests);
  std::printf("  serial loop:   %10.1f graphs/sec\n",
              total_requests / serial_s);
  std::printf("  pooled engine: %10.1f graphs/sec   speedup %.2fx   "
              "bitwise %s\n",
              total_requests / pooled_s, serial_s / pooled_s,
              bitwise_ok ? "OK" : "DIVERGED");
  std::printf("  engine: %d workers, batch<=%d, wait %d us, "
              "%lld batches (%.1f graphs/batch avg)\n",
              workers, max_batch, wait_us,
              static_cast<long long>(stats.batches),
              stats.batches > 0 ? static_cast<double>(stats.requests) /
                                      static_cast<double>(stats.batches)
                                : 0.0);
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  oodgnn::SetBackendThreads(flags.GetThreads(4));
  oodgnn::RunBench(flags);
  return 0;
}
