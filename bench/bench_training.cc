// Training-path benchmark: eager tape-per-step training vs
// plan-then-execute compiled training (DESIGN.md §17).
//
// Both modes run the same deterministic mini-batch schedule on the
// TRIANGLES generator with identical seeds, so compiled training must
// reproduce the eager run bitwise (final parameters, Adam moments,
// summed losses); any difference is a correctness failure, not noise.
// The report compares steady-state step latency and — the point of the
// compiled tape — steady-state heap tensor allocations per step, which
// must be exactly zero once every bucket's plan is recorded.
//
// Usage:
//   bench_training [--threads N] [--epochs N] [--batch N]
//                  [--hidden N] [--json PATH] [--smoke]
//
// --smoke runs a scaled-down schedule and exits nonzero if any
// invariant breaks (bitwise identity, zero steady-state allocations,
// plans actually replaying); timing numbers are incidental there.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ood_gnn.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/obs/json.h"
#include "src/tensor/arena.h"
#include "src/tensor/backend.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/variable.h"
#include "src/train/experiment.h"
#include "src/train/train_plan.h"
#include "src/util/flags.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

struct BenchSetup {
  GraphDataset dataset;
  int epochs = 8;
  int batch_size = 16;
  int hidden_dim = 16;
  int num_layers = 2;
  uint64_t seed = 123;
  /// OOD-GNN reweighting switches on after this many epochs — midway,
  /// so the benchmark exercises the divergence-retrace path too.
  int reweight_warmup_epochs = 1;
};

struct ModeResult {
  std::vector<Tensor> params;        ///< Final parameter values.
  std::vector<Tensor> adam_slots;    ///< Final Adam moment tensors.
  double loss_sum = 0.0;             ///< Σ per-step losses (all epochs).
  double steady_step_us = 0.0;       ///< Mean step latency, last epoch.
  double steady_allocs_per_step = 0.0;  ///< Heap tensor allocs, last epoch.
  TrainPlanStats plan;               ///< Zeros in eager mode.
  std::vector<TrainStepPlanner::BucketReport> buckets;
};

/// One full training run (the trainer's step structure, inlined so the
/// benchmark can time individual steps and read the allocation counter
/// around a steady-state window).
ModeResult RunTraining(Method method, const BenchSetup& setup, bool compiled) {
  SetCompiledTrainEnabled(compiled);
  const GraphDataset& dataset = setup.dataset;
  Rng rng(setup.seed);

  EncoderConfig encoder;
  encoder.feature_dim = dataset.feature_dim;
  encoder.hidden_dim = setup.hidden_dim;
  encoder.num_layers = setup.num_layers;
  encoder.dropout = 0.3f;
  GraphPredictionModel model(method, encoder, dataset.OutputDim(), &rng);
  Adam optimizer(model.Parameters(), 1e-3f);

  std::unique_ptr<OodGnnReweighter> reweighter;
  if (method == Method::kOodGnn) {
    OodGnnConfig ood;
    reweighter = std::make_unique<OodGnnReweighter>(
        model.representation_dim(), setup.batch_size, ood, &rng);
  }

  // Fixed batch schedule (no shuffle): both modes must see identical
  // batches in identical order for the bitwise comparison to hold.
  const std::vector<size_t>& order = dataset.train_idx;
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(setup.batch_size)) {
    ranges.emplace_back(begin, std::min(order.size(),
                                        begin + static_cast<size_t>(
                                                    setup.batch_size)));
  }

  std::unique_ptr<TrainStepPlanner> planner;
  if (compiled) planner = std::make_unique<TrainStepPlanner>(64, 256);

  ModeResult result;
  double steady_us_sum = 0.0;
  std::int64_t steady_steps = 0;
  std::int64_t steady_allocs = 0;

  for (int epoch = 0; epoch < setup.epochs; ++epoch) {
    const bool steady = epoch + 1 == setup.epochs;  // Last epoch only.
    for (const auto& [begin, end] : ranges) {
      const std::int64_t allocs_before = TensorHeapAllocsThisThread();
      const auto t0 = std::chrono::steady_clock::now();

      GraphBatch batch = [&] {
        ScopedDynamicArena batch_arena(compiled);
        return MakeBatch(dataset.graphs, order, begin, end);
      }();

      const auto step_body = [&] {
        Variable z = model.Encode(batch, /*training=*/true, &rng);
        std::vector<float> weights;
        if (reweighter && epoch >= setup.reweight_warmup_epochs) {
          weights = reweighter->ComputeWeights(z.value());
        }
        Variable logits = model.Classify(z, /*training=*/true);
        Variable loss = SoftmaxCrossEntropy(logits, batch.class_labels,
                                            weights);
        optimizer.ZeroGrad();
        if (compiled) {
          loss.BackwardAndReleaseTape();
        } else {
          loss.Backward();
        }
        optimizer.Step();
        result.loss_sum += static_cast<double>(loss.value()[0]);
      };
      if (planner != nullptr) {
        planner->RunStep(batch.num_graphs, batch.num_nodes,
                         static_cast<int>(batch.edge_src.size()), step_body);
      } else {
        step_body();
      }

      if (steady) {
        const auto t1 = std::chrono::steady_clock::now();
        steady_us_sum +=
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        steady_allocs += TensorHeapAllocsThisThread() - allocs_before;
        ++steady_steps;
      }
    }
  }

  if (steady_steps > 0) {
    result.steady_step_us = steady_us_sum / static_cast<double>(steady_steps);
    result.steady_allocs_per_step =
        static_cast<double>(steady_allocs) /
        static_cast<double>(steady_steps);
  }
  for (const Variable& param : model.Parameters()) {
    result.params.push_back(param.value());
  }
  result.adam_slots = optimizer.GetState().slots;
  if (planner != nullptr) {
    result.plan = planner->stats();
    result.buckets = planner->BucketReports();
  }
  return result;
}

bool BitwiseEqual(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].SameShape(b[i])) return false;
    if (!a[i].empty() &&
        std::memcmp(a[i].data(), b[i].data(),
                    static_cast<size_t>(a[i].size()) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

int RunBench(const Flags& flags) {
  const bool smoke = flags.GetBool("smoke", false);
  BenchSetup setup;
  TrianglesConfig data_config;
  data_config.num_train = smoke ? 48 : 96;
  data_config.num_valid = 8;
  data_config.num_test = 8;
  data_config.train_max_nodes = 20;
  setup.dataset = MakeTrianglesDataset(data_config, 7);
  setup.epochs = flags.GetInt("epochs", smoke ? 5 : 8);
  setup.batch_size = flags.GetInt("batch", 16);
  setup.hidden_dim = flags.GetInt("hidden", smoke ? 8 : 16);

  std::printf("Training-path benchmark: eager vs compiled (plan-then-"
              "execute) steps\n"
              "dataset=TRIANGLES(%d train graphs), batch=%d, hidden=%d, "
              "epochs=%d, backend threads=%d\n"
              "hardware_concurrency=%d\n\n",
              data_config.num_train, setup.batch_size, setup.hidden_dim,
              setup.epochs, GetBackend().num_threads(),
              BenchOptions::HardwareConcurrency());

  int failures = 0;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("FAIL: %s\n", what);
      ++failures;
    }
  };

  std::string json_rows;
  const Method methods[] = {Method::kGin, Method::kOodGnn};
  std::printf("%-8s %14s %14s %9s %12s %12s %8s %9s %10s\n", "method",
              "eager us/step", "compiled us", "speedup", "eager allo/st",
              "compiled a/st", "replays", "retraces", "fallbacks");
  for (Method method : methods) {
    ModeResult eager = RunTraining(method, setup, /*compiled=*/false);
    ModeResult compiled = RunTraining(method, setup, /*compiled=*/true);
    SetCompiledTrainEnabled(false);

    const bool params_ok = BitwiseEqual(eager.params, compiled.params);
    const bool adam_ok = BitwiseEqual(eager.adam_slots, compiled.adam_slots);
    const bool loss_ok = eager.loss_sum == compiled.loss_sum;
    const double speedup =
        compiled.steady_step_us > 0.0
            ? eager.steady_step_us / compiled.steady_step_us
            : 0.0;
    std::printf("%-8s %14.1f %14.1f %8.2fx %12.1f %12.1f %8lld %9lld "
                "%10lld%s\n",
                MethodName(method), eager.steady_step_us,
                compiled.steady_step_us, speedup,
                eager.steady_allocs_per_step,
                compiled.steady_allocs_per_step,
                static_cast<long long>(compiled.plan.replays),
                static_cast<long long>(compiled.plan.retraces),
                static_cast<long long>(compiled.plan.fallbacks),
                params_ok && adam_ok && loss_ok ? "  [bitwise OK]"
                                                : "  [BITWISE MISMATCH]");
    for (const auto& bucket : compiled.buckets) {
      std::printf("    bucket %dg/%dn/%de: steps=%lld replays=%lld "
                  "retraces=%lld fallbacks=%lld phase=%s plan=%lldB\n",
                  bucket.graphs, bucket.nodes, bucket.edges,
                  static_cast<long long>(bucket.steps),
                  static_cast<long long>(bucket.replays),
                  static_cast<long long>(bucket.retraces),
                  static_cast<long long>(bucket.fallbacks), bucket.phase,
                  static_cast<long long>(bucket.plan_arena_bytes));
    }

    gate(params_ok, "compiled-train params bitwise == eager");
    gate(adam_ok, "compiled-train Adam moments bitwise == eager");
    gate(loss_ok, "compiled-train loss curve bitwise == eager");
    gate(compiled.plan.replays > 0, "compiled-train plans actually replay");
    gate(compiled.steady_allocs_per_step == 0.0,
         "compiled-train zero steady-state heap tensor allocations");

    std::string bucket_rows;
    for (const auto& bucket : compiled.buckets) {
      if (!bucket_rows.empty()) bucket_rows += ",";
      bucket_rows += obs::JsonObjectWriter()
                         .Put("graphs", bucket.graphs)
                         .Put("nodes", bucket.nodes)
                         .Put("edges", bucket.edges)
                         .Put("steps", bucket.steps)
                         .Put("replays", bucket.replays)
                         .Put("retraces", bucket.retraces)
                         .Put("fallbacks", bucket.fallbacks)
                         .Put("phase", bucket.phase)
                         .Put("plan_arena_bytes", bucket.plan_arena_bytes)
                         .Build();
    }
    if (!json_rows.empty()) json_rows += ",";
    json_rows += obs::JsonObjectWriter()
                     .Put("method", MethodName(method))
                     .Put("eager_step_us", eager.steady_step_us)
                     .Put("compiled_step_us", compiled.steady_step_us)
                     .Put("speedup", speedup)
                     .Put("eager_allocs_per_step",
                          eager.steady_allocs_per_step)
                     .Put("compiled_allocs_per_step",
                          compiled.steady_allocs_per_step)
                     .Put("replays", compiled.plan.replays)
                     .Put("retraces", compiled.plan.retraces)
                     .Put("fallbacks", compiled.plan.fallbacks)
                     .Put("arena_bytes", compiled.plan.arena_bytes)
                     .Put("bitwise_ok", params_ok && adam_ok && loss_ok)
                     .PutRaw("buckets", "[" + bucket_rows + "]")
                     .Build();
  }

  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    const std::string report =
        obs::JsonObjectWriter()
            .Put("bench", "training")
            .Put("dataset", "TRIANGLES")
            .Put("train_graphs", data_config.num_train)
            .Put("batch_size", setup.batch_size)
            .Put("hidden_dim", setup.hidden_dim)
            .Put("epochs", setup.epochs)
            .Put("threads", GetBackend().num_threads())
            .Put("hardware_concurrency",
                 BenchOptions::HardwareConcurrency())
            .PutRaw("rows", "[" + json_rows + "]")
            .Build();
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    } else {
      std::printf("\nFAIL: cannot write %s\n", json_path.c_str());
      ++failures;
    }
  }

  if (smoke) {
    std::printf("\nbench_training smoke: %s\n",
                failures == 0 ? "PASS" : "FAIL");
  }
  return failures;
}

}  // namespace
}  // namespace oodgnn

int main(int argc, char** argv) {
  oodgnn::Flags flags(argc, argv);
  oodgnn::SetBackendThreads(flags.GetThreads(1));
  return oodgnn::RunBench(flags);
}
