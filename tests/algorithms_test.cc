#include "src/graph/algorithms.h"

#include "gtest/gtest.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

Graph Cycle(int n) {
  Graph g(n, 1);
  for (int v = 0; v < n; ++v) g.AddUndirectedEdge(v, (v + 1) % n);
  return g;
}

Graph Path(int n) {
  Graph g(n, 1);
  for (int v = 0; v + 1 < n; ++v) g.AddUndirectedEdge(v, v + 1);
  return g;
}

Graph Complete(int n) {
  Graph g(n, 1);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) g.AddUndirectedEdge(a, b);
  }
  return g;
}

TEST(BfsTest, PathDistances) {
  std::vector<int> dist = BfsDistances(Path(5), 0);
  EXPECT_EQ(dist, (std::vector<int>{0, 1, 2, 3, 4}));
  dist = BfsDistances(Path(5), 2);
  EXPECT_EQ(dist, (std::vector<int>{2, 1, 0, 1, 2}));
}

TEST(BfsTest, UnreachableIsMinusOne) {
  Graph g(4, 1);
  g.AddUndirectedEdge(0, 1);
  std::vector<int> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(DiameterTest, KnownGraphs) {
  EXPECT_EQ(Diameter(Path(6)), 5);
  EXPECT_EQ(Diameter(Cycle(6)), 3);
  EXPECT_EQ(Diameter(Complete(5)), 1);
  EXPECT_EQ(Diameter(Graph(1, 1)), 0);
  Graph disconnected(3, 1);
  disconnected.AddUndirectedEdge(0, 1);
  EXPECT_EQ(Diameter(disconnected), -1);
}

TEST(ClusteringTest, ExtremesAndMidpoint) {
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(Complete(4)), 1.0);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(Path(5)), 0.0);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(Cycle(5)), 0.0);
  // Triangle with one pendant node: 3 triangles-in-triples out of:
  // deg = {3,2,2,1} -> triples = 3+1+1+0 = 5 -> 3·1/5.
  Graph g = Complete(3);
  Graph with_pendant(4, 1);
  with_pendant.AddUndirectedEdge(0, 1);
  with_pendant.AddUndirectedEdge(1, 2);
  with_pendant.AddUndirectedEdge(2, 0);
  with_pendant.AddUndirectedEdge(0, 3);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(with_pendant), 3.0 / 5.0);
}

TEST(DegreeHistogramTest, CountsDegrees) {
  Graph g(4, 1);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(0, 2);
  // Degrees: 2, 1, 1, 0.
  EXPECT_EQ(DegreeHistogram(g), (std::vector<int>{1, 2, 1}));
}

TEST(WlHashTest, IsomorphicGraphsCollide) {
  // Same cycle with relabeled nodes.
  Graph a = Cycle(6);
  Graph b(6, 1);
  const int perm[6] = {3, 5, 1, 0, 4, 2};
  for (int v = 0; v < 6; ++v) {
    b.AddUndirectedEdge(perm[v], perm[(v + 1) % 6]);
  }
  EXPECT_EQ(WeisfeilerLehmanHash(a), WeisfeilerLehmanHash(b));
}

TEST(WlHashTest, DistinguishesBasicFamilies) {
  EXPECT_NE(WeisfeilerLehmanHash(Cycle(6)), WeisfeilerLehmanHash(Path(6)));
  EXPECT_NE(WeisfeilerLehmanHash(Cycle(6)),
            WeisfeilerLehmanHash(Complete(6)));
  EXPECT_NE(WeisfeilerLehmanHash(Cycle(5)), WeisfeilerLehmanHash(Cycle(6)));
}

TEST(WlHashTest, KnownWlBlindSpot) {
  // Two 3-cycles vs one 6-cycle: 1-WL cannot distinguish these (all
  // nodes are degree-2 with identical refinement) — exactly the
  // expressiveness ceiling the paper's related work discusses for GIN.
  Graph two_triangles(6, 1);
  for (int base : {0, 3}) {
    two_triangles.AddUndirectedEdge(base, base + 1);
    two_triangles.AddUndirectedEdge(base + 1, base + 2);
    two_triangles.AddUndirectedEdge(base + 2, base);
  }
  EXPECT_EQ(WeisfeilerLehmanHash(two_triangles),
            WeisfeilerLehmanHash(Cycle(6)));
}

TEST(WlHashTest, FeaturesRefineColors) {
  // Identical topology, different feature labelings -> different hash
  // when features participate.
  Graph a = Path(4);
  Graph b = Path(4);
  a.x.at(0, 0) = 1.f;  // argmax stays 0 everywhere for a...
  b.x = Tensor(4, 2);
  b.x.at(0, 1) = 1.f;  // ...but node 0 of b prefers feature 1.
  Graph a2 = a;
  a2.x = Tensor(4, 2);
  EXPECT_EQ(WeisfeilerLehmanHash(a2, 3, false),
            WeisfeilerLehmanHash(b, 3, false));
  EXPECT_NE(WeisfeilerLehmanHash(a2, 3, true),
            WeisfeilerLehmanHash(b, 3, true));
}

class WlRandomGraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(WlRandomGraphProperty, PermutationInvariance) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  const int n = static_cast<int>(rng.UniformInt(5, 12));
  Graph g(n, 1);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(0.3)) g.AddUndirectedEdge(a, b);
    }
  }
  std::vector<size_t> perm = rng.Permutation(static_cast<size_t>(n));
  Graph relabeled(n, 1);
  for (size_t e = 0; e < g.edge_src.size(); e += 2) {
    relabeled.AddUndirectedEdge(
        static_cast<int>(perm[static_cast<size_t>(g.edge_src[e])]),
        static_cast<int>(perm[static_cast<size_t>(g.edge_dst[e])]));
  }
  EXPECT_EQ(WeisfeilerLehmanHash(g), WeisfeilerLehmanHash(relabeled));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, WlRandomGraphProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace oodgnn
