#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/serialize.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/inference.h"
#include "src/tensor/ops.h"
#include "src/tensor/variable.h"
#include "src/train/checkpoint.h"
#include "src/train/trainer.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace oodgnn {
namespace {

using serve::InferenceEngine;
using serve::InferenceOptions;
using serve::ModelSpec;
using test::TempPath;

/// Small deterministic dataset shared by the equivalence tests.
GraphDataset TinyDataset() {
  TrianglesConfig config;
  config.num_train = 24;
  config.num_valid = 8;
  config.num_test = 8;
  config.train_max_nodes = 12;
  config.test_max_nodes = 20;
  return MakeTrianglesDataset(config, 77);
}

EncoderConfig TinyEncoder(int feature_dim) {
  EncoderConfig config;
  config.feature_dim = feature_dim;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.5f;  // Identity in eval mode; must not matter.
  return config;
}

/// Tape-based eval-mode logits for the whole split in one batch: the
/// bitwise reference every engine configuration must reproduce.
Tensor ReferenceLogits(GraphPredictionModel* model,
                       const std::vector<const Graph*>& graphs) {
  GraphBatch batch = GraphBatch::FromGraphs(graphs);
  Rng rng(999);
  return model->Predict(batch, /*training=*/false, &rng).value();
}

bool RowsBitwiseEqual(const Tensor& row, const Tensor& all, int r) {
  return row.cols() == all.cols() &&
         std::memcmp(row.data(), all.data() + static_cast<size_t>(r) * all.cols(),
                     static_cast<size_t>(all.cols()) * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// No-grad mode semantics.
// ---------------------------------------------------------------------------

TEST(NoGradTest, GuardDisablesTapeAndRestores) {
  EXPECT_TRUE(GradMode::Enabled());
  Variable a = Variable::Param(Tensor(2, 2, 1.f));
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradMode::Enabled());
    Variable out = Add(a, a);
    // The op result is a plain value: no parents, no grad requirement.
    EXPECT_FALSE(out.requires_grad());
    EXPECT_TRUE(out.node()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(out.node()->backward));
    {
      NoGradGuard nested;
      EXPECT_FALSE(GradMode::Enabled());
    }
    EXPECT_FALSE(GradMode::Enabled());  // Nested guard restores inner state.
  }
  EXPECT_TRUE(GradMode::Enabled());
  // Back in grad mode the same op builds a tape again.
  Variable out = Add(a, a);
  EXPECT_TRUE(out.requires_grad());
  EXPECT_EQ(out.node()->parents.size(), 2u);
}

TEST(NoGradTest, GradModeIsPerThread) {
  NoGradGuard guard;
  std::atomic<bool> other_thread_enabled{false};
  std::thread t([&] { other_thread_enabled = GradMode::Enabled(); });
  t.join();
  EXPECT_TRUE(other_thread_enabled);  // Fresh threads default to enabled.
  EXPECT_FALSE(GradMode::Enabled());
}

TEST(NoGradTest, ForwardValuesIdenticalWithAndWithoutTape) {
  GraphDataset dataset = TinyDataset();
  Rng rng(5);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.train_idx) graphs.push_back(&dataset.graphs[idx]);
  GraphBatch batch = GraphBatch::FromGraphs(graphs);
  Rng fwd1(1);
  Tensor taped = model.Predict(batch, /*training=*/false, &fwd1).value();
  Tensor gradfree;
  {
    NoGradGuard guard;
    Rng fwd2(1);
    gradfree = model.Predict(batch, /*training=*/false, &fwd2).value();
  }
  ASSERT_EQ(taped.size(), gradfree.size());
  EXPECT_EQ(std::memcmp(taped.data(), gradfree.data(),
                        static_cast<size_t>(taped.size()) * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// Kernel counters: eval must execute zero backward work.
// ---------------------------------------------------------------------------

TEST(NoGradTest, EvalRunsZeroBackwardKernels) {
  const bool was_profiling = obs::ProfilingEnabled();
  obs::SetProfilingEnabled(true);
  obs::MetricsRegistry::Global().Reset();

  GraphDataset dataset = TinyDataset();
  Rng rng(6);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  Rng eval_rng(7);
  EvaluateSplit(&model, dataset, dataset.train_idx, /*batch_size=*/8,
                &eval_rng);

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().GetSnapshot();
  std::int64_t forward_calls = 0;
  for (const auto& [name, value] : snapshot.counters) {
    // Backward-only kernels: transposed matmuls (weight/input grads),
    // softmax/segment backward passes, and gradient row-scatter.
    const bool backward_kernel =
        name.rfind("kernel/matmul_ta/", 0) == 0 ||
        name.rfind("kernel/matmul_tb/", 0) == 0 ||
        name.rfind("kernel/softmax_rows_backward/", 0) == 0 ||
        name.rfind("kernel/gather_rows_acc/", 0) == 0 ||
        name.rfind("kernel/segment_extreme_backward/", 0) == 0;
    if (backward_kernel) {
      EXPECT_EQ(value, 0) << name << " ran during grad-free eval";
    } else if (name.rfind("kernel/", 0) == 0) {
      forward_calls += value;
    }
  }
  EXPECT_GT(forward_calls, 0);  // The forward pass itself was counted.

  obs::MetricsRegistry::Global().Reset();
  obs::SetProfilingEnabled(was_profiling);
}

// ---------------------------------------------------------------------------
// Engine equivalence: bitwise-identical to the tape-based forward for
// every encoder, across worker counts and submission orderings.
// ---------------------------------------------------------------------------

class EngineEquivalence : public ::testing::TestWithParam<Method> {};

TEST_P(EngineEquivalence, MatchesTapedForwardAcrossWorkerCounts) {
  const Method method = GetParam();
  GraphDataset dataset = TinyDataset();
  Rng rng(8);
  ModelSpec spec;
  spec.method = method;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(method, spec.encoder, spec.output_dim, &rng);

  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.test_idx) graphs.push_back(&dataset.graphs[idx]);
  const Tensor reference = ReferenceLogits(&model, graphs);

  for (int workers : {1, 2, 8}) {
    InferenceOptions options;
    options.num_workers = workers;
    options.max_batch_graphs = 3;  // Forces several micro-batches.
    options.max_batch_wait_us = 50;
    InferenceEngine engine(spec, options);
    engine.SyncFrom(model);

    std::vector<std::future<Tensor>> futures;
    futures.reserve(graphs.size());
    for (const Graph* graph : graphs) futures.push_back(engine.Submit(*graph));
    for (size_t i = 0; i < futures.size(); ++i) {
      const Tensor row = futures[i].get();
      EXPECT_TRUE(RowsBitwiseEqual(row, reference, static_cast<int>(i)))
          << MethodName(method) << " graph " << i << " with " << workers
          << " workers";
    }
    const serve::InferenceStats stats = engine.stats();
    EXPECT_EQ(stats.requests, static_cast<std::int64_t>(graphs.size()));
    EXPECT_GT(stats.batches, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncoders, EngineEquivalence,
    ::testing::ValuesIn([] {
      std::vector<Method> methods = AllMethods();
      for (Method m : ExtensionMethods()) methods.push_back(m);
      return methods;
    }()),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = MethodName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(InferenceEngineTest, ConcurrentSubmissionOrderingsAreBitwiseStable) {
  GraphDataset dataset = TinyDataset();
  Rng rng(9);
  ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim, &rng);

  std::vector<const Graph*> graphs;
  for (const Graph& graph : dataset.graphs) graphs.push_back(&graph);
  const Tensor reference = ReferenceLogits(&model, graphs);

  // Several rounds with different submitter interleavings: results must
  // not depend on which requests land in which micro-batch.
  for (int round = 0; round < 3; ++round) {
    InferenceOptions options;
    options.num_workers = 4;
    options.max_batch_graphs = 4;
    options.max_batch_wait_us = 100;
    InferenceEngine engine(spec, options);
    engine.SyncFrom(model);

    const int kSubmitters = 4;
    std::vector<std::vector<std::pair<size_t, std::future<Tensor>>>> shards(
        kSubmitters);
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        // Shard s submits graphs s, s+K, s+2K, ... — a different global
        // interleaving every run, raced against the other submitters.
        for (size_t i = static_cast<size_t>(s); i < graphs.size();
             i += kSubmitters) {
          shards[static_cast<size_t>(s)].emplace_back(
              i, engine.Submit(*graphs[i]));
        }
      });
    }
    for (std::thread& t : submitters) t.join();
    for (auto& shard : shards) {
      for (auto& [index, future] : shard) {
        const Tensor row = future.get();
        EXPECT_TRUE(RowsBitwiseEqual(row, reference, static_cast<int>(index)))
            << "graph " << index << " round " << round;
      }
    }
  }
}

TEST(InferenceEngineTest, PredictConvenienceMatchesReference) {
  GraphDataset dataset = TinyDataset();
  Rng rng(10);
  ModelSpec spec;
  spec.method = Method::kGcn;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim, &rng);
  std::vector<const Graph*> graphs = {&dataset.graphs[0]};
  const Tensor reference = ReferenceLogits(&model, graphs);

  InferenceEngine engine(spec, InferenceOptions{});
  engine.SyncFrom(model);
  const Tensor row = engine.Predict(dataset.graphs[0]);
  EXPECT_TRUE(RowsBitwiseEqual(row, reference, 0));
}

// ---------------------------------------------------------------------------
// Snapshot loading.
// ---------------------------------------------------------------------------

TEST(InferenceEngineTest, LoadModelFileReproducesSourceModel) {
  GraphDataset dataset = TinyDataset();
  Rng rng(11);
  ModelSpec spec;
  spec.method = Method::kGinVirtual;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim, &rng);
  // Perturb a batch-norm buffer so the test distinguishes "parameters
  // only" from "parameters + buffers": a load that dropped buffers
  // would produce different eval logits.
  std::vector<Tensor*> buffers = model.Buffers();
  ASSERT_FALSE(buffers.empty());
  for (Tensor* buffer : buffers) {
    for (int i = 0; i < buffer->size(); ++i) {
      (*buffer)[i] += 0.25f * static_cast<float>(i % 3);
    }
  }

  const std::string path = TempPath("serve_model_state.bin");
  ASSERT_TRUE(SaveModelState(path, model));

  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.valid_idx) graphs.push_back(&dataset.graphs[idx]);
  const Tensor reference = ReferenceLogits(&model, graphs);

  InferenceOptions options;
  options.num_workers = 2;
  options.max_batch_graphs = 4;
  InferenceEngine engine(spec, options);
  ASSERT_TRUE(engine.LoadModelFile(path));
  std::vector<std::future<Tensor>> futures;
  for (const Graph* graph : graphs) futures.push_back(engine.Submit(*graph));
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(
        RowsBitwiseEqual(futures[i].get(), reference, static_cast<int>(i)));
  }
  std::remove(path.c_str());
}

TEST(InferenceEngineTest, LoadModelFileRejectsCorruptAndMismatchedFiles) {
  GraphDataset dataset = TinyDataset();
  Rng rng(12);
  ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim, &rng);
  const std::string path = TempPath("serve_corrupt.bin");
  ASSERT_TRUE(SaveModelState(path, model));

  // Flip one payload byte: the checksum must catch it.
  {
    std::string bytes;
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x5a);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  InferenceEngine engine(spec, InferenceOptions{});
  EXPECT_FALSE(engine.LoadModelFile(path));
  EXPECT_FALSE(engine.LoadModelFile(path + ".does_not_exist"));

  // A snapshot of a different architecture must be rejected too.
  ModelSpec other = spec;
  other.encoder.hidden_dim = 16;
  Rng rng2(13);
  GraphPredictionModel bigger(other.method, other.encoder, other.output_dim,
                              &rng2);
  ASSERT_TRUE(SaveModelState(path, bigger));
  EXPECT_FALSE(engine.LoadModelFile(path));
  std::remove(path.c_str());
}

TEST(InferenceEngineTest, LoadCheckpointRestoresTrainedWeights) {
  GraphDataset dataset = TinyDataset();
  TrainConfig config;
  config.epochs = 2;
  config.batch_size = 8;
  config.seed = 3;
  config.encoder = TinyEncoder(dataset.feature_dim);
  config.checkpoint_every = 1;
  config.checkpoint_dir = TempPath("serve_ckpt");
  TrainAndEvaluate(Method::kGin, dataset, config);
  const std::string path =
      CheckpointPath(config.checkpoint_dir, dataset.name,
                     MethodName(Method::kGin), config.seed);

  ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder = config.encoder;
  spec.encoder.feature_dim = dataset.feature_dim;
  spec.output_dim = dataset.OutputDim();

  InferenceEngine fresh(spec, InferenceOptions{});
  const Tensor untrained = fresh.Predict(dataset.graphs[0]);

  InferenceEngine engine(spec, InferenceOptions{});
  ASSERT_TRUE(engine.LoadCheckpoint(path));
  const Tensor trained = engine.Predict(dataset.graphs[0]);
  // Training moved the weights; the loaded engine must reflect that.
  EXPECT_NE(std::memcmp(untrained.data(), trained.data(),
                        static_cast<size_t>(trained.size()) * sizeof(float)),
            0);

  // Two engines loading the same checkpoint agree bitwise.
  InferenceEngine engine2(spec, InferenceOptions{});
  ASSERT_TRUE(engine2.LoadCheckpoint(path));
  const Tensor trained2 = engine2.Predict(dataset.graphs[0]);
  EXPECT_EQ(std::memcmp(trained.data(), trained2.data(),
                        static_cast<size_t>(trained.size()) * sizeof(float)),
            0);

  // Method mismatch is rejected.
  ModelSpec wrong = spec;
  wrong.method = Method::kGcn;
  InferenceEngine mismatched(wrong, InferenceOptions{});
  EXPECT_FALSE(mismatched.LoadCheckpoint(path));
}

TEST(ModelStateTest, RoundTripPreservesParametersAndBuffers) {
  GraphDataset dataset = TinyDataset();
  Rng rng(14);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  for (Tensor* buffer : model.Buffers()) {
    for (int i = 0; i < buffer->size(); ++i) (*buffer)[i] = 0.125f * i;
  }
  const std::string path = TempPath("model_state_rt.bin");
  ASSERT_TRUE(SaveModelState(path, model));

  Rng rng2(15);
  GraphPredictionModel restored(Method::kGin,
                                TinyEncoder(dataset.feature_dim),
                                dataset.OutputDim(), &rng2);
  ASSERT_TRUE(LoadModelState(path, &restored));
  const std::vector<Variable> a = model.Parameters();
  const std::vector<Variable> b = restored.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(a[i].value().data(), b[i].value().data(),
                          static_cast<size_t>(a[i].value().size()) *
                              sizeof(float)),
              0);
  }
  const std::vector<Tensor*> ba = model.Buffers();
  const std::vector<Tensor*> bb = restored.Buffers();
  ASSERT_EQ(ba.size(), bb.size());
  for (size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(std::memcmp(ba[i]->data(), bb[i]->data(),
                          static_cast<size_t>(ba[i]->size()) * sizeof(float)),
              0);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oodgnn
