#include "src/train/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/graph.h"
#include "src/nn/serialize.h"
#include "src/obs/journal.h"
#include "src/train/trainer.h"
#include "src/util/file.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace oodgnn {
namespace {

using test::TempPath;

/// Trivially separable dataset: label = 1 iff the graph has edges.
/// Construction is deterministic and independent of any global state,
/// so every (re-)invocation — including a death-test child process —
/// sees the identical dataset.
GraphDataset EasyDataset(int per_class) {
  GraphDataset ds;
  ds.name = "easy";
  ds.num_tasks = 2;
  ds.feature_dim = 2;
  Rng rng(5);
  for (int i = 0; i < 2 * per_class; ++i) {
    const int label = i % 2;
    const int n = static_cast<int>(rng.UniformInt(4, 8));
    Graph g(n, 2);
    for (int v = 0; v < n; ++v) g.x.at(v, 0) = 1.f;
    if (label == 1) {
      for (int v = 0; v + 1 < n; ++v) g.AddUndirectedEdge(v, v + 1);
    }
    g.label = label;
    const size_t idx = ds.graphs.size();
    if (i < per_class) {
      ds.train_idx.push_back(idx);
    } else if (i < per_class * 3 / 2) {
      ds.valid_idx.push_back(idx);
    } else {
      ds.test_idx.push_back(idx);
    }
    ds.graphs.push_back(std::move(g));
  }
  return ds;
}

TrainConfig FastConfig(const std::string& checkpoint_dir) {
  TrainConfig config;
  config.epochs = 6;
  config.batch_size = 6;
  config.lr = 5e-3f;
  config.seed = 21;
  config.encoder.hidden_dim = 8;
  config.encoder.num_layers = 2;
  config.encoder.dropout = 0.f;
  config.ood.weights.epochs_reweight = 3;
  config.checkpoint_every = 3;
  config.checkpoint_dir = checkpoint_dir;
  return config;
}

/// A populated state with distinctive values in every field.
TrainState ExampleState() {
  TrainState state;
  state.dataset_name = "easy";
  state.method = 2;
  state.seed = 21;
  state.epochs = 6;
  state.batch_size = 6;
  state.next_epoch = 3;
  state.rng_state = Rng(99).SaveState();
  state.order = {3, 1, 4, 1, 5, 9, 2, 6};
  state.params = {Tensor::RowVector({1.f, 2.f, 3.f}),
                  Tensor::ColVector({4.f, 5.f})};
  state.optimizer.step_count = 17;
  state.optimizer.slots = {Tensor(1, 3, 0.25f), Tensor(2, 1, -0.5f),
                           Tensor(1, 3, 0.75f), Tensor(2, 1, 1.5f)};
  state.buffers = {Tensor(1, 3, 0.05f), Tensor(1, 3, 0.95f)};
  state.has_bank = true;
  state.bank_initialized = true;
  state.bank_gammas = {0.9f, 0.63f};
  state.bank_z = {Tensor(4, 2, 0.1f), Tensor(4, 2, 0.2f)};
  state.bank_w = {Tensor(4, 1, 1.f), Tensor(4, 1, 0.8f)};
  state.best_valid = 0.875;
  state.train_metric = 0.9;
  state.valid_metric = 0.875;
  state.test_metric = 0.85;
  state.test2_metric = -1.0;
  state.epoch_losses = {0.7, 0.5, 0.4};
  state.epoch_decorrelation_losses = {0.02, 0.015, 0.012};
  state.final_weights = {1.1f, 0.9f};
  state.final_weight_graphs = {7, 3};
  return state;
}

void ExpectStatesEqual(const TrainState& a, const TrainState& b) {
  EXPECT_EQ(a.dataset_name, b.dataset_name);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.batch_size, b.batch_size);
  EXPECT_EQ(a.next_epoch, b.next_epoch);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.order, b.order);
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_TRUE(AllClose(a.params[i], b.params[i], 0.f));
  }
  EXPECT_EQ(a.optimizer.step_count, b.optimizer.step_count);
  ASSERT_EQ(a.optimizer.slots.size(), b.optimizer.slots.size());
  for (size_t i = 0; i < a.optimizer.slots.size(); ++i) {
    EXPECT_TRUE(AllClose(a.optimizer.slots[i], b.optimizer.slots[i], 0.f));
  }
  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  for (size_t i = 0; i < a.buffers.size(); ++i) {
    EXPECT_TRUE(AllClose(a.buffers[i], b.buffers[i], 0.f));
  }
  EXPECT_EQ(a.has_bank, b.has_bank);
  EXPECT_EQ(a.bank_initialized, b.bank_initialized);
  EXPECT_EQ(a.bank_gammas, b.bank_gammas);
  ASSERT_EQ(a.bank_z.size(), b.bank_z.size());
  for (size_t i = 0; i < a.bank_z.size(); ++i) {
    EXPECT_TRUE(AllClose(a.bank_z[i], b.bank_z[i], 0.f));
    EXPECT_TRUE(AllClose(a.bank_w[i], b.bank_w[i], 0.f));
  }
  EXPECT_EQ(a.best_valid, b.best_valid);
  EXPECT_EQ(a.train_metric, b.train_metric);
  EXPECT_EQ(a.valid_metric, b.valid_metric);
  EXPECT_EQ(a.test_metric, b.test_metric);
  EXPECT_EQ(a.test2_metric, b.test2_metric);
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);
  EXPECT_EQ(a.epoch_decorrelation_losses, b.epoch_decorrelation_losses);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.final_weight_graphs, b.final_weight_graphs);
}

void ExpectResultsBitwiseEqual(const TrainResult& a, const TrainResult& b) {
  EXPECT_EQ(a.train_metric, b.train_metric);
  EXPECT_EQ(a.valid_metric, b.valid_metric);
  EXPECT_EQ(a.test_metric, b.test_metric);
  EXPECT_EQ(a.test2_metric, b.test2_metric);
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);
  EXPECT_EQ(a.epoch_decorrelation_losses, b.epoch_decorrelation_losses);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.final_weight_graphs, b.final_weight_graphs);
  EXPECT_EQ(a.num_parameters, b.num_parameters);
}

TEST(CheckpointTest, StateRoundTripIsExact) {
  const std::string path = TempPath("roundtrip.ckpt");
  const TrainState saved = ExampleState();
  ASSERT_TRUE(SaveTrainState(path, saved));
  TrainState loaded;
  ASSERT_TRUE(LoadTrainState(path, &loaded));
  ExpectStatesEqual(saved, loaded);
  // The serialized RNG state drives the exact same stream.
  Rng restored(0);
  ASSERT_TRUE(restored.LoadState(loaded.rng_state));
  Rng reference(99);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(reference.UniformInt(0, 1 << 30),
              restored.UniformInt(0, 1 << 30));
  }
}

TEST(CheckpointTest, EnsureDirectoryCreatesNestedPaths) {
  const std::string dir = TempPath("nested/check/point/dir");
  EXPECT_TRUE(EnsureDirectory(dir));
  EXPECT_TRUE(EnsureDirectory(dir));  // Idempotent.
  const std::string path = CheckpointPath(dir, "easy", "GIN", 7);
  EXPECT_EQ(path, dir + "/easy_GIN_seed7.ckpt");
  ASSERT_TRUE(SaveTrainState(path, ExampleState()));
  EXPECT_TRUE(FileExists(path));
  // A file in the way is reported, not clobbered.
  EXPECT_FALSE(EnsureDirectory(path));
}

TEST(CheckpointTest, AtomicRewriteReplacesPreviousSnapshot) {
  const std::string path = TempPath("rewrite.ckpt");
  TrainState first = ExampleState();
  first.next_epoch = 3;
  ASSERT_TRUE(SaveTrainState(path, first));
  TrainState second = ExampleState();
  second.next_epoch = 6;
  second.epoch_losses.push_back(0.3);
  ASSERT_TRUE(SaveTrainState(path, second));
  TrainState loaded;
  ASSERT_TRUE(LoadTrainState(path, &loaded));
  ExpectStatesEqual(second, loaded);
  EXPECT_FALSE(FileExists(path + ".tmp"));  // Temp file was renamed away.
}

// The resume-equivalence contract without any interruption: running
// with periodic snapshots enabled must not perturb training at all.
TEST(CheckpointTest, CheckpointingDoesNotPerturbTraining) {
  GraphDataset ds = EasyDataset(12);
  TrainConfig plain = FastConfig(TempPath("ckpt_perturb"));
  plain.checkpoint_every = 0;
  TrainConfig snapshotting = FastConfig(TempPath("ckpt_perturb"));
  TrainResult a = TrainAndEvaluate(Method::kGin, ds, plain);
  TrainResult b = TrainAndEvaluate(Method::kGin, ds, snapshotting);
  ExpectResultsBitwiseEqual(a, b);
}

/// Shared body for the crash → resume → bitwise-compare scenario.
/// A child process (threadsafe death test, so it re-execs this binary
/// and builds its own backend threads) trains with the crash hook armed
/// and dies after epoch 3; the parent resumes from the epoch-3 snapshot
/// and must reproduce an uninterrupted run exactly — metrics, loss
/// curves, learned weights, and the final snapshot's bytes.
void CrashResumeScenario(Method method, const std::string& tag) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string crashed_dir = TempPath("ckpt_crash_" + tag);
  const std::string straight_dir = TempPath("ckpt_straight_" + tag);
  GraphDataset ds = EasyDataset(12);
  TrainConfig config = FastConfig(crashed_dir);
  const std::string crashed_ckpt =
      CheckpointPath(crashed_dir, ds.name, MethodName(method), config.seed);
  std::remove(crashed_ckpt.c_str());

  EXPECT_EXIT(
      {
        setenv("OODGNN_CRASH_AFTER_EPOCH", "3", 1);
        TrainAndEvaluate(method, EasyDataset(12), config);
      },
      testing::ExitedWithCode(kCrashExitCode), "injected crash");
  ASSERT_TRUE(FileExists(crashed_ckpt));
  {
    TrainState state;
    ASSERT_TRUE(LoadTrainState(crashed_ckpt, &state));
    EXPECT_EQ(state.next_epoch, 3u);
  }

  // Resume the interrupted run, journaling so the resume event lands in
  // the trace output.
  const std::string journal_path = TempPath("resume_" + tag + ".jsonl");
  obs::OpenGlobalJournal(journal_path);
  TrainConfig resume_config = config;
  resume_config.resume = true;
  TrainResult resumed = TrainAndEvaluate(method, ds, resume_config);
  obs::CloseGlobalJournal();

  std::string journal;
  ASSERT_TRUE(ReadFileToString(journal_path, &journal));
  EXPECT_NE(journal.find("\"event\":\"resume\""), std::string::npos);
  EXPECT_NE(journal.find("\"restored_epoch\":3"), std::string::npos);

  // An uninterrupted run with the same seed (separate snapshot dir).
  TrainConfig straight_config = FastConfig(straight_dir);
  TrainResult straight = TrainAndEvaluate(method, ds, straight_config);

  ExpectResultsBitwiseEqual(straight, resumed);

  // Both runs snapshot after the final epoch; the files must be
  // byte-identical — parameters, optimizer moments, RNG stream, order,
  // bank, and bookkeeping all agree exactly.
  const std::string straight_ckpt = CheckpointPath(
      straight_dir, ds.name, MethodName(method), straight_config.seed);
  std::string resumed_bytes;
  std::string straight_bytes;
  ASSERT_TRUE(ReadFileToString(crashed_ckpt, &resumed_bytes));
  ASSERT_TRUE(ReadFileToString(straight_ckpt, &straight_bytes));
  EXPECT_EQ(resumed_bytes.size(), straight_bytes.size());
  EXPECT_TRUE(resumed_bytes == straight_bytes);
}

TEST(CheckpointDeathTest, ResumeAfterCrashIsBitwiseIdenticalGin) {
  CrashResumeScenario(Method::kGin, "gin");
}

TEST(CheckpointDeathTest, ResumeAfterCrashIsBitwiseIdenticalOodGnn) {
  CrashResumeScenario(Method::kOodGnn, "oodgnn");
}

TEST(CheckpointDeathTest, CrashInWriteLeavesPreviousSnapshotIntact) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = TempPath("crash_in_write.ckpt");
  TrainState durable = ExampleState();
  durable.next_epoch = 3;
  ASSERT_TRUE(SaveTrainState(path, durable));

  EXPECT_EXIT(
      {
        setenv("OODGNN_CRASH_IN_WRITE", "1", 1);
        TrainState doomed = ExampleState();
        doomed.next_epoch = 6;
        SaveTrainState(path, doomed);
      },
      testing::ExitedWithCode(kCrashExitCode), "injected crash");

  // The interrupted write only touched the temp file; the durable
  // snapshot still loads and holds the old contents.
  TrainState loaded;
  ASSERT_TRUE(LoadTrainState(path, &loaded));
  ExpectStatesEqual(durable, loaded);
  // The partial temp file itself is rejected cleanly.
  TrainState partial;
  EXPECT_FALSE(LoadTrainState(path + ".tmp", &partial));
}

TEST(CheckpointTest, ResumeWithCorruptSnapshotStartsFresh) {
  GraphDataset ds = EasyDataset(12);
  const std::string dir = TempPath("ckpt_corrupt_resume");
  ASSERT_TRUE(EnsureDirectory(dir));
  TrainConfig config = FastConfig(dir);
  const std::string path =
      CheckpointPath(dir, ds.name, MethodName(Method::kGin), config.seed);
  ASSERT_TRUE(WriteStringToFile(path, "definitely not a checkpoint"));

  TrainConfig resume_config = config;
  resume_config.resume = true;
  TrainResult resumed = TrainAndEvaluate(Method::kGin, ds, resume_config);

  TrainConfig straight_config = FastConfig(TempPath("ckpt_corrupt_straight"));
  TrainResult straight = TrainAndEvaluate(Method::kGin, ds, straight_config);
  ExpectResultsBitwiseEqual(straight, resumed);
}

TEST(CheckpointTest, ResumeFromFinishedRunSkipsTraining) {
  GraphDataset ds = EasyDataset(12);
  const std::string dir = TempPath("ckpt_finished");
  TrainConfig config = FastConfig(dir);
  config.checkpoint_every = 6;  // Snapshot exactly at the final epoch.
  TrainResult straight = TrainAndEvaluate(Method::kGin, ds, config);

  TrainConfig resume_config = config;
  resume_config.resume = true;
  TrainResult resumed = TrainAndEvaluate(Method::kGin, ds, resume_config);
  ExpectResultsBitwiseEqual(straight, resumed);
  EXPECT_EQ(resumed.epoch_losses.size(), 6u);
}

// Deterministic byte-mutation fuzz over a real snapshot: truncations,
// header damage, and blind payload flips must all fail cleanly (the
// checksum catches them); mutations that *fix up* the checksum — e.g.
// inflated counts — must still never crash, over-allocate, or trip a
// sanitizer, because every count is bounds-checked against the bytes
// actually present.
TEST(CheckpointTest, FuzzCorruptedSnapshotsFailCleanly) {
  const std::string good_path = TempPath("fuzz_state_good.ckpt");
  ASSERT_TRUE(SaveTrainState(good_path, ExampleState()));
  std::string good;
  ASSERT_TRUE(ReadFileToString(good_path, &good));
  ASSERT_GT(good.size(), 24u);
  const std::string path = TempPath("fuzz_state_mutant.ckpt");

  auto rebuild_header = [](std::string* bytes) {
    // Recompute declared size + checksum so the payload mutation is the
    // part under test, not the checksum.
    const uint64_t payload_size = bytes->size() - 24;
    std::memcpy(&(*bytes)[8], &payload_size, sizeof(payload_size));
    const uint64_t checksum = Fnv1a64(bytes->data() + 24, payload_size);
    std::memcpy(&(*bytes)[16], &checksum, sizeof(checksum));
  };

  TrainState scratch;

  // 1. Truncation at every length (stride keeps the loop fast).
  for (size_t len = 0; len < good.size(); len += 7) {
    ASSERT_TRUE(WriteStringToFile(path, good.substr(0, len)));
    EXPECT_FALSE(LoadTrainState(path, &scratch)) << "truncation at " << len;
  }

  // 2. Single-byte flips anywhere (header or payload) without fixing
  // the checksum: magic/version/size checks or the checksum reject all.
  for (size_t offset = 0; offset < good.size(); offset += 3) {
    std::string mutated = good;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0xFF);
    ASSERT_TRUE(WriteStringToFile(path, mutated));
    EXPECT_FALSE(LoadTrainState(path, &scratch)) << "flip at " << offset;
  }

  // 3. Oversized header: payload size beyond the file, or astronomical.
  for (uint64_t declared : {good.size() - 23, good.size() * 2,
                            uint64_t{1} << 60}) {
    std::string mutated = good;
    std::memcpy(&mutated[8], &declared, sizeof(declared));
    ASSERT_TRUE(WriteStringToFile(path, mutated));
    EXPECT_FALSE(LoadTrainState(path, &scratch))
        << "declared payload " << declared;
  }

  // 4. Count inflation with a fixed-up checksum: stomp 0xFF over every
  // aligned word of the early payload (where the string lengths and
  // tensor/vector counts live). The loader must bound every allocation
  // by the bytes actually present — most mutants fail parsing, none may
  // crash or OOM.
  for (size_t offset = 24; offset + 4 <= std::min(good.size(), size_t{24} + 256);
       offset += 4) {
    std::string mutated = good;
    std::memset(&mutated[offset], 0xFF, 4);
    rebuild_header(&mutated);
    ASSERT_TRUE(WriteStringToFile(path, mutated));
    LoadTrainState(path, &scratch);  // Must not crash; usually false.
  }

  // 5. Zeroed payload with a valid checksum: parses as nonsense and is
  // rejected (trailing bytes / semantic checks), never accepted as-is.
  {
    std::string mutated = good;
    std::memset(&mutated[24], 0, mutated.size() - 24);
    rebuild_header(&mutated);
    ASSERT_TRUE(WriteStringToFile(path, mutated));
    EXPECT_FALSE(LoadTrainState(path, &scratch));
  }

  // 6. Truncated payload with a fixed-up header: inner bounds checks
  // reject it even though size and checksum agree.
  {
    std::string mutated = good.substr(0, 24 + (good.size() - 24) / 2);
    rebuild_header(&mutated);
    ASSERT_TRUE(WriteStringToFile(path, mutated));
    EXPECT_FALSE(LoadTrainState(path, &scratch));
  }

  // The pristine snapshot still loads after the whole gauntlet.
  EXPECT_TRUE(LoadTrainState(good_path, &scratch));
}

}  // namespace
}  // namespace oodgnn
