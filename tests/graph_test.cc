#include "src/graph/graph.h"

#include "gtest/gtest.h"
#include "src/graph/batch.h"
#include "src/graph/dataset.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

Graph TriangleGraph() {
  Graph g(3, 1);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 0);
  return g;
}

TEST(GraphTest, EdgeBookkeeping) {
  Graph g(4, 2);
  g.AddEdge(0, 1);
  g.AddUndirectedEdge(2, 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(3, 2));
}

TEST(GraphTest, InDegrees) {
  Graph g(3, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  std::vector<int> deg = g.InDegrees();
  EXPECT_EQ(deg[0], 1);
  EXPECT_EQ(deg[1], 0);
  EXPECT_EQ(deg[2], 2);
}

TEST(TriangleCountTest, KnownGraphs) {
  EXPECT_EQ(CountTriangles(TriangleGraph()), 1);

  // K4 has 4 triangles.
  Graph k4(4, 1);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) k4.AddUndirectedEdge(a, b);
  }
  EXPECT_EQ(CountTriangles(k4), 4);

  // A 4-cycle has none.
  Graph c4(4, 1);
  for (int i = 0; i < 4; ++i) c4.AddUndirectedEdge(i, (i + 1) % 4);
  EXPECT_EQ(CountTriangles(c4), 0);

  // Self loops and duplicate edges are ignored.
  Graph dup = TriangleGraph();
  dup.AddUndirectedEdge(0, 1);
  dup.AddEdge(2, 2);
  EXPECT_EQ(CountTriangles(dup), 1);
}

/// Brute-force O(n³) reference counter.
int64_t BruteForceTriangles(const Graph& g) {
  auto connected = [&](int a, int b) {
    return g.HasEdge(a, b) || g.HasEdge(b, a);
  };
  int64_t count = 0;
  for (int a = 0; a < g.num_nodes(); ++a) {
    for (int b = a + 1; b < g.num_nodes(); ++b) {
      for (int c = b + 1; c < g.num_nodes(); ++c) {
        if (connected(a, b) && connected(b, c) && connected(a, c)) ++count;
      }
    }
  }
  return count;
}

class TriangleCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(TriangleCountProperty, MatchesBruteForceOnRandomGraphs) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.UniformInt(4, 14));
  Graph g(n, 1);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(0.35)) g.AddUndirectedEdge(a, b);
    }
  }
  EXPECT_EQ(CountTriangles(g), BruteForceTriangles(g));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, TriangleCountProperty,
                         ::testing::Range(0, 12));

TEST(ComponentsTest, CountsComponents) {
  Graph g(5, 1);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(3, 4);
  EXPECT_EQ(NumConnectedComponents(g), 3);  // {0,1}, {2}, {3,4}.
  g.AddUndirectedEdge(1, 2);
  g.AddUndirectedEdge(2, 3);
  EXPECT_EQ(NumConnectedComponents(g), 1);
}

TEST(BatchTest, OffsetsNodesAndEdges) {
  Graph a(2, 3);
  a.AddEdge(0, 1);
  a.x.at(1, 2) = 7.f;
  a.label = 1;
  Graph b(3, 3);
  b.AddEdge(2, 0);
  b.label = 0;

  GraphBatch batch = GraphBatch::FromGraphs({&a, &b});
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.num_nodes, 5);
  ASSERT_EQ(batch.edge_src.size(), 2u);
  EXPECT_EQ(batch.edge_src[0], 0);
  EXPECT_EQ(batch.edge_dst[0], 1);
  EXPECT_EQ(batch.edge_src[1], 4);  // 2 + offset 2.
  EXPECT_EQ(batch.edge_dst[1], 2);  // 0 + offset 2.
  EXPECT_FLOAT_EQ(batch.features.at(1, 2), 7.f);
  EXPECT_EQ(batch.node_graph[0], 0);
  EXPECT_EQ(batch.node_graph[2], 1);
  EXPECT_EQ(batch.class_labels[0], 1);
  EXPECT_EQ(batch.class_labels[1], 0);
}

TEST(BatchTest, InDegreesComputed) {
  Graph a(2, 1);
  a.AddUndirectedEdge(0, 1);
  GraphBatch batch = GraphBatch::FromGraphs({&a, &a});
  EXPECT_EQ(batch.in_degree, (std::vector<int>{1, 1, 1, 1}));
}

TEST(BatchTest, TargetsAndMasksStacked) {
  Graph a(1, 1);
  a.targets = {1.f, 0.f};
  a.target_mask = {1.f, 0.f};
  Graph b(1, 1);
  b.targets = {0.f, 1.f};  // No explicit mask -> all present.

  GraphBatch batch = GraphBatch::FromGraphs({&a, &b});
  EXPECT_FLOAT_EQ(batch.targets.at(0, 0), 1.f);
  EXPECT_FLOAT_EQ(batch.target_mask.at(0, 1), 0.f);
  EXPECT_FLOAT_EQ(batch.target_mask.at(1, 0), 1.f);
  EXPECT_FLOAT_EQ(batch.target_mask.at(1, 1), 1.f);
}

TEST(BatchTest, MakeBatchSelectsRange) {
  std::vector<Graph> graphs;
  for (int i = 0; i < 4; ++i) {
    Graph g(i + 1, 1);
    g.label = i;
    graphs.push_back(std::move(g));
  }
  std::vector<size_t> order = {3, 1, 0, 2};
  GraphBatch batch = MakeBatch(graphs, order, 1, 3);
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.class_labels[0], 1);
  EXPECT_EQ(batch.class_labels[1], 0);
  EXPECT_EQ(batch.num_nodes, 3);  // Sizes 2 + 1.
}

TEST(DatasetTest, ValidatePassesOnConsistentData) {
  GraphDataset dataset;
  dataset.name = "toy";
  dataset.num_tasks = 2;
  dataset.feature_dim = 1;
  Graph g(2, 1);
  g.label = 1;
  dataset.graphs.push_back(g);
  dataset.graphs.push_back(g);
  dataset.train_idx = {0};
  dataset.test_idx = {1};
  dataset.Validate();  // Must not abort.
}

TEST(DatasetTest, AverageStats) {
  GraphDataset dataset;
  Graph a(2, 1);
  a.AddUndirectedEdge(0, 1);
  Graph b(4, 1);
  dataset.graphs.push_back(a);
  dataset.graphs.push_back(b);
  EXPECT_DOUBLE_EQ(dataset.AverageNodes(), 3.0);
  EXPECT_DOUBLE_EQ(dataset.AverageEdges(), 0.5);  // 1 undirected / 2.
}

TEST(DatasetDeathTest, ValidateCatchesOverlappingSplits) {
  GraphDataset dataset;
  dataset.num_tasks = 1;
  dataset.feature_dim = 1;
  Graph g(1, 1);
  g.label = 0;
  dataset.graphs.push_back(g);
  dataset.train_idx = {0};
  dataset.test_idx = {0};
  EXPECT_DEATH(dataset.Validate(), "multiple splits");
}

TEST(DatasetDeathTest, ValidateCatchesBadLabel) {
  GraphDataset dataset;
  dataset.num_tasks = 2;
  dataset.feature_dim = 1;
  Graph g(1, 1);
  g.label = 5;
  dataset.graphs.push_back(g);
  EXPECT_DEATH(dataset.Validate(), "label");
}

}  // namespace
}  // namespace oodgnn
