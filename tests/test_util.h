#ifndef OODGNN_TESTS_TEST_UTIL_H_
#define OODGNN_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "src/util/clock.h"

namespace oodgnn {
namespace test {

/// Manually driven Clock for timing tests: starts at `start_us` and
/// moves only when the test says so. Injected wherever production code
/// takes a Clock* (request spans, SLO windows, token buckets,
/// deadlines), it makes every time-driven decision reproducible
/// without wall-clock sleeps. Thread-safe: submitter/worker threads
/// may read while the test advances.
///
/// Set() may move time backwards on purpose — the clock-jump edge case
/// the SLO property tests exercise (consumers are expected to clamp).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_us = 1000000) : now_us_(start_us) {}

  std::int64_t NowMicros() const override {
    return now_us_.load(std::memory_order_relaxed);
  }

  /// Moves time forward by `delta_us` (>= 0) and returns the new time.
  std::int64_t Advance(std::int64_t delta_us) {
    return now_us_.fetch_add(delta_us, std::memory_order_relaxed) + delta_us;
  }

  /// Jumps to an absolute time — possibly backwards.
  void Set(std::int64_t now_us) {
    now_us_.store(now_us, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_us_;
};

/// Process-unique temp path under gtest's TempDir.
///
/// Unique per top-level test process so the env-variant re-runs of a
/// binary (<name>_threads4 / _profile / _compiled) don't race on
/// shared files under a parallel ctest. The token is carried in the
/// environment (OODGNN_TEST_TMP_TOKEN) so crash-injection /
/// death-test children resolve the parent's paths instead of minting
/// their own.
inline std::string TempPath(const std::string& name) {
  static const std::string token = [] {
    const char* env = std::getenv("OODGNN_TEST_TMP_TOKEN");
    if (env != nullptr && *env != '\0') return std::string(env);
    const std::string fresh = std::to_string(static_cast<long>(::getpid()));
    ::setenv("OODGNN_TEST_TMP_TOKEN", fresh.c_str(), 1);
    return fresh;
  }();
  return std::string(::testing::TempDir()) + "/tok" + token + "_" + name;
}

}  // namespace test
}  // namespace oodgnn

#endif  // OODGNN_TESTS_TEST_UTIL_H_
