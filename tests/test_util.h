#ifndef OODGNN_TESTS_TEST_UTIL_H_
#define OODGNN_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace oodgnn {
namespace test {

/// Process-unique temp path under gtest's TempDir.
///
/// Unique per top-level test process so the env-variant re-runs of a
/// binary (<name>_threads4 / _profile / _compiled) don't race on
/// shared files under a parallel ctest. The token is carried in the
/// environment (OODGNN_TEST_TMP_TOKEN) so crash-injection /
/// death-test children resolve the parent's paths instead of minting
/// their own.
inline std::string TempPath(const std::string& name) {
  static const std::string token = [] {
    const char* env = std::getenv("OODGNN_TEST_TMP_TOKEN");
    if (env != nullptr && *env != '\0') return std::string(env);
    const std::string fresh = std::to_string(static_cast<long>(::getpid()));
    ::setenv("OODGNN_TEST_TMP_TOKEN", fresh.c_str(), 1);
    return fresh;
  }();
  return std::string(::testing::TempDir()) + "/tok" + token + "_" + name;
}

}  // namespace test
}  // namespace oodgnn

#endif  // OODGNN_TESTS_TEST_UTIL_H_
