#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace oodgnn {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformInHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasApproximateMoments) {
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(Mean(samples), 5.0, 0.1);
  EXPECT_NEAR(StdDev(samples), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalProportions) {
  Rng rng(6);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(7);
  std::vector<size_t> perm = rng.Permutation(50);
  std::sort(perm.begin(), perm.end());
  for (size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(8);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  Rng parent2(8);
  parent2.Fork();
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (child.UniformInt(0, 1 << 30) != parent.UniformInt(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_NEAR(StdDev(values), 2.138, 1e-3);
}

TEST(StatsTest, StdDevOfSingleValueIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({3.0}), 0.0);
}

TEST(StatsTest, MeanStdStringFormat) {
  EXPECT_EQ(MeanStdString({1.0, 2.0, 3.0}, 1), "2.0±1.0");
}

TEST(StatsTest, HistogramCountsAndClamping) {
  Histogram hist = MakeHistogram({0.0, 0.5, 1.0, 2.0, -1.0}, 2, 0.0, 1.0);
  ASSERT_EQ(hist.counts.size(), 2u);
  // -1 clamps into bin 0; 1.0 and 2.0 clamp into bin 1.
  EXPECT_EQ(hist.counts[0] + hist.counts[1], 5);
  EXPECT_EQ(hist.counts[0], 2);  // 0.0 and -1.0
  EXPECT_EQ(hist.counts[1], 3);  // 0.5 lands in bin 1 (t=0.5 -> bin 1)
}

TEST(StatsTest, HistogramAutoRange) {
  Histogram hist = MakeHistogram({1.0, 2.0, 3.0}, 3);
  EXPECT_DOUBLE_EQ(hist.lo, 1.0);
  EXPECT_DOUBLE_EQ(hist.hi, 3.0);
}

TEST(StatsTest, RenderHistogramHasOneLinePerBin) {
  Histogram hist = MakeHistogram({0.1, 0.9}, 4, 0.0, 1.0);
  std::string rendered = RenderHistogram(hist);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 4);
}

TEST(TableTest, AlignsAndRendersRows) {
  ResultTable table({"Method", "ACC"});
  table.AddRow({"GIN", "55.5"});
  table.AddRow({"OOD-GNN", "67.2"});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("OOD-GNN"), std::string::npos);
  EXPECT_NE(rendered.find("Method"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  ResultTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7",
                        "positional", "--flag"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetInt("beta", 0), 7);
  EXPECT_TRUE(flags.GetBool("flag", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, BoolFalseValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=true"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
}

}  // namespace
}  // namespace oodgnn
