#include <cmath>
#include <functional>

#include "gtest/gtest.h"
#include "src/nn/batchnorm.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"
#include "src/nn/loss.h"
#include "src/nn/mlp.h"
#include "src/nn/optimizer.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

TEST(InitTest, GlorotUniformBounds) {
  Rng rng(1);
  Tensor w = GlorotUniform(100, 50, &rng);
  const float bound = std::sqrt(6.f / 150.f);
  for (int i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LE(w[i], bound);
  }
}

TEST(InitTest, HeNormalScale) {
  Rng rng(2);
  Tensor w = HeNormal(200, 200, &rng);
  double ss = 0.0;
  for (int i = 0; i < w.size(); ++i) ss += w[i] * w[i];
  const double stddev = std::sqrt(ss / w.size());
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 200.0), 0.01);
}

TEST(LinearTest, ShapeAndBias) {
  Rng rng(3);
  Linear layer(4, 7, &rng);
  Variable x = Variable::Constant(Tensor(5, 4));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 7);
  // Zero input -> bias only -> zero (bias initialized to 0).
  EXPECT_FLOAT_EQ(y.value().MaxAbs(), 0.f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(4);
  Linear layer(3, 3, &rng, /*bias=*/false);
  EXPECT_EQ(layer.NumParameters(), 9);
  Linear with_bias(3, 3, &rng);
  EXPECT_EQ(with_bias.NumParameters(), 12);
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(5);
  Linear layer(3, 2, &rng);
  Variable x = Variable::Param(Tensor::RandomNormal(4, 3, &rng));
  std::vector<Variable> leaves = layer.Parameters();
  leaves.push_back(x);
  auto fn = [&] { return Sum(Square(layer.Forward(x))); };
  EXPECT_LT(CheckGradients(leaves, fn).max_relative_error, 5e-2);
}

TEST(MlpTest, HiddenReluFinalLinear) {
  Rng rng(6);
  Mlp mlp({2, 8, 3}, &rng);
  Variable x = Variable::Constant(Tensor::RandomNormal(5, 2, &rng));
  Variable y = mlp.Forward(x, /*training=*/false);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  // Final layer is linear: outputs may be negative.
  bool any_negative = false;
  for (int i = 0; i < y.value().size(); ++i) {
    if (y.value()[i] < 0) any_negative = true;
  }
  EXPECT_TRUE(any_negative);
}

TEST(MlpTest, ParameterCount) {
  Rng rng(7);
  Mlp mlp({4, 8, 2}, &rng);
  // (4*8+8) + (8*2+2) = 40 + 18.
  EXPECT_EQ(mlp.NumParameters(), 58);
}

TEST(BatchNormTest, NormalizesTrainingBatch) {
  Rng rng(8);
  BatchNorm1d bn(3);
  Variable x =
      Variable::Constant(Tensor::RandomNormal(64, 3, &rng, 5.f, 2.f));
  Variable y = bn.Forward(x, /*training=*/true);
  for (int c = 0; c < 3; ++c) {
    double mean = 0.0;
    for (int r = 0; r < 64; ++r) mean += y.value().at(r, c);
    mean /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    double var = 0.0;
    for (int r = 0; r < 64; ++r) {
      var += (y.value().at(r, c) - mean) * (y.value().at(r, c) - mean);
    }
    EXPECT_NEAR(var / 64, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsTrackBatches) {
  Rng rng(9);
  BatchNorm1d bn(2, /*momentum=*/1.f);  // Adopt the batch stats fully.
  Variable x =
      Variable::Constant(Tensor::RandomNormal(128, 2, &rng, 3.f, 1.f));
  bn.Forward(x, /*training=*/true);
  EXPECT_NEAR(bn.running_mean().at(0, 0), 3.f, 0.3f);
  EXPECT_NEAR(bn.running_var().at(0, 1), 1.f, 0.3f);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(10);
  BatchNorm1d bn(2, 1.f);
  Variable train_x =
      Variable::Constant(Tensor::RandomNormal(128, 2, &rng, 3.f, 1.f));
  bn.Forward(train_x, /*training=*/true);
  // A shifted eval batch is normalized by the *running* stats, so its
  // output mean reflects the shift.
  Variable eval_x = Variable::Constant(Tensor(4, 2, 3.f));
  Variable y = bn.Forward(eval_x, /*training=*/false);
  EXPECT_NEAR(y.value().at(0, 0), 0.f, 0.3f);
}

TEST(BatchNormTest, GradCheckTrainingMode) {
  Rng rng(11);
  BatchNorm1d bn(2);
  Variable x = Variable::Param(Tensor::RandomNormal(6, 2, &rng));
  std::vector<Variable> leaves = bn.Parameters();
  leaves.push_back(x);
  auto fn = [&] { return Sum(Square(bn.Forward(x, true))); };
  EXPECT_LT(CheckGradients(leaves, fn).max_relative_error, 5e-2);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable x = Variable::Param(Tensor::FromData(1, 1, {5.f}));
  Sgd sgd({x}, /*lr=*/0.1f);
  for (int i = 0; i < 200; ++i) {
    sgd.ZeroGrad();
    Variable loss = Square(x);
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(x.value()[0], 0.f, 1e-3);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Variable a = Variable::Param(Tensor::FromData(1, 1, {5.f}));
  Variable b = Variable::Param(Tensor::FromData(1, 1, {5.f}));
  Sgd plain({a}, 0.01f);
  Sgd momentum({b}, 0.01f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.ZeroGrad();
    Square(a).Backward();
    plain.Step();
    momentum.ZeroGrad();
    Square(b).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::fabs(b.value()[0]), std::fabs(a.value()[0]));
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Variable x = Variable::Param(Tensor::FromData(1, 1, {1.f}));
  Sgd sgd({x}, 0.1f, 0.f, /*weight_decay=*/0.5f);
  // Gradient-free loss: only decay acts.
  x.ZeroGrad();
  sgd.Step();
  EXPECT_NEAR(x.value()[0], 1.f - 0.1f * 0.5f, 1e-6);
}

TEST(AdamTest, ConvergesOnLinearRegression) {
  Rng rng(12);
  // y = 2*x0 - 3*x1 + 1, learn [w, b].
  Tensor inputs = Tensor::RandomNormal(64, 2, &rng);
  Tensor targets(64, 1);
  for (int r = 0; r < 64; ++r) {
    targets.at(r, 0) = 2.f * inputs.at(r, 0) - 3.f * inputs.at(r, 1) + 1.f;
  }
  Variable w = Variable::Param(Tensor(2, 1));
  Variable b = Variable::Param(Tensor(1, 1));
  Adam adam({w, b}, 0.05f);
  Variable x = Variable::Constant(inputs);
  for (int step = 0; step < 400; ++step) {
    adam.ZeroGrad();
    Variable pred = AddRowVec(MatMul(x, w), Transpose(b));
    Variable loss = MseLoss(pred, targets);
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.value()[0], 2.f, 0.05f);
  EXPECT_NEAR(w.value()[1], -3.f, 0.05f);
  EXPECT_NEAR(b.value()[0], 1.f, 0.05f);
}

TEST(LossTest, CrossEntropyMatchesManual) {
  Variable logits =
      Variable::Constant(Tensor::FromData(2, 3, {1, 2, 3, 3, 2, 1}));
  Variable loss = SoftmaxCrossEntropy(logits, {2, 0});
  // Both rows have the true class at logit 3 with [1,2,3] pattern.
  const double p = std::exp(3.0) / (std::exp(1.0) + std::exp(2.0) +
                                    std::exp(3.0));
  EXPECT_NEAR(loss.value()[0], -std::log(p), 1e-5);
}

TEST(LossTest, CrossEntropyWeightsScaleGradient) {
  Variable logits = Variable::Param(Tensor::FromData(1, 2, {0.3f, -0.2f}));
  SoftmaxCrossEntropy(logits, {0}, {2.f}).Backward();
  Tensor weighted = logits.grad();
  logits.ZeroGrad();
  SoftmaxCrossEntropy(logits, {0}).Backward();
  for (int i = 0; i < 2; ++i) {
    EXPECT_NEAR(weighted[i], 2.f * logits.grad()[i], 1e-6);
  }
}

TEST(LossTest, CrossEntropyGradCheck) {
  Rng rng(13);
  Variable logits = Variable::Param(Tensor::RandomNormal(4, 3, &rng));
  std::vector<int> labels = {0, 2, 1, 2};
  std::vector<float> weights = {0.5f, 1.5f, 1.f, 1.f};
  auto fn = [&] { return SoftmaxCrossEntropy(logits, labels, weights); };
  EXPECT_LT(CheckGradients({logits}, fn).max_relative_error, 5e-2);
}

TEST(LossTest, BceMatchesManualAndIgnoresMasked) {
  Variable logits = Variable::Constant(Tensor::FromData(1, 2, {0.f, 100.f}));
  Tensor targets = Tensor::FromData(1, 2, {1.f, 0.f});
  Tensor mask = Tensor::FromData(1, 2, {1.f, 0.f});
  Variable loss = BceWithLogits(logits, targets, mask);
  // Only the first entry counts: BCE(0, 1) = log 2.
  EXPECT_NEAR(loss.value()[0], std::log(2.0), 1e-5);
}

TEST(LossTest, BceGradCheck) {
  Rng rng(14);
  Variable logits = Variable::Param(Tensor::RandomNormal(3, 4, &rng));
  Tensor targets(3, 4);
  Tensor mask(3, 4, 1.f);
  for (int i = 0; i < targets.size(); ++i) {
    targets[i] = rng.Bernoulli(0.5) ? 1.f : 0.f;
  }
  mask.at(1, 2) = 0.f;
  std::vector<float> weights = {1.f, 0.5f, 2.f};
  auto fn = [&] { return BceWithLogits(logits, targets, mask, weights); };
  EXPECT_LT(CheckGradients({logits}, fn).max_relative_error, 5e-2);
}

TEST(LossTest, BceIsNumericallyStableAtExtremes) {
  Variable logits =
      Variable::Param(Tensor::FromData(1, 2, {80.f, -80.f}));
  Tensor targets = Tensor::FromData(1, 2, {1.f, 0.f});
  Tensor mask(1, 2, 1.f);
  Variable loss = BceWithLogits(logits, targets, mask);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_NEAR(loss.value()[0], 0.f, 1e-5);
  loss.Backward();
  EXPECT_TRUE(std::isfinite(logits.grad()[0]));
}

TEST(LossTest, MseMatchesManualWithWeights) {
  Variable pred = Variable::Constant(Tensor::FromData(2, 1, {1.f, 3.f}));
  Tensor targets = Tensor::FromData(2, 1, {0.f, 0.f});
  Variable loss = MseLoss(pred, targets, {1.f, 2.f});
  // (1*1 + 2*9) / 2 = 9.5.
  EXPECT_NEAR(loss.value()[0], 9.5f, 1e-5);
}

TEST(LossTest, MseGradCheck) {
  Rng rng(15);
  Variable pred = Variable::Param(Tensor::RandomNormal(3, 2, &rng));
  Tensor targets = Tensor::RandomNormal(3, 2, &rng);
  std::vector<float> weights = {1.f, 0.2f, 3.f};
  auto fn = [&] { return MseLoss(pred, targets, weights); };
  EXPECT_LT(CheckGradients({pred}, fn).max_relative_error, 5e-2);
}

TEST(ModuleTest, ParametersAreSharedHandles) {
  Rng rng(16);
  Linear layer(2, 2, &rng);
  std::vector<Variable> params = layer.Parameters();
  params[0].mutable_value()[0] = 42.f;
  // The layer sees the mutation (handles share nodes).
  Variable x = Variable::Constant(Tensor::Identity(2));
  EXPECT_FLOAT_EQ(layer.Forward(x).value().at(0, 0), 42.f);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(17);
  Mlp mlp({2, 4, 1}, &rng);
  Variable x = Variable::Constant(Tensor::RandomNormal(3, 2, &rng));
  Sum(Square(mlp.Forward(x, true))).Backward();
  mlp.ZeroGrad();
  for (const Variable& p : mlp.Parameters()) {
    EXPECT_FLOAT_EQ(p.grad().MaxAbs(), 0.f);
  }
}

}  // namespace
}  // namespace oodgnn
