#include "src/train/metrics.h"

#include <cmath>

#include "gtest/gtest.h"

namespace oodgnn {
namespace {

TEST(AccuracyTest, ArgmaxAndFraction) {
  Tensor logits = Tensor::FromData(3, 2, {1.f, 2.f, 5.f, 0.f, 1.f, 1.5f});
  EXPECT_EQ(ArgmaxRows(logits), (std::vector<int>{1, 0, 1}));
  EXPECT_NEAR(Accuracy(logits, {1, 0, 0}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(Accuracy(logits, {0, 1, 0}), 0.0, 1e-9);
}

TEST(RocAucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
}

TEST(RocAucTest, ReversedSeparationIsZero) {
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
}

TEST(RocAucTest, InterleavedPairCounting) {
  // Positives at 0.1 and 0.3, negatives at 0.2 and 0.4: of the four
  // (P,N) pairs only (0.3 > 0.2) is correctly ordered -> AUC = 0.25.
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.1, 0.2, 0.3, 0.4}, {1, 0, 1, 0}), 0.25);
}

TEST(RocAucTest, HandComputedExample) {
  // scores: P={0.8, 0.4}, N={0.6, 0.2}. Pairs: (0.8>0.6),(0.8>0.2),
  // (0.4<0.6),(0.4>0.2) -> 3/4.
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(RocAucTest, TiesGetHalfCredit) {
  // One positive tied with one negative: 0.5 credit for the pair.
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.5, 0.5}, {1, 0}), 0.5);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.3, 0.7}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.3, 0.7}, {0, 0}), 0.5);
}

TEST(MultiTaskRocAucTest, AveragesEvaluableTasks) {
  // Task 0: perfect (positives score higher); task 1: reversed
  // (positives score lower). Average = 0.5.
  Tensor scores = Tensor::FromData(4, 2, {0.1f, 0.9f,   //
                                          0.2f, 0.8f,   //
                                          0.8f, 0.2f,   //
                                          0.9f, 0.1f});
  Tensor targets = Tensor::FromData(4, 2, {0.f, 0.f,  //
                                           0.f, 0.f,  //
                                           1.f, 1.f,  //
                                           1.f, 1.f});
  Tensor mask;  // All present.
  EXPECT_DOUBLE_EQ(MultiTaskRocAuc(scores, targets, mask), 0.5);
}

TEST(MultiTaskRocAucTest, MaskRemovesEntries) {
  Tensor scores = Tensor::FromData(4, 1, {0.1f, 0.9f, 0.5f, 0.6f});
  Tensor targets = Tensor::FromData(4, 1, {0.f, 1.f, 1.f, 0.f});
  // Mask away the two confusing rows -> perfect AUC on the rest.
  Tensor mask = Tensor::FromData(4, 1, {1.f, 1.f, 0.f, 0.f});
  EXPECT_DOUBLE_EQ(MultiTaskRocAuc(scores, targets, mask), 1.0);
}

TEST(MultiTaskRocAucTest, SkipsSingleClassTasks) {
  // Task 1 is all-positive -> skipped; only task 0 counts.
  Tensor scores = Tensor::FromData(2, 2, {0.9f, 0.5f, 0.1f, 0.5f});
  Tensor targets = Tensor::FromData(2, 2, {1.f, 1.f, 0.f, 1.f});
  Tensor mask;
  EXPECT_DOUBLE_EQ(MultiTaskRocAuc(scores, targets, mask), 1.0);
}

TEST(MultiTaskRocAucTest, NoEvaluableTaskReturnsHalf) {
  Tensor scores = Tensor::FromData(2, 1, {0.9f, 0.5f});
  Tensor targets = Tensor::FromData(2, 1, {1.f, 1.f});
  Tensor mask;
  EXPECT_DOUBLE_EQ(MultiTaskRocAuc(scores, targets, mask), 0.5);
}

TEST(RmseTest, MatchesManual) {
  Tensor pred = Tensor::FromData(2, 2, {1.f, 2.f, 3.f, 4.f});
  Tensor target = Tensor::FromData(2, 2, {1.f, 0.f, 3.f, 0.f});
  Tensor mask;
  // Errors: 0, 2, 0, 4 -> sqrt((4+16)/4) = sqrt(5).
  EXPECT_NEAR(Rmse(pred, target, mask), std::sqrt(5.0), 1e-9);
}

TEST(RmseTest, MaskedEntriesIgnored) {
  Tensor pred = Tensor::FromData(1, 2, {1.f, 100.f});
  Tensor target = Tensor::FromData(1, 2, {0.f, 0.f});
  Tensor mask = Tensor::FromData(1, 2, {1.f, 0.f});
  EXPECT_NEAR(Rmse(pred, target, mask), 1.0, 1e-9);
}

}  // namespace
}  // namespace oodgnn
