// Property sweeps over the encoder zoo: for every method × depth ×
// width combination, encoding must (a) produce finite outputs of the
// documented shape, (b) be independent of batch composition in eval
// mode (encoding a graph alone equals encoding it inside a batch), and
// (c) be deterministic given the seed.

#include <algorithm>
#include <cmath>
#include <tuple>

#include "gtest/gtest.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

std::vector<Graph> MakeTestGraphs() {
  Rng rng(99);
  std::vector<Graph> graphs;
  // A triangle, a path, a star, and a lone isolated-node graph.
  {
    Graph g(3, 4);
    g.AddUndirectedEdge(0, 1);
    g.AddUndirectedEdge(1, 2);
    g.AddUndirectedEdge(2, 0);
    g.label = 0;
    graphs.push_back(std::move(g));
  }
  {
    Graph g(5, 4);
    for (int v = 0; v + 1 < 5; ++v) g.AddUndirectedEdge(v, v + 1);
    g.label = 1;
    graphs.push_back(std::move(g));
  }
  {
    Graph g(6, 4);
    for (int v = 1; v < 6; ++v) g.AddUndirectedEdge(0, v);
    g.label = 2;
    graphs.push_back(std::move(g));
  }
  {
    Graph g(2, 4);
    g.label = 0;
    graphs.push_back(std::move(g));
  }
  for (Graph& g : graphs) {
    g.x = Tensor::RandomNormal(g.num_nodes(), 4, &rng);
  }
  return graphs;
}

using EncoderCase = std::tuple<Method, int /*layers*/, int /*hidden*/>;

class EncoderProperties : public ::testing::TestWithParam<EncoderCase> {};

TEST_P(EncoderProperties, ShapeFinitenessBatchInvarianceDeterminism) {
  const auto [method, layers, hidden] = GetParam();
  Rng rng(7);
  EncoderConfig config;
  config.feature_dim = 4;
  config.hidden_dim = hidden;
  config.num_layers = layers;
  config.dropout = 0.f;
  GraphPredictionModel model(method, config, /*output_dim=*/3, &rng);

  std::vector<Graph> graphs = MakeTestGraphs();
  std::vector<const Graph*> all = {&graphs[0], &graphs[1], &graphs[2],
                                   &graphs[3]};
  GraphBatch batch = GraphBatch::FromGraphs(all);

  Rng fwd(1);
  Variable z_batch = model.Encode(batch, /*training=*/false, &fwd);

  // (a) Shape and finiteness.
  ASSERT_EQ(z_batch.rows(), 4);
  ASSERT_EQ(z_batch.cols(), model.representation_dim());
  for (int i = 0; i < z_batch.value().size(); ++i) {
    ASSERT_TRUE(std::isfinite(z_batch.value()[i]));
  }

  // (b) Batch invariance in eval mode: each graph encoded alone must
  // match its row in the batched encoding.
  for (size_t g = 0; g < all.size(); ++g) {
    GraphBatch single = GraphBatch::FromGraphs({all[g]});
    Rng fwd_single(1);
    Variable z_single =
        model.Encode(single, /*training=*/false, &fwd_single);
    for (int c = 0; c < z_batch.cols(); ++c) {
      EXPECT_NEAR(z_single.value().at(0, c),
                  z_batch.value().at(static_cast<int>(g), c), 1e-3)
          << "graph " << g << " col " << c;
    }
  }

  // (c) Determinism: same seed, same encoding.
  Rng fwd2(1);
  Variable z_again = model.Encode(batch, /*training=*/false, &fwd2);
  EXPECT_TRUE(AllClose(z_batch.value(), z_again.value(), 0.f));
}

std::vector<EncoderCase> MakeCases() {
  std::vector<EncoderCase> cases;
  std::vector<Method> methods = AllMethods();
  for (Method method : ExtensionMethods()) methods.push_back(method);
  for (Method method : methods) {
    cases.push_back({method, 1, 8});
    cases.push_back({method, 3, 8});
    cases.push_back({method, 2, 16});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, EncoderProperties, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<EncoderCase>& info) {
      std::string name = MethodName(std::get<0>(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_L" + std::to_string(std::get<1>(info.param)) + "_H" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace oodgnn
