// Stress/chaos suite for the continuous-batching server core:
// deadline-aware scheduling, per-tenant admission control, SLO
// burn-rate load shedding, and versioned hot weight rollout.
//
// Determinism strategy:
//   * Scheduler-level tests run single-threaded against a FakeClock —
//     deadline expiry, token-bucket refill, slack floors and shed
//     decisions are exact, with no wall-clock sleeps anywhere.
//   * Engine-level tests freeze the FakeClock so quota and deadline
//     admission outcomes stay exact even with live worker threads
//     (workers make progress on real condition-variable time; only
//     *decisions* read the injected clock).
//   * The raced chaos test asserts invariants that hold under any
//     interleaving: every future resolves exactly once (value or
//     ShedError), dispatched + shed == submitted per tenant, version
//     attribution sums to the graphs executed, and every served row is
//     bitwise equal to the reference forward of the exact weight
//     version its span reports.

#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/serve/inference.h"
#include "src/serve/scheduler.h"
#include "src/serve/version.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace oodgnn {
namespace {

using serve::InferenceEngine;
using serve::InferenceOptions;
using serve::InferenceStats;
using serve::ModelSpec;
using serve::QueuedRequest;
using serve::Scheduler;
using serve::SchedulerOptions;
using serve::SchedulerStats;
using serve::ShedError;
using serve::ShedReason;
using serve::SubmitOptions;
using serve::SubmitResult;
using serve::TenantQuotaSpec;
using serve::TenantStats;
using test::FakeClock;

GraphDataset TinyDataset() {
  TrianglesConfig config;
  config.num_train = 24;
  config.num_valid = 8;
  config.num_test = 8;
  config.train_max_nodes = 12;
  config.test_max_nodes = 20;
  return MakeTrianglesDataset(config, 77);
}

EncoderConfig TinyEncoder(int feature_dim) {
  EncoderConfig config;
  config.feature_dim = feature_dim;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.5f;  // Identity in eval mode; must not matter.
  return config;
}

ModelSpec TinySpec(const GraphDataset& dataset) {
  ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  return spec;
}

/// Tape-based eval-mode logits for the whole graph list in one batch:
/// the bitwise reference every engine configuration must reproduce.
Tensor ReferenceLogits(GraphPredictionModel* model,
                       const std::vector<const Graph*>& graphs) {
  GraphBatch batch = GraphBatch::FromGraphs(graphs);
  Rng rng(999);
  return model->Predict(batch, /*training=*/false, &rng).value();
}

bool RowsBitwiseEqual(const Tensor& row, const Tensor& all, int r) {
  return row.cols() == all.cols() &&
         std::memcmp(row.data(),
                     all.data() + static_cast<size_t>(r) * all.cols(),
                     static_cast<size_t>(all.cols()) * sizeof(float)) == 0;
}

/// Asserts both conservation invariants on a drained scheduler
/// snapshot: totals and every tenant.
void ExpectConservation(const SchedulerStats& stats) {
  ASSERT_EQ(stats.queued, 0) << "queue must be drained first";
  EXPECT_EQ(stats.dispatched + stats.shed, stats.submitted);
  std::int64_t tenant_submitted = 0;
  for (const TenantStats& tenant : stats.tenants) {
    EXPECT_EQ(tenant.dispatched + tenant.shed, tenant.submitted)
        << "tenant " << tenant.tenant;
    std::int64_t by_reason = 0;
    for (int r = 0; r < serve::kNumShedReasons; ++r) {
      by_reason += tenant.shed_by[r];
    }
    EXPECT_EQ(by_reason, tenant.shed) << "tenant " << tenant.tenant;
    tenant_submitted += tenant.submitted;
  }
  EXPECT_EQ(tenant_submitted, stats.submitted);
}

// ---------------------------------------------------------------------------
// Scheduler unit tests: single-threaded, FakeClock, fully deterministic.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, PopOrderRespectsPriorityDeadlineAndFifo) {
  FakeClock clock(1000000);
  Scheduler scheduler(SchedulerOptions{}, /*registry=*/nullptr, &clock);
  // payload doubles as the identity tag; the scheduler never
  // dereferences it.
  auto admit = [&](int priority, std::int64_t deadline_us, std::intptr_t tag) {
    QueuedRequest request;
    request.priority = priority;
    request.deadline_us = deadline_us;
    request.payload = reinterpret_cast<void*>(tag);
    ASSERT_EQ(scheduler.Admit(request), ShedReason::kNone);
  };
  admit(1, 0, 10);              // Low priority, no deadline.
  admit(0, 1000000 + 900, 20);  // Urgent priority, late deadline.
  admit(0, 1000000 + 500, 30);  // Urgent priority, early deadline.
  admit(0, 0, 40);              // Urgent priority, no deadline (sorts last).
  admit(0, 0, 50);              // Same: FIFO after 40.
  admit(1, 1000000 + 100, 60);  // Low priority beats nothing above prio 0.

  std::vector<QueuedRequest> batch;
  std::vector<QueuedRequest> expired;
  scheduler.PopBatch(/*max_items=*/10, &batch, &expired);
  EXPECT_TRUE(expired.empty());
  ASSERT_EQ(batch.size(), 6u);
  const std::intptr_t want[] = {30, 20, 40, 50, 60, 10};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(batch[i].payload), want[i])
        << "position " << i;
  }
  ExpectConservation(scheduler.stats());
}

TEST(SchedulerTest, QueueFullShedsAtBound) {
  FakeClock clock(1000000);
  SchedulerOptions options;
  options.max_queue = 2;
  Scheduler scheduler(options, /*registry=*/nullptr, &clock);
  EXPECT_EQ(scheduler.Admit(QueuedRequest{}), ShedReason::kNone);
  EXPECT_EQ(scheduler.Admit(QueuedRequest{}), ShedReason::kNone);
  EXPECT_EQ(scheduler.Admit(QueuedRequest{}), ShedReason::kQueueFull);
  // Draining one slot re-opens admission.
  std::vector<QueuedRequest> batch;
  std::vector<QueuedRequest> expired;
  scheduler.PopBatch(1, &batch, &expired);
  EXPECT_EQ(scheduler.Admit(QueuedRequest{}), ShedReason::kNone);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.shed_by[static_cast<int>(ShedReason::kQueueFull)], 1);
}

TEST(SchedulerTest, TokenBucketQuotaRefillsOnFakeClock) {
  FakeClock clock(1000000);
  SchedulerOptions options;
  options.tenant_quotas.push_back(TenantQuotaSpec{"metered", 1000.0, 2.0});
  Scheduler scheduler(options, /*registry=*/nullptr, &clock);
  const int metered = scheduler.TenantIndex("metered");
  const int unlimited = scheduler.TenantIndex("free");
  auto admit = [&](int tenant) {
    QueuedRequest request;
    request.tenant_index = tenant;
    return scheduler.Admit(request);
  };
  // Burst of 2 passes; the third is quota-shed with the clock frozen.
  EXPECT_EQ(admit(metered), ShedReason::kNone);
  EXPECT_EQ(admit(metered), ShedReason::kNone);
  EXPECT_EQ(admit(metered), ShedReason::kTenantQuota);
  // The unlimited tenant is untouched by the metered tenant's bucket.
  EXPECT_EQ(admit(unlimited), ShedReason::kNone);
  // 1 ms at 1000 tokens/s = exactly one token back.
  clock.Advance(1000);
  EXPECT_EQ(admit(metered), ShedReason::kNone);
  EXPECT_EQ(admit(metered), ShedReason::kTenantQuota);
  // A long idle stretch refills to burst capacity, not beyond.
  clock.Advance(60 * 1000 * 1000);
  EXPECT_EQ(admit(metered), ShedReason::kNone);
  EXPECT_EQ(admit(metered), ShedReason::kNone);
  EXPECT_EQ(admit(metered), ShedReason::kTenantQuota);

  const SchedulerStats stats = scheduler.stats();
  const TenantStats& tenant = stats.tenants[static_cast<size_t>(metered)];
  EXPECT_EQ(tenant.submitted, 8);
  EXPECT_EQ(tenant.admitted, 5);
  EXPECT_EQ(tenant.shed_by[static_cast<int>(ShedReason::kTenantQuota)], 3);
}

TEST(SchedulerTest, DeadlineFailFastAndSlackFloor) {
  FakeClock clock(1000000);
  SchedulerOptions options;
  options.min_deadline_slack_us = 1000;
  Scheduler scheduler(options, /*registry=*/nullptr, &clock);
  auto admit = [&](std::int64_t deadline_us) {
    QueuedRequest request;
    request.deadline_us = deadline_us;
    return scheduler.Admit(request);
  };
  // Already expired: fail fast.
  EXPECT_EQ(admit(999000), ShedReason::kDeadlineExpired);
  // Slack exactly at the floor: still doomed (<=).
  EXPECT_EQ(admit(1001000), ShedReason::kDeadlineExpired);
  // One microsecond above the floor: admitted.
  EXPECT_EQ(admit(1001001), ShedReason::kNone);
  // No deadline: never fail-fast.
  EXPECT_EQ(admit(0), ShedReason::kNone);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.shed_by[static_cast<int>(ShedReason::kDeadlineExpired)], 2);
  EXPECT_EQ(stats.admitted, 2);
}

TEST(SchedulerTest, DispatchTimeExpiryMovesToExpired) {
  FakeClock clock(1000000);
  Scheduler scheduler(SchedulerOptions{}, /*registry=*/nullptr, &clock);
  QueuedRequest doomed;
  doomed.deadline_us = 1000500;
  ASSERT_EQ(scheduler.Admit(doomed), ShedReason::kNone);
  QueuedRequest healthy;
  healthy.deadline_us = 2000000;
  ASSERT_EQ(scheduler.Admit(healthy), ShedReason::kNone);
  // The first deadline expires while queued.
  clock.Advance(500);
  std::vector<QueuedRequest> batch;
  std::vector<QueuedRequest> expired;
  scheduler.PopBatch(10, &batch, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].deadline_us, 1000500);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].deadline_us, 2000000);
  const SchedulerStats stats = scheduler.stats();
  // A dispatch-time expiry counts in admitted AND shed: the precise
  // invariant is dispatched + shed == submitted.
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.dispatched, 1);
  EXPECT_EQ(stats.shed, 1);
  ExpectConservation(stats);
}

TEST(SchedulerTest, SloShedRespectsProtectedPriority) {
  FakeClock clock(1000000);
  SchedulerOptions options;
  options.shed_on_slo = true;
  options.slo_shed_burn_rate = 1.0;
  options.slo_protected_priority = 0;
  Scheduler scheduler(options, /*registry=*/nullptr, &clock);
  auto admit = [&](int priority) {
    QueuedRequest request;
    request.priority = priority;
    return scheduler.Admit(request);
  };
  // Below the shed threshold: everything passes.
  scheduler.SetBurnRate(0.5);
  EXPECT_EQ(admit(0), ShedReason::kNone);
  EXPECT_EQ(admit(1), ShedReason::kNone);
  // Burning: non-protected priorities shed, protected ones get through.
  scheduler.SetBurnRate(2.0);
  EXPECT_EQ(admit(0), ShedReason::kNone);
  EXPECT_EQ(admit(1), ShedReason::kSloShed);
  EXPECT_EQ(admit(5), ShedReason::kSloShed);
  // Recovery re-admits immediately.
  scheduler.SetBurnRate(0.0);
  EXPECT_EQ(admit(1), ShedReason::kNone);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.shed_by[static_cast<int>(ShedReason::kSloShed)], 2);
}

TEST(SchedulerTest, ConservationHoldsUnderRandomizedChaos) {
  // Property test: a random mix of admits (tenants, priorities,
  // deadlines), clock advances, burn-rate flips and partial drains can
  // never break conservation. Every shed reason is exercised.
  for (const uint64_t seed : {3u, 17u, 20260808u}) {
    Rng rng(seed);
    FakeClock clock(1000000);
    SchedulerOptions options;
    options.max_queue = 8;
    options.min_deadline_slack_us = 50;
    options.shed_on_slo = true;
    options.slo_shed_burn_rate = 1.0;
    options.slo_protected_priority = 0;
    options.tenant_quotas.push_back(TenantQuotaSpec{"metered", 2000.0, 4.0});
    Scheduler scheduler(options, /*registry=*/nullptr, &clock);
    const int metered = scheduler.TenantIndex("metered");
    std::int64_t client_submitted = 0;
    std::int64_t client_popped = 0;
    std::int64_t client_shed = 0;
    for (int step = 0; step < 3000; ++step) {
      const double action = rng.Uniform();
      if (action < 0.60) {
        QueuedRequest request;
        request.tenant_index = rng.Bernoulli(0.5) ? metered : 0;
        request.priority = static_cast<int>(rng.UniformInt(0, 2));
        if (rng.Bernoulli(0.5)) {
          // Anywhere from already-expired to comfortably in the future.
          request.deadline_us = clock.NowMicros() + rng.UniformInt(-200, 2000);
        }
        ++client_submitted;
        if (scheduler.Admit(request) != ShedReason::kNone) ++client_shed;
      } else if (action < 0.80) {
        std::vector<QueuedRequest> batch;
        std::vector<QueuedRequest> expired;
        scheduler.PopBatch(static_cast<int>(rng.UniformInt(1, 4)), &batch,
                           &expired);
        client_popped += static_cast<std::int64_t>(batch.size());
        client_shed += static_cast<std::int64_t>(expired.size());
      } else if (action < 0.95) {
        clock.Advance(rng.UniformInt(0, 500));
      } else {
        scheduler.SetBurnRate(rng.Bernoulli(0.5) ? 2.0 : 0.0);
      }
    }
    // Drain whatever is left (some of it expired in the queue).
    while (!scheduler.empty()) {
      std::vector<QueuedRequest> batch;
      std::vector<QueuedRequest> expired;
      scheduler.PopBatch(7, &batch, &expired);
      client_popped += static_cast<std::int64_t>(batch.size());
      client_shed += static_cast<std::int64_t>(expired.size());
    }
    const SchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, client_submitted) << "seed " << seed;
    EXPECT_EQ(stats.dispatched, client_popped) << "seed " << seed;
    EXPECT_EQ(stats.shed, client_shed) << "seed " << seed;
    ExpectConservation(stats);
    // The chaos mix must actually have exercised every shed path.
    for (int r = 1; r < serve::kNumShedReasons; ++r) {
      EXPECT_GT(stats.shed_by[r], 0)
          << "seed " << seed << " reason " << r << " never fired";
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level tests: live worker threads, frozen FakeClock for exact
// admission decisions.
// ---------------------------------------------------------------------------

TEST(ServeSchedTest, PrioritizedSubmitsStayBitwiseEqualToReference) {
  GraphDataset dataset = TinyDataset();
  Rng rng(5);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.test_idx) graphs.push_back(&dataset.graphs[idx]);
  const Tensor reference = ReferenceLogits(&model, graphs);

  InferenceOptions options;
  options.num_workers = 2;
  options.max_batch_graphs = 3;
  options.max_inflight = 5;
  options.telemetry = false;
  InferenceEngine engine(TinySpec(dataset), options);
  engine.SyncFrom(model);

  // Scheduling affects order and placement only, never values: a mixed
  // bag of priorities/tenants must reproduce the reference bitwise.
  Rng prio_rng(1234);
  std::vector<SubmitResult> results;
  results.reserve(graphs.size());
  for (const Graph* g : graphs) {
    SubmitOptions submit;
    submit.priority = static_cast<int>(prio_rng.UniformInt(0, 3));
    submit.tenant = prio_rng.Bernoulli(0.5) ? "a" : "b";
    results.push_back(engine.Submit(*g, submit));
  }
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].admitted);
    const Tensor row = results[i].future.get();
    EXPECT_TRUE(RowsBitwiseEqual(row, reference, static_cast<int>(i)))
        << "graph " << i;
  }
  const InferenceStats stats = engine.stats();
  EXPECT_EQ(stats.scheduler.dispatched,
            static_cast<std::int64_t>(graphs.size()));
  EXPECT_EQ(stats.scheduler.shed, 0);
}

TEST(ServeSchedTest, TenantQuotaShedsDeterministicallyOnFrozenClock) {
  GraphDataset dataset = TinyDataset();
  FakeClock clock(1000000);
  InferenceOptions options;
  options.num_workers = 1;
  options.clock = &clock;
  options.scheduler.tenant_quotas.push_back(
      TenantQuotaSpec{"metered", 1000.0, 2.0});
  obs::MetricsRegistry registry;
  options.telemetry_registry = &registry;
  InferenceEngine engine(TinySpec(dataset), options);

  const Graph& graph = dataset.graphs[dataset.test_idx[0]];
  SubmitOptions metered;
  metered.tenant = "metered";
  std::vector<SubmitResult> results;
  for (int i = 0; i < 5; ++i) results.push_back(engine.Submit(graph, metered));
  // Frozen clock: exactly the burst of 2 is admitted, rest quota-shed,
  // regardless of worker timing.
  int served = 0;
  int shed = 0;
  for (SubmitResult& result : results) {
    if (result.admitted) {
      EXPECT_EQ(result.future.get().cols(), dataset.OutputDim());
      ++served;
    } else {
      EXPECT_EQ(result.shed, ShedReason::kTenantQuota);
      try {
        result.future.get();
        FAIL() << "shed future must throw";
      } catch (const ShedError& error) {
        EXPECT_EQ(error.reason(), ShedReason::kTenantQuota);
      }
      ++shed;
    }
  }
  EXPECT_EQ(served, 2);
  EXPECT_EQ(shed, 3);
  // Refill one token and the tenant is admitted again.
  clock.Advance(1000);
  SubmitResult refilled = engine.Submit(graph, metered);
  EXPECT_TRUE(refilled.admitted);
  (void)refilled.future.get();

  const InferenceStats stats = engine.stats();
  bool found = false;
  for (const TenantStats& tenant : stats.scheduler.tenants) {
    if (tenant.tenant != "metered") continue;
    found = true;
    EXPECT_EQ(tenant.submitted, 6);
    EXPECT_EQ(tenant.dispatched, 3);
    EXPECT_EQ(tenant.shed_by[static_cast<int>(ShedReason::kTenantQuota)], 3);
    EXPECT_EQ(tenant.dispatched + tenant.shed, tenant.submitted);
  }
  EXPECT_TRUE(found);
  // The shed family is visible to exporters.
  const obs::MetricsSnapshot snapshot = registry.GetSnapshot();
  std::int64_t quota_sheds = -1;
  for (const auto& counter : snapshot.counters) {
    if (counter.first == "serve/shed/quota") quota_sheds = counter.second;
  }
  EXPECT_EQ(quota_sheds, 3);
}

TEST(ServeSchedTest, DeadlineAdmissionIsExactOnFrozenClock) {
  GraphDataset dataset = TinyDataset();
  FakeClock clock(1000000);
  InferenceOptions options;
  options.num_workers = 1;
  options.clock = &clock;
  options.telemetry = false;
  options.scheduler.min_deadline_slack_us = 1000;
  InferenceEngine engine(TinySpec(dataset), options);
  const Graph& graph = dataset.graphs[dataset.test_idx[0]];

  // Negative relative deadline = already expired: deterministic
  // admission shed, span mirrored before the future throws.
  SubmitOptions expired_opts;
  expired_opts.deadline_us = -1;
  obs::RequestSpan span;
  SubmitResult expired = engine.Submit(graph, expired_opts, &span);
  EXPECT_FALSE(expired.admitted);
  EXPECT_EQ(expired.shed, ShedReason::kDeadlineExpired);
  EXPECT_EQ(span.request_id, expired.request_id);
  EXPECT_EQ(span.model_version, 0);  // Never reached a worker.
  EXPECT_THROW(expired.future.get(), ShedError);

  // Slack at the floor sheds; above the floor admits (and with the
  // clock frozen the queued deadline can never expire afterwards).
  SubmitOptions doomed_opts;
  doomed_opts.deadline_us = 1000;
  EXPECT_EQ(engine.Submit(graph, doomed_opts).shed,
            ShedReason::kDeadlineExpired);
  SubmitOptions healthy_opts;
  healthy_opts.deadline_us = 1001;
  SubmitResult healthy = engine.Submit(graph, healthy_opts);
  ASSERT_TRUE(healthy.admitted);
  EXPECT_EQ(healthy.future.get().cols(), dataset.OutputDim());
}

TEST(ServeSchedTest, BurnRateBreachShedsUnprotectedPriorities) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 1;
  obs::MetricsRegistry registry;
  options.telemetry_registry = &registry;
  // An impossible objective: every request violates (latency > -1).
  obs::SloSpec slo;
  slo.name = "always_burn";
  slo.quantile = 0.5;
  slo.threshold_us = -1.0;
  slo.window = 4;
  options.slos = {slo};
  options.scheduler.shed_on_slo = true;
  options.scheduler.slo_shed_burn_rate = 1.0;
  options.scheduler.slo_protected_priority = 0;
  InferenceEngine engine(TinySpec(dataset), options);
  const Graph& graph = dataset.graphs[dataset.test_idx[0]];

  // Protected (priority 0) traffic drives the burn rate over 1; the
  // signal is published before each future resolves, so after these
  // gets the breach is guaranteed visible to admission.
  for (int i = 0; i < 8; ++i) (void)engine.Predict(graph);
  ASSERT_GT(engine.stats().slos[0].status.burn_rate, 1.0);

  SubmitOptions low;
  low.priority = 1;
  SubmitResult shed = engine.Submit(graph, low);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.shed, ShedReason::kSloShed);
  EXPECT_THROW(shed.future.get(), ShedError);
  // Protected traffic still gets through while burning.
  (void)engine.Predict(graph);
  const InferenceStats stats = engine.stats();
  EXPECT_EQ(stats.scheduler.shed_by[static_cast<int>(ShedReason::kSloShed)],
            1);
  EXPECT_EQ(stats.scheduler.dispatched, 9);
}

TEST(ServeSchedTest, HotRolloutServesNewWeightsAndTagsSpans) {
  GraphDataset dataset = TinyDataset();
  Rng rng_a(5);
  GraphPredictionModel model_a(Method::kGin, TinyEncoder(dataset.feature_dim),
                               dataset.OutputDim(), &rng_a);
  Rng rng_b(6);
  GraphPredictionModel model_b(Method::kGin, TinyEncoder(dataset.feature_dim),
                               dataset.OutputDim(), &rng_b);
  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.test_idx) graphs.push_back(&dataset.graphs[idx]);
  const Tensor ref_a = ReferenceLogits(&model_a, graphs);
  const Tensor ref_b = ReferenceLogits(&model_b, graphs);

  InferenceOptions options;
  options.num_workers = 2;
  obs::MetricsRegistry registry;
  options.telemetry_registry = &registry;
  InferenceEngine engine(TinySpec(dataset), options);
  EXPECT_EQ(engine.stats().weight_version, 1);  // Construction publishes v1.

  engine.SyncFrom(model_a);  // v2
  obs::RequestSpan span_a;
  const Tensor row_a = engine.Submit(*graphs[0], SubmitOptions{}, &span_a)
                           .future.get();
  EXPECT_TRUE(RowsBitwiseEqual(row_a, ref_a, 0));
  EXPECT_EQ(span_a.model_version, 2);

  // SyncFrom returns before any worker adopted; the next batch each
  // worker runs adopts v3 at its own boundary — every request
  // submitted after this line serves v3.
  engine.SyncFrom(model_b);  // v3
  for (size_t i = 0; i < graphs.size(); ++i) {
    obs::RequestSpan span;
    const Tensor row = engine.Submit(*graphs[i], SubmitOptions{}, &span)
                           .future.get();
    EXPECT_TRUE(RowsBitwiseEqual(row, ref_b, static_cast<int>(i)))
        << "graph " << i;
    EXPECT_EQ(span.model_version, 3);
  }

  const InferenceStats stats = engine.stats();
  EXPECT_EQ(stats.weight_version, 3);
  EXPECT_EQ(stats.rollouts, 3);
  std::int64_t attributed = 0;
  for (const serve::VersionCount& count : stats.versions) {
    attributed += count.requests;
  }
  // Version attribution is exact: every executed graph counted once.
  EXPECT_EQ(attributed, stats.scheduler.dispatched);
}

TEST(ServeSchedTest, RollbackRestoresPreviousVersionBitwise) {
  GraphDataset dataset = TinyDataset();
  Rng rng_a(5);
  GraphPredictionModel model_a(Method::kGin, TinyEncoder(dataset.feature_dim),
                               dataset.OutputDim(), &rng_a);
  Rng rng_b(6);
  GraphPredictionModel model_b(Method::kGin, TinyEncoder(dataset.feature_dim),
                               dataset.OutputDim(), &rng_b);
  const Graph& graph = dataset.graphs[dataset.test_idx[0]];

  InferenceOptions options;
  options.num_workers = 2;
  options.telemetry = false;
  InferenceEngine engine(TinySpec(dataset), options);
  engine.SyncFrom(model_a);  // v2
  obs::RequestSpan span;
  const Tensor before = engine.Submit(graph, SubmitOptions{}, &span).future.get();
  ASSERT_EQ(span.model_version, 2);

  engine.SyncFrom(model_b);  // v3
  const Tensor during = engine.Submit(graph, SubmitOptions{}, &span).future.get();
  ASSERT_EQ(span.model_version, 3);
  EXPECT_NE(std::memcmp(before.data(), during.data(),
                        static_cast<size_t>(before.cols()) * sizeof(float)),
            0);

  // Rollback re-publishes v2: served bytes return exactly.
  ASSERT_TRUE(engine.RollbackWeights());
  const Tensor after = engine.Submit(graph, SubmitOptions{}, &span).future.get();
  EXPECT_EQ(span.model_version, 2);
  EXPECT_EQ(std::memcmp(before.data(), after.data(),
                        static_cast<size_t>(before.cols()) * sizeof(float)),
            0);
  const InferenceStats stats = engine.stats();
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.weight_version, 2);
  // A second rollback toggles back to v3.
  ASSERT_TRUE(engine.RollbackWeights());
  EXPECT_EQ(engine.stats().weight_version, 3);
}

TEST(ServeSchedTest, CompiledZeroAllocHoldsWithSchedulingOn) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 1;
  options.max_batch_wait_us = 0;
  options.compiled = true;
  options.telemetry = false;
  options.scheduler.max_queue = 64;
  options.scheduler.min_deadline_slack_us = 10;
  InferenceEngine engine(TinySpec(dataset), options);
  const Graph& graph = dataset.graphs[dataset.train_idx[0]];
  std::int64_t expected = 0;
  for (int i = 0; i < 32; ++i) {
    SubmitOptions submit;
    submit.priority = i % 3;
    (void)engine.Submit(graph, submit).future.get();
    ++expected;
  }
  const InferenceStats stats = engine.stats();
  EXPECT_EQ(stats.planned_batches, expected);
  EXPECT_EQ(stats.eager_batches, 0);
  EXPECT_EQ(stats.diverged_batches, 0);
  // Scheduling happens outside the replay scope: the zero-allocation
  // serving guarantee is untouched by admission control.
  EXPECT_EQ(stats.fallback_heap_allocs, 0);
}

// ---------------------------------------------------------------------------
// Raced chaos: submitters vs rollouts vs rollbacks vs stats vs stop,
// pinned by interleaving-independent invariants. Run under TSan by the
// sanitize-serve-sched label.
// ---------------------------------------------------------------------------

TEST(ServeSchedTest, RacedSubmitRolloutRollbackStopKeepsInvariants) {
  GraphDataset dataset = TinyDataset();
  Rng rng_a(5);
  GraphPredictionModel model_a(Method::kGin, TinyEncoder(dataset.feature_dim),
                               dataset.OutputDim(), &rng_a);
  Rng rng_b(6);
  GraphPredictionModel model_b(Method::kGin, TinyEncoder(dataset.feature_dim),
                               dataset.OutputDim(), &rng_b);
  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.train_idx) graphs.push_back(&dataset.graphs[idx]);
  const Tensor ref_a = ReferenceLogits(&model_a, graphs);
  const Tensor ref_b = ReferenceLogits(&model_b, graphs);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 60;

  InferenceOptions options;
  options.num_workers = 3;
  options.max_batch_graphs = 4;
  options.max_inflight = 6;
  options.max_batch_wait_us = 50;
  obs::MetricsRegistry registry;
  options.telemetry_registry = &registry;
  // A tight queue bound so overload genuinely sheds during the race.
  options.scheduler.max_queue = 16;

  struct Outcome {
    obs::RequestSpan span;
    Tensor row;
    bool served = false;
    bool shed = false;
  };
  std::vector<std::vector<Outcome>> outcomes(
      kSubmitters, std::vector<Outcome>(kPerSubmitter));

  {
    InferenceEngine engine(TinySpec(dataset), options);
    engine.SyncFrom(model_a);  // v2, before any submitter starts.

    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        Rng rng(1000 + static_cast<uint64_t>(s));
        for (int i = 0; i < kPerSubmitter; ++i) {
          Outcome& outcome = outcomes[static_cast<size_t>(s)]
                                     [static_cast<size_t>(i)];
          const size_t g = static_cast<size_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(graphs.size()) - 1));
          SubmitOptions submit;
          submit.priority = static_cast<int>(rng.UniformInt(0, 2));
          submit.tenant = rng.Bernoulli(0.5) ? "x" : "y";
          SubmitResult result =
              engine.Submit(*graphs[g], submit, &outcome.span);
          try {
            outcome.row = result.future.get();
            outcome.served = true;
            // Remember which graph this was via the span's request id
            // slot — the row is checked against the graph's reference
            // row below.
            outcome.span.request_id = static_cast<std::int64_t>(g);
          } catch (const ShedError&) {
            outcome.shed = true;
          }
        }
      });
    }
    // Publisher: a deterministic id sequence raced against the
    // submitters. v3 = B, rollback → v2 = A, v4 = A, v5 = B.
    std::thread publisher([&] {
      engine.SyncFrom(model_b);                       // v3 = B
      (void)engine.stats();
      ASSERT_TRUE(engine.RollbackWeights());          // current v2 = A
      (void)engine.stats();
      engine.SyncFrom(model_a);                       // v4 = A
      engine.SyncFrom(model_b);                       // v5 = B
    });
    // Stats reader racing everything (TSan coverage for the snapshot
    // paths).
    std::thread reader([&] {
      for (int i = 0; i < 50; ++i) (void)engine.stats();
    });
    for (std::thread& t : submitters) t.join();
    publisher.join();
    reader.join();

    // Every future resolved exactly once, one way or the other.
    std::int64_t served = 0;
    std::int64_t shed = 0;
    for (const auto& per_thread : outcomes) {
      for (const Outcome& outcome : per_thread) {
        ASSERT_NE(outcome.served, outcome.shed);
        if (outcome.served) {
          ++served;
          // The serving version is tagged on the span before the
          // future resolves; rows must match that exact version's
          // reference forward, bitwise — no torn weights, ever.
          const Tensor& ref =
              (outcome.span.model_version == 3 ||
               outcome.span.model_version == 5)
                  ? ref_b
                  : ref_a;
          ASSERT_GE(outcome.span.model_version, 2);
          ASSERT_LE(outcome.span.model_version, 5);
          EXPECT_TRUE(RowsBitwiseEqual(
              outcome.row, ref,
              static_cast<int>(outcome.span.request_id)));
        } else {
          ++shed;
        }
      }
    }
    EXPECT_EQ(served + shed, kSubmitters * kPerSubmitter);

    const InferenceStats stats = engine.stats();
    EXPECT_EQ(stats.scheduler.submitted, kSubmitters * kPerSubmitter);
    EXPECT_EQ(stats.scheduler.dispatched, served);
    EXPECT_EQ(stats.scheduler.shed, shed);
    ExpectConservation(stats.scheduler);
    // Version attribution reconciles with execution exactly.
    std::int64_t attributed = 0;
    for (const serve::VersionCount& count : stats.versions) {
      EXPECT_GE(count.version, 1);
      EXPECT_LE(count.version, 5);
      attributed += count.requests;
    }
    EXPECT_EQ(attributed, served);
    EXPECT_EQ(stats.rollouts, 5);
    EXPECT_EQ(stats.rollbacks, 1);
  }  // Engine destruction drains and joins with requests settled.
}

TEST(ServeSchedTest, DestructionDrainsQueuedRequests) {
  // Submit a burst and destroy the engine without waiting: every
  // future must still resolve (the destructor drains before joining).
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 2;
  options.max_batch_graphs = 2;
  options.telemetry = false;
  std::vector<std::future<Tensor>> futures;
  {
    InferenceEngine engine(TinySpec(dataset), options);
    for (size_t idx : dataset.train_idx) {
      futures.push_back(engine.Submit(dataset.graphs[idx]));
    }
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().cols(), dataset.OutputDim());
  }
}

}  // namespace
}  // namespace oodgnn