// Tests for components beyond the paper's core: GAT and GraphSAGE
// extension layers, the exact-HSIC reference estimator, and the
// checkpointed-model / RFF-vs-HSIC cross-validations.

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/decorrelation.h"
#include "src/core/hsic.h"
#include "src/gnn/gat_conv.h"
#include "src/gnn/model_zoo.h"
#include "src/gnn/sage_conv.h"
#include "src/graph/batch.h"
#include "src/tensor/ops.h"
#include "src/train/trainer.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

GraphBatch StarBatch(int feature_dim = 3) {
  Graph g(4, feature_dim);
  g.AddUndirectedEdge(0, 1);
  g.AddUndirectedEdge(0, 2);
  g.AddUndirectedEdge(0, 3);
  g.label = 0;
  Rng rng(1);
  g.x = Tensor::RandomNormal(4, feature_dim, &rng);
  return GraphBatch::FromGraphs({&g});
}

TEST(GatConvTest, OutputShape) {
  Rng rng(2);
  GatConv conv(3, 8, /*num_heads=*/2, &rng);
  GraphBatch batch = StarBatch();
  Variable out = conv.Forward(Variable::Constant(batch.features), batch);
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), 8);
}

TEST(GatConvTest, AttentionIsConvexCombination) {
  // With one head and identical transformed features, the output equals
  // that shared feature regardless of attention values (softmax sums to
  // 1 over each node's in-edges + self loop).
  Rng rng(3);
  GatConv conv(3, 4, 1, &rng);
  GraphBatch batch = StarBatch();
  Tensor same(4, 3);
  for (int v = 0; v < 4; ++v) {
    same.at(v, 0) = 1.f;
    same.at(v, 1) = -2.f;
    same.at(v, 2) = 0.5f;
  }
  Variable out = conv.Forward(Variable::Constant(same), batch);
  for (int v = 1; v < 4; ++v) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(out.value().at(v, c), out.value().at(0, c), 1e-5);
    }
  }
}

TEST(GatConvTest, HandlesIsolatedNodesViaSelfLoop) {
  Rng rng(4);
  GatConv conv(3, 4, 2, &rng);
  Graph g(3, 3);  // No edges.
  Rng frng(5);
  g.x = Tensor::RandomNormal(3, 3, &frng);
  GraphBatch batch = GraphBatch::FromGraphs({&g});
  Variable out = conv.Forward(Variable::Constant(batch.features), batch);
  for (int i = 0; i < out.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.value()[i]));
  }
  // Every node attends only to itself -> output is its own transform,
  // generally non-zero.
  EXPECT_GT(out.value().MaxAbs(), 0.f);
}

TEST(GatConvTest, BackpropReachesAttentionParameters) {
  Rng rng(6);
  GatConv conv(3, 4, 2, &rng);
  GraphBatch batch = StarBatch();
  conv.ZeroGrad();
  Variable out = conv.Forward(
      Variable::Constant(batch.features), batch);
  Sum(Square(out)).Backward();
  float max_grad = 0.f;
  for (const Variable& p : conv.Parameters()) {
    max_grad = std::max(max_grad, p.grad().MaxAbs());
  }
  EXPECT_GT(max_grad, 0.f);
}

TEST(SageConvTest, MeanAggregation) {
  Rng rng(7);
  SageConv conv(2, 2, &rng);
  // Verify against a manual computation using the layer's own weights.
  Graph g(3, 2);
  g.AddEdge(1, 0);
  g.AddEdge(2, 0);
  g.x.at(1, 0) = 2.f;
  g.x.at(2, 0) = 4.f;
  GraphBatch batch = GraphBatch::FromGraphs({&g});
  Variable out = conv.Forward(Variable::Constant(batch.features), batch);
  EXPECT_EQ(out.rows(), 3);
  // Node 0 aggregates mean([2,0],[4,0]) = [3,0] through the neighbor
  // path; an equivalent graph whose single in-neighbor carries [3,0]
  // must produce the same node-0 output.
  Graph equivalent(2, 2);
  equivalent.AddEdge(1, 0);
  equivalent.x.at(1, 0) = 3.f;
  GraphBatch eq_batch = GraphBatch::FromGraphs({&equivalent});
  Variable eq_out =
      conv.Forward(Variable::Constant(eq_batch.features), eq_batch);
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(out.value().at(0, c), eq_out.value().at(0, c), 1e-5);
  }
}

TEST(ExtensionMethodsTest, TrainEndToEnd) {
  // Labels are recoverable from node (degree) features: attention-based
  // models like GAT normalize away raw degree, so the signal must be in
  // the features themselves.
  GraphDataset ds;
  ds.num_tasks = 2;
  ds.feature_dim = 3;
  Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2;
    Graph g(5, 3);
    if (label) {
      for (int v = 0; v + 1 < 5; ++v) g.AddUndirectedEdge(v, v + 1);
    }
    std::vector<int> degrees = g.InDegrees();
    for (int v = 0; v < 5; ++v) {
      g.x.at(v, std::min(degrees[static_cast<size_t>(v)], 2)) = 1.f;
    }
    g.label = label;
    (i < 40 ? ds.train_idx : ds.test_idx).push_back(ds.graphs.size());
    ds.graphs.push_back(std::move(g));
  }
  TrainConfig config;
  config.epochs = 15;
  config.batch_size = 16;
  config.lr = 5e-3f;
  config.encoder.hidden_dim = 8;
  config.encoder.num_layers = 2;
  config.encoder.dropout = 0.f;
  for (Method method : ExtensionMethods()) {
    TrainResult result = TrainAndEvaluate(method, ds, config);
    EXPECT_GT(result.test_metric, 0.8) << MethodName(method);
  }
}

TEST(ExtensionMethodsTest, NamesAndZoo) {
  EXPECT_STREQ(MethodName(Method::kGat), "GAT");
  EXPECT_STREQ(MethodName(Method::kGraphSage), "GraphSAGE");
  EXPECT_EQ(ExtensionMethods().size(), 2u);
  // Extensions are NOT part of the paper's table rows.
  for (Method m : AllMethods()) {
    EXPECT_NE(m, Method::kGat);
    EXPECT_NE(m, Method::kGraphSage);
  }
}

// ---------------------------------------------------------------------------
// Exact HSIC reference.
// ---------------------------------------------------------------------------

Tensor Column(int n, uint64_t seed, bool dependent_on = false,
              const Tensor* base = nullptr) {
  Rng rng(seed);
  Tensor out(n, 1);
  for (int r = 0; r < n; ++r) {
    if (dependent_on && base) {
      const float x = base->at(r, 0);
      out.at(r, 0) = x * x - 1.f;
    } else {
      out.at(r, 0) = static_cast<float>(rng.Normal(0.0, 1.0));
    }
  }
  return out;
}

TEST(HsicTest, IndependentNearZeroDependentLarge) {
  const int n = 300;
  Tensor x = Column(n, 10);
  Tensor independent = Column(n, 11);
  Tensor dependent = Column(n, 12, /*dependent_on=*/true, &x);
  const double h_indep = ExactHsic(x, independent);
  const double h_dep = ExactHsic(x, dependent);
  EXPECT_GT(h_dep, 10.0 * h_indep);
}

TEST(HsicTest, SymmetricInArguments) {
  Tensor x = Column(100, 13);
  Tensor y = Column(100, 14);
  EXPECT_NEAR(ExactHsic(x, y, 1.0), ExactHsic(y, x, 1.0), 1e-12);
}

TEST(HsicTest, NonNegative) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Tensor x = Column(60, 20 + seed);
    Tensor y = Column(60, 40 + seed);
    EXPECT_GE(ExactHsic(x, y), -1e-9);
  }
}

TEST(HsicTest, MedianBandwidthReasonable) {
  Tensor x = Tensor::ColVector({0.f, 1.f, 2.f, 3.f});
  // Pairwise distances {1,1,1,2,2,3} -> median 2 (upper median).
  EXPECT_NEAR(MedianBandwidth(x), 2.0, 1e-9);
  Tensor constant(5, 1, 2.f);
  EXPECT_DOUBLE_EQ(MedianBandwidth(constant), 1.0);
}

TEST(HsicTest, RffMeasureAgreesWithExactHsicOrdering) {
  // The RFF-based DependenceMeasure must order datasets the same way
  // the exact HSIC does: dependent data above independent data.
  const int n = 400;
  Rng base_rng(15);
  Tensor dependent(n, 2);
  Tensor independent(n, 2);
  for (int r = 0; r < n; ++r) {
    const float x = static_cast<float>(base_rng.Normal(0.0, 1.0));
    dependent.at(r, 0) = x;
    dependent.at(r, 1) = std::sin(3.f * x);
    independent.at(r, 0) = x;
    independent.at(r, 1) = static_cast<float>(base_rng.Normal(0.0, 1.0));
  }
  const double exact_dep = ExactPairwiseHsic(dependent);
  const double exact_indep = ExactPairwiseHsic(independent);
  EXPECT_GT(exact_dep, exact_indep);

  Rng map_rng(16);
  RffConfig config;
  config.num_functions = 4;
  RffFeatureMap rff(2, config, &map_rng);
  const double rff_dep = DependenceMeasure(dependent, rff);
  const double rff_indep = DependenceMeasure(independent, rff);
  EXPECT_GT(rff_dep, rff_indep);
}

TEST(HsicTest, ExactPairwiseSumsPairs) {
  // For d=2 the pairwise sum is a single HSIC value.
  Tensor z(50, 2);
  Rng rng(17);
  for (int i = 0; i < z.size(); ++i) {
    z[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  Tensor c0(50, 1);
  Tensor c1(50, 1);
  for (int r = 0; r < 50; ++r) {
    c0.at(r, 0) = z.at(r, 0);
    c1.at(r, 0) = z.at(r, 1);
  }
  EXPECT_NEAR(ExactPairwiseHsic(z, 1.0), ExactHsic(c0, c1, 1.0), 1e-12);
}

}  // namespace
}  // namespace oodgnn
