// Scalar-oracle tests for the SIMD kernel mirrors (DESIGN.md §16).
// The serial scalar kernels in src/tensor/kernels.{h,cc} are the
// bitwise-determinism oracle of the whole repo; every vectorized
// mirror in src/tensor/simd.{h,cc} must reproduce them *bitwise* — not
// approximately — across randomized shapes (including tails that are
// not a multiple of the vector width and odd column counts that make
// row starts unaligned), empty ranges, arbitrary range partitions
// (standing in for thread chunking), adversarial values (±0, NaN,
// ±inf, denormals), and, at the Backend dispatch level, thread counts
// 1/2/8 with the vector path toggled on and off.
//
// On a build without a vector ISA (or a CPU without AVX2) the simd::
// functions delegate to the scalar kernels, so every comparison here
// degenerates to scalar==scalar and still passes — the suite never
// needs to be skipped.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/tensor/backend.h"
#include "src/tensor/kernels.h"
#include "src/tensor/quant.h"
#include "src/tensor/segment_plan.h"
#include "src/tensor/simd.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

Tensor RandomTensor(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::RandomNormal(rows, cols, &rng);
  // A sprinkle of exact zeros exercises the matmul zero-skip branch,
  // which both the scalar and the vector path must take on the same
  // broadcast scalars.
  for (int i = 0; i < t.size(); i += 7) t[i] = 0.f;
  return t;
}

/// Laces a random tensor with the values the bitwise contract must
/// survive: signed zeros, quiet NaN, infinities, and denormals.
Tensor SpecialTensor(int rows, int cols, uint64_t seed) {
  Tensor t = RandomTensor(rows, cols, seed);
  const float specials[] = {
      0.f,
      -0.f,
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      1e-41f,  // single-precision denormal
      -1e-41f,
      std::numeric_limits<float>::denorm_min(),
  };
  for (int i = 0; i < t.size(); ++i) {
    if (i % 5 == 3) t[i] = specials[(static_cast<size_t>(i) / 5) % 8];
  }
  return t;
}

/// memcmp equality: distinguishes +0 from -0 and compares NaN
/// payloads, which AllClose cannot.
bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

/// Runs the scalar kernel over the full range [0, n) into one copy of
/// `out_init` and the vector kernel into another, asserts bitwise
/// equality, then re-runs the vector kernel over several two-piece
/// partitions of the range (including empty and unaligned pieces — the
/// shapes a thread partition produces) and asserts each matches too.
void ExpectRangeKernelBitwise(
    int n, const Tensor& out_init,
    const std::function<void(Tensor*, int, int)>& scalar,
    const std::function<void(Tensor*, int, int)>& vector,
    const std::string& what) {
  Tensor want = out_init;
  scalar(&want, 0, n);
  Tensor got = out_init;
  vector(&got, 0, n);
  EXPECT_TRUE(BitwiseEqual(want, got)) << what << ": full range diverged";
  for (int cut : {0, 1, n / 3, n / 2, n - 1, n}) {
    if (cut < 0 || cut > n) continue;
    Tensor split = out_init;
    vector(&split, 0, cut);
    vector(&split, cut, n);
    EXPECT_TRUE(BitwiseEqual(want, split))
        << what << ": partition at " << cut << " diverged";
  }
}

TEST(SimdTest, ToggleClampsToAvailabilityAndRestores) {
  const char* isa = simd::IsaName();
  EXPECT_TRUE(std::string(isa) == "avx2" || std::string(isa) == "neon" ||
              std::string(isa) == "scalar");
  if (!simd::Available()) EXPECT_STREQ(isa, "scalar");
  const bool before = simd::Enabled();
  EXPECT_TRUE(!before || simd::Available());  // Enabled ⇒ Available
  {
    simd::ScopedSimdEnabled on(true);
    EXPECT_EQ(simd::Enabled(), simd::Available());  // clamped
    {
      simd::ScopedSimdEnabled off(false);
      EXPECT_FALSE(simd::Enabled());
    }
    EXPECT_EQ(simd::Enabled(), simd::Available());
  }
  EXPECT_EQ(simd::Enabled(), before);
}

// --- dense matmul family ------------------------------------------------

struct MatMulShape {
  int m, k, n;
};

constexpr MatMulShape kMatMulShapes[] = {
    {1, 1, 1},     // degenerate
    {7, 3, 5},     // everything below one vector width
    {3, 8, 16},    // exact vector multiples
    {33, 16, 8},   // row count with a tail
    {37, 29, 43},  // all-odd: unaligned rows + tails in every loop
    {64, 64, 64},  // crosses the kBlockK/kBlockP cache blocks
    {5, 31, 9},
    {2, 300, 17},  // k beyond one kBlockK block
};

TEST(SimdTest, MatMulAccBitwise) {
  for (const MatMulShape& s : kMatMulShapes) {
    const Tensor a = RandomTensor(s.m, s.k, 11 * static_cast<uint64_t>(s.m));
    const Tensor b = RandomTensor(s.k, s.n, 13 * static_cast<uint64_t>(s.n));
    const Tensor out_init = RandomTensor(s.m, s.n, 17);  // Acc: seed the sum
    ExpectRangeKernelBitwise(
        s.m, out_init,
        [&](Tensor* out, int r0, int r1) {
          kernels::MatMulAcc(a, b, out, r0, r1);
        },
        [&](Tensor* out, int r0, int r1) { simd::MatMulAcc(a, b, out, r0, r1); },
        "matmul " + std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
            std::to_string(s.n));
  }
}

TEST(SimdTest, MatMulTransAAccBitwise) {
  for (const MatMulShape& s : kMatMulShapes) {
    const Tensor a = RandomTensor(s.m, s.k, 19 * static_cast<uint64_t>(s.k));
    const Tensor b = RandomTensor(s.m, s.n, 23 * static_cast<uint64_t>(s.n));
    const Tensor out_init = RandomTensor(s.k, s.n, 29);
    ExpectRangeKernelBitwise(
        s.k, out_init,
        [&](Tensor* out, int r0, int r1) {
          kernels::MatMulTransAAcc(a, b, out, r0, r1);
        },
        [&](Tensor* out, int r0, int r1) {
          simd::MatMulTransAAcc(a, b, out, r0, r1);
        },
        "matmul_ta " + std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
            std::to_string(s.n));
  }
}

TEST(SimdTest, MatMulTransBAccBitwise) {
  for (const MatMulShape& s : kMatMulShapes) {
    const Tensor a = RandomTensor(s.m, s.k, 31 * static_cast<uint64_t>(s.m));
    const Tensor b = RandomTensor(s.n, s.k, 37 * static_cast<uint64_t>(s.k));
    const Tensor out_init = RandomTensor(s.m, s.n, 41);
    ExpectRangeKernelBitwise(
        s.m, out_init,
        [&](Tensor* out, int r0, int r1) {
          kernels::MatMulTransBAcc(a, b, out, r0, r1);
        },
        [&](Tensor* out, int r0, int r1) {
          simd::MatMulTransBAcc(a, b, out, r0, r1);
        },
        "matmul_tb " + std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
            std::to_string(s.n));
  }
}

TEST(SimdTest, MatMulSpecialValuesBitwise) {
  // NaN payload propagation, inf·0 → NaN, signed-zero results and
  // denormal products must all come out of the vector lanes exactly as
  // the scalar oracle produces them (same operand order, no FMA).
  const Tensor a = SpecialTensor(13, 21, 43);
  const Tensor b = SpecialTensor(21, 19, 47);
  const Tensor bt = SpecialTensor(19, 21, 53);
  Tensor out_init(13, 19);
  ExpectRangeKernelBitwise(
      13, out_init,
      [&](Tensor* out, int r0, int r1) { kernels::MatMulAcc(a, b, out, r0, r1); },
      [&](Tensor* out, int r0, int r1) { simd::MatMulAcc(a, b, out, r0, r1); },
      "matmul specials");
  ExpectRangeKernelBitwise(
      13, out_init,
      [&](Tensor* out, int r0, int r1) {
        kernels::MatMulTransBAcc(a, bt, out, r0, r1);
      },
      [&](Tensor* out, int r0, int r1) {
        simd::MatMulTransBAcc(a, bt, out, r0, r1);
      },
      "matmul_tb specials");
}

TEST(SimdTest, MatMulQuantAccBitwise) {
  // Block tails only happen in the last block of a row (32 % kVLen ==
  // 0), so cols that are off multiples of 32 are the interesting case.
  for (const MatMulShape& s : {MatMulShape{9, 7, 5}, MatMulShape{4, 33, 37},
                               MatMulShape{17, 64, 64}, MatMulShape{3, 50, 95},
                               MatMulShape{1, 1, 1}}) {
    const Tensor a = RandomTensor(s.m, s.k, 59 * static_cast<uint64_t>(s.k));
    const Tensor w = RandomTensor(s.k, s.n, 61 * static_cast<uint64_t>(s.n));
    const QuantizedTensor qw = QuantizeQ8(w);
    const Tensor out_init = RandomTensor(s.m, s.n, 67);
    ExpectRangeKernelBitwise(
        s.m, out_init,
        [&](Tensor* out, int r0, int r1) {
          kernels::MatMulQuantAcc(a, qw, out, r0, r1);
        },
        [&](Tensor* out, int r0, int r1) {
          simd::MatMulQuantAcc(a, qw, out, r0, r1);
        },
        "matmul_quant " + std::to_string(s.m) + "x" + std::to_string(s.k) +
            "x" + std::to_string(s.n));
  }
}

// --- element-wise maps --------------------------------------------------

TEST(SimdTest, ElementwiseBitwise) {
  const Tensor x = RandomTensor(7, 13, 71);  // odd cols: rows unaligned
  const Tensor g = RandomTensor(7, 13, 73);
  const Tensor y_init = RandomTensor(7, 13, 79);
  const int n = x.size();
  ExpectRangeKernelBitwise(
      n, y_init,
      [&](Tensor* y, int i0, int i1) { kernels::Axpy(-1.75f, x, y, i0, i1); },
      [&](Tensor* y, int i0, int i1) { simd::Axpy(-1.75f, x, y, i0, i1); },
      "axpy");
  ExpectRangeKernelBitwise(
      n, y_init,
      [&](Tensor* y, int i0, int i1) { kernels::Scale(y, 0.3f, i0, i1); },
      [&](Tensor* y, int i0, int i1) { simd::Scale(y, 0.3f, i0, i1); },
      "scale");
  ExpectRangeKernelBitwise(
      n, y_init,
      [&](Tensor* y, int i0, int i1) { kernels::AddScalar(y, -2.5f, i0, i1); },
      [&](Tensor* y, int i0, int i1) { simd::AddScalar(y, -2.5f, i0, i1); },
      "add_scalar");
  ExpectRangeKernelBitwise(
      n, y_init,
      [&](Tensor* out, int i0, int i1) { kernels::Hadamard(x, g, out, i0, i1); },
      [&](Tensor* out, int i0, int i1) { simd::Hadamard(x, g, out, i0, i1); },
      "hadamard");
  ExpectRangeKernelBitwise(
      n, y_init,
      [&](Tensor* y, int i0, int i1) { kernels::HadamardAcc(g, x, y, i0, i1); },
      [&](Tensor* y, int i0, int i1) { simd::HadamardAcc(g, x, y, i0, i1); },
      "hadamard_acc");
}

TEST(SimdTest, ElementwiseSpecialValuesBitwise) {
  const Tensor x = SpecialTensor(5, 17, 83);
  const Tensor g = SpecialTensor(5, 17, 89);
  const Tensor y_init = SpecialTensor(5, 17, 97);
  const int n = x.size();
  for (float alpha : {1.0f, -0.0f, 0.5f}) {
    ExpectRangeKernelBitwise(
        n, y_init,
        [&](Tensor* y, int i0, int i1) { kernels::Axpy(alpha, x, y, i0, i1); },
        [&](Tensor* y, int i0, int i1) { simd::Axpy(alpha, x, y, i0, i1); },
        "axpy specials");
  }
  ExpectRangeKernelBitwise(
      n, y_init,
      [&](Tensor* out, int i0, int i1) { kernels::Hadamard(x, g, out, i0, i1); },
      [&](Tensor* out, int i0, int i1) { simd::Hadamard(x, g, out, i0, i1); },
      "hadamard specials");
}

// --- column-ranged reductions and broadcast adjoints --------------------

TEST(SimdTest, ReductionAdjointsBitwise) {
  const Tensor a = RandomTensor(23, 37, 101);
  const Tensor y = RandomTensor(23, 37, 103);
  const Tensor row = RandomTensor(1, 37, 107);
  const Tensor col = RandomTensor(23, 1, 109);
  const Tensor colsum_init = RandomTensor(1, 37, 113);
  const Tensor full_init = RandomTensor(23, 37, 127);
  ExpectRangeKernelBitwise(
      37, colsum_init,
      [&](Tensor* out, int c0, int c1) {
        kernels::ColumnSumAcc(a, out, c0, c1);
      },
      [&](Tensor* out, int c0, int c1) { simd::ColumnSumAcc(a, out, c0, c1); },
      "column_sum");
  ExpectRangeKernelBitwise(
      37, colsum_init,
      [&](Tensor* out, int c0, int c1) {
        kernels::HadamardColumnSumAcc(a, y, out, c0, c1);
      },
      [&](Tensor* out, int c0, int c1) {
        simd::HadamardColumnSumAcc(a, y, out, c0, c1);
      },
      "hadamard_column_sum");
  ExpectRangeKernelBitwise(
      23, full_init,
      [&](Tensor* out, int r0, int r1) {
        kernels::RowBroadcastAcc(row, out, r0, r1);
      },
      [&](Tensor* out, int r0, int r1) {
        simd::RowBroadcastAcc(row, out, r0, r1);
      },
      "row_broadcast");
  ExpectRangeKernelBitwise(
      23, full_init,
      [&](Tensor* out, int r0, int r1) {
        kernels::ColBroadcastAcc(col, out, r0, r1);
      },
      [&](Tensor* out, int r0, int r1) {
        simd::ColBroadcastAcc(col, out, r0, r1);
      },
      "col_broadcast");
}

// --- gather / scatter family -------------------------------------------

TEST(SimdTest, GatherScatterFamilyBitwise) {
  const int num_nodes = 19;
  const int num_edges = 67;
  const int cols = 21;  // odd: every gathered row is unaligned
  const Tensor h = RandomTensor(num_nodes, cols, 131);
  Rng rng(137);
  std::vector<int> src(num_edges), dst(num_edges);
  for (int e = 0; e < num_edges; ++e) {
    // Nodes 0 and 7 never receive an edge: empty segments.
    src[static_cast<size_t>(e)] = static_cast<int>(rng.UniformInt(0, num_nodes - 1));
    int d = static_cast<int>(rng.UniformInt(0, num_nodes - 1));
    if (d == 0 || d == 7) d = 3;
    dst[static_cast<size_t>(e)] = d;
  }
  const MessagePlan plan = MessagePlan::Build(src, dst, num_nodes);
  const Tensor out_init = RandomTensor(num_nodes, cols, 139);

  // GatherRowsAcc: index by destination row.
  std::vector<int> index(static_cast<size_t>(num_nodes));
  for (int r = 0; r < num_nodes; ++r) {
    index[static_cast<size_t>(r)] = (r * 5 + 2) % num_nodes;
  }
  ExpectRangeKernelBitwise(
      num_nodes, out_init,
      [&](Tensor* out, int r0, int r1) {
        kernels::GatherRowsAcc(h, index, out, r0, r1);
      },
      [&](Tensor* out, int r0, int r1) {
        simd::GatherRowsAcc(h, index, out, r0, r1);
      },
      "gather_rows_acc");

  // Planned scatter-add over edge rows.
  const Tensor edge_vals = RandomTensor(num_edges, cols, 149);
  ExpectRangeKernelBitwise(
      num_nodes, out_init,
      [&](Tensor* out, int s0, int s1) {
        kernels::ScatterAddRowsPlanned(edge_vals, plan.by_dst.perm,
                                       plan.by_dst.offsets, out, s0, s1);
      },
      [&](Tensor* out, int s0, int s1) {
        simd::ScatterAddRowsPlanned(edge_vals, plan.by_dst.perm,
                                    plan.by_dst.offsets, out, s0, s1);
      },
      "scatter_add_planned");

  // Fused gather→scatter (and its weighted twin).
  ExpectRangeKernelBitwise(
      num_nodes, out_init,
      [&](Tensor* out, int s0, int s1) {
        kernels::GatherScatterAcc(h, plan.src_by_dst, plan.by_dst.offsets, out,
                                  s0, s1);
      },
      [&](Tensor* out, int s0, int s1) {
        simd::GatherScatterAcc(h, plan.src_by_dst, plan.by_dst.offsets, out,
                               s0, s1);
      },
      "gather_scatter");
  const Tensor w = RandomTensor(num_edges, 1, 151);
  ExpectRangeKernelBitwise(
      num_nodes, out_init,
      [&](Tensor* out, int s0, int s1) {
        kernels::GatherScatterWeightedAcc(h, w, plan.by_dst.perm,
                                          plan.src_by_dst, plan.by_dst.offsets,
                                          out, s0, s1);
      },
      [&](Tensor* out, int s0, int s1) {
        simd::GatherScatterWeightedAcc(h, w, plan.by_dst.perm, plan.src_by_dst,
                                       plan.by_dst.offsets, out, s0, s1);
      },
      "gather_scatter_weighted");
}

// --- RFF feature map ----------------------------------------------------

TEST(SimdTest, RffMapBitwise) {
  const int rows = 11;
  const int source_cols = 5;
  const int features = 23;  // tail after two vector widths
  const Tensor z = SpecialTensor(rows, source_cols, 157);
  Rng rng(163);
  std::vector<int> source_dim(static_cast<size_t>(features));
  std::vector<float> omega(static_cast<size_t>(features));
  std::vector<float> phase(static_cast<size_t>(features));
  for (int j = 0; j < features; ++j) {
    source_dim[static_cast<size_t>(j)] =
        static_cast<int>(rng.UniformInt(0, source_cols - 1));
    omega[static_cast<size_t>(j)] = static_cast<float>(rng.Normal());
    phase[static_cast<size_t>(j)] = static_cast<float>(rng.Normal());
  }
  const float scale = static_cast<float>(std::sqrt(2.0));
  Tensor out_init(rows, features);
  for (bool linear_only : {false, true}) {
    ExpectRangeKernelBitwise(
        rows, out_init,
        [&](Tensor* out, int r0, int r1) {
          kernels::RffMap(z, source_dim, omega, phase, linear_only, scale, out,
                          r0, r1);
        },
        [&](Tensor* out, int r0, int r1) {
          simd::RffMap(z, source_dim, omega, phase, linear_only, scale, out,
                       r0, r1);
        },
        linear_only ? "rff_map linear" : "rff_map cos");
  }
}

// --- Backend dispatch ---------------------------------------------------

TEST(SimdTest, BackendDispatchBitwiseAcrossThreadsAndToggle) {
  const Tensor a = RandomTensor(37, 29, 167);
  const Tensor b = RandomTensor(29, 43, 173);
  const Tensor bt = RandomTensor(43, 29, 179);
  const Tensor c = RandomTensor(29, 37, 181);
  const auto run = [&]() {
    Tensor out(37, 43);
    GetBackend().MatMulAcc(a, b, &out);
    GetBackend().MatMulTransBAcc(a, bt, &out);
    Tensor ta(37, 43);
    GetBackend().MatMulTransAAcc(c, b, &ta);
    GetBackend().MatMulTransAAcc(c, b, &ta);
    Tensor combined(37 + 37, 43);
    kernels::CopyRowsTo(out, &combined, 0, 0, out.rows());
    kernels::CopyRowsTo(ta, &combined, 37, 0, ta.rows());
    return combined;
  };
  Tensor scalar_serial;
  {
    ScopedBackendThreads threads(1);
    simd::ScopedSimdEnabled off(false);
    scalar_serial = run();
  }
  for (int threads : kThreadCounts) {
    for (bool enabled : {false, true}) {
      ScopedBackendThreads scoped(threads);
      simd::ScopedSimdEnabled toggle(enabled);
      const Tensor got = run();
      EXPECT_TRUE(BitwiseEqual(scalar_serial, got))
          << "backend dispatch diverged at " << threads << " threads, simd "
          << (enabled ? "on" : "off");
    }
  }
}

TEST(SimdTest, BackendQuantRoutingBitwiseAcrossThreadsAndToggle) {
  // Backend::MatMulAcc must route onto the quantized image whenever a
  // scope maps the b operand — identically (bitwise) at every thread
  // count and SIMD toggle, since scalar MatMulQuantAcc is the oracle
  // for its vector mirror.
  const Tensor a = RandomTensor(21, 50, 181);
  const Tensor w = RandomTensor(50, 37, 191);
  const QuantizedTensor qw = QuantizeQ8(w);
  QuantizedWeightMap qmap;
  qmap[w.data()] = &qw;
  const auto run = [&]() {
    ScopedQuantizedWeights scope(&qmap);
    Tensor out(21, 37);
    GetBackend().MatMulAcc(a, w, &out);
    return out;
  };
  Tensor scalar_serial;
  {
    ScopedBackendThreads threads(1);
    simd::ScopedSimdEnabled off(false);
    scalar_serial = run();
  }
  // Routed output is the quantized matmul, not the fp32 one.
  Tensor fp32(21, 37);
  kernels::MatMulAcc(a, w, &fp32, 0, 21);
  EXPECT_FALSE(BitwiseEqual(scalar_serial, fp32));
  Tensor reference(21, 37);
  kernels::MatMulQuantAcc(a, qw, &reference, 0, 21);
  EXPECT_TRUE(BitwiseEqual(scalar_serial, reference));
  for (int threads : kThreadCounts) {
    for (bool enabled : {false, true}) {
      ScopedBackendThreads scoped(threads);
      simd::ScopedSimdEnabled toggle(enabled);
      const Tensor got = run();
      EXPECT_TRUE(BitwiseEqual(scalar_serial, got))
          << "quant routing diverged at " << threads << " threads, simd "
          << (enabled ? "on" : "off");
    }
  }
}

}  // namespace
}  // namespace oodgnn
