#include "src/core/dependence.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/decorrelation.h"
#include "src/util/file.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

Tensor PlantedData(int n, uint64_t seed) {
  // Columns: x, x²−1 (dependent pair), independent noise.
  Rng rng(seed);
  Tensor z(n, 3);
  for (int r = 0; r < n; ++r) {
    const float x = static_cast<float>(rng.Normal(0.0, 1.0));
    z.at(r, 0) = x;
    z.at(r, 1) = x * x - 1.f;
    z.at(r, 2) = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return z;
}

TEST(DependenceMatrixTest, SymmetricZeroDiagonal) {
  Rng rng(1);
  RffConfig config;
  config.num_functions = 2;
  RffFeatureMap rff(3, config, &rng);
  Tensor matrix = PairwiseDependenceMatrix(PlantedData(200, 2), rff);
  ASSERT_EQ(matrix.rows(), 3);
  ASSERT_EQ(matrix.cols(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(matrix.at(i, i), 0.f);
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(matrix.at(i, j), matrix.at(j, i), 1e-6);
      EXPECT_GE(matrix.at(i, j), 0.f);
    }
  }
}

TEST(DependenceMatrixTest, UpperTriangleSumsToDependenceMeasure) {
  Rng rng(3);
  RffConfig config;
  config.num_functions = 2;
  RffFeatureMap rff(3, config, &rng);
  Tensor z = PlantedData(150, 4);
  Tensor matrix = PairwiseDependenceMatrix(z, rff);
  double triangle = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) triangle += matrix.at(i, j);
  }
  EXPECT_NEAR(triangle, DependenceMeasure(z, rff),
              1e-3 * std::max(1.0, triangle));
}

TEST(DependenceMatrixTest, IdentifiesThePlantedPair) {
  Rng rng(5);
  RffConfig config;
  config.num_functions = 4;
  RffFeatureMap rff(3, config, &rng);
  DependenceSummary summary =
      SummarizeDependence(PlantedData(800, 6), rff);
  EXPECT_EQ(summary.max_i, 0);
  EXPECT_EQ(summary.max_j, 1);
  EXPECT_GT(summary.max_pair, 0.5 * summary.total);
}

TEST(FileTest, WriteReadRoundTrip) {
  const std::string path =
      std::string(::testing::TempDir()) + "/file_test.txt";
  const std::string payload("line1\nline2\0binary", 18);
  ASSERT_TRUE(WriteStringToFile(path, payload));
  EXPECT_TRUE(FileExists(path));
  std::string read_back;
  ASSERT_TRUE(ReadFileToString(path, &read_back));
  EXPECT_EQ(read_back, payload);
}

TEST(FileTest, MissingFileFails) {
  std::string content;
  EXPECT_FALSE(ReadFileToString("/no/such/file", &content));
  EXPECT_FALSE(FileExists("/no/such/file"));
  EXPECT_FALSE(WriteStringToFile("/no/such/dir/file", "x"));
}

}  // namespace
}  // namespace oodgnn
