// Failure-injection and boundary-condition tests across modules:
// degenerate graphs, extreme values, contract violations that must
// abort cleanly, and numerical corner cases.

#include <cmath>

#include "gtest/gtest.h"
#include "src/core/rff.h"
#include "src/core/weight_optimizer.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"
#include "src/train/metrics.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

// ---------------------------------------------------------------------------
// Degenerate graphs through the whole model stack.
// ---------------------------------------------------------------------------

TEST(EdgeCaseTest, SingleNodeGraphEncodes) {
  Rng rng(1);
  EncoderConfig config;
  config.feature_dim = 3;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.f;
  for (Method method : AllMethods()) {
    GraphPredictionModel model(method, config, 2, &rng);
    Graph g(1, 3);
    g.x.at(0, 0) = 1.f;
    g.label = 0;
    GraphBatch batch = GraphBatch::FromGraphs({&g});
    Rng fwd(2);
    Variable logits = model.Predict(batch, /*training=*/false, &fwd);
    ASSERT_EQ(logits.rows(), 1);
    for (int i = 0; i < logits.value().size(); ++i) {
      EXPECT_TRUE(std::isfinite(logits.value()[i])) << MethodName(method);
    }
  }
}

TEST(EdgeCaseTest, SelfLoopGraphEncodes) {
  Rng rng(3);
  EncoderConfig config;
  config.feature_dim = 2;
  config.hidden_dim = 4;
  config.num_layers = 2;
  GraphPredictionModel model(Method::kGin, config, 2, &rng);
  Graph g(2, 2);
  g.AddEdge(0, 0);  // Self loop.
  g.AddUndirectedEdge(0, 1);
  g.label = 1;
  GraphBatch batch = GraphBatch::FromGraphs({&g});
  Rng fwd(4);
  Variable logits = model.Predict(batch, false, &fwd);
  EXPECT_TRUE(std::isfinite(logits.value().MaxAbs()));
}

TEST(EdgeCaseTest, MultiEdgesAreSummedNotDeduplicated) {
  // GIN aggregation counts parallel edges — multiset semantics.
  Rng rng(5);
  EncoderConfig config;
  config.feature_dim = 2;
  config.hidden_dim = 4;
  config.num_layers = 1;
  config.dropout = 0.f;
  GraphPredictionModel model(Method::kGin, config, 2, &rng);
  Graph once(2, 2);
  once.x.at(1, 0) = 1.f;
  once.AddEdge(1, 0);
  once.label = 0;
  Graph twice = once;
  twice.AddEdge(1, 0);
  GraphBatch a = GraphBatch::FromGraphs({&once});
  GraphBatch b = GraphBatch::FromGraphs({&twice});
  Rng f1(6);
  Rng f2(6);
  Tensor za = model.Encode(a, false, &f1).value();
  Tensor zb = model.Encode(b, false, &f2).value();
  EXPECT_FALSE(AllClose(za, zb));
}

// ---------------------------------------------------------------------------
// Contract violations must abort with a diagnostic, not corrupt memory.
// ---------------------------------------------------------------------------

TEST(ContractDeathTest, MatMulShapeMismatch) {
  Variable a = Variable::Constant(Tensor(2, 3));
  Variable b = Variable::Constant(Tensor(2, 3));
  EXPECT_DEATH(MatMul(a, b), "MatMul shape mismatch");
}

TEST(ContractDeathTest, BackwardOnNonScalar) {
  Variable a = Variable::Param(Tensor(2, 2));
  EXPECT_DEATH(a.Backward(), "scalar");
}

TEST(ContractDeathTest, GraphEdgeOutOfRange) {
  Graph g(2, 1);
  EXPECT_DEATH(g.AddEdge(0, 5), "bad edge");
}

TEST(ContractDeathTest, LossLabelSizeMismatch) {
  Variable logits = Variable::Constant(Tensor(2, 3));
  EXPECT_DEATH(SoftmaxCrossEntropy(logits, {0}), "CHECK failed");
}

TEST(ContractDeathTest, BceWithEmptyMask) {
  Variable logits = Variable::Constant(Tensor(1, 2));
  Tensor targets(1, 2);
  Tensor mask(1, 2);  // All labels masked out.
  EXPECT_DEATH(BceWithLogits(logits, targets, mask), "no labels");
}

// ---------------------------------------------------------------------------
// Numerical corner cases.
// ---------------------------------------------------------------------------

TEST(EdgeCaseTest, SoftmaxCrossEntropyWithHugeLogits) {
  Variable logits =
      Variable::Param(Tensor::FromData(1, 3, {1000.f, -1000.f, 0.f}));
  Variable loss = SoftmaxCrossEntropy(logits, {0});
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  EXPECT_NEAR(loss.value()[0], 0.f, 1e-4);
  loss.Backward();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(logits.grad()[i]));
  }
}

TEST(EdgeCaseTest, WeightOptimizerOnConstantRepresentations) {
  // All-identical representations: zero dependence, nothing to move.
  Rng rng(7);
  RffConfig config;
  RffFeatureMap rff(4, config, &rng);
  Tensor z(16, 4, 0.5f);
  WeightOptimizerConfig weight_config;
  weight_config.epochs_reweight = 5;
  GraphWeightOptimizer optimizer(weight_config);
  WeightOptimizerResult result = optimizer.Optimize(z, rff, nullptr);
  for (float w : result.weights) {
    EXPECT_TRUE(std::isfinite(w));
    EXPECT_GE(w, 0.f);
  }
  EXPECT_NEAR(result.final_loss, 0.0, 1e-6);
}

TEST(EdgeCaseTest, RocAucWithAllTiedScores) {
  EXPECT_DOUBLE_EQ(BinaryRocAuc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(EdgeCaseTest, AccuracyWithSingleRow) {
  Tensor logits = Tensor::FromData(1, 2, {0.2f, 0.7f});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {1}), 1.0);
}

TEST(EdgeCaseTest, RffWithSingleDimension) {
  Rng rng(8);
  RffConfig config;
  config.num_functions = 3;
  RffFeatureMap rff(1, config, &rng);
  EXPECT_EQ(rff.num_features(), 3);
  Tensor z(10, 1, 0.3f);
  Tensor f = rff.Transform(z);
  EXPECT_EQ(f.cols(), 3);
}

TEST(EdgeCaseTest, DropoutFullGraphStillFlowsGradient) {
  // Even with aggressive dropout the graph stays differentiable.
  Rng rng(9);
  Variable x = Variable::Param(Tensor(4, 4, 1.f));
  Variable out = Dropout(x, 0.9f, &rng, /*training=*/true);
  Sum(Square(out)).Backward();
  for (int i = 0; i < x.grad().size(); ++i) {
    EXPECT_TRUE(std::isfinite(x.grad()[i]));
  }
}

TEST(EdgeCaseTest, BatchOfManyIdenticalGraphs) {
  Graph g(3, 2);
  g.AddUndirectedEdge(0, 1);
  g.label = 1;
  std::vector<const Graph*> graphs(50, &g);
  GraphBatch batch = GraphBatch::FromGraphs(graphs);
  EXPECT_EQ(batch.num_graphs, 50);
  EXPECT_EQ(batch.num_nodes, 150);
  EXPECT_EQ(batch.edge_src.size(), 100u);
  // Last graph's edges offset correctly.
  EXPECT_EQ(batch.edge_src.back(), 148);
}

}  // namespace
}  // namespace oodgnn
