// Request-scoped serving telemetry: span collection, SLO evaluation,
// exporters, and their integration with the inference engine.
//
// The load-bearing guarantees pinned here:
//   * totals reconcile — every submitted request shows up exactly once
//     in each per-phase histogram and in the request counter, even
//     under many concurrent submitters;
//   * the queue-depth gauge returns to zero once the engine drains;
//   * telemetry on vs off is bitwise invisible to engine outputs;
//   * the compiled path's zero-allocation guarantee holds with
//     telemetry on.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/obs/exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/serve/inference.h"
#include "src/util/file.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace oodgnn {
namespace {

using serve::InferenceEngine;
using serve::InferenceOptions;
using serve::InferenceStats;
using serve::ModelSpec;
using test::TempPath;

GraphDataset TinyDataset() {
  TrianglesConfig config;
  config.num_train = 24;
  config.num_valid = 8;
  config.num_test = 8;
  config.train_max_nodes = 12;
  config.test_max_nodes = 20;
  return MakeTrianglesDataset(config, 77);
}

EncoderConfig TinyEncoder(int feature_dim) {
  EncoderConfig config;
  config.feature_dim = feature_dim;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.5f;
  return config;
}

ModelSpec TinySpec(const GraphDataset& dataset) {
  ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  return spec;
}

Tensor ReferenceLogits(GraphPredictionModel* model,
                       const std::vector<const Graph*>& graphs) {
  GraphBatch batch = GraphBatch::FromGraphs(graphs);
  Rng rng(999);
  return model->Predict(batch, /*training=*/false, &rng).value();
}

bool RowsBitwiseEqual(const Tensor& row, const Tensor& all, int r) {
  return row.cols() == all.cols() &&
         std::memcmp(row.data(),
                     all.data() + static_cast<size_t>(r) * all.cols(),
                     static_cast<size_t>(all.cols()) * sizeof(float)) == 0;
}

std::int64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                          const std::string& name) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return v;
  }
  return -1;
}

double GaugeValue(const obs::MetricsSnapshot& snapshot,
                  const std::string& name) {
  for (const auto& [n, v] : snapshot.gauges) {
    if (n == name) return v;
  }
  return -1.0;
}

std::int64_t HistogramCount(const obs::MetricsSnapshot& snapshot,
                            const std::string& name) {
  for (const auto& [n, s] : snapshot.histograms) {
    if (n == name) return s.count;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// RequestSpan / SpanCollector units.
// ---------------------------------------------------------------------------

TEST(RequestSpanTest, DerivedDurations) {
  obs::RequestSpan span;
  span.enqueue_us = 100;
  span.admit_us = 150;
  span.execute_us = 240;
  span.done_us = 400;
  EXPECT_EQ(span.queue_wait_us(), 50);
  EXPECT_EQ(span.batch_build_us(), 90);
  EXPECT_EQ(span.execute_dur_us(), 160);
  EXPECT_EQ(span.e2e_us(), 300);
  // Phases partition the end-to-end interval exactly.
  EXPECT_EQ(span.queue_wait_us() + span.batch_build_us() +
                span.execute_dur_us(),
            span.e2e_us());
}

TEST(SpanCollectorTest, RecordsIntoRegistry) {
  obs::MetricsRegistry registry;
  obs::SpanCollector collector(&registry);

  EXPECT_EQ(collector.NextRequestId(), 1);
  EXPECT_EQ(collector.NextRequestId(), 2);

  collector.RecordEnqueue(3);
  EXPECT_EQ(collector.queue_depth(), 3.0);
  collector.RecordQueueDepth(0);
  EXPECT_EQ(collector.queue_depth(), 0.0);

  collector.RecordBatchBegin();
  EXPECT_EQ(collector.inflight_batches(), 1.0);
  collector.RecordBatchEnd(/*graphs=*/4, /*nodes=*/40);
  EXPECT_EQ(collector.inflight_batches(), 0.0);

  obs::RequestSpan span;
  span.enqueue_us = 100;
  span.admit_us = 150;
  span.execute_us = 240;
  span.done_us = 400;
  collector.RecordSpan(span);

  const obs::MetricsSnapshot snapshot = registry.GetSnapshot();
  EXPECT_EQ(CounterValue(snapshot, "serve/requests/total"), 1);
  EXPECT_EQ(CounterValue(snapshot, "serve/batches/total"), 1);
  EXPECT_EQ(CounterValue(snapshot, "serve/graphs/total"), 4);
  EXPECT_EQ(HistogramCount(snapshot, "serve/queue_wait/us"), 1);
  EXPECT_EQ(HistogramCount(snapshot, "serve/batch_build/us"), 1);
  EXPECT_EQ(HistogramCount(snapshot, "serve/execute/us"), 1);
  EXPECT_EQ(HistogramCount(snapshot, "serve/e2e/us"), 1);
  EXPECT_EQ(HistogramCount(snapshot, "serve/batch/graphs"), 1);
  EXPECT_EQ(HistogramCount(snapshot, "serve/batch/nodes"), 1);
  EXPECT_EQ(collector.e2e().GetSummary().sum, 300.0);
}

TEST(SpanCollectorTest, CollectorsSharingARegistryShareHandles) {
  obs::MetricsRegistry registry;
  obs::SpanCollector first(&registry);
  const size_t registered = registry.size();
  obs::SpanCollector second(&registry);
  EXPECT_EQ(registry.size(), registered);  // Lookup, not re-registration.
  first.RecordEnqueue(1);
  second.RecordEnqueue(2);
  EXPECT_EQ(CounterValue(registry.GetSnapshot(), "serve/requests/total"), 2);
}

// ---------------------------------------------------------------------------
// SLO tracker units.
// ---------------------------------------------------------------------------

TEST(SloTrackerTest, BreachesWhenBurnRateExceedsOne) {
  obs::SloSpec spec;
  spec.name = "test_p90";
  spec.quantile = 0.9;  // Error budget: 10% of the window.
  spec.threshold_us = 100;
  spec.window = 10;
  obs::MetricsRegistry registry;
  obs::SloTracker tracker(spec, &registry);

  // 2 of 10 over threshold: violating share 0.2, burn rate 2.0.
  bool breached = false;
  for (int i = 0; i < 10; ++i) {
    breached = tracker.Observe(i < 2 ? 200.0 : 50.0);
  }
  EXPECT_TRUE(breached);  // The window-closing observation reports it.
  const obs::SloStatus status = tracker.status();
  EXPECT_EQ(status.observed, 10);
  EXPECT_EQ(status.violations, 2);
  EXPECT_EQ(status.windows, 1);
  EXPECT_EQ(status.breached_windows, 1);
  EXPECT_DOUBLE_EQ(status.burn_rate, 2.0);

  const obs::MetricsSnapshot snapshot = registry.GetSnapshot();
  EXPECT_DOUBLE_EQ(GaugeValue(snapshot, "slo/test_p90/burn_rate"), 2.0);
  EXPECT_DOUBLE_EQ(GaugeValue(snapshot, "slo/test_p90/threshold_us"), 100.0);
  EXPECT_EQ(CounterValue(snapshot, "slo/test_p90/violations"), 2);
  EXPECT_EQ(CounterValue(snapshot, "slo/test_p90/breached_windows"), 1);
}

TEST(SloTrackerTest, HealthyWindowDoesNotBreach) {
  obs::SloSpec spec;
  spec.name = "healthy";
  spec.quantile = 0.9;
  spec.threshold_us = 100;
  spec.window = 10;
  obs::SloTracker tracker(spec, /*registry=*/nullptr);
  for (int i = 0; i < 25; ++i) {
    EXPECT_FALSE(tracker.Observe(50.0));
  }
  const obs::SloStatus status = tracker.status();
  EXPECT_EQ(status.observed, 25);
  EXPECT_EQ(status.violations, 0);
  EXPECT_EQ(status.windows, 2);  // Two complete windows, five left over.
  EXPECT_EQ(status.breached_windows, 0);
  EXPECT_DOUBLE_EQ(status.burn_rate, 0.0);
}

TEST(SloTrackerTest, ErrorsConsumeBudgetRegardlessOfLatency) {
  obs::SloSpec spec;
  spec.name = "errors";
  spec.quantile = 0.5;  // Budget: half the window.
  spec.threshold_us = 1e9;
  spec.window = 4;
  obs::SloTracker tracker(spec, /*registry=*/nullptr);
  bool breached = false;
  for (int i = 0; i < 4; ++i) {
    breached = tracker.Observe(1.0, /*error=*/true);
  }
  EXPECT_TRUE(breached);  // 100% errors vs a 50% budget.
  EXPECT_EQ(tracker.status().violations, 4);
}

TEST(SloTrackerTest, SlidingBurnRateUpdatesBetweenWindowBoundaries) {
  obs::SloSpec spec;
  spec.name = "sliding";
  spec.quantile = 0.5;
  spec.threshold_us = 100;
  spec.window = 4;
  obs::SloTracker tracker(spec, /*registry=*/nullptr);
  for (int i = 0; i < 4; ++i) tracker.Observe(50.0);  // Healthy window.
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 0.0);
  tracker.Observe(200.0);  // Mid-window violation slides the rate up.
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 0.5);
  // But no new complete window has been counted yet.
  EXPECT_EQ(tracker.status().windows, 1);
}

// ---------------------------------------------------------------------------
// Snapshot quantiles and exporters.
// ---------------------------------------------------------------------------

TEST(SnapshotQuantilesTest, SummariesCarryApproximateQuantiles) {
  obs::StreamingHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Observe(100.0);
  histogram.Observe(100000.0);
  const obs::StreamingHistogram::Summary summary = histogram.GetSummary();
  // Power-of-two buckets: exact within a factor of 2 (upper edge).
  EXPECT_GE(summary.p50, 100.0);
  EXPECT_LE(summary.p50, 200.0);
  EXPECT_GE(summary.p99, 100.0);
  EXPECT_LE(summary.p99, 200.0);
  EXPECT_LE(summary.p50, summary.p95);
  EXPECT_LE(summary.p95, summary.p99);
}

TEST(ExporterTest, PrometheusTextExposition) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve/requests/total").Add(5);
  registry.GetGauge("serve/queue/depth").Set(2.0);
  for (int i = 0; i < 8; ++i) {
    registry.GetHistogram("serve/e2e/us").Observe(100.0);
  }
  const std::string text = obs::ToPrometheusText(registry.GetSnapshot());

  EXPECT_NE(text.find("# TYPE oodgnn_serve_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("oodgnn_serve_requests_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE oodgnn_serve_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("oodgnn_serve_queue_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE oodgnn_serve_e2e_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("oodgnn_serve_e2e_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("oodgnn_serve_e2e_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("oodgnn_serve_e2e_us_sum 800\n"), std::string::npos);
  EXPECT_NE(text.find("oodgnn_serve_e2e_us_count 8\n"), std::string::npos);
}

TEST(ExporterTest, WriteMetricsJsonDumpsSnapshot) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve/requests/total").Add(3);
  registry.GetHistogram("serve/e2e/us").Observe(42.0);
  const std::string path = TempPath("metrics_dump.json");
  ASSERT_TRUE(obs::WriteMetricsJson(path, registry));
  std::string content;
  ASSERT_TRUE(ReadFileToString(path, &content));
  EXPECT_NE(content.find("\"ts_us\""), std::string::npos);
  EXPECT_NE(content.find("\"serve/requests/total\":3"), std::string::npos);
  EXPECT_NE(content.find("\"p50\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ExporterTest, BackgroundExporterWritesBothFormatsAndFlushesOnStop) {
  obs::MetricsRegistry registry;
  registry.GetCounter("serve/requests/total").Add(7);
  const std::string prefix = TempPath("exporter");
  std::remove((prefix + ".prom").c_str());
  std::remove((prefix + ".jsonl").c_str());
  {
    obs::ExporterOptions options;
    options.output_prefix = prefix;
    options.interval_ms = 5;
    options.registry = &registry;
    obs::MetricsExporter exporter(options);
    exporter.ExportNow();
    EXPECT_GE(exporter.exports(), 1);
  }  // Destructor stops the thread and flushes a final export.

  std::string prom;
  ASSERT_TRUE(ReadFileToString(prefix + ".prom", &prom));
  EXPECT_NE(prom.find("oodgnn_serve_requests_total 7\n"), std::string::npos);

  std::string jsonl;
  ASSERT_TRUE(ReadFileToString(prefix + ".jsonl", &jsonl));
  EXPECT_NE(jsonl.find("\"serve/requests/total\":7"), std::string::npos);
  // Append-only stream: at least the explicit export plus the final
  // flush, each one JSON object per line.
  EXPECT_GE(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  std::remove((prefix + ".prom").c_str());
  std::remove((prefix + ".jsonl").c_str());
}

// ---------------------------------------------------------------------------
// Engine integration.
// ---------------------------------------------------------------------------

TEST(EngineTelemetryTest, TotalsReconcileUnderConcurrentSubmitters) {
  GraphDataset dataset = TinyDataset();
  const ModelSpec spec = TinySpec(dataset);
  std::vector<const Graph*> graphs;
  for (const Graph& graph : dataset.graphs) graphs.push_back(&graph);

  obs::MetricsRegistry registry;
  std::int64_t expected_batches = 0;
  {
    InferenceOptions options;
    options.num_workers = 2;
    options.max_batch_graphs = 4;
    options.max_batch_wait_us = 100;
    options.telemetry_registry = &registry;
    InferenceEngine engine(spec, options);

    const int kSubmitters = 4;
    std::vector<std::vector<std::future<Tensor>>> shards(kSubmitters);
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&, s] {
        for (size_t i = static_cast<size_t>(s); i < graphs.size();
             i += kSubmitters) {
          shards[static_cast<size_t>(s)].push_back(engine.Submit(*graphs[i]));
        }
      });
    }
    for (std::thread& t : submitters) t.join();
    for (auto& shard : shards) {
      for (auto& future : shard) (void)future.get();
    }
    const InferenceStats stats = engine.stats();
    EXPECT_EQ(stats.requests, static_cast<std::int64_t>(graphs.size()));
    // RecordSpan runs before each promise resolves, so the per-phase
    // histograms already account for every request we waited on.
    EXPECT_EQ(stats.e2e_us.count, static_cast<std::int64_t>(graphs.size()));
    EXPECT_EQ(stats.queue_wait_us.count,
              static_cast<std::int64_t>(graphs.size()));
    EXPECT_EQ(stats.execute_us.count,
              static_cast<std::int64_t>(graphs.size()));
    expected_batches = stats.batches;
    EXPECT_GT(expected_batches, 0);
  }  // Engine destruction joins the workers: batch-level records quiesce.

  const obs::MetricsSnapshot snapshot = registry.GetSnapshot();
  const std::int64_t n = static_cast<std::int64_t>(graphs.size());
  EXPECT_EQ(CounterValue(snapshot, "serve/requests/total"), n);
  EXPECT_EQ(CounterValue(snapshot, "serve/graphs/total"), n);
  EXPECT_EQ(HistogramCount(snapshot, "serve/queue_wait/us"), n);
  EXPECT_EQ(HistogramCount(snapshot, "serve/batch_build/us"), n);
  EXPECT_EQ(HistogramCount(snapshot, "serve/execute/us"), n);
  EXPECT_EQ(HistogramCount(snapshot, "serve/e2e/us"), n);
  EXPECT_EQ(CounterValue(snapshot, "serve/batches/total"), expected_batches);
  EXPECT_EQ(HistogramCount(snapshot, "serve/batch/graphs"),
            expected_batches);
  EXPECT_EQ(HistogramCount(snapshot, "serve/batch/nodes"), expected_batches);
  // Drained: nothing queued, nothing executing.
  EXPECT_EQ(GaugeValue(snapshot, "serve/queue/depth"), 0.0);
  EXPECT_EQ(GaugeValue(snapshot, "serve/inflight/batches"), 0.0);
}

TEST(EngineTelemetryTest, SubmitWithSpanCapturesOrderedTimestamps) {
  GraphDataset dataset = TinyDataset();
  const ModelSpec spec = TinySpec(dataset);
  obs::MetricsRegistry registry;
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 1;
  options.max_batch_wait_us = 0;
  options.telemetry_registry = &registry;
  InferenceEngine engine(spec, options);

  const Graph& graph = dataset.graphs[dataset.test_idx[0]];
  obs::RequestSpan first;
  obs::RequestSpan second;
  (void)engine.Submit(graph, &first).get();
  (void)engine.Submit(graph, &second).get();

  for (const obs::RequestSpan& span : {first, second}) {
    EXPECT_GT(span.enqueue_us, 0);
    EXPECT_LE(span.enqueue_us, span.admit_us);
    EXPECT_LE(span.admit_us, span.execute_us);
    EXPECT_LE(span.execute_us, span.done_us);
    EXPECT_GE(span.queue_wait_us(), 0);
    EXPECT_GE(span.batch_build_us(), 0);
    EXPECT_GE(span.execute_dur_us(), 0);
    EXPECT_EQ(span.queue_wait_us() + span.batch_build_us() +
                  span.execute_dur_us(),
              span.e2e_us());
  }
  EXPECT_EQ(first.request_id, 1);
  EXPECT_EQ(second.request_id, 2);
}

TEST(EngineTelemetryTest, TelemetryOnAndOffAreBitwiseIdentical) {
  GraphDataset dataset = TinyDataset();
  const ModelSpec spec = TinySpec(dataset);
  Rng rng(8);
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim,
                             &rng);
  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.test_idx) graphs.push_back(&dataset.graphs[idx]);
  const Tensor reference = ReferenceLogits(&model, graphs);

  for (const bool telemetry : {true, false}) {
    obs::MetricsRegistry registry;
    InferenceOptions options;
    options.num_workers = 2;
    options.max_batch_graphs = 3;
    options.max_batch_wait_us = 50;
    options.telemetry = telemetry;
    options.telemetry_registry = &registry;
    InferenceEngine engine(spec, options);
    engine.SyncFrom(model);

    std::vector<std::future<Tensor>> futures;
    for (const Graph* graph : graphs) futures.push_back(engine.Submit(*graph));
    for (size_t i = 0; i < futures.size(); ++i) {
      const Tensor row = futures[i].get();
      EXPECT_TRUE(RowsBitwiseEqual(row, reference, static_cast<int>(i)))
          << "graph " << i << " with telemetry "
          << (telemetry ? "on" : "off");
    }

    const InferenceStats stats = engine.stats();
    if (telemetry) {
      EXPECT_EQ(stats.e2e_us.count,
                static_cast<std::int64_t>(graphs.size()));
      EXPECT_EQ(stats.slos.size(), 1u);  // The default e2e_p99 objective.
    } else {
      // Telemetry off: no spans recorded, no SLOs tracked, and the
      // private registry never touched.
      EXPECT_EQ(stats.e2e_us.count, 0);
      EXPECT_TRUE(stats.slos.empty());
      EXPECT_EQ(registry.size(), 0u);
    }
  }
}

TEST(EngineTelemetryTest, SloBreachSurfacesInStats) {
  GraphDataset dataset = TinyDataset();
  const ModelSpec spec = TinySpec(dataset);
  obs::MetricsRegistry registry;
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 1;
  options.max_batch_wait_us = 0;
  options.telemetry_registry = &registry;
  obs::SloSpec impossible;
  impossible.name = "impossible_p99";
  impossible.threshold_us = 0;  // Any finished request violates.
  impossible.window = 4;
  options.slos = {impossible};
  InferenceEngine engine(spec, options);

  const Graph& graph = dataset.graphs[dataset.test_idx[0]];
  for (int i = 0; i < 8; ++i) (void)engine.Predict(graph);

  const InferenceStats stats = engine.stats();
  ASSERT_EQ(stats.slos.size(), 1u);
  EXPECT_EQ(stats.slos[0].name, "impossible_p99");
  EXPECT_EQ(stats.slos[0].status.observed, 8);
  EXPECT_EQ(stats.slos[0].status.violations, 8);
  EXPECT_EQ(stats.slos[0].status.windows, 2);
  EXPECT_EQ(stats.slos[0].status.breached_windows, 2);
  EXPECT_GT(stats.slos[0].status.burn_rate, 1.0);
  EXPECT_EQ(CounterValue(registry.GetSnapshot(),
                         "slo/impossible_p99/breached_windows"),
            2);
}

TEST(EngineTelemetryTest, CompiledSteadyStateStaysZeroAllocWithTelemetryOn) {
  GraphDataset dataset = TinyDataset();
  const ModelSpec spec = TinySpec(dataset);
  obs::MetricsRegistry registry;
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 1;
  options.max_batch_wait_us = 0;
  options.compiled = true;
  options.telemetry_registry = &registry;
  InferenceEngine engine(spec, options);

  std::int64_t expected = 0;
  for (int round = 0; round < 3; ++round) {
    for (size_t idx : dataset.test_idx) {
      (void)engine.Predict(dataset.graphs[idx]);
      ++expected;
    }
  }
  const InferenceStats stats = engine.stats();
  EXPECT_EQ(stats.planned_batches, expected);
  EXPECT_EQ(stats.eager_batches, 0);
  EXPECT_EQ(stats.diverged_batches, 0);
  // The tentpole guarantee: always-on span/SLO recording adds zero
  // tensor-heap traffic inside replay scopes.
  EXPECT_EQ(stats.fallback_heap_allocs, 0);
  EXPECT_EQ(stats.e2e_us.count, expected);
  const obs::MetricsSnapshot snapshot = registry.GetSnapshot();
  EXPECT_EQ(CounterValue(snapshot, "serve/plan/fallback_allocs"), 0);
  EXPECT_GT(GaugeValue(snapshot, "serve/plan/arena_bytes"), 0.0);
  EXPECT_GE(CounterValue(snapshot, "serve/plan/recompiles"), 1);
}

// ---------------------------------------------------------------------------
// SLO burn-rate window property tests: the tracker's incremental
// sliding-window arithmetic against a naive reference model, driven by
// randomized event streams off a FakeClock — including window-boundary
// events, forward clock jumps, backward clock jumps, and ring-capacity
// eviction.

/// Naive O(window) reference for time-mode burn rates: a deque of
/// (clamped time, violation) pairs, evicting strictly-older-than-window
/// entries and then the oldest entry when at capacity — the exact
/// contract SloTracker implements incrementally.
class NaiveTimeWindow {
 public:
  NaiveTimeWindow(std::int64_t window_us, size_t capacity, double quantile)
      : window_us_(window_us), capacity_(capacity), quantile_(quantile) {}

  double Observe(std::int64_t raw_now_us, bool violation) {
    const std::int64_t now = std::max(raw_now_us, last_now_us_);
    last_now_us_ = now;
    while (!events_.empty() && events_.front().first <= now - window_us_) {
      events_.pop_front();
    }
    if (events_.size() == capacity_) events_.pop_front();
    events_.emplace_back(now, violation);
    std::int64_t violations = 0;
    for (const auto& event : events_) violations += event.second ? 1 : 0;
    return (static_cast<double>(violations) /
            static_cast<double>(events_.size())) /
           (1.0 - quantile_);
  }

  size_t size() const { return events_.size(); }

 private:
  const std::int64_t window_us_;
  const size_t capacity_;
  const double quantile_;
  std::deque<std::pair<std::int64_t, bool>> events_;
  std::int64_t last_now_us_ = 0;
};

TEST(SloPropertyTest, TimeWindowMatchesNaiveReferenceUnderRandomStreams) {
  for (const uint64_t seed : {11u, 29u, 4242u, 90210u}) {
    Rng rng(seed);
    test::FakeClock clock(1000000);
    obs::SloSpec spec;
    spec.name = "prop_time";
    spec.quantile = 0.9;
    spec.threshold_us = 1000.0;
    spec.window_us = 10000;
    spec.max_window_events = 64;
    obs::SloTracker tracker(spec, /*registry=*/nullptr, &clock);
    NaiveTimeWindow reference(spec.window_us,
                              static_cast<size_t>(spec.max_window_events),
                              spec.quantile);
    std::int64_t naive_violations = 0;
    for (int step = 0; step < 2000; ++step) {
      // Mostly small forward steps; occasionally a jump far past the
      // window, occasionally a backward jump (which both sides clamp).
      if (rng.Bernoulli(0.02)) {
        clock.Advance(rng.UniformInt(1, 20) * spec.window_us);
      } else if (rng.Bernoulli(0.05)) {
        clock.Set(clock.NowMicros() - rng.UniformInt(1, 5000));
      } else {
        clock.Advance(rng.UniformInt(0, spec.window_us / 4));
      }
      const bool violation = rng.Bernoulli(0.25);
      const double latency = violation ? 2000.0 : 100.0;
      tracker.Observe(latency);
      naive_violations += violation ? 1 : 0;
      const double expected = reference.Observe(clock.NowMicros(), violation);
      const obs::SloStatus status = tracker.status();
      ASSERT_NEAR(status.burn_rate, expected, 1e-12)
          << "seed " << seed << " step " << step;
      ASSERT_EQ(status.violations, naive_violations);
      ASSERT_EQ(status.observed, step + 1);
    }
  }
}

TEST(SloPropertyTest, WindowBoundaryEvictsExactlyAtHorizon) {
  test::FakeClock clock(0);
  obs::SloSpec spec;
  spec.name = "prop_boundary";
  spec.quantile = 0.5;  // Error budget 0.5: burn = 2 * violating share.
  spec.threshold_us = 1000.0;
  spec.window_us = 1000;
  obs::SloTracker tracker(spec, /*registry=*/nullptr, &clock);

  clock.Set(1000);
  tracker.Observe(5000.0);  // Violation at t=1000.
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 2.0);
  // t=1999: the violation (t=1000 > 1999-1000) is still in-window.
  clock.Set(1999);
  tracker.Observe(100.0);
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 1.0);  // 1/2 over budget 0.5
  // t=2999: horizon is 1999 — both earlier events sit exactly at or
  // before it (t <= now - window_us) and must be gone.
  clock.Set(2999);
  tracker.Observe(100.0);
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 0.0);
}

TEST(SloPropertyTest, ForwardClockJumpCompletesAtMostOneWindow) {
  test::FakeClock clock(1000000);
  obs::SloSpec spec;
  spec.name = "prop_jump";
  spec.quantile = 0.5;
  spec.threshold_us = 1000.0;
  spec.window_us = 1000;
  obs::SloTracker tracker(spec, /*registry=*/nullptr, &clock);

  tracker.Observe(5000.0);  // Anchors the first window.
  EXPECT_EQ(tracker.status().windows, 0);
  // An idle stretch of 100 windows then one observation: windows are
  // counted per evaluation, not per elapsed interval.
  clock.Advance(100 * spec.window_us);
  tracker.Observe(5000.0);
  EXPECT_EQ(tracker.status().windows, 1);
  EXPECT_EQ(tracker.status().breached_windows, 1);  // Lone violation breaches.
  // The next window needs a full window_us past the new anchor again.
  clock.Advance(spec.window_us - 1);
  tracker.Observe(100.0);
  EXPECT_EQ(tracker.status().windows, 1);
  clock.Advance(1);
  tracker.Observe(100.0);
  EXPECT_EQ(tracker.status().windows, 2);
}

TEST(SloPropertyTest, BackwardClockJumpClampsToLastSeenTime) {
  test::FakeClock clock(1000000);
  obs::SloSpec spec;
  spec.name = "prop_backward";
  spec.quantile = 0.5;
  spec.threshold_us = 1000.0;
  spec.window_us = 1000;
  obs::SloTracker tracker(spec, /*registry=*/nullptr, &clock);

  tracker.Observe(5000.0);
  clock.Set(0);  // Hard backward jump.
  tracker.Observe(100.0);  // Clamped to t=1000000: joins the window.
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 1.0);  // 1/2 over budget 0.5
  // Time resumes past the clamp: both clamped events expire together.
  clock.Set(1000000 + spec.window_us + 1);
  tracker.Observe(100.0);
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 0.0);
}

TEST(SloPropertyTest, CapacityEvictionDegradesToWindowSuffix) {
  test::FakeClock clock(1000000);
  obs::SloSpec spec;
  spec.name = "prop_capacity";
  spec.quantile = 0.5;
  spec.threshold_us = 1000.0;
  spec.window_us = 1000000;  // Nothing ages out by time in this test.
  spec.max_window_events = 4;
  obs::SloTracker tracker(spec, /*registry=*/nullptr, &clock);

  // Two violations then four successes, all within the time window:
  // the 4-slot ring holds only the last 4 events, so the violations
  // fall off the back even though their time hasn't expired.
  tracker.Observe(5000.0);
  tracker.Observe(5000.0);
  for (int i = 0; i < 2; ++i) {
    clock.Advance(10);
    tracker.Observe(100.0);
  }
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 1.0);  // 2/4 over budget 0.5
  clock.Advance(10);
  tracker.Observe(100.0);
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 0.5);  // 1/4
  clock.Advance(10);
  tracker.Observe(100.0);
  EXPECT_DOUBLE_EQ(tracker.status().burn_rate, 0.0);  // 0/4
}

TEST(SloPropertyTest, CountModeMatchesNaiveRingUnderRandomStreams) {
  // The pre-existing count-window path, pinned the same way: burn rate
  // equals the violating share of the last `window` observations once
  // the ring has filled.
  for (const uint64_t seed : {7u, 1234u}) {
    Rng rng(seed);
    obs::SloSpec spec;
    spec.name = "prop_count";
    spec.quantile = 0.8;
    spec.threshold_us = 1000.0;
    spec.window = 16;
    obs::SloTracker tracker(spec, /*registry=*/nullptr);
    std::deque<bool> ring;
    for (int step = 0; step < 500; ++step) {
      const bool violation = rng.Bernoulli(0.3);
      tracker.Observe(violation ? 2000.0 : 100.0);
      ring.push_back(violation);
      if (ring.size() > static_cast<size_t>(spec.window)) ring.pop_front();
      if (ring.size() == static_cast<size_t>(spec.window)) {
        std::int64_t violations = 0;
        for (const bool v : ring) violations += v ? 1 : 0;
        const double expected =
            (static_cast<double>(violations) / spec.window) /
            (1.0 - spec.quantile);
        ASSERT_NEAR(tracker.status().burn_rate, expected, 1e-12)
            << "seed " << seed << " step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace oodgnn
