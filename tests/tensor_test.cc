#include "src/tensor/tensor.h"

#include "gtest/gtest.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (int i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t(2, 2, 3.5f);
  for (int i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 3.5f);
}

TEST(TensorTest, FromDataRowMajorLayout) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.f);
  EXPECT_FLOAT_EQ(t.at(0, 2), 3.f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 6.f);
}

TEST(TensorTest, RowAndColVectors) {
  Tensor row = Tensor::RowVector({1, 2, 3});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 3);
  Tensor col = Tensor::ColVector({1, 2, 3});
  EXPECT_EQ(col.rows(), 3);
  EXPECT_EQ(col.cols(), 1);
}

TEST(TensorTest, Identity) {
  Tensor eye = Tensor::Identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(eye.at(r, c), r == c ? 1.f : 0.f);
    }
  }
}

TEST(TensorTest, AddAndScale) {
  Tensor a = Tensor::FromData(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromData(1, 3, {10, 20, 30});
  a.Add(b);
  a.Scale(2.f);
  EXPECT_FLOAT_EQ(a[0], 22.f);
  EXPECT_FLOAT_EQ(a[2], 66.f);
}

TEST(TensorTest, SumAndMaxAbs) {
  Tensor t = Tensor::FromData(2, 2, {-5, 1, 2, 3});
  EXPECT_FLOAT_EQ(t.Sum(), 1.f);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 5.f);
}

TEST(TensorTest, Transposed) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.Transposed();
  EXPECT_EQ(tt.rows(), 3);
  EXPECT_EQ(tt.cols(), 2);
  EXPECT_FLOAT_EQ(tt.at(2, 1), 6.f);
  EXPECT_FLOAT_EQ(tt.at(0, 1), 4.f);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped(3, 2);
  EXPECT_FLOAT_EQ(r.at(0, 1), 2.f);
  EXPECT_FLOAT_EQ(r.at(2, 0), 5.f);
}

TEST(TensorTest, RandomNormalMoments) {
  Rng rng(11);
  Tensor t = Tensor::RandomNormal(100, 100, &rng, 1.f, 0.5f);
  double mean = 0.0;
  for (int i = 0; i < t.size(); ++i) mean += t[i];
  mean /= t.size();
  EXPECT_NEAR(mean, 1.0, 0.02);
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(12);
  Tensor t = Tensor::RandomUniform(50, 50, &rng, -2.f, 2.f);
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -2.f);
    EXPECT_LT(t[i], 2.f);
  }
}

TEST(TensorTest, AllClose) {
  Tensor a = Tensor::FromData(1, 2, {1.f, 2.f});
  Tensor b = Tensor::FromData(1, 2, {1.f + 1e-7f, 2.f});
  Tensor c = Tensor::FromData(1, 2, {1.1f, 2.f});
  Tensor d = Tensor::FromData(2, 1, {1.f, 2.f});
  EXPECT_TRUE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_FALSE(AllClose(a, d));  // Shape mismatch.
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 0.f);
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor t(2, 3);
  EXPECT_NE(t.ToString().find("2x3"), std::string::npos);
}

}  // namespace
}  // namespace oodgnn
