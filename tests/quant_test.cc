// Q8_0 weight quantization tests (DESIGN.md §16): round-trip error
// properties of the block quantizer, analytic error bounds for the
// quantized matmul, the OODQ serialized snapshot format (round-trip +
// corruption rejection), the --quantize/OODGNN_QUANTIZE flag plumbing,
// and the engine-level parity gate — every model method served with
// QuantizeMode::kOn must reproduce its fp32 logits within the
// tolerance committed here. Quantized serving is approximate BY
// DESIGN (the one deliberate exception to the repo's bitwise
// determinism contract), so this file is where the approximation is
// pinned: if quantization error regresses, these bounds fail.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/serialize.h"
#include "src/obs/metrics.h"
#include "src/serve/inference.h"
#include "src/tensor/kernels.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"
#include "src/util/flags.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace oodgnn {
namespace {

using serve::InferenceEngine;
using serve::InferenceOptions;
using serve::ModelSpec;
using serve::QuantizeMode;
using test::TempPath;

/// Engine-level tolerance for quantized serving: max absolute logit
/// deviation from the fp32 engine, per graph, for every method. This
/// is the committed accuracy contract of --quantize.
constexpr float kQuantLogitTolerance = 0.25f;

Tensor RandomTensor(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::RandomNormal(rows, cols, &rng);
  for (int i = 0; i < t.size(); i += 7) t[i] = 0.f;
  return t;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

GraphDataset TinyDataset() {
  TrianglesConfig config;
  config.num_train = 12;
  config.num_valid = 4;
  config.num_test = 6;
  config.train_max_nodes = 12;
  config.test_max_nodes = 16;
  return MakeTrianglesDataset(config, 77);
}

EncoderConfig TinyEncoder(int feature_dim) {
  EncoderConfig config;
  config.feature_dim = feature_dim;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.5f;  // Identity in eval mode.
  return config;
}

/// Matrix params (rows>1 && cols>1) are the quantization surface —
/// must match the QuantEligible rule in nn/serialize.cc and
/// serve/inference.cc.
bool Eligible(const Tensor& value) {
  return value.rows() > 1 && value.cols() > 1;
}

// ---------------------------------------------------------------------------
// Block quantizer properties.
// ---------------------------------------------------------------------------

TEST(QuantTest, RoundTripErrorWithinHalfScalePerBlock) {
  // Shapes chosen to cover: single full block, tail-only block, many
  // blocks with a tail, and the degenerate 1x1.
  const int shapes[][2] = {{3, 32}, {5, 37}, {2, 31}, {7, 100}, {1, 1}, {4, 64}};
  for (const auto& shape : shapes) {
    const Tensor w =
        RandomTensor(shape[0], shape[1],
                     static_cast<uint64_t>(shape[0] * 1000 + shape[1]));
    const QuantizedTensor qw = QuantizeQ8(w);
    ASSERT_EQ(qw.rows, w.rows());
    ASSERT_EQ(qw.cols, w.cols());
    const Tensor back = DequantizeQ8(qw);
    for (int r = 0; r < w.rows(); ++r) {
      for (int c = 0; c < w.cols(); ++c) {
        const float scale = qw.srow(r)[c / kQuantBlockSize];
        const float err = std::fabs(w.at(r, c) - back.at(r, c));
        // Half-scale bound with a whisker of rounding slack.
        EXPECT_LE(err, 0.5f * scale * (1.f + 1e-4f) + 1e-12f)
            << shape[0] << "x" << shape[1] << " at (" << r << "," << c << ")";
      }
    }
  }
}

TEST(QuantTest, AllZeroBlockHasZeroScaleAndExactReconstruction) {
  Tensor w(3, 64);  // Zero-initialized: every block all-zero.
  const QuantizedTensor qw = QuantizeQ8(w);
  for (float s : qw.scales) EXPECT_EQ(s, 0.f);
  for (int8_t q : qw.q) EXPECT_EQ(q, 0);
  EXPECT_TRUE(BitwiseEqual(w, DequantizeQ8(qw)));
}

TEST(QuantTest, SingleOutlierBlockStillBoundsSmallValues) {
  // One huge value sets the block scale; the small values collapse to
  // code 0 but their absolute error stays within the half-scale bound,
  // and the outlier itself reconstructs near-exactly.
  Tensor w(2, 32);
  for (int c = 0; c < 32; ++c) {
    w.at(0, c) = 1e-3f * static_cast<float>(c % 5);
    w.at(1, c) = 1e-3f;
  }
  w.at(0, 17) = 100.f;
  const QuantizedTensor qw = QuantizeQ8(w);
  const float scale = qw.srow(0)[0];
  EXPECT_NEAR(scale, 100.f / 127.f, 1e-4f);
  const Tensor back = DequantizeQ8(qw);
  EXPECT_NEAR(back.at(0, 17), 100.f, 0.5f * scale);
  for (int c = 0; c < 32; ++c) {
    EXPECT_LE(std::fabs(w.at(0, c) - back.at(0, c)), 0.5f * scale + 1e-12f);
  }
  // Row 1 has no outlier: its scale reflects its own small magnitude.
  EXPECT_LT(qw.srow(1)[0], 1e-4f);
}

TEST(QuantTest, RequantizationIsStable) {
  // Publish no-drift contract: the engine writes the dequantized image
  // back as the served fp32 weights, so the next publish re-quantizes
  // an already-quantized image. The codes must be a fixed point and
  // the dequantized image must not wander.
  const Tensor w = RandomTensor(9, 77, 2024);
  QuantizedTensor q1 = QuantizeQ8(w);
  Tensor image = DequantizeQ8(q1);
  for (int cycle = 0; cycle < 3; ++cycle) {
    const QuantizedTensor q2 = QuantizeQ8(image);
    EXPECT_EQ(q1.q, q2.q) << "codes drifted on cycle " << cycle;
    const Tensor next = DequantizeQ8(q2);
    for (int i = 0; i < image.size(); ++i) {
      const float scale = q2.srow(i / image.cols())[(i % image.cols()) /
                                                    kQuantBlockSize];
      EXPECT_LE(std::fabs(image[i] - next[i]), 1e-3f * scale + 1e-12f)
          << "image drifted on cycle " << cycle;
    }
    image = next;
  }
}

TEST(QuantTest, QuantMatmulWithinAnalyticErrorBound) {
  // |fp32 - quant| per output element is bounded by the accumulated
  // per-block half-scale weight error weighted by |a|.
  const Tensor a = RandomTensor(11, 53, 31);
  const Tensor w = RandomTensor(53, 41, 37);
  const QuantizedTensor qw = QuantizeQ8(w);
  Tensor fp32(11, 41);
  kernels::MatMulAcc(a, w, &fp32, 0, a.rows());
  Tensor quant(11, 41);
  kernels::MatMulQuantAcc(a, qw, &quant, 0, a.rows());
  bool any_difference = false;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < w.cols(); ++j) {
      float bound = 0.f;
      for (int p = 0; p < a.cols(); ++p) {
        bound += std::fabs(a.at(i, p)) * 0.5f * qw.srow(p)[j / kQuantBlockSize];
      }
      const float err = std::fabs(fp32.at(i, j) - quant.at(i, j));
      EXPECT_LE(err, bound * 1.01f + 1e-5f) << "(" << i << "," << j << ")";
      any_difference = any_difference || err > 0.f;
    }
  }
  EXPECT_TRUE(any_difference);  // Quantization genuinely happened.
}

// ---------------------------------------------------------------------------
// OODQ snapshot format.
// ---------------------------------------------------------------------------

TEST(QuantTest, QuantizedStateRoundTripsThroughOodqFile) {
  GraphDataset dataset = TinyDataset();
  Rng rng(21);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  // Perturb the buffers so the test proves they round trip (fp32).
  for (Tensor* buffer : model.Buffers()) {
    for (int i = 0; i < buffer->size(); ++i) {
      (*buffer)[i] += 0.125f * static_cast<float>(i % 3);
    }
  }
  const std::string path = TempPath("quant_state.oodq");
  ASSERT_TRUE(SaveQuantizedModelState(path, model));

  Rng rng2(22);
  GraphPredictionModel loaded(Method::kGin, TinyEncoder(dataset.feature_dim),
                              dataset.OutputDim(), &rng2);
  ASSERT_TRUE(LoadQuantizedModelState(path, &loaded));

  const std::vector<Variable> orig = model.Parameters();
  const std::vector<Variable> got = loaded.Parameters();
  ASSERT_EQ(orig.size(), got.size());
  int quantized_params = 0;
  for (size_t i = 0; i < orig.size(); ++i) {
    const Tensor& value = orig[i].value();
    if (Eligible(value)) {
      // Matrix params come back as the dequantized image — exactly.
      EXPECT_TRUE(BitwiseEqual(DequantizeQ8(QuantizeQ8(value)), got[i].value()))
          << "param " << i;
      ++quantized_params;
    } else {
      // Vectors/scalars (biases, norms) stay fp32 and exact.
      EXPECT_TRUE(BitwiseEqual(value, got[i].value())) << "param " << i;
    }
  }
  EXPECT_GT(quantized_params, 0);
  const std::vector<Tensor*> orig_buffers = model.Buffers();
  const std::vector<Tensor*> got_buffers = loaded.Buffers();
  ASSERT_EQ(orig_buffers.size(), got_buffers.size());
  for (size_t i = 0; i < orig_buffers.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(*orig_buffers[i], *got_buffers[i]));
  }
  std::remove(path.c_str());
}

TEST(QuantTest, OodqRejectsCorruptTruncatedTrailingAndMismatched) {
  GraphDataset dataset = TinyDataset();
  Rng rng(23);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  const std::string path = TempPath("quant_corrupt.oodq");
  ASSERT_TRUE(SaveQuantizedModelState(path, model));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const auto write_bytes = [&](const std::string& b) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  };
  Rng rng2(24);
  GraphPredictionModel victim(Method::kGin, TinyEncoder(dataset.feature_dim),
                              dataset.OutputDim(), &rng2);
  const Tensor before = victim.Parameters()[0].value();

  // Flipped payload byte: checksum mismatch.
  std::string corrupt = bytes;
  corrupt[corrupt.size() - 1] = static_cast<char>(corrupt.back() ^ 0x5a);
  write_bytes(corrupt);
  EXPECT_FALSE(LoadQuantizedModelState(path, &victim));
  EXPECT_FALSE(LoadAnyModelState(path, &victim));

  // Truncation: framed-size mismatch.
  write_bytes(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(LoadQuantizedModelState(path, &victim));

  // Trailing garbage after the framed payload.
  write_bytes(bytes + "x");
  EXPECT_FALSE(LoadQuantizedModelState(path, &victim));

  // Wrong container: an fp32 OODM file is not an OODQ file (and vice
  // versa) — each loader rejects the other's magic.
  const std::string fp32_path = TempPath("quant_fp32.oodm");
  ASSERT_TRUE(SaveModelState(fp32_path, model));
  EXPECT_FALSE(LoadQuantizedModelState(fp32_path, &victim));
  write_bytes(bytes);
  EXPECT_FALSE(LoadModelState(path, &victim));

  // Architecture mismatch: shapes are validated before any mutation.
  EncoderConfig bigger_config = TinyEncoder(dataset.feature_dim);
  bigger_config.hidden_dim = 16;
  Rng rng3(25);
  GraphPredictionModel bigger(Method::kGin, bigger_config, dataset.OutputDim(),
                              &rng3);
  ASSERT_TRUE(SaveQuantizedModelState(path, bigger));
  EXPECT_FALSE(LoadQuantizedModelState(path, &victim));

  // Validate-then-apply: every rejected load left the module untouched.
  EXPECT_TRUE(BitwiseEqual(before, victim.Parameters()[0].value()));
  std::remove(path.c_str());
  std::remove(fp32_path.c_str());
}

TEST(QuantTest, LoadAnyModelStateDispatchesOnMagic) {
  GraphDataset dataset = TinyDataset();
  Rng rng(26);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  const std::string fp32_path = TempPath("quant_any.oodm");
  const std::string q8_path = TempPath("quant_any.oodq");
  ASSERT_TRUE(SaveModelState(fp32_path, model));
  ASSERT_TRUE(SaveQuantizedModelState(q8_path, model));

  Rng rng2(27);
  GraphPredictionModel fp32_loaded(Method::kGin,
                                   TinyEncoder(dataset.feature_dim),
                                   dataset.OutputDim(), &rng2);
  ASSERT_TRUE(LoadAnyModelState(fp32_path, &fp32_loaded));
  EXPECT_TRUE(BitwiseEqual(model.Parameters()[0].value(),
                           fp32_loaded.Parameters()[0].value()));

  Rng rng3(28);
  GraphPredictionModel q8_loaded(Method::kGin, TinyEncoder(dataset.feature_dim),
                                 dataset.OutputDim(), &rng3);
  ASSERT_TRUE(LoadAnyModelState(q8_path, &q8_loaded));
  // Find a matrix param and check it came back quantized, proving the
  // OODQ branch (not the fp32 one) ran.
  const std::vector<Variable> orig = model.Parameters();
  const std::vector<Variable> got = q8_loaded.Parameters();
  for (size_t i = 0; i < orig.size(); ++i) {
    if (!Eligible(orig[i].value())) continue;
    EXPECT_TRUE(BitwiseEqual(DequantizeQ8(QuantizeQ8(orig[i].value())),
                             got[i].value()));
    break;
  }
  EXPECT_FALSE(LoadAnyModelState(fp32_path + ".does_not_exist", &q8_loaded));
  std::remove(fp32_path.c_str());
  std::remove(q8_path.c_str());
}

// ---------------------------------------------------------------------------
// Flag plumbing.
// ---------------------------------------------------------------------------

TEST(QuantTest, GetQuantizeFlagPrecedence) {
  unsetenv("OODGNN_QUANTIZE");
  {
    char arg0[] = "prog";
    char* argv[] = {arg0};
    Flags flags(1, argv);
    EXPECT_FALSE(flags.GetQuantize());
    EXPECT_TRUE(flags.GetQuantize(/*fallback=*/true));
  }
  {
    char arg0[] = "prog";
    char arg1[] = "--quantize";
    char* argv[] = {arg0, arg1};
    Flags flags(2, argv);
    EXPECT_TRUE(flags.GetQuantize());
  }
  setenv("OODGNN_QUANTIZE", "1", 1);
  {
    char arg0[] = "prog";
    char* argv[] = {arg0};
    Flags flags(1, argv);
    EXPECT_TRUE(flags.GetQuantize());  // Env fills in when flag absent.
  }
  {
    // Explicit flag wins over env.
    char arg0[] = "prog";
    char arg1[] = "--quantize=false";
    char* argv[] = {arg0, arg1};
    Flags flags(2, argv);
    EXPECT_FALSE(flags.GetQuantize());
  }
  setenv("OODGNN_QUANTIZE", "0", 1);
  {
    char arg0[] = "prog";
    char* argv[] = {arg0};
    Flags flags(1, argv);
    EXPECT_FALSE(flags.GetQuantize(/*fallback=*/true));  // Env beats fallback.
  }
  unsetenv("OODGNN_QUANTIZE");
}

// ---------------------------------------------------------------------------
// Engine-level parity gate: every method, quantized vs fp32.
// ---------------------------------------------------------------------------

class QuantParity : public ::testing::TestWithParam<Method> {};

TEST_P(QuantParity, QuantizedEngineMatchesFp32WithinTolerance) {
  const Method method = GetParam();
  GraphDataset dataset = TinyDataset();
  Rng rng(31);
  ModelSpec spec;
  spec.method = method;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(method, spec.encoder, spec.output_dim, &rng);

  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.test_idx) graphs.push_back(&dataset.graphs[idx]);

  InferenceOptions fp32_options;
  fp32_options.quantize = QuantizeMode::kOff;
  InferenceEngine fp32_engine(spec, fp32_options);
  fp32_engine.SyncFrom(model);

  InferenceOptions q8_options;
  q8_options.quantize = QuantizeMode::kOn;
  q8_options.num_workers = 2;
  q8_options.max_batch_graphs = 3;
  InferenceEngine q8_engine(spec, q8_options);
  q8_engine.SyncFrom(model);

  float max_diff = 0.f;
  for (const Graph* graph : graphs) {
    const Tensor fp32_row = fp32_engine.Predict(*graph);
    const Tensor q8_row = q8_engine.Predict(*graph);
    ASSERT_EQ(fp32_row.size(), q8_row.size());
    for (int j = 0; j < fp32_row.size(); ++j) {
      max_diff = std::max(max_diff, std::fabs(fp32_row[j] - q8_row[j]));
    }
  }
  // Within the committed tolerance...
  EXPECT_LE(max_diff, kQuantLogitTolerance) << MethodName(method);
  // ...but genuinely quantized: bitwise-identical logits would mean
  // the int8 path silently never engaged.
  EXPECT_GT(max_diff, 0.f) << MethodName(method);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, QuantParity,
    ::testing::ValuesIn([] {
      std::vector<Method> methods = AllMethods();
      for (Method m : ExtensionMethods()) methods.push_back(m);
      return methods;
    }()),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = MethodName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// ---------------------------------------------------------------------------
// Quantized + compiled: the plan path must stay bitwise invisible.
// ---------------------------------------------------------------------------

TEST(QuantTest, QuantizedCompiledMatchesQuantizedEagerBitwise) {
  GraphDataset dataset = TinyDataset();
  Rng rng(41);
  ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim, &rng);

  std::vector<const Graph*> graphs;
  for (const Graph& graph : dataset.graphs) graphs.push_back(&graph);

  InferenceOptions eager;
  eager.quantize = QuantizeMode::kOn;
  eager.compiled = false;
  eager.max_batch_graphs = 3;
  InferenceEngine eager_engine(spec, eager);
  eager_engine.SyncFrom(model);

  InferenceOptions compiled = eager;
  compiled.compiled = true;
  InferenceEngine compiled_engine(spec, compiled);
  compiled_engine.SyncFrom(model);

  std::vector<std::future<Tensor>> eager_rows, compiled_rows;
  for (const Graph* graph : graphs) {
    eager_rows.push_back(eager_engine.Submit(*graph));
    compiled_rows.push_back(compiled_engine.Submit(*graph));
  }
  for (size_t i = 0; i < graphs.size(); ++i) {
    const Tensor a = eager_rows[i].get();
    const Tensor b = compiled_rows[i].get();
    EXPECT_TRUE(BitwiseEqual(a, b)) << "graph " << i;
  }
}

// ---------------------------------------------------------------------------
// Publish telemetry.
// ---------------------------------------------------------------------------

TEST(QuantTest, QuantizedPublishesAdvanceQuantCounters) {
  obs::MetricsRegistry::Global().Reset();
  GraphDataset dataset = TinyDataset();
  Rng rng(51);
  ModelSpec spec;
  spec.method = Method::kGin;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  GraphPredictionModel model(spec.method, spec.encoder, spec.output_dim, &rng);

  InferenceOptions options;
  options.quantize = QuantizeMode::kOn;
  InferenceEngine engine(spec, options);
  engine.SyncFrom(model);

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().GetSnapshot();
  std::int64_t publishes = -1, params = -1, bytes = -1;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "serve/quant/publishes") publishes = value;
    if (name == "serve/quant/params") params = value;
    if (name == "serve/quant/bytes") bytes = value;
  }
  // Construction publishes once (fresh weights), SyncFrom again.
  EXPECT_GE(publishes, 2);
  EXPECT_GT(params, 0);
  EXPECT_GT(bytes, 0);
}

}  // namespace
}  // namespace oodgnn
