// Tests for the kernel/backend layer: every kernel is compared against
// a naive reference, and — the determinism contract — produces bitwise
// identical results under the serial backend and the parallel backend
// at 2 and 8 threads. A gradcheck run under ParallelBackend proves the
// backward pass is deterministic too.

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/gnn/encoder.h"
#include "src/gnn/factor_gcn.h"
#include "src/gnn/gat_conv.h"
#include "src/gnn/gcn_conv.h"
#include "src/gnn/gin_conv.h"
#include "src/gnn/pna_conv.h"
#include "src/gnn/pool_common.h"
#include "src/gnn/sage_conv.h"
#include "src/graph/batch.h"
#include "src/graph/graph.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/kernels.h"
#include "src/tensor/ops.h"
#include "src/tensor/segment_plan.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace oodgnn {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

Tensor RandomTensor(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::RandomNormal(rows, cols, &rng);
  // A sprinkle of exact zeros exercises the matmul zero-skip fast path.
  for (int i = 0; i < t.size(); i += 7) t[i] = 0.f;
  return t;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

/// Runs `op` (which must produce its result into a fresh Tensor) under
/// every thread count and asserts all results are bitwise identical to
/// the serial one and AllClose to `reference`.
void ExpectDeterministic(const std::function<Tensor()>& op,
                         const Tensor& reference, float tol = 1e-4f) {
  Tensor serial;
  {
    ScopedBackendThreads scoped(1);
    serial = op();
  }
  EXPECT_TRUE(AllClose(serial, reference, tol));
  for (int threads : kThreadCounts) {
    ScopedBackendThreads scoped(threads);
    Tensor got = op();
    EXPECT_TRUE(BitwiseEqual(serial, got))
        << "backend with " << threads << " threads diverged bitwise";
  }
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(103, 0);
  pool.ParallelFor(103, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(8, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      // Nested use from a worker (or from the caller's chunk) must not
      // deadlock; it runs the inner range inline.
      pool.ParallelFor(8, [&](int b2, int e2) {
        for (int j = b2; j < e2; ++j) ++hits[static_cast<size_t>(i * 8 + j)];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, StaticChunksAreContiguousAndComplete) {
  const auto [b0, e0] = ThreadPool::Chunk(10, 3, 0);
  const auto [b1, e1] = ThreadPool::Chunk(10, 3, 1);
  const auto [b2, e2] = ThreadPool::Chunk(10, 3, 2);
  EXPECT_EQ(b0, 0);
  EXPECT_EQ(e0, b1);
  EXPECT_EQ(e1, b2);
  EXPECT_EQ(e2, 10);
}

TEST(KernelsTest, MatMulMatchesNaiveBitwiseAcrossThreads) {
  const Tensor a = RandomTensor(37, 29, 1);
  const Tensor b = RandomTensor(29, 43, 2);
  // Naive ikj reference with ascending-k accumulation per output cell —
  // the same per-element order the blocked kernel commits to.
  Tensor reference(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int p = 0; p < a.cols(); ++p) {
      for (int j = 0; j < b.cols(); ++j) {
        reference.at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), b.cols());
        GetBackend().MatMulAcc(a, b, &out);
        return out;
      },
      reference);
}

TEST(KernelsTest, MatMulTransAMatchesNaiveBitwiseAcrossThreads) {
  const Tensor a = RandomTensor(31, 17, 3);
  const Tensor b = RandomTensor(31, 23, 4);
  Tensor reference(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int p = 0; p < a.cols(); ++p) {
      for (int j = 0; j < b.cols(); ++j) {
        reference.at(p, j) += a.at(i, p) * b.at(i, j);
      }
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(a.cols(), b.cols());
        GetBackend().MatMulTransAAcc(a, b, &out);
        return out;
      },
      reference);
}

TEST(KernelsTest, MatMulTransBMatchesNaiveBitwiseAcrossThreads) {
  const Tensor a = RandomTensor(19, 41, 5);
  const Tensor b = RandomTensor(27, 41, 6);
  Tensor reference(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      float acc = 0.f;
      for (int p = 0; p < a.cols(); ++p) acc += a.at(i, p) * b.at(j, p);
      reference.at(i, j) = acc;
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), b.rows());
        GetBackend().MatMulTransBAcc(a, b, &out);
        return out;
      },
      reference);
}

TEST(KernelsTest, ElementwiseKernelsAcrossThreads) {
  const Tensor x = RandomTensor(23, 31, 7);
  const Tensor g = RandomTensor(23, 31, 8);
  ExpectDeterministic(
      [&] {
        Tensor y = x;
        GetBackend().Axpy(2.5f, g, &y);
        GetBackend().ScaleInPlace(0.5f, &y);
        GetBackend().AddScalarAcc(-1.f, &y);
        Tensor out(x.rows(), x.cols());
        GetBackend().Hadamard(y, g, &out);
        GetBackend().HadamardAcc(x, g, &out);
        return out;
      },
      [&] {
        Tensor y = x;
        for (int i = 0; i < y.size(); ++i) {
          y[i] = (y[i] + 2.5f * g[i]) * 0.5f - 1.f;
        }
        Tensor out(x.rows(), x.cols());
        for (int i = 0; i < out.size(); ++i) out[i] = y[i] * g[i] + x[i] * g[i];
        return out;
      }());
}

TEST(KernelsTest, ReductionsAndBroadcastsAcrossThreads) {
  const Tensor a = RandomTensor(29, 37, 9);
  Tensor colsum_ref(1, a.cols());
  Tensor rowsum_ref(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      colsum_ref.at(0, c) += a.at(r, c);
      rowsum_ref.at(r, 0) += a.at(r, c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(1, a.cols());
        GetBackend().ColumnSumAcc(a, &out);
        return out;
      },
      colsum_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), 1);
        GetBackend().RowSumAcc(a, &out);
        return out;
      },
      rowsum_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), a.cols());
        GetBackend().RowBroadcastAcc(colsum_ref, &out);
        GetBackend().ColBroadcastAcc(rowsum_ref, &out);
        GetBackend().AddTransposedAcc(a.Transposed(), &out);
        return out;
      },
      [&] {
        Tensor out(a.rows(), a.cols());
        for (int r = 0; r < a.rows(); ++r) {
          for (int c = 0; c < a.cols(); ++c) {
            out.at(r, c) =
                colsum_ref.at(0, c) + rowsum_ref.at(r, 0) + a.at(r, c);
          }
        }
        return out;
      }());
}

TEST(KernelsTest, WeightedReductionsAcrossThreads) {
  const Tensor x = RandomTensor(21, 33, 10);
  const Tensor y = RandomTensor(21, 33, 11);
  Tensor col_ref(1, x.cols());
  Tensor row_ref(x.rows(), 1);
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      col_ref.at(0, c) += x.at(r, c) * y.at(r, c);
      row_ref.at(r, 0) += x.at(r, c) * y.at(r, c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(1, x.cols());
        GetBackend().HadamardColumnSumAcc(x, y, &out);
        return out;
      },
      col_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(x.rows(), 1);
        GetBackend().HadamardRowSumAcc(x, y, &out);
        return out;
      },
      row_ref);
}

TEST(KernelsTest, SoftmaxRowsAcrossThreads) {
  const Tensor a = RandomTensor(33, 13, 12);
  const Tensor g = RandomTensor(33, 13, 13);
  Tensor y_serial(a.rows(), a.cols());
  {
    ScopedBackendThreads scoped(1);
    GetBackend().SoftmaxRows(a, &y_serial);
  }
  for (int r = 0; r < a.rows(); ++r) {
    float total = 0.f;
    for (int c = 0; c < a.cols(); ++c) total += y_serial.at(r, c);
    EXPECT_NEAR(total, 1.f, 1e-5f);
  }
  ExpectDeterministic(
      [&] {
        Tensor y(a.rows(), a.cols());
        GetBackend().SoftmaxRows(a, &y);
        Tensor out(a.rows(), a.cols());
        GetBackend().SoftmaxRowsBackwardAcc(y, g, &out);
        return out;
      },
      [&] {
        Tensor out(a.rows(), a.cols());
        for (int r = 0; r < a.rows(); ++r) {
          float dot = 0.f;
          for (int c = 0; c < a.cols(); ++c) {
            dot += g.at(r, c) * y_serial.at(r, c);
          }
          for (int c = 0; c < a.cols(); ++c) {
            out.at(r, c) = y_serial.at(r, c) * (g.at(r, c) - dot);
          }
        }
        return out;
      }());
}

TEST(KernelsTest, GatherScatterSegmentAcrossThreads) {
  Rng rng(14);
  const int nodes = 41;
  const int dim = 19;
  const Tensor h = RandomTensor(nodes, dim, 15);
  std::vector<int> index(97);
  for (int& v : index) {
    v = static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  // Gather.
  Tensor gather_ref(static_cast<int>(index.size()), dim);
  for (size_t i = 0; i < index.size(); ++i) {
    for (int c = 0; c < dim; ++c) {
      gather_ref.at(static_cast<int>(i), c) = h.at(index[i], c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(static_cast<int>(index.size()), dim);
        GetBackend().GatherRows(h, index, &out);
        return out;
      },
      gather_ref);
  // Scatter-add (segment sum) and its adjoint.
  Tensor scatter_ref(nodes, dim);
  for (size_t i = 0; i < index.size(); ++i) {
    for (int c = 0; c < dim; ++c) {
      scatter_ref.at(index[i], c) += gather_ref.at(static_cast<int>(i), c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(nodes, dim);
        GetBackend().ScatterAddRowsAcc(gather_ref, index, &out);
        return out;
      },
      scatter_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(static_cast<int>(index.size()), dim);
        GetBackend().GatherRowsAcc(scatter_ref, index, &out);
        return out;
      },
      [&] {
        Tensor out(static_cast<int>(index.size()), dim);
        for (size_t i = 0; i < index.size(); ++i) {
          for (int c = 0; c < dim; ++c) {
            out.at(static_cast<int>(i), c) = scatter_ref.at(index[i], c);
          }
        }
        return out;
      }());
}

TEST(KernelsTest, SegmentExtremeAcrossThreads) {
  Rng rng(16);
  const int rows = 53;
  const int dim = 11;
  const int num_segments = 9;  // Segment 8 stays empty.
  const Tensor a = RandomTensor(rows, dim, 17);
  std::vector<int> segment(static_cast<size_t>(rows));
  for (int& s : segment) {
    s = static_cast<int>(rng.UniformInt(0, num_segments - 2));
  }
  for (bool is_max : {true, false}) {
    Tensor ref(num_segments, dim);
    std::vector<int> arg_ref(static_cast<size_t>(num_segments) * dim, -1);
    for (int r = 0; r < rows; ++r) {
      const int s = segment[static_cast<size_t>(r)];
      for (int c = 0; c < dim; ++c) {
        const size_t cell = static_cast<size_t>(s) * dim + c;
        const bool better =
            arg_ref[cell] < 0 ||
            (is_max ? a.at(r, c) > ref.at(s, c) : a.at(r, c) < ref.at(s, c));
        if (better) {
          ref.at(s, c) = a.at(r, c);
          arg_ref[cell] = r;
        }
      }
    }
    ExpectDeterministic(
        [&] {
          Tensor out(num_segments, dim);
          std::vector<int> arg(static_cast<size_t>(num_segments) * dim, -1);
          GetBackend().SegmentExtreme(a, segment, is_max, &out, &arg);
          EXPECT_EQ(arg, arg_ref);
          return out;
        },
        ref);
    // Backward routes each upstream cell to its recorded argmax row.
    const Tensor g = RandomTensor(num_segments, dim, 18);
    ExpectDeterministic(
        [&] {
          Tensor out(rows, dim);
          GetBackend().SegmentExtremeBackwardAcc(g, arg_ref, &out);
          return out;
        },
        [&] {
          Tensor out(rows, dim);
          for (int s = 0; s < num_segments; ++s) {
            for (int c = 0; c < dim; ++c) {
              const int r = arg_ref[static_cast<size_t>(s) * dim + c];
              if (r >= 0) out.at(r, c) += g.at(s, c);
            }
          }
          return out;
        }());
  }
}

TEST(KernelsTest, CopyRowsToAcrossThreads) {
  const Tensor src = RandomTensor(17, 21, 19);
  ExpectDeterministic(
      [&] {
        Tensor dst(40, 21);
        GetBackend().CopyRowsTo(src, &dst, 5);
        return dst;
      },
      [&] {
        Tensor dst(40, 21);
        for (int r = 0; r < src.rows(); ++r) {
          for (int c = 0; c < src.cols(); ++c) {
            dst.at(5 + r, c) = src.at(r, c);
          }
        }
        return dst;
      }());
}

// ---------------------------------------------------------------------------
// Backward determinism through the autograd layer.
// ---------------------------------------------------------------------------

/// A message-passing-shaped composite: gather → matmul → relu → scatter
/// → softmax → weighted sum. Exercises every hot backward kernel.
Variable CompositeLoss(const Variable& h, const Variable& w,
                       const std::vector<int>& src,
                       const std::vector<int>& dst, int nodes) {
  Variable messages = RowGather(h, src);
  Variable mixed = Relu(MatMul(messages, w));
  Variable aggregated = ScatterAddRows(mixed, dst, nodes);
  Variable scores = SoftmaxRows(aggregated);
  return Sum(Square(scores));
}

TEST(KernelsTest, GradcheckPassesUnderParallelBackend) {
  ScopedBackendThreads scoped(8);
  Rng rng(20);
  const int nodes = 12;
  const int dim = 6;
  Variable h = Variable::Param(Tensor::RandomNormal(nodes, dim, &rng));
  Variable w = Variable::Param(Tensor::RandomNormal(dim, dim, &rng));
  std::vector<int> src(30);
  std::vector<int> dst(30);
  for (size_t e = 0; e < src.size(); ++e) {
    src[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
    dst[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  GradCheckResult result = CheckGradients(
      {h, w}, [&] { return CompositeLoss(h, w, src, dst, nodes); });
  EXPECT_LT(result.max_relative_error, 5e-2)
      << "worst leaf " << result.worst_leaf << " element "
      << result.worst_element;
}

TEST(KernelsTest, BackwardGradientsBitwiseIdenticalAcrossThreads) {
  Rng rng(21);
  const int nodes = 40;
  const int dim = 24;
  const Tensor h0 = Tensor::RandomNormal(nodes, dim, &rng);
  const Tensor w0 = Tensor::RandomNormal(dim, dim, &rng);
  std::vector<int> src(160);
  std::vector<int> dst(160);
  for (size_t e = 0; e < src.size(); ++e) {
    src[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
    dst[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  auto run = [&](int threads) {
    ScopedBackendThreads scoped(threads);
    Variable h = Variable::Param(h0);
    Variable w = Variable::Param(w0);
    Variable loss = CompositeLoss(h, w, src, dst, nodes);
    loss.Backward();
    return std::make_pair(h.grad(), w.grad());
  };
  const auto [h_serial, w_serial] = run(1);
  for (int threads : kThreadCounts) {
    const auto [h_grad, w_grad] = run(threads);
    EXPECT_TRUE(BitwiseEqual(h_serial, h_grad))
        << "h grad diverged at " << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(w_serial, w_grad))
        << "w grad diverged at " << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// CSR segment plans.
// ---------------------------------------------------------------------------

std::vector<int> RandomIndex(size_t count, int num_segments, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> index(count);
  for (int& v : index) {
    v = static_cast<int>(rng.UniformInt(0, num_segments - 1));
  }
  return index;
}

TEST(SegmentPlanTest, BuildMatchesStableSort) {
  for (uint64_t seed : {30u, 31u, 32u}) {
    const int num_segments = 13;
    const std::vector<int> items = RandomIndex(71, num_segments, seed);
    const SegmentPlan plan = SegmentPlan::Build(items, num_segments);
    ASSERT_EQ(plan.num_items(), 71);
    ASSERT_EQ(plan.num_segments, num_segments);
    EXPECT_EQ(plan.items, items);
    // perm must be the stable sort of positions by segment.
    std::vector<int> expected(items.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      expected[i] = static_cast<int>(i);
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [&](int a, int b) {
                       return items[static_cast<size_t>(a)] <
                              items[static_cast<size_t>(b)];
                     });
    EXPECT_EQ(plan.perm, expected);
    // offsets delimit each segment's run.
    ASSERT_EQ(plan.offsets.size(), static_cast<size_t>(num_segments) + 1);
    const std::vector<int> counts = plan.SegmentCounts();
    for (int s = 0; s < num_segments; ++s) {
      EXPECT_EQ(plan.offsets[static_cast<size_t>(s) + 1] -
                    plan.offsets[static_cast<size_t>(s)],
                counts[static_cast<size_t>(s)]);
      for (int j = plan.offsets[static_cast<size_t>(s)];
           j < plan.offsets[static_cast<size_t>(s) + 1]; ++j) {
        EXPECT_EQ(items[static_cast<size_t>(
                      plan.perm[static_cast<size_t>(j)])],
                  s);
      }
    }
  }
}

TEST(SegmentPlanTest, HandlesEmptyAndDegenerateInputs) {
  const SegmentPlan empty = SegmentPlan::Build({}, 5);
  EXPECT_EQ(empty.num_items(), 0);
  EXPECT_EQ(empty.offsets, std::vector<int>({0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(empty.SegmentCounts(), std::vector<int>({0, 0, 0, 0, 0}));

  const SegmentPlan none = SegmentPlan::Build({}, 0);
  EXPECT_EQ(none.num_segments, 0);
  EXPECT_EQ(none.offsets, std::vector<int>({0}));

  const SegmentPlan single = SegmentPlan::Build({2, 2, 2}, 3);
  EXPECT_EQ(single.offsets, std::vector<int>({0, 0, 0, 3}));
  EXPECT_EQ(single.perm, std::vector<int>({0, 1, 2}));
}

TEST(KernelsTest, PlannedScatterMatchesNaiveBitwiseAcrossThreads) {
  const int nodes = 37;
  const int dim = 17;
  const Tensor a = RandomTensor(211, dim, 33);
  const std::vector<int> index = RandomIndex(211, nodes, 34);
  const SegmentPlan plan = SegmentPlan::Build(index, nodes);
  // Naive ascending-row reference — the order the seed full-scan
  // kernel and the planned kernel both commit to per output row.
  Tensor reference(nodes, dim);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < dim; ++c) {
      reference.at(index[static_cast<size_t>(r)], c) += a.at(r, c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(nodes, dim);
        GetBackend().ScatterAddRowsPlanned(a, plan, &out);
        return out;
      },
      reference);
  // And the planned kernel agrees bitwise with the unplanned one.
  Tensor unplanned(nodes, dim);
  Tensor planned(nodes, dim);
  ScopedBackendThreads scoped(8);
  GetBackend().ScatterAddRowsAcc(a, index, &unplanned);
  GetBackend().ScatterAddRowsPlanned(a, plan, &planned);
  EXPECT_TRUE(BitwiseEqual(unplanned, planned));
}

TEST(KernelsTest, FusedGatherScatterMatchesComposedBitwiseAcrossThreads) {
  const int nodes = 29;
  const int dim = 13;
  const Tensor h = RandomTensor(nodes, dim, 35);
  const Tensor w = RandomTensor(173, 1, 36);
  const std::vector<int> src = RandomIndex(173, nodes, 37);
  const std::vector<int> dst = RandomIndex(173, nodes, 38);
  const MessagePlan plan = MessagePlan::Build(src, dst, nodes);

  Tensor gathered(static_cast<int>(src.size()), dim);
  {
    ScopedBackendThreads scoped(1);
    GetBackend().GatherRows(h, src, &gathered);
  }
  Tensor sum_ref(nodes, dim);
  Tensor weighted_ref(nodes, dim);
  Tensor dot_ref(static_cast<int>(src.size()), 1);
  for (size_t e = 0; e < src.size(); ++e) {
    for (int c = 0; c < dim; ++c) {
      sum_ref.at(dst[e], c) += gathered.at(static_cast<int>(e), c);
      weighted_ref.at(dst[e], c) +=
          gathered.at(static_cast<int>(e), c) * w.at(static_cast<int>(e), 0);
      dot_ref.at(static_cast<int>(e), 0) +=
          gathered.at(static_cast<int>(e), c) * h.at(dst[e], c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(nodes, dim);
        GetBackend().GatherScatterAcc(h, plan.src_by_dst, plan.by_dst, &out);
        return out;
      },
      sum_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(nodes, dim);
        GetBackend().GatherScatterWeightedAcc(h, w, plan.src_by_dst,
                                              plan.by_dst, &out);
        return out;
      },
      weighted_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(static_cast<int>(src.size()), 1);
        GetBackend().EdgeDotAcc(h, h, src, dst, &out);
        return out;
      },
      dot_ref);
}

TEST(KernelsTest, SegmentExtremePlannedMatchesUnplannedAcrossThreads) {
  const int num_segments = 11;
  const int dim = 7;
  const Tensor a = RandomTensor(83, dim, 39);
  // Leave segment 10 empty to exercise the zero-fill path.
  std::vector<int> segment = RandomIndex(83, num_segments - 1, 40);
  const SegmentPlan plan = SegmentPlan::Build(segment, num_segments);
  for (bool is_max : {true, false}) {
    Tensor ref(num_segments, dim);
    std::vector<int> arg_ref(static_cast<size_t>(num_segments) * dim, -1);
    {
      ScopedBackendThreads scoped(1);
      GetBackend().SegmentExtreme(a, segment, is_max, &ref, &arg_ref);
    }
    ExpectDeterministic(
        [&] {
          Tensor out(num_segments, dim);
          std::vector<int> arg(static_cast<size_t>(num_segments) * dim, -1);
          GetBackend().SegmentExtremePlanned(a, plan, is_max, &out, &arg);
          EXPECT_EQ(arg, arg_ref);
          return out;
        },
        ref);
  }
}

// ---------------------------------------------------------------------------
// Planned autograd overloads: values and gradients bitwise identical to
// the unplanned ops at every thread count.
// ---------------------------------------------------------------------------

struct ForwardBackward {
  Tensor value;
  std::vector<Tensor> grads;
};

/// Runs `build` on freshly re-created Params, sums the squared output,
/// and returns the output value plus every leaf gradient.
ForwardBackward RunTaped(
    const std::vector<Tensor>& leaves,
    const std::function<Variable(const std::vector<Variable>&)>& build) {
  std::vector<Variable> params;
  params.reserve(leaves.size());
  for (const Tensor& t : leaves) params.push_back(Variable::Param(t));
  Variable out = build(params);
  Sum(Square(out)).Backward();
  ForwardBackward result;
  result.value = out.value();
  for (const Variable& p : params) result.grads.push_back(p.grad());
  return result;
}

void ExpectPlannedMatchesUnplanned(
    const std::vector<Tensor>& leaves,
    const std::function<Variable(const std::vector<Variable>&)>& unplanned,
    const std::function<Variable(const std::vector<Variable>&)>& planned,
    const char* what) {
  ForwardBackward baseline;
  {
    ScopedBackendThreads scoped(1);
    baseline = RunTaped(leaves, unplanned);
  }
  for (int threads : kThreadCounts) {
    ScopedBackendThreads scoped(threads);
    const ForwardBackward got = RunTaped(leaves, planned);
    EXPECT_TRUE(BitwiseEqual(baseline.value, got.value))
        << what << " value diverged at " << threads << " threads";
    for (size_t i = 0; i < leaves.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(baseline.grads[i], got.grads[i]))
          << what << " grad " << i << " diverged at " << threads
          << " threads";
    }
  }
}

TEST(PlannedOpsTest, MatchUnplannedOpsBitwise) {
  const int nodes = 23;
  const int dim = 9;
  const int edges = 131;
  const Tensor h0 = RandomTensor(nodes, dim, 41);
  const Tensor e0 = RandomTensor(edges, dim, 42);
  const Tensor w0 = RandomTensor(edges, 1, 43);
  const std::vector<int> src = RandomIndex(edges, nodes, 44);
  const std::vector<int> dst = RandomIndex(edges, nodes, 45);
  const auto plan =
      std::make_shared<const MessagePlan>(MessagePlan::Build(src, dst, nodes));
  const SegmentPlanPtr by_src = BySrc(plan);
  const SegmentPlanPtr by_dst = ByDst(plan);

  ExpectPlannedMatchesUnplanned(
      {h0},
      [&](const std::vector<Variable>& p) { return RowGather(p[0], src); },
      [&](const std::vector<Variable>& p) { return RowGather(p[0], by_src); },
      "RowGather");
  ExpectPlannedMatchesUnplanned(
      {e0},
      [&](const std::vector<Variable>& p) {
        return ScatterAddRows(p[0], dst, nodes);
      },
      [&](const std::vector<Variable>& p) {
        return ScatterAddRows(p[0], by_dst);
      },
      "ScatterAddRows");
  ExpectPlannedMatchesUnplanned(
      {e0},
      [&](const std::vector<Variable>& p) {
        return SegmentMean(p[0], dst, nodes);
      },
      [&](const std::vector<Variable>& p) {
        return SegmentMean(p[0], by_dst);
      },
      "SegmentMean");
  ExpectPlannedMatchesUnplanned(
      {e0},
      [&](const std::vector<Variable>& p) {
        return SegmentMax(p[0], dst, nodes);
      },
      [&](const std::vector<Variable>& p) { return SegmentMax(p[0], by_dst); },
      "SegmentMax");
  ExpectPlannedMatchesUnplanned(
      {e0},
      [&](const std::vector<Variable>& p) {
        return SegmentMin(p[0], dst, nodes);
      },
      [&](const std::vector<Variable>& p) { return SegmentMin(p[0], by_dst); },
      "SegmentMin");
  ExpectPlannedMatchesUnplanned(
      {h0},
      [&](const std::vector<Variable>& p) {
        return ScatterAddRows(RowGather(p[0], src), dst, nodes);
      },
      [&](const std::vector<Variable>& p) {
        return GatherScatter(p[0], plan);
      },
      "GatherScatter");
  ExpectPlannedMatchesUnplanned(
      {h0, w0},
      [&](const std::vector<Variable>& p) {
        return ScatterAddRows(MulColVec(RowGather(p[0], src), p[1]), dst,
                              nodes);
      },
      [&](const std::vector<Variable>& p) {
        return GatherScatterWeighted(p[0], p[1], plan);
      },
      "GatherScatterWeighted");
}

TEST(PlannedOpsTest, GradcheckPassesUnderParallelBackend) {
  ScopedBackendThreads scoped(8);
  Rng rng(46);
  const int nodes = 10;
  const int dim = 5;
  const int edges = 24;
  Variable h = Variable::Param(Tensor::RandomNormal(nodes, dim, &rng));
  Variable w = Variable::Param(Tensor::RandomNormal(edges, 1, &rng));
  const std::vector<int> src = RandomIndex(edges, nodes, 47);
  const std::vector<int> dst = RandomIndex(edges, nodes, 48);
  const auto plan =
      std::make_shared<const MessagePlan>(MessagePlan::Build(src, dst, nodes));
  GradCheckResult result = CheckGradients({h, w}, [&] {
    Variable weighted = GatherScatterWeighted(h, w, plan);
    Variable mean = SegmentMean(RowGather(h, BySrc(plan)), ByDst(plan));
    Variable extreme = SegmentMax(RowGather(h, ByDst(plan)), BySrc(plan));
    return Sum(Square(Add(Add(weighted, mean), extreme)));
  });
  EXPECT_LT(result.max_relative_error, 5e-2)
      << "worst leaf " << result.worst_leaf << " element "
      << result.worst_element;
}

// ---------------------------------------------------------------------------
// Batch plans: construction, pooled subgraphs, and conv-level identity.
// ---------------------------------------------------------------------------

GraphBatch RandomPlanBatch(uint64_t seed, bool include_degenerate) {
  Rng rng(seed);
  const int feature_dim = 6;
  std::vector<Graph> graphs;
  // A normal graph with random edges (possibly isolated nodes).
  Graph dense(5 + static_cast<int>(rng.UniformInt(0, 4)), feature_dim);
  const int num_edges = static_cast<int>(rng.UniformInt(4, 14));
  for (int e = 0; e < num_edges; ++e) {
    dense.AddEdge(
        static_cast<int>(rng.UniformInt(0, dense.num_nodes() - 1)),
        static_cast<int>(rng.UniformInt(0, dense.num_nodes() - 1)));
  }
  graphs.push_back(std::move(dense));
  if (include_degenerate) {
    graphs.emplace_back(4, feature_dim);  // Edgeless, all isolated.
    graphs.emplace_back(1, feature_dim);  // Single node.
  }
  std::vector<const Graph*> ptrs;
  for (Graph& g : graphs) {
    g.x = Tensor::RandomNormal(g.num_nodes(), feature_dim, &rng);
    g.label = 0;
    ptrs.push_back(&g);
  }
  return GraphBatch::FromGraphs(ptrs);
}

void ExpectPlansConsistent(const GraphBatch& batch) {
  ASSERT_TRUE(batch.has_plans());
  // in_degree must agree with a direct recount.
  std::vector<int> expected(static_cast<size_t>(batch.num_nodes), 0);
  for (int v : batch.edge_dst) ++expected[static_cast<size_t>(v)];
  EXPECT_EQ(batch.in_degree, expected);
  // The plans index the batch's own edge vectors.
  EXPECT_EQ(batch.plan->src(), batch.edge_src);
  EXPECT_EQ(batch.plan->dst(), batch.edge_dst);
  // Self-loop plan: original edges then one loop per node.
  ASSERT_EQ(batch.self_loop_plan->num_edges(),
            static_cast<int>(batch.edge_src.size()) + batch.num_nodes);
  for (int v = 0; v < batch.num_nodes; ++v) {
    const size_t i = batch.edge_src.size() + static_cast<size_t>(v);
    EXPECT_EQ(batch.self_loop_plan->src()[i], v);
    EXPECT_EQ(batch.self_loop_plan->dst()[i], v);
  }
  EXPECT_EQ(batch.node_plan->items, batch.node_graph);
  EXPECT_EQ(batch.gcn_self_coeff.rows(), batch.num_nodes);
}

TEST(GraphBatchPlanTest, FromGraphsBuildsConsistentPlans) {
  for (uint64_t seed : {50u, 51u, 52u, 53u}) {
    ExpectPlansConsistent(RandomPlanBatch(seed, /*include_degenerate=*/true));
  }
}

TEST(GraphBatchPlanTest, InducedSubgraphsOwnTheirPlans) {
  for (uint64_t seed : {54u, 55u, 56u}) {
    const GraphBatch batch =
        RandomPlanBatch(seed, /*include_degenerate=*/true);
    Rng rng(seed + 100);
    std::vector<int> kept;
    for (int v = 0; v < batch.num_nodes; ++v) {
      if (rng.UniformInt(0, 2) != 0) kept.push_back(v);
    }
    if (kept.empty()) kept.push_back(0);
    const GraphBatch sub = InduceSubgraph(batch, kept);
    ExpectPlansConsistent(sub);
    // The parent's plans are untouched and distinct objects.
    EXPECT_NE(sub.plan.get(), batch.plan.get());
    ExpectPlansConsistent(batch);
  }
}

/// Strips the cached plans so conv layers take the unplanned fallback.
GraphBatch WithoutPlans(const GraphBatch& batch) {
  GraphBatch stripped = batch;
  stripped.plan.reset();
  stripped.self_loop_plan.reset();
  stripped.node_plan.reset();
  return stripped;
}

TEST(PlannedConvTest, AllConvsBitwiseIdenticalWithAndWithoutPlans) {
  for (uint64_t seed : {60u, 61u}) {
    const GraphBatch planned = RandomPlanBatch(seed, true);
    const GraphBatch stripped = WithoutPlans(planned);
    ASSERT_FALSE(stripped.has_plans());
    const int dim = planned.features.cols();

    Rng ctor_rng(seed);
    GinConv gin(dim, 8, &ctor_rng);
    GcnConv gcn(dim, 8, &ctor_rng);
    SageConv sage(dim, 8, &ctor_rng);
    PnaConv pna(dim, 8, /*delta=*/1.f, &ctor_rng);
    GatConv gat(dim, 8, /*num_heads=*/2, &ctor_rng);
    FactorGcnConv factor(dim, 8, /*num_factors=*/2, &ctor_rng);

    const std::vector<std::pair<
        const char*, std::function<Variable(const Variable&,
                                            const GraphBatch&)>>>
        convs = {
            {"gin",
             [&](const Variable& h, const GraphBatch& b) {
               return gin.Forward(h, b, /*training=*/false);
             }},
            {"gcn",
             [&](const Variable& h, const GraphBatch& b) {
               return gcn.Forward(h, b);
             }},
            {"sage",
             [&](const Variable& h, const GraphBatch& b) {
               return sage.Forward(h, b);
             }},
            {"pna",
             [&](const Variable& h, const GraphBatch& b) {
               return pna.Forward(h, b);
             }},
            {"gat",
             [&](const Variable& h, const GraphBatch& b) {
               return gat.Forward(h, b);
             }},
            {"factor",
             [&](const Variable& h, const GraphBatch& b) {
               return factor.Forward(h, b);
             }},
        };

    for (const auto& entry : convs) {
      const char* name = entry.first;
      const auto& forward = entry.second;
      auto run = [&](const GraphBatch& b, int threads) {
        ScopedBackendThreads scoped(threads);
        Variable h = Variable::Param(planned.features);
        Variable out = forward(h, b);
        Sum(Square(out)).Backward();
        return std::make_pair(out.value(), h.grad());
      };
      const auto [value_ref, grad_ref] = run(stripped, 1);
      for (int threads : kThreadCounts) {
        const auto [value, grad] = run(planned, threads);
        EXPECT_TRUE(BitwiseEqual(value_ref, value))
            << name << " planned value diverged at " << threads
            << " threads (seed " << seed << ")";
        EXPECT_TRUE(BitwiseEqual(grad_ref, grad))
            << name << " planned grad diverged at " << threads
            << " threads (seed " << seed << ")";
      }
    }
  }
}

TEST(PlannedConvTest, EncoderForwardBackwardSkipsUnplannedScatter) {
  const bool was_profiling = obs::ProfilingEnabled();
  obs::SetProfilingEnabled(true);
  obs::MetricsRegistry::Global().Reset();

  const GraphBatch batch = RandomPlanBatch(62, /*include_degenerate=*/true);
  Rng rng(63);
  EncoderConfig config;
  config.feature_dim = batch.features.cols();
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.f;
  config.virtual_node = true;
  {
    MessagePassingEncoder encoder(ConvKind::kGin, config, &rng);
    Sum(encoder.Encode(batch, /*training=*/false, &rng)).Backward();
  }
  {
    HierarchicalPoolEncoder encoder(PoolKind::kTopK, config, &rng);
    Sum(encoder.Encode(batch, /*training=*/false, &rng)).Backward();
  }

  std::int64_t unplanned_calls = -1;
  std::int64_t planned_calls = 0;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().GetSnapshot().counters) {
    if (name == "kernel/scatter_add_rows/calls") unplanned_calls = value;
    if (name == "kernel/scatter_planned/calls" ||
        name == "kernel/gather_scatter/calls" ||
        name == "kernel/gather_scatter_weighted/calls") {
      planned_calls += value;
    }
  }
  obs::SetProfilingEnabled(was_profiling);
  // The counter exists (registered with its op family) but never fired.
  EXPECT_EQ(unplanned_calls, 0)
      << "encoder still dispatches the unplanned full-scan scatter";
  EXPECT_GT(planned_calls, 0);
}

}  // namespace
}  // namespace oodgnn
