// Tests for the kernel/backend layer: every kernel is compared against
// a naive reference, and — the determinism contract — produces bitwise
// identical results under the serial backend and the parallel backend
// at 2 and 8 threads. A gradcheck run under ParallelBackend proves the
// backward pass is deterministic too.

#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/tensor/backend.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/kernels.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace oodgnn {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

Tensor RandomTensor(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::RandomNormal(rows, cols, &rng);
  // A sprinkle of exact zeros exercises the matmul zero-skip fast path.
  for (int i = 0; i < t.size(); i += 7) t[i] = 0.f;
  return t;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

/// Runs `op` (which must produce its result into a fresh Tensor) under
/// every thread count and asserts all results are bitwise identical to
/// the serial one and AllClose to `reference`.
void ExpectDeterministic(const std::function<Tensor()>& op,
                         const Tensor& reference, float tol = 1e-4f) {
  Tensor serial;
  {
    ScopedBackendThreads scoped(1);
    serial = op();
  }
  EXPECT_TRUE(AllClose(serial, reference, tol));
  for (int threads : kThreadCounts) {
    ScopedBackendThreads scoped(threads);
    Tensor got = op();
    EXPECT_TRUE(BitwiseEqual(serial, got))
        << "backend with " << threads << " threads diverged bitwise";
  }
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(103, 0);
  pool.ParallelFor(103, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<int> hits(64, 0);
  pool.ParallelFor(8, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      // Nested use from a worker (or from the caller's chunk) must not
      // deadlock; it runs the inner range inline.
      pool.ParallelFor(8, [&](int b2, int e2) {
        for (int j = b2; j < e2; ++j) ++hits[static_cast<size_t>(i * 8 + j)];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, StaticChunksAreContiguousAndComplete) {
  const auto [b0, e0] = ThreadPool::Chunk(10, 3, 0);
  const auto [b1, e1] = ThreadPool::Chunk(10, 3, 1);
  const auto [b2, e2] = ThreadPool::Chunk(10, 3, 2);
  EXPECT_EQ(b0, 0);
  EXPECT_EQ(e0, b1);
  EXPECT_EQ(e1, b2);
  EXPECT_EQ(e2, 10);
}

TEST(KernelsTest, MatMulMatchesNaiveBitwiseAcrossThreads) {
  const Tensor a = RandomTensor(37, 29, 1);
  const Tensor b = RandomTensor(29, 43, 2);
  // Naive ikj reference with ascending-k accumulation per output cell —
  // the same per-element order the blocked kernel commits to.
  Tensor reference(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int p = 0; p < a.cols(); ++p) {
      for (int j = 0; j < b.cols(); ++j) {
        reference.at(i, j) += a.at(i, p) * b.at(p, j);
      }
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), b.cols());
        GetBackend().MatMulAcc(a, b, &out);
        return out;
      },
      reference);
}

TEST(KernelsTest, MatMulTransAMatchesNaiveBitwiseAcrossThreads) {
  const Tensor a = RandomTensor(31, 17, 3);
  const Tensor b = RandomTensor(31, 23, 4);
  Tensor reference(a.cols(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int p = 0; p < a.cols(); ++p) {
      for (int j = 0; j < b.cols(); ++j) {
        reference.at(p, j) += a.at(i, p) * b.at(i, j);
      }
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(a.cols(), b.cols());
        GetBackend().MatMulTransAAcc(a, b, &out);
        return out;
      },
      reference);
}

TEST(KernelsTest, MatMulTransBMatchesNaiveBitwiseAcrossThreads) {
  const Tensor a = RandomTensor(19, 41, 5);
  const Tensor b = RandomTensor(27, 41, 6);
  Tensor reference(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      float acc = 0.f;
      for (int p = 0; p < a.cols(); ++p) acc += a.at(i, p) * b.at(j, p);
      reference.at(i, j) = acc;
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), b.rows());
        GetBackend().MatMulTransBAcc(a, b, &out);
        return out;
      },
      reference);
}

TEST(KernelsTest, ElementwiseKernelsAcrossThreads) {
  const Tensor x = RandomTensor(23, 31, 7);
  const Tensor g = RandomTensor(23, 31, 8);
  ExpectDeterministic(
      [&] {
        Tensor y = x;
        GetBackend().Axpy(2.5f, g, &y);
        GetBackend().ScaleInPlace(0.5f, &y);
        GetBackend().AddScalarAcc(-1.f, &y);
        Tensor out(x.rows(), x.cols());
        GetBackend().Hadamard(y, g, &out);
        GetBackend().HadamardAcc(x, g, &out);
        return out;
      },
      [&] {
        Tensor y = x;
        for (int i = 0; i < y.size(); ++i) {
          y[i] = (y[i] + 2.5f * g[i]) * 0.5f - 1.f;
        }
        Tensor out(x.rows(), x.cols());
        for (int i = 0; i < out.size(); ++i) out[i] = y[i] * g[i] + x[i] * g[i];
        return out;
      }());
}

TEST(KernelsTest, ReductionsAndBroadcastsAcrossThreads) {
  const Tensor a = RandomTensor(29, 37, 9);
  Tensor colsum_ref(1, a.cols());
  Tensor rowsum_ref(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      colsum_ref.at(0, c) += a.at(r, c);
      rowsum_ref.at(r, 0) += a.at(r, c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(1, a.cols());
        GetBackend().ColumnSumAcc(a, &out);
        return out;
      },
      colsum_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), 1);
        GetBackend().RowSumAcc(a, &out);
        return out;
      },
      rowsum_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(a.rows(), a.cols());
        GetBackend().RowBroadcastAcc(colsum_ref, &out);
        GetBackend().ColBroadcastAcc(rowsum_ref, &out);
        GetBackend().AddTransposedAcc(a.Transposed(), &out);
        return out;
      },
      [&] {
        Tensor out(a.rows(), a.cols());
        for (int r = 0; r < a.rows(); ++r) {
          for (int c = 0; c < a.cols(); ++c) {
            out.at(r, c) =
                colsum_ref.at(0, c) + rowsum_ref.at(r, 0) + a.at(r, c);
          }
        }
        return out;
      }());
}

TEST(KernelsTest, WeightedReductionsAcrossThreads) {
  const Tensor x = RandomTensor(21, 33, 10);
  const Tensor y = RandomTensor(21, 33, 11);
  Tensor col_ref(1, x.cols());
  Tensor row_ref(x.rows(), 1);
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.cols(); ++c) {
      col_ref.at(0, c) += x.at(r, c) * y.at(r, c);
      row_ref.at(r, 0) += x.at(r, c) * y.at(r, c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(1, x.cols());
        GetBackend().HadamardColumnSumAcc(x, y, &out);
        return out;
      },
      col_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(x.rows(), 1);
        GetBackend().HadamardRowSumAcc(x, y, &out);
        return out;
      },
      row_ref);
}

TEST(KernelsTest, SoftmaxRowsAcrossThreads) {
  const Tensor a = RandomTensor(33, 13, 12);
  const Tensor g = RandomTensor(33, 13, 13);
  Tensor y_serial(a.rows(), a.cols());
  {
    ScopedBackendThreads scoped(1);
    GetBackend().SoftmaxRows(a, &y_serial);
  }
  for (int r = 0; r < a.rows(); ++r) {
    float total = 0.f;
    for (int c = 0; c < a.cols(); ++c) total += y_serial.at(r, c);
    EXPECT_NEAR(total, 1.f, 1e-5f);
  }
  ExpectDeterministic(
      [&] {
        Tensor y(a.rows(), a.cols());
        GetBackend().SoftmaxRows(a, &y);
        Tensor out(a.rows(), a.cols());
        GetBackend().SoftmaxRowsBackwardAcc(y, g, &out);
        return out;
      },
      [&] {
        Tensor out(a.rows(), a.cols());
        for (int r = 0; r < a.rows(); ++r) {
          float dot = 0.f;
          for (int c = 0; c < a.cols(); ++c) {
            dot += g.at(r, c) * y_serial.at(r, c);
          }
          for (int c = 0; c < a.cols(); ++c) {
            out.at(r, c) = y_serial.at(r, c) * (g.at(r, c) - dot);
          }
        }
        return out;
      }());
}

TEST(KernelsTest, GatherScatterSegmentAcrossThreads) {
  Rng rng(14);
  const int nodes = 41;
  const int dim = 19;
  const Tensor h = RandomTensor(nodes, dim, 15);
  std::vector<int> index(97);
  for (int& v : index) {
    v = static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  // Gather.
  Tensor gather_ref(static_cast<int>(index.size()), dim);
  for (size_t i = 0; i < index.size(); ++i) {
    for (int c = 0; c < dim; ++c) {
      gather_ref.at(static_cast<int>(i), c) = h.at(index[i], c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(static_cast<int>(index.size()), dim);
        GetBackend().GatherRows(h, index, &out);
        return out;
      },
      gather_ref);
  // Scatter-add (segment sum) and its adjoint.
  Tensor scatter_ref(nodes, dim);
  for (size_t i = 0; i < index.size(); ++i) {
    for (int c = 0; c < dim; ++c) {
      scatter_ref.at(index[i], c) += gather_ref.at(static_cast<int>(i), c);
    }
  }
  ExpectDeterministic(
      [&] {
        Tensor out(nodes, dim);
        GetBackend().ScatterAddRowsAcc(gather_ref, index, &out);
        return out;
      },
      scatter_ref);
  ExpectDeterministic(
      [&] {
        Tensor out(static_cast<int>(index.size()), dim);
        GetBackend().GatherRowsAcc(scatter_ref, index, &out);
        return out;
      },
      [&] {
        Tensor out(static_cast<int>(index.size()), dim);
        for (size_t i = 0; i < index.size(); ++i) {
          for (int c = 0; c < dim; ++c) {
            out.at(static_cast<int>(i), c) = scatter_ref.at(index[i], c);
          }
        }
        return out;
      }());
}

TEST(KernelsTest, SegmentExtremeAcrossThreads) {
  Rng rng(16);
  const int rows = 53;
  const int dim = 11;
  const int num_segments = 9;  // Segment 8 stays empty.
  const Tensor a = RandomTensor(rows, dim, 17);
  std::vector<int> segment(static_cast<size_t>(rows));
  for (int& s : segment) {
    s = static_cast<int>(rng.UniformInt(0, num_segments - 2));
  }
  for (bool is_max : {true, false}) {
    Tensor ref(num_segments, dim);
    std::vector<int> arg_ref(static_cast<size_t>(num_segments) * dim, -1);
    for (int r = 0; r < rows; ++r) {
      const int s = segment[static_cast<size_t>(r)];
      for (int c = 0; c < dim; ++c) {
        const size_t cell = static_cast<size_t>(s) * dim + c;
        const bool better =
            arg_ref[cell] < 0 ||
            (is_max ? a.at(r, c) > ref.at(s, c) : a.at(r, c) < ref.at(s, c));
        if (better) {
          ref.at(s, c) = a.at(r, c);
          arg_ref[cell] = r;
        }
      }
    }
    ExpectDeterministic(
        [&] {
          Tensor out(num_segments, dim);
          std::vector<int> arg(static_cast<size_t>(num_segments) * dim, -1);
          GetBackend().SegmentExtreme(a, segment, is_max, &out, &arg);
          EXPECT_EQ(arg, arg_ref);
          return out;
        },
        ref);
    // Backward routes each upstream cell to its recorded argmax row.
    const Tensor g = RandomTensor(num_segments, dim, 18);
    ExpectDeterministic(
        [&] {
          Tensor out(rows, dim);
          GetBackend().SegmentExtremeBackwardAcc(g, arg_ref, &out);
          return out;
        },
        [&] {
          Tensor out(rows, dim);
          for (int s = 0; s < num_segments; ++s) {
            for (int c = 0; c < dim; ++c) {
              const int r = arg_ref[static_cast<size_t>(s) * dim + c];
              if (r >= 0) out.at(r, c) += g.at(s, c);
            }
          }
          return out;
        }());
  }
}

TEST(KernelsTest, CopyRowsToAcrossThreads) {
  const Tensor src = RandomTensor(17, 21, 19);
  ExpectDeterministic(
      [&] {
        Tensor dst(40, 21);
        GetBackend().CopyRowsTo(src, &dst, 5);
        return dst;
      },
      [&] {
        Tensor dst(40, 21);
        for (int r = 0; r < src.rows(); ++r) {
          for (int c = 0; c < src.cols(); ++c) {
            dst.at(5 + r, c) = src.at(r, c);
          }
        }
        return dst;
      }());
}

// ---------------------------------------------------------------------------
// Backward determinism through the autograd layer.
// ---------------------------------------------------------------------------

/// A message-passing-shaped composite: gather → matmul → relu → scatter
/// → softmax → weighted sum. Exercises every hot backward kernel.
Variable CompositeLoss(const Variable& h, const Variable& w,
                       const std::vector<int>& src,
                       const std::vector<int>& dst, int nodes) {
  Variable messages = RowGather(h, src);
  Variable mixed = Relu(MatMul(messages, w));
  Variable aggregated = ScatterAddRows(mixed, dst, nodes);
  Variable scores = SoftmaxRows(aggregated);
  return Sum(Square(scores));
}

TEST(KernelsTest, GradcheckPassesUnderParallelBackend) {
  ScopedBackendThreads scoped(8);
  Rng rng(20);
  const int nodes = 12;
  const int dim = 6;
  Variable h = Variable::Param(Tensor::RandomNormal(nodes, dim, &rng));
  Variable w = Variable::Param(Tensor::RandomNormal(dim, dim, &rng));
  std::vector<int> src(30);
  std::vector<int> dst(30);
  for (size_t e = 0; e < src.size(); ++e) {
    src[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
    dst[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  GradCheckResult result = CheckGradients(
      {h, w}, [&] { return CompositeLoss(h, w, src, dst, nodes); });
  EXPECT_LT(result.max_relative_error, 5e-2)
      << "worst leaf " << result.worst_leaf << " element "
      << result.worst_element;
}

TEST(KernelsTest, BackwardGradientsBitwiseIdenticalAcrossThreads) {
  Rng rng(21);
  const int nodes = 40;
  const int dim = 24;
  const Tensor h0 = Tensor::RandomNormal(nodes, dim, &rng);
  const Tensor w0 = Tensor::RandomNormal(dim, dim, &rng);
  std::vector<int> src(160);
  std::vector<int> dst(160);
  for (size_t e = 0; e < src.size(); ++e) {
    src[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
    dst[e] = static_cast<int>(rng.UniformInt(0, nodes - 1));
  }
  auto run = [&](int threads) {
    ScopedBackendThreads scoped(threads);
    Variable h = Variable::Param(h0);
    Variable w = Variable::Param(w0);
    Variable loss = CompositeLoss(h, w, src, dst, nodes);
    loss.Backward();
    return std::make_pair(h.grad(), w.grad());
  };
  const auto [h_serial, w_serial] = run(1);
  for (int threads : kThreadCounts) {
    const auto [h_grad, w_grad] = run(threads);
    EXPECT_TRUE(BitwiseEqual(h_serial, h_grad))
        << "h grad diverged at " << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(w_serial, w_grad))
        << "w grad diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace oodgnn
