#include "src/tensor/ops.h"

#include <cmath>
#include <functional>
#include <string>

#include "gtest/gtest.h"
#include "src/tensor/gradcheck.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

Tensor RandomTensor(int rows, int cols, uint64_t seed, float lo = -1.f,
                    float hi = 1.f) {
  Rng rng(seed);
  return Tensor::RandomUniform(rows, cols, &rng, lo, hi);
}

// ---------------------------------------------------------------------------
// Forward-value tests.
// ---------------------------------------------------------------------------

TEST(OpsForwardTest, MatMulMatchesManual) {
  Variable a = Variable::Constant(Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6}));
  Variable b =
      Variable::Constant(Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12}));
  Tensor out = MatMul(a, b).value();
  EXPECT_FLOAT_EQ(out.at(0, 0), 58.f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64.f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139.f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154.f);
}

TEST(OpsForwardTest, AddSubMul) {
  Variable a = Variable::Constant(Tensor::FromData(1, 3, {1, 2, 3}));
  Variable b = Variable::Constant(Tensor::FromData(1, 3, {4, 5, 6}));
  EXPECT_FLOAT_EQ(Add(a, b).value()[2], 9.f);
  EXPECT_FLOAT_EQ(Sub(a, b).value()[0], -3.f);
  EXPECT_FLOAT_EQ(Mul(a, b).value()[1], 10.f);
}

TEST(OpsForwardTest, RowAndColBroadcasts) {
  Variable a = Variable::Constant(Tensor::FromData(2, 2, {1, 2, 3, 4}));
  Variable row = Variable::Constant(Tensor::RowVector({10, 20}));
  Variable col = Variable::Constant(Tensor::ColVector({2, 3}));
  EXPECT_FLOAT_EQ(AddRowVec(a, row).value().at(1, 1), 24.f);
  EXPECT_FLOAT_EQ(MulRowVec(a, row).value().at(0, 1), 40.f);
  EXPECT_FLOAT_EQ(DivRowVec(a, row).value().at(1, 0), 0.3f);
  EXPECT_FLOAT_EQ(MulColVec(a, col).value().at(1, 0), 9.f);
}

TEST(OpsForwardTest, Reductions) {
  Variable a = Variable::Constant(Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6}));
  EXPECT_FLOAT_EQ(Sum(a).value()[0], 21.f);
  EXPECT_FLOAT_EQ(MeanAll(a).value()[0], 3.5f);
  Tensor rows = SumRows(a).value();
  EXPECT_FLOAT_EQ(rows.at(0, 0), 5.f);
  EXPECT_FLOAT_EQ(rows.at(0, 2), 9.f);
  Tensor cols = SumCols(a).value();
  EXPECT_FLOAT_EQ(cols.at(0, 0), 6.f);
  EXPECT_FLOAT_EQ(cols.at(1, 0), 15.f);
  Tensor means = MeanRows(a).value();
  EXPECT_FLOAT_EQ(means.at(0, 1), 3.5f);
}

TEST(OpsForwardTest, Nonlinearities) {
  Variable a = Variable::Constant(Tensor::FromData(1, 4, {-2, -0.5, 0.5, 2}));
  Tensor relu = Relu(a).value();
  EXPECT_FLOAT_EQ(relu[0], 0.f);
  EXPECT_FLOAT_EQ(relu[3], 2.f);
  Tensor sig = Sigmoid(a).value();
  EXPECT_NEAR(sig[3], 0.8808f, 1e-4);
  Tensor tanh_v = TanhOp(a).value();
  EXPECT_NEAR(tanh_v[0], -0.9640f, 1e-4);
  EXPECT_NEAR(CosOp(a).value()[2], std::cos(0.5f), 1e-6);
  EXPECT_NEAR(AbsOp(a).value()[1], 0.5f, 1e-6);
  EXPECT_NEAR(Square(a).value()[0], 4.f, 1e-6);
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Variable a = Variable::Constant(RandomTensor(4, 7, 99, -3, 3));
  Tensor sm = SoftmaxRows(a).value();
  for (int r = 0; r < sm.rows(); ++r) {
    float total = 0.f;
    for (int c = 0; c < sm.cols(); ++c) {
      total += sm.at(r, c);
      EXPECT_GT(sm.at(r, c), 0.f);
    }
    EXPECT_NEAR(total, 1.f, 1e-5);
  }
}

TEST(OpsForwardTest, SoftmaxIsShiftInvariant) {
  Variable a = Variable::Constant(Tensor::FromData(1, 3, {1, 2, 3}));
  Variable b = Variable::Constant(Tensor::FromData(1, 3, {1001, 1002, 1003}));
  EXPECT_TRUE(AllClose(SoftmaxRows(a).value(), SoftmaxRows(b).value(), 1e-5f));
}

TEST(OpsForwardTest, GatherScatter) {
  Variable a = Variable::Constant(Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6}));
  Tensor gathered = RowGather(a, {2, 0, 2}).value();
  EXPECT_FLOAT_EQ(gathered.at(0, 0), 5.f);
  EXPECT_FLOAT_EQ(gathered.at(1, 1), 2.f);
  EXPECT_FLOAT_EQ(gathered.at(2, 1), 6.f);

  Tensor scattered = ScatterAddRows(a, {1, 1, 0}, 2).value();
  EXPECT_FLOAT_EQ(scattered.at(1, 0), 4.f);   // rows 0+1
  EXPECT_FLOAT_EQ(scattered.at(0, 1), 6.f);   // row 2
}

TEST(OpsForwardTest, SegmentOps) {
  Variable a =
      Variable::Constant(Tensor::FromData(4, 2, {1, 2, 3, 4, 5, 6, 7, 8}));
  std::vector<int> seg = {0, 0, 1, 1};
  Tensor sum = SegmentSum(a, seg, 2).value();
  EXPECT_FLOAT_EQ(sum.at(0, 0), 4.f);
  EXPECT_FLOAT_EQ(sum.at(1, 1), 14.f);
  Tensor mean = SegmentMean(a, seg, 2).value();
  EXPECT_FLOAT_EQ(mean.at(0, 0), 2.f);
  EXPECT_FLOAT_EQ(mean.at(1, 1), 7.f);
  Tensor max = SegmentMax(a, seg, 2).value();
  EXPECT_FLOAT_EQ(max.at(0, 1), 4.f);
  EXPECT_FLOAT_EQ(max.at(1, 0), 7.f);
  Tensor min = SegmentMin(a, seg, 2).value();
  EXPECT_FLOAT_EQ(min.at(0, 1), 2.f);
  EXPECT_FLOAT_EQ(min.at(1, 0), 5.f);
}

TEST(OpsForwardTest, EmptySegmentsAreZero) {
  Variable a = Variable::Constant(Tensor::FromData(2, 1, {3, 4}));
  std::vector<int> seg = {0, 0};
  Tensor max = SegmentMax(a, seg, 3).value();
  EXPECT_FLOAT_EQ(max.at(1, 0), 0.f);
  EXPECT_FLOAT_EQ(max.at(2, 0), 0.f);
  Tensor mean = SegmentMean(a, seg, 3).value();
  EXPECT_FLOAT_EQ(mean.at(2, 0), 0.f);
}

TEST(OpsForwardTest, ConcatAndSlice) {
  Variable a = Variable::Constant(Tensor::FromData(2, 1, {1, 2}));
  Variable b = Variable::Constant(Tensor::FromData(2, 2, {3, 4, 5, 6}));
  Tensor cols = ConcatCols({a, b}).value();
  EXPECT_EQ(cols.cols(), 3);
  EXPECT_FLOAT_EQ(cols.at(1, 2), 6.f);

  Variable c = Variable::Constant(Tensor::FromData(1, 1, {9}));
  Tensor rows = ConcatRows({a, c}).value();
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_FLOAT_EQ(rows.at(2, 0), 9.f);

  Tensor sliced = SliceRows(b, 1, 1).value();
  EXPECT_EQ(sliced.rows(), 1);
  EXPECT_FLOAT_EQ(sliced.at(0, 1), 6.f);
}

TEST(OpsForwardTest, ClampValues) {
  Variable a = Variable::Constant(Tensor::FromData(1, 3, {-5, 0.5, 5}));
  Tensor out = Clamp(a, 0.f, 1.f).value();
  EXPECT_FLOAT_EQ(out[0], 0.f);
  EXPECT_FLOAT_EQ(out[1], 0.5f);
  EXPECT_FLOAT_EQ(out[2], 1.f);
}

TEST(OpsForwardTest, DropoutEvalIsIdentity) {
  Rng rng(5);
  Variable a = Variable::Constant(RandomTensor(4, 4, 1));
  Variable out = Dropout(a, 0.5f, &rng, /*training=*/false);
  EXPECT_TRUE(AllClose(out.value(), a.value()));
}

TEST(OpsForwardTest, DropoutTrainingPreservesMeanApproximately) {
  Rng rng(6);
  Variable a = Variable::Constant(Tensor(200, 200, 1.f));
  Variable out = Dropout(a, 0.3f, &rng, /*training=*/true);
  EXPECT_NEAR(out.value().Sum() / out.value().size(), 1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Backward: basic chain + accumulation semantics.
// ---------------------------------------------------------------------------

TEST(AutogradTest, SimpleChainGradient) {
  Variable x = Variable::Param(Tensor::FromData(1, 1, {3.f}));
  Variable y = Square(x);  // y = x², dy/dx = 6.
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Variable x = Variable::Param(Tensor::FromData(1, 1, {2.f}));
  Square(x).Backward();
  Square(x).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.f);  // 4 + 4.
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.f);
}

TEST(AutogradTest, DiamondGraphSumsBothPaths) {
  Variable x = Variable::Param(Tensor::FromData(1, 1, {3.f}));
  Variable a = Scale(x, 2.f);
  Variable b = Scale(x, 5.f);
  Variable y = Add(a, b);  // y = 7x.
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 7.f);
}

TEST(AutogradTest, ReusedNodeGradIsCorrect) {
  Variable x = Variable::Param(Tensor::FromData(1, 1, {2.f}));
  Variable y = Mul(x, x);  // y = x², both operands same node.
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 4.f);
}

TEST(AutogradTest, DetachBlocksGradient) {
  Variable x = Variable::Param(Tensor::FromData(1, 1, {3.f}));
  Variable y = Sum(Mul(Square(x).Detach(), x));  // treated as 9·x.
  x.ZeroGrad();
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 9.f);
}

TEST(AutogradTest, ConstantsReceiveNoBackward) {
  Variable c = Variable::Constant(Tensor::FromData(1, 1, {3.f}));
  Variable y = Square(c);
  EXPECT_FALSE(y.requires_grad());
  y.Backward();  // Must not crash.
}

// ---------------------------------------------------------------------------
// Parameterized finite-difference gradient checks over the op grid.
// ---------------------------------------------------------------------------

struct GradCase {
  std::string name;
  // Builds leaves + a scalar function of them.
  std::function<std::pair<std::vector<Variable>,
                          std::function<Variable()>>()>
      make;
};

GradCase Case(std::string name,
              std::function<std::pair<std::vector<Variable>,
                                      std::function<Variable()>>()>
                  make) {
  return GradCase{std::move(name), std::move(make)};
}

class OpGradCheck : public ::testing::TestWithParam<GradCase> {};

TEST_P(OpGradCheck, AnalyticMatchesNumeric) {
  auto [leaves, fn] = GetParam().make();
  GradCheckResult result = CheckGradients(leaves, fn);
  EXPECT_LT(result.max_relative_error, 5e-2)
      << "worst leaf " << result.worst_leaf << " element "
      << result.worst_element;
}

std::vector<GradCase> MakeGradCases() {
  std::vector<GradCase> cases;
  cases.push_back(Case("MatMul", [] {
    Variable a = Variable::Param(RandomTensor(3, 4, 1));
    Variable b = Variable::Param(RandomTensor(4, 2, 2));
    auto fn = [a, b] { return Sum(Square(MatMul(a, b))); };
    return std::make_pair(std::vector<Variable>{a, b},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("AddSubMul", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 3));
    Variable b = Variable::Param(RandomTensor(2, 3, 4));
    auto fn = [a, b] {
      return Sum(Square(Mul(Add(a, b), Sub(a, b))));
    };
    return std::make_pair(std::vector<Variable>{a, b},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("AddRowVec", [] {
    Variable a = Variable::Param(RandomTensor(3, 2, 5));
    Variable b = Variable::Param(RandomTensor(1, 2, 6));
    auto fn = [a, b] { return Sum(Square(AddRowVec(a, b))); };
    return std::make_pair(std::vector<Variable>{a, b},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("MulRowVec", [] {
    Variable a = Variable::Param(RandomTensor(3, 2, 7));
    Variable b = Variable::Param(RandomTensor(1, 2, 8));
    auto fn = [a, b] { return Sum(Square(MulRowVec(a, b))); };
    return std::make_pair(std::vector<Variable>{a, b},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("DivRowVec", [] {
    Variable a = Variable::Param(RandomTensor(3, 2, 9));
    Variable b = Variable::Param(RandomTensor(1, 2, 10, 1.f, 2.f));
    auto fn = [a, b] { return Sum(Square(DivRowVec(a, b))); };
    return std::make_pair(std::vector<Variable>{a, b},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("MulColVec", [] {
    Variable a = Variable::Param(RandomTensor(3, 2, 11));
    Variable w = Variable::Param(RandomTensor(3, 1, 12));
    auto fn = [a, w] { return Sum(Square(MulColVec(a, w))); };
    return std::make_pair(std::vector<Variable>{a, w},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("MulByScalarVar", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 13));
    Variable s = Variable::Param(RandomTensor(1, 1, 14));
    auto fn = [a, s] { return Sum(Square(MulByScalarVar(a, s))); };
    return std::make_pair(std::vector<Variable>{a, s},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("Sigmoid", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 15, -2.f, 2.f));
    auto fn = [a] { return Sum(Sigmoid(a)); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("Tanh", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 16, -2.f, 2.f));
    auto fn = [a] { return Sum(TanhOp(a)); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("Cos", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 17, -3.f, 3.f));
    auto fn = [a] { return Sum(CosOp(a)); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("ExpLog", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 18, 0.5f, 2.f));
    auto fn = [a] { return Sum(LogOp(ExpOp(a))); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("Sqrt", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 19, 1.f, 4.f));
    auto fn = [a] { return Sum(SqrtOp(a)); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("Reciprocal", [] {
    Variable a = Variable::Param(RandomTensor(2, 3, 20, 1.f, 3.f));
    auto fn = [a] { return Sum(Reciprocal(a)); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("SoftmaxRows", [] {
    Variable a = Variable::Param(RandomTensor(3, 4, 21, -2.f, 2.f));
    auto fn = [a] { return Sum(Square(SoftmaxRows(a))); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("Transpose", [] {
    Variable a = Variable::Param(RandomTensor(3, 2, 22));
    auto fn = [a] { return Sum(Square(Transpose(a))); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("SumRowsCols", [] {
    Variable a = Variable::Param(RandomTensor(3, 4, 23));
    auto fn = [a] {
      return Add(Sum(Square(SumRows(a))), Sum(Square(SumCols(a))));
    };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("RowGather", [] {
    Variable a = Variable::Param(RandomTensor(4, 3, 24));
    auto fn = [a] {
      return Sum(Square(RowGather(a, {0, 2, 2, 3})));
    };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("ScatterAddRows", [] {
    Variable a = Variable::Param(RandomTensor(5, 2, 25));
    auto fn = [a] {
      return Sum(Square(ScatterAddRows(a, {0, 1, 1, 2, 0}, 3)));
    };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("SegmentMean", [] {
    Variable a = Variable::Param(RandomTensor(5, 2, 26));
    auto fn = [a] {
      return Sum(Square(SegmentMean(a, {0, 0, 1, 1, 1}, 2)));
    };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("SegmentMax", [] {
    // Well-separated values so the argmax is stable under ±eps.
    Variable a = Variable::Param(
        Tensor::FromData(4, 2, {0.1f, 0.9f, 0.8f, 0.2f, 0.3f, 0.7f, 0.95f,
                                0.05f}));
    auto fn = [a] {
      return Sum(Square(SegmentMax(a, {0, 0, 1, 1}, 2)));
    };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("SegmentMin", [] {
    Variable a = Variable::Param(
        Tensor::FromData(4, 2, {0.1f, 0.9f, 0.8f, 0.2f, 0.3f, 0.7f, 0.95f,
                                0.05f}));
    auto fn = [a] {
      return Sum(Square(SegmentMin(a, {0, 0, 1, 1}, 2)));
    };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("ConcatColsRows", [] {
    Variable a = Variable::Param(RandomTensor(2, 2, 27));
    Variable b = Variable::Param(RandomTensor(2, 3, 28));
    Variable c = Variable::Param(RandomTensor(1, 5, 29));
    auto fn = [a, b, c] {
      return Sum(Square(ConcatRows({ConcatCols({a, b}), c})));
    };
    return std::make_pair(std::vector<Variable>{a, b, c},
                          std::function<Variable()>(fn));
  }));
  cases.push_back(Case("SliceRows", [] {
    Variable a = Variable::Param(RandomTensor(4, 3, 30));
    auto fn = [a] { return Sum(Square(SliceRows(a, 1, 2))); };
    return std::make_pair(std::vector<Variable>{a},
                          std::function<Variable()>(fn));
  }));
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, OpGradCheck, ::testing::ValuesIn(MakeGradCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace oodgnn
