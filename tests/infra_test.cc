// Tests for the low-level infrastructure: check macros, logging
// controls, and the stopwatch.

#include <thread>

#include "gtest/gtest.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  OODGNN_CHECK(true);
  OODGNN_CHECK_EQ(1, 1);
  OODGNN_CHECK_NE(1, 2);
  OODGNN_CHECK_LT(1, 2);
  OODGNN_CHECK_LE(2, 2);
  OODGNN_CHECK_GT(3, 2);
  OODGNN_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAbortsWithMessage) {
  EXPECT_DEATH(OODGNN_CHECK(false) << "context " << 42,
               "CHECK failed.*context 42");
  EXPECT_DEATH(OODGNN_CHECK_EQ(1, 2), "CHECK failed");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto count = [&calls] {
    ++calls;
    return true;
  };
  OODGNN_CHECK(count());
  EXPECT_EQ(calls, 1);
}

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed and emitted messages must both be safe to build.
  OODGNN_LOG(Debug) << "suppressed " << 1;
  OODGNN_LOG(Error) << "emitted " << 2;
  SetLogLevel(original);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.ElapsedMillis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 2000.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

TEST(TimerTest, SecondsAndMillisAgree) {
  Timer timer;
  const double seconds = timer.ElapsedSeconds();
  const double millis = timer.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, 5.0);
}

}  // namespace
}  // namespace oodgnn
