// Semantic validation of the weighted prediction loss (Eq. 6): sample
// weights must actually steer what the encoder learns. We corrupt 40%
// of the training labels and compare uniform weighting against
// an oracle that zeroes out the corrupted samples — the mechanism
// OOD-GNN relies on (its learned weights play the oracle's role for
// spurious-correlation carriers).

#include <algorithm>

#include "gtest/gtest.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/train/metrics.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

struct NoisyDataset {
  GraphDataset data;
  std::vector<bool> corrupted;  // Per training graph.
};

/// Cycles (label 1) vs paths (label 0) with degree features plus two
/// random "identity" feature channels (so a high-capacity model can
/// memorize individual corrupted samples); 40% of the *training*
/// labels flipped.
NoisyDataset MakeNoisyCyclesVsPaths(int per_class, uint64_t seed) {
  NoisyDataset out;
  out.data.num_tasks = 2;
  out.data.feature_dim = 5;
  Rng rng(seed);
  for (int i = 0; i < 2 * per_class; ++i) {
    const int true_label = i % 2;
    const int n = static_cast<int>(rng.UniformInt(5, 10));
    Graph g(n, 5);
    for (int v = 0; v + 1 < n; ++v) g.AddUndirectedEdge(v, v + 1);
    if (true_label == 1) g.AddUndirectedEdge(n - 1, 0);
    std::vector<int> degrees = g.InDegrees();
    for (int v = 0; v < n; ++v) {
      g.x.at(v, std::min(degrees[static_cast<size_t>(v)], 2)) = 1.f;
      g.x.at(v, 3) = static_cast<float>(rng.Normal(0.0, 1.0));
      g.x.at(v, 4) = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    const bool is_train = i < per_class * 3 / 2;
    bool corrupt = false;
    g.label = true_label;
    if (is_train) {
      corrupt = rng.Bernoulli(0.4);
      if (corrupt) g.label = 1 - true_label;
      out.data.train_idx.push_back(out.data.graphs.size());
      out.corrupted.push_back(corrupt);
    } else {
      out.data.test_idx.push_back(out.data.graphs.size());
    }
    out.data.graphs.push_back(std::move(g));
  }
  return out;
}

/// Trains GIN with the given per-train-graph weights and returns clean
/// test accuracy.
double TrainWithWeights(const NoisyDataset& noisy,
                        const std::vector<float>& per_graph_weight,
                        uint64_t seed) {
  Rng rng(seed);
  EncoderConfig config;
  config.feature_dim = noisy.data.feature_dim;
  config.hidden_dim = 32;
  config.num_layers = 2;
  config.dropout = 0.f;
  GraphPredictionModel model(Method::kGin, config, 2, &rng);
  Adam optimizer(model.Parameters(), 5e-3f);

  std::vector<size_t> order = noisy.data.train_idx;
  for (int epoch = 0; epoch < 20; ++epoch) {
    rng.Shuffle(&order);
    for (size_t begin = 0; begin + 2 <= order.size(); begin += 32) {
      const size_t end = std::min(order.size(), begin + 32);
      GraphBatch batch = MakeBatch(noisy.data.graphs, order, begin, end);
      std::vector<float> weights;
      for (size_t i = begin; i < end; ++i) {
        // order[i] indexes the dataset; map back to train position.
        const auto it = std::find(noisy.data.train_idx.begin(),
                                  noisy.data.train_idx.end(), order[i]);
        weights.push_back(per_graph_weight[static_cast<size_t>(
            it - noisy.data.train_idx.begin())]);
      }
      Variable logits = model.Predict(batch, /*training=*/true, &rng);
      Variable loss =
          SoftmaxCrossEntropy(logits, batch.class_labels, weights);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();
    }
  }

  GraphBatch test_batch = MakeBatch(noisy.data.graphs, noisy.data.test_idx,
                                    0, noisy.data.test_idx.size());
  Variable logits = model.Predict(test_batch, /*training=*/false, &rng);
  return Accuracy(logits.value(), test_batch.class_labels);
}

TEST(WeightSemanticsTest, OracleDownweightingBeatsUniform) {
  NoisyDataset noisy = MakeNoisyCyclesVsPaths(120, 44);
  const size_t num_train = noisy.data.train_idx.size();

  std::vector<float> uniform(num_train, 1.f);
  // Oracle: zero weight on corrupted samples, rescaled to mean 1 (the
  // same Σw = N convention the weight optimizer enforces).
  std::vector<float> oracle(num_train, 0.f);
  size_t clean = 0;
  for (size_t i = 0; i < num_train; ++i) {
    if (!noisy.corrupted[i]) ++clean;
  }
  ASSERT_GT(clean, 0u);
  const float clean_weight =
      static_cast<float>(num_train) / static_cast<float>(clean);
  for (size_t i = 0; i < num_train; ++i) {
    oracle[i] = noisy.corrupted[i] ? 0.f : clean_weight;
  }

  const double uniform_acc = TrainWithWeights(noisy, uniform, 5);
  const double oracle_acc = TrainWithWeights(noisy, oracle, 5);
  // The oracle trains on effectively clean labels: it must do strictly
  // better on the clean test set (margin leaves room for seed noise).
  EXPECT_GT(oracle_acc, uniform_acc + 0.02)
      << "uniform=" << uniform_acc << " oracle=" << oracle_acc;
  EXPECT_GT(oracle_acc, 0.9);
}

TEST(WeightSemanticsTest, ZeroWeightSamplesContributeNoGradient) {
  NoisyDataset noisy = MakeNoisyCyclesVsPaths(8, 45);
  GraphBatch batch = MakeBatch(noisy.data.graphs, noisy.data.train_idx, 0,
                               noisy.data.train_idx.size());
  Rng rng(6);
  EncoderConfig config;
  config.feature_dim = 5;
  config.hidden_dim = 8;
  config.num_layers = 1;
  config.dropout = 0.f;
  GraphPredictionModel model(Method::kGin, config, 2, &rng);

  // All-zero weights -> the loss is constant 0 and parameters get no
  // gradient at all.
  std::vector<float> zeros(noisy.data.train_idx.size(), 0.f);
  model.ZeroGrad();
  Variable logits = model.Predict(batch, /*training=*/true, &rng);
  Variable loss = SoftmaxCrossEntropy(logits, batch.class_labels, zeros);
  EXPECT_FLOAT_EQ(loss.value()[0], 0.f);
  loss.Backward();
  for (const Variable& p : model.Parameters()) {
    EXPECT_FLOAT_EQ(p.grad().MaxAbs(), 0.f);
  }
}

}  // namespace
}  // namespace oodgnn
