#include <algorithm>
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"
#include "src/core/decorrelation.h"
#include "src/core/ood_gnn.h"
#include "src/core/rff.h"
#include "src/core/weight_bank.h"
#include "src/core/weight_optimizer.h"
#include "src/tensor/gradcheck.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

Tensor IndependentColumns(int n, int d, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandomNormal(n, d, &rng);
}

/// Columns with strong nonlinear dependence: col1 = col0², col2 = |col0|.
Tensor DependentColumns(int n, uint64_t seed) {
  Rng rng(seed);
  Tensor z(n, 3);
  for (int r = 0; r < n; ++r) {
    const float x = static_cast<float>(rng.Normal(0.0, 1.0));
    z.at(r, 0) = x;
    z.at(r, 1) = x * x - 1.f;  // Uncorrelated with x, but dependent.
    z.at(r, 2) = std::fabs(x) - 0.8f;
  }
  return z;
}

TEST(RffTest, FeatureLayout) {
  Rng rng(1);
  RffConfig config;
  config.num_functions = 3;
  RffFeatureMap rff(4, config, &rng);
  EXPECT_EQ(rff.num_features(), 12);
  const std::vector<int>& source = rff.feature_source_dim();
  // Q consecutive features per dimension.
  EXPECT_EQ(source[0], source[2]);
  EXPECT_NE(source[2], source[3]);
}

TEST(RffTest, LinearModePassesValuesThrough) {
  Rng rng(2);
  RffConfig config;
  config.linear_only = true;
  RffFeatureMap rff(3, config, &rng);
  Tensor z = IndependentColumns(5, 3, 7);
  Tensor f = rff.Transform(z);
  EXPECT_TRUE(AllClose(f, z));
}

TEST(RffTest, DimFractionSubsamples) {
  Rng rng(3);
  RffConfig config;
  config.dim_fraction = 0.5f;
  RffFeatureMap rff(10, config, &rng);
  EXPECT_EQ(rff.num_features(), 5);
  // Selected dims are distinct and in range.
  std::vector<int> dims = rff.feature_source_dim();
  std::sort(dims.begin(), dims.end());
  EXPECT_TRUE(std::adjacent_find(dims.begin(), dims.end()) == dims.end());
  EXPECT_GE(dims.front(), 0);
  EXPECT_LT(dims.back(), 10);
}

TEST(RffTest, OutputRangeIsBounded) {
  Rng rng(4);
  RffConfig config;
  RffFeatureMap rff(2, config, &rng);
  Tensor f = rff.Transform(IndependentColumns(100, 2, 8));
  const float bound = std::sqrt(2.f) + 1e-6f;
  for (int i = 0; i < f.size(); ++i) {
    EXPECT_LE(std::fabs(f[i]), bound);
  }
}

TEST(RffTest, DeterministicGivenSeed) {
  Rng rng1(5);
  Rng rng2(5);
  RffConfig config;
  RffFeatureMap a(3, config, &rng1);
  RffFeatureMap b(3, config, &rng2);
  Tensor z = IndependentColumns(4, 3, 9);
  EXPECT_TRUE(AllClose(a.Transform(z), b.Transform(z)));
}

TEST(DecorrelationTest, NearZeroForIndependentColumns) {
  Rng rng(6);
  RffConfig config;
  config.num_functions = 2;
  RffFeatureMap rff(4, config, &rng);
  const double dep = DependenceMeasure(IndependentColumns(4000, 4, 10), rff);
  EXPECT_LT(dep, 5e-3);
}

TEST(DecorrelationTest, DetectsNonlinearDependence) {
  Rng rng(7);
  RffConfig config;
  config.num_functions = 4;
  RffFeatureMap rff(3, config, &rng);
  const double dependent = DependenceMeasure(DependentColumns(4000, 11), rff);
  const double independent =
      DependenceMeasure(IndependentColumns(4000, 3, 12), rff);
  EXPECT_GT(dependent, 10.0 * independent);
}

TEST(DecorrelationTest, LinearModeMissesNonlinearDependence) {
  // col1 = col0²−1 is *uncorrelated* with col0; the linear measure
  // must be fooled while the RFF measure is not — exactly the paper's
  // "no RFF" ablation (Fig. 2).
  Tensor z(4000, 2);
  Rng rng(8);
  for (int r = 0; r < 4000; ++r) {
    const float x = static_cast<float>(rng.Normal(0.0, 1.0));
    z.at(r, 0) = x;
    z.at(r, 1) = x * x - 1.f;
  }
  Rng map_rng(9);
  RffConfig linear;
  linear.linear_only = true;
  RffFeatureMap linear_map(2, linear, &map_rng);
  RffConfig fourier;
  fourier.num_functions = 4;
  RffFeatureMap fourier_map(2, fourier, &map_rng);
  const double linear_dep = DependenceMeasure(z, linear_map);
  const double fourier_dep = DependenceMeasure(z, fourier_map);
  EXPECT_LT(linear_dep, 0.01);
  EXPECT_GT(fourier_dep, 10.0 * std::max(linear_dep, 1e-6));
}

TEST(DecorrelationTest, LossGradCheckWrtWeights) {
  Rng rng(10);
  RffConfig config;
  config.num_functions = 2;
  RffFeatureMap rff(3, config, &rng);
  Tensor features = rff.Transform(IndependentColumns(12, 3, 13));
  Variable w = Variable::Param(Tensor(12, 1, 1.f));
  auto fn = [&] {
    return DecorrelationLoss(features, rff.feature_source_dim(), w);
  };
  EXPECT_LT(CheckGradients({w}, fn, 1e-3f).max_relative_error, 5e-2);
}

TEST(DecorrelationTest, ExcludesWithinDimensionPairs) {
  // With a single dimension there are no cross pairs: loss must be 0.
  Rng rng(11);
  RffConfig config;
  config.num_functions = 3;
  RffFeatureMap rff(1, config, &rng);
  Tensor features = rff.Transform(IndependentColumns(50, 1, 14));
  Variable w = Variable::Constant(Tensor(50, 1, 1.f));
  Variable loss =
      DecorrelationLoss(features, rff.feature_source_dim(), w);
  EXPECT_FLOAT_EQ(loss.value()[0], 0.f);
}

TEST(WeightBankTest, SeedsOnFirstUpdate) {
  GlobalWeightBank bank(4, 2, {0.9f});
  EXPECT_FALSE(bank.initialized());
  Tensor z = Tensor::FromData(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor w(4, 1, 1.f);
  bank.Update(z, w);
  EXPECT_TRUE(bank.initialized());
  EXPECT_TRUE(AllClose(bank.z(0), z));
  EXPECT_TRUE(AllClose(bank.w(0), w));
}

TEST(WeightBankTest, MomentumUpdateMath) {
  GlobalWeightBank bank(2, 1, {0.75f});
  Tensor z0 = Tensor::FromData(2, 1, {1.f, 1.f});
  bank.Update(z0, Tensor(2, 1, 1.f));
  Tensor z1 = Tensor::FromData(2, 1, {5.f, 9.f});
  Tensor w1 = Tensor::FromData(2, 1, {2.f, 0.f});
  bank.Update(z1, w1);
  EXPECT_FLOAT_EQ(bank.z(0).at(0, 0), 0.75f * 1.f + 0.25f * 5.f);
  EXPECT_FLOAT_EQ(bank.z(0).at(1, 0), 0.75f * 1.f + 0.25f * 9.f);
  EXPECT_FLOAT_EQ(bank.w(0).at(0, 0), 0.75f * 1.f + 0.25f * 2.f);
  EXPECT_FLOAT_EQ(bank.w(0).at(1, 0), 0.75f * 1.f + 0.25f * 0.f);
}

TEST(WeightBankTest, SkipsPartialBatches) {
  GlobalWeightBank bank(4, 2, {0.9f});
  bank.Update(Tensor(4, 2, 1.f), Tensor(4, 1, 1.f));
  Tensor before = bank.z(0);
  bank.Update(Tensor(3, 2, 99.f), Tensor(3, 1, 1.f));  // Wrong size.
  EXPECT_TRUE(AllClose(bank.z(0), before));
}

TEST(WeightBankTest, StackedShapes) {
  GlobalWeightBank bank = GlobalWeightBank::WithUniformGamma(3, 4, 2, 0.9f);
  EXPECT_EQ(bank.num_groups(), 3);
  bank.Update(Tensor(4, 2, 1.f), Tensor(4, 1, 1.f));
  EXPECT_EQ(bank.StackedZ().rows(), 12);
  EXPECT_EQ(bank.StackedZ().cols(), 2);
  EXPECT_EQ(bank.StackedW().rows(), 12);
}

TEST(WeightBankTest, MultiGroupGammasDiffer) {
  GlobalWeightBank bank = GlobalWeightBank::WithUniformGamma(2, 2, 1, 0.9f);
  bank.Update(Tensor(2, 1, 0.f), Tensor(2, 1, 1.f));
  bank.Update(Tensor(2, 1, 10.f), Tensor(2, 1, 1.f));
  // Group 0 (γ=0.9) moves less than group 1 (γ=0.63).
  EXPECT_LT(bank.z(0).at(0, 0), bank.z(1).at(0, 0));
}

TEST(WeightOptimizerTest, ReducesDecorrelationLoss) {
  Rng rng(15);
  RffConfig rff_config;
  rff_config.num_functions = 2;
  RffFeatureMap rff(3, rff_config, &rng);
  WeightOptimizerConfig config;
  config.epochs_reweight = 30;
  GraphWeightOptimizer optimizer(config);
  WeightOptimizerResult result =
      optimizer.Optimize(DependentColumns(64, 16), rff, nullptr);
  EXPECT_LT(result.final_loss, result.initial_loss);
}

TEST(WeightOptimizerTest, WeightsSatisfyConstraints) {
  Rng rng(17);
  RffConfig rff_config;
  RffFeatureMap rff(4, rff_config, &rng);
  WeightOptimizerConfig config;
  config.epochs_reweight = 15;
  config.clamp_max = 5.f;
  GraphWeightOptimizer optimizer(config);
  WeightOptimizerResult result =
      optimizer.Optimize(IndependentColumns(32, 4, 18), rff, nullptr);
  ASSERT_EQ(result.weights.size(), 32u);
  double total = 0.0;
  for (float w : result.weights) {
    EXPECT_GE(w, 0.f);
    EXPECT_LE(w, 5.f + 1e-4f);
    total += w;
  }
  EXPECT_NEAR(total, 32.0, 1e-2);  // Σw = N.
}

TEST(WeightOptimizerTest, UsesBankWhenInitialized) {
  Rng rng(19);
  RffConfig rff_config;
  RffFeatureMap rff(3, rff_config, &rng);
  GlobalWeightBank bank(8, 3, {0.9f});
  bank.Update(IndependentColumns(8, 3, 20), Tensor(8, 1, 1.f));
  WeightOptimizerConfig config;
  config.epochs_reweight = 5;
  GraphWeightOptimizer optimizer(config);
  // Different local batch size than the bank groups is fine.
  WeightOptimizerResult result =
      optimizer.Optimize(IndependentColumns(6, 3, 21), rff, &bank);
  EXPECT_EQ(result.weights.size(), 6u);
}

TEST(ReweighterTest, EndToEndProducesMeanOneWeights) {
  Rng rng(22);
  OodGnnConfig config;
  config.weights.epochs_reweight = 10;
  OodGnnReweighter reweighter(/*representation_dim=*/4, /*batch_size=*/16,
                              config, &rng);
  Tensor z = IndependentColumns(16, 4, 24);
  std::vector<float> weights = reweighter.ComputeWeights(z);
  ASSERT_EQ(weights.size(), 16u);
  double total = 0.0;
  for (float w : weights) total += w;
  EXPECT_NEAR(total / 16.0, 1.0, 1e-3);
  EXPECT_TRUE(reweighter.bank().initialized());
}

TEST(ReweighterTest, SingletonBatchFallsBackToUniform) {
  Rng rng(25);
  OodGnnConfig config;
  OodGnnReweighter reweighter(3, 8, config, &rng);
  std::vector<float> weights =
      reweighter.ComputeWeights(IndependentColumns(1, 3, 26));
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_FLOAT_EQ(weights[0], 1.f);
}

TEST(ReweighterTest, ReweightingLowersDependenceVsUniform) {
  // Weighted dependence after optimization must be below the uniform-
  // weight dependence on data with planted dependence.
  Rng rng(27);
  RffConfig rff_config;
  rff_config.num_functions = 2;
  RffFeatureMap rff(3, rff_config, &rng);
  Tensor z = DependentColumns(128, 28);
  Variable uniform = Variable::Constant(Tensor(128, 1, 1.f));
  Tensor features = rff.Transform(z);
  const double uniform_loss =
      DecorrelationLoss(features, rff.feature_source_dim(), uniform)
          .value()[0];

  WeightOptimizerConfig config;
  config.epochs_reweight = 40;
  GraphWeightOptimizer optimizer(config);
  WeightOptimizerResult result = optimizer.Optimize(z, rff, nullptr);
  EXPECT_LT(result.final_loss, uniform_loss);
}

}  // namespace
}  // namespace oodgnn
