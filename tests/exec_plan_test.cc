#include "src/tensor/exec_plan.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/ood_gnn.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/serve/inference.h"
#include "src/tensor/arena.h"
#include "src/tensor/ops.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"
#include "src/tensor/variable.h"
#include "src/train/train_plan.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

using serve::InferenceEngine;
using serve::InferenceOptions;
using serve::InferenceStats;
using serve::ModelSpec;

// Pinned compiled-arena footprints for the reference envelope in
// ExecPlanRegressionTest (4-graph batch, 64 nodes, 256 edges, hidden 8,
// 2 layers). Update alongside any change that legitimately grows a
// model's set of live intermediates.
// (The two values coincide today because OOD-GNN's decorrelation is
// train-only: its inference stream is the shared encoder backbone.)
constexpr std::int64_t kPinnedGinArenaBytes = 26368;
constexpr std::int64_t kPinnedOodGnnArenaBytes = 26368;

/// gtest param names must be alphanumeric ("OOD-GNN" is not).
std::string ParamName(Method method) {
  std::string name;
  for (const char* p = MethodName(method); *p != '\0'; ++p) {
    if (std::isalnum(static_cast<unsigned char>(*p)) != 0) name.push_back(*p);
  }
  return name;
}

GraphDataset TinyDataset() {
  TrianglesConfig config;
  config.num_train = 24;
  config.num_valid = 8;
  config.num_test = 8;
  config.train_max_nodes = 12;
  config.test_max_nodes = 20;
  return MakeTrianglesDataset(config, 77);
}

EncoderConfig TinyEncoder(int feature_dim) {
  EncoderConfig config;
  config.feature_dim = feature_dim;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.5f;  // Identity in eval mode; must not matter.
  return config;
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.SameShape(b) &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(),
                      static_cast<size_t>(a.size()) * sizeof(float)) == 0);
}

/// Eval-mode logits of `graphs` as one eager (heap) batch.
Tensor EagerLogits(GraphPredictionModel* model,
                   const std::vector<const Graph*>& graphs) {
  NoGradGuard no_grad;
  GraphBatch batch = GraphBatch::FromGraphs(graphs);
  Rng rng(999);
  return model->Predict(batch, /*training=*/false, &rng).value();
}

// ---------------------------------------------------------------------------
// Storage alignment (every tensor, every allocation mode).
// ---------------------------------------------------------------------------

TEST(TensorStorageTest, AllStorageIs64ByteAligned) {
  auto aligned = [](const float* p) {
    return reinterpret_cast<std::uintptr_t>(p) % kTensorStorageAlignBytes == 0;
  };
  Tensor heap(3, 5, 1.f);
  EXPECT_TRUE(aligned(heap.data()));
  Tensor copy = heap;
  EXPECT_TRUE(aligned(copy.data()));
  EXPECT_NE(copy.data(), heap.data());  // Deep copy.
  Tensor from = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(aligned(from.data()));

  Arena arena;
  ScopedAllocSink install(&arena);
  Tensor pooled(7, 9, 2.f);
  EXPECT_TRUE(aligned(pooled.data()));
}

TEST(TensorStorageTest, MoveLeavesSourceEmpty) {
  Tensor a(4, 4, 3.f);
  Tensor b = std::move(a);
  EXPECT_EQ(b.rows(), 4);
  EXPECT_EQ(b.at(0, 0), 3.f);
  EXPECT_EQ(a.rows(), 0);
  EXPECT_EQ(a.cols(), 0);
  EXPECT_TRUE(a.empty());
  a = Tensor(2, 2, 1.f);  // Moved-from tensor is assignable again.
  EXPECT_EQ(a.Sum(), 4.f);
}

// ---------------------------------------------------------------------------
// Dynamic Arena.
// ---------------------------------------------------------------------------

TEST(ArenaTest, FirstFitReusesFreedExtents) {
  Arena arena(1024);
  std::shared_ptr<float> a = arena.Allocate(100);
  float* first = a.get();
  a.reset();
  std::shared_ptr<float> b = arena.Allocate(80);
  EXPECT_EQ(b.get(), first);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.slab_count, 1);
  EXPECT_EQ(stats.allocs, 2);
}

TEST(ArenaTest, CoalescesAdjacentHoles) {
  Arena arena(4096);
  std::shared_ptr<float> a = arena.Allocate(64);
  std::shared_ptr<float> b = arena.Allocate(64);
  std::shared_ptr<float> keep = arena.Allocate(64);
  float* first = a.get();
  a.reset();
  b.reset();
  // 64+64 adjacent frees must satisfy a 128 request at the old offset.
  std::shared_ptr<float> c = arena.Allocate(128);
  EXPECT_EQ(c.get(), first);
  (void)keep;
}

TEST(ArenaTest, GrowsBySlabsAndBlocksOutliveTheArena) {
  std::shared_ptr<float> survivor;
  {
    Arena arena(64);
    survivor = arena.Allocate(64);
    std::shared_ptr<float> big = arena.Allocate(1 << 14);
    big.get()[0] = 1.f;
    EXPECT_GE(arena.stats().slab_count, 2);
  }
  // The deleter holds the arena state alive; the block stays valid.
  survivor.get()[0] = 2.f;
  EXPECT_EQ(survivor.get()[0], 2.f);
}

TEST(ArenaTest, SteadyStateForwardsAllocateNothingFromTheHeap) {
  GraphDataset dataset = TinyDataset();
  Rng rng(5);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.test_idx) graphs.push_back(&dataset.graphs[idx]);

  NoGradGuard no_grad;
  Arena arena;
  ScopedAllocSink install(&arena);
  Rng fwd(1);
  auto forward = [&] {
    GraphBatch batch = GraphBatch::FromGraphs(graphs);
    return model.Predict(batch, /*training=*/false, &fwd).value();
  };
  const Tensor warm = forward();  // Sizes the slabs.
  const std::int64_t heap_before = TensorHeapAllocsThisThread();
  Tensor again;
  for (int round = 0; round < 5; ++round) again = forward();
  EXPECT_EQ(TensorHeapAllocsThisThread(), heap_before);
  EXPECT_TRUE(BitwiseEqual(warm, again));
}

// ---------------------------------------------------------------------------
// Record / replay.
// ---------------------------------------------------------------------------

TEST(ExecPlanTest, ReplayIsBitwiseIdenticalAndHeapFree) {
  GraphDataset dataset = TinyDataset();
  Rng rng(8);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  std::vector<const Graph*> graphs;
  for (size_t idx : dataset.test_idx) graphs.push_back(&dataset.graphs[idx]);
  const Tensor eager = EagerLogits(&model, graphs);

  NoGradGuard no_grad;
  Tensor recorded;
  ComputePlan built;
  {
    PlanRecordScope record;
    {
      GraphBatch batch = GraphBatch::FromGraphs(graphs);
      Rng fwd(999);
      recorded = model.Predict(batch, /*training=*/false, &fwd).value();
    }  // Intermediates die; their extents become reusable holes.
    built = record.Finish();
  }
  EXPECT_TRUE(BitwiseEqual(recorded, eager));
  EXPECT_GT(built.slots.size(), 0u);
  EXPECT_GT(built.kernels.size(), 0u);
  EXPECT_GT(built.ops.size(), 0u);
  EXPECT_GT(built.capacity_floats, 0);
  // Liveness-driven reuse: total slot demand exceeds the arena size.
  EXPECT_GT(built.reuse_ratio(), 1.0);
  EXPECT_LE(built.peak_live_floats, built.capacity_floats);

  auto plan = std::make_shared<const ComputePlan>(std::move(built));
  PlanArena arena;
  arena.Resize(plan->capacity_floats);

  Tensor replayed;
  PlanReplayStats stats;
  const std::int64_t heap_before = TensorHeapAllocsThisThread();
  {
    PlanReplayScope replay(plan, &arena);
    {
      GraphBatch batch = GraphBatch::FromGraphs(graphs);
      Rng fwd(999);
      replayed = model.Predict(batch, /*training=*/false, &fwd).value();
    }
    stats = replay.stats();
  }
  // The allocation-counting hook: the whole replayed forward touched
  // the heap zero times.
  EXPECT_EQ(TensorHeapAllocsThisThread(), heap_before);
  EXPECT_FALSE(stats.diverged);
  EXPECT_EQ(stats.heap_allocs, 0);
  EXPECT_EQ(stats.arena_allocs,
            static_cast<std::int64_t>(plan->slots.size()));
  EXPECT_LE(stats.peak_floats, plan->capacity_floats);
  EXPECT_TRUE(BitwiseEqual(replayed, eager));
}

TEST(ExecPlanTest, StructuralDivergenceFallsBackAndStaysCorrect) {
  GraphDataset dataset = TinyDataset();
  Rng rng(8);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  std::vector<const Graph*> edged;
  for (size_t idx : dataset.test_idx) edged.push_back(&dataset.graphs[idx]);

  NoGradGuard no_grad;
  ComputePlan built;
  {
    PlanRecordScope record;
    {
      GraphBatch batch = GraphBatch::FromGraphs(edged);
      Rng fwd(999);
      (void)model.Predict(batch, /*training=*/false, &fwd).value();
    }
    built = record.Finish();
  }
  auto plan = std::make_shared<const ComputePlan>(std::move(built));
  PlanArena arena;
  arena.Resize(plan->capacity_floats);

  // An edgeless batch takes the conv layers' empty-edge branch — an op
  // stream the plan never saw. Replay must detect the divergence and
  // finish on the heap with bitwise-correct results.
  Graph lonely(3, dataset.feature_dim);
  lonely.x.Fill(0.5f);
  std::vector<const Graph*> edgeless = {&lonely};
  const Tensor eager = EagerLogits(&model, edgeless);

  Tensor replayed;
  PlanReplayStats stats;
  {
    PlanReplayScope replay(plan, &arena);
    {
      GraphBatch batch = GraphBatch::FromGraphs(edgeless);
      Rng fwd(999);
      replayed = model.Predict(batch, /*training=*/false, &fwd).value();
    }
    stats = replay.stats();
  }
  EXPECT_TRUE(stats.diverged);
  EXPECT_GT(stats.heap_allocs, 0);
  EXPECT_TRUE(BitwiseEqual(replayed, eager));
}

// ---------------------------------------------------------------------------
// Engine integration.
// ---------------------------------------------------------------------------

/// Compiled engine + reference model sharing one weight state.
struct EnginePair {
  std::unique_ptr<GraphPredictionModel> model;
  std::unique_ptr<InferenceEngine> engine;
};

EnginePair MakeCompiledEngine(Method method, const GraphDataset& dataset,
                              InferenceOptions options, uint64_t seed = 8) {
  ModelSpec spec;
  spec.method = method;
  spec.encoder = TinyEncoder(dataset.feature_dim);
  spec.output_dim = dataset.OutputDim();
  options.compiled = true;
  EnginePair pair;
  Rng rng(seed);
  pair.model = std::make_unique<GraphPredictionModel>(
      method, spec.encoder, spec.output_dim, &rng);
  pair.engine = std::make_unique<InferenceEngine>(spec, options);
  pair.engine->SyncFrom(*pair.model);
  return pair;
}

class SteadyStateZeroAlloc : public ::testing::TestWithParam<Method> {};

TEST_P(SteadyStateZeroAlloc, ServesEveryRequestFromTheArena) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 1;
  options.max_batch_wait_us = 0;
  EnginePair pair = MakeCompiledEngine(GetParam(), dataset, options);

  std::int64_t expected_batches = 0;
  for (int round = 0; round < 3; ++round) {
    for (size_t idx : dataset.test_idx) {
      const Graph& graph = dataset.graphs[idx];
      std::vector<const Graph*> single = {&graph};
      const Tensor reference = EagerLogits(pair.model.get(), single);
      const Tensor row = pair.engine->Predict(graph);
      EXPECT_TRUE(BitwiseEqual(row, reference));
      ++expected_batches;
    }
  }
  const InferenceStats stats = pair.engine->stats();
  EXPECT_EQ(stats.planned_batches, expected_batches);
  EXPECT_EQ(stats.eager_batches, 0);
  EXPECT_EQ(stats.diverged_batches, 0);
  // The zero-allocation serving guarantee: across every request, no
  // replay scope ever touched the heap.
  EXPECT_EQ(stats.fallback_heap_allocs, 0);
  EXPECT_GT(stats.arena_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(GinAndOodGnn, SteadyStateZeroAlloc,
                         ::testing::Values(Method::kGin, Method::kOodGnn),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return ParamName(info.param);
                         });

TEST(ExecPlanEngineTest, EnvelopeOverflowFallsBackPerBlockAndMatchesEager) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 1;
  options.max_batch_wait_us = 0;
  options.plan_max_nodes = 4;  // Far below the test graphs' sizes.
  options.plan_max_edges = 6;
  EnginePair pair = MakeCompiledEngine(Method::kGin, dataset, options);

  const Graph& big = dataset.graphs[dataset.test_idx[0]];
  ASSERT_GT(big.num_nodes(), 4);
  std::vector<const Graph*> single = {&big};
  const Tensor reference = EagerLogits(pair.model.get(), single);
  const Tensor row = pair.engine->Predict(big);
  EXPECT_TRUE(BitwiseEqual(row, reference));
  const InferenceStats stats = pair.engine->stats();
  EXPECT_EQ(stats.planned_batches, 1);
  EXPECT_GT(stats.fallback_heap_allocs, 0);  // Oversized blocks went to heap.
}

TEST(ExecPlanEngineTest, EdgelessBatchRunsEagerButCorrect) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 1;
  options.max_batch_wait_us = 0;
  EnginePair pair = MakeCompiledEngine(Method::kGin, dataset, options);

  Graph lonely(1, dataset.feature_dim);  // Single node, zero edges.
  lonely.x.Fill(1.f);
  std::vector<const Graph*> single = {&lonely};
  const Tensor reference = EagerLogits(pair.model.get(), single);
  const Tensor row = pair.engine->Predict(lonely);
  EXPECT_TRUE(BitwiseEqual(row, reference));
  const InferenceStats stats = pair.engine->stats();
  EXPECT_EQ(stats.planned_batches, 0);
  EXPECT_EQ(stats.eager_batches, 1);  // Pre-check rerouted the batch.
}

TEST(ExecPlanEngineTest, WeightSwapRecompilesPlanUnderOneLock) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 2;
  options.max_batch_graphs = 2;
  options.max_batch_wait_us = 0;
  EnginePair pair = MakeCompiledEngine(Method::kGin, dataset, options);
  // One compile at construction, one at the initial SyncFrom.
  EXPECT_EQ(pair.engine->stats().plan_recompiles, 2);
  const auto plan_before = pair.engine->plan();
  ASSERT_NE(plan_before, nullptr);

  const Graph& graph = dataset.graphs[dataset.test_idx[1]];
  std::vector<const Graph*> single = {&graph};
  EXPECT_TRUE(BitwiseEqual(pair.engine->Predict(graph),
                           EagerLogits(pair.model.get(), single)));

  // Different weights: predictions must track the swap and the plan
  // must have been re-traced against them.
  Rng other_rng(4242);
  GraphPredictionModel other(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &other_rng);
  pair.engine->SyncFrom(other);
  EXPECT_EQ(pair.engine->stats().plan_recompiles, 3);
  EXPECT_NE(pair.engine->plan(), plan_before);
  EXPECT_TRUE(
      BitwiseEqual(pair.engine->Predict(graph), EagerLogits(&other, single)));
  EXPECT_EQ(pair.engine->stats().diverged_batches, 0);
}

class CompiledFuzz : public ::testing::TestWithParam<Method> {};

TEST_P(CompiledFuzz, RandomizedBatchesBitwiseMatchEager) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 2;
  options.max_batch_graphs = 3;
  options.max_batch_wait_us = 50;
  options.plan_max_nodes = 24;  // Small envelope: some graphs overflow.
  options.plan_max_edges = 64;
  EnginePair pair = MakeCompiledEngine(GetParam(), dataset, options);

  // Graph pool: dataset graphs plus adversarial shapes — single-node,
  // edgeless, self-loop-only, and an envelope-busting blob.
  std::vector<Graph> extra;
  {
    Graph g1(1, dataset.feature_dim);
    g1.x.Fill(0.25f);
    extra.push_back(std::move(g1));  // Single node, no edges.
    Graph g2(5, dataset.feature_dim);
    g2.x.Fill(-1.f);
    extra.push_back(std::move(g2));  // Multi-node, edgeless.
    Graph g3(2, dataset.feature_dim);
    g3.x.Fill(0.75f);
    g3.AddEdge(0, 0);
    g3.AddEdge(1, 1);
    extra.push_back(std::move(g3));  // Self loops only.
    Rng gen(31);
    Graph g4(40, dataset.feature_dim);
    for (int v = 0; v < 40; ++v) {
      for (int f = 0; f < dataset.feature_dim; ++f) {
        g4.x.at(v, f) = static_cast<float>(gen.Uniform(-1.0, 1.0));
      }
      g4.AddUndirectedEdge(v, (v + 1) % 40);
      g4.AddUndirectedEdge(v, (v + 7) % 40);
    }
    extra.push_back(std::move(g4));  // Past the plan envelope.
  }
  std::vector<const Graph*> pool;
  for (size_t idx : dataset.test_idx) pool.push_back(&dataset.graphs[idx]);
  for (const Graph& g : extra) pool.push_back(&g);

  // Per-graph eager references (engine outputs are batch-independent).
  std::vector<Tensor> references;
  references.reserve(pool.size());
  for (const Graph* g : pool) {
    std::vector<const Graph*> single = {g};
    references.push_back(EagerLogits(pair.model.get(), single));
  }

  Rng order(91);
  for (int round = 0; round < 4; ++round) {
    std::vector<size_t> picks;
    std::vector<std::future<Tensor>> futures;
    const int burst = 1 + static_cast<int>(order.UniformInt(1, 8));
    for (int i = 0; i < burst; ++i) {
      const size_t pick =
          static_cast<size_t>(order.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
      picks.push_back(pick);
      futures.push_back(pair.engine->Submit(*pool[pick]));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(futures[i].get(), references[picks[i]]))
          << MethodName(GetParam()) << " round " << round << " request " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, CompiledFuzz,
                         ::testing::Values(Method::kGin, Method::kOodGnn,
                                           Method::kFactorGcn),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return ParamName(info.param);
                         });

// ---------------------------------------------------------------------------
// Pinned arena-footprint regressions: the liveness-analyzed arena for
// the reference envelope below must not silently grow. If a layer
// legitimately adds intermediates, update the constants alongside the
// change that grew them.
// ---------------------------------------------------------------------------

std::int64_t PlannedArenaBytes(Method method) {
  GraphDataset dataset = TinyDataset();
  InferenceOptions options;
  options.num_workers = 1;
  options.max_batch_graphs = 4;
  options.max_batch_wait_us = 0;
  options.plan_max_nodes = 64;
  options.plan_max_edges = 256;
  EnginePair pair = MakeCompiledEngine(method, dataset, options);
  const auto plan = pair.engine->plan();
  EXPECT_NE(plan, nullptr);
  EXPECT_GT(plan->reuse_ratio(), 1.0);
  return plan == nullptr ? 0 : plan->capacity_bytes();
}

TEST(ExecPlanRegressionTest, PinnedPeakArenaBytesGin) {
  EXPECT_EQ(PlannedArenaBytes(Method::kGin), kPinnedGinArenaBytes);
}

TEST(ExecPlanRegressionTest, PinnedPeakArenaBytesOodGnn) {
  EXPECT_EQ(PlannedArenaBytes(Method::kOodGnn), kPinnedOodGnnArenaBytes);
}

// ---------------------------------------------------------------------------
// Weight-dtype plan keying (DESIGN.md §16): a plan recorded against
// fp32 weights must never replay against a quantized publish and vice
// versa — the kernel streams differ (MatMulAcc vs MatMulQuantAcc), so
// replaying across dtypes would execute the wrong kernels.
// ---------------------------------------------------------------------------

TEST(ExecPlanTest, ReplayDivergesWhenActiveDtypeMismatchesPlan) {
  GraphDataset dataset = TinyDataset();
  Rng rng(16);
  GraphPredictionModel model(Method::kGin, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  std::vector<const Graph*> graphs = {&dataset.graphs[dataset.test_idx[0]]};
  const Tensor eager = EagerLogits(&model, graphs);

  NoGradGuard no_grad;
  ComputePlan built;
  {
    PlanRecordScope record;
    {
      GraphBatch batch = GraphBatch::FromGraphs(graphs);
      Rng fwd(999);
      const Tensor recorded =
          model.Predict(batch, /*training=*/false, &fwd).value();
      EXPECT_TRUE(BitwiseEqual(recorded, eager));
    }  // Intermediates die; their extents become reusable holes.
    built = record.Finish();
  }
  EXPECT_EQ(built.weight_dtype, WeightDtype::kF32);  // Recorded eager/fp32.
  auto plan = std::make_shared<const ComputePlan>(std::move(built));
  PlanArena arena;
  arena.Resize(plan->capacity_floats);

  // Matching dtype: clean replay.
  {
    PlanReplayScope replay(plan, &arena, WeightDtype::kF32);
    {
      GraphBatch batch = GraphBatch::FromGraphs(graphs);
      Rng fwd(999);
      const Tensor out =
          model.Predict(batch, /*training=*/false, &fwd).value();
      EXPECT_TRUE(BitwiseEqual(out, eager));
    }
    EXPECT_FALSE(replay.stats().diverged);
  }
  // Quantized weights active: the fp32 plan must refuse to replay and
  // fall back to the heap — with results still bitwise correct for the
  // (fp32) weights actually in use.
  {
    PlanReplayScope replay(plan, &arena, WeightDtype::kQ8);
    {
      GraphBatch batch = GraphBatch::FromGraphs(graphs);
      Rng fwd(999);
      const Tensor out =
          model.Predict(batch, /*training=*/false, &fwd).value();
      EXPECT_TRUE(BitwiseEqual(out, eager));
    }
    EXPECT_TRUE(replay.stats().diverged);
    EXPECT_GT(replay.stats().heap_allocs, 0);
  }
}

TEST(ExecPlanEngineTest, QuantizeFlipAcrossSyncFromRetracesAndNeverDiverges) {
  // A live --compiled engine whose process-wide quantize toggle flips
  // between publishes: each SyncFrom must re-trace the plan against
  // the new weight representation (plan.weight_dtype tracks it), and
  // no batch may ever hit the diverged-replay fallback, because
  // snapshots carry their own dtype-matched plan.
  const bool saved_toggle = QuantizeEnabled();
  GraphDataset dataset = TinyDataset();
  SetQuantizeEnabled(false);
  InferenceOptions options;
  options.num_workers = 2;
  options.max_batch_graphs = 2;
  options.max_batch_wait_us = 0;
  EnginePair pair = MakeCompiledEngine(Method::kGin, dataset, options);

  const Graph& graph = dataset.graphs[dataset.test_idx[1]];
  std::vector<const Graph*> single = {&graph};
  const Tensor eager = EagerLogits(pair.model.get(), single);
  ASSERT_NE(pair.engine->plan(), nullptr);
  EXPECT_EQ(pair.engine->plan()->weight_dtype, WeightDtype::kF32);
  EXPECT_TRUE(BitwiseEqual(pair.engine->Predict(graph), eager));

  // Flip quantization on: the next publish re-quantizes and re-traces.
  SetQuantizeEnabled(true);
  pair.engine->SyncFrom(*pair.model);
  ASSERT_NE(pair.engine->plan(), nullptr);
  EXPECT_EQ(pair.engine->plan()->weight_dtype, WeightDtype::kQ8);
  const Tensor quantized = pair.engine->Predict(graph);
  EXPECT_FALSE(BitwiseEqual(quantized, eager));  // Int8 path engaged.
  float max_diff = 0.f;
  for (int j = 0; j < eager.size(); ++j) {
    max_diff = std::max(max_diff, std::fabs(eager[j] - quantized[j]));
  }
  EXPECT_LE(max_diff, 0.25f);  // tests/quant_test.cc's committed tolerance.
  EXPECT_EQ(pair.engine->stats().diverged_batches, 0);

  // Flip back off: fp32 serving returns, bitwise.
  SetQuantizeEnabled(false);
  pair.engine->SyncFrom(*pair.model);
  ASSERT_NE(pair.engine->plan(), nullptr);
  EXPECT_EQ(pair.engine->plan()->weight_dtype, WeightDtype::kF32);
  EXPECT_TRUE(BitwiseEqual(pair.engine->Predict(graph), eager));
  EXPECT_EQ(pair.engine->stats().diverged_batches, 0);
  SetQuantizeEnabled(saved_toggle);
}

// ---------------------------------------------------------------------------
// Compiled training (DESIGN.md §17): grad-mode record/replay.
// ---------------------------------------------------------------------------

TEST(BackwardReleaseTest, ReleasesInteriorNodesKeepsLeavesAndRoot) {
  Rng rng(5);
  Tensor xv(4, 3);
  Tensor wv(3, 2);
  for (int i = 0; i < xv.size(); ++i) xv[i] = static_cast<float>(rng.Normal());
  for (int i = 0; i < wv.size(); ++i) wv[i] = static_cast<float>(rng.Normal());

  // Two identical graphs: one runs the plain backward, one the
  // tape-releasing backward. Leaf gradients and the root loss must be
  // bitwise-identical; only interior buffers may differ in lifetime.
  Variable x1 = Variable::Param(xv);
  Variable w1 = Variable::Param(wv);
  Variable h1 = Relu(MatMul(x1, w1));
  Variable loss1 = MeanAll(Square(h1));
  loss1.Backward();

  Variable x2 = Variable::Param(xv);
  Variable w2 = Variable::Param(wv);
  Variable h2 = Relu(MatMul(x2, w2));
  Variable loss2 = MeanAll(Square(h2));
  loss2.BackwardAndReleaseTape();

  EXPECT_TRUE(BitwiseEqual(loss1.value(), loss2.value()));
  EXPECT_TRUE(BitwiseEqual(x1.grad(), x2.grad()));
  EXPECT_TRUE(BitwiseEqual(w1.grad(), w2.grad()));
  // The interior node's value and gradient were released the moment
  // its backward closure ran (its readers — children's closures and
  // its own — had all executed by then).
  EXPECT_TRUE(h2.value().empty());
  EXPECT_TRUE(h2.grad().empty());
  // The plain backward retains both for post-hoc inspection.
  EXPECT_FALSE(h1.value().empty());
  EXPECT_FALSE(h1.grad().empty());
  // Leaves are untouched by the release: params and grads live on.
  EXPECT_FALSE(x2.value().empty());
  EXPECT_FALSE(x2.grad().empty());
}

struct TrainRunResult {
  std::vector<Tensor> params;      ///< Final parameter values.
  std::vector<Tensor> grads;       ///< Final leaf gradients.
  std::vector<Tensor> adam_slots;  ///< Final Adam moment tensors.
  std::vector<float> losses;       ///< Per-step loss values.
  TrainPlanStats plan;             ///< Zeros in eager mode.
  std::size_t num_buckets = 0;
  /// Heap tensor allocations during the schedule's last step (batch
  /// construction included). -1 if the schedule was empty.
  std::int64_t final_step_allocs = -1;
};

/// Runs a deterministic mini-batch schedule with the trainer's step
/// structure (ScopedDynamicArena batch build, Encode → optional
/// reweighting → Classify → weighted loss → backward → Adam),
/// optionally routed through a TrainStepPlanner exactly as
/// Trainer::Fit routes it when compiled training is on.
TrainRunResult RunSchedule(
    Method method, bool compiled, const GraphDataset& dataset,
    const std::vector<std::pair<size_t, size_t>>& schedule,
    size_t reweight_from_step, int bucket_nodes, int bucket_edges) {
  // The process toggle routes plan-suspended regions (the reweighter's
  // inner loop) to the dynamic arena; the trainer sets it the same way.
  const bool saved_compiled_train = CompiledTrainEnabled();
  SetCompiledTrainEnabled(compiled);
  Rng rng(21);
  GraphPredictionModel model(method, TinyEncoder(dataset.feature_dim),
                             dataset.OutputDim(), &rng);
  Adam optimizer(model.Parameters(), 1e-3f);
  std::unique_ptr<OodGnnReweighter> reweighter;
  if (method == Method::kOodGnn) {
    OodGnnConfig ood;
    reweighter = std::make_unique<OodGnnReweighter>(
        model.representation_dim(), /*batch_size=*/8, ood, &rng);
  }
  std::unique_ptr<TrainStepPlanner> planner;
  if (compiled) {
    planner = std::make_unique<TrainStepPlanner>(bucket_nodes, bucket_edges);
  }

  TrainRunResult result;
  for (size_t step = 0; step < schedule.size(); ++step) {
    const auto [begin, end] = schedule[step];
    const std::int64_t allocs_before = TensorHeapAllocsThisThread();

    GraphBatch batch = [&] {
      // Batch construction happens before (and outside) the plan: its
      // tensors are shape-variable, so they live in the dynamic arena.
      ScopedDynamicArena batch_arena(compiled);
      return MakeBatch(dataset.graphs, dataset.train_idx, begin, end);
    }();

    const auto step_body = [&] {
      Variable z = model.Encode(batch, /*training=*/true, &rng);
      std::vector<float> weights;
      if (reweighter != nullptr && step >= reweight_from_step) {
        weights = reweighter->ComputeWeights(z.value());
      }
      Variable logits = model.Classify(z, /*training=*/true);
      Variable loss = SoftmaxCrossEntropy(logits, batch.class_labels, weights);
      optimizer.ZeroGrad();
      if (compiled) {
        loss.BackwardAndReleaseTape();
      } else {
        loss.Backward();
      }
      optimizer.Step();
      result.losses.push_back(loss.value()[0]);
    };
    if (planner != nullptr) {
      planner->RunStep(batch.num_graphs, batch.num_nodes,
                       static_cast<int>(batch.edge_src.size()), step_body);
    } else {
      step_body();
    }
    result.final_step_allocs = TensorHeapAllocsThisThread() - allocs_before;
  }

  for (const Variable& param : model.Parameters()) {
    result.params.push_back(param.value());
    result.grads.push_back(param.grad());
  }
  result.adam_slots = optimizer.GetState().slots;
  if (planner != nullptr) {
    result.plan = planner->stats();
    result.num_buckets = planner->num_buckets();
  }
  SetCompiledTrainEnabled(saved_compiled_train);
  return result;
}

std::vector<std::pair<size_t, size_t>> FixedSchedule(size_t train_size,
                                                     size_t batch_size,
                                                     int epochs) {
  std::vector<std::pair<size_t, size_t>> schedule;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (size_t begin = 0; begin < train_size; begin += batch_size) {
      schedule.emplace_back(begin, std::min(train_size, begin + batch_size));
    }
  }
  return schedule;
}

void ExpectRunsBitwiseEqual(const TrainRunResult& eager,
                            const TrainRunResult& compiled) {
  ASSERT_EQ(eager.losses.size(), compiled.losses.size());
  for (size_t i = 0; i < eager.losses.size(); ++i) {
    // Exact equality, not tolerance: replay runs the same kernels in
    // the same order on the same values; only addresses differ.
    EXPECT_EQ(eager.losses[i], compiled.losses[i]) << "loss at step " << i;
  }
  ASSERT_EQ(eager.params.size(), compiled.params.size());
  for (size_t i = 0; i < eager.params.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(eager.params[i], compiled.params[i]))
        << "param " << i;
    EXPECT_TRUE(BitwiseEqual(eager.grads[i], compiled.grads[i]))
        << "grad " << i;
  }
  ASSERT_EQ(eager.adam_slots.size(), compiled.adam_slots.size());
  for (size_t i = 0; i < eager.adam_slots.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(eager.adam_slots[i], compiled.adam_slots[i]))
        << "Adam slot " << i;
  }
}

TEST(TrainStepPlannerTest, DivergenceStrikesRetraceThenDemoteToEager) {
  TrainStepPlanner planner(8, 32);
  int num_ops = 1;
  const auto body = [&] {
    Tensor t(4, 4);
    t.Fill(1.f);
    Variable x = Variable::Constant(std::move(t));
    Variable y = Relu(x);
    for (int i = 1; i < num_ops; ++i) y = Relu(y);
  };
  const auto run = [&] { planner.RunStep(1, 8, 32, body); };

  run();  // warmup (eager)
  run();  // record
  run();  // clean replay
  EXPECT_EQ(planner.stats().replays, 1);
  EXPECT_EQ(planner.stats().records, 1);

  // One structure change: strike one — fall back prefix-safe, retrace.
  num_ops = 2;
  run();  // diverged replay
  EXPECT_EQ(planner.stats().fallbacks, 1);
  run();  // retrace at the new structure
  EXPECT_EQ(planner.stats().records, 2);
  EXPECT_EQ(planner.stats().retraces, 1);
  run();  // clean replay again — strikes reset
  EXPECT_EQ(planner.stats().replays, 2);

  // Structure changing on every replay: two consecutive strikes demote
  // the bucket to eager for the rest of the run.
  num_ops = 3;
  run();  // strike one → retrace phase
  num_ops = 4;
  run();  // re-record (with 4 ops)
  num_ops = 5;
  run();  // strike two → demoted
  EXPECT_EQ(planner.stats().fallbacks, 3);
  run();
  EXPECT_EQ(planner.stats().eager_steps, 1);
  EXPECT_EQ(planner.num_buckets(), 1u);
}

TEST(TrainStepPlannerTest, EnvelopeExceedRetracesWithinBucket) {
  TrainStepPlanner planner(8, 32);
  int rows = 4;
  const auto body = [&] {
    Tensor t(rows, 4);
    t.Fill(1.f);
    Variable x = Variable::Constant(std::move(t));
    (void)Relu(x);
  };
  planner.RunStep(1, 4, 8, body);  // warmup
  planner.RunStep(1, 4, 8, body);  // record; envelope = 4 nodes
  planner.RunStep(1, 4, 8, body);  // replay
  EXPECT_EQ(planner.stats().replays, 1);

  // Six nodes pads to the same bucket key (quantum 8) but exceeds the
  // recorded envelope: the bucket must ratchet up via a retrace, then
  // serve the larger profile from the plan.
  rows = 6;
  planner.RunStep(1, 6, 8, body);
  EXPECT_EQ(planner.stats().records, 2);
  EXPECT_EQ(planner.stats().retraces, 1);
  planner.RunStep(1, 6, 8, body);
  EXPECT_EQ(planner.stats().replays, 2);
  EXPECT_EQ(planner.stats().fallbacks, 0);
  EXPECT_EQ(planner.num_buckets(), 1u);
}

class CompiledTrainTest : public ::testing::TestWithParam<Method> {};

TEST_P(CompiledTrainTest, TrainStepsBitwiseIdenticalToEager) {
  GraphDataset dataset = TinyDataset();
  const auto schedule = FixedSchedule(dataset.train_idx.size(), 8, 4);
  // OOD-GNN's reweighter switches on midway through the run, under
  // plans recorded without it. Because its inner loop is
  // plan-suspended and the weighted loss keeps the op stream's shape,
  // the switch must neither diverge the plans nor perturb a single
  // bit of the values, gradients, or Adam moments.
  const size_t reweight_from = schedule.size() / 2;
  TrainRunResult eager = RunSchedule(GetParam(), /*compiled=*/false, dataset,
                                     schedule, reweight_from, 64, 256);
  TrainRunResult compiled = RunSchedule(GetParam(), /*compiled=*/true, dataset,
                                        schedule, reweight_from, 64, 256);
  ExpectRunsBitwiseEqual(eager, compiled);
  EXPECT_GT(compiled.plan.replays, 0);
  EXPECT_GT(compiled.num_buckets, 0u);
  EXPECT_EQ(compiled.plan.fallbacks, 0);
  EXPECT_EQ(eager.plan.replays, 0);  // Eager mode never planned.
}

TEST_P(CompiledTrainTest, SteadyStateCompiledStepIsHeapFree) {
  GraphDataset dataset = TinyDataset();
  const auto schedule = FixedSchedule(dataset.train_idx.size(), 8, 4);
  // Reweighting on from the first step: by the last step every bucket
  // is warm, so the whole step — batch build, forward, reweighter's
  // inner optimization, backward, Adam — must touch the heap zero
  // times (plan arena for the tape, dynamic arena for the rest).
  TrainRunResult compiled = RunSchedule(GetParam(), /*compiled=*/true, dataset,
                                        schedule, /*reweight_from_step=*/0,
                                        64, 256);
  EXPECT_GT(compiled.plan.replays, 0);
  EXPECT_EQ(compiled.final_step_allocs, 0);
}

TEST_P(CompiledTrainTest, BucketedShapeFuzzStaysBitwise) {
  GraphDataset dataset = TinyDataset();
  // Random batch sizes (1..10 graphs) over tight bucket quanta (8
  // nodes / 32 edges) drive many bucket keys, envelope-exceed
  // retraces within a bucket, the bounded-records per-block heap
  // fallback, and single-graph batches (the reweighter's rows<2 early
  // return). Whatever path each step takes, it must match eager.
  Rng shapes(2024);
  std::vector<std::pair<size_t, size_t>> schedule;
  const size_t train_size = dataset.train_idx.size();
  size_t cursor = 0;
  for (int step = 0; step < 40; ++step) {
    const size_t batch_size = static_cast<size_t>(shapes.UniformInt(1, 10));
    if (cursor >= train_size) cursor = 0;
    const size_t end = std::min(train_size, cursor + batch_size);
    schedule.emplace_back(cursor, end);
    cursor = end;
  }
  const size_t reweight_from = schedule.size() / 2;
  TrainRunResult eager = RunSchedule(GetParam(), /*compiled=*/false, dataset,
                                     schedule, reweight_from, 8, 32);
  TrainRunResult compiled = RunSchedule(GetParam(), /*compiled=*/true, dataset,
                                        schedule, reweight_from, 8, 32);
  ExpectRunsBitwiseEqual(eager, compiled);
  EXPECT_GT(compiled.num_buckets, 1u);
}

INSTANTIATE_TEST_SUITE_P(Methods, CompiledTrainTest,
                         ::testing::Values(Method::kGin, Method::kOodGnn),
                         [](const auto& info) {
                           return ParamName(info.param);
                         });

}  // namespace
}  // namespace oodgnn
