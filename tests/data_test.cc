#include <algorithm>
#include <map>
#include <set>

#include "gtest/gtest.h"
#include "src/data/molecule.h"
#include "src/data/protein.h"
#include "src/data/registry.h"
#include "src/data/social.h"
#include "src/data/splits.h"
#include "src/data/superpixel.h"
#include "src/data/triangles.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

int MaxNodes(const GraphDataset& ds, const std::vector<size_t>& split) {
  int max_nodes = 0;
  for (size_t idx : split) {
    max_nodes = std::max(max_nodes, ds.graphs[idx].num_nodes());
  }
  return max_nodes;
}

// ---------------------------------------------------------------------------
// Split helpers.
// ---------------------------------------------------------------------------

GraphDataset SyntheticSizes() {
  GraphDataset ds;
  ds.num_tasks = 1;
  ds.feature_dim = 1;
  for (int n = 2; n <= 41; ++n) {
    Graph g(n, 1);
    g.label = 0;
    ds.graphs.push_back(std::move(g));
  }
  return ds;
}

TEST(SplitsTest, SizeSplitRespectsRanges) {
  GraphDataset ds = SyntheticSizes();
  Rng rng(1);
  SizeSplit(&ds, /*train_min=*/2, /*train_max=*/20, /*test_min=*/21,
            /*test_max=*/100, /*max_train=*/100, /*valid_fraction=*/0.2,
            &rng);
  for (size_t idx : ds.train_idx) {
    EXPECT_LE(ds.graphs[idx].num_nodes(), 20);
  }
  for (size_t idx : ds.test_idx) {
    EXPECT_GE(ds.graphs[idx].num_nodes(), 21);
  }
  EXPECT_EQ(ds.train_idx.size() + ds.valid_idx.size(), 19u);
  ds.Validate();
}

TEST(SplitsTest, SizeSplitCapsTrainCount) {
  GraphDataset ds = SyntheticSizes();
  Rng rng(2);
  SizeSplit(&ds, 2, 41, 2, 41, /*max_train=*/10, 0.0, &rng);
  EXPECT_EQ(ds.train_idx.size(), 10u);
  // Everything unused but in the test range lands in test.
  EXPECT_EQ(ds.test_idx.size(), 30u);
}

TEST(SplitsTest, ScaffoldSplitGroupsAreAtomic) {
  GraphDataset ds;
  ds.num_tasks = 1;
  ds.feature_dim = 1;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Graph g(2, 1);
    g.label = 0;
    g.scaffold_id = rng.UniformInt(0, 19);
    ds.graphs.push_back(std::move(g));
  }
  ScaffoldSplit(&ds, 0.7, 0.15);
  auto scaffolds_of = [&](const std::vector<size_t>& split) {
    std::set<int64_t> ids;
    for (size_t idx : split) ids.insert(ds.graphs[idx].scaffold_id);
    return ids;
  };
  std::set<int64_t> train_ids = scaffolds_of(ds.train_idx);
  std::set<int64_t> test_ids = scaffolds_of(ds.test_idx);
  for (int64_t id : test_ids) {
    EXPECT_EQ(train_ids.count(id), 0u)
        << "scaffold " << id << " leaks into both splits";
  }
  ds.Validate();
}

TEST(SplitsTest, ScaffoldSplitPutsCommonScaffoldsInTrain) {
  GraphDataset ds;
  ds.num_tasks = 1;
  ds.feature_dim = 1;
  // Scaffold 0: 80 graphs, scaffold 1: 15, scaffold 2: 5.
  for (int s = 0; s < 3; ++s) {
    const int count = s == 0 ? 80 : (s == 1 ? 15 : 5);
    for (int i = 0; i < count; ++i) {
      Graph g(2, 1);
      g.label = 0;
      g.scaffold_id = s;
      ds.graphs.push_back(std::move(g));
    }
  }
  ScaffoldSplit(&ds, 0.8, 0.1);
  EXPECT_EQ(ds.graphs[ds.train_idx[0]].scaffold_id, 0);
  EXPECT_EQ(ds.graphs[ds.test_idx[0]].scaffold_id, 2);
}

TEST(SplitsTest, RandomSplitFractions) {
  GraphDataset ds = SyntheticSizes();
  Rng rng(4);
  RandomSplit(&ds, 0.5, 0.25, &rng);
  EXPECT_EQ(ds.train_idx.size(), 20u);
  EXPECT_EQ(ds.valid_idx.size(), 10u);
  EXPECT_EQ(ds.test_idx.size(), 10u);
  ds.Validate();
}

// ---------------------------------------------------------------------------
// TRIANGLES.
// ---------------------------------------------------------------------------

TrianglesConfig SmallTriangles() {
  TrianglesConfig config;
  config.num_train = 60;
  config.num_valid = 15;
  config.num_test = 30;
  return config;
}

TEST(TrianglesTest, LabelsMatchExactTriangleCounts) {
  GraphDataset ds = MakeTrianglesDataset(SmallTriangles(), 5);
  for (const Graph& g : ds.graphs) {
    EXPECT_EQ(CountTriangles(g), g.label + 1);
  }
}

TEST(TrianglesTest, SizeRangesPerSplit) {
  TrianglesConfig config = SmallTriangles();
  GraphDataset ds = MakeTrianglesDataset(config, 6);
  for (size_t idx : ds.train_idx) {
    EXPECT_LE(ds.graphs[idx].num_nodes(), config.train_max_nodes);
  }
  EXPECT_LE(MaxNodes(ds, ds.test_idx), config.test_max_nodes);
  // The OOD test split actually contains larger graphs than training.
  EXPECT_GT(MaxNodes(ds, ds.test_idx), config.train_max_nodes);
}

TEST(TrianglesTest, DegreeFeaturesAreOneHot) {
  GraphDataset ds = MakeTrianglesDataset(SmallTriangles(), 7);
  const Graph& g = ds.graphs[0];
  for (int v = 0; v < g.num_nodes(); ++v) {
    float row_sum = 0.f;
    for (int c = 0; c < g.feature_dim(); ++c) row_sum += g.x.at(v, c);
    EXPECT_FLOAT_EQ(row_sum, 1.f);
  }
}

TEST(TrianglesTest, DeterministicInSeed) {
  GraphDataset a = MakeTrianglesDataset(SmallTriangles(), 8);
  GraphDataset b = MakeTrianglesDataset(SmallTriangles(), 8);
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  for (size_t i = 0; i < a.graphs.size(); ++i) {
    EXPECT_EQ(a.graphs[i].label, b.graphs[i].label);
    EXPECT_EQ(a.graphs[i].num_edges(), b.graphs[i].num_edges());
  }
}

TEST(TrianglesTest, CoversAllClasses) {
  GraphDataset ds = MakeTrianglesDataset(SmallTriangles(), 9);
  std::set<int> labels;
  for (const Graph& g : ds.graphs) labels.insert(g.label);
  EXPECT_GE(labels.size(), 8u);  // Nearly all of the 10 classes.
}

// ---------------------------------------------------------------------------
// MNIST-75SP substitute.
// ---------------------------------------------------------------------------

SuperpixelConfig SmallSuperpixel() {
  SuperpixelConfig config;
  config.num_train = 30;
  config.num_valid = 10;
  config.num_test = 10;
  return config;
}

TEST(SuperpixelTest, RenderedDigitsAreNonTrivial) {
  Rng rng(10);
  for (int digit = 0; digit < 10; ++digit) {
    std::vector<float> image =
        superpixel_internal::RenderDigit(digit, 28, &rng);
    double total = 0.0;
    for (float v : image) {
      EXPECT_GE(v, 0.f);
      EXPECT_LE(v, 1.f);
      total += v;
    }
    EXPECT_GT(total, 5.0) << "digit " << digit << " rendered empty";
    EXPECT_LT(total, 28.0 * 28.0 * 0.5) << "digit " << digit << " blob";
  }
}

TEST(SuperpixelTest, SegmentationCoversImage) {
  Rng rng(11);
  std::vector<float> image =
      superpixel_internal::RenderDigit(3, 28, &rng);
  int clusters = 0;
  std::vector<int> assignment =
      superpixel_internal::SlicSegment(image, 28, 75, &clusters);
  EXPECT_GT(clusters, 10);
  EXPECT_LE(clusters, 75);
  for (int a : assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, clusters);
  }
}

TEST(SuperpixelTest, DatasetShapeAndSplits) {
  GraphDataset ds = MakeSuperpixelMnistDataset(SmallSuperpixel(), 12);
  EXPECT_EQ(ds.feature_dim, kSuperpixelFeatureDim);
  EXPECT_EQ(ds.test_idx.size(), 10u);   // Test(noise).
  EXPECT_EQ(ds.test2_idx.size(), 10u);  // Test(color).
  EXPECT_EQ(ds.test2_name, "Test(color)");
  for (const Graph& g : ds.graphs) {
    EXPECT_LE(g.num_nodes(), 75);
    EXPECT_GT(g.num_nodes(), 5);
  }
}

TEST(SuperpixelTest, TrainChannelsAreGrayscaleTestsAreNot) {
  GraphDataset ds = MakeSuperpixelMnistDataset(SmallSuperpixel(), 13);
  const Graph& train_graph = ds.graphs[ds.train_idx[0]];
  for (int v = 0; v < train_graph.num_nodes(); ++v) {
    EXPECT_FLOAT_EQ(train_graph.x.at(v, 0), train_graph.x.at(v, 1));
    EXPECT_FLOAT_EQ(train_graph.x.at(v, 1), train_graph.x.at(v, 2));
  }
  // Test(noise) stays grayscale (same noise on all channels).
  const Graph& noise_graph = ds.graphs[ds.test_idx[0]];
  for (int v = 0; v < noise_graph.num_nodes(); ++v) {
    EXPECT_FLOAT_EQ(noise_graph.x.at(v, 0), noise_graph.x.at(v, 1));
  }
  // Test(color) has independent channels.
  const Graph& color_graph = ds.graphs[ds.test2_idx[0]];
  bool channels_differ = false;
  for (int v = 0; v < color_graph.num_nodes(); ++v) {
    if (color_graph.x.at(v, 0) != color_graph.x.at(v, 1)) {
      channels_differ = true;
    }
  }
  EXPECT_TRUE(channels_differ);
}

// ---------------------------------------------------------------------------
// COLLAB substitute.
// ---------------------------------------------------------------------------

TEST(CollabTest, EgoIsConnectedToEveryone) {
  CollabConfig config;
  config.num_train = 12;
  config.num_valid = 3;
  config.num_test = 6;
  GraphDataset ds = MakeCollabDataset(config, 14);
  for (const Graph& g : ds.graphs) {
    std::set<int> ego_neighbors;
    for (size_t e = 0; e < g.edge_src.size(); ++e) {
      if (g.edge_src[e] == 0) ego_neighbors.insert(g.edge_dst[e]);
    }
    EXPECT_EQ(static_cast<int>(ego_neighbors.size()), g.num_nodes() - 1);
  }
}

TEST(CollabTest, FieldsHaveDistinctDensities) {
  CollabConfig config;
  config.num_train = 60;
  config.num_valid = 3;
  config.num_test = 6;
  GraphDataset ds = MakeCollabDataset(config, 15);
  std::map<int, double> density_by_label;
  std::map<int, int> count_by_label;
  for (size_t idx : ds.train_idx) {
    const Graph& g = ds.graphs[idx];
    density_by_label[g.label] +=
        static_cast<double>(g.num_edges()) / g.num_nodes();
    ++count_by_label[g.label];
  }
  for (auto& [label, total] : density_by_label) {
    total /= count_by_label[label];
  }
  // HEP (label 0, big cliques) is denser than Astro (label 2).
  EXPECT_GT(density_by_label[0], density_by_label[2]);
}

// ---------------------------------------------------------------------------
// Protein substitutes.
// ---------------------------------------------------------------------------

TEST(ProteinTest, SplitSizeRanges) {
  ProteinConfig config = Proteins25Config();
  config.num_train = 40;
  config.num_valid = 10;
  config.num_test = 40;
  GraphDataset ds = MakeProteinDataset(config, 16);
  for (size_t idx : ds.train_idx) {
    EXPECT_LE(ds.graphs[idx].num_nodes(), config.train_max_nodes);
  }
  for (size_t idx : ds.test_idx) {
    EXPECT_GE(ds.graphs[idx].num_nodes(), config.test_min_nodes);
  }
}

TEST(ProteinTest, TrainSizesCorrelateWithLabel) {
  ProteinConfig config = Proteins25Config();
  config.num_train = 200;
  config.num_valid = 10;
  config.num_test = 10;
  config.size_label_correlation = 0.8;
  GraphDataset ds = MakeProteinDataset(config, 17);
  double mean_size[2] = {0, 0};
  int count[2] = {0, 0};
  for (size_t idx : ds.train_idx) {
    const Graph& g = ds.graphs[idx];
    mean_size[g.label] += g.num_nodes();
    ++count[g.label];
  }
  EXPECT_GT(mean_size[1] / count[1], mean_size[0] / count[0] + 2.0);
}

TEST(ProteinTest, EnzymesAreTriangleRicher) {
  ProteinConfig config = Proteins25Config();
  config.num_train = 60;
  config.num_valid = 10;
  config.num_test = 10;
  config.size_label_correlation = 0.0;  // Isolate the motif signal.
  GraphDataset ds = MakeProteinDataset(config, 18);
  double triangles[2] = {0, 0};
  int count[2] = {0, 0};
  for (size_t idx : ds.train_idx) {
    const Graph& g = ds.graphs[idx];
    triangles[g.label] += static_cast<double>(CountTriangles(g));
    ++count[g.label];
  }
  EXPECT_GT(triangles[1] / count[1], triangles[0] / count[0]);
}

TEST(ProteinTest, DdConfigsMatchPaperRanges) {
  EXPECT_EQ(Dd200Config().train_max_nodes, 200);
  EXPECT_EQ(Dd200Config().test_min_nodes, 201);
  EXPECT_EQ(Dd300Config().train_max_nodes, 300);
  EXPECT_EQ(Dd300Config().test_min_nodes, 30);  // Full-range test.
}

// ---------------------------------------------------------------------------
// Molecule substitutes.
// ---------------------------------------------------------------------------

MoleculeDatasetSpec SmallMolecules(TaskType type = TaskType::kBinary) {
  MoleculeDatasetSpec spec = GetOgbMoleculeSpec("BACE", 0.5);
  spec.task_type = type;
  return spec;
}

TEST(MoleculeTest, FeatureRowsAreValid) {
  GraphDataset ds = MakeMoleculeDataset(SmallMolecules(), 19);
  for (const Graph& g : ds.graphs) {
    for (int v = 0; v < g.num_nodes(); ++v) {
      float type_sum = 0.f;
      for (int c = 0; c < 8; ++c) type_sum += g.x.at(v, c);
      EXPECT_FLOAT_EQ(type_sum, 1.f);  // One-hot atom type.
      float degree_sum = 0.f;
      for (int c = 8; c < 12; ++c) degree_sum += g.x.at(v, c);
      EXPECT_FLOAT_EQ(degree_sum, 1.f);  // One-hot degree bucket.
    }
  }
}

TEST(MoleculeTest, MoleculesAreConnected) {
  GraphDataset ds = MakeMoleculeDataset(SmallMolecules(), 20);
  for (size_t i = 0; i < std::min<size_t>(ds.graphs.size(), 50); ++i) {
    EXPECT_EQ(NumConnectedComponents(ds.graphs[i]), 1);
  }
}

TEST(MoleculeTest, BinaryLabelsRoughlyBalanced) {
  GraphDataset ds = MakeMoleculeDataset(SmallMolecules(), 21);
  int positives = 0;
  for (const Graph& g : ds.graphs) {
    positives += g.targets[0] > 0.5f ? 1 : 0;
  }
  const double rate = static_cast<double>(positives) / ds.graphs.size();
  EXPECT_GT(rate, 0.3);
  EXPECT_LT(rate, 0.7);
}

TEST(MoleculeTest, MissingLabelFractionApproximatelyMet) {
  MoleculeDatasetSpec spec = GetOgbMoleculeSpec("TOX21", 0.5);
  GraphDataset ds = MakeMoleculeDataset(spec, 22);
  int64_t missing = 0;
  int64_t total = 0;
  for (const Graph& g : ds.graphs) {
    for (float m : g.target_mask) {
      missing += m == 0.f ? 1 : 0;
      ++total;
    }
  }
  const double rate = static_cast<double>(missing) / total;
  EXPECT_NEAR(rate, spec.missing_label_fraction, 0.05);
}

TEST(MoleculeTest, RegressionTargetsAreStandardized) {
  GraphDataset ds =
      MakeMoleculeDataset(GetOgbMoleculeSpec("ESOL", 0.5), 23);
  double mean = 0.0;
  for (const Graph& g : ds.graphs) mean += g.targets[0];
  mean /= static_cast<double>(ds.graphs.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
}

TEST(MoleculeTest, ScaffoldSplitIsDisjoint) {
  GraphDataset ds = MakeMoleculeDataset(SmallMolecules(), 24);
  std::set<int64_t> train_scaffolds;
  for (size_t idx : ds.train_idx) {
    train_scaffolds.insert(ds.graphs[idx].scaffold_id);
  }
  for (size_t idx : ds.test_idx) {
    EXPECT_EQ(train_scaffolds.count(ds.graphs[idx].scaffold_id), 0u);
  }
}

TEST(MoleculeTest, AllNineSpecsBuild) {
  for (const std::string& name : OgbMoleculeNames()) {
    MoleculeDatasetSpec spec = GetOgbMoleculeSpec(name, 0.3);
    GraphDataset ds = MakeMoleculeDataset(spec, 25);
    EXPECT_EQ(ds.name, name);
    EXPECT_EQ(ds.num_tasks, spec.num_tasks);
    ds.Validate();
  }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(RegistryTest, AllNamesResolveAndValidate) {
  for (const std::string& name : AllDatasetNames()) {
    GraphDataset ds = MakeDatasetByName(name, 0.2, 26);
    EXPECT_EQ(ds.name, name);
    EXPECT_FALSE(ds.train_idx.empty()) << name;
    EXPECT_FALSE(ds.test_idx.empty()) << name;
  }
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeDatasetByName("NOPE", 1.0, 1), "unknown dataset");
}

}  // namespace
}  // namespace oodgnn
