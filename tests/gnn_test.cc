#include <algorithm>
#include <numeric>

#include "gtest/gtest.h"
#include "src/gnn/encoder.h"
#include "src/gnn/gat_conv.h"
#include "src/gnn/sage_conv.h"
#include "src/tensor/gradcheck.h"
#include "src/gnn/factor_gcn.h"
#include "src/gnn/gcn_conv.h"
#include "src/gnn/gin_conv.h"
#include "src/gnn/model_zoo.h"
#include "src/gnn/pna_conv.h"
#include "src/gnn/pool_common.h"
#include "src/gnn/readout.h"
#include "src/gnn/sag_pool.h"
#include "src/gnn/topk_pool.h"
#include "src/gnn/virtual_node.h"
#include "src/graph/batch.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

/// Two small graphs batched together: a triangle and a path.
GraphBatch SmallBatch(int feature_dim = 4) {
  Graph a(3, feature_dim);
  a.AddUndirectedEdge(0, 1);
  a.AddUndirectedEdge(1, 2);
  a.AddUndirectedEdge(2, 0);
  a.label = 0;
  Graph b(4, feature_dim);
  b.AddUndirectedEdge(0, 1);
  b.AddUndirectedEdge(1, 2);
  b.AddUndirectedEdge(2, 3);
  b.label = 1;
  Rng rng(42);
  for (Graph* g : {&a, &b}) {
    g->x = Tensor::RandomNormal(g->num_nodes(), feature_dim, &rng);
  }
  return GraphBatch::FromGraphs({&a, &b});
}

/// Applies a node permutation within each graph of a batch.
GraphBatch PermuteBatch(const GraphBatch& batch,
                        const std::vector<int>& perm) {
  GraphBatch out = batch;
  out.features = Tensor(batch.num_nodes, batch.features.cols());
  for (int v = 0; v < batch.num_nodes; ++v) {
    const float* src = batch.features.row(v);
    std::copy(src, src + batch.features.cols(),
              out.features.row(perm[static_cast<size_t>(v)]));
    out.node_graph[static_cast<size_t>(perm[static_cast<size_t>(v)])] =
        batch.node_graph[static_cast<size_t>(v)];
  }
  for (size_t e = 0; e < batch.edge_src.size(); ++e) {
    out.edge_src[e] = perm[static_cast<size_t>(batch.edge_src[e])];
    out.edge_dst[e] = perm[static_cast<size_t>(batch.edge_dst[e])];
  }
  // Rebuild in_degree and the cached message-passing plans for the
  // permuted topology (copied plans would silently index the old one).
  out.FinalizePlans();
  return out;
}

TEST(GinConvTest, OutputShape) {
  Rng rng(1);
  GinConv conv(4, 8, &rng);
  GraphBatch batch = SmallBatch();
  Variable h = Variable::Constant(batch.features);
  Variable out = conv.Forward(h, batch, /*training=*/false);
  EXPECT_EQ(out.rows(), 7);
  EXPECT_EQ(out.cols(), 8);
}

TEST(GinConvTest, AggregatesNeighborSum) {
  // With ε=0 and an identity-like check: input to the MLP must be
  // h_v + Σ_{u∈N(v)} h_u. We verify via the no-edge case equalling the
  // pure self term.
  Rng rng(2);
  GinConv conv(2, 2, &rng);
  Graph g(2, 2);
  g.x.at(0, 0) = 1.f;
  g.x.at(1, 1) = 1.f;
  GraphBatch isolated = GraphBatch::FromGraphs({&g});
  Graph connected = g;
  connected.AddUndirectedEdge(0, 1);
  GraphBatch joined = GraphBatch::FromGraphs({&connected});
  Variable h0 = Variable::Constant(isolated.features);
  Variable out_isolated = conv.Forward(h0, isolated, false);
  Variable out_joined = conv.Forward(h0, joined, false);
  // Adding an edge must change the output.
  EXPECT_FALSE(AllClose(out_isolated.value(), out_joined.value()));
}

TEST(GcnConvTest, SymmetricNormalizationOnRegularGraph) {
  // On a d-regular graph every node has the same normalized
  // aggregation, so identical inputs give identical outputs.
  Rng rng(3);
  GcnConv conv(2, 3, &rng);
  Graph ring(4, 2);
  for (int i = 0; i < 4; ++i) ring.AddUndirectedEdge(i, (i + 1) % 4);
  ring.x.Fill(1.f);
  GraphBatch batch = GraphBatch::FromGraphs({&ring});
  Variable out =
      conv.Forward(Variable::Constant(batch.features), batch);
  for (int r = 1; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      EXPECT_NEAR(out.value().at(r, c), out.value().at(0, c), 1e-5);
    }
  }
}

TEST(GcnConvTest, HandlesIsolatedNodes) {
  Rng rng(4);
  GcnConv conv(2, 2, &rng);
  Graph g(3, 2);  // No edges at all.
  g.x.Fill(1.f);
  GraphBatch batch = GraphBatch::FromGraphs({&g});
  Variable out = conv.Forward(Variable::Constant(batch.features), batch);
  EXPECT_EQ(out.rows(), 3);
  for (int i = 0; i < out.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.value()[i]));
  }
}

TEST(PnaConvTest, OutputShapeAndFiniteness) {
  Rng rng(5);
  PnaConv conv(4, 6, /*delta=*/1.1f, &rng);
  GraphBatch batch = SmallBatch();
  Variable out = conv.Forward(Variable::Constant(batch.features), batch);
  EXPECT_EQ(out.rows(), 7);
  EXPECT_EQ(out.cols(), 6);
  for (int i = 0; i < out.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.value()[i]));
  }
}

TEST(PnaConvTest, DeltaComputation) {
  Graph g(3, 1);
  g.AddUndirectedEdge(0, 1);  // Degrees 1, 1, 0 -> log2+log2+log1 over 3.
  const float delta = ComputePnaDelta({&g});
  EXPECT_NEAR(delta, 2.f * std::log(2.f) / 3.f, 1e-5);
}

TEST(ReadoutTest, SumMeanMaxValues) {
  Tensor h = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  std::vector<int> node_graph = {0, 0, 1};
  Variable hv = Variable::Constant(h);
  Tensor sum = Readout(hv, node_graph, 2, ReadoutKind::kSum).value();
  EXPECT_FLOAT_EQ(sum.at(0, 0), 4.f);
  EXPECT_FLOAT_EQ(sum.at(1, 1), 6.f);
  Tensor mean = Readout(hv, node_graph, 2, ReadoutKind::kMean).value();
  EXPECT_FLOAT_EQ(mean.at(0, 1), 3.f);
  Tensor max = Readout(hv, node_graph, 2, ReadoutKind::kMax).value();
  EXPECT_FLOAT_EQ(max.at(0, 0), 3.f);
}

TEST(VirtualNodeTest, DistributeAddsPerGraphState) {
  Rng rng(6);
  VirtualNode vn(2, &rng);
  GraphBatch batch = SmallBatch(2);
  Variable h = Variable::Constant(batch.features);
  Variable state = Variable::Constant(
      Tensor::FromData(2, 2, {1.f, 1.f, -1.f, -1.f}));
  Variable out = vn.Distribute(h, state, batch);
  // Graph 0 nodes get +1, graph 1 nodes get −1.
  EXPECT_NEAR(out.value().at(0, 0) - h.value().at(0, 0), 1.f, 1e-6);
  EXPECT_NEAR(out.value().at(5, 0) - h.value().at(5, 0), -1.f, 1e-6);
}

TEST(PoolCommonTest, SelectTopKRespectsRatioAndGraphs) {
  GraphBatch batch = SmallBatch();
  Tensor scores(7, 1);
  for (int v = 0; v < 7; ++v) scores.at(v, 0) = static_cast<float>(v);
  std::vector<int> kept = SelectTopKNodes(scores, batch, 0.5f);
  // Graph 0 has 3 nodes -> keep 2; graph 1 has 4 -> keep 2.
  EXPECT_EQ(kept.size(), 4u);
  // Highest scores win: nodes {1,2} from graph 0, {5,6} from graph 1.
  EXPECT_EQ(kept, (std::vector<int>{1, 2, 5, 6}));
}

TEST(PoolCommonTest, AtLeastOneNodePerGraph) {
  GraphBatch batch = SmallBatch();
  Tensor scores(7, 1);
  std::vector<int> kept = SelectTopKNodes(scores, batch, 0.01f);
  EXPECT_EQ(kept.size(), 2u);  // One per graph.
}

TEST(PoolCommonTest, InduceSubgraphRemapsEdges) {
  GraphBatch batch = SmallBatch();
  // Keep nodes 0,1 (graph 0) and 3,4 (graph 1).
  GraphBatch sub = InduceSubgraph(batch, {0, 1, 3, 4});
  EXPECT_EQ(sub.num_nodes, 4);
  // Triangle edges between 0,1 survive (both directions).
  int surviving = static_cast<int>(sub.edge_src.size());
  EXPECT_EQ(surviving, 4);  // (0,1),(1,0) from graph0; (3,4),(4,3)->(2,3),(3,2).
  for (size_t e = 0; e < sub.edge_src.size(); ++e) {
    EXPECT_LT(sub.edge_src[e], 4);
    EXPECT_LT(sub.edge_dst[e], 4);
  }
  EXPECT_EQ(sub.node_graph, (std::vector<int>{0, 0, 1, 1}));
}

TEST(TopKPoolTest, GatesAndCoarsens) {
  Rng rng(7);
  TopKPool pool(4, 0.5f, &rng);
  GraphBatch batch = SmallBatch();
  PoolResult result =
      pool.Forward(Variable::Constant(batch.features), batch);
  EXPECT_EQ(result.h.rows(), 4);
  EXPECT_EQ(result.h.cols(), 4);
  EXPECT_EQ(result.topology.num_nodes, 4);
  EXPECT_EQ(result.topology.num_graphs, 2);
}

TEST(SagPoolTest, StructureAwareScores) {
  Rng rng(8);
  SagPool pool(4, 0.5f, &rng);
  GraphBatch batch = SmallBatch();
  PoolResult result =
      pool.Forward(Variable::Constant(batch.features), batch);
  EXPECT_EQ(result.h.rows(), 4);
  EXPECT_EQ(result.kept.size(), 4u);
}

TEST(FactorGcnTest, FactorConcatShape) {
  Rng rng(9);
  FactorGcnConv conv(4, 8, /*num_factors=*/4, &rng);
  GraphBatch batch = SmallBatch();
  Variable out = conv.Forward(Variable::Constant(batch.features), batch);
  EXPECT_EQ(out.cols(), 8);
  EXPECT_EQ(conv.last_attention().size(), 4u);
  EXPECT_EQ(conv.last_attention()[0].rows(),
            static_cast<int>(batch.edge_src.size()));
  // Attention values are probabilities.
  for (int i = 0; i < conv.last_attention()[0].size(); ++i) {
    EXPECT_GT(conv.last_attention()[0][i], 0.f);
    EXPECT_LT(conv.last_attention()[0][i], 1.f);
  }
}

// ---------------------------------------------------------------------------
// Permutation invariance: encoders must be invariant to node relabeling.
// ---------------------------------------------------------------------------

class EncoderPermutationInvariance
    : public ::testing::TestWithParam<Method> {};

TEST_P(EncoderPermutationInvariance, EncodeIsPermutationInvariant) {
  const Method method = GetParam();
  Rng rng(10);
  EncoderConfig config;
  config.feature_dim = 4;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.dropout = 0.f;
  GraphPredictionModel model(method, config, /*output_dim=*/3, &rng);

  GraphBatch batch = SmallBatch();
  // Permute within each graph: rotate graph 0's nodes, swap two of
  // graph 1's nodes.
  std::vector<int> perm = {1, 2, 0, 4, 3, 5, 6};
  GraphBatch permuted = PermuteBatch(batch, perm);

  Rng fwd1(1);
  Rng fwd2(1);
  Variable z1 = model.Encode(batch, /*training=*/false, &fwd1);
  Variable z2 = model.Encode(permuted, /*training=*/false, &fwd2);
  EXPECT_TRUE(AllClose(z1.value(), z2.value(), 1e-3f))
      << MethodName(method);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncoders, EncoderPermutationInvariance,
    ::testing::Values(Method::kGcn, Method::kGcnVirtual, Method::kGin,
                      Method::kGinVirtual, Method::kFactorGcn, Method::kPna,
                      Method::kOodGnn),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = MethodName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

class ModelZooForward : public ::testing::TestWithParam<Method> {};

TEST_P(ModelZooForward, PredictsCorrectShapeAndBackprops) {
  Rng rng(11);
  EncoderConfig config;
  config.feature_dim = 4;
  config.hidden_dim = 8;
  config.num_layers = 2;
  GraphPredictionModel model(GetParam(), config, /*output_dim=*/5, &rng);
  GraphBatch batch = SmallBatch();
  Rng fwd(2);
  Variable logits = model.Predict(batch, /*training=*/true, &fwd);
  EXPECT_EQ(logits.rows(), 2);
  EXPECT_EQ(logits.cols(), 5);

  model.ZeroGrad();
  Sum(Square(logits)).Backward();
  // At least one parameter receives a non-zero gradient.
  float max_grad = 0.f;
  for (const Variable& p : model.Parameters()) {
    max_grad = std::max(max_grad, p.grad().MaxAbs());
  }
  EXPECT_GT(max_grad, 0.f);
  EXPECT_GT(model.NumParameters(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsSuite, ModelZooForward, ::testing::ValuesIn(AllMethods()),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = MethodName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

// ---------------------------------------------------------------------------
// Finite-difference gradient checks for every model-zoo layer. The
// leaves are the layer's parameters plus the node features, so both the
// weight gradients and the message-passing input gradients are checked.
// Layers with discrete structure (top-k selection, max readout/PNA max
// aggregation, LeakyReLU kinks) are checked on fixed random inputs
// whose margins comfortably exceed the finite-difference step, keeping
// the piecewise-linear regions stable under perturbation.
// ---------------------------------------------------------------------------

constexpr double kGradTolerance = 5e-2;

TEST(GnnGradCheckTest, GatConv) {
  Rng rng(21);
  GatConv conv(3, 4, /*num_heads=*/2, &rng);
  GraphBatch batch = SmallBatch(3);
  Variable h = Variable::Param(Tensor::RandomNormal(batch.num_nodes, 3, &rng));
  std::vector<Variable> leaves = conv.Parameters();
  leaves.push_back(h);
  const GradCheckResult result = CheckGradients(
      leaves, [&] { return Sum(Square(conv.Forward(h, batch))); });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

TEST(GnnGradCheckTest, PnaConv) {
  Rng rng(22);
  PnaConv conv(3, 4, /*delta=*/1.1f, &rng);
  GraphBatch batch = SmallBatch(3);
  Variable h = Variable::Param(Tensor::RandomNormal(batch.num_nodes, 3, &rng));
  std::vector<Variable> leaves = conv.Parameters();
  leaves.push_back(h);
  const GradCheckResult result = CheckGradients(
      leaves, [&] { return Sum(Square(conv.Forward(h, batch))); });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

TEST(GnnGradCheckTest, SageConv) {
  Rng rng(23);
  SageConv conv(3, 4, &rng);
  GraphBatch batch = SmallBatch(3);
  Variable h = Variable::Param(Tensor::RandomNormal(batch.num_nodes, 3, &rng));
  std::vector<Variable> leaves = conv.Parameters();
  leaves.push_back(h);
  const GradCheckResult result = CheckGradients(
      leaves, [&] { return Sum(Square(conv.Forward(h, batch))); });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

TEST(GnnGradCheckTest, TopKPool) {
  Rng rng(24);
  TopKPool pool(3, 0.5f, &rng);
  GraphBatch batch = SmallBatch(3);
  // Well-separated rows keep the per-graph top-k selection stable under
  // the finite-difference perturbation (the selection itself is
  // piecewise constant; the gradient is checked within one region).
  Tensor features(batch.num_nodes, 3);
  for (int v = 0; v < batch.num_nodes; ++v) {
    for (int c = 0; c < 3; ++c) {
      features.at(v, c) = 0.7f * static_cast<float>(v + 1) *
                          (c % 2 == 0 ? 1.f : -1.f);
    }
  }
  Variable h = Variable::Param(features);
  std::vector<Variable> leaves = pool.Parameters();
  leaves.push_back(h);
  const GradCheckResult result = CheckGradients(
      leaves, [&] { return Sum(Square(pool.Forward(h, batch).h)); });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

TEST(GnnGradCheckTest, SagPool) {
  Rng rng(25);
  SagPool pool(3, 0.5f, &rng);
  // Two path graphs, not SmallBatch: in a triangle every node's GCN
  // neighborhood is the whole graph, so the SAG scores are exactly tied
  // and any finite-difference step flips the top-k selection. Paths
  // have distinct neighborhoods; a steep feature ramp then keeps the
  // per-graph score ordering far from any tie.
  Graph a(4, 3);
  a.AddUndirectedEdge(0, 1);
  a.AddUndirectedEdge(1, 2);
  a.AddUndirectedEdge(2, 3);
  Graph b(3, 3);
  b.AddUndirectedEdge(0, 1);
  b.AddUndirectedEdge(1, 2);
  GraphBatch batch = GraphBatch::FromGraphs({&a, &b});
  Tensor features(batch.num_nodes, 3);
  for (int v = 0; v < batch.num_nodes; ++v) {
    for (int c = 0; c < 3; ++c) {
      features.at(v, c) = static_cast<float>(v + 1) +
                          0.1f * static_cast<float>(c);
    }
  }
  Variable h = Variable::Param(features);
  std::vector<Variable> leaves = pool.Parameters();
  leaves.push_back(h);
  const GradCheckResult result = CheckGradients(
      leaves, [&] { return Sum(Square(pool.Forward(h, batch).h)); });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

TEST(GnnGradCheckTest, VirtualNode) {
  Rng rng(26);
  VirtualNode vn(3, &rng);
  GraphBatch batch = SmallBatch(3);
  Variable h = Variable::Param(Tensor::RandomNormal(batch.num_nodes, 3, &rng));
  Variable state =
      Variable::Param(Tensor::RandomNormal(batch.num_graphs, 3, &rng));
  std::vector<Variable> leaves = vn.Parameters();
  leaves.push_back(h);
  leaves.push_back(state);
  const GradCheckResult result = CheckGradients(leaves, [&] {
    Variable distributed = vn.Distribute(h, state, batch);
    Variable updated = vn.Update(state, distributed, batch,
                                 /*training=*/false);
    return Add(Sum(Square(distributed)), Sum(Square(updated)));
  });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

TEST(GnnGradCheckTest, FactorGcnConv) {
  Rng rng(27);
  FactorGcnConv conv(3, 4, /*num_factors=*/2, &rng);
  GraphBatch batch = SmallBatch(3);
  Variable h = Variable::Param(Tensor::RandomNormal(batch.num_nodes, 3, &rng));
  std::vector<Variable> leaves = conv.Parameters();
  leaves.push_back(h);
  const GradCheckResult result = CheckGradients(
      leaves, [&] { return Sum(Square(conv.Forward(h, batch))); });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

class ReadoutGradCheck : public ::testing::TestWithParam<ReadoutKind> {};

TEST_P(ReadoutGradCheck, MatchesFiniteDifferences) {
  Rng rng(28);
  GraphBatch batch = SmallBatch(3);
  // Distinct magnitudes keep the max readout's argmax stable under the
  // finite-difference step.
  Tensor features(batch.num_nodes, 3);
  for (int v = 0; v < batch.num_nodes; ++v) {
    for (int c = 0; c < 3; ++c) {
      features.at(v, c) =
          0.5f * static_cast<float>(v + 1) + 0.2f * static_cast<float>(c);
    }
  }
  Variable h = Variable::Param(features);
  const GradCheckResult result = CheckGradients({h}, [&] {
    return Sum(Square(
        Readout(h, batch.node_graph, batch.num_graphs, GetParam())));
  });
  EXPECT_LT(result.max_relative_error, kGradTolerance);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ReadoutGradCheck,
                         ::testing::Values(ReadoutKind::kSum,
                                           ReadoutKind::kMean,
                                           ReadoutKind::kMax),
                         [](const ::testing::TestParamInfo<ReadoutKind>& info) {
                           switch (info.param) {
                             case ReadoutKind::kSum:
                               return "Sum";
                             case ReadoutKind::kMean:
                               return "Mean";
                             case ReadoutKind::kMax:
                               return "Max";
                           }
                           return "Unknown";
                         });

TEST(ModelZooTest, OodGnnSharesGinParameterCount) {
  Rng rng(12);
  EncoderConfig config;
  config.feature_dim = 5;
  config.hidden_dim = 16;
  config.num_layers = 3;
  GraphPredictionModel gin(Method::kGin, config, 2, &rng);
  GraphPredictionModel ood(Method::kOodGnn, config, 2, &rng);
  EXPECT_EQ(gin.NumParameters(), ood.NumParameters());
}

TEST(ModelZooTest, MethodNamesMatchPaperRows) {
  EXPECT_STREQ(MethodName(Method::kGcnVirtual), "GCN-virtual");
  EXPECT_STREQ(MethodName(Method::kOodGnn), "OOD-GNN");
  EXPECT_EQ(BaselineMethods().size(), 8u);
  EXPECT_EQ(AllMethods().size(), 9u);
}

}  // namespace
}  // namespace oodgnn
