// Golden end-to-end regression tests: a tiny fixed-seed TrainAndEvaluate
// run per Method, compared against committed loss curves and metrics.
// The whole pipeline is deterministic (seeded RNG, bitwise-stable
// kernels across thread counts), so any drift here means a behavioral
// change somewhere between data generation and optimizer stepping.
//
// To regenerate after an *intentional* change:
//   OODGNN_REGEN_GOLDEN=1 ./tests/golden_test
// and paste the printed kGolden table over the one below.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/train/trainer.h"

namespace oodgnn {
namespace {

constexpr int kEpochs = 3;
// Deterministic double-accumulated losses reproduce far below this, but
// a small slack keeps the pin robust to harmless float-to-double
// printing round trips in the committed literals.
constexpr double kLossTolerance = 1e-6;
constexpr double kMetricTolerance = 1e-9;

GraphDataset GoldenDataset() {
  TrianglesConfig config;
  config.num_train = 24;
  config.num_valid = 8;
  config.num_test = 8;
  config.train_max_nodes = 12;
  config.test_max_nodes = 20;
  return MakeTrianglesDataset(config, 123);
}

TrainConfig GoldenTrainConfig(const GraphDataset& dataset) {
  TrainConfig config;
  config.epochs = kEpochs;
  config.batch_size = 8;
  config.seed = 17;
  config.encoder.feature_dim = dataset.feature_dim;
  config.encoder.hidden_dim = 8;
  config.encoder.num_layers = 2;
  config.encoder.dropout = 0.3f;
  return config;
}

struct GoldenRecord {
  Method method;
  double losses[kEpochs];
  double train_metric;
  double valid_metric;
  double test_metric;
};

// Committed expectations (regenerate with OODGNN_REGEN_GOLDEN=1).
constexpr GoldenRecord kGolden[] = {
    {Method::kGcn, {2.2419679959615073, 2.3044892946879068, 2.2252657413482666}, 0.083333333333333329, 0.125, 0},
    {Method::kGcnVirtual, {2.284733772277832, 2.3162124951680503, 2.4114742279052734}, 0.083333333333333329, 0.125, 0},
    {Method::kGin, {2.3390527566274009, 2.4501217206319175, 2.319859504699707}, 0.083333333333333329, 0, 0.125},
    {Method::kGinVirtual, {2.4497055212656655, 2.4538679122924805, 2.4450083573659263}, 0.083333333333333329, 0.25, 0},
    {Method::kFactorGcn, {2.3378413518269858, 2.3695348103841147, 2.3120253880818686}, 0.16666666666666666, 0, 0.25},
    {Method::kPna, {2.3522284030914307, 2.229675610860189, 2.2061824003855386}, 0.083333333333333329, 0.125, 0},
    {Method::kTopKPool, {2.2955768903096518, 2.2848323186238608, 2.2880226771036782}, 0.125, 0, 0.25},
    {Method::kSagPool, {2.2977808316548667, 2.2892775535583496, 2.2883186340332031}, 0.083333333333333329, 0, 0.25},
    {Method::kOodGnn, {2.4123642444610596, 2.3872445424397788, 2.3229634761810303}, 0.083333333333333329, 0, 0.125},
    {Method::kGat, {2.5172811349232993, 2.491122086842855, 2.5078179836273193}, 0.041666666666666664, 0.125, 0.125},
    {Method::kGraphSage, {2.2249623139699302, 2.3241135279337564, 2.2600063482920327}, 0.125, 0.25, 0},
};

bool RegenRequested() {
  const char* env = std::getenv("OODGNN_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

const char* EnumName(Method method) {
  switch (method) {
    case Method::kGcn: return "kGcn";
    case Method::kGcnVirtual: return "kGcnVirtual";
    case Method::kGin: return "kGin";
    case Method::kGinVirtual: return "kGinVirtual";
    case Method::kFactorGcn: return "kFactorGcn";
    case Method::kPna: return "kPna";
    case Method::kTopKPool: return "kTopKPool";
    case Method::kSagPool: return "kSagPool";
    case Method::kOodGnn: return "kOodGnn";
    case Method::kGat: return "kGat";
    case Method::kGraphSage: return "kGraphSage";
  }
  return "kUnknown";
}

class GoldenEndToEnd : public ::testing::TestWithParam<GoldenRecord> {};

TEST_P(GoldenEndToEnd, LossCurveAndMetricsMatchCommittedRun) {
  const GoldenRecord& golden = GetParam();
  GraphDataset dataset = GoldenDataset();
  const TrainConfig config = GoldenTrainConfig(dataset);
  const TrainResult result = TrainAndEvaluate(golden.method, dataset, config);
  ASSERT_EQ(result.epoch_losses.size(), static_cast<size_t>(kEpochs));

  if (RegenRequested()) {
    std::printf("    {Method::%s, {%.17g, %.17g, %.17g}, %.17g, %.17g, "
                "%.17g},\n",
                EnumName(golden.method), result.epoch_losses[0],
                result.epoch_losses[1], result.epoch_losses[2],
                result.train_metric, result.valid_metric,
                result.test_metric);
    GTEST_SKIP() << "regen mode: printed fresh golden record";
  }

  for (int e = 0; e < kEpochs; ++e) {
    EXPECT_NEAR(result.epoch_losses[static_cast<size_t>(e)], golden.losses[e],
                kLossTolerance)
        << MethodName(golden.method) << " epoch " << e;
  }
  EXPECT_NEAR(result.train_metric, golden.train_metric, kMetricTolerance)
      << MethodName(golden.method);
  EXPECT_NEAR(result.valid_metric, golden.valid_metric, kMetricTolerance)
      << MethodName(golden.method);
  EXPECT_NEAR(result.test_metric, golden.test_metric, kMetricTolerance)
      << MethodName(golden.method);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsGolden, GoldenEndToEnd, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenRecord>& info) {
      std::string name = MethodName(info.param.method);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

}  // namespace
}  // namespace oodgnn
