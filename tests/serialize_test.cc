#include "src/nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <string>

#include "gtest/gtest.h"
#include "src/data/triangles.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/batch.h"
#include "src/nn/mlp.h"
#include "src/util/file.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesValues) {
  Rng rng(1);
  Mlp original({3, 5, 2}, &rng);
  const std::string path = TempPath("mlp.ckpt");
  ASSERT_TRUE(SaveParameters(path, original));

  Rng rng2(2);  // Different init.
  Mlp restored({3, 5, 2}, &rng2);
  ASSERT_TRUE(LoadParameters(path, &restored));

  std::vector<Variable> a = original.Parameters();
  std::vector<Variable> b = restored.Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(AllClose(a[i].value(), b[i].value(), 0.f));
  }
}

TEST(SerializeTest, RestoredModelPredictsIdentically) {
  TrianglesConfig data_config;
  data_config.num_train = 20;
  data_config.num_valid = 5;
  data_config.num_test = 5;
  GraphDataset ds = MakeTrianglesDataset(data_config, 3);
  GraphBatch batch = MakeBatch(ds.graphs, ds.train_idx, 0, 8);

  EncoderConfig encoder;
  encoder.feature_dim = ds.feature_dim;
  encoder.hidden_dim = 8;
  encoder.num_layers = 2;
  encoder.dropout = 0.f;

  Rng rng1(4);
  GraphPredictionModel original(Method::kGin, encoder, ds.num_tasks, &rng1);
  const std::string path = TempPath("gin.ckpt");
  ASSERT_TRUE(SaveParameters(path, original));

  Rng rng2(5);
  GraphPredictionModel restored(Method::kGin, encoder, ds.num_tasks, &rng2);
  ASSERT_TRUE(LoadParameters(path, &restored));

  Rng fwd1(6);
  Rng fwd2(6);
  Tensor a = original.Predict(batch, false, &fwd1).value();
  Tensor b = restored.Predict(batch, false, &fwd2).value();
  EXPECT_TRUE(AllClose(a, b, 0.f));
}

TEST(SerializeTest, MissingFileFailsGracefully) {
  Rng rng(7);
  Mlp mlp({2, 2}, &rng);
  EXPECT_FALSE(LoadParameters(TempPath("does_not_exist.ckpt"), &mlp));
  EXPECT_FALSE(SaveParameters("/nonexistent_dir/x.ckpt", mlp));
}

TEST(SerializeTest, RejectsWrongMagic) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  const char junk[32] = "this is not a checkpoint";
  std::fwrite(junk, 1, sizeof(junk), file);
  std::fclose(file);
  Rng rng(8);
  Mlp mlp({2, 2}, &rng);
  EXPECT_FALSE(LoadParameters(path, &mlp));
}

TEST(SerializeTest, ShapeMismatchFailsWithoutModifyingModule) {
  Rng rng(9);
  Mlp small({2, 3}, &rng);
  const std::string path = TempPath("small.ckpt");
  ASSERT_TRUE(SaveParameters(path, small));
  Rng rng_b(11);
  Mlp bigger({2, 4}, &rng_b);
  const Tensor before = bigger.Parameters()[0].value();
  EXPECT_FALSE(LoadParameters(path, &bigger));
  EXPECT_TRUE(AllClose(bigger.Parameters()[0].value(), before, 0.f));
}

TEST(SerializeTest, ParameterCountMismatchFails) {
  Rng rng(10);
  Mlp two_layers({2, 3, 1}, &rng);
  const std::string path = TempPath("two.ckpt");
  ASSERT_TRUE(SaveParameters(path, two_layers));
  Mlp one_layer({2, 1}, &rng);
  EXPECT_FALSE(LoadParameters(path, &one_layer));
}

TEST(SerializeTest, RejectsHeaderDeclaringMoreTensorsThanFileHolds) {
  Rng rng(12);
  Mlp mlp({3, 4, 2}, &rng);
  const std::string path = TempPath("inflated.ckpt");
  ASSERT_TRUE(SaveParameters(path, mlp));
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes));
  ASSERT_GE(bytes.size(), 12u);
  // Inflate the header-declared tensor count (bytes 8..11) far beyond
  // what the file can back; the loader must refuse before allocating.
  const uint32_t huge = 0x7FFFFFFF;
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  ASSERT_TRUE(WriteStringToFile(path, bytes));
  EXPECT_FALSE(LoadParameters(path, &mlp));
}

TEST(SerializeTest, FuzzedParameterFilesNeverCrashTheLoader) {
  Rng rng(13);
  Mlp mlp({3, 4, 2}, &rng);
  const std::string good_path = TempPath("fuzz_good.ckpt");
  ASSERT_TRUE(SaveParameters(good_path, mlp));
  std::string good;
  ASSERT_TRUE(ReadFileToString(good_path, &good));
  const std::string path = TempPath("fuzz_mutant.ckpt");

  // Every truncation must fail cleanly: the payload no longer backs the
  // header-declared tensor list.
  for (size_t len = 0; len < good.size(); len += 3) {
    ASSERT_TRUE(WriteStringToFile(path, good.substr(0, len)));
    EXPECT_FALSE(LoadParameters(path, &mlp)) << "truncation at " << len;
  }

  // Header and shape corruption must fail; flips inside the float
  // payload may legally decode (they are valid files with different
  // values) but must never crash or over-allocate.
  for (size_t offset = 0; offset < good.size(); offset += 5) {
    std::string mutated = good;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0xFF);
    ASSERT_TRUE(WriteStringToFile(path, mutated));
    Rng scratch_rng(14);
    Mlp scratch({3, 4, 2}, &scratch_rng);
    LoadParameters(path, &scratch);  // Must not crash; result may vary.
  }

  // Appended trailing garbage must be rejected.
  ASSERT_TRUE(WriteStringToFile(path, good + std::string(7, '\xAB')));
  EXPECT_FALSE(LoadParameters(path, &mlp));

  // The pristine file still loads after all of the above.
  EXPECT_TRUE(LoadParameters(good_path, &mlp));
}

}  // namespace
}  // namespace oodgnn
