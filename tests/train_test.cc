#include "src/train/trainer.h"

#include "gtest/gtest.h"
#include "src/data/triangles.h"
#include "src/train/experiment.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

/// Trivially separable dataset: label = 1 iff the graph has edges.
GraphDataset EasyDataset(int per_class) {
  GraphDataset ds;
  ds.name = "easy";
  ds.num_tasks = 2;
  ds.feature_dim = 2;
  Rng rng(5);
  for (int i = 0; i < 2 * per_class; ++i) {
    const int label = i % 2;
    const int n = static_cast<int>(rng.UniformInt(4, 8));
    Graph g(n, 2);
    for (int v = 0; v < n; ++v) g.x.at(v, 0) = 1.f;
    if (label == 1) {
      for (int v = 0; v + 1 < n; ++v) g.AddUndirectedEdge(v, v + 1);
    }
    g.label = label;
    const size_t idx = ds.graphs.size();
    if (i < per_class) {
      ds.train_idx.push_back(idx);
    } else if (i < per_class * 3 / 2) {
      ds.valid_idx.push_back(idx);
    } else {
      ds.test_idx.push_back(idx);
    }
    ds.graphs.push_back(std::move(g));
  }
  return ds;
}

TrainConfig FastConfig() {
  TrainConfig config;
  config.epochs = 8;
  config.batch_size = 16;
  config.lr = 5e-3f;
  config.encoder.hidden_dim = 8;
  config.encoder.num_layers = 2;
  config.encoder.dropout = 0.f;
  return config;
}

TEST(TrainerTest, GinLearnsEasyTask) {
  GraphDataset ds = EasyDataset(40);
  TrainResult result = TrainAndEvaluate(Method::kGin, ds, FastConfig());
  EXPECT_GT(result.test_metric, 0.95);
  EXPECT_EQ(result.epoch_losses.size(), 8u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
  EXPECT_GT(result.num_parameters, 0);
}

TEST(TrainerTest, OodGnnLearnsEasyTaskAndRecordsWeights) {
  GraphDataset ds = EasyDataset(40);
  TrainConfig config = FastConfig();
  config.ood.weights.epochs_reweight = 5;
  TrainResult result = TrainAndEvaluate(Method::kOodGnn, ds, config);
  EXPECT_GT(result.test_metric, 0.9);
  // Final-epoch weights were recorded, one per training graph seen.
  EXPECT_EQ(result.final_weights.size(), ds.train_idx.size());
  EXPECT_EQ(result.epoch_decorrelation_losses.size(), 8u);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  GraphDataset ds = EasyDataset(20);
  TrainConfig config = FastConfig();
  config.seed = 77;
  TrainResult a = TrainAndEvaluate(Method::kGcn, ds, config);
  TrainResult b = TrainAndEvaluate(Method::kGcn, ds, config);
  EXPECT_EQ(a.test_metric, b.test_metric);
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);
}

TEST(TrainerTest, EvalCadenceDoesNotPerturbTraining) {
  // Regression pin for the eval-RNG isolation fix: evaluation runs
  // grad-free on its own seed-derived stream and draws nothing, so the
  // per-epoch training losses must be bitwise identical whether eval
  // runs every epoch or only every third one. Dropout is enabled so the
  // training path genuinely consumes randomness — an eval that touched
  // the training stream would shift every subsequent epoch.
  GraphDataset ds = EasyDataset(20);
  TrainConfig config = FastConfig();
  config.encoder.dropout = 0.3f;
  config.seed = 11;
  TrainConfig sparse = config;
  sparse.eval_every = 3;
  const TrainResult every = TrainAndEvaluate(Method::kGin, ds, config);
  const TrainResult third = TrainAndEvaluate(Method::kGin, ds, sparse);
  EXPECT_EQ(every.epoch_losses, third.epoch_losses);
}

TEST(TrainerTest, FinalEpochAlwaysEvaluated) {
  GraphDataset ds = EasyDataset(10);
  TrainConfig config = FastConfig();
  config.epochs = 4;
  config.eval_every = 100;  // Larger than the run: only the last epoch.
  const TrainResult result = TrainAndEvaluate(Method::kGcn, ds, config);
  EXPECT_GE(result.valid_metric, 0.0);  // -1 would mean "never evaluated".
  EXPECT_GE(result.test_metric, 0.0);
}

TEST(TrainerTest, EvaluateSplitDrawsNothingFromRng) {
  GraphDataset ds = EasyDataset(10);
  Rng model_rng(3);
  EncoderConfig encoder;
  encoder.feature_dim = ds.feature_dim;
  encoder.hidden_dim = 8;
  encoder.num_layers = 2;
  GraphPredictionModel model(Method::kGin, encoder, ds.OutputDim(),
                             &model_rng);
  Rng eval_rng(9);
  const std::string before = eval_rng.SaveState();
  EvaluateSplit(&model, ds, ds.train_idx, /*batch_size=*/8, &eval_rng);
  EXPECT_EQ(eval_rng.SaveState(), before);
}

TEST(TrainerTest, WarmupSkipsReweighting) {
  GraphDataset ds = EasyDataset(20);
  TrainConfig config = FastConfig();
  config.epochs = 3;
  config.ood.warmup_epochs = 3;  // Never reweights.
  TrainResult result = TrainAndEvaluate(Method::kOodGnn, ds, config);
  EXPECT_TRUE(result.final_weights.empty());
}

TEST(TrainerTest, RegressionUsesRmseAndLowerIsBetter) {
  // Tiny regression dataset: target = number of edges / 4.
  GraphDataset ds;
  ds.name = "reg";
  ds.task_type = TaskType::kRegression;
  ds.num_tasks = 1;
  ds.feature_dim = 1;
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    const int n = static_cast<int>(rng.UniformInt(3, 8));
    Graph g(n, 1);
    for (int v = 0; v < n; ++v) g.x.at(v, 0) = 1.f;
    for (int v = 0; v + 1 < n; ++v) g.AddUndirectedEdge(v, v + 1);
    g.targets = {static_cast<float>(g.num_edges()) / 4.f};
    const size_t idx = ds.graphs.size();
    (i < 40 ? ds.train_idx : (i < 50 ? ds.valid_idx : ds.test_idx))
        .push_back(idx);
    ds.graphs.push_back(std::move(g));
  }
  TrainConfig config = FastConfig();
  config.epochs = 30;
  TrainResult result = TrainAndEvaluate(Method::kGin, ds, config);
  EXPECT_GE(result.test_metric, 0.0);
  EXPECT_LT(result.test_metric, 2.0);  // RMSE on ~[1.5, 3.5] targets.
  EXPECT_FALSE(HigherIsBetter(TaskType::kRegression));
  EXPECT_TRUE(HigherIsBetter(TaskType::kBinary));
}

TEST(ExperimentTest, RunSeedsCollectsAllRuns) {
  GraphDataset ds = EasyDataset(15);
  TrainConfig config = FastConfig();
  config.epochs = 2;
  MethodScores scores = RunSeeds(Method::kGcn, ds, config, 3);
  EXPECT_EQ(scores.test.size(), 3u);
  EXPECT_EQ(scores.train.size(), 3u);
}

TEST(ExperimentTest, FormatCellPercentAndRaw) {
  EXPECT_EQ(FormatCell({0.5, 0.7}, true), "60.0±14.1");
  EXPECT_EQ(FormatCell({1.0}, false), "1.00±0.00");
  EXPECT_EQ(FormatCell({}, true), "-");
}

TEST(ExperimentTest, BenchOptionsDefaultsAndOverrides) {
  {
    const char* argv[] = {"prog"};
    Flags flags(1, const_cast<char**>(argv));
    BenchOptions options = BenchOptions::FromFlags(flags);
    EXPECT_FALSE(options.full);
    ApplyFastDefaults(flags, 7, 99, 0.25, &options);
    EXPECT_EQ(options.seeds, 7);
    EXPECT_EQ(options.train.epochs, 99);
    EXPECT_DOUBLE_EQ(options.data_scale, 0.25);
  }
  {
    const char* argv[] = {"prog", "--full", "--epochs=5"};
    Flags flags(3, const_cast<char**>(argv));
    BenchOptions options = BenchOptions::FromFlags(flags);
    EXPECT_TRUE(options.full);
    EXPECT_EQ(options.train.epochs, 5);  // Explicit beats --full.
    ApplyFastDefaults(flags, 7, 99, 0.25, &options);
    EXPECT_EQ(options.train.epochs, 5);  // --full suppresses fast defaults.
    EXPECT_NE(options.seeds, 7);
  }
}

}  // namespace
}  // namespace oodgnn
