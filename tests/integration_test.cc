// Cross-module integration tests: every method trains end-to-end on a
// real generated benchmark, OOD-GNN's reweighting machinery interacts
// correctly with the trainer, and the headline qualitative claims of
// the paper hold on a small planted-spurious-correlation task.

#include <algorithm>

#include "gtest/gtest.h"
#include "src/core/decorrelation.h"
#include "src/data/protein.h"
#include "src/data/registry.h"
#include "src/data/triangles.h"
#include "src/train/experiment.h"
#include "src/train/trainer.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

TrainConfig SmokeConfig() {
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 32;
  config.encoder.hidden_dim = 16;
  config.encoder.num_layers = 2;
  return config;
}

class AllMethodsSmoke : public ::testing::TestWithParam<Method> {};

TEST_P(AllMethodsSmoke, TrainsOnTrianglesWithoutCrashing) {
  TrianglesConfig data_config;
  data_config.num_train = 80;
  data_config.num_valid = 20;
  data_config.num_test = 30;
  GraphDataset ds = MakeTrianglesDataset(data_config, 31);
  TrainResult result = TrainAndEvaluate(GetParam(), ds, SmokeConfig());
  EXPECT_GE(result.test_metric, 0.0);
  EXPECT_LE(result.test_metric, 1.0);
  EXPECT_EQ(result.epoch_losses.size(), 3u);
  for (double loss : result.epoch_losses) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethodsSmoke, ::testing::ValuesIn(AllMethods()),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = MethodName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(IntegrationTest, BinaryMultiTaskPipelineWorks) {
  GraphDataset ds = MakeDatasetByName("TOX21", 0.2, 32);
  TrainConfig config = SmokeConfig();
  TrainResult result = TrainAndEvaluate(Method::kOodGnn, ds, config);
  EXPECT_GT(result.test_metric, 0.3);  // A valid AUC, not garbage.
  EXPECT_LE(result.test_metric, 1.0);
}

TEST(IntegrationTest, RegressionPipelineWorks) {
  GraphDataset ds = MakeDatasetByName("FREESOLV", 0.5, 33);
  TrainConfig config = SmokeConfig();
  config.epochs = 6;
  TrainResult result = TrainAndEvaluate(Method::kOodGnn, ds, config);
  EXPECT_GT(result.test_metric, 0.0);
  EXPECT_LT(result.test_metric, 10.0);
}

TEST(IntegrationTest, SecondTestSplitIsEvaluated) {
  GraphDataset ds = MakeDatasetByName("MNIST-75SP", 0.15, 34);
  TrainResult result =
      TrainAndEvaluate(Method::kGcn, ds, SmokeConfig());
  EXPECT_GE(result.test2_metric, 0.0);  // Test(color) present.
}

TEST(IntegrationTest, ReweightingReducesRepresentationDependence) {
  // Train OOD-GNN briefly on proteins and verify the learned weights,
  // applied to the final representations, give a lower dependence
  // than uniform weights — the mechanism of Eq. (7) working through
  // the whole stack.
  ProteinConfig data_config = Proteins25Config();
  data_config.num_train = 64;
  data_config.num_valid = 16;
  data_config.num_test = 16;
  GraphDataset ds = MakeProteinDataset(data_config, 35);

  Rng rng(36);
  EncoderConfig encoder;
  encoder.feature_dim = ds.feature_dim;
  encoder.hidden_dim = 8;
  encoder.num_layers = 2;
  encoder.dropout = 0.f;
  GraphPredictionModel model(Method::kOodGnn, encoder, 2, &rng);

  GraphBatch batch = MakeBatch(ds.graphs, ds.train_idx, 0, 64);
  Variable z = model.Encode(batch, /*training=*/false, &rng);

  RffConfig rff_config;
  rff_config.num_functions = 2;
  Rng rff_rng(37);
  RffFeatureMap rff(8, rff_config, &rff_rng);
  Tensor features = rff.Transform(z.value());
  Variable uniform = Variable::Constant(Tensor(64, 1, 1.f));
  const double uniform_dep =
      DecorrelationLoss(features, rff.feature_source_dim(), uniform)
          .value()[0];

  WeightOptimizerConfig weight_config;
  weight_config.epochs_reweight = 30;
  GraphWeightOptimizer optimizer(weight_config);
  WeightOptimizerResult result =
      optimizer.Optimize(z.value(), rff, nullptr);
  EXPECT_LE(result.final_loss, uniform_dep + 1e-6);
}

TEST(IntegrationTest, EvaluateSplitMatchesTrainerReporting) {
  GraphDataset ds = MakeDatasetByName("TRIANGLES", 0.15, 38);
  Rng rng(39);
  EncoderConfig encoder;
  encoder.feature_dim = ds.feature_dim;
  encoder.hidden_dim = 8;
  encoder.num_layers = 2;
  GraphPredictionModel model(Method::kGin, encoder, ds.num_tasks, &rng);
  const double a =
      EvaluateSplit(&model, ds, ds.test_idx, /*batch_size=*/32, &rng);
  const double b =
      EvaluateSplit(&model, ds, ds.test_idx, /*batch_size=*/7, &rng);
  // Metric must not depend on evaluation batching.
  EXPECT_NEAR(a, b, 1e-9);
}

}  // namespace
}  // namespace oodgnn
