// Parameterized property sweep across every registered benchmark
// dataset: generation is deterministic in the seed, split families
// match the paper's protocol, and the feature matrices are sane.

#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "src/data/registry.h"
#include "src/train/experiment.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

constexpr double kScale = 0.2;

class DatasetProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetProperties, DeterministicInSeed) {
  GraphDataset a = MakeDatasetByName(GetParam(), kScale, 123);
  GraphDataset b = MakeDatasetByName(GetParam(), kScale, 123);
  ASSERT_EQ(a.graphs.size(), b.graphs.size());
  for (size_t i = 0; i < a.graphs.size(); ++i) {
    ASSERT_EQ(a.graphs[i].num_nodes(), b.graphs[i].num_nodes());
    ASSERT_EQ(a.graphs[i].num_edges(), b.graphs[i].num_edges());
    ASSERT_TRUE(AllClose(a.graphs[i].x, b.graphs[i].x, 0.f));
  }
  EXPECT_EQ(a.train_idx, b.train_idx);
  EXPECT_EQ(a.test_idx, b.test_idx);
}

TEST_P(DatasetProperties, DifferentSeedsDiffer) {
  GraphDataset a = MakeDatasetByName(GetParam(), kScale, 1);
  GraphDataset b = MakeDatasetByName(GetParam(), kScale, 2);
  bool any_difference = a.graphs.size() != b.graphs.size();
  for (size_t i = 0; !any_difference && i < a.graphs.size(); ++i) {
    any_difference = a.graphs[i].num_edges() != b.graphs[i].num_edges() ||
                     !AllClose(a.graphs[i].x, b.graphs[i].x, 0.f);
  }
  EXPECT_TRUE(any_difference);
}

TEST_P(DatasetProperties, FeaturesAreFiniteAndNonDegenerate) {
  GraphDataset ds = MakeDatasetByName(GetParam(), kScale, 7);
  double total_abs = 0.0;
  for (const Graph& g : ds.graphs) {
    for (int i = 0; i < g.x.size(); ++i) {
      ASSERT_TRUE(std::isfinite(g.x[i]));
      total_abs += std::fabs(g.x[i]);
    }
  }
  EXPECT_GT(total_abs, 0.0) << "all-zero features";
}

TEST_P(DatasetProperties, EverySplitNonEmptyAndLabelsCoverTask) {
  GraphDataset ds = MakeDatasetByName(GetParam(), kScale, 9);
  EXPECT_FALSE(ds.train_idx.empty());
  EXPECT_FALSE(ds.test_idx.empty());
  if (ds.task_type == TaskType::kMulticlass) {
    std::set<int> train_labels;
    for (size_t idx : ds.train_idx) {
      train_labels.insert(ds.graphs[idx].label);
    }
    EXPECT_GE(train_labels.size(), 2u) << "train split single-class";
  }
}

TEST_P(DatasetProperties, ReadoutConventionIsDefined) {
  // Every registered dataset maps to one of the two conventions.
  ReadoutKind kind = RecommendedReadout(GetParam());
  EXPECT_TRUE(kind == ReadoutKind::kSum || kind == ReadoutKind::kMean);
}

TEST_P(DatasetProperties, SizeShiftHoldsForSizeSplitFamilies) {
  const std::string name = GetParam();
  const bool size_split = name == "TRIANGLES" || name == "COLLAB" ||
                          name == "PROTEINS_25" || name == "DD_200";
  if (!size_split) return;
  GraphDataset ds = MakeDatasetByName(name, kScale, 11);
  int train_max = 0;
  int test_max = 0;
  for (size_t idx : ds.train_idx) {
    train_max = std::max(train_max, ds.graphs[idx].num_nodes());
  }
  for (size_t idx : ds.test_idx) {
    test_max = std::max(test_max, ds.graphs[idx].num_nodes());
  }
  EXPECT_GT(test_max, train_max)
      << name << ": test split contains no larger graphs";
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetProperties,
    ::testing::ValuesIn(AllDatasetNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace oodgnn
