#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/journal.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/tensor/tensor.h"
#include "src/train/trainer.h"
#include "src/util/file.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

/// Minimal recursive-descent JSON reader used to verify journal lines:
/// validates the full grammar subset the writer emits and flattens
/// scalars into a dotted-path → literal map ("a.b" → "3.5", strings
/// unquoted/unescaped).
class MiniJson {
 public:
  bool Parse(const std::string& text,
             std::map<std::string, std::string>* out) {
    text_ = &text;
    pos_ = 0;
    out_ = out;
    SkipSpace();
    if (!ParseValue("")) return false;
    SkipSpace();
    return pos_ == text.size();
  }

 private:
  bool ParseValue(const std::string& path) {
    SkipSpace();
    if (pos_ >= text_->size()) return false;
    const char c = (*text_)[pos_];
    if (c == '{') return ParseObject(path);
    if (c == '[') return ParseArray(path);
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      Emit(path, s);
      return true;
    }
    return ParseLiteral(path);
  }

  bool ParseObject(const std::string& path) {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Expect(':')) return false;
      const std::string child = path.empty() ? key : path + "." + key;
      if (!ParseValue(child)) return false;
      SkipSpace();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool ParseArray(const std::string& path) {
    ++pos_;  // '['
    SkipSpace();
    if (Peek(']')) return true;
    int index = 0;
    while (true) {
      if (!ParseValue(path + "[" + std::to_string(index++) + "]")) {
        return false;
      }
      SkipSpace();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_->size() || (*text_)[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_->size()) {
      const char c = (*text_)[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_->size()) return false;
        const char e = (*text_)[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_->size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = (*text_)[pos_++];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : std::tolower(h) - 'a' + 10);
            }
            out->push_back(static_cast<char>(code));  // ASCII escapes only
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseLiteral(const std::string& path) {
    const size_t start = pos_;
    while (pos_ < text_->size() &&
           std::string("-+.0123456789eEtruefalsn").find((*text_)[pos_]) !=
               std::string::npos) {
      ++pos_;
    }
    const std::string token = text_->substr(start, pos_ - start);
    if (token.empty()) return false;
    if (token == "true" || token == "false" || token == "null") {
      Emit(path, token);
      return true;
    }
    size_t consumed = 0;
    try {
      (void)std::stod(token, &consumed);
    } catch (...) {
      return false;
    }
    if (consumed != token.size()) return false;
    Emit(path, token);
    return true;
  }

  void Emit(const std::string& path, const std::string& value) {
    (*out_)[path] = value;
  }
  void SkipSpace() {
    while (pos_ < text_->size() &&
           std::isspace(static_cast<unsigned char>((*text_)[pos_]))) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < text_->size() && (*text_)[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }

  const std::string* text_ = nullptr;
  size_t pos_ = 0;
  std::map<std::string, std::string>* out_ = nullptr;
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) lines.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

/// Restores the profiling flag and clears trace/metrics state so tests
/// cannot leak instrumentation into each other.
class ProfilingGuard {
 public:
  explicit ProfilingGuard(bool enabled) : previous_(obs::ProfilingEnabled()) {
    obs::SetProfilingEnabled(enabled);
  }
  ~ProfilingGuard() {
    obs::ResetTrace();
    obs::MetricsRegistry::Global().Reset();
    obs::SetProfilingEnabled(previous_);
  }

 private:
  bool previous_;
};

/// Trivially separable two-class dataset (mirrors train_test.cc).
GraphDataset EasyDataset(int per_class) {
  GraphDataset ds;
  ds.name = "easy";
  ds.num_tasks = 2;
  ds.feature_dim = 2;
  Rng rng(5);
  for (int i = 0; i < 2 * per_class; ++i) {
    const int label = i % 2;
    const int n = static_cast<int>(rng.UniformInt(4, 8));
    Graph g(n, 2);
    for (int v = 0; v < n; ++v) g.x.at(v, 0) = 1.f;
    if (label == 1) {
      for (int v = 0; v + 1 < n; ++v) g.AddUndirectedEdge(v, v + 1);
    }
    g.label = label;
    const size_t idx = ds.graphs.size();
    if (i < per_class) {
      ds.train_idx.push_back(idx);
    } else if (i < per_class * 3 / 2) {
      ds.valid_idx.push_back(idx);
    } else {
      ds.test_idx.push_back(idx);
    }
    ds.graphs.push_back(std::move(g));
  }
  return ds;
}

TrainConfig TinyConfig() {
  TrainConfig config;
  config.epochs = 4;
  config.batch_size = 16;
  config.lr = 5e-3f;
  config.encoder.hidden_dim = 8;
  config.encoder.num_layers = 2;
  config.encoder.dropout = 0.f;
  config.ood.weights.epochs_reweight = 5;
  return config;
}

// --- zero-overhead contract -------------------------------------------------
// These run first (gtest executes in declaration order): they assert
// that with profiling disabled, nothing in the process has touched the
// global registries.

TEST(ObsZeroOverheadTest, DisabledKernelsRegisterNoMetrics) {
  obs::SetProfilingEnabled(false);
  Tensor a(8, 8, 1.f);
  Tensor b(8, 8, 2.f);
  Tensor out(8, 8);
  GetBackend().MatMulAcc(a, b, &out);
  GetBackend().Axpy(0.5f, a, &b);
  (void)GetBackend().Dot(a, b);
  EXPECT_EQ(obs::MetricsRegistry::Global().size(), 0u);
  EXPECT_EQ(obs::MetricsRegistry::Global().GetSnapshot().counters.size(), 0u);
}

TEST(ObsZeroOverheadTest, DisabledTraceScopesRecordNothing) {
  obs::SetProfilingEnabled(false);
  {
    OODGNN_TRACE_SCOPE("should_not_appear");
    OODGNN_TRACE_SCOPE("nested_should_not_appear");
  }
  EXPECT_TRUE(obs::TraceSnapshot().empty());
}

// --- metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterSemantics) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.value(), 6);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsTest, CounterIsThreadSafe) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST(MetricsTest, GaugeSemantics) {
  obs::Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.Set(-1.0);
  EXPECT_EQ(gauge.value(), -1.0);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(MetricsTest, HistogramSummaryAndQuantile) {
  obs::StreamingHistogram histogram;
  EXPECT_EQ(histogram.GetSummary().count, 0);
  EXPECT_EQ(histogram.ApproxQuantile(0.5), 0.0);
  for (int v = 1; v <= 1000; ++v) histogram.Observe(static_cast<double>(v));
  const auto summary = histogram.GetSummary();
  EXPECT_EQ(summary.count, 1000);
  EXPECT_DOUBLE_EQ(summary.min, 1.0);
  EXPECT_DOUBLE_EQ(summary.max, 1000.0);
  EXPECT_DOUBLE_EQ(summary.sum, 1000.0 * 1001.0 / 2.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 500.5);
  // Power-of-two buckets: the median estimate is exact within 2x.
  const double median = histogram.ApproxQuantile(0.5);
  EXPECT_GE(median, 250.0);
  EXPECT_LE(median, 1024.0);
  histogram.Reset();
  EXPECT_EQ(histogram.GetSummary().count, 0);
}

TEST(MetricsTest, RegistryLookupIsIdempotentAndSnapshotSorted) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("zeta");
  obs::Counter& b = registry.GetCounter("zeta");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  registry.GetCounter("alpha").Add(1);
  registry.GetGauge("loss").Set(0.25);
  registry.GetHistogram("latency").Observe(10.0);
  EXPECT_EQ(registry.size(), 4u);

  const obs::MetricsSnapshot snapshot = registry.GetSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "alpha");  // map order = sorted
  EXPECT_EQ(snapshot.counters[1].first, "zeta");
  EXPECT_EQ(snapshot.counters[1].second, 3);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 0.25);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1);

  registry.Reset();
  EXPECT_EQ(registry.GetSnapshot().counters[1].second, 0);
  EXPECT_EQ(registry.size(), 4u);  // entries survive Reset

  const std::string table = snapshot.ToTableString();
  EXPECT_NE(table.find("zeta"), std::string::npos);
  EXPECT_NE(table.find("latency"), std::string::npos);

  std::map<std::string, std::string> parsed;
  EXPECT_TRUE(MiniJson().Parse(snapshot.ToJson(), &parsed));
  EXPECT_EQ(parsed["counters.zeta"], "3");
  EXPECT_EQ(parsed["histograms.latency.count"], "1");
}

// --- json -------------------------------------------------------------------

TEST(JsonTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(obs::JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(obs::JsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(obs::JsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, NumbersRoundTripAndNonFiniteIsNull) {
  EXPECT_EQ(obs::JsonNumber(0.5), "0.5");
  EXPECT_EQ(obs::JsonNumber(3.0), "3");
  EXPECT_EQ(obs::JsonNumber(std::nan("")), "null");
  EXPECT_EQ(obs::JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, ObjectWriterRoundTrips) {
  const std::string json =
      obs::JsonObjectWriter()
          .Put("name", "run \"A\"")
          .Put("epoch", 7)
          .Put("loss", 0.125)
          .Put("improved", true)
          .PutRaw("nested", obs::JsonObjectWriter().Put("x", 1).Build())
          .Put("curve", std::vector<double>{1.0, 0.5})
          .Build();
  std::map<std::string, std::string> parsed;
  ASSERT_TRUE(MiniJson().Parse(json, &parsed)) << json;
  EXPECT_EQ(parsed["name"], "run \"A\"");
  EXPECT_EQ(parsed["epoch"], "7");
  EXPECT_EQ(parsed["loss"], "0.125");
  EXPECT_EQ(parsed["improved"], "true");
  EXPECT_EQ(parsed["nested.x"], "1");
  EXPECT_EQ(parsed["curve[0]"], "1");
  EXPECT_EQ(parsed["curve[1]"], "0.5");
}

// --- trace ------------------------------------------------------------------

TEST(TraceTest, NestedScopesAggregateSelfTime) {
  ProfilingGuard guard(true);
  obs::ResetTrace();
  constexpr int kIterations = 3;
  for (int i = 0; i < kIterations; ++i) {
    OODGNN_TRACE_SCOPE("outer");
    {
      OODGNN_TRACE_SCOPE("inner");
      // A little real work so durations are nonzero on coarse clocks.
      volatile double sink = 0.0;
      for (int k = 0; k < 50000; ++k) sink = sink + static_cast<double>(k);
    }
  }
  const std::vector<obs::PhaseStats> snapshot = obs::TraceSnapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  const obs::PhaseStats* outer = nullptr;
  const obs::PhaseStats* inner = nullptr;
  for (const obs::PhaseStats& s : snapshot) {
    if (s.name == "outer") outer = &s;
    if (s.name == "inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, kIterations);
  EXPECT_EQ(inner->count, kIterations);
  // The inner span's inclusive time is exactly the outer's child time,
  // so outer self = outer total − inner total.
  EXPECT_EQ(outer->child_us, inner->total_us);
  EXPECT_GE(outer->total_us, inner->total_us);
  EXPECT_GE(outer->self_us(), 0);
  EXPECT_EQ(inner->child_us, 0);
  EXPECT_GE(outer->min_us, 0);
  EXPECT_GE(outer->max_us, outer->min_us);
  EXPECT_LE(outer->max_us, outer->total_us);

  const std::string table = obs::RenderProfile(snapshot);
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("inner"), std::string::npos);

  obs::ResetTrace();
  EXPECT_TRUE(obs::TraceSnapshot().empty());
}

TEST(TraceTest, ScopesOnWorkerThreadsMerge) {
  ProfilingGuard guard(true);
  obs::ResetTrace();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { OODGNN_TRACE_SCOPE("worker_phase"); });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<obs::PhaseStats> snapshot = obs::TraceSnapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "worker_phase");
  EXPECT_EQ(snapshot[0].count, kThreads);
}

TEST(TraceTest, EnabledKernelsRecordCounters) {
  ProfilingGuard guard(true);
  obs::MetricsRegistry::Global().Reset();
  Tensor a(4, 4, 1.f);
  Tensor b(4, 4, 2.f);
  Tensor out(4, 4);
  GetBackend().MatMulAcc(a, b, &out);
  GetBackend().MatMulAcc(a, b, &out);
  std::int64_t matmul_calls = 0;
  std::int64_t matmul_elems = 0;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().GetSnapshot().counters) {
    if (name == "kernel/matmul/calls") matmul_calls = value;
    if (name == "kernel/matmul/elems") matmul_elems = value;
  }
  EXPECT_EQ(matmul_calls, 2);
  EXPECT_EQ(matmul_elems, 2 * 16);
}

// --- journal ----------------------------------------------------------------

TEST(JournalTest, WritesParseableRoundTrippingLines) {
  const std::string path = testing::TempDir() + "/obs_journal_test.jsonl";
  {
    obs::RunJournal journal(path);
    ASSERT_TRUE(journal.ok());
    journal.WriteLine(obs::JsonObjectWriter()
                          .Put("event", "epoch")
                          .Put("epoch", 1)
                          .Put("loss", 0.75)
                          .Build());
    journal.WriteLine(obs::JsonObjectWriter()
                          .Put("event", "run_summary")
                          .Put("test_metric", 0.921875)
                          .Build());
  }
  std::string content;
  ASSERT_TRUE(ReadFileToString(path, &content));
  const std::vector<std::string> lines = SplitLines(content);
  ASSERT_EQ(lines.size(), 2u);
  std::map<std::string, std::string> first;
  std::map<std::string, std::string> second;
  ASSERT_TRUE(MiniJson().Parse(lines[0], &first)) << lines[0];
  ASSERT_TRUE(MiniJson().Parse(lines[1], &second)) << lines[1];
  EXPECT_EQ(first["event"], "epoch");
  EXPECT_EQ(first["epoch"], "1");
  EXPECT_EQ(first["loss"], "0.75");
  EXPECT_EQ(second["event"], "run_summary");
  EXPECT_EQ(second["test_metric"], "0.921875");  // exact double round-trip
}

TEST(JournalTest, UnwritablePathDropsRecordsInsteadOfAborting) {
  obs::RunJournal journal("/nonexistent-dir/journal.jsonl");
  EXPECT_FALSE(journal.ok());
  journal.WriteLine("{}");  // must not crash
}

// --- end-to-end: instrumentation does not change training -------------------

TEST(ObsIntegrationTest, ProfiledTrainingIsBitwiseIdentical) {
  GraphDataset ds = EasyDataset(24);
  const TrainConfig config = TinyConfig();

  obs::SetProfilingEnabled(false);
  obs::CloseGlobalJournal();
  const TrainResult baseline =
      TrainAndEvaluate(Method::kOodGnn, ds, config);

  const std::string path = testing::TempDir() + "/obs_profiled_run.jsonl";
  TrainResult profiled;
  {
    ProfilingGuard guard(true);
    obs::OpenGlobalJournal(path);
    profiled = TrainAndEvaluate(Method::kOodGnn, ds, config);
    obs::CloseGlobalJournal();
  }

  // Bitwise-identical results with instrumentation on.
  ASSERT_EQ(baseline.epoch_losses.size(), profiled.epoch_losses.size());
  for (size_t i = 0; i < baseline.epoch_losses.size(); ++i) {
    EXPECT_EQ(baseline.epoch_losses[i], profiled.epoch_losses[i]) << i;
  }
  EXPECT_EQ(baseline.train_metric, profiled.train_metric);
  EXPECT_EQ(baseline.valid_metric, profiled.valid_metric);
  EXPECT_EQ(baseline.test_metric, profiled.test_metric);
  ASSERT_EQ(baseline.final_weights.size(), profiled.final_weights.size());
  for (size_t i = 0; i < baseline.final_weights.size(); ++i) {
    EXPECT_EQ(baseline.final_weights[i], profiled.final_weights[i]) << i;
  }

  // The journal has one valid record per epoch plus the run summary.
  std::string content;
  ASSERT_TRUE(ReadFileToString(path, &content));
  const std::vector<std::string> lines = SplitLines(content);
  ASSERT_EQ(lines.size(), static_cast<size_t>(config.epochs) + 1);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::map<std::string, std::string> record;
    ASSERT_TRUE(MiniJson().Parse(lines[i], &record)) << lines[i];
    if (i + 1 < lines.size()) {
      EXPECT_EQ(record["event"], "epoch");
      EXPECT_EQ(record["epoch"], std::to_string(i + 1));
      EXPECT_EQ(record["dataset"], "easy");
      EXPECT_EQ(record["method"], "OOD-GNN");
      EXPECT_EQ(record["train_loss"],
                obs::JsonNumber(profiled.epoch_losses[i]));
      EXPECT_TRUE(record.count("valid_metric")) << lines[i];
      EXPECT_TRUE(record.count("epoch_seconds")) << lines[i];
      EXPECT_TRUE(record.count("examples_per_sec")) << lines[i];
      EXPECT_TRUE(record.count("decorrelation_loss")) << lines[i];
      EXPECT_TRUE(record.count("weight_mean")) << lines[i];
      EXPECT_TRUE(record.count("weight_std")) << lines[i];
      EXPECT_TRUE(record.count("kernel_calls")) << lines[i];
    } else {
      EXPECT_EQ(record["event"], "run_summary");
      EXPECT_EQ(record["test_metric"],
                obs::JsonNumber(profiled.test_metric));
      EXPECT_TRUE(record.count("kernel_us")) << lines[i];
      EXPECT_TRUE(record.count("phases.core/rff_transform.count"))
          << lines[i];
    }
  }
}

TEST(ObsIntegrationTest, ProfiledRunRecordsTrainPhases) {
  ProfilingGuard guard(true);
  obs::ResetTrace();
  obs::MetricsRegistry::Global().Reset();
  GraphDataset ds = EasyDataset(16);
  TrainConfig config = TinyConfig();
  config.epochs = 2;
  (void)TrainAndEvaluate(Method::kOodGnn, ds, config);
  std::map<std::string, std::int64_t> phases;
  for (const obs::PhaseStats& s : obs::TraceSnapshot()) {
    phases[s.name] = s.count;
  }
  EXPECT_GT(phases["train/encode"], 0);
  EXPECT_GT(phases["train/reweight"], 0);
  EXPECT_GT(phases["train/loss_step"], 0);
  EXPECT_GT(phases["train/eval"], 0);
  EXPECT_GT(phases["core/compute_weights"], 0);
  EXPECT_GT(phases["core/weight_optimize"], 0);
  EXPECT_GT(phases["core/rff_transform"], 0);
  EXPECT_GT(phases["core/decorrelation_loss"], 0);
  std::int64_t kernel_calls = 0;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Global().GetSnapshot().counters) {
    if (name == "kernel/matmul/calls") kernel_calls += value;
  }
  EXPECT_GT(kernel_calls, 0);
}

}  // namespace
}  // namespace oodgnn
