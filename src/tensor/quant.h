#ifndef OODGNN_TENSOR_QUANT_H_
#define OODGNN_TENSOR_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {

// ---------------------------------------------------------------------------
// Q8_0-style block weight quantization for the inference engine
// (DESIGN.md §16). A weight matrix is quantized along each row in
// blocks of kQuantBlockSize columns: every block stores one fp32
// scale = max|x|/127 and kQuantBlockSize int8 codes
// q = clamp(round(x/scale), -127, 127), so the dequantized value is
// scale·q and the per-element reconstruction error is bounded by
// scale/2 (all-zero blocks get scale 0 and reconstruct exactly).
// Training never sees this format — only published serving snapshots
// carry quantized weights, and the golden-parity gate in
// tests/quant_test.cc pins the end-to-end metric drift it may cause.
// ---------------------------------------------------------------------------

inline constexpr int kQuantBlockSize = 32;

/// A row-major int8 image of a [rows, cols] fp32 matrix plus per-block
/// fp32 scales. Codes keep the source's row-major layout (cols per
/// row, no padding); scales are [rows, blocks_per_row] row-major.
struct QuantizedTensor {
  int rows = 0;
  int cols = 0;
  std::vector<int8_t> q;      ///< rows·cols codes.
  std::vector<float> scales;  ///< rows·blocks_per_row() scales.

  int blocks_per_row() const {
    return (cols + kQuantBlockSize - 1) / kQuantBlockSize;
  }
  const int8_t* qrow(int r) const {
    return q.data() + static_cast<size_t>(r) * static_cast<size_t>(cols);
  }
  const float* srow(int r) const {
    return scales.data() +
           static_cast<size_t>(r) * static_cast<size_t>(blocks_per_row());
  }
  /// Storage footprint of the quantized image (codes + scales).
  size_t byte_size() const {
    return q.size() * sizeof(int8_t) + scales.size() * sizeof(float);
  }
};

/// Quantizes `w` into the block format above.
QuantizedTensor QuantizeQ8(const Tensor& w);

/// Reconstructs the fp32 image scale·q. Quantizing the result again
/// reproduces `qw` exactly (idempotent fixed point).
Tensor DequantizeQ8(const QuantizedTensor& qw);

namespace kernels {

/// out[r0:r1, :] += a[m,k] · dequant(w)[k,n], consuming the block
/// format directly: per (i, p) the scalar m = a[i,p]·scale(p, block)
/// is formed once per block, then out[i,j] += m·q[p,j] over the
/// block's columns. This exact operation sequence is the quantized
/// oracle that simd::MatMulQuantAcc must match bitwise; like
/// MatMulAcc it ranges over rows of out and skips a-zeros.
void MatMulQuantAcc(const Tensor& a, const QuantizedTensor& w, Tensor* out,
                    int r0, int r1);

}  // namespace kernels

// --- quantized-weight routing ---
//
// The autograd/op layer passes fp32 tensors everywhere; the serving
// engine routes matmuls onto quantized weights by storage identity. A
// scope installs a map from an fp32 weight's data() pointer to its
// quantized image, and Backend::MatMulAcc consults it for the b
// operand. Training threads never install a scope, so the lookup cost
// there is a single thread-local null check.

using QuantizedWeightMap =
    std::unordered_map<const float*, const QuantizedTensor*>;

/// Installs `map` (nullptr deactivates routing) for the current thread
/// for the scope's lifetime; nests by restoring the previous map. The
/// caller owns the map and the QuantizedTensors it points to; both
/// must outlive the scope.
class ScopedQuantizedWeights {
 public:
  explicit ScopedQuantizedWeights(const QuantizedWeightMap* map);
  ~ScopedQuantizedWeights();
  ScopedQuantizedWeights(const ScopedQuantizedWeights&) = delete;
  ScopedQuantizedWeights& operator=(const ScopedQuantizedWeights&) = delete;

 private:
  const QuantizedWeightMap* previous_;
};

/// The quantized image registered for fp32 storage `data` in the
/// current thread's active map, or nullptr (no scope / not a routed
/// weight).
const QuantizedTensor* ActiveQuantizedWeightFor(const float* data);

// --- process-wide default ---

/// Whether serving publishes quantize by default
/// (InferenceOptions::QuantizeMode::kFollowProcess). Initialized
/// lazily from OODGNN_QUANTIZE; SetQuantizeEnabled overrides.
bool QuantizeEnabled();
void SetQuantizeEnabled(bool enabled);

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_QUANT_H_
