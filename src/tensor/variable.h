#ifndef OODGNN_TENSOR_VARIABLE_H_
#define OODGNN_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {

/// A node in the reverse-mode autodiff graph. Owned via shared_ptr by
/// the Variables that reference it and by its consumers (children hold
/// their parents alive), so keeping the loss Variable keeps the whole
/// backward graph reachable.
struct VariableNode {
  Tensor value;
  /// Gradient of the final scalar w.r.t. `value`; allocated lazily
  /// during Backward() and retained afterwards for optimizer reads.
  Tensor grad;
  bool requires_grad = false;
  /// Parents this node was computed from (empty for leaves).
  std::vector<std::shared_ptr<VariableNode>> parents;
  /// Accumulates this node's grad into its parents' grads. Null for
  /// leaves.
  std::function<void(const VariableNode&)> backward;
};

/// Thread-local autograd mode. While disabled, Variable::MakeOp builds
/// plain value nodes: no parents, no backward closure, no grad buffers
/// — a forward pass allocates exactly its forward values and the graph
/// is never retained. Each thread has its own flag, so inference
/// worker threads can run grad-free while a training thread keeps the
/// tape. Enabled by default.
class GradMode {
 public:
  static bool Enabled();
  static void SetEnabled(bool enabled);
};

/// RAII scope that disables tape construction on the current thread
/// (the inference path). Nests correctly: the previous mode is
/// restored on destruction.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Handle to a VariableNode: a Tensor that participates in automatic
/// differentiation. Copies share the node (shallow). Build graphs with
/// the free functions in src/tensor/ops.h, call Backward() on a scalar
/// result, then read grad() on the leaves.
class Variable {
 public:
  /// Undefined variable (no node).
  Variable() = default;

  /// Wraps a value; `requires_grad` marks it as a trainable leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Convenience factory for a non-trainable constant.
  static Variable Constant(Tensor value) { return Variable(std::move(value)); }

  /// Convenience factory for a trainable leaf parameter.
  static Variable Param(Tensor value) {
    return Variable(std::move(value), /*requires_grad=*/true);
  }

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Mutable access to the stored value (optimizer updates on leaves).
  Tensor& mutable_value();

  const Tensor& grad() const;
  Tensor& mutable_grad();

  bool requires_grad() const;

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Zeroes (and allocates if needed) the gradient buffer.
  void ZeroGrad();

  /// Runs reverse-mode accumulation from this node. Without a seed the
  /// variable must be 1×1 and is seeded with 1. Gradients accumulate
  /// into every reachable node with requires_grad (leaves keep them for
  /// the optimizer).
  void Backward();
  void Backward(const Tensor& seed);

  /// Backward() for a scalar loss that additionally releases each
  /// interior node's value and gradient buffer the moment its backward
  /// closure has run. In the reverse-topological sweep every consumer
  /// of those buffers (the node's children's closures, and the node's
  /// own) has already executed by then — gradient lifetimes are the
  /// mirror of forward liveness — so under a PlanRecordScope the freed
  /// extents go back to the offset simulation and the recorded arena
  /// covers forward values and gradients in one assignment. Leaf
  /// parameters, their accumulated grads, constants, and this (root)
  /// node's value are untouched; reading any other interior value()
  /// after this call is an error (the tensor is empty).
  void BackwardAndReleaseTape();

  /// Returns a new leaf Variable sharing this node's value but detached
  /// from the graph (no gradient flows through it).
  Variable Detach() const;

  /// Low-level node access for op implementations.
  const std::shared_ptr<VariableNode>& node() const { return node_; }

  /// Builds an interior graph node. `backward` receives the completed
  /// node (value + grad) and must accumulate into parents' grads; it is
  /// dropped if no parent requires a gradient.
  static Variable MakeOp(Tensor value,
                         std::vector<std::shared_ptr<VariableNode>> parents,
                         std::function<void(const VariableNode&)> backward);

 private:
  void BackwardImpl(const Tensor& seed, bool release_tape);

  std::shared_ptr<VariableNode> node_;
};

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_VARIABLE_H_
