#ifndef OODGNN_TENSOR_GRADCHECK_H_
#define OODGNN_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "src/tensor/variable.h"

namespace oodgnn {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  /// Maximum absolute error between analytic and numeric gradient,
  /// normalized by max(1, |numeric|).
  double max_relative_error = 0.0;
  /// Flat index (leaf, element) where the worst error occurred.
  int worst_leaf = -1;
  int worst_element = -1;
};

/// Verifies the analytic gradients of `scalar_fn` (a function that
/// rebuilds a 1×1 Variable from the current leaf values) against central
/// finite differences, perturbing every element of every leaf. The
/// leaves must be Param variables consumed inside `scalar_fn`.
GradCheckResult CheckGradients(const std::vector<Variable>& leaves,
                               const std::function<Variable()>& scalar_fn,
                               float eps = 1e-2f);

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_GRADCHECK_H_
