#ifndef OODGNN_TENSOR_ARENA_H_
#define OODGNN_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace oodgnn {

// ---------------------------------------------------------------------------
// Tensor storage allocation (DESIGN.md §13).
//
// Every Tensor float buffer in the process — eager heap tensors and
// arena-served intermediates alike — comes out of this layer, 64-byte
// aligned so the planned SIMD kernels can assume aligned rows on every
// path. A thread-local sink hook lets no-grad execution scopes (the
// dynamic eval arena below, and the compiled-plan record/replay scopes
// in src/tensor/exec_plan.h) take over intermediate allocation without
// the ops layer knowing.
// ---------------------------------------------------------------------------

/// All tensor storage is aligned to this many bytes (one cache line;
/// also the widest vector register the SIMD roadmap item targets).
inline constexpr std::size_t kTensorStorageAlignBytes = 64;

/// Block granularity in floats (64 bytes / sizeof(float)). Arena
/// offsets and capacities are multiples of this.
inline constexpr std::size_t kTensorStorageAlignFloats =
    kTensorStorageAlignBytes / sizeof(float);

/// `n` rounded up to the alignment granule (0 stays 0).
inline std::size_t AlignUpFloats(std::size_t n) {
  return (n + kTensorStorageAlignFloats - 1) & ~(kTensorStorageAlignFloats - 1);
}

/// A fresh 64-byte-aligned heap block of `n_floats` floats (contents
/// unspecified). Increments the thread's heap-allocation counter — the
/// hook the zero-steady-state-allocation serving tests read.
std::shared_ptr<float> AllocateAlignedHeapBlock(std::size_t n_floats);

/// Tensor-storage heap allocations performed by the calling thread
/// since it started (aligned heap blocks only; arena-served blocks do
/// not count). Monotonic; read deltas around a region to assert it
/// allocates nothing.
std::int64_t TensorHeapAllocsThisThread();

/// Interface a thread-local execution scope implements to take over
/// tensor-storage allocation. Returned blocks must be 64-byte aligned
/// and live until the last shared_ptr copy dies (the sink's deleter
/// decides whether death returns space anywhere).
class TensorAllocSink {
 public:
  virtual ~TensorAllocSink() = default;
  virtual std::shared_ptr<float> Allocate(std::size_t n_floats) = 0;
};

/// The storage entry point Tensor uses: the calling thread's installed
/// sink if any, else an aligned heap block.
std::shared_ptr<float> AllocateTensorStorage(std::size_t n_floats);

/// RAII install of `sink` as the calling thread's allocation sink
/// (nests; previous sink restored on destruction). Passing nullptr
/// disables any outer sink for the scope — used when an inner region
/// must heap-allocate results that outlive an enclosing arena scope.
class ScopedAllocSink {
 public:
  explicit ScopedAllocSink(TensorAllocSink* sink);
  ~ScopedAllocSink();
  ScopedAllocSink(const ScopedAllocSink&) = delete;
  ScopedAllocSink& operator=(const ScopedAllocSink&) = delete;

 private:
  TensorAllocSink* previous_;
};

/// Live statistics of a dynamic Arena (floats, not bytes, unless
/// suffixed).
struct ArenaStats {
  std::int64_t slab_bytes = 0;      ///< Total backing memory owned.
  std::int64_t live_floats = 0;     ///< Currently allocated floats.
  std::int64_t peak_live_floats = 0;
  std::int64_t allocs = 0;          ///< Blocks served since construction.
  std::int64_t slab_count = 0;
};

/// First-fit slab allocator for no-grad forward intermediates: the
/// dynamic (plan-free) arena mode. Blocks are served from
/// doubling-capacity slabs; a block's death returns its extent to a
/// per-slab hole list (coalescing with neighbours), so a steady
/// sequence of same-shaped forwards stops growing after the first one
/// and performs zero heap allocations afterwards. Slabs are never
/// released before the arena dies, and the arena's internal state is
/// kept alive by outstanding block deleters, so a Tensor may safely
/// outlive the scope (though not the thread/engine owning the arena).
/// Thread-safe: blocks may be freed from any thread.
class Arena : public TensorAllocSink {
 public:
  /// `initial_floats` sizes the first slab (rounded up to alignment).
  explicit Arena(std::size_t initial_floats = 1 << 16);
  ~Arena() override = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  std::shared_ptr<float> Allocate(std::size_t n_floats) override;

  ArenaStats stats() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Process-wide toggle for compiled/arena execution on the no-grad
/// paths (trainer eval batches and the inference engine's default).
/// Lazily initialized from the OODGNN_COMPILED environment variable;
/// SetCompiledEnabled overrides (e.g. from the --compiled flag). Like
/// the backend thread count, not meant to be flipped while forwards
/// are in flight.
bool CompiledEnabled();
void SetCompiledEnabled(bool enabled);

/// Same toggle for compiled (plan-then-execute) *training*: the
/// trainer records one forward+backward tape per batch-shape bucket
/// and replays it with static grad-liveness arena offsets. Lazily
/// initialized from OODGNN_COMPILED_TRAIN; SetCompiledTrainEnabled
/// overrides (the --compiled-train flag). Independent of
/// CompiledEnabled — either may be on without the other.
bool CompiledTrainEnabled();
void SetCompiledTrainEnabled(bool enabled);

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_ARENA_H_
