#ifndef OODGNN_TENSOR_OPS_H_
#define OODGNN_TENSOR_OPS_H_

#include <vector>

#include "src/tensor/segment_plan.h"
#include "src/tensor/variable.h"

namespace oodgnn {

class Rng;

// ---------------------------------------------------------------------------
// Differentiable operators. Each returns a new Variable whose backward
// function accumulates gradients into its inputs. Shape contracts are
// checked at call time.
// ---------------------------------------------------------------------------

/// Matrix product a[m,k] · b[k,n] -> [m,n].
Variable MatMul(const Variable& a, const Variable& b);

/// Element-wise sum; shapes must match.
Variable Add(const Variable& a, const Variable& b);

/// Element-wise difference; shapes must match.
Variable Sub(const Variable& a, const Variable& b);

/// Element-wise (Hadamard) product; shapes must match.
Variable Mul(const Variable& a, const Variable& b);

/// a[m,n] + row vector b[1,n] broadcast over rows.
Variable AddRowVec(const Variable& a, const Variable& b);

/// a[m,n] * row vector b[1,n] broadcast over rows.
Variable MulRowVec(const Variable& a, const Variable& b);

/// a[m,n] / row vector b[1,n] broadcast over rows. b must be non-zero.
Variable DivRowVec(const Variable& a, const Variable& b);

/// a[m,n] with row i scaled by w[i,0] (column-vector broadcast across
/// columns). Used for per-sample weighting.
Variable MulColVec(const Variable& a, const Variable& w);

/// a * s for a constant scalar s.
Variable Scale(const Variable& a, float s);

/// a * s where s is a trainable 1×1 Variable (broadcast to all of a).
Variable MulByScalarVar(const Variable& a, const Variable& s);

/// Element-wise reciprocal 1/x (input must be non-zero).
Variable Reciprocal(const Variable& a);

/// a + s element-wise for a constant scalar s.
Variable AddScalar(const Variable& a, float s);

/// Element-wise nonlinearities.
Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float negative_slope = 0.2f);
Variable Sigmoid(const Variable& a);
Variable TanhOp(const Variable& a);
Variable CosOp(const Variable& a);
Variable ExpOp(const Variable& a);
Variable LogOp(const Variable& a);    // requires strictly positive input
Variable SqrtOp(const Variable& a);   // requires non-negative input
Variable Square(const Variable& a);
Variable AbsOp(const Variable& a);

/// Sum of all elements -> 1×1.
Variable Sum(const Variable& a);

/// Mean of all elements -> 1×1.
Variable MeanAll(const Variable& a);

/// Column sums: [m,n] -> [1,n] (reduces over rows).
Variable SumRows(const Variable& a);

/// Row sums: [m,n] -> [m,1] (reduces over columns).
Variable SumCols(const Variable& a);

/// Column means: [m,n] -> [1,n].
Variable MeanRows(const Variable& a);

/// Transpose [m,n] -> [n,m].
Variable Transpose(const Variable& a);

/// Row-wise softmax.
Variable SoftmaxRows(const Variable& a);

/// out[i] = a[index[i]]; indices may repeat. [m,n] -> [k,n].
Variable RowGather(const Variable& a, const std::vector<int>& index);

/// out[index[i]] += a[i]; out has `out_rows` rows. The scatter-add used
/// for message aggregation; indices must lie in [0, out_rows).
Variable ScatterAddRows(const Variable& a, const std::vector<int>& index,
                        int out_rows);

/// Per-segment column-wise sum: rows of `a` with segment[r] == s are
/// summed into output row s. Equivalent to ScatterAddRows.
Variable SegmentSum(const Variable& a, const std::vector<int>& segment,
                    int num_segments);

/// Per-segment mean; empty segments produce zero rows.
Variable SegmentMean(const Variable& a, const std::vector<int>& segment,
                     int num_segments);

/// Per-segment element-wise max; empty segments produce zero rows. The
/// gradient flows to the (first) argmax element of each segment/column.
Variable SegmentMax(const Variable& a, const std::vector<int>& segment,
                    int num_segments);

/// Per-segment element-wise min (same conventions as SegmentMax).
Variable SegmentMin(const Variable& a, const std::vector<int>& segment,
                    int num_segments);

// --- planned overloads (CSR segment plans, DESIGN.md §12) ---
//
// Bitwise identical to the unplanned ops above at every thread count,
// but their scatters parallelize over contiguous destination segments
// instead of scanning the full index vector per chunk. The unplanned
// overloads remain the fallback for ad-hoc indices (batches without
// plans, hand-assembled topologies).

/// RowGather over plan->items whose backward scatters through the plan
/// (plan->num_segments must equal a.rows()).
Variable RowGather(const Variable& a, const SegmentPlanPtr& plan);

/// ScatterAddRows over plan->items into plan->num_segments rows.
Variable ScatterAddRows(const Variable& a, const SegmentPlanPtr& plan);

/// Planned SegmentSum / SegmentMean / SegmentMax / SegmentMin over
/// plan->items.
Variable SegmentSum(const Variable& a, const SegmentPlanPtr& plan);
Variable SegmentMean(const Variable& a, const SegmentPlanPtr& plan);
Variable SegmentMax(const Variable& a, const SegmentPlanPtr& plan);
Variable SegmentMin(const Variable& a, const SegmentPlanPtr& plan);

/// Fused RowGather(h, plan->src()) → ScatterAddRows(·, plan->dst()):
/// out[v,:] = Σ_{e: dst[e]=v} h[src[e],:] without materializing the
/// [E, d] gathered tensor in either direction.
Variable GatherScatter(const Variable& h, const MessagePlanPtr& plan);

/// Weighted fusion of RowGather → MulColVec(·, w) → ScatterAddRows:
/// out[v,:] = Σ_{e: dst[e]=v} h[src[e],:]·w[e,0]. w is [E,1]; gradients
/// flow to both h and w (per-edge dot products for the latter).
Variable GatherScatterWeighted(const Variable& h, const Variable& w,
                               const MessagePlanPtr& plan);

/// Horizontal concatenation [m,n1],[m,n2],... -> [m, Σn].
Variable ConcatCols(const std::vector<Variable>& parts);

/// Vertical concatenation [m1,n],[m2,n],... -> [Σm, n].
Variable ConcatRows(const std::vector<Variable>& parts);

/// Contiguous row slice [start, start+len).
Variable SliceRows(const Variable& a, int start, int len);

/// Inverted dropout: during training, zeroes each element with
/// probability p and scales survivors by 1/(1-p); identity otherwise.
Variable Dropout(const Variable& a, float p, Rng* rng, bool training);

/// Element-wise clamp to [lo, hi]; gradient is passed through inside the
/// interval and zero outside.
Variable Clamp(const Variable& a, float lo, float hi);

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_OPS_H_
