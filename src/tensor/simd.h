#ifndef OODGNN_TENSOR_SIMD_H_
#define OODGNN_TENSOR_SIMD_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {

struct QuantizedTensor;

namespace simd {

// ---------------------------------------------------------------------------
// SIMD mirrors of the dense scalar kernels (src/tensor/kernels.h),
// selected per dispatch by the Backend entry points (DESIGN.md §16).
//
// Every function here is *bitwise identical* to its scalar twin: the
// vector lanes perform exactly the scalar per-element operation
// sequence — separate multiply and add (never FMA; fused rounding
// would diverge from the scalar oracle, so the build also pins
// -ffp-contract=off), the same per-output-element accumulation order,
// and the same zero-skip branches taken on the same broadcast scalars.
// Kernels whose scalar form is a horizontal reduction (Dot, RowSum,
// EdgeDot, softmax) have no mirror: vectorizing them would reassociate
// the sum. Only kernels where the innermost loop walks the contiguous
// output (or panel-packed) dimension with independent per-lane
// accumulators are mirrored. tests/simd_test.cc pins the bitwise
// contract across shapes, tails, denormals, ±0/NaN and thread counts.
//
// The file src/tensor/simd.cc is the only translation unit compiled
// with -mavx2 (x86; NEON is baseline on aarch64); its functions are
// reached only after Enabled() returned true, so no AVX2 instruction
// can execute on a CPU without the feature.
// ---------------------------------------------------------------------------

/// True when this binary carries a vector ISA (compile-time) *and* the
/// running CPU supports it. False on the pure-scalar build.
bool Available();

/// The ISA the vector path was compiled for: "avx2", "neon" or
/// "scalar".
const char* IsaName();

/// Dispatch decision the Backend reads: Available(), minus the
/// OODGNN_FORCE_SCALAR=1 environment override (read once, lazily) and
/// any SetEnabled() call. Lock-free after the first read.
bool Enabled();

/// Overrides the dispatch decision (clamped to Available(): enabling
/// on a scalar-only build stays off). For A/B benchmarking and the
/// oracle tests.
void SetEnabled(bool enabled);

/// RAII Enabled() override for tests and benches.
class ScopedSimdEnabled {
 public:
  explicit ScopedSimdEnabled(bool enabled) : previous_(Enabled()) {
    SetEnabled(enabled);
  }
  ~ScopedSimdEnabled() { SetEnabled(previous_); }
  ScopedSimdEnabled(const ScopedSimdEnabled&) = delete;
  ScopedSimdEnabled& operator=(const ScopedSimdEnabled&) = delete;

 private:
  bool previous_;
};

// --- dense matmul family ---

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0, int r1);
void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1);
void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1);

/// out[r0:r1,:] += a · dequant(w) over Q8_0 blocks (see
/// src/tensor/quant.h). Bitwise identical to the scalar
/// kernels::MatMulQuantAcc, which is itself the quantized oracle.
void MatMulQuantAcc(const Tensor& a, const QuantizedTensor& w, Tensor* out,
                    int r0, int r1);

// --- element-wise maps ---

void Axpy(float alpha, const Tensor& x, Tensor* y, int i0, int i1);
void Scale(Tensor* y, float s, int i0, int i1);
void AddScalar(Tensor* y, float s, int i0, int i1);
void Hadamard(const Tensor& a, const Tensor& b, Tensor* out, int i0, int i1);
void HadamardAcc(const Tensor& g, const Tensor& x, Tensor* y, int i0, int i1);

// --- column-ranged reductions and broadcast adjoints ---

void ColumnSumAcc(const Tensor& a, Tensor* out, int c0, int c1);
void RowBroadcastAcc(const Tensor& row, Tensor* out, int r0, int r1);
void ColBroadcastAcc(const Tensor& col, Tensor* out, int r0, int r1);
void HadamardColumnSumAcc(const Tensor& x, const Tensor& y, Tensor* out,
                          int c0, int c1);

// --- gather / scatter family (planned) ---

void GatherRowsAcc(const Tensor& g, const std::vector<int>& index, Tensor* out,
                   int r0, int r1);
void ScatterAddRowsPlanned(const Tensor& a, const std::vector<int>& perm,
                           const std::vector<int>& offsets, Tensor* out,
                           int s0, int s1);
void GatherScatterAcc(const Tensor& h, const std::vector<int>& gather,
                      const std::vector<int>& offsets, Tensor* out, int s0,
                      int s1);
void GatherScatterWeightedAcc(const Tensor& h, const Tensor& w,
                              const std::vector<int>& perm,
                              const std::vector<int>& gather,
                              const std::vector<int>& offsets, Tensor* out,
                              int e_s0, int e_s1);

/// RFF feature map (src/core/rff.h): the gather + omega·x + phase
/// argument computation is vectorized; cos() itself stays scalar libm
/// per element (a vector cos could not match libm bitwise), so the
/// whole map still matches the scalar kernel exactly.
void RffMap(const Tensor& z, const std::vector<int>& source_dim,
            const std::vector<float>& omega, const std::vector<float>& phase,
            bool linear_only, float scale, Tensor* out, int r0, int r1);

}  // namespace simd
}  // namespace oodgnn

#endif  // OODGNN_TENSOR_SIMD_H_
