#include "src/tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace oodgnn {
namespace kernels {
namespace {

// Cache-block sizes (floats). kBlockN keeps a strip of b and the
// matching out-row segment L1-resident; kBlockK bounds the set of b rows
// streamed per output strip so it stays in L2.
constexpr int kBlockN = 256;
constexpr int kBlockK = 64;
// Output-row strip for the aᵀ·b variant: the strip of out rows revisited
// per input row must stay cached.
constexpr int kBlockP = 16;
// b-row strip for the a·bᵀ variant: kBlockJ rows of b are reused across
// every row of a.
constexpr int kBlockJ = 32;

}  // namespace

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
               int r1) {
  const int k = a.cols();
  const int n = b.cols();
  for (int j0 = 0; j0 < n; j0 += kBlockN) {
    const int j1 = std::min(n, j0 + kBlockN);
    for (int p0 = 0; p0 < k; p0 += kBlockK) {
      const int p1 = std::min(k, p0 + kBlockK);
      for (int i = r0; i < r1; ++i) {
        const float* arow = a.row(i);
        float* orow = out->row(i);
        for (int p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.f) continue;
          const float* brow = b.row(p);
          for (int j = j0; j < j1; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1) {
  const int m = a.rows();
  const int n = b.cols();
  for (int p0 = r0; p0 < r1; p0 += kBlockP) {
    const int p1 = std::min(r1, p0 + kBlockP);
    for (int j0 = 0; j0 < n; j0 += kBlockN) {
      const int j1 = std::min(n, j0 + kBlockN);
      for (int i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        const float* brow = b.row(i);
        for (int p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.f) continue;
          float* orow = out->row(p);
          for (int j = j0; j < j1; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
}

void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1) {
  const int k = a.cols();
  const int n = b.rows();
  for (int j0 = 0; j0 < n; j0 += kBlockJ) {
    const int j1 = std::min(n, j0 + kBlockJ);
    for (int i = r0; i < r1; ++i) {
      const float* arow = a.row(i);
      float* orow = out->row(i);
      for (int j = j0; j < j1; ++j) {
        const float* brow = b.row(j);
        float acc = 0.f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        orow[j] += acc;
      }
    }
  }
}

void Axpy(float alpha, const Tensor& x, Tensor* y, int i0, int i1) {
  for (int i = i0; i < i1; ++i) (*y)[i] += alpha * x[i];
}

void Scale(Tensor* y, float s, int i0, int i1) {
  for (int i = i0; i < i1; ++i) (*y)[i] *= s;
}

void AddScalar(Tensor* y, float s, int i0, int i1) {
  for (int i = i0; i < i1; ++i) (*y)[i] += s;
}

void Hadamard(const Tensor& a, const Tensor& b, Tensor* out, int i0, int i1) {
  for (int i = i0; i < i1; ++i) (*out)[i] = a[i] * b[i];
}

void HadamardAcc(const Tensor& g, const Tensor& x, Tensor* y, int i0,
                 int i1) {
  for (int i = i0; i < i1; ++i) (*y)[i] += g[i] * x[i];
}

void ColumnSumAcc(const Tensor& a, Tensor* out, int c0, int c1) {
  float* orow = out->row(0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    for (int c = c0; c < c1; ++c) orow[c] += arow[c];
  }
}

void RowSumAcc(const Tensor& a, Tensor* out, int r0, int r1) {
  for (int r = r0; r < r1; ++r) {
    const float* arow = a.row(r);
    float acc = 0.f;
    for (int c = 0; c < a.cols(); ++c) acc += arow[c];
    out->at(r, 0) += acc;
  }
}

void RowBroadcastAcc(const Tensor& row, Tensor* out, int r0, int r1) {
  const float* src = row.row(0);
  for (int r = r0; r < r1; ++r) {
    float* orow = out->row(r);
    for (int c = 0; c < out->cols(); ++c) orow[c] += src[c];
  }
}

void ColBroadcastAcc(const Tensor& col, Tensor* out, int r0, int r1) {
  for (int r = r0; r < r1; ++r) {
    const float v = col.at(r, 0);
    float* orow = out->row(r);
    for (int c = 0; c < out->cols(); ++c) orow[c] += v;
  }
}

void AddTransposedAcc(const Tensor& g, Tensor* out, int r0, int r1) {
  for (int r = r0; r < r1; ++r) {
    float* orow = out->row(r);
    for (int c = 0; c < out->cols(); ++c) orow[c] += g.at(c, r);
  }
}

void HadamardColumnSumAcc(const Tensor& x, const Tensor& y, Tensor* out,
                          int c0, int c1) {
  float* orow = out->row(0);
  for (int r = 0; r < x.rows(); ++r) {
    const float* xrow = x.row(r);
    const float* yrow = y.row(r);
    for (int c = c0; c < c1; ++c) orow[c] += xrow[c] * yrow[c];
  }
}

void HadamardRowSumAcc(const Tensor& x, const Tensor& y, Tensor* out, int r0,
                       int r1) {
  for (int r = r0; r < r1; ++r) {
    const float* xrow = x.row(r);
    const float* yrow = y.row(r);
    float acc = 0.f;
    for (int c = 0; c < x.cols(); ++c) acc += xrow[c] * yrow[c];
    out->at(r, 0) += acc;
  }
}

float Dot(const Tensor& a, const Tensor& b, int i0, int i1) {
  float acc = 0.f;
  for (int i = i0; i < i1; ++i) acc += a[i] * b[i];
  return acc;
}

void SoftmaxRows(const Tensor& a, Tensor* out, int r0, int r1) {
  const int cols = a.cols();
  for (int r = r0; r < r1; ++r) {
    const float* arow = a.row(r);
    float* orow = out->row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < cols; ++c) mx = std::max(mx, arow[c]);
    float total = 0.f;
    for (int c = 0; c < cols; ++c) {
      orow[c] = std::exp(arow[c] - mx);
      total += orow[c];
    }
    for (int c = 0; c < cols; ++c) orow[c] /= total;
  }
}

void SoftmaxRowsBackwardAcc(const Tensor& y, const Tensor& g, Tensor* out,
                            int r0, int r1) {
  const int cols = y.cols();
  for (int r = r0; r < r1; ++r) {
    const float* yrow = y.row(r);
    const float* grow = g.row(r);
    float dot = 0.f;
    for (int c = 0; c < cols; ++c) dot += grow[c] * yrow[c];
    float* orow = out->row(r);
    for (int c = 0; c < cols; ++c) orow[c] += yrow[c] * (grow[c] - dot);
  }
}

void GatherRows(const Tensor& a, const std::vector<int>& index, Tensor* out,
                int r0, int r1) {
  for (int r = r0; r < r1; ++r) {
    const float* src = a.row(index[static_cast<size_t>(r)]);
    std::copy(src, src + a.cols(), out->row(r));
  }
}

void GatherRowsAcc(const Tensor& g, const std::vector<int>& index,
                   Tensor* out, int r0, int r1) {
  for (int r = r0; r < r1; ++r) {
    const float* grow = g.row(index[static_cast<size_t>(r)]);
    float* orow = out->row(r);
    for (int c = 0; c < out->cols(); ++c) orow[c] += grow[c];
  }
}

void ScatterAddRowsAcc(const Tensor& a, const std::vector<int>& index,
                       Tensor* out, int out_r0, int out_r1) {
  const int cols = a.cols();
  for (int i = 0; i < a.rows(); ++i) {
    const int dst = index[static_cast<size_t>(i)];
    if (dst < out_r0 || dst >= out_r1) continue;
    const float* src = a.row(i);
    float* orow = out->row(dst);
    for (int c = 0; c < cols; ++c) orow[c] += src[c];
  }
}

void ScatterAddRowsPlanned(const Tensor& a, const std::vector<int>& perm,
                           const std::vector<int>& offsets, Tensor* out,
                           int s0, int s1) {
  const int cols = a.cols();
  for (int s = s0; s < s1; ++s) {
    float* orow = out->row(s);
    const int begin = offsets[static_cast<size_t>(s)];
    const int end = offsets[static_cast<size_t>(s) + 1];
    for (int j = begin; j < end; ++j) {
      const float* src = a.row(perm[static_cast<size_t>(j)]);
      for (int c = 0; c < cols; ++c) orow[c] += src[c];
    }
  }
}

void GatherScatterAcc(const Tensor& h, const std::vector<int>& gather,
                      const std::vector<int>& offsets, Tensor* out, int s0,
                      int s1) {
  const int cols = h.cols();
  for (int s = s0; s < s1; ++s) {
    float* orow = out->row(s);
    const int begin = offsets[static_cast<size_t>(s)];
    const int end = offsets[static_cast<size_t>(s) + 1];
    for (int j = begin; j < end; ++j) {
      const float* src = h.row(gather[static_cast<size_t>(j)]);
      for (int c = 0; c < cols; ++c) orow[c] += src[c];
    }
  }
}

void GatherScatterWeightedAcc(const Tensor& h, const Tensor& w,
                              const std::vector<int>& perm,
                              const std::vector<int>& gather,
                              const std::vector<int>& offsets, Tensor* out,
                              int e_s0, int e_s1) {
  const int cols = h.cols();
  for (int s = e_s0; s < e_s1; ++s) {
    float* orow = out->row(s);
    const int begin = offsets[static_cast<size_t>(s)];
    const int end = offsets[static_cast<size_t>(s) + 1];
    for (int j = begin; j < end; ++j) {
      const float* src = h.row(gather[static_cast<size_t>(j)]);
      const float wv = w.at(perm[static_cast<size_t>(j)], 0);
      for (int c = 0; c < cols; ++c) orow[c] += src[c] * wv;
    }
  }
}

void EdgeDotAcc(const Tensor& x, const Tensor& y, const std::vector<int>& xi,
                const std::vector<int>& yi, Tensor* out, int e0, int e1) {
  const int cols = x.cols();
  for (int e = e0; e < e1; ++e) {
    const float* xrow = x.row(xi[static_cast<size_t>(e)]);
    const float* yrow = y.row(yi[static_cast<size_t>(e)]);
    float acc = 0.f;
    for (int c = 0; c < cols; ++c) acc += xrow[c] * yrow[c];
    out->at(e, 0) += acc;
  }
}

void SegmentExtremePlanned(const Tensor& a, const std::vector<int>& perm,
                           const std::vector<int>& offsets, bool is_max,
                           Tensor* out, std::vector<int>* argrow, int s0,
                           int s1) {
  const int cols = a.cols();
  const float init = is_max ? -std::numeric_limits<float>::infinity()
                            : std::numeric_limits<float>::infinity();
  for (int s = s0; s < s1; ++s) {
    float* orow = out->row(s);
    std::fill(orow, orow + cols, init);
    std::fill(argrow->begin() + static_cast<size_t>(s) * cols,
              argrow->begin() + static_cast<size_t>(s + 1) * cols, -1);
    const int begin = offsets[static_cast<size_t>(s)];
    const int end = offsets[static_cast<size_t>(s) + 1];
    for (int j = begin; j < end; ++j) {
      const int r = perm[static_cast<size_t>(j)];
      const float* arow = a.row(r);
      for (int c = 0; c < cols; ++c) {
        const bool better = is_max ? arow[c] > orow[c] : arow[c] < orow[c];
        if (better) {
          orow[c] = arow[c];
          (*argrow)[static_cast<size_t>(s) * cols + c] = r;
        }
      }
    }
    // Empty segments: replace ±inf sentinels with zeros.
    for (int c = 0; c < cols; ++c) {
      if ((*argrow)[static_cast<size_t>(s) * cols + c] < 0) orow[c] = 0.f;
    }
  }
}

void SegmentExtreme(const Tensor& a, const std::vector<int>& segment,
                    bool is_max, Tensor* out, std::vector<int>* argrow,
                    int s0, int s1) {
  const int cols = a.cols();
  const float init = is_max ? -std::numeric_limits<float>::infinity()
                            : std::numeric_limits<float>::infinity();
  for (int s = s0; s < s1; ++s) {
    float* orow = out->row(s);
    std::fill(orow, orow + cols, init);
    std::fill(argrow->begin() + static_cast<size_t>(s) * cols,
              argrow->begin() + static_cast<size_t>(s + 1) * cols, -1);
  }
  for (int r = 0; r < a.rows(); ++r) {
    const int s = segment[static_cast<size_t>(r)];
    if (s < s0 || s >= s1) continue;
    const float* arow = a.row(r);
    float* orow = out->row(s);
    for (int c = 0; c < cols; ++c) {
      const bool better = is_max ? arow[c] > orow[c] : arow[c] < orow[c];
      if (better) {
        orow[c] = arow[c];
        (*argrow)[static_cast<size_t>(s) * cols + c] = r;
      }
    }
  }
  // Empty segments: replace ±inf sentinels with zeros.
  for (int s = s0; s < s1; ++s) {
    float* orow = out->row(s);
    for (int c = 0; c < cols; ++c) {
      if ((*argrow)[static_cast<size_t>(s) * cols + c] < 0) orow[c] = 0.f;
    }
  }
}

void SegmentExtremeBackwardAcc(const Tensor& g,
                               const std::vector<int>& argrow, Tensor* out,
                               int s0, int s1) {
  const int cols = g.cols();
  for (int s = s0; s < s1; ++s) {
    const float* grow = g.row(s);
    for (int c = 0; c < cols; ++c) {
      const int r = argrow[static_cast<size_t>(s) * cols + c];
      if (r >= 0) out->at(r, c) += grow[c];
    }
  }
}

void RffMap(const Tensor& z, const std::vector<int>& source_dim,
            const std::vector<float>& omega, const std::vector<float>& phase,
            bool linear_only, float scale, Tensor* out, int r0, int r1) {
  const int m = out->cols();
  for (int r = r0; r < r1; ++r) {
    const float* zrow = z.row(r);
    float* orow = out->row(r);
    for (int j = 0; j < m; ++j) {
      const float x = zrow[source_dim[static_cast<size_t>(j)]];
      orow[j] = linear_only
                    ? x
                    : scale * std::cos(omega[static_cast<size_t>(j)] * x +
                                       phase[static_cast<size_t>(j)]);
    }
  }
}

void CopyRowsTo(const Tensor& src, Tensor* dst, int dst_row_begin, int r0,
                int r1) {
  for (int r = r0; r < r1; ++r) {
    const float* s = src.row(r);
    std::copy(s, s + src.cols(), dst->row(dst_row_begin + r));
  }
}

}  // namespace kernels
}  // namespace oodgnn
