#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

using NodePtr = std::shared_ptr<VariableNode>;

/// out += a[m,k] · b[k,n]; plain ikj loop (cache-friendly row-major).
void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

/// out += aᵀ[k,m] · b is expressed as out[p,j] += Σ_i a[i,p]·b[i,j].
void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      float* orow = out->row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  (void)m;
}

/// out += a[m,k] · bᵀ[k,n] where b is [n,k]: out[i,j] += dot(a[i,:], b[j,:]).
void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = 0.f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] += acc;
    }
  }
}

/// Unary element-wise op helper: forward maps value, backward multiplies
/// upstream grad by a locally computed derivative.
template <typename Fwd, typename Bwd>
Variable UnaryOp(const Variable& a, Fwd&& fwd, Bwd&& dfn) {
  OODGNN_CHECK(a.defined());
  const Tensor& av = a.value();
  Tensor out(av.rows(), av.cols());
  for (int i = 0; i < av.size(); ++i) out[i] = fwd(av[i]);
  NodePtr pa = a.node();
  // The derivative receives (input, output) so implementations can use
  // whichever is cheaper.
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, dfn](const VariableNode& self) {
        if (!pa->requires_grad) return;
        const Tensor& g = self.grad;
        for (int i = 0; i < g.size(); ++i) {
          pa->grad[i] += g[i] * dfn(pa->value[i], self.value[i]);
        }
      });
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.defined() && b.defined());
  OODGNN_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  Tensor out(a.rows(), b.cols());
  MatMulAcc(a.value(), b.value(), &out);
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        if (pa->requires_grad) {
          MatMulTransBAcc(self.grad, pb->value, &pa->grad);
        }
        if (pb->requires_grad) {
          MatMulTransAAcc(pa->value, self.grad, &pb->grad);
        }
      });
}

Variable Add(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  out.Add(b.value());
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        if (pa->requires_grad) pa->grad.Add(self.grad);
        if (pb->requires_grad) pb->grad.Add(self.grad);
      });
}

Variable Sub(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] -= b.value()[i];
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        if (pa->requires_grad) pa->grad.Add(self.grad);
        if (pb->requires_grad) {
          for (int i = 0; i < self.grad.size(); ++i) {
            pb->grad[i] -= self.grad[i];
          }
        }
      });
}

Variable Mul(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.value().SameShape(b.value()));
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < out.size(); ++i) out[i] = a.value()[i] * b.value()[i];
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Tensor& g = self.grad;
        if (pa->requires_grad) {
          for (int i = 0; i < g.size(); ++i) pa->grad[i] += g[i] * pb->value[i];
        }
        if (pb->requires_grad) {
          for (int i = 0; i < g.size(); ++i) pb->grad[i] += g[i] * pa->value[i];
        }
      });
}

Variable AddRowVec(const Variable& a, const Variable& b) {
  OODGNN_CHECK_EQ(b.rows(), 1);
  OODGNN_CHECK_EQ(b.cols(), a.cols());
  Tensor out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    float* orow = out.row(r);
    const float* brow = b.value().row(0);
    for (int c = 0; c < out.cols(); ++c) orow[c] += brow[c];
  }
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        if (pa->requires_grad) pa->grad.Add(self.grad);
        if (pb->requires_grad) {
          for (int r = 0; r < self.grad.rows(); ++r) {
            const float* grow = self.grad.row(r);
            float* brow = pb->grad.row(0);
            for (int c = 0; c < self.grad.cols(); ++c) brow[c] += grow[c];
          }
        }
      });
}

Variable MulRowVec(const Variable& a, const Variable& b) {
  OODGNN_CHECK_EQ(b.rows(), 1);
  OODGNN_CHECK_EQ(b.cols(), a.cols());
  Tensor out(a.rows(), a.cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out.at(r, c) = a.value().at(r, c) * b.value().at(0, c);
    }
  }
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Tensor& g = self.grad;
        if (pa->requires_grad) {
          for (int r = 0; r < g.rows(); ++r) {
            for (int c = 0; c < g.cols(); ++c) {
              pa->grad.at(r, c) += g.at(r, c) * pb->value.at(0, c);
            }
          }
        }
        if (pb->requires_grad) {
          for (int r = 0; r < g.rows(); ++r) {
            for (int c = 0; c < g.cols(); ++c) {
              pb->grad.at(0, c) += g.at(r, c) * pa->value.at(r, c);
            }
          }
        }
      });
}

Variable DivRowVec(const Variable& a, const Variable& b) {
  OODGNN_CHECK_EQ(b.rows(), 1);
  OODGNN_CHECK_EQ(b.cols(), a.cols());
  Tensor out(a.rows(), a.cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out.at(r, c) = a.value().at(r, c) / b.value().at(0, c);
    }
  }
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Tensor& g = self.grad;
        if (pa->requires_grad) {
          for (int r = 0; r < g.rows(); ++r) {
            for (int c = 0; c < g.cols(); ++c) {
              pa->grad.at(r, c) += g.at(r, c) / pb->value.at(0, c);
            }
          }
        }
        if (pb->requires_grad) {
          for (int r = 0; r < g.rows(); ++r) {
            for (int c = 0; c < g.cols(); ++c) {
              const float bv = pb->value.at(0, c);
              pb->grad.at(0, c) -=
                  g.at(r, c) * self.value.at(r, c) / bv;
            }
          }
        }
      });
}

Variable MulColVec(const Variable& a, const Variable& w) {
  OODGNN_CHECK_EQ(w.cols(), 1);
  OODGNN_CHECK_EQ(w.rows(), a.rows());
  Tensor out(a.rows(), a.cols());
  for (int r = 0; r < out.rows(); ++r) {
    const float wv = w.value().at(r, 0);
    const float* arow = a.value().row(r);
    float* orow = out.row(r);
    for (int c = 0; c < out.cols(); ++c) orow[c] = arow[c] * wv;
  }
  NodePtr pa = a.node();
  NodePtr pw = w.node();
  return Variable::MakeOp(
      std::move(out), {pa, pw}, [pa, pw](const VariableNode& self) {
        const Tensor& g = self.grad;
        for (int r = 0; r < g.rows(); ++r) {
          const float* grow = g.row(r);
          if (pa->requires_grad) {
            const float wv = pw->value.at(r, 0);
            float* arow = pa->grad.row(r);
            for (int c = 0; c < g.cols(); ++c) arow[c] += grow[c] * wv;
          }
          if (pw->requires_grad) {
            const float* arow = pa->value.row(r);
            float acc = 0.f;
            for (int c = 0; c < g.cols(); ++c) acc += grow[c] * arow[c];
            pw->grad.at(r, 0) += acc;
          }
        }
      });
}

Variable Scale(const Variable& a, float s) {
  Tensor out = a.value();
  out.Scale(s);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, s](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (int i = 0; i < self.grad.size(); ++i) {
          pa->grad[i] += self.grad[i] * s;
        }
      });
}

Variable MulByScalarVar(const Variable& a, const Variable& s) {
  OODGNN_CHECK_EQ(s.value().size(), 1);
  const float sv = s.value()[0];
  Tensor out = a.value();
  out.Scale(sv);
  NodePtr pa = a.node();
  NodePtr ps = s.node();
  return Variable::MakeOp(
      std::move(out), {pa, ps}, [pa, ps](const VariableNode& self) {
        const Tensor& g = self.grad;
        if (pa->requires_grad) {
          const float sv = ps->value[0];
          for (int i = 0; i < g.size(); ++i) pa->grad[i] += g[i] * sv;
        }
        if (ps->requires_grad) {
          float acc = 0.f;
          for (int i = 0; i < g.size(); ++i) acc += g[i] * pa->value[i];
          ps->grad[0] += acc;
        }
      });
}

Variable Reciprocal(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return 1.f / x; },
      [](float, float y) { return -y * y; });
}

Variable AddScalar(const Variable& a, float s) {
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] += s;
  NodePtr pa = a.node();
  return Variable::MakeOp(std::move(out), {pa},
                          [pa](const VariableNode& self) {
                            if (pa->requires_grad) pa->grad.Add(self.grad);
                          });
}

Variable Relu(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.f ? x : 0.f; },
      [](float x, float) { return x > 0.f ? 1.f : 0.f; });
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  return UnaryOp(
      a,
      [negative_slope](float x) {
        return x > 0.f ? x : negative_slope * x;
      },
      [negative_slope](float x, float) {
        return x > 0.f ? 1.f : negative_slope;
      });
}

Variable Sigmoid(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return 1.f / (1.f + std::exp(-x)); },
      [](float, float y) { return y * (1.f - y); });
}

Variable TanhOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.f - y * y; });
}

Variable CosOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::cos(x); },
      [](float x, float) { return -std::sin(x); });
}

Variable ExpOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Variable LogOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.f / x; });
}

Variable SqrtOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); });
}

Variable Square(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.f * x; });
}

Variable AbsOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.f ? 1.f : (x < 0.f ? -1.f : 0.f); });
}

Variable Sum(const Variable& a) {
  Tensor out(1, 1, a.value().Sum());
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        const float g = self.grad[0];
        for (int i = 0; i < pa->grad.size(); ++i) pa->grad[i] += g;
      });
}

Variable MeanAll(const Variable& a) {
  OODGNN_CHECK_GT(a.value().size(), 0);
  return Scale(Sum(a), 1.f / static_cast<float>(a.value().size()));
}

Variable SumRows(const Variable& a) {
  Tensor out(1, a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.value().row(r);
    for (int c = 0; c < a.cols(); ++c) out.at(0, c) += arow[c];
  }
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (int r = 0; r < pa->grad.rows(); ++r) {
          float* grow = pa->grad.row(r);
          const float* srow = self.grad.row(0);
          for (int c = 0; c < pa->grad.cols(); ++c) grow[c] += srow[c];
        }
      });
}

Variable SumCols(const Variable& a) {
  Tensor out(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.value().row(r);
    float acc = 0.f;
    for (int c = 0; c < a.cols(); ++c) acc += arow[c];
    out.at(r, 0) = acc;
  }
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (int r = 0; r < pa->grad.rows(); ++r) {
          const float g = self.grad.at(r, 0);
          float* grow = pa->grad.row(r);
          for (int c = 0; c < pa->grad.cols(); ++c) grow[c] += g;
        }
      });
}

Variable MeanRows(const Variable& a) {
  OODGNN_CHECK_GT(a.rows(), 0);
  return Scale(SumRows(a), 1.f / static_cast<float>(a.rows()));
}

Variable Transpose(const Variable& a) {
  Tensor out = a.value().Transposed();
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (int r = 0; r < self.grad.rows(); ++r) {
          for (int c = 0; c < self.grad.cols(); ++c) {
            pa->grad.at(c, r) += self.grad.at(r, c);
          }
        }
      });
}

Variable SoftmaxRows(const Variable& a) {
  Tensor out(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.value().row(r);
    float* orow = out.row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < a.cols(); ++c) mx = std::max(mx, arow[c]);
    float total = 0.f;
    for (int c = 0; c < a.cols(); ++c) {
      orow[c] = std::exp(arow[c] - mx);
      total += orow[c];
    }
    for (int c = 0; c < a.cols(); ++c) orow[c] /= total;
  }
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (int r = 0; r < self.grad.rows(); ++r) {
          const float* srow = self.value.row(r);
          const float* grow = self.grad.row(r);
          float dot = 0.f;
          for (int c = 0; c < self.grad.cols(); ++c) dot += grow[c] * srow[c];
          float* arow = pa->grad.row(r);
          for (int c = 0; c < self.grad.cols(); ++c) {
            arow[c] += srow[c] * (grow[c] - dot);
          }
        }
      });
}

Variable RowGather(const Variable& a, const std::vector<int>& index) {
  Tensor out(static_cast<int>(index.size()), a.cols());
  for (size_t i = 0; i < index.size(); ++i) {
    OODGNN_DCHECK(index[i] >= 0 && index[i] < a.rows());
    const float* src = a.value().row(index[i]);
    float* dst = out.row(static_cast<int>(i));
    std::copy(src, src + a.cols(), dst);
  }
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa},
      [pa, index](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (size_t i = 0; i < index.size(); ++i) {
          const float* grow = self.grad.row(static_cast<int>(i));
          float* arow = pa->grad.row(index[i]);
          for (int c = 0; c < self.grad.cols(); ++c) arow[c] += grow[c];
        }
      });
}

Variable ScatterAddRows(const Variable& a, const std::vector<int>& index,
                        int out_rows) {
  OODGNN_CHECK_EQ(static_cast<int>(index.size()), a.rows());
  Tensor out(out_rows, a.cols());
  for (size_t i = 0; i < index.size(); ++i) {
    OODGNN_DCHECK(index[i] >= 0 && index[i] < out_rows);
    const float* src = a.value().row(static_cast<int>(i));
    float* dst = out.row(index[i]);
    for (int c = 0; c < a.cols(); ++c) dst[c] += src[c];
  }
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa},
      [pa, index](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (size_t i = 0; i < index.size(); ++i) {
          const float* grow = self.grad.row(index[i]);
          float* arow = pa->grad.row(static_cast<int>(i));
          for (int c = 0; c < self.grad.cols(); ++c) arow[c] += grow[c];
        }
      });
}

Variable SegmentSum(const Variable& a, const std::vector<int>& segment,
                    int num_segments) {
  return ScatterAddRows(a, segment, num_segments);
}

Variable SegmentMean(const Variable& a, const std::vector<int>& segment,
                     int num_segments) {
  OODGNN_CHECK_EQ(static_cast<int>(segment.size()), a.rows());
  std::vector<float> inv_count(static_cast<size_t>(num_segments), 0.f);
  for (int s : segment) {
    OODGNN_DCHECK(s >= 0 && s < num_segments);
    inv_count[static_cast<size_t>(s)] += 1.f;
  }
  for (float& v : inv_count) v = v > 0.f ? 1.f / v : 0.f;
  Variable sum = SegmentSum(a, segment, num_segments);
  Variable scale = Variable::Constant(Tensor::ColVector(inv_count));
  return MulColVec(sum, scale);
}

namespace {

Variable SegmentExtreme(const Variable& a, const std::vector<int>& segment,
                        int num_segments, bool is_max) {
  OODGNN_CHECK_EQ(static_cast<int>(segment.size()), a.rows());
  const float init = is_max ? -std::numeric_limits<float>::infinity()
                            : std::numeric_limits<float>::infinity();
  Tensor out(num_segments, a.cols(), init);
  // argmax[s*cols+c] = row index supplying the extreme, or -1 if empty.
  auto arg = std::make_shared<std::vector<int>>(
      static_cast<size_t>(num_segments) * a.cols(), -1);
  for (int r = 0; r < a.rows(); ++r) {
    const int s = segment[static_cast<size_t>(r)];
    const float* arow = a.value().row(r);
    float* orow = out.row(s);
    for (int c = 0; c < a.cols(); ++c) {
      const bool better = is_max ? arow[c] > orow[c] : arow[c] < orow[c];
      if (better) {
        orow[c] = arow[c];
        (*arg)[static_cast<size_t>(s) * a.cols() + c] = r;
      }
    }
  }
  // Empty segments: replace ±inf sentinels with zeros.
  for (int s = 0; s < num_segments; ++s) {
    float* orow = out.row(s);
    for (int c = 0; c < a.cols(); ++c) {
      if ((*arg)[static_cast<size_t>(s) * a.cols() + c] < 0) orow[c] = 0.f;
    }
  }
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa},
      [pa, arg](const VariableNode& self) {
        if (!pa->requires_grad) return;
        const int cols = self.grad.cols();
        for (int s = 0; s < self.grad.rows(); ++s) {
          const float* grow = self.grad.row(s);
          for (int c = 0; c < cols; ++c) {
            const int r = (*arg)[static_cast<size_t>(s) * cols + c];
            if (r >= 0) pa->grad.at(r, c) += grow[c];
          }
        }
      });
}

}  // namespace

Variable SegmentMax(const Variable& a, const std::vector<int>& segment,
                    int num_segments) {
  return SegmentExtreme(a, segment, num_segments, /*is_max=*/true);
}

Variable SegmentMin(const Variable& a, const std::vector<int>& segment,
                    int num_segments) {
  return SegmentExtreme(a, segment, num_segments, /*is_max=*/false);
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  OODGNN_CHECK(!parts.empty());
  const int rows = parts[0].rows();
  int total_cols = 0;
  for (const Variable& p : parts) {
    OODGNN_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
  }
  Tensor out(rows, total_cols);
  int offset = 0;
  for (const Variable& p : parts) {
    for (int r = 0; r < rows; ++r) {
      const float* src = p.value().row(r);
      float* dst = out.row(r) + offset;
      std::copy(src, src + p.cols(), dst);
    }
    offset += p.cols();
  }
  std::vector<NodePtr> nodes;
  nodes.reserve(parts.size());
  for (const Variable& p : parts) nodes.push_back(p.node());
  return Variable::MakeOp(
      std::move(out), nodes, [nodes](const VariableNode& self) {
        int offset = 0;
        for (const NodePtr& node : nodes) {
          const int cols = node->value.cols();
          if (node->requires_grad) {
            for (int r = 0; r < node->value.rows(); ++r) {
              const float* grow = self.grad.row(r) + offset;
              float* drow = node->grad.row(r);
              for (int c = 0; c < cols; ++c) drow[c] += grow[c];
            }
          }
          offset += cols;
        }
      });
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  OODGNN_CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int total_rows = 0;
  for (const Variable& p : parts) {
    OODGNN_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  Tensor out(total_rows, cols);
  int offset = 0;
  for (const Variable& p : parts) {
    for (int r = 0; r < p.rows(); ++r) {
      const float* src = p.value().row(r);
      std::copy(src, src + cols, out.row(offset + r));
    }
    offset += p.rows();
  }
  std::vector<NodePtr> nodes;
  nodes.reserve(parts.size());
  for (const Variable& p : parts) nodes.push_back(p.node());
  return Variable::MakeOp(
      std::move(out), nodes, [nodes](const VariableNode& self) {
        int offset = 0;
        for (const NodePtr& node : nodes) {
          if (node->requires_grad) {
            for (int r = 0; r < node->value.rows(); ++r) {
              const float* grow = self.grad.row(offset + r);
              float* drow = node->grad.row(r);
              for (int c = 0; c < self.grad.cols(); ++c) drow[c] += grow[c];
            }
          }
          offset += node->value.rows();
        }
      });
}

Variable SliceRows(const Variable& a, int start, int len) {
  OODGNN_CHECK(start >= 0 && len >= 0 && start + len <= a.rows());
  Tensor out(len, a.cols());
  for (int r = 0; r < len; ++r) {
    const float* src = a.value().row(start + r);
    std::copy(src, src + a.cols(), out.row(r));
  }
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, start](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (int r = 0; r < self.grad.rows(); ++r) {
          const float* grow = self.grad.row(r);
          float* drow = pa->grad.row(start + r);
          for (int c = 0; c < self.grad.cols(); ++c) drow[c] += grow[c];
        }
      });
}

Variable Dropout(const Variable& a, float p, Rng* rng, bool training) {
  OODGNN_CHECK(p >= 0.f && p < 1.f);
  if (!training || p == 0.f) return a;
  auto mask = std::make_shared<Tensor>(a.rows(), a.cols());
  const float keep_scale = 1.f / (1.f - p);
  for (int i = 0; i < mask->size(); ++i) {
    (*mask)[i] = rng->Bernoulli(p) ? 0.f : keep_scale;
  }
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < out.size(); ++i) out[i] = a.value()[i] * (*mask)[i];
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, mask](const VariableNode& self) {
        if (!pa->requires_grad) return;
        for (int i = 0; i < self.grad.size(); ++i) {
          pa->grad[i] += self.grad[i] * (*mask)[i];
        }
      });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  OODGNN_CHECK_LE(lo, hi);
  return UnaryOp(
      a, [lo, hi](float x) { return std::clamp(x, lo, hi); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.f : 0.f; });
}

}  // namespace oodgnn
