#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/tensor/backend.h"
#include "src/util/check.h"
#include "src/util/rng.h"

// Thin autograd layer: every function here only validates shapes,
// builds VariableNodes and wires backward closures. All arithmetic is
// delegated to the active compute backend (src/tensor/backend.h), which
// drives the pure kernels in src/tensor/kernels.cc — serially or across
// a thread pool, with bitwise-identical results either way.

namespace oodgnn {
namespace {

using NodePtr = std::shared_ptr<VariableNode>;

/// Unary element-wise op helper: forward maps value, backward multiplies
/// upstream grad by a locally computed derivative. The map itself runs
/// under the backend's partitioned loop.
template <typename Fwd, typename Bwd>
Variable UnaryOp(const Variable& a, Fwd&& fwd, Bwd&& dfn) {
  OODGNN_CHECK(a.defined());
  const Tensor& av = a.value();
  Tensor out(av.rows(), av.cols());
  GetBackend().ForCost(av.size(), 2ll * av.size(), [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) out[i] = fwd(av[i]);
  });
  NodePtr pa = a.node();
  // The derivative receives (input, output) so implementations can use
  // whichever is cheaper.
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, dfn](const VariableNode& self) {
        if (!pa->requires_grad) return;
        const Tensor& g = self.grad;
        GetBackend().ForCost(g.size(), 2ll * g.size(), [&](int i0, int i1) {
          for (int i = i0; i < i1; ++i) {
            pa->grad[i] += g[i] * dfn(pa->value[i], self.value[i]);
          }
        });
      });
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.defined() && b.defined());
  OODGNN_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  Tensor out(a.rows(), b.cols());
  GetBackend().MatMulAcc(a.value(), b.value(), &out);
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Backend& be = GetBackend();
        if (pa->requires_grad) {
          be.MatMulTransBAcc(self.grad, pb->value, &pa->grad);
        }
        if (pb->requires_grad) {
          be.MatMulTransAAcc(pa->value, self.grad, &pb->grad);
        }
      });
}

Variable Add(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  GetBackend().Axpy(1.f, b.value(), &out);
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Backend& be = GetBackend();
        if (pa->requires_grad) be.Axpy(1.f, self.grad, &pa->grad);
        if (pb->requires_grad) be.Axpy(1.f, self.grad, &pb->grad);
      });
}

Variable Sub(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  GetBackend().Axpy(-1.f, b.value(), &out);
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Backend& be = GetBackend();
        if (pa->requires_grad) be.Axpy(1.f, self.grad, &pa->grad);
        if (pb->requires_grad) be.Axpy(-1.f, self.grad, &pb->grad);
      });
}

Variable Mul(const Variable& a, const Variable& b) {
  OODGNN_CHECK(a.value().SameShape(b.value()));
  Tensor out(a.rows(), a.cols());
  GetBackend().Hadamard(a.value(), b.value(), &out);
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Backend& be = GetBackend();
        if (pa->requires_grad) be.HadamardAcc(self.grad, pb->value, &pa->grad);
        if (pb->requires_grad) be.HadamardAcc(self.grad, pa->value, &pb->grad);
      });
}

Variable AddRowVec(const Variable& a, const Variable& b) {
  OODGNN_CHECK_EQ(b.rows(), 1);
  OODGNN_CHECK_EQ(b.cols(), a.cols());
  Tensor out = a.value();
  GetBackend().RowBroadcastAcc(b.value(), &out);
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Backend& be = GetBackend();
        if (pa->requires_grad) be.Axpy(1.f, self.grad, &pa->grad);
        if (pb->requires_grad) be.ColumnSumAcc(self.grad, &pb->grad);
      });
}

Variable MulRowVec(const Variable& a, const Variable& b) {
  OODGNN_CHECK_EQ(b.rows(), 1);
  OODGNN_CHECK_EQ(b.cols(), a.cols());
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  Tensor out(a.rows(), a.cols());
  GetBackend().ForCost(out.rows(), out.size(), [&](int r0, int r1) {
    const float* brow = bv.row(0);
    for (int r = r0; r < r1; ++r) {
      const float* arow = av.row(r);
      float* orow = out.row(r);
      for (int c = 0; c < out.cols(); ++c) orow[c] = arow[c] * brow[c];
    }
  });
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Backend& be = GetBackend();
        const Tensor& g = self.grad;
        if (pa->requires_grad) {
          be.ForCost(g.rows(), g.size(), [&](int r0, int r1) {
            const float* brow = pb->value.row(0);
            for (int r = r0; r < r1; ++r) {
              const float* grow = g.row(r);
              float* arow = pa->grad.row(r);
              for (int c = 0; c < g.cols(); ++c) arow[c] += grow[c] * brow[c];
            }
          });
        }
        if (pb->requires_grad) {
          be.HadamardColumnSumAcc(g, pa->value, &pb->grad);
        }
      });
}

Variable DivRowVec(const Variable& a, const Variable& b) {
  OODGNN_CHECK_EQ(b.rows(), 1);
  OODGNN_CHECK_EQ(b.cols(), a.cols());
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  Tensor out(a.rows(), a.cols());
  GetBackend().ForCost(out.rows(), out.size(), [&](int r0, int r1) {
    const float* brow = bv.row(0);
    for (int r = r0; r < r1; ++r) {
      const float* arow = av.row(r);
      float* orow = out.row(r);
      for (int c = 0; c < out.cols(); ++c) orow[c] = arow[c] / brow[c];
    }
  });
  NodePtr pa = a.node();
  NodePtr pb = b.node();
  return Variable::MakeOp(
      std::move(out), {pa, pb}, [pa, pb](const VariableNode& self) {
        const Backend& be = GetBackend();
        const Tensor& g = self.grad;
        if (pa->requires_grad) {
          be.ForCost(g.rows(), g.size(), [&](int r0, int r1) {
            const float* brow = pb->value.row(0);
            for (int r = r0; r < r1; ++r) {
              const float* grow = g.row(r);
              float* arow = pa->grad.row(r);
              for (int c = 0; c < g.cols(); ++c) arow[c] += grow[c] / brow[c];
            }
          });
        }
        if (pb->requires_grad) {
          // d/db (a/b) = -y/b with y = a/b: column sums of g ⊙ y, scaled
          // by -1/b per column.
          Tensor colsum(1, g.cols());
          be.HadamardColumnSumAcc(g, self.value, &colsum);
          const float* brow = pb->value.row(0);
          float* out_row = pb->grad.row(0);
          for (int c = 0; c < g.cols(); ++c) {
            out_row[c] -= colsum.at(0, c) / brow[c];
          }
        }
      });
}

Variable MulColVec(const Variable& a, const Variable& w) {
  OODGNN_CHECK_EQ(w.cols(), 1);
  OODGNN_CHECK_EQ(w.rows(), a.rows());
  const Tensor& av = a.value();
  const Tensor& wv = w.value();
  Tensor out(a.rows(), a.cols());
  GetBackend().ForCost(out.rows(), out.size(), [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      const float s = wv.at(r, 0);
      const float* arow = av.row(r);
      float* orow = out.row(r);
      for (int c = 0; c < out.cols(); ++c) orow[c] = arow[c] * s;
    }
  });
  NodePtr pa = a.node();
  NodePtr pw = w.node();
  return Variable::MakeOp(
      std::move(out), {pa, pw}, [pa, pw](const VariableNode& self) {
        const Backend& be = GetBackend();
        const Tensor& g = self.grad;
        if (pa->requires_grad) {
          be.ForCost(g.rows(), g.size(), [&](int r0, int r1) {
            for (int r = r0; r < r1; ++r) {
              const float s = pw->value.at(r, 0);
              const float* grow = g.row(r);
              float* arow = pa->grad.row(r);
              for (int c = 0; c < g.cols(); ++c) arow[c] += grow[c] * s;
            }
          });
        }
        if (pw->requires_grad) {
          be.HadamardRowSumAcc(g, pa->value, &pw->grad);
        }
      });
}

Variable Scale(const Variable& a, float s) {
  Tensor out = a.value();
  GetBackend().ScaleInPlace(s, &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, s](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().Axpy(s, self.grad, &pa->grad);
      });
}

Variable MulByScalarVar(const Variable& a, const Variable& s) {
  OODGNN_CHECK_EQ(s.value().size(), 1);
  Tensor out = a.value();
  GetBackend().ScaleInPlace(s.value()[0], &out);
  NodePtr pa = a.node();
  NodePtr ps = s.node();
  return Variable::MakeOp(
      std::move(out), {pa, ps}, [pa, ps](const VariableNode& self) {
        const Backend& be = GetBackend();
        if (pa->requires_grad) {
          be.Axpy(ps->value[0], self.grad, &pa->grad);
        }
        if (ps->requires_grad) {
          ps->grad[0] += be.Dot(self.grad, pa->value);
        }
      });
}

Variable Reciprocal(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return 1.f / x; },
      [](float, float y) { return -y * y; });
}

Variable AddScalar(const Variable& a, float s) {
  Tensor out = a.value();
  GetBackend().AddScalarAcc(s, &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(std::move(out), {pa},
                          [pa](const VariableNode& self) {
                            if (!pa->requires_grad) return;
                            GetBackend().Axpy(1.f, self.grad, &pa->grad);
                          });
}

Variable Relu(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.f ? x : 0.f; },
      [](float x, float) { return x > 0.f ? 1.f : 0.f; });
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  return UnaryOp(
      a,
      [negative_slope](float x) {
        return x > 0.f ? x : negative_slope * x;
      },
      [negative_slope](float x, float) {
        return x > 0.f ? 1.f : negative_slope;
      });
}

Variable Sigmoid(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return 1.f / (1.f + std::exp(-x)); },
      [](float, float y) { return y * (1.f - y); });
}

Variable TanhOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.f - y * y; });
}

Variable CosOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::cos(x); },
      [](float x, float) { return -std::sin(x); });
}

Variable ExpOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Variable LogOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.f / x; });
}

Variable SqrtOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); });
}

Variable Square(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.f * x; });
}

Variable AbsOp(const Variable& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.f ? 1.f : (x < 0.f ? -1.f : 0.f); });
}

Variable Sum(const Variable& a) {
  // Full-tensor scalar reduction: serial on every backend (contract).
  Tensor out(1, 1, a.value().Sum());
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().AddScalarAcc(self.grad[0], &pa->grad);
      });
}

Variable MeanAll(const Variable& a) {
  OODGNN_CHECK_GT(a.value().size(), 0);
  return Scale(Sum(a), 1.f / static_cast<float>(a.value().size()));
}

Variable SumRows(const Variable& a) {
  Tensor out(1, a.cols());
  GetBackend().ColumnSumAcc(a.value(), &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().RowBroadcastAcc(self.grad, &pa->grad);
      });
}

Variable SumCols(const Variable& a) {
  Tensor out(a.rows(), 1);
  GetBackend().RowSumAcc(a.value(), &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().ColBroadcastAcc(self.grad, &pa->grad);
      });
}

Variable MeanRows(const Variable& a) {
  OODGNN_CHECK_GT(a.rows(), 0);
  return Scale(SumRows(a), 1.f / static_cast<float>(a.rows()));
}

Variable Transpose(const Variable& a) {
  Tensor out = a.value().Transposed();
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().AddTransposedAcc(self.grad, &pa->grad);
      });
}

Variable SoftmaxRows(const Variable& a) {
  Tensor out(a.rows(), a.cols());
  GetBackend().SoftmaxRows(a.value(), &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().SoftmaxRowsBackwardAcc(self.value, self.grad, &pa->grad);
      });
}

Variable RowGather(const Variable& a, const std::vector<int>& index) {
  for (int idx : index) {
    OODGNN_DCHECK(idx >= 0 && idx < a.rows());
    (void)idx;
  }
  Tensor out(static_cast<int>(index.size()), a.cols());
  GetBackend().GatherRows(a.value(), index, &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa},
      [pa, index](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().ScatterAddRowsAcc(self.grad, index, &pa->grad);
      });
}

Variable ScatterAddRows(const Variable& a, const std::vector<int>& index,
                        int out_rows) {
  OODGNN_CHECK_EQ(static_cast<int>(index.size()), a.rows());
  for (int idx : index) {
    OODGNN_DCHECK(idx >= 0 && idx < out_rows);
    (void)idx;
  }
  Tensor out(out_rows, a.cols());
  GetBackend().ScatterAddRowsAcc(a.value(), index, &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa},
      [pa, index](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().GatherRowsAcc(self.grad, index, &pa->grad);
      });
}

Variable SegmentSum(const Variable& a, const std::vector<int>& segment,
                    int num_segments) {
  return ScatterAddRows(a, segment, num_segments);
}

Variable SegmentMean(const Variable& a, const std::vector<int>& segment,
                     int num_segments) {
  OODGNN_CHECK_EQ(static_cast<int>(segment.size()), a.rows());
  std::vector<float> inv_count(static_cast<size_t>(num_segments), 0.f);
  for (int s : segment) {
    OODGNN_DCHECK(s >= 0 && s < num_segments);
    inv_count[static_cast<size_t>(s)] += 1.f;
  }
  for (float& v : inv_count) v = v > 0.f ? 1.f / v : 0.f;
  Variable sum = SegmentSum(a, segment, num_segments);
  Variable scale = Variable::Constant(Tensor::ColVector(inv_count));
  return MulColVec(sum, scale);
}

namespace {

Variable SegmentExtreme(const Variable& a, const std::vector<int>& segment,
                        int num_segments, bool is_max) {
  OODGNN_CHECK_EQ(static_cast<int>(segment.size()), a.rows());
  Tensor out(num_segments, a.cols());
  // argrow[s*cols+c] = row index supplying the extreme, or -1 if empty.
  auto argrow = std::make_shared<std::vector<int>>(
      static_cast<size_t>(num_segments) * a.cols(), -1);
  GetBackend().SegmentExtreme(a.value(), segment, is_max, &out, argrow.get());
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa},
      [pa, argrow](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().SegmentExtremeBackwardAcc(self.grad, *argrow, &pa->grad);
      });
}

}  // namespace

Variable SegmentMax(const Variable& a, const std::vector<int>& segment,
                    int num_segments) {
  return SegmentExtreme(a, segment, num_segments, /*is_max=*/true);
}

Variable SegmentMin(const Variable& a, const std::vector<int>& segment,
                    int num_segments) {
  return SegmentExtreme(a, segment, num_segments, /*is_max=*/false);
}

// --- planned overloads ---
//
// Each planned op keeps the exact graph structure (parents, closure
// count) of its unplanned twin and swaps only the kernel driving the
// scatter direction, so gradient accumulation order — and therefore
// every float — is unchanged (DESIGN.md §12).

Variable RowGather(const Variable& a, const SegmentPlanPtr& plan) {
  OODGNN_CHECK(plan != nullptr);
  OODGNN_CHECK_EQ(plan->num_segments, a.rows());
  Tensor out(plan->num_items(), a.cols());
  GetBackend().GatherRows(a.value(), plan->items, &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, plan](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().ScatterAddRowsPlanned(self.grad, *plan, &pa->grad);
      });
}

Variable ScatterAddRows(const Variable& a, const SegmentPlanPtr& plan) {
  OODGNN_CHECK(plan != nullptr);
  OODGNN_CHECK_EQ(plan->num_items(), a.rows());
  Tensor out(plan->num_segments, a.cols());
  GetBackend().ScatterAddRowsPlanned(a.value(), *plan, &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, plan](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().GatherRowsAcc(self.grad, plan->items, &pa->grad);
      });
}

Variable SegmentSum(const Variable& a, const SegmentPlanPtr& plan) {
  return ScatterAddRows(a, plan);
}

Variable SegmentMean(const Variable& a, const SegmentPlanPtr& plan) {
  OODGNN_CHECK(plan != nullptr);
  // 1/count from the plan offsets; identical to the unplanned op's
  // repeated +1.f counting for any count below 2^24.
  std::vector<float> inv_count(static_cast<size_t>(plan->num_segments));
  for (int s = 0; s < plan->num_segments; ++s) {
    const int count = plan->SegmentSize(s);
    inv_count[static_cast<size_t>(s)] =
        count > 0 ? 1.f / static_cast<float>(count) : 0.f;
  }
  Variable sum = ScatterAddRows(a, plan);
  Variable scale = Variable::Constant(Tensor::ColVector(inv_count));
  return MulColVec(sum, scale);
}

namespace {

Variable SegmentExtremePlannedImpl(const Variable& a,
                                   const SegmentPlanPtr& plan, bool is_max) {
  OODGNN_CHECK(plan != nullptr);
  OODGNN_CHECK_EQ(plan->num_items(), a.rows());
  Tensor out(plan->num_segments, a.cols());
  auto argrow = std::make_shared<std::vector<int>>(
      static_cast<size_t>(plan->num_segments) * a.cols(), -1);
  GetBackend().SegmentExtremePlanned(a.value(), *plan, is_max, &out,
                                     argrow.get());
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, argrow](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().SegmentExtremeBackwardAcc(self.grad, *argrow, &pa->grad);
      });
}

}  // namespace

Variable SegmentMax(const Variable& a, const SegmentPlanPtr& plan) {
  return SegmentExtremePlannedImpl(a, plan, /*is_max=*/true);
}

Variable SegmentMin(const Variable& a, const SegmentPlanPtr& plan) {
  return SegmentExtremePlannedImpl(a, plan, /*is_max=*/false);
}

Variable GatherScatter(const Variable& h, const MessagePlanPtr& plan) {
  OODGNN_CHECK(plan != nullptr);
  OODGNN_CHECK_EQ(plan->num_rows, h.rows());
  Tensor out(plan->num_rows, h.cols());
  GetBackend().GatherScatterAcc(h.value(), plan->src_by_dst, plan->by_dst,
                                &out);
  NodePtr ph = h.node();
  return Variable::MakeOp(
      std::move(out), {ph}, [ph, plan](const VariableNode& self) {
        if (!ph->requires_grad) return;
        // The adjoint is the transposed message pass: gradient rows
        // gathered by dst, accumulated into src segments.
        GetBackend().GatherScatterAcc(self.grad, plan->dst_by_src,
                                      plan->by_src, &ph->grad);
      });
}

Variable GatherScatterWeighted(const Variable& h, const Variable& w,
                               const MessagePlanPtr& plan) {
  OODGNN_CHECK(plan != nullptr);
  OODGNN_CHECK_EQ(plan->num_rows, h.rows());
  OODGNN_CHECK_EQ(w.rows(), plan->num_edges());
  OODGNN_CHECK_EQ(w.cols(), 1);
  Tensor out(plan->num_rows, h.cols());
  GetBackend().GatherScatterWeightedAcc(h.value(), w.value(), plan->src_by_dst,
                                        plan->by_dst, &out);
  NodePtr ph = h.node();
  NodePtr pw = w.node();
  return Variable::MakeOp(
      std::move(out), {ph, pw}, [ph, pw, plan](const VariableNode& self) {
        if (ph->requires_grad) {
          GetBackend().GatherScatterWeightedAcc(self.grad, pw->value,
                                                plan->dst_by_src, plan->by_src,
                                                &ph->grad);
        }
        if (pw->requires_grad) {
          GetBackend().EdgeDotAcc(self.grad, ph->value, plan->dst(),
                                  plan->src(), &pw->grad);
        }
      });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  OODGNN_CHECK(!parts.empty());
  const int rows = parts[0].rows();
  int total_cols = 0;
  for (const Variable& p : parts) {
    OODGNN_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
  }
  Tensor out(rows, total_cols);
  const Backend& be = GetBackend();
  int offset = 0;
  for (const Variable& p : parts) {
    const Tensor& pv = p.value();
    be.ForCost(rows, pv.size(), [&](int r0, int r1) {
      for (int r = r0; r < r1; ++r) {
        const float* src = pv.row(r);
        std::copy(src, src + pv.cols(), out.row(r) + offset);
      }
    });
    offset += p.cols();
  }
  std::vector<NodePtr> nodes;
  nodes.reserve(parts.size());
  for (const Variable& p : parts) nodes.push_back(p.node());
  return Variable::MakeOp(
      std::move(out), nodes, [nodes](const VariableNode& self) {
        const Backend& be = GetBackend();
        int offset = 0;
        for (const NodePtr& node : nodes) {
          const int cols = node->value.cols();
          if (node->requires_grad) {
            be.ForCost(node->value.rows(), node->value.size(),
                       [&](int r0, int r1) {
                         for (int r = r0; r < r1; ++r) {
                           const float* grow = self.grad.row(r) + offset;
                           float* drow = node->grad.row(r);
                           for (int c = 0; c < cols; ++c) drow[c] += grow[c];
                         }
                       });
          }
          offset += cols;
        }
      });
}

Variable ConcatRows(const std::vector<Variable>& parts) {
  OODGNN_CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int total_rows = 0;
  for (const Variable& p : parts) {
    OODGNN_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  Tensor out(total_rows, cols);
  const Backend& be = GetBackend();
  int offset = 0;
  for (const Variable& p : parts) {
    be.CopyRowsTo(p.value(), &out, offset);
    offset += p.rows();
  }
  std::vector<NodePtr> nodes;
  nodes.reserve(parts.size());
  for (const Variable& p : parts) nodes.push_back(p.node());
  return Variable::MakeOp(
      std::move(out), nodes, [nodes](const VariableNode& self) {
        const Backend& be = GetBackend();
        int offset = 0;
        for (const NodePtr& node : nodes) {
          if (node->requires_grad) {
            const int part_rows = node->value.rows();
            be.ForCost(part_rows, node->value.size(), [&](int r0, int r1) {
              for (int r = r0; r < r1; ++r) {
                const float* grow = self.grad.row(offset + r);
                float* drow = node->grad.row(r);
                for (int c = 0; c < self.grad.cols(); ++c) drow[c] += grow[c];
              }
            });
          }
          offset += node->value.rows();
        }
      });
}

Variable SliceRows(const Variable& a, int start, int len) {
  OODGNN_CHECK(start >= 0 && len >= 0 && start + len <= a.rows());
  Tensor out(len, a.cols());
  const Tensor& av = a.value();
  GetBackend().ForCost(len, out.size(), [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      const float* src = av.row(start + r);
      std::copy(src, src + av.cols(), out.row(r));
    }
  });
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, start](const VariableNode& self) {
        if (!pa->requires_grad) return;
        const Tensor& g = self.grad;
        GetBackend().ForCost(g.rows(), g.size(), [&](int r0, int r1) {
          for (int r = r0; r < r1; ++r) {
            const float* grow = g.row(r);
            float* drow = pa->grad.row(start + r);
            for (int c = 0; c < g.cols(); ++c) drow[c] += grow[c];
          }
        });
      });
}

Variable Dropout(const Variable& a, float p, Rng* rng, bool training) {
  OODGNN_CHECK(p >= 0.f && p < 1.f);
  if (!training || p == 0.f) return a;
  auto mask = std::make_shared<Tensor>(a.rows(), a.cols());
  const float keep_scale = 1.f / (1.f - p);
  // Mask generation consumes the rng stream and must stay serial so the
  // draw order is independent of the backend.
  for (int i = 0; i < mask->size(); ++i) {
    (*mask)[i] = rng->Bernoulli(p) ? 0.f : keep_scale;
  }
  Tensor out(a.rows(), a.cols());
  GetBackend().Hadamard(a.value(), *mask, &out);
  NodePtr pa = a.node();
  return Variable::MakeOp(
      std::move(out), {pa}, [pa, mask](const VariableNode& self) {
        if (!pa->requires_grad) return;
        GetBackend().HadamardAcc(self.grad, *mask, &pa->grad);
      });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  OODGNN_CHECK_LE(lo, hi);
  return UnaryOp(
      a, [lo, hi](float x) { return std::clamp(x, lo, hi); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.f : 0.f; });
}

}  // namespace oodgnn
