#include "src/tensor/exec_plan.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"

namespace oodgnn {
namespace {

/// At most one record or replay scope is active per thread; the hooks
/// below are a single thread-local load when neither is.
thread_local PlanRecordScope* tls_record_scope = nullptr;
thread_local PlanReplayScope* tls_replay_scope = nullptr;

}  // namespace

// ---------------------------------------------------------------------------
// ComputePlan
// ---------------------------------------------------------------------------

std::string ComputePlan::Summary() const {
  std::ostringstream out;
  out << "ComputePlan{slots=" << slots.size() << ", kernels=" << kernels.size()
      << ", ops=" << ops.size() << ", arena=" << capacity_bytes() << "B"
      << ", demand=" << slot_floats_total * sizeof(float) << "B"
      << ", reuse=" << reuse_ratio() << "x"
      << ", envelope=" << max_graphs << "g/" << max_nodes << "n/" << max_edges
      << "e}";
  return out.str();
}

// ---------------------------------------------------------------------------
// PlanRecordScope
// ---------------------------------------------------------------------------

struct PlanRecordScope::State {
  std::mutex mu;
  bool finished = false;

  std::vector<PlanSlot> slots;
  std::vector<PlanKernelNode> kernels;
  std::vector<PlanOpNode> ops;

  /// Virtual arena space being assigned: free extents offset -> length,
  /// plus the bump top. First-fit over the holes, bump on miss — the
  /// same policy the dynamic Arena uses, but over offsets instead of
  /// real memory, driven by the actual death of each recorded block
  /// (last-use liveness).
  std::map<std::size_t, std::size_t> holes;
  std::size_t top = 0;

  std::int64_t live_floats = 0;
  std::int64_t peak_live_floats = 0;
  std::int64_t slot_floats_total = 0;

  std::size_t AssignOffset(std::size_t n) {
    for (auto it = holes.begin(); it != holes.end(); ++it) {
      if (it->second < n) continue;
      const std::size_t offset = it->first;
      const std::size_t remaining = it->second - n;
      holes.erase(it);
      if (remaining > 0) holes.emplace(offset + n, remaining);
      return offset;
    }
    const std::size_t offset = top;
    top += n;
    return offset;
  }

  void Free(std::size_t offset, std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    live_floats -= static_cast<std::int64_t>(n);
    if (finished) return;  // Plan already built; extent stays reserved.
    auto [it, inserted] = holes.emplace(offset, n);
    OODGNN_CHECK(inserted) << "double free while recording a plan";
    auto next = std::next(it);
    if (next != holes.end() && it->first + it->second == next->first) {
      it->second += next->second;
      holes.erase(next);
    }
    if (it != holes.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        holes.erase(it);
      }
    }
  }
};

PlanRecordScope::PlanRecordScope()
    : state_(std::make_shared<State>()), install_(this) {
  OODGNN_CHECK(tls_record_scope == nullptr && tls_replay_scope == nullptr)
      << "nested plan scopes are not supported";
  tls_record_scope = this;
}

PlanRecordScope::~PlanRecordScope() { tls_record_scope = nullptr; }

std::shared_ptr<float> PlanRecordScope::Allocate(std::size_t n_floats) {
  const std::size_t n =
      std::max(AlignUpFloats(n_floats), kTensorStorageAlignFloats);
  // Recording executes on ordinary heap blocks; only the offsets are
  // simulated. This keeps the recording forward identical to an eager
  // one (results are bitwise equal by construction).
  std::shared_ptr<float> heap = AllocateAlignedHeapBlock(n);
  std::shared_ptr<State> state = state_;
  std::size_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    OODGNN_CHECK(!state->finished) << "allocation after Finish() in scope";
    offset = state->AssignOffset(n);
    PlanSlot slot;
    slot.offset = static_cast<std::int64_t>(offset);
    slot.capacity = static_cast<std::int64_t>(n);
    slot.op_index = static_cast<std::int64_t>(state->kernels.size());
    state->slots.push_back(slot);
    state->slot_floats_total += static_cast<std::int64_t>(n);
    state->live_floats += static_cast<std::int64_t>(n);
    state->peak_live_floats =
        std::max(state->peak_live_floats, state->live_floats);
  }
  return std::shared_ptr<float>(heap.get(),
                                [state, heap, offset, n](float*) mutable {
                                  state->Free(offset, n);
                                  heap.reset();
                                });
}

void PlanRecordScope::OnKernel(int kernel_id, const char* name,
                               std::int64_t elems) {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->finished) return;
  PlanKernelNode node;
  node.kernel_id = kernel_id;
  node.name = name;
  node.elems = elems;
  state_->kernels.push_back(node);
}

void PlanRecordScope::OnOp(int rows, int cols) {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->finished) return;
  PlanOpNode node;
  node.rows = rows;
  node.cols = cols;
  node.kernels_before = static_cast<std::int64_t>(state_->kernels.size());
  state_->ops.push_back(node);
}

ComputePlan PlanRecordScope::Finish() {
  std::lock_guard<std::mutex> lock(state_->mu);
  OODGNN_CHECK(!state_->finished) << "Finish() called twice";
  state_->finished = true;
  ComputePlan plan;
  plan.slots = std::move(state_->slots);
  plan.kernels = std::move(state_->kernels);
  plan.ops = std::move(state_->ops);
  plan.capacity_floats =
      static_cast<std::int64_t>(AlignUpFloats(state_->top));
  plan.slot_floats_total = state_->slot_floats_total;
  plan.peak_live_floats = state_->peak_live_floats;
  return plan;
}

// ---------------------------------------------------------------------------
// PlanArena / PlanReplayScope
// ---------------------------------------------------------------------------

void PlanArena::Resize(std::int64_t capacity_floats) {
  capacity_floats_ = static_cast<std::int64_t>(
      AlignUpFloats(static_cast<std::size_t>(std::max<std::int64_t>(
          capacity_floats, 0))));
  buffer_ = capacity_floats_ > 0
                ? AllocateAlignedHeapBlock(
                      static_cast<std::size_t>(capacity_floats_))
                : nullptr;
}

PlanReplayScope::PlanReplayScope(std::shared_ptr<const ComputePlan> plan,
                                 const PlanArena* arena,
                                 WeightDtype active_dtype)
    : plan_(std::move(plan)),
      buffer_(arena != nullptr ? arena->buffer() : nullptr),
      buffer_capacity_(arena != nullptr ? arena->capacity_floats() : 0),
      install_(this) {
  OODGNN_CHECK(tls_record_scope == nullptr && tls_replay_scope == nullptr)
      << "nested plan scopes are not supported";
  // A missing plan, an undersized arena, or a plan recorded under the
  // other weight representation cannot serve any slot: run the whole
  // scope on the heap (recorded as divergence). The dtype check is
  // defense-in-depth under the engine's PlanAdmits — a quantized
  // forward issues matmul_quant where an fp32 plan recorded matmul, so
  // the stream would diverge anyway, but only after some blocks were
  // placed.
  if (plan_ == nullptr || buffer_ == nullptr ||
      buffer_capacity_ < plan_->capacity_floats ||
      (plan_ != nullptr && plan_->weight_dtype != active_dtype)) {
    stats_.diverged = true;
  }
  tls_replay_scope = this;
}

PlanReplayScope::~PlanReplayScope() { tls_replay_scope = nullptr; }

std::shared_ptr<float> PlanReplayScope::Allocate(std::size_t n_floats) {
  const std::size_t n =
      std::max(AlignUpFloats(n_floats), kTensorStorageAlignFloats);
  if (!stats_.diverged) {
    if (alloc_cursor_ >= plan_->slots.size()) {
      // More allocations than the plan recorded: structural divergence.
      stats_.diverged = true;
    } else {
      const PlanSlot& slot = plan_->slots[alloc_cursor_];
      if (slot.op_index != kernel_cursor_) {
        // The op stream shifted relative to the recording (a branch the
        // reference batch did not take). Blocks placed so far followed
        // the recorded liveness exactly, and everything from here on
        // comes from the heap, so no two live blocks can alias.
        stats_.diverged = true;
      } else if (static_cast<std::int64_t>(n) > slot.capacity) {
        // Envelope overflow on this one intermediate; alignment with
        // the plan is intact, so only this block leaves the arena.
        ++alloc_cursor_;
        ++stats_.heap_allocs;
        return AllocateAlignedHeapBlock(n);
      } else {
        ++alloc_cursor_;
        ++stats_.arena_allocs;
        stats_.peak_floats =
            std::max(stats_.peak_floats,
                     slot.offset + static_cast<std::int64_t>(n));
        // The no-op deleter pins the backing buffer; liveness was
        // decided at record time, so death returns nothing.
        std::shared_ptr<float> buffer = buffer_;
        return std::shared_ptr<float>(
            buffer.get() + slot.offset, [buffer](float*) {});
      }
    }
  }
  ++stats_.heap_allocs;
  return AllocateAlignedHeapBlock(n);
}

void PlanReplayScope::OnKernel(int kernel_id) {
  if (stats_.diverged) return;
  if (kernel_cursor_ >= static_cast<std::int64_t>(plan_->kernels.size()) ||
      plan_->kernels[static_cast<std::size_t>(kernel_cursor_)].kernel_id !=
          kernel_id) {
    stats_.diverged = true;
    return;
  }
  ++kernel_cursor_;
}

void PlanReplayScope::OnOp() {
  if (stats_.diverged) return;
  // Op shapes scale with the batch, so only the count is structural: a
  // pass building more ops than the recording took a branch the plan
  // has not seen.
  if (op_cursor_ >= plan_->ops.size()) {
    stats_.diverged = true;
    return;
  }
  ++op_cursor_;
}

// ---------------------------------------------------------------------------
// ScopedPlanSuspend / ScopedDynamicArena
// ---------------------------------------------------------------------------

ScopedPlanSuspend::ScopedPlanSuspend()
    : saved_record_(tls_record_scope), saved_replay_(tls_replay_scope) {
  tls_record_scope = nullptr;
  tls_replay_scope = nullptr;
}

ScopedPlanSuspend::~ScopedPlanSuspend() {
  tls_record_scope = saved_record_;
  tls_replay_scope = saved_replay_;
}

Arena* ScopedDynamicArena::ThreadArena() {
  static thread_local std::unique_ptr<Arena> arena;
  if (arena == nullptr) arena = std::make_unique<Arena>();
  return arena.get();
}

ScopedDynamicArena::ScopedDynamicArena(bool use_arena)
    : suspend_(), install_(use_arena ? ThreadArena() : nullptr) {}

// ---------------------------------------------------------------------------
// Hooks
// ---------------------------------------------------------------------------

void ExecPlanOnKernel(int kernel_id, const char* name, std::int64_t out_elems) {
  if (tls_record_scope != nullptr) {
    tls_record_scope->OnKernel(kernel_id, name, out_elems);
  } else if (tls_replay_scope != nullptr) {
    tls_replay_scope->OnKernel(kernel_id);
  }
}

void ExecPlanOnOp(int rows, int cols) {
  if (tls_record_scope != nullptr) tls_record_scope->OnOp(rows, cols);
}

}  // namespace oodgnn
