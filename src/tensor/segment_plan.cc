#include "src/tensor/segment_plan.h"

#include <utility>

#include "src/util/check.h"

namespace oodgnn {

std::vector<int> SegmentPlan::SegmentCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_segments));
  for (int s = 0; s < num_segments; ++s) {
    counts[static_cast<size_t>(s)] = SegmentSize(s);
  }
  return counts;
}

SegmentPlan SegmentPlan::Build(std::vector<int> items, int num_segments) {
  OODGNN_CHECK_GE(num_segments, 0);
  SegmentPlan plan;
  plan.num_segments = num_segments;
  plan.items = std::move(items);
  plan.offsets.assign(static_cast<size_t>(num_segments) + 1, 0);
  // Counting sort: count, prefix-sum, then a cursor fill that visits
  // items in ascending position — so perm is stable by construction.
  for (int s : plan.items) {
    OODGNN_CHECK(s >= 0 && s < num_segments) << "segment id out of range";
    ++plan.offsets[static_cast<size_t>(s) + 1];
  }
  for (int s = 0; s < num_segments; ++s) {
    plan.offsets[static_cast<size_t>(s) + 1] +=
        plan.offsets[static_cast<size_t>(s)];
  }
  plan.perm.resize(plan.items.size());
  std::vector<int> cursor(plan.offsets.begin(), plan.offsets.end() - 1);
  for (size_t i = 0; i < plan.items.size(); ++i) {
    const int s = plan.items[i];
    plan.perm[static_cast<size_t>(cursor[static_cast<size_t>(s)]++)] =
        static_cast<int>(i);
  }
  return plan;
}

MessagePlan MessagePlan::Build(std::vector<int> src, std::vector<int> dst,
                               int num_rows) {
  OODGNN_CHECK_EQ(src.size(), dst.size());
  MessagePlan plan;
  plan.num_rows = num_rows;
  plan.by_dst = SegmentPlan::Build(std::move(dst), num_rows);
  plan.by_src = SegmentPlan::Build(std::move(src), num_rows);
  const size_t edges = plan.by_dst.items.size();
  plan.src_by_dst.resize(edges);
  plan.dst_by_src.resize(edges);
  for (size_t j = 0; j < edges; ++j) {
    plan.src_by_dst[j] =
        plan.by_src.items[static_cast<size_t>(plan.by_dst.perm[j])];
    plan.dst_by_src[j] =
        plan.by_dst.items[static_cast<size_t>(plan.by_src.perm[j])];
  }
  return plan;
}

}  // namespace oodgnn
