#ifndef OODGNN_TENSOR_EXEC_PLAN_H_
#define OODGNN_TENSOR_EXEC_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/arena.h"

namespace oodgnn {

// ---------------------------------------------------------------------------
// Plan-then-execute inference (DESIGN.md §13) and training
// (DESIGN.md §17).
//
// A no-grad forward — or, in grad mode, a whole forward+backward
// training tape — is traced once at a reference (envelope) batch shape
// into a static ComputePlan: the topologically ordered op/kernel
// stream plus, for every intermediate tensor, a static offset into a
// single preallocated arena. Offsets come from last-use liveness — a
// block's extent is returned to a first-fit hole list the moment its
// last owner dies during recording, so later intermediates reuse it.
// In grad mode the gradient buffers ride the same simulation: their
// lifetimes are the reverse-topological mirror of the forward's (a
// node's grad is born when the backward sweep first touches it and
// dies the moment the node's own backward closure has run), so one
// recording covers tape values and gradients with a single offset
// assignment. Replaying the plan serves every intermediate of a
// same-structured pass from the arena with zero heap allocation; any
// structural divergence (an op sequence the plan has not seen, or a
// block larger than its recorded envelope slot) degrades transparently
// to heap allocation for the rest of that pass.
// ---------------------------------------------------------------------------

/// Weight representation a plan was recorded against. A plan traced
/// with quantized weights contains matmul_quant dispatches (and vice
/// versa), so replaying it under the other representation is a
/// structural mismatch — PlanAdmits-style checks and PlanReplayScope
/// key on this before touching the stream.
enum class WeightDtype : int {
  kF32 = 0,
  kQ8 = 1,
};

inline const char* WeightDtypeName(WeightDtype dtype) {
  return dtype == WeightDtype::kQ8 ? "q8" : "f32";
}

/// One intermediate tensor in a compiled plan, in allocation order.
struct PlanSlot {
  std::int64_t offset = 0;    ///< Arena offset (floats, 64B-aligned).
  std::int64_t capacity = 0;  ///< Recorded envelope size (floats, aligned).
  /// Number of Backend kernels dispatched before this allocation — the
  /// structural tag replay verifies before placing a block here.
  std::int64_t op_index = 0;
};

/// One Backend kernel dispatch in the recorded stream (execution order
/// == topological order of the forward graph).
struct PlanKernelNode {
  int kernel_id = 0;        ///< Backend KernelOp ordinal.
  const char* name = "";    ///< Static kernel name ("matmul", ...).
  std::int64_t elems = 0;   ///< Output elements at the reference shape.
};

/// One autograd-op node recorded from Variable::MakeOp (grad and
/// no-grad mode alike): the op-level view of the same stream, with
/// output shapes at the reference batch.
struct PlanOpNode {
  int rows = 0;
  int cols = 0;
  /// Kernel dispatches observed before this op completed.
  std::int64_t kernels_before = 0;
};

/// Immutable result of recording one reference forward. Shared by all
/// engine workers; each worker replays it against its own PlanArena.
class ComputePlan {
 public:
  std::vector<PlanSlot> slots;        ///< In allocation order.
  std::vector<PlanKernelNode> kernels;
  std::vector<PlanOpNode> ops;

  /// Arena floats needed to hold every slot at its offset (the peak of
  /// the liveness-scanned first-fit assignment, fragmentation
  /// included).
  std::int64_t capacity_floats = 0;
  /// Sum of slot capacities: what the forward would allocate without
  /// buffer reuse. reuse_ratio() = this / capacity_floats.
  std::int64_t slot_floats_total = 0;
  /// Peak simultaneously-live floats during recording (<= capacity).
  std::int64_t peak_live_floats = 0;

  // Reference-batch envelope the plan was recorded at, plus the batch
  // profile replays must match (profile divergence means a different
  // op stream, so such batches run eager instead).
  int max_graphs = 0;
  int max_nodes = 0;
  int max_edges = 0;
  int num_targets = 0;

  /// Weight representation active while recording (fp32 or Q8 blocks);
  /// replay requires the same one.
  WeightDtype weight_dtype = WeightDtype::kF32;

  std::int64_t capacity_bytes() const {
    return capacity_floats * static_cast<std::int64_t>(sizeof(float));
  }
  double reuse_ratio() const {
    return capacity_floats > 0
               ? static_cast<double>(slot_floats_total) /
                     static_cast<double>(capacity_floats)
               : 0.0;
  }

  /// Human-readable one-line summary (slot/kernel/op counts, bytes,
  /// reuse).
  std::string Summary() const;
};

/// Records every tensor allocation, free, kernel dispatch and op built
/// on the calling thread while in scope, running the underlying
/// forward on ordinary heap blocks. Finish() runs the liveness-driven
/// first-fit assignment and returns the plan. Use around exactly one
/// reference forward.
class PlanRecordScope : public TensorAllocSink {
 public:
  PlanRecordScope();
  ~PlanRecordScope() override;
  PlanRecordScope(const PlanRecordScope&) = delete;
  PlanRecordScope& operator=(const PlanRecordScope&) = delete;

  std::shared_ptr<float> Allocate(std::size_t n_floats) override;

  /// Finalizes the plan. Call after the recorded forward's
  /// intermediates have been destroyed (blocks still alive keep their
  /// extents reserved forever — correct, just less reusable).
  ComputePlan Finish();

  /// Hook entry points (via ExecPlanOnKernel / ExecPlanOnOp).
  void OnKernel(int kernel_id, const char* name, std::int64_t elems);
  void OnOp(int rows, int cols);

 private:
  struct State;
  std::shared_ptr<State> state_;
  ScopedAllocSink install_;
};

/// The preallocated backing buffer a worker replays a plan against.
/// Resize() is called under the engine's exclusive weight lock when a
/// plan is (re)compiled; blocks handed out by a replay scope pin the
/// buffer, so a forward that raced an old buffer keeps valid memory.
class PlanArena {
 public:
  PlanArena() = default;

  void Resize(std::int64_t capacity_floats);
  std::int64_t capacity_floats() const { return capacity_floats_; }
  float* base() const { return buffer_.get(); }
  const std::shared_ptr<float>& buffer() const { return buffer_; }

 private:
  std::shared_ptr<float> buffer_;
  std::int64_t capacity_floats_ = 0;
};

/// Per-forward statistics a replay scope accumulates.
struct PlanReplayStats {
  std::int64_t arena_allocs = 0;  ///< Blocks served at static offsets.
  std::int64_t heap_allocs = 0;   ///< Fallback heap blocks (0 in steady state).
  std::int64_t peak_floats = 0;   ///< High-water arena offset touched.
  bool diverged = false;          ///< Op stream left the recorded plan.
};

/// Replays a compiled plan on the calling thread: the k-th tensor
/// allocation in scope is served at plan->slots[k].offset inside
/// `arena` after verifying the structural tag and the size envelope.
/// The first structural mismatch permanently (for this scope) reroutes
/// allocation to the heap — blocks already placed stay valid and the
/// forward completes with identical results, just without the arena.
class PlanReplayScope : public TensorAllocSink {
 public:
  /// `active_dtype` is the weight representation the caller will run
  /// the forward under; a plan recorded under the other one is refused
  /// up front (whole scope diverges to heap) rather than letting the
  /// kernel-stream mismatch surface mid-forward.
  PlanReplayScope(std::shared_ptr<const ComputePlan> plan,
                  const PlanArena* arena,
                  WeightDtype active_dtype = WeightDtype::kF32);
  ~PlanReplayScope() override;
  PlanReplayScope(const PlanReplayScope&) = delete;
  PlanReplayScope& operator=(const PlanReplayScope&) = delete;

  std::shared_ptr<float> Allocate(std::size_t n_floats) override;

  const PlanReplayStats& stats() const { return stats_; }

  /// Hook entry points (via ExecPlanOnKernel / ExecPlanOnOp).
  void OnKernel(int kernel_id);
  void OnOp();

 private:
  std::shared_ptr<const ComputePlan> plan_;
  std::shared_ptr<float> buffer_;  ///< Pins the arena backing buffer.
  std::int64_t buffer_capacity_ = 0;
  std::size_t alloc_cursor_ = 0;
  std::int64_t kernel_cursor_ = 0;
  std::size_t op_cursor_ = 0;
  PlanReplayStats stats_;
  ScopedAllocSink install_;
};

/// RAII suspension of the calling thread's active record/replay scope:
/// kernels dispatched and ops built inside are neither recorded nor
/// verified. The allocation sink is NOT touched — pair with a
/// ScopedAllocSink (or use ScopedDynamicArena below) so allocations
/// stop flowing into the suspended plan too.
class ScopedPlanSuspend {
 public:
  ScopedPlanSuspend();
  ~ScopedPlanSuspend();
  ScopedPlanSuspend(const ScopedPlanSuspend&) = delete;
  ScopedPlanSuspend& operator=(const ScopedPlanSuspend&) = delete;

 private:
  PlanRecordScope* saved_record_;
  PlanReplayScope* saved_replay_;
};

/// The single entry point for an eager region that must not feed the
/// compiled-plan machinery: suspends any active record/replay scope on
/// the calling thread and, with `use_arena`, installs the thread's
/// shared dynamic first-fit Arena as the allocation sink (otherwise a
/// null sink forcing plain heap blocks). Used by the trainer's eval
/// batches, compiled-train batch construction, and the OOD-GNN
/// reweighter's inner optimization — regions whose allocation pattern
/// is data-dependent (so they cannot be planned) or whose results
/// persist across steps (so they must not live at replayed static
/// offsets). The dynamic arena still gives them zero steady-state heap
/// allocations: persistent blocks simply keep their extents, transient
/// ones return to the hole list.
class ScopedDynamicArena {
 public:
  explicit ScopedDynamicArena(bool use_arena);
  ~ScopedDynamicArena() = default;
  ScopedDynamicArena(const ScopedDynamicArena&) = delete;
  ScopedDynamicArena& operator=(const ScopedDynamicArena&) = delete;

  /// The calling thread's shared dynamic arena (created on first use).
  /// Exposed so tests can inspect slab growth.
  static Arena* ThreadArena();

 private:
  ScopedPlanSuspend suspend_;
  ScopedAllocSink install_;
};

// --- instrumentation hooks (called by backend.cc / variable.cc) -----------

/// Backend kernel dispatch: recorded into the active record scope's
/// kernel stream, or checked against the active replay scope's cursor.
/// A single thread-local load when neither is active.
void ExecPlanOnKernel(int kernel_id, const char* name, std::int64_t out_elems);

/// Variable::MakeOp (grad and no-grad mode alike): appends an op node
/// while recording, advances the op cursor (count-verified) while
/// replaying.
void ExecPlanOnOp(int rows, int cols);

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_EXEC_PLAN_H_
