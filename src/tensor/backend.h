#ifndef OODGNN_TENSOR_BACKEND_H_
#define OODGNN_TENSOR_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/tensor/segment_plan.h"
#include "src/tensor/tensor.h"

namespace oodgnn {

/// Execution backend for the numeric kernels in src/tensor/kernels.h.
/// A backend owns exactly one policy decision: how an index range
/// [0, n) is partitioned into chunks and where those chunks run. All
/// arithmetic lives in the kernels, which both backends drive through
/// the same range functions — so every backend produces bitwise
/// identical results (the determinism contract; see DESIGN.md §8).
///
/// The autograd ops (src/tensor/ops.cc) and the non-autograd hot paths
/// (core/rff, core/hsic, core/dependence, train eval) call the active
/// backend via GetBackend(). Adding a backend means subclassing and
/// implementing For(); the dense wrappers below are inherited.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;
  virtual int num_threads() const = 0;

  /// Runs fn(begin, end) over a deterministic partition of [0, n) into
  /// contiguous chunks. Chunk boundaries depend only on n and the
  /// backend configuration, never on timing.
  virtual void For(int n, const std::function<void(int, int)>& fn) const = 0;

  /// Like For(), but runs the whole range inline when `flops` (an
  /// estimate of the total work) is too small to amortize dispatch.
  void ForCost(int n, std::int64_t flops,
               const std::function<void(int, int)>& fn) const;

  /// True when ForCost(n, flops, …) would dispatch to For() rather
  /// than run inline. Exposed so the per-kernel perf counters can
  /// record the serial-vs-parallel split without re-deriving the
  /// dispatch policy.
  bool WouldParallelize(int n, std::int64_t flops) const;

  // --- dense kernel entry points (shape-checked, partitioned via For) ---

  /// out += a[m,k] · b[k,n].
  void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out) const;
  /// out += aᵀ · b (out is [a.cols, b.cols]).
  void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out) const;
  /// out += a · bᵀ (out is [a.rows, b.rows]).
  void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out) const;

  /// y += alpha · x (flat element-wise).
  void Axpy(float alpha, const Tensor& x, Tensor* y) const;
  /// y *= s.
  void ScaleInPlace(float s, Tensor* y) const;
  /// y += s.
  void AddScalarAcc(float s, Tensor* y) const;
  /// out = a ⊙ b.
  void Hadamard(const Tensor& a, const Tensor& b, Tensor* out) const;
  /// y += g ⊙ x.
  void HadamardAcc(const Tensor& g, const Tensor& x, Tensor* y) const;

  /// out[1,n] += column sums of a[m,n].
  void ColumnSumAcc(const Tensor& a, Tensor* out) const;
  /// out[m,1] += row sums of a[m,n].
  void RowSumAcc(const Tensor& a, Tensor* out) const;
  /// out[r,:] += row[0,:] for every row.
  void RowBroadcastAcc(const Tensor& row, Tensor* out) const;
  /// out[r,:] += col[r,0] for every row.
  void ColBroadcastAcc(const Tensor& col, Tensor* out) const;
  /// out += gᵀ.
  void AddTransposedAcc(const Tensor& g, Tensor* out) const;
  /// out[1,n] += column-wise Σ_r x ⊙ y.
  void HadamardColumnSumAcc(const Tensor& x, const Tensor& y,
                            Tensor* out) const;
  /// out[m,1] += row-wise Σ_c x ⊙ y.
  void HadamardRowSumAcc(const Tensor& x, const Tensor& y, Tensor* out) const;
  /// Σ_i a[i]·b[i]. Always runs serially: scalar reductions keep one
  /// fixed association order on every backend (determinism contract).
  float Dot(const Tensor& a, const Tensor& b) const;

  /// Random Fourier feature map: out[r,j] = scale·cos(omega[j]·x +
  /// phase[j]) with x = z[r, source_dim[j]] (plain gather when
  /// linear_only). The per-batch hot loop of the HSIC decorrelation
  /// path (src/core/rff.cc).
  void RffMap(const Tensor& z, const std::vector<int>& source_dim,
              const std::vector<float>& omega,
              const std::vector<float>& phase, bool linear_only, float scale,
              Tensor* out) const;

  /// Row-wise softmax.
  void SoftmaxRows(const Tensor& a, Tensor* out) const;
  /// Softmax backward: out += y ⊙ (g − rowdot(g, y)).
  void SoftmaxRowsBackwardAcc(const Tensor& y, const Tensor& g,
                              Tensor* out) const;

  /// out[r,:] = a[index[r],:].
  void GatherRows(const Tensor& a, const std::vector<int>& index,
                  Tensor* out) const;
  /// out[r,:] += g[index[r],:].
  void GatherRowsAcc(const Tensor& g, const std::vector<int>& index,
                     Tensor* out) const;
  /// out[index[i],:] += a[i,:] (segment sum / scatter-add). Full-scan
  /// fallback for ad-hoc indices: every chunk scans the whole index
  /// vector. Prefer the planned variant when a SegmentPlan exists.
  void ScatterAddRowsAcc(const Tensor& a, const std::vector<int>& index,
                         Tensor* out) const;
  /// Planned scatter-add: out[s,:] += Σ a[plan-ordered rows of s,:].
  /// Parallelizes over destination segments; bitwise identical to
  /// ScatterAddRowsAcc over plan.items, with no full-E scans.
  void ScatterAddRowsPlanned(const Tensor& a, const SegmentPlan& plan,
                             Tensor* out) const;
  /// Fused gather→scatter: out[s,:] += Σ_j h[gather[j],:] over the
  /// plan's segment j-ranges. `gather` must be pre-permuted into plan
  /// order (MessagePlan::src_by_dst / dst_by_src).
  void GatherScatterAcc(const Tensor& h, const std::vector<int>& gather,
                        const SegmentPlan& plan, Tensor* out) const;
  /// Weighted fused gather→scatter: out[s,:] += Σ_j h[gather[j],:] ·
  /// w[plan.perm[j],0] (w is [E,1], indexed by original edge).
  void GatherScatterWeightedAcc(const Tensor& h, const Tensor& w,
                                const std::vector<int>& gather,
                                const SegmentPlan& plan, Tensor* out) const;
  /// out[e,0] += ⟨x[xi[e],:], y[yi[e],:]⟩ per edge.
  void EdgeDotAcc(const Tensor& x, const Tensor& y,
                  const std::vector<int>& xi, const std::vector<int>& yi,
                  Tensor* out) const;
  /// Planned per-segment max/min; same semantics/tie-breaking as
  /// SegmentExtreme but without full-E scans per chunk.
  void SegmentExtremePlanned(const Tensor& a, const SegmentPlan& plan,
                             bool is_max, Tensor* out,
                             std::vector<int>* argrow) const;
  /// Per-segment max/min with argmax rows recorded for the backward.
  void SegmentExtreme(const Tensor& a, const std::vector<int>& segment,
                      bool is_max, Tensor* out,
                      std::vector<int>* argrow) const;
  /// Routes g[s,c] back to the recorded argmax rows.
  void SegmentExtremeBackwardAcc(const Tensor& g,
                                 const std::vector<int>& argrow,
                                 Tensor* out) const;

  /// dst[dst_row_begin + r, :] = src[r, :] for every row of src.
  void CopyRowsTo(const Tensor& src, Tensor* dst, int dst_row_begin) const;
};

/// Runs every range inline on the calling thread.
class SerialBackend : public Backend {
 public:
  const char* name() const override { return "serial"; }
  int num_threads() const override { return 1; }
  void For(int n, const std::function<void(int, int)>& fn) const override;
};

class ThreadPool;

/// Partitions ranges across a fixed worker pool (src/util/thread_pool).
class ParallelBackend : public Backend {
 public:
  explicit ParallelBackend(int num_threads);
  ~ParallelBackend() override;
  const char* name() const override { return "parallel"; }
  int num_threads() const override;
  void For(int n, const std::function<void(int, int)>& fn) const override;

 private:
  std::unique_ptr<ThreadPool> pool_;
};

/// SerialBackend for threads <= 1, ParallelBackend otherwise.
std::unique_ptr<Backend> MakeBackend(int threads);

/// The process-wide backend used by ops and the core hot paths. Lazily
/// initialized from the OODGNN_THREADS environment variable (default:
/// serial). Not safe to swap while compute is in flight.
Backend& GetBackend();

/// Installs `backend` (non-null) as the process-wide backend.
void SetBackend(std::unique_ptr<Backend> backend);

/// Installs `backend` and returns the previous one.
std::unique_ptr<Backend> ExchangeBackend(std::unique_ptr<Backend> backend);

/// Convenience: SetBackend(MakeBackend(threads)).
void SetBackendThreads(int threads);

/// RAII backend swap for tests and benchmarks.
class ScopedBackendThreads {
 public:
  explicit ScopedBackendThreads(int threads)
      : previous_(ExchangeBackend(MakeBackend(threads))) {}
  ~ScopedBackendThreads() { ExchangeBackend(std::move(previous_)); }
  ScopedBackendThreads(const ScopedBackendThreads&) = delete;
  ScopedBackendThreads& operator=(const ScopedBackendThreads&) = delete;

 private:
  std::unique_ptr<Backend> previous_;
};

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_BACKEND_H_
