#include "src/tensor/gradcheck.h"

#include <cmath>

#include "src/util/check.h"

namespace oodgnn {

GradCheckResult CheckGradients(const std::vector<Variable>& leaves,
                               const std::function<Variable()>& scalar_fn,
                               float eps) {
  // Analytic pass.
  for (Variable leaf : leaves) leaf.ZeroGrad();
  Variable loss = scalar_fn();
  OODGNN_CHECK_EQ(loss.value().size(), 1);
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (const Variable& leaf : leaves) analytic.push_back(leaf.grad());

  GradCheckResult result;
  for (size_t l = 0; l < leaves.size(); ++l) {
    Variable leaf = leaves[l];
    for (int i = 0; i < leaf.value().size(); ++i) {
      const float original = leaf.value()[i];
      leaf.mutable_value()[i] = original + eps;
      const double up = scalar_fn().value()[0];
      leaf.mutable_value()[i] = original - eps;
      const double down = scalar_fn().value()[0];
      leaf.mutable_value()[i] = original;
      const double numeric = (up - down) / (2.0 * eps);
      const double err = std::fabs(numeric - analytic[l][i]) /
                         std::max(1.0, std::fabs(numeric));
      if (err > result.max_relative_error) {
        result.max_relative_error = err;
        result.worst_leaf = static_cast<int>(l);
        result.worst_element = i;
      }
    }
  }
  return result;
}

}  // namespace oodgnn
