#include "src/tensor/variable.h"

#include <unordered_set>

#include "src/tensor/exec_plan.h"
#include "src/util/check.h"

namespace oodgnn {

namespace {

/// Tape construction is per-thread state: inference workers flip their
/// own flag without affecting a concurrently training thread.
thread_local bool tls_grad_enabled = true;

}  // namespace

bool GradMode::Enabled() { return tls_grad_enabled; }

void GradMode::SetEnabled(bool enabled) { tls_grad_enabled = enabled; }

NoGradGuard::NoGradGuard() : previous_(tls_grad_enabled) {
  tls_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { tls_grad_enabled = previous_; }

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<VariableNode>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  OODGNN_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  OODGNN_CHECK(defined());
  return node_->value;
}

const Tensor& Variable::grad() const {
  OODGNN_CHECK(defined());
  return node_->grad;
}

Tensor& Variable::mutable_grad() {
  OODGNN_CHECK(defined());
  return node_->grad;
}

bool Variable::requires_grad() const {
  OODGNN_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  OODGNN_CHECK(defined());
  if (!node_->grad.SameShape(node_->value)) {
    node_->grad = Tensor(node_->value.rows(), node_->value.cols());
  } else {
    node_->grad.Fill(0.f);
  }
}

namespace {

/// Post-order DFS collecting the graph reachable through `parents`;
/// `order` ends up topologically sorted (parents before children).
void TopoSort(const std::shared_ptr<VariableNode>& node,
              std::unordered_set<VariableNode*>* visited,
              std::vector<VariableNode*>* order) {
  if (!node || visited->count(node.get())) return;
  visited->insert(node.get());
  for (const auto& parent : node->parents) TopoSort(parent, visited, order);
  order->push_back(node.get());
}

}  // namespace

void Variable::Backward() {
  OODGNN_CHECK(defined());
  OODGNN_CHECK_EQ(value().size(), 1)
      << "Backward() without a seed requires a scalar";
  Tensor seed(1, 1, 1.f);
  Backward(seed);
}

void Variable::Backward(const Tensor& seed) {
  BackwardImpl(seed, /*release_tape=*/false);
}

void Variable::BackwardAndReleaseTape() {
  OODGNN_CHECK(defined());
  OODGNN_CHECK_EQ(value().size(), 1)
      << "BackwardAndReleaseTape() requires a scalar";
  Tensor seed(1, 1, 1.f);
  BackwardImpl(seed, /*release_tape=*/true);
}

void Variable::BackwardImpl(const Tensor& seed, bool release_tape) {
  OODGNN_CHECK(defined());
  OODGNN_CHECK(seed.SameShape(value()));

  std::unordered_set<VariableNode*> visited;
  std::vector<VariableNode*> order;
  TopoSort(node_, &visited, &order);

  // Zero interior grads; leaf grads accumulate across Backward() calls
  // until the optimizer clears them, matching the usual autograd
  // convention — but here we also accumulate interior grads freshly per
  // call, so everything reachable is (re)allocated and zeroed except
  // pre-existing leaf grads.
  for (VariableNode* node : order) {
    if (!node->grad.SameShape(node->value)) {
      node->grad = Tensor(node->value.rows(), node->value.cols());
    } else if (node->backward) {
      node->grad.Fill(0.f);  // Interior node: recomputed from scratch.
    }
  }
  node_->grad.Add(seed);

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VariableNode* node = *it;
    if (node->backward) {
      node->backward(*node);
      if (release_tape) {
        // Reverse-topo order guarantees every reader of this node's
        // value and grad (its children's closures and its own, just
        // run) has already executed; leaves and constants carry no
        // closure and are never released. Only the buffers die — the
        // VariableNode itself stays valid for the raw pointers in
        // `order` and for the shared_ptr graph.
        node->grad = Tensor();
        if (node != node_.get()) node->value = Tensor();
      }
    }
  }
}

Variable Variable::Detach() const {
  OODGNN_CHECK(defined());
  return Variable(node_->value);
}

Variable Variable::MakeOp(
    Tensor value, std::vector<std::shared_ptr<VariableNode>> parents,
    std::function<void(const VariableNode&)> backward) {
  Variable out(std::move(value));
  // Compiled-plan hook, grad and no-grad mode alike: adds an op node
  // while recording, advances the count-verified op cursor while
  // replaying (no-op outside a plan scope).
  ExecPlanOnOp(out.node_->value.rows(), out.node_->value.cols());
  // Grad-free mode: the result carries only its forward value. Parents
  // and the backward closure are dropped before they can pin the graph,
  // so eval/serving passes allocate nothing beyond forward tensors.
  if (!tls_grad_enabled) return out;
  bool any_grad = false;
  for (const auto& parent : parents) {
    OODGNN_CHECK(parent != nullptr);
    if (parent->requires_grad) any_grad = true;
  }
  if (any_grad) {
    out.node_->requires_grad = true;
    out.node_->parents = std::move(parents);
    out.node_->backward = std::move(backward);
  }
  return out;
}

}  // namespace oodgnn
