#include "src/tensor/backend.h"

#include <array>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/kernels.h"
#include "src/tensor/quant.h"
#include "src/tensor/simd.h"
#include "src/util/check.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

/// Below this much estimated work, dispatching to the pool costs more
/// than it saves; run inline instead. The cutoff does not affect
/// results (any partition of a range is bitwise equivalent).
constexpr std::int64_t kMinFlopsToParallelize = 32 * 1024;

std::mutex g_backend_mu;
std::unique_ptr<Backend> g_backend;  // guarded by g_backend_mu

int ThreadsFromEnv() {
  const char* env = std::getenv("OODGNN_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  return std::atoi(env);
}

// --- per-kernel perf counters (the ggml perf_runs/perf_time_us idea) ---
//
// Every dense entry point below opens a KernelScope naming its op.
// While profiling is off (the common case) the scope is a single
// relaxed atomic load; while it is on, each call records dispatch
// count, output elements processed, wall microseconds, and whether the
// range went to the worker pool — into the global metrics registry
// under "kernel/<op>/{calls,elems,us,parallel_calls}".

enum class KernelOp : int {
  kMatMul = 0,
  kMatMulTransA,
  kMatMulTransB,
  kAxpy,
  kScale,
  kAddScalar,
  kHadamard,
  kHadamardAcc,
  kColumnSum,
  kRowSum,
  kRowBroadcast,
  kColBroadcast,
  kAddTransposed,
  kHadamardColumnSum,
  kHadamardRowSum,
  kDot,
  kSoftmaxRows,
  kSoftmaxRowsBackward,
  kGatherRows,
  kGatherRowsAcc,
  kScatterAddRows,
  kScatterPlanned,
  kGatherScatter,
  kGatherScatterWeighted,
  kEdgeDot,
  kSegmentExtreme,
  kSegmentExtremePlanned,
  kSegmentExtremeBackward,
  kCopyRows,
  kMatMulQuant,
  kRffMap,
  kNumOps,
};

constexpr int kNumKernelOps = static_cast<int>(KernelOp::kNumOps);

const char* KernelOpName(KernelOp op) {
  switch (op) {
    case KernelOp::kMatMul:
      return "matmul";
    case KernelOp::kMatMulTransA:
      return "matmul_ta";
    case KernelOp::kMatMulTransB:
      return "matmul_tb";
    case KernelOp::kAxpy:
      return "axpy";
    case KernelOp::kScale:
      return "scale";
    case KernelOp::kAddScalar:
      return "add_scalar";
    case KernelOp::kHadamard:
      return "hadamard";
    case KernelOp::kHadamardAcc:
      return "hadamard_acc";
    case KernelOp::kColumnSum:
      return "column_sum";
    case KernelOp::kRowSum:
      return "row_sum";
    case KernelOp::kRowBroadcast:
      return "row_broadcast";
    case KernelOp::kColBroadcast:
      return "col_broadcast";
    case KernelOp::kAddTransposed:
      return "add_transposed";
    case KernelOp::kHadamardColumnSum:
      return "hadamard_column_sum";
    case KernelOp::kHadamardRowSum:
      return "hadamard_row_sum";
    case KernelOp::kDot:
      return "dot";
    case KernelOp::kSoftmaxRows:
      return "softmax_rows";
    case KernelOp::kSoftmaxRowsBackward:
      return "softmax_rows_backward";
    case KernelOp::kGatherRows:
      return "gather_rows";
    case KernelOp::kGatherRowsAcc:
      return "gather_rows_acc";
    case KernelOp::kScatterAddRows:
      return "scatter_add_rows";
    case KernelOp::kScatterPlanned:
      return "scatter_planned";
    case KernelOp::kGatherScatter:
      return "gather_scatter";
    case KernelOp::kGatherScatterWeighted:
      return "gather_scatter_weighted";
    case KernelOp::kEdgeDot:
      return "edge_dot";
    case KernelOp::kSegmentExtreme:
      return "segment_extreme";
    case KernelOp::kSegmentExtremePlanned:
      return "segment_extreme_planned";
    case KernelOp::kSegmentExtremeBackward:
      return "segment_extreme_backward";
    case KernelOp::kCopyRows:
      return "copy_rows";
    case KernelOp::kMatMulQuant:
      return "matmul_quant";
    case KernelOp::kRffMap:
      return "rff_map";
    case KernelOp::kNumOps:
      break;
  }
  return "?";
}

struct OpCounters {
  obs::Counter* calls;
  obs::Counter* elems;
  obs::Counter* us;
  obs::Counter* parallel_calls;
};

/// Counters for `op`, registered on first instrumented call — so the
/// registry stays empty while profiling is disabled.
OpCounters& CountersFor(KernelOp op) {
  static std::array<OpCounters, kNumKernelOps>* table = [] {
    auto* t = new std::array<OpCounters, kNumKernelOps>();
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    for (int i = 0; i < kNumKernelOps; ++i) {
      const std::string prefix =
          std::string("kernel/") + KernelOpName(static_cast<KernelOp>(i));
      (*t)[static_cast<size_t>(i)] = {
          &registry.GetCounter(prefix + "/calls"),
          &registry.GetCounter(prefix + "/elems"),
          &registry.GetCounter(prefix + "/us"),
          &registry.GetCounter(prefix + "/parallel_calls"),
      };
    }
    return t;
  }();
  return (*table)[static_cast<size_t>(static_cast<int>(op))];
}

class KernelScope {
 public:
  KernelScope(KernelOp op, std::int64_t elems, bool parallel)
      : active_(obs::ProfilingEnabled()) {
    // Compiled-plan hook: records the dispatch while a plan is being
    // traced, verifies the stream cursor while one is replayed, and is
    // a single thread-local load otherwise.
    ExecPlanOnKernel(static_cast<int>(op), KernelOpName(op), elems);
    if (!active_) return;
    op_ = op;
    elems_ = elems;
    parallel_ = parallel;
    start_us_ = NowMicros();
  }

  ~KernelScope() {
    if (!active_) return;
    const OpCounters& counters = CountersFor(op_);
    counters.calls->Increment();
    counters.elems->Add(elems_);
    counters.us->Add(NowMicros() - start_us_);
    if (parallel_) counters.parallel_calls->Increment();
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  bool active_;
  KernelOp op_ = KernelOp::kMatMul;
  std::int64_t elems_ = 0;
  bool parallel_ = false;
  std::int64_t start_us_ = 0;
};

/// SIMD dispatch split across the vector-capable entry points:
/// "kernel/simd/vector_calls" when the vector mirror ran,
/// "kernel/simd/scalar_calls" when a capable op fell back to the
/// scalar oracle (simd::Enabled() false). Profiling-gated like
/// KernelScope so the common case stays one relaxed atomic load.
void RecordSimdDispatch(bool vector) {
  if (!obs::ProfilingEnabled()) return;
  static obs::Counter* vector_calls =
      &obs::MetricsRegistry::Global().GetCounter("kernel/simd/vector_calls");
  static obs::Counter* scalar_calls =
      &obs::MetricsRegistry::Global().GetCounter("kernel/simd/scalar_calls");
  (vector ? vector_calls : scalar_calls)->Increment();
}

}  // namespace

bool Backend::WouldParallelize(int n, std::int64_t flops) const {
  return n > 0 && num_threads() != 1 && flops >= kMinFlopsToParallelize;
}

void Backend::ForCost(int n, std::int64_t flops,
                      const std::function<void(int, int)>& fn) const {
  if (n <= 0) return;
  if (!WouldParallelize(n, flops)) {
    fn(0, n);
    return;
  }
  For(n, fn);
}

void Backend::MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out) const {
  OODGNN_CHECK_EQ(a.cols(), b.rows());
  OODGNN_CHECK(out->rows() == a.rows() && out->cols() == b.cols());
  const std::int64_t flops =
      2ll * a.rows() * a.cols() * b.cols();
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  // Quantized-weight routing: when a serving scope registered b's
  // storage, consume the int8 block image instead of the fp32 tensor.
  // Training threads never install a scope, so this is one
  // thread-local null check for them.
  if (const QuantizedTensor* qw = ActiveQuantizedWeightFor(b.data())) {
    OODGNN_CHECK(qw->rows == b.rows() && qw->cols == b.cols());
    KernelScope scope(KernelOp::kMatMulQuant, out->size(),
                      WouldParallelize(out->rows(), flops));
    ForCost(out->rows(), flops, [&](int r0, int r1) {
      if (use_simd) {
        simd::MatMulQuantAcc(a, *qw, out, r0, r1);
      } else {
        kernels::MatMulQuantAcc(a, *qw, out, r0, r1);
      }
    });
    return;
  }
  KernelScope scope(KernelOp::kMatMul, out->size(),
                    WouldParallelize(out->rows(), flops));
  ForCost(out->rows(), flops, [&](int r0, int r1) {
    if (use_simd) {
      simd::MatMulAcc(a, b, out, r0, r1);
    } else {
      kernels::MatMulAcc(a, b, out, r0, r1);
    }
  });
}

void Backend::MatMulTransAAcc(const Tensor& a, const Tensor& b,
                              Tensor* out) const {
  OODGNN_CHECK_EQ(a.rows(), b.rows());
  OODGNN_CHECK(out->rows() == a.cols() && out->cols() == b.cols());
  const std::int64_t flops =
      2ll * a.rows() * a.cols() * b.cols();
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kMatMulTransA, out->size(),
                    WouldParallelize(out->rows(), flops));
  ForCost(out->rows(), flops, [&](int r0, int r1) {
    if (use_simd) {
      simd::MatMulTransAAcc(a, b, out, r0, r1);
    } else {
      kernels::MatMulTransAAcc(a, b, out, r0, r1);
    }
  });
}

void Backend::MatMulTransBAcc(const Tensor& a, const Tensor& b,
                              Tensor* out) const {
  OODGNN_CHECK_EQ(a.cols(), b.cols());
  OODGNN_CHECK(out->rows() == a.rows() && out->cols() == b.rows());
  const std::int64_t flops =
      2ll * a.rows() * a.cols() * b.rows();
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kMatMulTransB, out->size(),
                    WouldParallelize(out->rows(), flops));
  ForCost(out->rows(), flops, [&](int r0, int r1) {
    if (use_simd) {
      simd::MatMulTransBAcc(a, b, out, r0, r1);
    } else {
      kernels::MatMulTransBAcc(a, b, out, r0, r1);
    }
  });
}

void Backend::Axpy(float alpha, const Tensor& x, Tensor* y) const {
  OODGNN_CHECK(x.SameShape(*y));
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kAxpy, y->size(),
                    WouldParallelize(y->size(), y->size()));
  ForCost(y->size(), y->size(), [&](int i0, int i1) {
    if (use_simd) {
      simd::Axpy(alpha, x, y, i0, i1);
    } else {
      kernels::Axpy(alpha, x, y, i0, i1);
    }
  });
}

void Backend::ScaleInPlace(float s, Tensor* y) const {
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kScale, y->size(),
                    WouldParallelize(y->size(), y->size()));
  ForCost(y->size(), y->size(), [&](int i0, int i1) {
    if (use_simd) {
      simd::Scale(y, s, i0, i1);
    } else {
      kernels::Scale(y, s, i0, i1);
    }
  });
}

void Backend::AddScalarAcc(float s, Tensor* y) const {
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kAddScalar, y->size(),
                    WouldParallelize(y->size(), y->size()));
  ForCost(y->size(), y->size(), [&](int i0, int i1) {
    if (use_simd) {
      simd::AddScalar(y, s, i0, i1);
    } else {
      kernels::AddScalar(y, s, i0, i1);
    }
  });
}

void Backend::Hadamard(const Tensor& a, const Tensor& b, Tensor* out) const {
  OODGNN_CHECK(a.SameShape(b) && a.SameShape(*out));
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kHadamard, out->size(),
                    WouldParallelize(out->size(), out->size()));
  ForCost(out->size(), out->size(), [&](int i0, int i1) {
    if (use_simd) {
      simd::Hadamard(a, b, out, i0, i1);
    } else {
      kernels::Hadamard(a, b, out, i0, i1);
    }
  });
}

void Backend::HadamardAcc(const Tensor& g, const Tensor& x, Tensor* y) const {
  OODGNN_CHECK(g.SameShape(x) && g.SameShape(*y));
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kHadamardAcc, y->size(),
                    WouldParallelize(y->size(), y->size()));
  ForCost(y->size(), y->size(), [&](int i0, int i1) {
    if (use_simd) {
      simd::HadamardAcc(g, x, y, i0, i1);
    } else {
      kernels::HadamardAcc(g, x, y, i0, i1);
    }
  });
}

void Backend::ColumnSumAcc(const Tensor& a, Tensor* out) const {
  OODGNN_CHECK(out->rows() == 1 && out->cols() == a.cols());
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kColumnSum, a.size(),
                    WouldParallelize(a.cols(), a.size()));
  ForCost(a.cols(), a.size(), [&](int c0, int c1) {
    if (use_simd) {
      simd::ColumnSumAcc(a, out, c0, c1);
    } else {
      kernels::ColumnSumAcc(a, out, c0, c1);
    }
  });
}

void Backend::RowSumAcc(const Tensor& a, Tensor* out) const {
  OODGNN_CHECK(out->rows() == a.rows() && out->cols() == 1);
  KernelScope scope(KernelOp::kRowSum, a.size(),
                    WouldParallelize(a.rows(), a.size()));
  ForCost(a.rows(), a.size(), [&](int r0, int r1) {
    kernels::RowSumAcc(a, out, r0, r1);
  });
}

void Backend::RowBroadcastAcc(const Tensor& row, Tensor* out) const {
  OODGNN_CHECK(row.rows() == 1 && row.cols() == out->cols());
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kRowBroadcast, out->size(),
                    WouldParallelize(out->rows(), out->size()));
  ForCost(out->rows(), out->size(), [&](int r0, int r1) {
    if (use_simd) {
      simd::RowBroadcastAcc(row, out, r0, r1);
    } else {
      kernels::RowBroadcastAcc(row, out, r0, r1);
    }
  });
}

void Backend::ColBroadcastAcc(const Tensor& col, Tensor* out) const {
  OODGNN_CHECK(col.rows() == out->rows() && col.cols() == 1);
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kColBroadcast, out->size(),
                    WouldParallelize(out->rows(), out->size()));
  ForCost(out->rows(), out->size(), [&](int r0, int r1) {
    if (use_simd) {
      simd::ColBroadcastAcc(col, out, r0, r1);
    } else {
      kernels::ColBroadcastAcc(col, out, r0, r1);
    }
  });
}

void Backend::AddTransposedAcc(const Tensor& g, Tensor* out) const {
  OODGNN_CHECK(g.rows() == out->cols() && g.cols() == out->rows());
  KernelScope scope(KernelOp::kAddTransposed, out->size(),
                    WouldParallelize(out->rows(), out->size()));
  ForCost(out->rows(), out->size(), [&](int r0, int r1) {
    kernels::AddTransposedAcc(g, out, r0, r1);
  });
}

void Backend::HadamardColumnSumAcc(const Tensor& x, const Tensor& y,
                                   Tensor* out) const {
  OODGNN_CHECK(x.SameShape(y));
  OODGNN_CHECK(out->rows() == 1 && out->cols() == x.cols());
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kHadamardColumnSum, x.size(),
                    WouldParallelize(x.cols(), 2ll * x.size()));
  ForCost(x.cols(), 2ll * x.size(), [&](int c0, int c1) {
    if (use_simd) {
      simd::HadamardColumnSumAcc(x, y, out, c0, c1);
    } else {
      kernels::HadamardColumnSumAcc(x, y, out, c0, c1);
    }
  });
}

void Backend::HadamardRowSumAcc(const Tensor& x, const Tensor& y,
                                Tensor* out) const {
  OODGNN_CHECK(x.SameShape(y));
  OODGNN_CHECK(out->rows() == x.rows() && out->cols() == 1);
  KernelScope scope(KernelOp::kHadamardRowSum, x.size(),
                    WouldParallelize(x.rows(), 2ll * x.size()));
  ForCost(x.rows(), 2ll * x.size(), [&](int r0, int r1) {
    kernels::HadamardRowSumAcc(x, y, out, r0, r1);
  });
}

float Backend::Dot(const Tensor& a, const Tensor& b) const {
  OODGNN_CHECK(a.SameShape(b));
  KernelScope scope(KernelOp::kDot, a.size(), /*parallel=*/false);
  return kernels::Dot(a, b, 0, a.size());
}

void Backend::RffMap(const Tensor& z, const std::vector<int>& source_dim,
                     const std::vector<float>& omega,
                     const std::vector<float>& phase, bool linear_only,
                     float scale, Tensor* out) const {
  OODGNN_CHECK_EQ(out->rows(), z.rows());
  OODGNN_CHECK_EQ(out->cols(), static_cast<int>(source_dim.size()));
  OODGNN_CHECK_EQ(source_dim.size(), omega.size());
  OODGNN_CHECK_EQ(source_dim.size(), phase.size());
  const std::int64_t flops = 8ll * out->rows() * out->cols();
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kRffMap, out->size(),
                    WouldParallelize(out->rows(), flops));
  ForCost(out->rows(), flops, [&](int r0, int r1) {
    if (use_simd) {
      simd::RffMap(z, source_dim, omega, phase, linear_only, scale, out, r0,
                   r1);
    } else {
      kernels::RffMap(z, source_dim, omega, phase, linear_only, scale, out,
                      r0, r1);
    }
  });
}

void Backend::SoftmaxRows(const Tensor& a, Tensor* out) const {
  OODGNN_CHECK(a.SameShape(*out));
  KernelScope scope(KernelOp::kSoftmaxRows, out->size(),
                    WouldParallelize(a.rows(), 4ll * a.size()));
  ForCost(a.rows(), 4ll * a.size(), [&](int r0, int r1) {
    kernels::SoftmaxRows(a, out, r0, r1);
  });
}

void Backend::SoftmaxRowsBackwardAcc(const Tensor& y, const Tensor& g,
                                     Tensor* out) const {
  OODGNN_CHECK(y.SameShape(g) && y.SameShape(*out));
  KernelScope scope(KernelOp::kSoftmaxRowsBackward, out->size(),
                    WouldParallelize(y.rows(), 4ll * y.size()));
  ForCost(y.rows(), 4ll * y.size(), [&](int r0, int r1) {
    kernels::SoftmaxRowsBackwardAcc(y, g, out, r0, r1);
  });
}

void Backend::GatherRows(const Tensor& a, const std::vector<int>& index,
                         Tensor* out) const {
  OODGNN_CHECK(out->rows() == static_cast<int>(index.size()) &&
               out->cols() == a.cols());
  KernelScope scope(KernelOp::kGatherRows, out->size(),
                    WouldParallelize(out->rows(), out->size()));
  ForCost(out->rows(), out->size(), [&](int r0, int r1) {
    kernels::GatherRows(a, index, out, r0, r1);
  });
}

void Backend::GatherRowsAcc(const Tensor& g, const std::vector<int>& index,
                            Tensor* out) const {
  OODGNN_CHECK(out->rows() == static_cast<int>(index.size()) &&
               out->cols() == g.cols());
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kGatherRowsAcc, out->size(),
                    WouldParallelize(out->rows(), out->size()));
  ForCost(out->rows(), out->size(), [&](int r0, int r1) {
    if (use_simd) {
      simd::GatherRowsAcc(g, index, out, r0, r1);
    } else {
      kernels::GatherRowsAcc(g, index, out, r0, r1);
    }
  });
}

void Backend::ScatterAddRowsAcc(const Tensor& a, const std::vector<int>& index,
                                Tensor* out) const {
  OODGNN_CHECK_EQ(a.rows(), static_cast<int>(index.size()));
  OODGNN_CHECK_EQ(a.cols(), out->cols());
  // Each chunk scans the whole index vector, so only large scatters pay
  // off (the scan itself costs a.rows per chunk).
  KernelScope scope(
      KernelOp::kScatterAddRows, a.size(),
      WouldParallelize(out->rows(), static_cast<std::int64_t>(a.size())));
  ForCost(out->rows(), static_cast<std::int64_t>(a.size()),
          [&](int r0, int r1) {
            kernels::ScatterAddRowsAcc(a, index, out, r0, r1);
          });
}

void Backend::ScatterAddRowsPlanned(const Tensor& a, const SegmentPlan& plan,
                                    Tensor* out) const {
  OODGNN_CHECK_EQ(a.rows(), plan.num_items());
  OODGNN_CHECK_EQ(a.cols(), out->cols());
  OODGNN_CHECK_EQ(out->rows(), plan.num_segments);
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(
      KernelOp::kScatterPlanned, a.size(),
      WouldParallelize(plan.num_segments, static_cast<std::int64_t>(a.size())));
  ForCost(plan.num_segments, static_cast<std::int64_t>(a.size()),
          [&](int s0, int s1) {
            if (use_simd) {
              simd::ScatterAddRowsPlanned(a, plan.perm, plan.offsets, out, s0,
                                          s1);
            } else {
              kernels::ScatterAddRowsPlanned(a, plan.perm, plan.offsets, out,
                                             s0, s1);
            }
          });
}

void Backend::GatherScatterAcc(const Tensor& h, const std::vector<int>& gather,
                               const SegmentPlan& plan, Tensor* out) const {
  OODGNN_CHECK_EQ(static_cast<int>(gather.size()), plan.num_items());
  OODGNN_CHECK_EQ(h.cols(), out->cols());
  OODGNN_CHECK_EQ(out->rows(), plan.num_segments);
  const std::int64_t flops =
      static_cast<std::int64_t>(plan.num_items()) * h.cols();
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kGatherScatter, flops,
                    WouldParallelize(plan.num_segments, flops));
  ForCost(plan.num_segments, flops, [&](int s0, int s1) {
    if (use_simd) {
      simd::GatherScatterAcc(h, gather, plan.offsets, out, s0, s1);
    } else {
      kernels::GatherScatterAcc(h, gather, plan.offsets, out, s0, s1);
    }
  });
}

void Backend::GatherScatterWeightedAcc(const Tensor& h, const Tensor& w,
                                       const std::vector<int>& gather,
                                       const SegmentPlan& plan,
                                       Tensor* out) const {
  OODGNN_CHECK_EQ(static_cast<int>(gather.size()), plan.num_items());
  OODGNN_CHECK_EQ(w.rows(), plan.num_items());
  OODGNN_CHECK_EQ(w.cols(), 1);
  OODGNN_CHECK_EQ(h.cols(), out->cols());
  OODGNN_CHECK_EQ(out->rows(), plan.num_segments);
  const std::int64_t flops =
      2ll * plan.num_items() * h.cols();
  const bool use_simd = simd::Enabled();
  RecordSimdDispatch(use_simd);
  KernelScope scope(KernelOp::kGatherScatterWeighted, flops,
                    WouldParallelize(plan.num_segments, flops));
  ForCost(plan.num_segments, flops, [&](int s0, int s1) {
    if (use_simd) {
      simd::GatherScatterWeightedAcc(h, w, plan.perm, gather, plan.offsets,
                                     out, s0, s1);
    } else {
      kernels::GatherScatterWeightedAcc(h, w, plan.perm, gather, plan.offsets,
                                        out, s0, s1);
    }
  });
}

void Backend::EdgeDotAcc(const Tensor& x, const Tensor& y,
                         const std::vector<int>& xi,
                         const std::vector<int>& yi, Tensor* out) const {
  OODGNN_CHECK_EQ(xi.size(), yi.size());
  OODGNN_CHECK_EQ(x.cols(), y.cols());
  OODGNN_CHECK_EQ(out->rows(), static_cast<int>(xi.size()));
  OODGNN_CHECK_EQ(out->cols(), 1);
  const int edges = static_cast<int>(xi.size());
  const std::int64_t flops = 2ll * edges * x.cols();
  KernelScope scope(KernelOp::kEdgeDot, flops,
                    WouldParallelize(edges, flops));
  ForCost(edges, flops, [&](int e0, int e1) {
    kernels::EdgeDotAcc(x, y, xi, yi, out, e0, e1);
  });
}

void Backend::SegmentExtremePlanned(const Tensor& a, const SegmentPlan& plan,
                                    bool is_max, Tensor* out,
                                    std::vector<int>* argrow) const {
  OODGNN_CHECK_EQ(a.rows(), plan.num_items());
  OODGNN_CHECK_EQ(a.cols(), out->cols());
  OODGNN_CHECK_EQ(out->rows(), plan.num_segments);
  OODGNN_CHECK_EQ(static_cast<int>(argrow->size()), out->size());
  KernelScope scope(
      KernelOp::kSegmentExtremePlanned, a.size(),
      WouldParallelize(plan.num_segments, static_cast<std::int64_t>(a.size())));
  ForCost(plan.num_segments, static_cast<std::int64_t>(a.size()),
          [&](int s0, int s1) {
            kernels::SegmentExtremePlanned(a, plan.perm, plan.offsets, is_max,
                                           out, argrow, s0, s1);
          });
}

void Backend::SegmentExtreme(const Tensor& a, const std::vector<int>& segment,
                             bool is_max, Tensor* out,
                             std::vector<int>* argrow) const {
  OODGNN_CHECK_EQ(a.rows(), static_cast<int>(segment.size()));
  OODGNN_CHECK_EQ(a.cols(), out->cols());
  OODGNN_CHECK_EQ(static_cast<int>(argrow->size()), out->size());
  KernelScope scope(
      KernelOp::kSegmentExtreme, a.size(),
      WouldParallelize(out->rows(), static_cast<std::int64_t>(a.size())));
  ForCost(out->rows(), static_cast<std::int64_t>(a.size()),
          [&](int s0, int s1) {
            kernels::SegmentExtreme(a, segment, is_max, out, argrow, s0, s1);
          });
}

void Backend::SegmentExtremeBackwardAcc(const Tensor& g,
                                        const std::vector<int>& argrow,
                                        Tensor* out) const {
  OODGNN_CHECK_EQ(static_cast<int>(argrow.size()), g.size());
  KernelScope scope(
      KernelOp::kSegmentExtremeBackward, g.size(),
      WouldParallelize(g.rows(), static_cast<std::int64_t>(g.size())));
  ForCost(g.rows(), static_cast<std::int64_t>(g.size()),
          [&](int s0, int s1) {
            kernels::SegmentExtremeBackwardAcc(g, argrow, out, s0, s1);
          });
}

void Backend::CopyRowsTo(const Tensor& src, Tensor* dst,
                         int dst_row_begin) const {
  OODGNN_CHECK_EQ(src.cols(), dst->cols());
  OODGNN_CHECK_LE(dst_row_begin + src.rows(), dst->rows());
  KernelScope scope(KernelOp::kCopyRows, src.size(),
                    WouldParallelize(src.rows(), src.size()));
  ForCost(src.rows(), src.size(), [&](int r0, int r1) {
    kernels::CopyRowsTo(src, dst, dst_row_begin, r0, r1);
  });
}

void SerialBackend::For(int n, const std::function<void(int, int)>& fn) const {
  if (n > 0) fn(0, n);
}

ParallelBackend::ParallelBackend(int num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)) {}

ParallelBackend::~ParallelBackend() = default;

int ParallelBackend::num_threads() const { return pool_->num_threads(); }

void ParallelBackend::For(int n,
                          const std::function<void(int, int)>& fn) const {
  pool_->ParallelFor(n, fn);
}

std::unique_ptr<Backend> MakeBackend(int threads) {
  if (threads <= 1) return std::make_unique<SerialBackend>();
  return std::make_unique<ParallelBackend>(threads);
}

Backend& GetBackend() {
  std::lock_guard<std::mutex> lock(g_backend_mu);
  if (!g_backend) g_backend = MakeBackend(ThreadsFromEnv());
  return *g_backend;
}

void SetBackend(std::unique_ptr<Backend> backend) {
  OODGNN_CHECK(backend != nullptr);
  std::lock_guard<std::mutex> lock(g_backend_mu);
  g_backend = std::move(backend);
}

std::unique_ptr<Backend> ExchangeBackend(std::unique_ptr<Backend> backend) {
  OODGNN_CHECK(backend != nullptr);
  std::lock_guard<std::mutex> lock(g_backend_mu);
  std::unique_ptr<Backend> previous = std::move(g_backend);
  g_backend = std::move(backend);
  if (!previous) previous = MakeBackend(ThreadsFromEnv());
  return previous;
}

void SetBackendThreads(int threads) { SetBackend(MakeBackend(threads)); }

}  // namespace oodgnn
