#ifndef OODGNN_TENSOR_TENSOR_H_
#define OODGNN_TENSOR_TENSOR_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace oodgnn {

class Rng;

/// Dense row-major float32 matrix. Vectors are represented as N×1 or
/// 1×N matrices. This is the plain value type; automatic
/// differentiation lives in `Variable` (src/tensor/variable.h), which
/// wraps Tensors in a backward graph.
///
/// Storage is a 64-byte-aligned block obtained through
/// AllocateTensorStorage (src/tensor/arena.h), so a thread-local
/// execution scope — the dynamic eval arena or a compiled-plan
/// record/replay scope — can transparently take over where
/// intermediates live. Tensor keeps strict value semantics regardless:
/// copies are deep, moves leave the source empty (0×0).
class Tensor {
 public:
  /// Empty 0×0 tensor (no storage).
  Tensor() = default;

  /// Zero-initialized rows×cols matrix.
  Tensor(int rows, int cols);

  /// rows×cols matrix filled with `fill`.
  Tensor(int rows, int cols, float fill);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  /// Builds a tensor from explicit data (row-major); data.size() must
  /// equal rows*cols.
  static Tensor FromData(int rows, int cols, std::vector<float> data);

  /// 1×n row vector from values.
  static Tensor RowVector(std::vector<float> values);

  /// n×1 column vector from values.
  static Tensor ColVector(std::vector<float> values);

  /// n×n identity matrix.
  static Tensor Identity(int n);

  /// rows×cols with i.i.d. N(mean, stddev) entries.
  static Tensor RandomNormal(int rows, int cols, Rng* rng, float mean = 0.f,
                             float stddev = 1.f);

  /// rows×cols with i.i.d. U[lo, hi) entries.
  static Tensor RandomUniform(int rows, int cols, Rng* rng, float lo,
                              float hi);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  /// Element access; bounds-checked in debug builds.
  float& at(int r, int c);
  float at(int r, int c) const;

  /// Flat (row-major) element access.
  float& operator[](int i) { return storage_.get()[static_cast<size_t>(i)]; }
  float operator[](int i) const {
    return storage_.get()[static_cast<size_t>(i)];
  }

  float* data() { return storage_.get(); }
  const float* data() const { return storage_.get(); }

  /// Pointer to the start of row r.
  float* row(int r) { return storage_.get() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return storage_.get() + static_cast<size_t>(r) * cols_;
  }

  /// True if this tensor has the same shape as `other`.
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sets every element to `value`.
  void Fill(float value);

  /// In-place element-wise accumulate: this += other. Shapes must match.
  void Add(const Tensor& other);

  /// In-place scale: this *= s.
  void Scale(float s);

  /// Sum of all elements.
  float Sum() const;

  /// Largest absolute element (0 for empty tensors).
  float MaxAbs() const;

  /// Reshape view-copy: returns the same data with a new shape; the
  /// element count must be preserved.
  Tensor Reshaped(int rows, int cols) const;

  /// Returns the transpose.
  Tensor Transposed() const;

  /// Human-readable dump (small tensors only; rows truncated at 8).
  std::string ToString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::shared_ptr<float> storage_;  ///< Null iff size() == 0.
};

/// Returns true if every element differs by at most `tol`.
bool AllClose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_TENSOR_H_
