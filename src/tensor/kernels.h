#ifndef OODGNN_TENSOR_KERNELS_H_
#define OODGNN_TENSOR_KERNELS_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {
namespace kernels {

// ---------------------------------------------------------------------------
// Pure, autograd-free numeric kernels. Every kernel operates on an
// explicit contiguous range of its *output* (rows, columns, segments or
// flat elements), so a backend can partition work across threads while
// each output element is still produced by exactly one chunk, in the
// same per-element accumulation order as a serial sweep. That is the
// determinism contract: results are bitwise identical for any
// partitioning of the range, hence for any thread count.
//
// `Acc` kernels accumulate into the output (out += ...); the rest
// overwrite it. Shape checks live in the callers (src/tensor/backend.*).
// ---------------------------------------------------------------------------

// --- dense matmul family (cache-blocked, zero-skip on the a operand) ---

/// out[r0:r1, :] += a[m,k] · b[k,n]; range over rows of out (= rows of a).
void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0, int r1);

/// out[r0:r1, :] += aᵀ · b, i.e. out[p,j] += Σ_i a[i,p]·b[i,j]; range
/// over rows of out (= columns of a).
void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1);

/// out[r0:r1, :] += a · bᵀ where b is [n,k]: out[i,j] += dot(a[i,:],
/// b[j,:]); range over rows of out (= rows of a).
void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1);

// --- element-wise maps over flat ranges ---

/// y[i] += alpha · x[i].
void Axpy(float alpha, const Tensor& x, Tensor* y, int i0, int i1);

/// y[i] *= s.
void Scale(Tensor* y, float s, int i0, int i1);

/// y[i] += s.
void AddScalar(Tensor* y, float s, int i0, int i1);

/// out[i] = a[i] · b[i].
void Hadamard(const Tensor& a, const Tensor& b, Tensor* out, int i0, int i1);

/// y[i] += g[i] · x[i].
void HadamardAcc(const Tensor& g, const Tensor& x, Tensor* y, int i0, int i1);

// --- reductions and their broadcast adjoints ---

/// out[0,c] += Σ_r a[r,c]; range over columns.
void ColumnSumAcc(const Tensor& a, Tensor* out, int c0, int c1);

/// out[r,0] += Σ_c a[r,c]; range over rows.
void RowSumAcc(const Tensor& a, Tensor* out, int r0, int r1);

/// out[r,:] += row[0,:]; range over rows (adjoint of ColumnSum).
void RowBroadcastAcc(const Tensor& row, Tensor* out, int r0, int r1);

/// out[r,:] += col[r,0]; range over rows (adjoint of RowSum).
void ColBroadcastAcc(const Tensor& col, Tensor* out, int r0, int r1);

/// out[r,c] += g[c,r]; range over rows of out (transpose adjoint).
void AddTransposedAcc(const Tensor& g, Tensor* out, int r0, int r1);

/// out[0,c] += Σ_r x[r,c]·y[r,c]; range over columns (row-vector
/// broadcast adjoint).
void HadamardColumnSumAcc(const Tensor& x, const Tensor& y, Tensor* out,
                          int c0, int c1);

/// out[r,0] += Σ_c x[r,c]·y[r,c]; range over rows (column-vector
/// broadcast adjoint).
void HadamardRowSumAcc(const Tensor& x, const Tensor& y, Tensor* out, int r0,
                       int r1);

/// Partial dot product Σ_{i0 ≤ i < i1} a[i]·b[i] over flat indices.
float Dot(const Tensor& a, const Tensor& b, int i0, int i1);

// --- softmax ---

/// Row-wise numerically stable softmax; range over rows.
void SoftmaxRows(const Tensor& a, Tensor* out, int r0, int r1);

/// out[r,:] += y[r,:] ⊙ (g[r,:] − ⟨g[r,:], y[r,:]⟩) where y is the
/// softmax output; range over rows.
void SoftmaxRowsBackwardAcc(const Tensor& y, const Tensor& g, Tensor* out,
                            int r0, int r1);

// --- gather / scatter / segment ops ---

/// out[r,:] = a[index[r],:]; range over rows of out.
void GatherRows(const Tensor& a, const std::vector<int>& index, Tensor* out,
                int r0, int r1);

/// out[r,:] += g[index[r],:]; range over rows of out (scatter adjoint).
void GatherRowsAcc(const Tensor& g, const std::vector<int>& index, Tensor* out,
                   int r0, int r1);

/// out[index[i],:] += a[i,:] for every i whose index falls in
/// [out_r0, out_r1); range over rows of *out*. Each chunk scans the full
/// index vector and touches only its own output rows, so rows of `a`
/// mapping to the same output row accumulate in ascending-i order no
/// matter how the range is split.
void ScatterAddRowsAcc(const Tensor& a, const std::vector<int>& index,
                       Tensor* out, int out_r0, int out_r1);

/// Planned scatter-add: out[s,:] += Σ_j a[perm[j],:] for j in
/// [offsets[s], offsets[s+1]), for every segment s in [s0, s1); range
/// over *segments* of out. perm/offsets come from a SegmentPlan, whose
/// stable order makes the per-row accumulation identical to the
/// ascending-i full-scan of ScatterAddRowsAcc — without scanning rows
/// outside the chunk's segments.
void ScatterAddRowsPlanned(const Tensor& a, const std::vector<int>& perm,
                           const std::vector<int>& offsets, Tensor* out,
                           int s0, int s1);

/// Fused gather→scatter: out[s,:] += Σ_j h[gather[j],:] for j in
/// [offsets[s], offsets[s+1]); range over segments. `gather` is the
/// pre-permuted source array (MessagePlan::src_by_dst for the forward,
/// dst_by_src for the h gradient), so the gathered edge tensor is never
/// materialized.
void GatherScatterAcc(const Tensor& h, const std::vector<int>& gather,
                      const std::vector<int>& offsets, Tensor* out, int s0,
                      int s1);

/// Weighted fused gather→scatter: out[s,:] += Σ_j h[gather[j],:] ·
/// w[perm[j],0]; range over segments. w is indexed by original edge id
/// via perm.
void GatherScatterWeightedAcc(const Tensor& h, const Tensor& w,
                              const std::vector<int>& perm,
                              const std::vector<int>& gather,
                              const std::vector<int>& offsets, Tensor* out,
                              int e_s0, int e_s1);

/// Per-edge row dot products: out[e,0] += ⟨x[xi[e],:], y[yi[e],:]⟩;
/// range over edges. The weight gradient of the weighted fused op.
void EdgeDotAcc(const Tensor& x, const Tensor& y, const std::vector<int>& xi,
                const std::vector<int>& yi, Tensor* out, int e0, int e1);

/// Planned SegmentExtreme: identical semantics and tie-breaking to
/// SegmentExtreme (ascending original row within each segment, strict
/// improvement), but visits each segment's rows via perm/offsets
/// instead of scanning all of a; range over segments.
void SegmentExtremePlanned(const Tensor& a, const std::vector<int>& perm,
                           const std::vector<int>& offsets, bool is_max,
                           Tensor* out, std::vector<int>* argrow, int s0,
                           int s1);

/// Per-segment column-wise max (is_max) or min. Writes extreme values
/// into out rows [s0, s1) (zero for empty segments) and the supplying
/// row index into argrow[s·cols + c] (-1 for empty); range over
/// segments. `out` and `argrow` must be pre-sized; their in-range
/// entries are overwritten.
void SegmentExtreme(const Tensor& a, const std::vector<int>& segment,
                    bool is_max, Tensor* out, std::vector<int>* argrow,
                    int s0, int s1);

/// out[argrow[s·cols+c], c] += g[s,c] for argrow ≥ 0; range over
/// segments. Safe to partition by segment: each (segment, column) cell
/// targets a distinct source row because rows belong to one segment.
void SegmentExtremeBackwardAcc(const Tensor& g,
                               const std::vector<int>& argrow, Tensor* out,
                               int s0, int s1);

// --- feature maps ---

/// Random Fourier feature map: out[r,j] = scale·cos(omega[j]·x +
/// phase[j]) with x = z[r, source_dim[j]] (or just x when
/// linear_only); range over rows. Hot per-batch loop of the HSIC
/// decorrelation path (src/core/rff.cc).
void RffMap(const Tensor& z, const std::vector<int>& source_dim,
            const std::vector<float>& omega, const std::vector<float>& phase,
            bool linear_only, float scale, Tensor* out, int r0, int r1);

// --- copies ---

/// dst[dst_row_begin + r, :] = src[r, :]; range over rows of src.
void CopyRowsTo(const Tensor& src, Tensor* dst, int dst_row_begin, int r0,
                int r1);

}  // namespace kernels
}  // namespace oodgnn

#endif  // OODGNN_TENSOR_KERNELS_H_
