#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {

Tensor::Tensor(int rows, int cols) : Tensor(rows, cols, 0.f) {}

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
  OODGNN_CHECK_GE(rows, 0);
  OODGNN_CHECK_GE(cols, 0);
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> data) {
  OODGNN_CHECK_EQ(data.size(),
                  static_cast<size_t>(rows) * static_cast<size_t>(cols));
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::RowVector(std::vector<float> values) {
  int n = static_cast<int>(values.size());
  return FromData(1, n, std::move(values));
}

Tensor Tensor::ColVector(std::vector<float> values) {
  int n = static_cast<int>(values.size());
  return FromData(n, 1, std::move(values));
}

Tensor Tensor::Identity(int n) {
  Tensor t(n, n);
  for (int i = 0; i < n; ++i) t.at(i, i) = 1.f;
  return t;
}

Tensor Tensor::RandomNormal(int rows, int cols, Rng* rng, float mean,
                            float stddev) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandomUniform(int rows, int cols, Rng* rng, float lo,
                             float hi) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

float& Tensor::at(int r, int c) {
  OODGNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

float Tensor::at(int r, int c) const {
  OODGNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Add(const Tensor& other) {
  OODGNN_CHECK(SameShape(other));
  for (int i = 0; i < size(); ++i) data_[static_cast<size_t>(i)] += other[i];
}

void Tensor::Scale(float s) {
  for (float& v : data_) v *= s;
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::MaxAbs() const {
  float m = 0.f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Tensor Tensor::Reshaped(int rows, int cols) const {
  OODGNN_CHECK_EQ(rows * cols, size());
  Tensor t = *this;
  t.rows_ = rows;
  t.cols_ = cols;
  return t;
}

Tensor Tensor::Transposed() const {
  Tensor t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

std::string Tensor::ToString() const {
  std::ostringstream out;
  out << "Tensor(" << rows_ << "x" << cols_ << ")";
  const int max_rows = 8;
  const int max_cols = 12;
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    out << "\n  [";
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      if (c) out << ", ";
      out << at(r, c);
    }
    if (cols_ > max_cols) out << ", ...";
    out << "]";
  }
  if (rows_ > max_rows) out << "\n  ...";
  return out.str();
}

bool AllClose(const Tensor& a, const Tensor& b, float tol) {
  if (!a.SameShape(b)) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace oodgnn
