#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "src/tensor/arena.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {

Tensor::Tensor(int rows, int cols) : Tensor(rows, cols, 0.f) {}

Tensor::Tensor(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  OODGNN_CHECK_GE(rows, 0);
  OODGNN_CHECK_GE(cols, 0);
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (n > 0) {
    storage_ = AllocateTensorStorage(n);
    std::fill_n(storage_.get(), n, fill);
  }
}

Tensor::Tensor(const Tensor& other) : rows_(other.rows_), cols_(other.cols_) {
  const size_t n = static_cast<size_t>(other.size());
  if (n > 0) {
    storage_ = AllocateTensorStorage(n);
    std::memcpy(storage_.get(), other.storage_.get(), n * sizeof(float));
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  const size_t n = static_cast<size_t>(other.size());
  if (n > 0) {
    storage_ = AllocateTensorStorage(n);
    std::memcpy(storage_.get(), other.storage_.get(), n * sizeof(float));
  } else {
    storage_.reset();
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_),
      storage_(std::move(other.storage_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  storage_ = std::move(other.storage_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> data) {
  OODGNN_CHECK_EQ(data.size(),
                  static_cast<size_t>(rows) * static_cast<size_t>(cols));
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  if (!data.empty()) {
    t.storage_ = AllocateTensorStorage(data.size());
    std::memcpy(t.storage_.get(), data.data(), data.size() * sizeof(float));
  }
  return t;
}

Tensor Tensor::RowVector(std::vector<float> values) {
  int n = static_cast<int>(values.size());
  return FromData(1, n, std::move(values));
}

Tensor Tensor::ColVector(std::vector<float> values) {
  int n = static_cast<int>(values.size());
  return FromData(n, 1, std::move(values));
}

Tensor Tensor::Identity(int n) {
  Tensor t(n, n);
  for (int i = 0; i < n; ++i) t.at(i, i) = 1.f;
  return t;
}

Tensor Tensor::RandomNormal(int rows, int cols, Rng* rng, float mean,
                            float stddev) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandomUniform(int rows, int cols, Rng* rng, float lo,
                             float hi) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

float& Tensor::at(int r, int c) {
  OODGNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return storage_.get()[static_cast<size_t>(r) * cols_ + c];
}

float Tensor::at(int r, int c) const {
  OODGNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return storage_.get()[static_cast<size_t>(r) * cols_ + c];
}

void Tensor::Fill(float value) {
  std::fill_n(storage_.get(), static_cast<size_t>(size()), value);
}

void Tensor::Add(const Tensor& other) {
  OODGNN_CHECK(SameShape(other));
  float* dst = storage_.get();
  const float* src = other.storage_.get();
  for (int i = 0; i < size(); ++i) dst[i] += src[i];
}

void Tensor::Scale(float s) {
  float* dst = storage_.get();
  for (int i = 0; i < size(); ++i) dst[i] *= s;
}

float Tensor::Sum() const {
  double acc = 0.0;
  const float* src = storage_.get();
  for (int i = 0; i < size(); ++i) acc += src[i];
  return static_cast<float>(acc);
}

float Tensor::MaxAbs() const {
  float m = 0.f;
  const float* src = storage_.get();
  for (int i = 0; i < size(); ++i) m = std::max(m, std::fabs(src[i]));
  return m;
}

Tensor Tensor::Reshaped(int rows, int cols) const {
  OODGNN_CHECK_EQ(rows * cols, size());
  Tensor t = *this;
  t.rows_ = rows;
  t.cols_ = cols;
  return t;
}

Tensor Tensor::Transposed() const {
  Tensor t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

std::string Tensor::ToString() const {
  std::ostringstream out;
  out << "Tensor(" << rows_ << "x" << cols_ << ")";
  const int max_rows = 8;
  const int max_cols = 12;
  for (int r = 0; r < std::min(rows_, max_rows); ++r) {
    out << "\n  [";
    for (int c = 0; c < std::min(cols_, max_cols); ++c) {
      if (c) out << ", ";
      out << at(r, c);
    }
    if (cols_ > max_cols) out << ", ...";
    out << "]";
  }
  if (rows_ > max_rows) out << "\n  ...";
  return out.str();
}

bool AllClose(const Tensor& a, const Tensor& b, float tol) {
  if (!a.SameShape(b)) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace oodgnn
