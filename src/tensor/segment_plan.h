#ifndef OODGNN_TENSOR_SEGMENT_PLAN_H_
#define OODGNN_TENSOR_SEGMENT_PLAN_H_

#include <memory>
#include <vector>

namespace oodgnn {

/// CSR-style plan over an integer index vector: the item order sorted
/// (stably) by segment id, plus per-segment offsets. Built once per
/// GraphBatch and reused by every planned gather/scatter kernel, which
/// can then parallelize over contiguous *segments* — each output row is
/// owned by exactly one chunk and its contributions are visited in
/// ascending original item order, the same per-element accumulation
/// order as the serial full-scan path. That makes every planned kernel
/// bitwise identical to the unplanned one at any thread count
/// (DESIGN.md §12).
///
/// A plan describes a frozen snapshot of `items`; mutating the source
/// index vector afterwards invalidates it. GraphBatch::FinalizePlans()
/// is the one rebuild entry point.
struct SegmentPlan {
  int num_segments = 0;

  /// The original segment/index vector the plan was built from.
  std::vector<int> items;

  /// Item positions sorted by segment, stable: within a segment,
  /// ascending original position.
  std::vector<int> perm;

  /// offsets[s]..offsets[s+1] delimit segment s inside `perm`;
  /// size num_segments + 1.
  std::vector<int> offsets;

  int num_items() const { return static_cast<int>(items.size()); }

  /// Items in segment s (= offsets[s+1] - offsets[s]).
  int SegmentSize(int s) const {
    return offsets[static_cast<size_t>(s) + 1] - offsets[static_cast<size_t>(s)];
  }

  /// Per-segment item counts — the shared in-degree helper (segment =
  /// edge destination ⇒ count = in-degree).
  std::vector<int> SegmentCounts() const;

  /// Builds the plan by stable counting sort; O(num_items +
  /// num_segments). Every entry of `items` must lie in
  /// [0, num_segments).
  static SegmentPlan Build(std::vector<int> items, int num_segments);
};

/// Paired plans for the directed message pattern
/// `RowGather(h, src) → ScatterAddRows(·, dst)` over one edge list:
/// the dst-sorted plan drives the forward scatter, the src-sorted twin
/// drives the RowGather gradient, and the pre-permuted gather arrays
/// let the fused kernels read h directly without materializing the
/// gathered edge tensor.
struct MessagePlan {
  /// Node count: rows of the gather source and of the scatter output.
  int num_rows = 0;

  /// Plan over edge destinations (items = dst).
  SegmentPlan by_dst;

  /// Plan over edge sources (items = src).
  SegmentPlan by_src;

  /// src[by_dst.perm[j]] — source row feeding slot j of the forward.
  std::vector<int> src_by_dst;

  /// dst[by_src.perm[j]] — gradient row feeding slot j of the backward.
  std::vector<int> dst_by_src;

  const std::vector<int>& src() const { return by_src.items; }
  const std::vector<int>& dst() const { return by_dst.items; }
  int num_edges() const { return by_dst.num_items(); }

  static MessagePlan Build(std::vector<int> src, std::vector<int> dst,
                           int num_rows);
};

/// Plans are shared into autograd closures (the tape may outlive the
/// batch that built them, e.g. pooled topologies moved between layers).
using SegmentPlanPtr = std::shared_ptr<const SegmentPlan>;
using MessagePlanPtr = std::shared_ptr<const MessagePlan>;

/// Aliased pointer to one side of a MessagePlan, keeping the whole plan
/// alive.
inline SegmentPlanPtr ByDst(const MessagePlanPtr& plan) {
  return SegmentPlanPtr(plan, &plan->by_dst);
}
inline SegmentPlanPtr BySrc(const MessagePlanPtr& plan) {
  return SegmentPlanPtr(plan, &plan->by_src);
}

}  // namespace oodgnn

#endif  // OODGNN_TENSOR_SEGMENT_PLAN_H_
