#include "src/tensor/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/tensor/kernels.h"
#include "src/tensor/quant.h"

// This is the only translation unit built with an explicit vector ISA
// flag (src/CMakeLists.txt adds -mavx2 + OODGNN_SIMD_AVX2 on x86-64
// compilers that accept it; aarch64 has NEON at baseline). Everything
// below the runtime gate therefore may use vector intrinsics, but no
// caller reaches it unless Enabled() returned true — which requires
// the CPU feature check to have passed. FMA is deliberately never
// used (and -ffp-contract=off is pinned globally): a fused
// multiply-add rounds once where the scalar oracle rounds twice, which
// would break the bitwise contract.
#if defined(OODGNN_SIMD_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#define OODGNN_SIMD_ISA_AVX2 1
#elif defined(__aarch64__) && (defined(__ARM_NEON) || defined(__ARM_NEON__))
#include <arm_neon.h>
#define OODGNN_SIMD_ISA_NEON 1
#endif

namespace oodgnn {
namespace simd {

namespace {

bool CompiledIsaAvailable() {
#if defined(OODGNN_SIMD_ISA_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#elif defined(OODGNN_SIMD_ISA_NEON)
  return true;
#else
  return false;
#endif
}

// -1 = uninitialized, 0 = scalar, 1 = vector. Initialization is
// idempotent, so a racing first read is benign.
std::atomic<int> g_mode{-1};

int InitMode() {
  if (!CompiledIsaAvailable()) return 0;
  const char* env = std::getenv("OODGNN_FORCE_SCALAR");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    return 0;
  }
  return 1;
}

}  // namespace

bool Available() { return CompiledIsaAvailable(); }

const char* IsaName() {
#if defined(OODGNN_SIMD_ISA_AVX2)
  return Available() ? "avx2" : "scalar";
#elif defined(OODGNN_SIMD_ISA_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

bool Enabled() {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = InitMode();
    g_mode.store(mode, std::memory_order_relaxed);
  }
  return mode == 1;
}

void SetEnabled(bool enabled) {
  g_mode.store(enabled && Available() ? 1 : 0, std::memory_order_relaxed);
}

#if defined(OODGNN_SIMD_ISA_AVX2) || defined(OODGNN_SIMD_ISA_NEON)

namespace {

// Minimal vector abstraction. Every wrapper preserves the C operand
// order of the scalar expression it stands in for (VMul(a, b) ≡ a*b,
// VAdd(a, b) ≡ a+b), so NaN-payload propagation — which x86/ARM take
// from the first source operand — matches the scalar kernels.
#if defined(OODGNN_SIMD_ISA_AVX2)

using vf = __m256;
constexpr int kVLen = 8;
inline vf VLoad(const float* p) { return _mm256_loadu_ps(p); }
inline void VStore(float* p, vf v) { _mm256_storeu_ps(p, v); }
inline vf VBroadcast(float x) { return _mm256_set1_ps(x); }
inline vf VMul(vf a, vf b) { return _mm256_mul_ps(a, b); }
inline vf VAdd(vf a, vf b) { return _mm256_add_ps(a, b); }
/// Sign-extends 8 int8 codes to 8 floats (exact conversion).
inline vf VLoadI8AsF32(const int8_t* p) {
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
}

#else  // OODGNN_SIMD_ISA_NEON

using vf = float32x4_t;
constexpr int kVLen = 4;
inline vf VLoad(const float* p) { return vld1q_f32(p); }
inline void VStore(float* p, vf v) { vst1q_f32(p, v); }
inline vf VBroadcast(float x) { return vdupq_n_f32(x); }
inline vf VMul(vf a, vf b) { return vmulq_f32(a, b); }
inline vf VAdd(vf a, vf b) { return vaddq_f32(a, b); }
/// Converts 4 int8 codes to 4 floats without reading past p[3].
inline vf VLoadI8AsF32(const int8_t* p) {
  const float buf[4] = {
      static_cast<float>(p[0]), static_cast<float>(p[1]),
      static_cast<float>(p[2]), static_cast<float>(p[3])};
  return vld1q_f32(buf);
}

#endif

// Same cache-block sizes as the scalar kernels: block boundaries do
// not affect bitwise results (only the per-output-element operation
// order does), but keeping them aligned makes scalar-vs-SIMD timing
// comparisons isolate the vectorization itself.
constexpr int kBlockN = 256;
constexpr int kBlockK = 64;
constexpr int kBlockP = 16;
constexpr int kBlockJ = 32;

/// orow[j0:j1) += av·brow[j0:j1) — the shared inner row-update of both
/// broadcast-a matmul variants. Vector body and scalar tail perform
/// the identical mul-then-add per element.
inline void RowAxpy(float av, const float* brow, float* orow, int j0,
                    int j1) {
  const vf vav = VBroadcast(av);
  int j = j0;
  for (; j + kVLen <= j1; j += kVLen) {
    const vf prod = VMul(vav, VLoad(brow + j));
    VStore(orow + j, VAdd(VLoad(orow + j), prod));
  }
  for (; j < j1; ++j) orow[j] += av * brow[j];
}

}  // namespace

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
               int r1) {
  const int k = a.cols();
  const int n = b.cols();
  for (int j0 = 0; j0 < n; j0 += kBlockN) {
    const int j1 = std::min(n, j0 + kBlockN);
    for (int p0 = 0; p0 < k; p0 += kBlockK) {
      const int p1 = std::min(k, p0 + kBlockK);
      for (int i = r0; i < r1; ++i) {
        const float* arow = a.row(i);
        float* orow = out->row(i);
        for (int p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.f) continue;
          RowAxpy(av, b.row(p), orow, j0, j1);
        }
      }
    }
  }
}

void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1) {
  const int m = a.rows();
  const int n = b.cols();
  for (int p0 = r0; p0 < r1; p0 += kBlockP) {
    const int p1 = std::min(r1, p0 + kBlockP);
    for (int j0 = 0; j0 < n; j0 += kBlockN) {
      const int j1 = std::min(n, j0 + kBlockN);
      for (int i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        const float* brow = b.row(i);
        for (int p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.f) continue;
          RowAxpy(av, brow, out->row(p), j0, j1);
        }
      }
    }
  }
}

void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1) {
  const int k = a.cols();
  const int n = b.rows();
  // Each lane accumulates one column j's dot product in the scalar
  // p-ascending order; b rows are packed into a [k × kVLen] panel so
  // the inner loop reads contiguously. The panel is plain scratch —
  // it never flows through the tensor allocation sink, so it does not
  // perturb the arena/alloc accounting the compiled path pins.
  thread_local std::vector<float> panel;
  for (int j0 = 0; j0 < n; j0 += kBlockJ) {
    const int j1 = std::min(n, j0 + kBlockJ);
    int jb = j0;
    for (; jb + kVLen <= j1; jb += kVLen) {
      panel.resize(static_cast<size_t>(k) * kVLen);
      for (int l = 0; l < kVLen; ++l) {
        const float* brow = b.row(jb + l);
        for (int p = 0; p < k; ++p) {
          panel[static_cast<size_t>(p) * kVLen + l] = brow[p];
        }
      }
      for (int i = r0; i < r1; ++i) {
        const float* arow = a.row(i);
        vf acc = VBroadcast(0.f);
        for (int p = 0; p < k; ++p) {
          const vf prod =
              VMul(VBroadcast(arow[p]), VLoad(&panel[static_cast<size_t>(p) * kVLen]));
          acc = VAdd(acc, prod);
        }
        float* orow = out->row(i);
        VStore(orow + jb, VAdd(VLoad(orow + jb), acc));
      }
    }
    // Tail columns of the block: scalar dots, same as the oracle.
    for (int i = r0; i < r1; ++i) {
      const float* arow = a.row(i);
      float* orow = out->row(i);
      for (int j = jb; j < j1; ++j) {
        const float* brow = b.row(j);
        float acc = 0.f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        orow[j] += acc;
      }
    }
  }
}

namespace {

/// Column tail of the quantized matmul ([j0, n) narrower than a
/// register tile): scalar per-element form of the oracle expression.
inline void MatMulQuantTailCols(const float* arow, const QuantizedTensor& w,
                                float* orow, int j0, int n, int k) {
  for (int p = 0; p < k; ++p) {
    const float av = arow[p];
    if (av == 0.f) continue;
    const int8_t* qrow = w.qrow(p);
    const float* srow = w.srow(p);
    for (int j = j0; j < n; ++j) {
      const float m = av * srow[j / kQuantBlockSize];
      orow[j] += m * static_cast<float>(qrow[j]);
    }
  }
}

/// One output row of the quantized matmul, p outer / columns inner, so
/// the q8 rows stream sequentially. That memory order is what matters
/// in the GEMV regime (one activation row against weights far larger
/// than cache): the column-tiled body below would revisit every weight
/// row once per tile at a full-row stride, thrashing TLB and cache.
/// The output row churns in L1/L2 instead, which is the cheap side.
inline void MatMulQuantAccRow(const float* arow, const QuantizedTensor& w,
                              float* orow, int n, int k, int bpr) {
  for (int p = 0; p < k; ++p) {
    const float av = arow[p];
    if (av == 0.f) continue;
    const int8_t* qrow = w.qrow(p);
    const float* srow = w.srow(p);
    for (int b = 0; b < bpr; ++b) {
      const float m = av * srow[b];
      const vf vm = VBroadcast(m);
      const int j0 = b * kQuantBlockSize;
      const int j1 = std::min(n, j0 + kQuantBlockSize);
      int j = j0;
      for (; j + kVLen <= j1; j += kVLen) {
        const vf prod = VMul(vm, VLoadI8AsF32(qrow + j));
        VStore(orow + j, VAdd(VLoad(orow + j), prod));
      }
      for (; j < j1; ++j) orow[j] += m * static_cast<float>(qrow[j]);
    }
  }
}

}  // namespace

void MatMulQuantAcc(const Tensor& a, const QuantizedTensor& w, Tensor* out,
                    int r0, int r1) {
  const int k = a.cols();
  const int n = w.cols;
  const int bpr = w.blocks_per_row();
  // Register-tiled main body: 4 output rows x 2 column vectors per
  // tile. The int8->f32 conversion of a weight vector dominates the
  // cache-resident quantized kernel, so one conversion is shared
  // across four output rows, and outputs accumulate in registers (one
  // load + one store per tile instead of one per p step). Bitwise-
  // equal to the scalar oracle by construction: every output element
  // still accumulates in ascending p order, with the identical skip
  // (av == 0.f) and the identical expression (av * scale) * q. A tile
  // never straddles a quant block: kQuantBlockSize (32) is a multiple
  // of 2 * kVLen. Row remainders (and therefore the GEMV case) take
  // the sequential-streaming row kernel instead — see its comment.
  constexpr int kTileCols = 2 * kVLen;
  static_assert(kQuantBlockSize % kTileCols == 0,
                "tile must not straddle quant blocks");
  const int jt_end = n - (n % kTileCols);
  int i = r0;
  for (; i + 4 <= r1; i += 4) {
    const float* arow[4] = {a.row(i), a.row(i + 1), a.row(i + 2),
                            a.row(i + 3)};
    float* orow[4] = {out->row(i), out->row(i + 1), out->row(i + 2),
                      out->row(i + 3)};
    for (int j = 0; j < jt_end; j += kTileCols) {
      const int b = j / kQuantBlockSize;
      vf acc0[4], acc1[4];
      for (int r = 0; r < 4; ++r) {
        acc0[r] = VLoad(orow[r] + j);
        acc1[r] = VLoad(orow[r] + j + kVLen);
      }
      for (int p = 0; p < k; ++p) {
        const float a0 = arow[0][p];
        const float a1 = arow[1][p];
        const float a2 = arow[2][p];
        const float a3 = arow[3][p];
        if (a0 == 0.f && a1 == 0.f && a2 == 0.f && a3 == 0.f) continue;
        const float s = w.srow(p)[b];
        const int8_t* qp = w.qrow(p) + j;
        const vf wq0 = VLoadI8AsF32(qp);
        const vf wq1 = VLoadI8AsF32(qp + kVLen);
        if (a0 != 0.f) {
          const vf m = VBroadcast(a0 * s);
          acc0[0] = VAdd(acc0[0], VMul(m, wq0));
          acc1[0] = VAdd(acc1[0], VMul(m, wq1));
        }
        if (a1 != 0.f) {
          const vf m = VBroadcast(a1 * s);
          acc0[1] = VAdd(acc0[1], VMul(m, wq0));
          acc1[1] = VAdd(acc1[1], VMul(m, wq1));
        }
        if (a2 != 0.f) {
          const vf m = VBroadcast(a2 * s);
          acc0[2] = VAdd(acc0[2], VMul(m, wq0));
          acc1[2] = VAdd(acc1[2], VMul(m, wq1));
        }
        if (a3 != 0.f) {
          const vf m = VBroadcast(a3 * s);
          acc0[3] = VAdd(acc0[3], VMul(m, wq0));
          acc1[3] = VAdd(acc1[3], VMul(m, wq1));
        }
      }
      for (int r = 0; r < 4; ++r) {
        VStore(orow[r] + j, acc0[r]);
        VStore(orow[r] + j + kVLen, acc1[r]);
      }
    }
    if (jt_end < n) {
      for (int r = 0; r < 4; ++r) {
        MatMulQuantTailCols(arow[r], w, orow[r], jt_end, n, k);
      }
    }
  }
  for (; i < r1; ++i) {
    MatMulQuantAccRow(a.row(i), w, out->row(i), n, k, bpr);
  }
}

void Axpy(float alpha, const Tensor& x, Tensor* y, int i0, int i1) {
  const float* xs = x.data();
  float* ys = y->data();
  const vf va = VBroadcast(alpha);
  int i = i0;
  for (; i + kVLen <= i1; i += kVLen) {
    const vf prod = VMul(va, VLoad(xs + i));
    VStore(ys + i, VAdd(VLoad(ys + i), prod));
  }
  for (; i < i1; ++i) ys[i] += alpha * xs[i];
}

void Scale(Tensor* y, float s, int i0, int i1) {
  float* ys = y->data();
  const vf vs = VBroadcast(s);
  int i = i0;
  for (; i + kVLen <= i1; i += kVLen) {
    VStore(ys + i, VMul(VLoad(ys + i), vs));
  }
  for (; i < i1; ++i) ys[i] *= s;
}

void AddScalar(Tensor* y, float s, int i0, int i1) {
  float* ys = y->data();
  const vf vs = VBroadcast(s);
  int i = i0;
  for (; i + kVLen <= i1; i += kVLen) {
    VStore(ys + i, VAdd(VLoad(ys + i), vs));
  }
  for (; i < i1; ++i) ys[i] += s;
}

void Hadamard(const Tensor& a, const Tensor& b, Tensor* out, int i0,
              int i1) {
  const float* as = a.data();
  const float* bs = b.data();
  float* os = out->data();
  int i = i0;
  for (; i + kVLen <= i1; i += kVLen) {
    VStore(os + i, VMul(VLoad(as + i), VLoad(bs + i)));
  }
  for (; i < i1; ++i) os[i] = as[i] * bs[i];
}

void HadamardAcc(const Tensor& g, const Tensor& x, Tensor* y, int i0,
                 int i1) {
  const float* gs = g.data();
  const float* xs = x.data();
  float* ys = y->data();
  int i = i0;
  for (; i + kVLen <= i1; i += kVLen) {
    const vf prod = VMul(VLoad(gs + i), VLoad(xs + i));
    VStore(ys + i, VAdd(VLoad(ys + i), prod));
  }
  for (; i < i1; ++i) ys[i] += gs[i] * xs[i];
}

void ColumnSumAcc(const Tensor& a, Tensor* out, int c0, int c1) {
  float* orow = out->row(0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* arow = a.row(r);
    int c = c0;
    for (; c + kVLen <= c1; c += kVLen) {
      VStore(orow + c, VAdd(VLoad(orow + c), VLoad(arow + c)));
    }
    for (; c < c1; ++c) orow[c] += arow[c];
  }
}

void RowBroadcastAcc(const Tensor& row, Tensor* out, int r0, int r1) {
  const float* src = row.row(0);
  const int cols = out->cols();
  for (int r = r0; r < r1; ++r) {
    float* orow = out->row(r);
    int c = 0;
    for (; c + kVLen <= cols; c += kVLen) {
      VStore(orow + c, VAdd(VLoad(orow + c), VLoad(src + c)));
    }
    for (; c < cols; ++c) orow[c] += src[c];
  }
}

void ColBroadcastAcc(const Tensor& col, Tensor* out, int r0, int r1) {
  const int cols = out->cols();
  for (int r = r0; r < r1; ++r) {
    const float v = col.at(r, 0);
    const vf vv = VBroadcast(v);
    float* orow = out->row(r);
    int c = 0;
    for (; c + kVLen <= cols; c += kVLen) {
      VStore(orow + c, VAdd(VLoad(orow + c), vv));
    }
    for (; c < cols; ++c) orow[c] += v;
  }
}

void HadamardColumnSumAcc(const Tensor& x, const Tensor& y, Tensor* out,
                          int c0, int c1) {
  float* orow = out->row(0);
  for (int r = 0; r < x.rows(); ++r) {
    const float* xrow = x.row(r);
    const float* yrow = y.row(r);
    int c = c0;
    for (; c + kVLen <= c1; c += kVLen) {
      const vf prod = VMul(VLoad(xrow + c), VLoad(yrow + c));
      VStore(orow + c, VAdd(VLoad(orow + c), prod));
    }
    for (; c < c1; ++c) orow[c] += xrow[c] * yrow[c];
  }
}

void GatherRowsAcc(const Tensor& g, const std::vector<int>& index,
                   Tensor* out, int r0, int r1) {
  const int cols = out->cols();
  for (int r = r0; r < r1; ++r) {
    const float* grow = g.row(index[static_cast<size_t>(r)]);
    float* orow = out->row(r);
    int c = 0;
    for (; c + kVLen <= cols; c += kVLen) {
      VStore(orow + c, VAdd(VLoad(orow + c), VLoad(grow + c)));
    }
    for (; c < cols; ++c) orow[c] += grow[c];
  }
}

void ScatterAddRowsPlanned(const Tensor& a, const std::vector<int>& perm,
                           const std::vector<int>& offsets, Tensor* out,
                           int s0, int s1) {
  const int cols = a.cols();
  for (int s = s0; s < s1; ++s) {
    float* orow = out->row(s);
    const int begin = offsets[static_cast<size_t>(s)];
    const int end = offsets[static_cast<size_t>(s) + 1];
    for (int j = begin; j < end; ++j) {
      const float* src = a.row(perm[static_cast<size_t>(j)]);
      int c = 0;
      for (; c + kVLen <= cols; c += kVLen) {
        VStore(orow + c, VAdd(VLoad(orow + c), VLoad(src + c)));
      }
      for (; c < cols; ++c) orow[c] += src[c];
    }
  }
}

void GatherScatterAcc(const Tensor& h, const std::vector<int>& gather,
                      const std::vector<int>& offsets, Tensor* out, int s0,
                      int s1) {
  const int cols = h.cols();
  for (int s = s0; s < s1; ++s) {
    float* orow = out->row(s);
    const int begin = offsets[static_cast<size_t>(s)];
    const int end = offsets[static_cast<size_t>(s) + 1];
    for (int j = begin; j < end; ++j) {
      const float* src = h.row(gather[static_cast<size_t>(j)]);
      int c = 0;
      for (; c + kVLen <= cols; c += kVLen) {
        VStore(orow + c, VAdd(VLoad(orow + c), VLoad(src + c)));
      }
      for (; c < cols; ++c) orow[c] += src[c];
    }
  }
}

void GatherScatterWeightedAcc(const Tensor& h, const Tensor& w,
                              const std::vector<int>& perm,
                              const std::vector<int>& gather,
                              const std::vector<int>& offsets, Tensor* out,
                              int e_s0, int e_s1) {
  const int cols = h.cols();
  for (int s = e_s0; s < e_s1; ++s) {
    float* orow = out->row(s);
    const int begin = offsets[static_cast<size_t>(s)];
    const int end = offsets[static_cast<size_t>(s) + 1];
    for (int j = begin; j < end; ++j) {
      const float* src = h.row(gather[static_cast<size_t>(j)]);
      const float wv = w.at(perm[static_cast<size_t>(j)], 0);
      const vf vw = VBroadcast(wv);
      int c = 0;
      for (; c + kVLen <= cols; c += kVLen) {
        const vf prod = VMul(VLoad(src + c), vw);
        VStore(orow + c, VAdd(VLoad(orow + c), prod));
      }
      for (; c < cols; ++c) orow[c] += src[c] * wv;
    }
  }
}

void RffMap(const Tensor& z, const std::vector<int>& source_dim,
            const std::vector<float>& omega, const std::vector<float>& phase,
            bool linear_only, float scale, Tensor* out, int r0, int r1) {
  if (linear_only) {
    // Pure gather, no arithmetic to vectorize.
    kernels::RffMap(z, source_dim, omega, phase, linear_only, scale, out, r0,
                    r1);
    return;
  }
  const int m = out->cols();
  const vf vscale = VBroadcast(scale);
  float xbuf[kVLen];
  float argbuf[kVLen];
  for (int r = r0; r < r1; ++r) {
    const float* zrow = z.row(r);
    float* orow = out->row(r);
    int j = 0;
    for (; j + kVLen <= m; j += kVLen) {
      for (int l = 0; l < kVLen; ++l) {
        xbuf[l] = zrow[source_dim[static_cast<size_t>(j + l)]];
      }
      // arg = omega·x + phase with the scalar's mul-then-add rounding;
      // cos() stays scalar libm so both paths share its exact result.
      const vf varg =
          VAdd(VMul(VLoad(&omega[static_cast<size_t>(j)]), VLoad(xbuf)),
               VLoad(&phase[static_cast<size_t>(j)]));
      VStore(argbuf, varg);
      for (int l = 0; l < kVLen; ++l) argbuf[l] = std::cos(argbuf[l]);
      VStore(orow + j, VMul(vscale, VLoad(argbuf)));
    }
    for (; j < m; ++j) {
      const float x = zrow[source_dim[static_cast<size_t>(j)]];
      orow[j] = scale * std::cos(omega[static_cast<size_t>(j)] * x +
                                 phase[static_cast<size_t>(j)]);
    }
  }
}

#else  // no vector ISA compiled in: delegate so the symbols still link.

void MatMulAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
               int r1) {
  kernels::MatMulAcc(a, b, out, r0, r1);
}
void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1) {
  kernels::MatMulTransAAcc(a, b, out, r0, r1);
}
void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out, int r0,
                     int r1) {
  kernels::MatMulTransBAcc(a, b, out, r0, r1);
}
void MatMulQuantAcc(const Tensor& a, const QuantizedTensor& w, Tensor* out,
                    int r0, int r1) {
  kernels::MatMulQuantAcc(a, w, out, r0, r1);
}
void Axpy(float alpha, const Tensor& x, Tensor* y, int i0, int i1) {
  kernels::Axpy(alpha, x, y, i0, i1);
}
void Scale(Tensor* y, float s, int i0, int i1) {
  kernels::Scale(y, s, i0, i1);
}
void AddScalar(Tensor* y, float s, int i0, int i1) {
  kernels::AddScalar(y, s, i0, i1);
}
void Hadamard(const Tensor& a, const Tensor& b, Tensor* out, int i0,
              int i1) {
  kernels::Hadamard(a, b, out, i0, i1);
}
void HadamardAcc(const Tensor& g, const Tensor& x, Tensor* y, int i0,
                 int i1) {
  kernels::HadamardAcc(g, x, y, i0, i1);
}
void ColumnSumAcc(const Tensor& a, Tensor* out, int c0, int c1) {
  kernels::ColumnSumAcc(a, out, c0, c1);
}
void RowBroadcastAcc(const Tensor& row, Tensor* out, int r0, int r1) {
  kernels::RowBroadcastAcc(row, out, r0, r1);
}
void ColBroadcastAcc(const Tensor& col, Tensor* out, int r0, int r1) {
  kernels::ColBroadcastAcc(col, out, r0, r1);
}
void HadamardColumnSumAcc(const Tensor& x, const Tensor& y, Tensor* out,
                          int c0, int c1) {
  kernels::HadamardColumnSumAcc(x, y, out, c0, c1);
}
void GatherRowsAcc(const Tensor& g, const std::vector<int>& index,
                   Tensor* out, int r0, int r1) {
  kernels::GatherRowsAcc(g, index, out, r0, r1);
}
void ScatterAddRowsPlanned(const Tensor& a, const std::vector<int>& perm,
                           const std::vector<int>& offsets, Tensor* out,
                           int s0, int s1) {
  kernels::ScatterAddRowsPlanned(a, perm, offsets, out, s0, s1);
}
void GatherScatterAcc(const Tensor& h, const std::vector<int>& gather,
                      const std::vector<int>& offsets, Tensor* out, int s0,
                      int s1) {
  kernels::GatherScatterAcc(h, gather, offsets, out, s0, s1);
}
void GatherScatterWeightedAcc(const Tensor& h, const Tensor& w,
                              const std::vector<int>& perm,
                              const std::vector<int>& gather,
                              const std::vector<int>& offsets, Tensor* out,
                              int e_s0, int e_s1) {
  kernels::GatherScatterWeightedAcc(h, w, perm, gather, offsets, out, e_s0,
                                    e_s1);
}
void RffMap(const Tensor& z, const std::vector<int>& source_dim,
            const std::vector<float>& omega, const std::vector<float>& phase,
            bool linear_only, float scale, Tensor* out, int r0, int r1) {
  kernels::RffMap(z, source_dim, omega, phase, linear_only, scale, out, r0,
                  r1);
}

#endif

}  // namespace simd
}  // namespace oodgnn
