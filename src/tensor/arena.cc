#include "src/tensor/arena.h"

#include <algorithm>
#include <cstdlib>

#include "src/util/check.h"

namespace oodgnn {
namespace {

thread_local std::int64_t tls_heap_allocs = 0;
thread_local TensorAllocSink* tls_alloc_sink = nullptr;

void AlignedFree(float* p) { std::free(p); }

bool BoolFromEnv(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && *env != '\0' && std::atoi(env) != 0;
}

/// Lazily env-initialized, overridable toggles (same pattern as the
/// backend's OODGNN_THREADS).
std::mutex g_compiled_mu;
bool g_compiled_init = false;
bool g_compiled = false;  // guarded by g_compiled_mu
bool g_compiled_train_init = false;
bool g_compiled_train = false;  // guarded by g_compiled_mu

}  // namespace

std::shared_ptr<float> AllocateAlignedHeapBlock(std::size_t n_floats) {
  const std::size_t bytes =
      std::max<std::size_t>(AlignUpFloats(n_floats), kTensorStorageAlignFloats) *
      sizeof(float);
  // aligned_alloc requires the size to be a multiple of the alignment;
  // AlignUpFloats guarantees it.
  float* p = static_cast<float*>(
      std::aligned_alloc(kTensorStorageAlignBytes, bytes));
  OODGNN_CHECK(p != nullptr) << "aligned tensor allocation of " << bytes
                             << " bytes failed";
  ++tls_heap_allocs;
  return std::shared_ptr<float>(p, AlignedFree);
}

std::int64_t TensorHeapAllocsThisThread() { return tls_heap_allocs; }

std::shared_ptr<float> AllocateTensorStorage(std::size_t n_floats) {
  if (tls_alloc_sink != nullptr) return tls_alloc_sink->Allocate(n_floats);
  return AllocateAlignedHeapBlock(n_floats);
}

ScopedAllocSink::ScopedAllocSink(TensorAllocSink* sink)
    : previous_(tls_alloc_sink) {
  tls_alloc_sink = sink;
}

ScopedAllocSink::~ScopedAllocSink() { tls_alloc_sink = previous_; }

// ---------------------------------------------------------------------------
// Arena (dynamic first-fit slab allocator)
// ---------------------------------------------------------------------------

struct Arena::State {
  struct Slab {
    std::shared_ptr<float> base;
    std::size_t capacity = 0;  // floats
    /// Free extents, offset -> length (floats); adjacent holes are
    /// coalesced on free.
    std::map<std::size_t, std::size_t> holes;
  };

  mutable std::mutex mu;
  std::vector<Slab> slabs;  // guarded by mu
  ArenaStats stats;         // guarded by mu

  void Free(std::size_t slab_index, std::size_t offset, std::size_t n) {
    std::lock_guard<std::mutex> lock(mu);
    Slab& slab = slabs[slab_index];
    auto [it, inserted] = slab.holes.emplace(offset, n);
    OODGNN_CHECK(inserted) << "double free in arena";
    // Coalesce with the following hole, then with the preceding one.
    auto next = std::next(it);
    if (next != slab.holes.end() && it->first + it->second == next->first) {
      it->second += next->second;
      slab.holes.erase(next);
    }
    if (it != slab.holes.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        slab.holes.erase(it);
      }
    }
    stats.live_floats -= static_cast<std::int64_t>(n);
  }
};

Arena::Arena(std::size_t initial_floats) : state_(std::make_shared<State>()) {
  const std::size_t capacity =
      std::max(AlignUpFloats(initial_floats), kTensorStorageAlignFloats);
  State::Slab slab;
  slab.base = AllocateAlignedHeapBlock(capacity);
  slab.capacity = capacity;
  slab.holes.emplace(0, capacity);
  state_->slabs.push_back(std::move(slab));
  state_->stats.slab_bytes =
      static_cast<std::int64_t>(capacity * sizeof(float));
  state_->stats.slab_count = 1;
}

std::shared_ptr<float> Arena::Allocate(std::size_t n_floats) {
  const std::size_t n =
      std::max(AlignUpFloats(n_floats), kTensorStorageAlignFloats);
  std::shared_ptr<State> state = state_;
  std::lock_guard<std::mutex> lock(state->mu);

  float* ptr = nullptr;
  std::size_t slab_index = 0;
  std::size_t offset = 0;
  for (std::size_t si = 0; si < state->slabs.size() && ptr == nullptr; ++si) {
    State::Slab& slab = state->slabs[si];
    for (auto it = slab.holes.begin(); it != slab.holes.end(); ++it) {
      if (it->second < n) continue;
      slab_index = si;
      offset = it->first;
      ptr = slab.base.get() + offset;
      const std::size_t remaining = it->second - n;
      const std::size_t tail_offset = it->first + n;
      slab.holes.erase(it);
      if (remaining > 0) slab.holes.emplace(tail_offset, remaining);
      break;
    }
  }
  if (ptr == nullptr) {
    // No hole fits: grow by a doubling slab (at least n).
    const std::size_t last = state->slabs.back().capacity;
    const std::size_t capacity = std::max(n, last * 2);
    State::Slab slab;
    slab.base = AllocateAlignedHeapBlock(capacity);
    slab.capacity = capacity;
    if (capacity > n) slab.holes.emplace(n, capacity - n);
    slab_index = state->slabs.size();
    offset = 0;
    ptr = slab.base.get();
    state->slabs.push_back(std::move(slab));
    state->stats.slab_bytes +=
        static_cast<std::int64_t>(capacity * sizeof(float));
    state->stats.slab_count += 1;
  }

  state->stats.allocs += 1;
  state->stats.live_floats += static_cast<std::int64_t>(n);
  state->stats.peak_live_floats =
      std::max(state->stats.peak_live_floats, state->stats.live_floats);

  // The deleter holds the arena state (and through it the slab), so a
  // block may outlive the Arena handle itself.
  return std::shared_ptr<float>(
      ptr, [state, slab_index, offset, n](float*) {
        state->Free(slab_index, offset, n);
      });
}

ArenaStats Arena::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

bool CompiledEnabled() {
  std::lock_guard<std::mutex> lock(g_compiled_mu);
  if (!g_compiled_init) {
    g_compiled = BoolFromEnv("OODGNN_COMPILED");
    g_compiled_init = true;
  }
  return g_compiled;
}

void SetCompiledEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(g_compiled_mu);
  g_compiled = enabled;
  g_compiled_init = true;
}

bool CompiledTrainEnabled() {
  std::lock_guard<std::mutex> lock(g_compiled_mu);
  if (!g_compiled_train_init) {
    g_compiled_train = BoolFromEnv("OODGNN_COMPILED_TRAIN");
    g_compiled_train_init = true;
  }
  return g_compiled_train;
}

void SetCompiledTrainEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(g_compiled_mu);
  g_compiled_train = enabled;
  g_compiled_train_init = true;
}

}  // namespace oodgnn
