#include "src/tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "src/util/check.h"

namespace oodgnn {

QuantizedTensor QuantizeQ8(const Tensor& w) {
  QuantizedTensor qw;
  qw.rows = w.rows();
  qw.cols = w.cols();
  const int bpr = qw.blocks_per_row();
  qw.q.resize(static_cast<size_t>(qw.rows) * static_cast<size_t>(qw.cols));
  qw.scales.resize(static_cast<size_t>(qw.rows) * static_cast<size_t>(bpr));
  for (int r = 0; r < qw.rows; ++r) {
    const float* src = w.row(r);
    int8_t* dst = qw.q.data() + static_cast<size_t>(r) * qw.cols;
    float* srow = qw.scales.data() + static_cast<size_t>(r) * bpr;
    for (int b = 0; b < bpr; ++b) {
      const int c0 = b * kQuantBlockSize;
      const int c1 = std::min(qw.cols, c0 + kQuantBlockSize);
      float amax = 0.f;
      for (int c = c0; c < c1; ++c) amax = std::max(amax, std::fabs(src[c]));
      const float scale = amax / 127.f;
      srow[b] = scale;
      if (scale == 0.f) {
        for (int c = c0; c < c1; ++c) dst[c] = 0;
        continue;
      }
      const float inv = 1.f / scale;
      for (int c = c0; c < c1; ++c) {
        const long v = std::lroundf(src[c] * inv);
        dst[c] = static_cast<int8_t>(std::clamp(v, -127l, 127l));
      }
    }
  }
  return qw;
}

Tensor DequantizeQ8(const QuantizedTensor& qw) {
  Tensor out(qw.rows, qw.cols);
  const int bpr = qw.blocks_per_row();
  for (int r = 0; r < qw.rows; ++r) {
    const int8_t* src = qw.qrow(r);
    const float* srow = qw.srow(r);
    float* dst = out.row(r);
    for (int b = 0; b < bpr; ++b) {
      const float scale = srow[b];
      const int c0 = b * kQuantBlockSize;
      const int c1 = std::min(qw.cols, c0 + kQuantBlockSize);
      for (int c = c0; c < c1; ++c) {
        dst[c] = scale * static_cast<float>(src[c]);
      }
    }
  }
  return out;
}

namespace kernels {

void MatMulQuantAcc(const Tensor& a, const QuantizedTensor& w, Tensor* out,
                    int r0, int r1) {
  const int k = a.cols();
  const int n = w.cols;
  const int bpr = w.blocks_per_row();
  for (int i = r0; i < r1; ++i) {
    const float* arow = a.row(i);
    float* orow = out->row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const int8_t* qrow = w.qrow(p);
      const float* srow = w.srow(p);
      for (int b = 0; b < bpr; ++b) {
        const float m = av * srow[b];
        const int j0 = b * kQuantBlockSize;
        const int j1 = std::min(n, j0 + kQuantBlockSize);
        for (int j = j0; j < j1; ++j) {
          orow[j] += m * static_cast<float>(qrow[j]);
        }
      }
    }
  }
}

}  // namespace kernels

namespace {

thread_local const QuantizedWeightMap* tls_quant_map = nullptr;

}  // namespace

ScopedQuantizedWeights::ScopedQuantizedWeights(const QuantizedWeightMap* map)
    : previous_(tls_quant_map) {
  tls_quant_map = map;
}

ScopedQuantizedWeights::~ScopedQuantizedWeights() {
  tls_quant_map = previous_;
}

const QuantizedTensor* ActiveQuantizedWeightFor(const float* data) {
  if (tls_quant_map == nullptr || data == nullptr) return nullptr;
  const auto it = tls_quant_map->find(data);
  return it == tls_quant_map->end() ? nullptr : it->second;
}

namespace {

bool QuantizeFromEnv() {
  const char* env = std::getenv("OODGNN_QUANTIZE");
  return env != nullptr && std::atoi(env) != 0;
}

std::mutex g_quantize_mu;
bool g_quantize_init = false;
bool g_quantize = false;

}  // namespace

bool QuantizeEnabled() {
  std::lock_guard<std::mutex> lock(g_quantize_mu);
  if (!g_quantize_init) {
    g_quantize = QuantizeFromEnv();
    g_quantize_init = true;
  }
  return g_quantize;
}

void SetQuantizeEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(g_quantize_mu);
  g_quantize = enabled;
  g_quantize_init = true;
}

}  // namespace oodgnn
