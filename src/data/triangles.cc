#include "src/data/triangles.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

/// One-hot degree features, clamped into the last bucket.
void SetDegreeFeatures(Graph* graph, int max_degree_feature) {
  std::vector<int> degrees = graph->InDegrees();
  graph->x = Tensor(graph->num_nodes(), max_degree_feature + 1);
  for (int v = 0; v < graph->num_nodes(); ++v) {
    const int bucket =
        std::min(degrees[static_cast<size_t>(v)], max_degree_feature);
    graph->x.at(v, bucket) = 1.f;
  }
}

Graph FromEdgeSet(int n, const std::set<std::pair<int, int>>& edges) {
  Graph graph(n, 1);
  for (const auto& [u, v] : edges) graph.AddUndirectedEdge(u, v);
  return graph;
}

/// Erdős–Rényi attempt with edge probability tuned so the expected
/// triangle count matches `target`.
Graph ErdosRenyiAttempt(int n, int target, Rng* rng) {
  const double triples =
      static_cast<double>(n) * (n - 1) * (n - 2) / 6.0;
  double p = std::cbrt(static_cast<double>(target) / triples);
  p *= rng->Uniform(0.8, 1.2);
  p = std::clamp(p, 0.0, 0.9);
  std::set<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng->Bernoulli(p)) edges.insert({u, v});
    }
  }
  return FromEdgeSet(n, edges);
}

/// Constructive fallback with an exact triangle count: a "fan" (center
/// connected to a path of target+1 nodes) contributes exactly `target`
/// triangles; remaining nodes hang off as tree leaves (leaves never
/// close new triangles). Random count-preserving extra edges add
/// variety.
Graph ConstructiveFan(int n, int target, Rng* rng) {
  OODGNN_CHECK_GE(n, target + 2);
  std::set<std::pair<int, int>> edges;
  auto add = [&edges](int u, int v) {
    edges.insert({std::min(u, v), std::max(u, v)});
  };
  // Fan: node 0 is the center, nodes 1..target+1 form the path.
  for (int i = 1; i <= target + 1; ++i) add(0, i);
  for (int i = 1; i <= target; ++i) add(i, i + 1);
  // Attach the remaining nodes as leaves of random earlier nodes.
  for (int v = target + 2; v < n; ++v) {
    add(static_cast<int>(rng->UniformInt(0, v - 1)), v);
  }
  Graph graph = FromEdgeSet(n, edges);
  OODGNN_CHECK_EQ(CountTriangles(graph), target);

  // Try a few random extra edges, keeping only count-preserving ones.
  const int extra_attempts = n / 2;
  for (int a = 0; a < extra_attempts; ++a) {
    const int u = static_cast<int>(rng->UniformInt(0, n - 1));
    const int v = static_cast<int>(rng->UniformInt(0, n - 1));
    if (u == v) continue;
    auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (edges.count(key)) continue;
    edges.insert(key);
    Graph candidate = FromEdgeSet(n, edges);
    if (CountTriangles(candidate) == target) {
      graph = std::move(candidate);
    } else {
      edges.erase(key);
    }
  }
  return graph;
}

Graph GenerateTriangleGraph(int n, int target, Rng* rng) {
  constexpr int kMaxAttempts = 40;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Graph candidate = ErdosRenyiAttempt(n, target, rng);
    if (CountTriangles(candidate) == target) return candidate;
  }
  return ConstructiveFan(n, target, rng);
}

}  // namespace

GraphDataset MakeTrianglesDataset(const TrianglesConfig& config,
                                  uint64_t seed) {
  OODGNN_CHECK_GE(config.train_min_nodes, 4);
  OODGNN_CHECK_GE(config.train_max_nodes,
                  config.num_classes + 2);  // Fallback feasibility.
  OODGNN_CHECK_GE(config.test_max_nodes, config.train_max_nodes);
  Rng rng(seed);

  GraphDataset dataset;
  dataset.name = "TRIANGLES";
  dataset.task_type = TaskType::kMulticlass;
  dataset.num_tasks = config.num_classes;
  dataset.feature_dim = config.max_degree_feature + 1;

  auto generate_split = [&](int count, int min_nodes, int max_nodes,
                            std::vector<size_t>* split) {
    for (int i = 0; i < count; ++i) {
      const int target =
          static_cast<int>(rng.UniformInt(1, config.num_classes));
      const int lo = std::max(min_nodes, target + 2);
      const int n = static_cast<int>(
          rng.UniformInt(lo, std::max(lo, max_nodes)));
      Graph graph = GenerateTriangleGraph(n, target, &rng);
      SetDegreeFeatures(&graph, config.max_degree_feature);
      graph.label = target - 1;
      split->push_back(dataset.graphs.size());
      dataset.graphs.push_back(std::move(graph));
    }
  };

  generate_split(config.num_train, config.train_min_nodes,
                 config.train_max_nodes, &dataset.train_idx);
  generate_split(config.num_valid, config.train_min_nodes,
                 config.train_max_nodes, &dataset.valid_idx);
  // OOD test: sizes up to test_max_nodes (paper: 4–100 vs 4–25).
  generate_split(config.num_test, config.train_min_nodes,
                 config.test_max_nodes, &dataset.test_idx);

  dataset.Validate();
  return dataset;
}

}  // namespace oodgnn
