#ifndef OODGNN_DATA_SPLITS_H_
#define OODGNN_DATA_SPLITS_H_

#include <cstdint>
#include <vector>

#include "src/graph/dataset.h"

namespace oodgnn {

class Rng;

/// Splits `dataset` by graph size: graphs whose node count falls in
/// [train_min, train_max] become train/validation candidates (split
/// `valid_fraction` to validation), everything with node count in
/// [test_min, test_max] and NOT selected for train/valid becomes test.
/// Candidate order is shuffled with `rng`.
void SizeSplit(GraphDataset* dataset, int train_min, int train_max,
               int test_min, int test_max, size_t max_train,
               double valid_fraction, Rng* rng);

/// OGB-style scaffold split: graphs are grouped by Graph::scaffold_id,
/// groups are sorted by size (largest first), and whole groups are
/// assigned greedily to train until `train_fraction` of the graphs is
/// reached, then to validation until `valid_fraction` more, and the
/// remaining (rarest-scaffold) groups to test. This places structurally
/// novel molecules in the test set, as in the paper.
void ScaffoldSplit(GraphDataset* dataset, double train_fraction,
                   double valid_fraction);

/// Random i.i.d. split (fractions of the whole dataset), for contrast
/// experiments.
void RandomSplit(GraphDataset* dataset, double train_fraction,
                 double valid_fraction, Rng* rng);

}  // namespace oodgnn

#endif  // OODGNN_DATA_SPLITS_H_
