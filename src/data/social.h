#ifndef OODGNN_DATA_SOCIAL_H_
#define OODGNN_DATA_SOCIAL_H_

#include <cstdint>

#include "src/graph/dataset.h"

namespace oodgnn {

/// Configuration of the COLLAB substitute: scientific-collaboration
/// ego-networks whose 3-way label is the researcher's field. The three
/// fields produce distinct collaboration topologies (clique sizes and
/// inter-clique densities mimicking High-Energy Physics, Condensed
/// Matter, and Astro Physics), so the discriminative signal is in the
/// local structure while graph *size* shifts between train and test
/// (paper: train on 32–35 nodes, test up to 492).
struct CollabConfig {
  int num_train = 400;
  int num_valid = 100;
  int num_test = 500;

  int train_min_nodes = 32;
  int train_max_nodes = 35;
  int test_max_nodes = 128;  ///< Paper: 492; scaled for CPU budget.

  /// One-hot degree features of width max_degree_feature+1.
  int max_degree_feature = 32;
};

/// Generates the COLLAB-like dataset with a size-based OOD split.
GraphDataset MakeCollabDataset(const CollabConfig& config, uint64_t seed);

}  // namespace oodgnn

#endif  // OODGNN_DATA_SOCIAL_H_
