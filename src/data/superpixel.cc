#include "src/data/superpixel.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace superpixel_internal {
namespace {

struct Point {
  float x;
  float y;
};

/// Stroke templates per digit, as polylines in the unit square
/// (x right, y down). Deliberately simple seven-segment-like shapes:
/// the class signal lives in the stroke topology, which is what the
/// superpixel graph captures.
std::vector<std::vector<Point>> DigitStrokes(int digit) {
  switch (digit) {
    case 0:
      return {{{0.5f, 0.1f}, {0.8f, 0.3f}, {0.8f, 0.7f}, {0.5f, 0.9f},
               {0.2f, 0.7f}, {0.2f, 0.3f}, {0.5f, 0.1f}}};
    case 1:
      return {{{0.35f, 0.25f}, {0.55f, 0.1f}, {0.55f, 0.9f}}};
    case 2:
      return {{{0.2f, 0.3f}, {0.4f, 0.1f}, {0.7f, 0.15f}, {0.8f, 0.35f},
               {0.2f, 0.9f}, {0.8f, 0.9f}}};
    case 3:
      return {{{0.2f, 0.15f}, {0.7f, 0.1f}, {0.8f, 0.3f}, {0.5f, 0.5f},
               {0.8f, 0.7f}, {0.7f, 0.9f}, {0.2f, 0.85f}}};
    case 4:
      return {{{0.65f, 0.9f}, {0.65f, 0.1f}, {0.2f, 0.6f}, {0.85f, 0.6f}}};
    case 5:
      return {{{0.8f, 0.1f}, {0.25f, 0.1f}, {0.2f, 0.5f}, {0.7f, 0.5f},
               {0.8f, 0.7f}, {0.65f, 0.9f}, {0.2f, 0.85f}}};
    case 6:
      return {{{0.7f, 0.1f}, {0.35f, 0.4f}, {0.2f, 0.7f}, {0.5f, 0.9f},
               {0.8f, 0.7f}, {0.5f, 0.5f}, {0.25f, 0.65f}}};
    case 7:
      return {{{0.2f, 0.1f}, {0.8f, 0.1f}, {0.45f, 0.9f}}};
    case 8:
      return {{{0.5f, 0.1f}, {0.75f, 0.25f}, {0.5f, 0.5f}, {0.25f, 0.25f},
               {0.5f, 0.1f}},
              {{0.5f, 0.5f}, {0.8f, 0.7f}, {0.5f, 0.9f}, {0.2f, 0.7f},
               {0.5f, 0.5f}}};
    case 9:
      return {{{0.75f, 0.45f}, {0.45f, 0.55f}, {0.25f, 0.3f}, {0.5f, 0.1f},
               {0.75f, 0.3f}, {0.75f, 0.45f}, {0.6f, 0.9f}}};
    default:
      OODGNN_CHECK(false) << "digit out of range: " << digit;
      return {};
  }
}

float DistanceToSegment(float px, float py, const Point& a, const Point& b) {
  const float dx = b.x - a.x;
  const float dy = b.y - a.y;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.f ? ((px - a.x) * dx + (py - a.y) * dy) / len2 : 0.f;
  t = std::clamp(t, 0.f, 1.f);
  const float cx = a.x + t * dx;
  const float cy = a.y + t * dy;
  return std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
}

}  // namespace

std::vector<float> RenderDigit(int digit, int size, Rng* rng) {
  std::vector<std::vector<Point>> strokes = DigitStrokes(digit);
  // Random affine jitter: translation, scale, and per-point wobble.
  const float scale = static_cast<float>(rng->Uniform(0.85, 1.1));
  const float tx = static_cast<float>(rng->Uniform(-0.06, 0.06));
  const float ty = static_cast<float>(rng->Uniform(-0.06, 0.06));
  for (auto& stroke : strokes) {
    for (Point& p : stroke) {
      p.x = 0.5f + (p.x - 0.5f) * scale + tx +
            static_cast<float>(rng->Normal(0.0, 0.02));
      p.y = 0.5f + (p.y - 0.5f) * scale + ty +
            static_cast<float>(rng->Normal(0.0, 0.02));
    }
  }
  const float thickness = static_cast<float>(rng->Uniform(0.045, 0.075));
  std::vector<float> image(static_cast<size_t>(size) * size, 0.f);
  for (int row = 0; row < size; ++row) {
    for (int col = 0; col < size; ++col) {
      const float px = (static_cast<float>(col) + 0.5f) / size;
      const float py = (static_cast<float>(row) + 0.5f) / size;
      float best = 1e9f;
      for (const auto& stroke : strokes) {
        for (size_t s = 0; s + 1 < stroke.size(); ++s) {
          best = std::min(best,
                          DistanceToSegment(px, py, stroke[s], stroke[s + 1]));
        }
      }
      // Soft falloff from the stroke centerline.
      const float v =
          std::clamp(1.f - (best - thickness) / thickness, 0.f, 1.f);
      image[static_cast<size_t>(row) * size + col] =
          v * static_cast<float>(rng->Uniform(0.8, 1.0));
    }
  }
  return image;
}

std::vector<int> SlicSegment(const std::vector<float>& image, int size,
                             int max_clusters, int* num_clusters) {
  OODGNN_CHECK_EQ(image.size(), static_cast<size_t>(size) * size);
  // Grid-initialize cluster centers.
  const int grid =
      std::max(1, static_cast<int>(std::floor(std::sqrt(
                      static_cast<double>(max_clusters)))));
  struct Center {
    float x, y, v;
    float sx, sy, sv;
    int count;
  };
  std::vector<Center> centers;
  for (int gy = 0; gy < grid; ++gy) {
    for (int gx = 0; gx < grid; ++gx) {
      if (static_cast<int>(centers.size()) >= max_clusters) break;
      Center c{};
      c.x = (gx + 0.5f) * size / grid;
      c.y = (gy + 0.5f) * size / grid;
      c.v = image[static_cast<size_t>(
                std::min(size - 1, static_cast<int>(c.y))) *
                size +
            std::min(size - 1, static_cast<int>(c.x))];
      centers.push_back(c);
    }
  }
  const float step = static_cast<float>(size) / grid;
  const float spatial_weight = 0.25f;  // Relative weight of xy vs value.
  std::vector<int> assignment(image.size(), 0);
  for (int iter = 0; iter < 5; ++iter) {
    for (int row = 0; row < size; ++row) {
      for (int col = 0; col < size; ++col) {
        const float v = image[static_cast<size_t>(row) * size + col];
        float best = 1e18f;
        int best_c = 0;
        for (size_t k = 0; k < centers.size(); ++k) {
          const float dx = (col + 0.5f - centers[k].x) / step;
          const float dy = (row + 0.5f - centers[k].y) / step;
          const float dv = v - centers[k].v;
          const float dist =
              spatial_weight * (dx * dx + dy * dy) + dv * dv;
          if (dist < best) {
            best = dist;
            best_c = static_cast<int>(k);
          }
        }
        assignment[static_cast<size_t>(row) * size + col] = best_c;
      }
    }
    for (Center& c : centers) {
      c.sx = c.sy = c.sv = 0.f;
      c.count = 0;
    }
    for (int row = 0; row < size; ++row) {
      for (int col = 0; col < size; ++col) {
        Center& c = centers[static_cast<size_t>(
            assignment[static_cast<size_t>(row) * size + col])];
        c.sx += col + 0.5f;
        c.sy += row + 0.5f;
        c.sv += image[static_cast<size_t>(row) * size + col];
        ++c.count;
      }
    }
    for (Center& c : centers) {
      if (c.count > 0) {
        c.x = c.sx / c.count;
        c.y = c.sy / c.count;
        c.v = c.sv / c.count;
      }
    }
  }
  // Compact away empty clusters.
  std::vector<int> remap(centers.size(), -1);
  int next = 0;
  for (size_t k = 0; k < centers.size(); ++k) {
    if (centers[k].count > 0) remap[k] = next++;
  }
  for (int& a : assignment) a = remap[static_cast<size_t>(a)];
  *num_clusters = next;
  return assignment;
}

}  // namespace superpixel_internal

namespace {

using superpixel_internal::RenderDigit;
using superpixel_internal::SlicSegment;

Graph BuildSuperpixelGraph(const std::vector<float>& image,
                           const SuperpixelConfig& config) {
  int num_clusters = 0;
  std::vector<int> assignment =
      SlicSegment(image, config.image_size, config.max_superpixels,
                  &num_clusters);
  OODGNN_CHECK_GT(num_clusters, 0);

  // Centroids and mean intensities.
  std::vector<float> cx(static_cast<size_t>(num_clusters), 0.f);
  std::vector<float> cy(static_cast<size_t>(num_clusters), 0.f);
  std::vector<float> cv(static_cast<size_t>(num_clusters), 0.f);
  std::vector<int> count(static_cast<size_t>(num_clusters), 0);
  for (int row = 0; row < config.image_size; ++row) {
    for (int col = 0; col < config.image_size; ++col) {
      const int k =
          assignment[static_cast<size_t>(row) * config.image_size + col];
      cx[static_cast<size_t>(k)] += col + 0.5f;
      cy[static_cast<size_t>(k)] += row + 0.5f;
      cv[static_cast<size_t>(k)] +=
          image[static_cast<size_t>(row) * config.image_size + col];
      ++count[static_cast<size_t>(k)];
    }
  }
  Graph graph(num_clusters, kSuperpixelFeatureDim);
  for (int k = 0; k < num_clusters; ++k) {
    const float n = static_cast<float>(count[static_cast<size_t>(k)]);
    const float intensity = cv[static_cast<size_t>(k)] / n;
    const float x = cx[static_cast<size_t>(k)] / n / config.image_size;
    const float y = cy[static_cast<size_t>(k)] / n / config.image_size;
    graph.x.at(k, 0) = intensity;  // r
    graph.x.at(k, 1) = intensity;  // g
    graph.x.at(k, 2) = intensity;  // b
    graph.x.at(k, 3) = x;
    graph.x.at(k, 4) = y;
    cx[static_cast<size_t>(k)] = x;
    cy[static_cast<size_t>(k)] = y;
  }

  // k-NN edges on centroids (undirected, deduplicated).
  const int k_neighbors = std::min(config.knn, num_clusters - 1);
  for (int a = 0; a < num_clusters; ++a) {
    std::vector<std::pair<float, int>> dists;
    for (int b = 0; b < num_clusters; ++b) {
      if (a == b) continue;
      const float dx = cx[static_cast<size_t>(a)] - cx[static_cast<size_t>(b)];
      const float dy = cy[static_cast<size_t>(a)] - cy[static_cast<size_t>(b)];
      dists.push_back({dx * dx + dy * dy, b});
    }
    std::partial_sort(dists.begin(),
                      dists.begin() + k_neighbors, dists.end());
    for (int i = 0; i < k_neighbors; ++i) {
      const int b = dists[static_cast<size_t>(i)].second;
      if (!graph.HasEdge(a, b)) graph.AddUndirectedEdge(a, b);
    }
  }
  return graph;
}

/// Grayscale noise: one draw per node added to all three channels.
void AddGrayscaleNoise(Graph* graph, float stddev, Rng* rng) {
  for (int v = 0; v < graph->num_nodes(); ++v) {
    const float noise = static_cast<float>(rng->Normal(0.0, stddev));
    for (int c = 0; c < 3; ++c) graph->x.at(v, c) += noise;
  }
}

/// "Colorize": independent noise per channel (the paper's Test(color)).
void AddColorNoise(Graph* graph, float stddev, Rng* rng) {
  for (int v = 0; v < graph->num_nodes(); ++v) {
    for (int c = 0; c < 3; ++c) {
      graph->x.at(v, c) += static_cast<float>(rng->Normal(0.0, stddev));
    }
  }
}

}  // namespace

GraphDataset MakeSuperpixelMnistDataset(const SuperpixelConfig& config,
                                        uint64_t seed) {
  Rng rng(seed);
  GraphDataset dataset;
  dataset.name = "MNIST-75SP";
  dataset.task_type = TaskType::kMulticlass;
  dataset.num_tasks = 10;
  dataset.feature_dim = kSuperpixelFeatureDim;
  dataset.test2_name = "Test(color)";

  auto make_graph = [&](int digit) {
    std::vector<float> image =
        RenderDigit(digit, config.image_size, &rng);
    Graph graph = BuildSuperpixelGraph(image, config);
    graph.label = digit;
    return graph;
  };

  for (int i = 0; i < config.num_train; ++i) {
    dataset.train_idx.push_back(dataset.graphs.size());
    dataset.graphs.push_back(make_graph(i % 10));
  }
  for (int i = 0; i < config.num_valid; ++i) {
    dataset.valid_idx.push_back(dataset.graphs.size());
    dataset.graphs.push_back(make_graph(i % 10));
  }
  for (int i = 0; i < config.num_test; ++i) {
    const int digit = i % 10;
    // Test(noise) and Test(color) perturb copies of the same clean
    // graph, matching the paper's construction.
    Graph clean = make_graph(digit);
    Graph noisy = clean;
    AddGrayscaleNoise(&noisy, config.noise_stddev, &rng);
    dataset.test_idx.push_back(dataset.graphs.size());
    dataset.graphs.push_back(std::move(noisy));

    Graph colored = clean;
    AddColorNoise(&colored, config.noise_stddev, &rng);
    dataset.test2_idx.push_back(dataset.graphs.size());
    dataset.graphs.push_back(std::move(colored));
  }

  dataset.Validate();
  return dataset;
}

}  // namespace oodgnn
