#include "src/data/splits.h"

#include <algorithm>
#include <map>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {

void SizeSplit(GraphDataset* dataset, int train_min, int train_max,
               int test_min, int test_max, size_t max_train,
               double valid_fraction, Rng* rng) {
  OODGNN_CHECK(dataset != nullptr);
  OODGNN_CHECK_LE(train_min, train_max);
  OODGNN_CHECK_LE(test_min, test_max);
  dataset->train_idx.clear();
  dataset->valid_idx.clear();
  dataset->test_idx.clear();

  std::vector<size_t> small;
  for (size_t i = 0; i < dataset->graphs.size(); ++i) {
    const int n = dataset->graphs[i].num_nodes();
    if (n >= train_min && n <= train_max) small.push_back(i);
  }
  rng->Shuffle(&small);

  const size_t num_train_valid = std::min(small.size(), max_train);
  const size_t num_valid = static_cast<size_t>(
      valid_fraction * static_cast<double>(num_train_valid));
  for (size_t i = 0; i < num_train_valid; ++i) {
    if (i < num_valid) {
      dataset->valid_idx.push_back(small[i]);
    } else {
      dataset->train_idx.push_back(small[i]);
    }
  }

  std::vector<bool> used(dataset->graphs.size(), false);
  for (size_t i = 0; i < num_train_valid; ++i) used[small[i]] = true;
  for (size_t i = 0; i < dataset->graphs.size(); ++i) {
    const int n = dataset->graphs[i].num_nodes();
    if (!used[i] && n >= test_min && n <= test_max) {
      dataset->test_idx.push_back(i);
    }
  }
}

void ScaffoldSplit(GraphDataset* dataset, double train_fraction,
                   double valid_fraction) {
  OODGNN_CHECK(dataset != nullptr);
  OODGNN_CHECK(train_fraction > 0 && valid_fraction >= 0 &&
               train_fraction + valid_fraction < 1.0);
  dataset->train_idx.clear();
  dataset->valid_idx.clear();
  dataset->test_idx.clear();

  std::map<int64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < dataset->graphs.size(); ++i) {
    groups[dataset->graphs[i].scaffold_id].push_back(i);
  }
  std::vector<const std::vector<size_t>*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [id, members] : groups) ordered.push_back(&members);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const std::vector<size_t>* a,
                      const std::vector<size_t>* b) {
                     return a->size() > b->size();
                   });

  const size_t total = dataset->graphs.size();
  const size_t train_cutoff =
      static_cast<size_t>(train_fraction * static_cast<double>(total));
  const size_t valid_cutoff = static_cast<size_t>(
      (train_fraction + valid_fraction) * static_cast<double>(total));
  size_t assigned = 0;
  for (const std::vector<size_t>* group : ordered) {
    std::vector<size_t>* target = nullptr;
    if (assigned < train_cutoff) {
      target = &dataset->train_idx;
    } else if (assigned < valid_cutoff) {
      target = &dataset->valid_idx;
    } else {
      target = &dataset->test_idx;
    }
    target->insert(target->end(), group->begin(), group->end());
    assigned += group->size();
  }
}

void RandomSplit(GraphDataset* dataset, double train_fraction,
                 double valid_fraction, Rng* rng) {
  OODGNN_CHECK(dataset != nullptr);
  std::vector<size_t> order = rng->Permutation(dataset->graphs.size());
  const size_t total = order.size();
  const size_t train_cutoff =
      static_cast<size_t>(train_fraction * static_cast<double>(total));
  const size_t valid_cutoff = static_cast<size_t>(
      (train_fraction + valid_fraction) * static_cast<double>(total));
  dataset->train_idx.assign(order.begin(), order.begin() + train_cutoff);
  dataset->valid_idx.assign(order.begin() + train_cutoff,
                            order.begin() + valid_cutoff);
  dataset->test_idx.assign(order.begin() + valid_cutoff, order.end());
}

}  // namespace oodgnn
