#ifndef OODGNN_DATA_MOLECULE_H_
#define OODGNN_DATA_MOLECULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/dataset.h"

namespace oodgnn {

class Rng;

/// Node-feature width of molecule graphs: one-hot atom type (8)
/// + one-hot degree bucket 1..4+ (4) + in-ring flag (1).
inline constexpr int kMoleculeFeatureDim = 13;

/// Number of functional-group motifs the generator can attach
/// (hydroxyl, amine, carboxyl, halogen, alkyl chain, nitro).
inline constexpr int kNumFunctionalGroups = 6;

/// Specification of one OGBG-MOL*-like dataset. The generator samples
/// molecules as decorated ring-system scaffolds; labels are functions
/// of functional-group motif counts (the invariant signal), while each
/// scaffold template carries its own motif-attachment propensities —
/// so motifs (and hence labels) correlate with scaffold identity in
/// distribution, and the correlation breaks on the scaffold-disjoint
/// test split. This reproduces the spurious-correlation mechanism the
/// paper targets (Fig. 1c).
struct MoleculeDatasetSpec {
  std::string name = "BACE";
  int num_graphs = 600;
  int num_tasks = 1;
  TaskType task_type = TaskType::kBinary;

  /// Fraction of (graph, task) labels masked as missing (OGB style).
  double missing_label_fraction = 0.0;

  /// Scaffold pool size; popularity is Zipf-distributed so the
  /// frequency-sorted scaffold split isolates rare scaffolds in test.
  int num_scaffolds = 40;

  /// Ring-system size range of scaffolds (controls molecule size).
  int min_rings = 1;
  int max_rings = 2;

  /// Probability of growing an extra plain alkyl chain per attach
  /// point (controls molecule size without adding label signal).
  double extra_chain_prob = 0.2;

  /// Seed offset so every dataset has its own label functions.
  uint64_t label_seed = 0;
};

/// Returns the spec for one of the paper's nine OGB datasets
/// ("TOX21", "BACE", "BBBP", "CLINTOX", "SIDER", "TOXCAST", "HIV",
/// "ESOL", "FREESOLV"), with graph counts multiplied by `scale`
/// (1.0 ≈ the fast default; paper-sized needs ~5–10).
MoleculeDatasetSpec GetOgbMoleculeSpec(const std::string& name,
                                       double scale = 1.0);

/// Names of all nine datasets in Table 4 order.
std::vector<std::string> OgbMoleculeNames();

/// Generates the dataset with the OGB scaffold split (8/1/1).
GraphDataset MakeMoleculeDataset(const MoleculeDatasetSpec& spec,
                                 uint64_t seed);

}  // namespace oodgnn

#endif  // OODGNN_DATA_MOLECULE_H_
