#include "src/data/social.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

/// Per-field collaboration style. Cliques model papers: every coauthor
/// pair of a paper is connected in the ego-network.
struct FieldProfile {
  int min_clique;
  int max_clique;
  double inter_clique_prob;  ///< Cross-paper collaboration density.
};

FieldProfile ProfileFor(int field) {
  switch (field) {
    // High Energy Physics: very large author lists, tight cliques.
    case 0:
      return {8, 14, 0.01};
    // Condensed Matter: medium-sized groups, some cross links.
    case 1:
      return {4, 7, 0.04};
    // Astro Physics: small papers, many loose cross links.
    default:
      return {2, 4, 0.12};
  }
}

void SetDegreeFeatures(Graph* graph, int max_degree_feature) {
  std::vector<int> degrees = graph->InDegrees();
  graph->x = Tensor(graph->num_nodes(), max_degree_feature + 1);
  for (int v = 0; v < graph->num_nodes(); ++v) {
    graph->x.at(v, std::min(degrees[static_cast<size_t>(v)],
                            max_degree_feature)) = 1.f;
  }
}

Graph GenerateEgoNetwork(int n, int field, Rng* rng) {
  const FieldProfile profile = ProfileFor(field);
  std::set<std::pair<int, int>> edges;
  auto add = [&edges](int u, int v) {
    if (u != v) edges.insert({std::min(u, v), std::max(u, v)});
  };

  // Node 0 is the ego, connected to every co-author.
  for (int v = 1; v < n; ++v) add(0, v);

  // Partition co-authors into paper cliques of field-dependent size.
  int v = 1;
  while (v < n) {
    const int clique = static_cast<int>(
        rng->UniformInt(profile.min_clique, profile.max_clique));
    const int end = std::min(n, v + clique);
    for (int a = v; a < end; ++a) {
      for (int b = a + 1; b < end; ++b) add(a, b);
    }
    v = end;
  }

  // Sparse cross-paper collaborations.
  for (int a = 1; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng->Bernoulli(profile.inter_clique_prob)) add(a, b);
    }
  }

  Graph graph(n, 1);
  for (const auto& [a, b] : edges) graph.AddUndirectedEdge(a, b);
  return graph;
}

}  // namespace

GraphDataset MakeCollabDataset(const CollabConfig& config, uint64_t seed) {
  OODGNN_CHECK_GE(config.train_min_nodes, 16);
  OODGNN_CHECK_GE(config.test_max_nodes, config.train_max_nodes);
  Rng rng(seed);

  GraphDataset dataset;
  dataset.name = "COLLAB";
  dataset.task_type = TaskType::kMulticlass;
  dataset.num_tasks = 3;
  dataset.feature_dim = config.max_degree_feature + 1;

  auto generate_split = [&](int count, int min_nodes, int max_nodes,
                            std::vector<size_t>* split) {
    for (int i = 0; i < count; ++i) {
      const int field = i % 3;
      const int n =
          static_cast<int>(rng.UniformInt(min_nodes, max_nodes));
      Graph graph = GenerateEgoNetwork(n, field, &rng);
      SetDegreeFeatures(&graph, config.max_degree_feature);
      graph.label = field;
      split->push_back(dataset.graphs.size());
      dataset.graphs.push_back(std::move(graph));
    }
  };

  generate_split(config.num_train, config.train_min_nodes,
                 config.train_max_nodes, &dataset.train_idx);
  generate_split(config.num_valid, config.train_min_nodes,
                 config.train_max_nodes, &dataset.valid_idx);
  generate_split(config.num_test, config.train_min_nodes,
                 config.test_max_nodes, &dataset.test_idx);

  dataset.Validate();
  return dataset;
}

}  // namespace oodgnn
