#include "src/data/protein.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

constexpr int kResidueCategories = 3;  // hydrophobic / polar / charged

struct EdgeSet {
  std::set<std::pair<int, int>> edges;
  void Add(int u, int v) {
    if (u != v) edges.insert({std::min(u, v), std::max(u, v)});
  }
};

/// Backbone + secondary-structure scaffold common to both classes.
void BuildBackbone(int n, Rng* rng, EdgeSet* es) {
  for (int i = 0; i + 1 < n; ++i) es->Add(i, i + 1);
  // Helices: stretches with (i, i+3) and (i, i+4) contacts.
  int i = 0;
  while (i + 5 < n) {
    if (rng->Bernoulli(0.3)) {
      const int len = static_cast<int>(rng->UniformInt(4, 8));
      const int end = std::min(n - 1, i + len);
      for (int j = i; j + 3 <= end; ++j) es->Add(j, j + 3);
      i = end + 1;
    } else {
      ++i;
    }
  }
  // Sheets: two strands with rung contacts.
  if (n >= 12 && rng->Bernoulli(0.5)) {
    const int len = static_cast<int>(rng->UniformInt(3, 5));
    const int a = static_cast<int>(rng->UniformInt(0, n / 2 - len));
    const int b = static_cast<int>(rng->UniformInt(n / 2, n - len));
    for (int k = 0; k < len; ++k) es->Add(a + k, b + len - 1 - k);
  }
}

/// Enzyme motif: a "catalytic pocket" wheel — a hub residue in contact
/// with a 6-ring (triangle-rich).
void AddEnzymeMotif(int n, Rng* rng, EdgeSet* es) {
  if (n < 8) {  // Tiny protein: minimal pocket = triangle.
    es->Add(0, 2);
    if (n >= 4) es->Add(1, 3);
    return;
  }
  std::vector<size_t> perm = rng->Permutation(static_cast<size_t>(n));
  std::vector<int> ring(perm.begin(), perm.begin() + 6);
  const int hub = static_cast<int>(perm[6]);
  for (int k = 0; k < 6; ++k) {
    es->Add(ring[static_cast<size_t>(k)],
            ring[static_cast<size_t>((k + 1) % 6)]);
    es->Add(hub, ring[static_cast<size_t>(k)]);
  }
}

/// Non-enzyme motif: a chordless 8-ring (triangle-free barrel).
void AddStructuralMotif(int n, Rng* rng, EdgeSet* es) {
  if (n < 8) {
    es->Add(0, n - 1);  // Close the backbone into a loop.
    return;
  }
  std::vector<size_t> perm = rng->Permutation(static_cast<size_t>(n));
  for (int k = 0; k < 8; ++k) {
    es->Add(static_cast<int>(perm[static_cast<size_t>(k)]),
            static_cast<int>(perm[static_cast<size_t>((k + 1) % 8)]));
  }
}

Graph GenerateProtein(int n, int label, int residues_per_motif, Rng* rng) {
  EdgeSet es;
  BuildBackbone(n, rng, &es);
  const int num_motifs = std::max(1, n / residues_per_motif);
  std::vector<bool> motif_node(static_cast<size_t>(n), false);
  for (int m = 0; m < num_motifs; ++m) {
    const size_t before = es.edges.size();
    if (label == 1) {
      AddEnzymeMotif(n, rng, &es);
    } else {
      AddStructuralMotif(n, rng, &es);
    }
    (void)before;
  }

  Graph graph(n, kResidueCategories);
  for (const auto& [u, v] : es.edges) graph.AddUndirectedEdge(u, v);

  // Residue categories: mostly uniform; high-degree (motif-touching)
  // residues skew toward the "charged" category, providing a weak
  // feature channel consistent with the structural signal.
  std::vector<int> degrees = graph.InDegrees();
  for (int v = 0; v < n; ++v) {
    int category;
    if (degrees[static_cast<size_t>(v)] >= 4 && rng->Bernoulli(0.5)) {
      category = 2;
    } else {
      category = static_cast<int>(rng->UniformInt(0, kResidueCategories - 1));
    }
    graph.x.at(v, category) = 1.f;
  }
  return graph;
}

/// Training-size sampler with a label-dependent skew: with probability
/// `correlation`, class 1 draws from the upper half of the range and
/// class 0 from the lower half.
int SampleTrainSize(int lo, int hi, int label, double correlation,
                    Rng* rng) {
  const int mid = (lo + hi) / 2;
  if (rng->Bernoulli(correlation)) {
    return label == 1
               ? static_cast<int>(rng->UniformInt(mid, hi))
               : static_cast<int>(rng->UniformInt(lo, std::max(lo, mid - 1)));
  }
  return static_cast<int>(rng->UniformInt(lo, hi));
}

}  // namespace

ProteinConfig Proteins25Config() {
  ProteinConfig config;
  config.name = "PROTEINS_25";
  config.num_train = 400;
  config.num_valid = 100;
  config.num_test = 400;
  config.train_min_nodes = 6;
  config.train_max_nodes = 25;
  config.test_min_nodes = 26;
  config.test_max_nodes = 200;
  return config;
}

ProteinConfig Dd200Config() {
  ProteinConfig config;
  config.name = "DD_200";
  config.num_train = 300;
  config.num_valid = 80;
  config.num_test = 250;
  config.train_min_nodes = 30;
  config.train_max_nodes = 200;
  config.test_min_nodes = 201;
  config.test_max_nodes = 800;
  return config;
}

ProteinConfig Dd300Config() {
  ProteinConfig config;
  config.name = "DD_300";
  config.num_train = 300;
  config.num_valid = 80;
  config.num_test = 250;
  config.train_min_nodes = 30;
  config.train_max_nodes = 300;
  // DD_300's paper split tests on the full 30–5748 range.
  config.test_min_nodes = 30;
  config.test_max_nodes = 800;
  return config;
}

GraphDataset MakeProteinDataset(const ProteinConfig& config, uint64_t seed) {
  OODGNN_CHECK_GE(config.train_min_nodes, 4);
  OODGNN_CHECK(config.size_label_correlation >= 0.0 &&
               config.size_label_correlation < 1.0);
  Rng rng(seed);

  GraphDataset dataset;
  dataset.name = config.name;
  dataset.task_type = TaskType::kMulticlass;
  dataset.num_tasks = 2;
  dataset.feature_dim = kResidueCategories;

  auto add_graph = [&](int n, int label, std::vector<size_t>* split) {
    Graph graph = GenerateProtein(n, label, config.residues_per_motif, &rng);
    graph.label = label;
    split->push_back(dataset.graphs.size());
    dataset.graphs.push_back(std::move(graph));
  };

  for (int i = 0; i < config.num_train + config.num_valid; ++i) {
    const int label = i % 2;
    const int n = SampleTrainSize(config.train_min_nodes,
                                  config.train_max_nodes, label,
                                  config.size_label_correlation, &rng);
    add_graph(n, label,
              i < config.num_train ? &dataset.train_idx
                                   : &dataset.valid_idx);
  }
  // Test: sizes uniform over the (larger) test range, no correlation.
  for (int i = 0; i < config.num_test; ++i) {
    const int label = i % 2;
    const int n = static_cast<int>(
        rng.UniformInt(config.test_min_nodes, config.test_max_nodes));
    add_graph(n, label, &dataset.test_idx);
  }

  dataset.Validate();
  return dataset;
}

}  // namespace oodgnn
