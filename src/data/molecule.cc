#include "src/data/molecule.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/data/splits.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {
namespace {

// Atom type ids used in the one-hot feature block.
enum AtomType { kC = 0, kN, kO, kF, kS, kCl, kP, kBr, kNumAtomTypes };

static_assert(kNumAtomTypes == 8, "feature layout assumes 8 atom types");

/// A molecule under construction: atoms, bonds, ring membership and the
/// motif counts that drive the label functions.
struct MoleculeBuilder {
  std::vector<int> atom_types;
  std::vector<std::pair<int, int>> bonds;
  std::vector<bool> in_ring;
  std::vector<int> motif_counts = std::vector<int>(kNumFunctionalGroups, 0);
  int num_hetero = 0;

  int AddAtom(int type, bool ring) {
    atom_types.push_back(type);
    in_ring.push_back(ring);
    if (type != kC) ++num_hetero;
    return static_cast<int>(atom_types.size()) - 1;
  }
  void AddBond(int u, int v) { bonds.push_back({u, v}); }
  int size() const { return static_cast<int>(atom_types.size()); }
};

/// A reusable scaffold template: ring-system structure plus
/// functional-group attachment propensities (the source of the
/// scaffold↔motif spurious correlation).
struct ScaffoldTemplate {
  std::vector<int> atom_types;
  std::vector<std::pair<int, int>> bonds;
  std::vector<int> attach_points;
  std::vector<double> group_propensity;  // kNumFunctionalGroups entries
};

// Functional groups 0–2 (hydroxyl, amine, carboxyl) are *causal*: the
// label functions read only their counts. Groups 3–5 (halogen, alkyl,
// nitro) are *decoys*: they never enter the label, but on common
// (train-dominated) scaffolds their attachment propensity is aligned
// with the causal polarity, so in distribution they predict the label
// almost as well as the causal groups. On rare (test-heavy) scaffolds
// the alignment is broken — the classic spurious-correlation trap of
// Fig. 1c that OOD-GNN's decorrelation is designed to escape.
constexpr int kNumCausalGroups = 3;

ScaffoldTemplate GenerateScaffold(int min_rings, int max_rings,
                                  bool common_scaffold, Rng* rng) {
  ScaffoldTemplate scaffold;
  const int num_rings =
      static_cast<int>(rng->UniformInt(min_rings, max_rings));
  int previous_ring_atom = -1;
  for (int r = 0; r < num_rings; ++r) {
    const int ring_size = rng->Bernoulli(0.7) ? 6 : 5;
    const int base = static_cast<int>(scaffold.atom_types.size());
    for (int i = 0; i < ring_size; ++i) {
      // Ring atoms: mostly carbon with occasional N/O/S substitution.
      int type = kC;
      if (rng->Bernoulli(0.2)) {
        const int hetero[] = {kN, kO, kS};
        type = hetero[rng->UniformInt(0, 2)];
      }
      scaffold.atom_types.push_back(type);
      scaffold.attach_points.push_back(base + i);
    }
    for (int i = 0; i < ring_size; ++i) {
      scaffold.bonds.push_back({base + i, base + (i + 1) % ring_size});
    }
    if (previous_ring_atom >= 0) {
      // Link to the previous ring through 0–2 linker carbons.
      const int linker = static_cast<int>(rng->UniformInt(0, 2));
      int from = previous_ring_atom;
      for (int l = 0; l < linker; ++l) {
        scaffold.atom_types.push_back(kC);
        const int atom = static_cast<int>(scaffold.atom_types.size()) - 1;
        scaffold.bonds.push_back({from, atom});
        from = atom;
      }
      scaffold.bonds.push_back({from, base});
    }
    previous_ring_atom =
        base + static_cast<int>(rng->UniformInt(0, ring_size - 1));
  }
  // Polarized propensities: a scaffold is either rich or poor in the
  // causal groups (its "polarity"), creating strong scaffold↔motif
  // correlation. Decoy-group propensities follow the polarity on
  // common scaffolds and are independent on rare ones.
  scaffold.group_propensity.resize(kNumFunctionalGroups);
  const bool causal_rich = rng->Bernoulli(0.5);
  auto rich = [rng] { return rng->Uniform(0.4, 0.75); };
  auto poor = [rng] { return rng->Uniform(0.0, 0.06); };
  for (int g = 0; g < kNumCausalGroups; ++g) {
    scaffold.group_propensity[static_cast<size_t>(g)] =
        causal_rich ? rich() : poor();
  }
  for (int g = kNumCausalGroups; g < kNumFunctionalGroups; ++g) {
    const bool decoy_rich =
        common_scaffold ? causal_rich : rng->Bernoulli(0.5);
    scaffold.group_propensity[static_cast<size_t>(g)] =
        decoy_rich ? rich() : poor();
  }
  return scaffold;
}

/// Attaches functional group `group` at scaffold atom `anchor`.
void AttachGroup(int group, int anchor, MoleculeBuilder* mol, Rng* rng) {
  switch (group) {
    case 0: {  // Hydroxyl: -O
      const int o = mol->AddAtom(kO, false);
      mol->AddBond(anchor, o);
      break;
    }
    case 1: {  // Amine: -N
      const int n = mol->AddAtom(kN, false);
      mol->AddBond(anchor, n);
      break;
    }
    case 2: {  // Carboxyl: -C(=O)O
      const int c = mol->AddAtom(kC, false);
      const int o1 = mol->AddAtom(kO, false);
      const int o2 = mol->AddAtom(kO, false);
      mol->AddBond(anchor, c);
      mol->AddBond(c, o1);
      mol->AddBond(c, o2);
      break;
    }
    case 3: {  // Halogen: -F or -Cl or -Br
      const int types[] = {kF, kCl, kBr};
      const int x = mol->AddAtom(types[rng->UniformInt(0, 2)], false);
      mol->AddBond(anchor, x);
      break;
    }
    case 4: {  // Alkyl chain: 1–3 carbons
      int from = anchor;
      const int len = static_cast<int>(rng->UniformInt(1, 3));
      for (int i = 0; i < len; ++i) {
        const int c = mol->AddAtom(kC, false);
        mol->AddBond(from, c);
        from = c;
      }
      break;
    }
    case 5: {  // Nitro: -N(O)O
      const int n = mol->AddAtom(kN, false);
      const int o1 = mol->AddAtom(kO, false);
      const int o2 = mol->AddAtom(kO, false);
      mol->AddBond(anchor, n);
      mol->AddBond(n, o1);
      mol->AddBond(n, o2);
      break;
    }
    default:
      OODGNN_CHECK(false) << "unknown functional group " << group;
  }
  ++mol->motif_counts[static_cast<size_t>(group)];
}

MoleculeBuilder BuildMolecule(const ScaffoldTemplate& scaffold,
                              double extra_chain_prob, Rng* rng) {
  MoleculeBuilder mol;
  for (int type : scaffold.atom_types) mol.AddAtom(type, true);
  for (const auto& [u, v] : scaffold.bonds) mol.AddBond(u, v);

  for (int anchor : scaffold.attach_points) {
    for (int g = 0; g < kNumFunctionalGroups; ++g) {
      if (rng->Bernoulli(scaffold.group_propensity[static_cast<size_t>(g)] /
                         2.0)) {
        AttachGroup(g, anchor, &mol, rng);
      }
    }
    if (rng->Bernoulli(extra_chain_prob)) {
      // Plain chain with no motif bookkeeping: size filler only.
      int from = anchor;
      const int len = static_cast<int>(rng->UniformInt(1, 2));
      for (int i = 0; i < len; ++i) {
        const int c = mol.AddAtom(kC, false);
        mol.AddBond(from, c);
        from = c;
      }
    }
  }
  return mol;
}

Graph ToGraph(const MoleculeBuilder& mol) {
  Graph graph(mol.size(), kMoleculeFeatureDim);
  for (const auto& [u, v] : mol.bonds) graph.AddUndirectedEdge(u, v);
  std::vector<int> degrees = graph.InDegrees();
  for (int v = 0; v < mol.size(); ++v) {
    graph.x.at(v, mol.atom_types[static_cast<size_t>(v)]) = 1.f;
    const int bucket =
        std::clamp(degrees[static_cast<size_t>(v)], 1, 4) - 1;
    graph.x.at(v, kNumAtomTypes + bucket) = 1.f;
    graph.x.at(v, kNumAtomTypes + 4) =
        mol.in_ring[static_cast<size_t>(v)] ? 1.f : 0.f;
  }
  return graph;
}

}  // namespace

MoleculeDatasetSpec GetOgbMoleculeSpec(const std::string& name,
                                       double scale) {
  MoleculeDatasetSpec spec;
  spec.name = name;
  auto sized = [scale](int n) {
    return std::max(120, static_cast<int>(n * scale));
  };
  if (name == "TOX21") {
    spec.num_graphs = sized(1000);
    spec.num_tasks = 12;
    spec.missing_label_fraction = 0.2;
    spec.min_rings = 1;
    spec.max_rings = 2;
    spec.label_seed = 101;
  } else if (name == "BACE") {
    spec.num_graphs = sized(500);
    spec.num_tasks = 1;
    spec.min_rings = 2;
    spec.max_rings = 3;
    spec.extra_chain_prob = 0.5;
    spec.label_seed = 102;
  } else if (name == "BBBP") {
    spec.num_graphs = sized(700);
    spec.num_tasks = 1;
    spec.min_rings = 1;
    spec.max_rings = 2;
    spec.label_seed = 103;
  } else if (name == "CLINTOX") {
    spec.num_graphs = sized(500);
    spec.num_tasks = 2;
    spec.min_rings = 1;
    spec.max_rings = 2;
    spec.label_seed = 104;
  } else if (name == "SIDER") {
    spec.num_graphs = sized(500);
    spec.num_tasks = 27;
    spec.missing_label_fraction = 0.1;
    spec.min_rings = 1;
    spec.max_rings = 3;
    spec.label_seed = 105;
  } else if (name == "TOXCAST") {
    spec.num_graphs = sized(1000);
    spec.num_tasks = 12;
    spec.missing_label_fraction = 0.3;
    spec.min_rings = 1;
    spec.max_rings = 2;
    spec.label_seed = 106;
  } else if (name == "HIV") {
    spec.num_graphs = sized(1600);
    spec.num_tasks = 1;
    spec.min_rings = 1;
    spec.max_rings = 3;
    spec.extra_chain_prob = 0.3;
    spec.num_scaffolds = 60;
    spec.label_seed = 107;
  } else if (name == "ESOL") {
    spec.num_graphs = sized(500);
    spec.num_tasks = 1;
    spec.task_type = TaskType::kRegression;
    spec.min_rings = 1;
    spec.max_rings = 2;
    spec.label_seed = 108;
  } else if (name == "FREESOLV") {
    spec.num_graphs = sized(350);
    spec.num_tasks = 1;
    spec.task_type = TaskType::kRegression;
    spec.min_rings = 1;
    spec.max_rings = 1;
    spec.extra_chain_prob = 0.1;
    spec.label_seed = 109;
  } else {
    OODGNN_CHECK(false) << "unknown OGB dataset " << name;
  }
  return spec;
}

std::vector<std::string> OgbMoleculeNames() {
  return {"TOX21",   "BACE", "BBBP", "CLINTOX", "SIDER",
          "TOXCAST", "HIV",  "ESOL", "FREESOLV"};
}

GraphDataset MakeMoleculeDataset(const MoleculeDatasetSpec& spec,
                                 uint64_t seed) {
  OODGNN_CHECK_GT(spec.num_graphs, 0);
  OODGNN_CHECK_GT(spec.num_scaffolds, 1);
  Rng rng(seed);

  // Scaffold pool (deterministic given the seed).
  std::vector<ScaffoldTemplate> pool;
  pool.reserve(static_cast<size_t>(spec.num_scaffolds));
  for (int s = 0; s < spec.num_scaffolds; ++s) {
    // Low indices get high Zipf popularity and therefore dominate the
    // train split; treat the top 60% as "common" (aligned decoys).
    const bool common_scaffold = s < spec.num_scaffolds * 3 / 5;
    pool.push_back(GenerateScaffold(spec.min_rings, spec.max_rings,
                                    common_scaffold, &rng));
  }
  // Zipf popularity: common scaffolds dominate the (train-side of the)
  // dataset; rare ones end up in the test split.
  std::vector<double> popularity(static_cast<size_t>(spec.num_scaffolds));
  for (int s = 0; s < spec.num_scaffolds; ++s) {
    popularity[static_cast<size_t>(s)] = 1.0 / (1.0 + s);
  }

  GraphDataset dataset;
  dataset.name = spec.name;
  dataset.task_type = spec.task_type;
  dataset.num_tasks = spec.num_tasks;
  dataset.feature_dim = kMoleculeFeatureDim;

  // Task-specific label functions: weights over motif counts plus a
  // small heteroatom term. Seeded independently of molecule sampling so
  // every dataset has stable semantics.
  Rng label_rng(spec.label_seed * 7919 + 13);
  std::vector<std::vector<double>> alpha(
      static_cast<size_t>(spec.num_tasks),
      std::vector<double>(kNumFunctionalGroups));
  std::vector<double> beta(static_cast<size_t>(spec.num_tasks));
  for (int t = 0; t < spec.num_tasks; ++t) {
    // Labels read causal groups only; decoy groups get zero weight.
    for (int g = 0; g < kNumCausalGroups; ++g) {
      alpha[static_cast<size_t>(t)][static_cast<size_t>(g)] =
          label_rng.Normal(0.0, 1.0);
    }
    beta[static_cast<size_t>(t)] = label_rng.Normal(0.0, 0.2);
  }

  // Generate molecules and raw task scores.
  std::vector<std::vector<double>> scores(
      static_cast<size_t>(spec.num_graphs),
      std::vector<double>(static_cast<size_t>(spec.num_tasks)));
  for (int i = 0; i < spec.num_graphs; ++i) {
    const int scaffold_id = static_cast<int>(rng.Categorical(popularity));
    MoleculeBuilder mol = BuildMolecule(
        pool[static_cast<size_t>(scaffold_id)], spec.extra_chain_prob, &rng);
    Graph graph = ToGraph(mol);
    graph.scaffold_id = scaffold_id;
    for (int t = 0; t < spec.num_tasks; ++t) {
      double score = beta[static_cast<size_t>(t)] * mol.num_hetero;
      for (int g = 0; g < kNumFunctionalGroups; ++g) {
        score += alpha[static_cast<size_t>(t)][static_cast<size_t>(g)] *
                 mol.motif_counts[static_cast<size_t>(g)];
      }
      score += rng.Normal(0.0, 0.3);
      scores[static_cast<size_t>(i)][static_cast<size_t>(t)] = score;
    }
    dataset.graphs.push_back(std::move(graph));
  }

  // Convert scores to labels: median-thresholded binary tasks or
  // z-scored regression targets.
  for (int t = 0; t < spec.num_tasks; ++t) {
    std::vector<double> column(static_cast<size_t>(spec.num_graphs));
    for (int i = 0; i < spec.num_graphs; ++i) {
      column[static_cast<size_t>(i)] =
          scores[static_cast<size_t>(i)][static_cast<size_t>(t)];
    }
    std::vector<double> sorted = column;
    std::nth_element(sorted.begin(),
                     sorted.begin() + sorted.size() / 2, sorted.end());
    const double median = sorted[sorted.size() / 2];
    double mean = 0.0;
    for (double v : column) mean += v;
    mean /= static_cast<double>(column.size());
    double var = 0.0;
    for (double v : column) var += (v - mean) * (v - mean);
    const double stddev =
        std::sqrt(var / static_cast<double>(column.size())) + 1e-9;

    for (int i = 0; i < spec.num_graphs; ++i) {
      Graph& graph = dataset.graphs[static_cast<size_t>(i)];
      if (t == 0) {
        graph.targets.assign(static_cast<size_t>(spec.num_tasks), 0.f);
        graph.target_mask.assign(static_cast<size_t>(spec.num_tasks), 1.f);
      }
      const double raw = column[static_cast<size_t>(i)];
      if (spec.task_type == TaskType::kBinary) {
        graph.targets[static_cast<size_t>(t)] = raw > median ? 1.f : 0.f;
        if (spec.missing_label_fraction > 0.0 &&
            rng.Bernoulli(spec.missing_label_fraction)) {
          graph.target_mask[static_cast<size_t>(t)] = 0.f;
        }
      } else {
        graph.targets[static_cast<size_t>(t)] =
            static_cast<float>((raw - mean) / stddev);
      }
    }
  }

  ScaffoldSplit(&dataset, 0.8, 0.1);
  dataset.Validate();
  return dataset;
}

}  // namespace oodgnn
