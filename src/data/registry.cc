#include "src/data/registry.h"

#include <algorithm>
#include <cmath>

#include "src/data/molecule.h"
#include "src/data/protein.h"
#include "src/data/social.h"
#include "src/data/superpixel.h"
#include "src/data/triangles.h"
#include "src/util/check.h"

namespace oodgnn {
namespace {

int Scaled(int n, double scale) {
  return std::max(40, static_cast<int>(std::lround(n * scale)));
}

}  // namespace

GraphDataset MakeDatasetByName(const std::string& name, double scale,
                               uint64_t seed) {
  if (name == "TRIANGLES") {
    TrianglesConfig config;
    config.num_train = Scaled(config.num_train, scale);
    config.num_valid = Scaled(config.num_valid, scale);
    config.num_test = Scaled(config.num_test, scale);
    return MakeTrianglesDataset(config, seed);
  }
  if (name == "MNIST-75SP") {
    SuperpixelConfig config;
    config.num_train = Scaled(config.num_train, scale);
    config.num_valid = Scaled(config.num_valid, scale);
    config.num_test = Scaled(config.num_test, scale);
    return MakeSuperpixelMnistDataset(config, seed);
  }
  if (name == "COLLAB") {
    CollabConfig config;
    config.num_train = Scaled(config.num_train, scale);
    config.num_valid = Scaled(config.num_valid, scale);
    config.num_test = Scaled(config.num_test, scale);
    return MakeCollabDataset(config, seed);
  }
  if (name == "PROTEINS_25" || name == "DD_200" || name == "DD_300") {
    ProteinConfig config = name == "PROTEINS_25" ? Proteins25Config()
                           : name == "DD_200"    ? Dd200Config()
                                                 : Dd300Config();
    config.num_train = Scaled(config.num_train, scale);
    config.num_valid = Scaled(config.num_valid, scale);
    config.num_test = Scaled(config.num_test, scale);
    return MakeProteinDataset(config, seed);
  }
  const std::vector<std::string> ogb = OgbMoleculeNames();
  if (std::find(ogb.begin(), ogb.end(), name) != ogb.end()) {
    return MakeMoleculeDataset(GetOgbMoleculeSpec(name, scale), seed);
  }
  OODGNN_CHECK(false) << "unknown dataset: " << name;
  return GraphDataset();
}

std::vector<std::string> AllDatasetNames() {
  std::vector<std::string> names = {"TRIANGLES",   "MNIST-75SP", "COLLAB",
                                    "PROTEINS_25", "DD_200",     "DD_300"};
  for (const std::string& ogb : OgbMoleculeNames()) names.push_back(ogb);
  return names;
}

}  // namespace oodgnn
