#ifndef OODGNN_DATA_REGISTRY_H_
#define OODGNN_DATA_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/dataset.h"

namespace oodgnn {

/// Builds the named benchmark dataset:
///   "TRIANGLES", "MNIST-75SP", "COLLAB", "PROTEINS_25", "DD_200",
///   "DD_300", or one of the nine OGB names ("TOX21" … "FREESOLV").
/// `scale` multiplies the default graph counts (1.0 = fast default,
/// larger approaches paper-sized splits). Deterministic in `seed`.
GraphDataset MakeDatasetByName(const std::string& name, double scale,
                               uint64_t seed);

/// Every dataset name in Table-1 order (2 synthetic, 4 size-split,
/// 9 OGB).
std::vector<std::string> AllDatasetNames();

}  // namespace oodgnn

#endif  // OODGNN_DATA_REGISTRY_H_
