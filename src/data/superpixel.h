#ifndef OODGNN_DATA_SUPERPIXEL_H_
#define OODGNN_DATA_SUPERPIXEL_H_

#include <cstdint>
#include <vector>

#include "src/graph/dataset.h"

namespace oodgnn {

class Rng;

/// Configuration of the MNIST-75SP substitute: procedurally drawn
/// digit-stroke rasters are segmented into SLIC superpixels, which
/// become graph nodes connected by spatial k-NN edges. Features are
/// three color channels plus normalized centroid coordinates; the OOD
/// test splits perturb the features exactly as the paper describes
/// (grayscale Gaussian noise / independent per-channel "color" noise)
/// while graph structure is untouched.
struct SuperpixelConfig {
  int num_train = 600;
  int num_valid = 120;
  /// Each test split gets this many graphs (Test(noise) and
  /// Test(color) are generated from the same clean originals).
  int num_test = 150;

  int image_size = 28;
  int max_superpixels = 75;
  int knn = 8;
  /// Feature-noise standard deviation (paper: N(0, 0.4)).
  float noise_stddev = 0.4f;
};

/// Node-feature layout of superpixel graphs.
/// [r, g, b, x/size, y/size]; clean graphs have r = g = b = intensity.
inline constexpr int kSuperpixelFeatureDim = 5;

/// Generates the dataset: train/valid clean, test = Test(noise),
/// test2 = Test(color). Deterministic in `seed`.
GraphDataset MakeSuperpixelMnistDataset(const SuperpixelConfig& config,
                                        uint64_t seed);

namespace superpixel_internal {

/// Renders a 10-class digit-stroke raster (row-major, size×size,
/// intensities in [0,1]). Exposed for tests.
std::vector<float> RenderDigit(int digit, int size, Rng* rng);

/// SLIC-style segmentation: returns per-pixel cluster ids in
/// [0, num_clusters) and writes the cluster count.
std::vector<int> SlicSegment(const std::vector<float>& image, int size,
                             int max_clusters, int* num_clusters);

}  // namespace superpixel_internal
}  // namespace oodgnn

#endif  // OODGNN_DATA_SUPERPIXEL_H_
