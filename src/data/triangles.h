#ifndef OODGNN_DATA_TRIANGLES_H_
#define OODGNN_DATA_TRIANGLES_H_

#include <cstdint>

#include "src/graph/dataset.h"

namespace oodgnn {

/// Configuration of the TRIANGLES benchmark (Knyazev et al. 2019 /
/// paper §4.1.2): random graphs whose label is their exact triangle
/// count (1–10); training graphs are small, test graphs extend to much
/// larger sizes, giving a pure size distribution shift.
struct TrianglesConfig {
  /// Per-split graph counts. The paper uses 3000/500/500; defaults are
  /// scaled down so the fast benchmark mode finishes on one CPU core.
  int num_train = 600;
  int num_valid = 120;
  int num_test = 200;

  /// Size ranges: train/valid within [train_min, train_max] nodes, test
  /// within [train_min, test_max] (paper: 4–25 vs 4–100).
  int train_min_nodes = 4;
  int train_max_nodes = 25;
  int test_max_nodes = 100;

  /// Labels are 1..num_classes triangles (class id = count − 1).
  int num_classes = 10;

  /// One-hot degree features of width max_degree_feature+1 (degrees are
  /// clamped into the last bucket).
  int max_degree_feature = 16;
};

/// Generates the dataset. Deterministic in `seed`. Every graph's label
/// is validated against the exact triangle counter.
GraphDataset MakeTrianglesDataset(const TrianglesConfig& config,
                                  uint64_t seed);

}  // namespace oodgnn

#endif  // OODGNN_DATA_TRIANGLES_H_
