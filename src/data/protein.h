#ifndef OODGNN_DATA_PROTEIN_H_
#define OODGNN_DATA_PROTEIN_H_

#include <cstdint>
#include <string>

#include "src/graph/dataset.h"

namespace oodgnn {

/// Configuration of the PROTEINS/D&D substitutes: protein-like contact
/// graphs (a backbone chain plus helix/sheet contacts) with a binary
/// enzyme/non-enzyme label carried by structural motifs. Training sizes
/// are restricted and mildly correlated with the label, test graphs are
/// strictly larger and uncorrelated — reproducing both the paper's size
/// shift and the size→label spurious correlation that OOD-GNN is
/// designed to break.
struct ProteinConfig {
  std::string name = "PROTEINS_25";
  int num_train = 400;
  int num_valid = 100;
  int num_test = 400;

  int train_min_nodes = 4;
  int train_max_nodes = 25;
  int test_min_nodes = 26;
  int test_max_nodes = 200;  ///< Paper: up to 620 (PROTEINS) / 5748 (D&D).

  /// Strength of the in-distribution size↔label correlation in
  /// [0, 1): with value s, class-1 training proteins are drawn from the
  /// upper (1−s…1] quantile range of sizes more often.
  double size_label_correlation = 0.6;

  /// One motif per this many residues (so the signal density does not
  /// vanish on large test proteins).
  int residues_per_motif = 40;
};

/// Ready-made configs matching the paper's four size-split benchmarks.
ProteinConfig Proteins25Config();
ProteinConfig Dd200Config();
ProteinConfig Dd300Config();

/// Generates a protein-like dataset with the paper's size-based split.
GraphDataset MakeProteinDataset(const ProteinConfig& config, uint64_t seed);

}  // namespace oodgnn

#endif  // OODGNN_DATA_PROTEIN_H_
