#include "src/core/hsic.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/util/check.h"

namespace oodgnn {
namespace {

/// Gaussian Gram matrix of a scalar sample, then double-centered:
/// HKH with H = I − 11ᵀ/N. Row-partitioned: every stage writes disjoint
/// rows (or reduces within a row), so results are backend-invariant.
std::vector<double> CenteredGram(const Tensor& x, double bandwidth) {
  const int n = x.rows();
  std::vector<double> gram(static_cast<size_t>(n) * n);
  const double inv = 1.0 / (2.0 * bandwidth * bandwidth);
  const Backend& be = GetBackend();
  be.ForCost(n, 8ll * n * n, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      for (int j = 0; j < n; ++j) {
        const double d = static_cast<double>(x.at(i, 0)) - x.at(j, 0);
        gram[static_cast<size_t>(i) * n + j] = std::exp(-d * d * inv);
      }
    }
  });
  // Double centering: per-row means in parallel, the scalar total mean
  // serially (fixed association order).
  std::vector<double> row_mean(static_cast<size_t>(n), 0.0);
  be.ForCost(n, static_cast<std::int64_t>(n) * n, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (int j = 0; j < n; ++j) acc += gram[static_cast<size_t>(i) * n + j];
      row_mean[static_cast<size_t>(i)] = acc / n;
    }
  });
  double total_mean = 0.0;
  for (int i = 0; i < n; ++i) total_mean += row_mean[static_cast<size_t>(i)];
  total_mean /= n;
  be.ForCost(n, static_cast<std::int64_t>(n) * n, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      for (int j = 0; j < n; ++j) {
        gram[static_cast<size_t>(i) * n + j] +=
            total_mean - row_mean[static_cast<size_t>(i)] -
            row_mean[static_cast<size_t>(j)];
      }
    }
  });
  return gram;
}

}  // namespace

double MedianBandwidth(const Tensor& x) {
  const int n = x.rows();
  std::vector<double> dists;
  dists.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d =
          std::fabs(static_cast<double>(x.at(i, 0)) - x.at(j, 0));
      if (d > 0) dists.push_back(d);
    }
  }
  if (dists.empty()) return 1.0;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double median = dists[dists.size() / 2];
  return median > 1e-12 ? median : 1.0;
}

double ExactHsic(const Tensor& x, const Tensor& y, double bandwidth) {
  OODGNN_TRACE_SCOPE("core/hsic_exact");
  OODGNN_CHECK_EQ(x.cols(), 1);
  OODGNN_CHECK_EQ(y.cols(), 1);
  OODGNN_CHECK_EQ(x.rows(), y.rows());
  const int n = x.rows();
  OODGNN_CHECK_GT(n, 1);

  const double bx = bandwidth > 0 ? bandwidth : MedianBandwidth(x);
  const double by = bandwidth > 0 ? bandwidth : MedianBandwidth(y);
  std::vector<double> kx = CenteredGram(x, bx);
  std::vector<double> ky = CenteredGram(y, by);

  // trace(Kx_centered · Ky_centered) = Σ_ij Kx[i,j]·Ky[j,i]; both are
  // symmetric, so an element-wise product sum suffices. Per-row partial
  // sums run in parallel; the final row-major sum is serial so the
  // association order is fixed.
  std::vector<double> row_trace(static_cast<size_t>(n), 0.0);
  GetBackend().ForCost(n, 2ll * n * n, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (int j = 0; j < n; ++j) {
        const size_t idx = static_cast<size_t>(i) * n + j;
        acc += kx[idx] * ky[idx];
      }
      row_trace[static_cast<size_t>(i)] = acc;
    }
  });
  double trace = 0.0;
  for (int i = 0; i < n; ++i) trace += row_trace[static_cast<size_t>(i)];
  const double denom = static_cast<double>(n - 1) * (n - 1);
  return trace / denom;
}

double ExactPairwiseHsic(const Tensor& z, double bandwidth) {
  OODGNN_TRACE_SCOPE("core/hsic_pairwise");
  const int d = z.cols();
  const int n = z.rows();
  // Materialize the dimension-pair list, score every pair independently
  // (each pair builds two n×n Grams — embarrassingly parallel), then sum
  // serially in the serial loop's (i, j) order.
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(d) * (d - 1) / 2);
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) pairs.emplace_back(i, j);
  }
  std::vector<double> pair_hsic(pairs.size(), 0.0);
  const std::int64_t per_pair_cost = 16ll * n * n;
  GetBackend().ForCost(
      static_cast<int>(pairs.size()),
      per_pair_cost * static_cast<std::int64_t>(pairs.size()),
      [&](int p0, int p1) {
        for (int p = p0; p < p1; ++p) {
          const auto [i, j] = pairs[static_cast<size_t>(p)];
          Tensor xi(n, 1);
          Tensor xj(n, 1);
          for (int r = 0; r < n; ++r) {
            xi.at(r, 0) = z.at(r, i);
            xj.at(r, 0) = z.at(r, j);
          }
          pair_hsic[static_cast<size_t>(p)] = ExactHsic(xi, xj, bandwidth);
        }
      });
  double total = 0.0;
  for (double v : pair_hsic) total += v;
  return total;
}

}  // namespace oodgnn
