#include "src/core/hsic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/check.h"

namespace oodgnn {
namespace {

/// Gaussian Gram matrix of a scalar sample, then double-centered:
/// HKH with H = I − 11ᵀ/N.
std::vector<double> CenteredGram(const Tensor& x, double bandwidth) {
  const int n = x.rows();
  std::vector<double> gram(static_cast<size_t>(n) * n);
  const double inv = 1.0 / (2.0 * bandwidth * bandwidth);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double d = static_cast<double>(x.at(i, 0)) - x.at(j, 0);
      gram[static_cast<size_t>(i) * n + j] = std::exp(-d * d * inv);
    }
  }
  // Double centering.
  std::vector<double> row_mean(static_cast<size_t>(n), 0.0);
  double total_mean = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      row_mean[static_cast<size_t>(i)] += gram[static_cast<size_t>(i) * n + j];
    }
    row_mean[static_cast<size_t>(i)] /= n;
    total_mean += row_mean[static_cast<size_t>(i)];
  }
  total_mean /= n;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      gram[static_cast<size_t>(i) * n + j] +=
          total_mean - row_mean[static_cast<size_t>(i)] -
          row_mean[static_cast<size_t>(j)];
    }
  }
  return gram;
}

}  // namespace

double MedianBandwidth(const Tensor& x) {
  const int n = x.rows();
  std::vector<double> dists;
  dists.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d =
          std::fabs(static_cast<double>(x.at(i, 0)) - x.at(j, 0));
      if (d > 0) dists.push_back(d);
    }
  }
  if (dists.empty()) return 1.0;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double median = dists[dists.size() / 2];
  return median > 1e-12 ? median : 1.0;
}

double ExactHsic(const Tensor& x, const Tensor& y, double bandwidth) {
  OODGNN_CHECK_EQ(x.cols(), 1);
  OODGNN_CHECK_EQ(y.cols(), 1);
  OODGNN_CHECK_EQ(x.rows(), y.rows());
  const int n = x.rows();
  OODGNN_CHECK_GT(n, 1);

  const double bx = bandwidth > 0 ? bandwidth : MedianBandwidth(x);
  const double by = bandwidth > 0 ? bandwidth : MedianBandwidth(y);
  std::vector<double> kx = CenteredGram(x, bx);
  std::vector<double> ky = CenteredGram(y, by);

  // trace(Kx_centered · Ky_centered) = Σ_ij Kx[i,j]·Ky[j,i]; both are
  // symmetric, so an element-wise product sum suffices.
  double trace = 0.0;
  for (size_t i = 0; i < kx.size(); ++i) trace += kx[i] * ky[i];
  const double denom = static_cast<double>(n - 1) * (n - 1);
  return trace / denom;
}

double ExactPairwiseHsic(const Tensor& z, double bandwidth) {
  const int d = z.cols();
  double total = 0.0;
  for (int i = 0; i < d; ++i) {
    Tensor xi(z.rows(), 1);
    for (int r = 0; r < z.rows(); ++r) xi.at(r, 0) = z.at(r, i);
    for (int j = i + 1; j < d; ++j) {
      Tensor xj(z.rows(), 1);
      for (int r = 0; r < z.rows(); ++r) xj.at(r, 0) = z.at(r, j);
      total += ExactHsic(xi, xj, bandwidth);
    }
  }
  return total;
}

}  // namespace oodgnn
