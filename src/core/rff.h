#ifndef OODGNN_CORE_RFF_H_
#define OODGNN_CORE_RFF_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {

class Rng;

/// Configuration of the random-Fourier-feature map of Eq. (4).
struct RffConfig {
  /// Number of random Fourier functions per representation dimension
  /// (the Q of Eq. 4). The paper uses Q=1 by default and sweeps
  /// {0.2x … 2x} in the Fig. 2 ablation.
  int num_functions = 1;

  /// Fraction of representation dimensions included in the dependence
  /// measure (the "0.2x/0.5x" points of Fig. 2). 1.0 keeps all.
  float dim_fraction = 1.f;

  /// Ablation "no RFF": skip the Fourier map entirely so the objective
  /// degenerates to removing *linear* correlation only.
  bool linear_only = false;
};

/// The per-dimension random Fourier feature map
///   h_q(x) = sqrt(2)·cos(w_q·x + φ_q),  w_q ~ N(0,1), φ_q ~ U(0,2π),
/// applied independently to every (selected) column of a representation
/// matrix. Frozen at construction so the same map is used across
/// training iterations.
class RffFeatureMap {
 public:
  /// Builds a map for representations with `input_dim` columns.
  RffFeatureMap(int input_dim, const RffConfig& config, Rng* rng);

  /// Transforms Z [N, input_dim] into features [N, num_features()],
  /// laid out as Q consecutive columns per selected input dimension.
  Tensor Transform(const Tensor& z) const;

  /// Total output feature columns (#selected dims × Q, or #selected
  /// dims in linear mode).
  int num_features() const {
    return static_cast<int>(feature_source_dim_.size());
  }

  /// For each output column, the input dimension it derives from. Used
  /// to exclude same-dimension pairs from the dependence objective.
  const std::vector<int>& feature_source_dim() const {
    return feature_source_dim_;
  }

  int input_dim() const { return input_dim_; }
  bool linear_only() const { return config_.linear_only; }

 private:
  int input_dim_;
  RffConfig config_;
  std::vector<int> selected_dims_;
  std::vector<int> feature_source_dim_;
  std::vector<float> omega_;  ///< One frequency per output column.
  std::vector<float> phase_;  ///< One phase per output column.
};

}  // namespace oodgnn

#endif  // OODGNN_CORE_RFF_H_
