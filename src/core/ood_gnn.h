#ifndef OODGNN_CORE_OOD_GNN_H_
#define OODGNN_CORE_OOD_GNN_H_

#include <memory>
#include <vector>

#include "src/core/rff.h"
#include "src/core/weight_bank.h"
#include "src/core/weight_optimizer.h"

namespace oodgnn {

class Rng;

/// Hyper-parameters of the OOD-GNN reweighting machinery (everything in
/// §3.2–3.3 beyond the encoder itself).
struct OodGnnConfig {
  RffConfig rff;
  WeightOptimizerConfig weights;
  /// Number K of global memory groups (paper default 1).
  int num_global_groups = 1;
  /// Ablation switch: with false, weights are learned from the local
  /// mini-batch alone (no memory bank, no momentum update) — the
  /// "straightforward alternative" §3.3 argues against.
  bool use_global_bank = true;
  /// Momentum coefficient γ of the global updates (paper default 0.9).
  float momentum = 0.9f;
  /// Optional epochs trained with uniform weights before reweighting
  /// kicks in. Default 0: reweighting from the first epoch performed
  /// best in our sweeps (see EXPERIMENTS.md).
  int warmup_epochs = 0;
};

/// The sample-reweighting half of OOD-GNN (Algorithm 1 lines 3–8 & 10):
/// given the (detached) representations of a mini-batch it learns local
/// weights against the global memory bank and applies the momentum
/// update. The caller (the trainer) plugs the returned weights into the
/// weighted prediction loss of Eq. (6).
class OodGnnReweighter {
 public:
  /// `representation_dim` is d (the encoder output width), `batch_size`
  /// the training mini-batch size |B|.
  OodGnnReweighter(int representation_dim, int batch_size,
                   const OodGnnConfig& config, Rng* rng);

  /// Runs the inner optimization of Eq. (10) on `local_z` [B, d]
  /// (constants — detach encoder outputs first) and momentum-updates
  /// the bank. Returns one weight per row, mean 1.
  std::vector<float> ComputeWeights(const Tensor& local_z);

  /// Decorrelation loss after the most recent inner optimization.
  double last_decorrelation_loss() const { return last_loss_; }

  const GlobalWeightBank& bank() const { return bank_; }

  /// Mutable bank access for checkpoint restore (GlobalWeightBank::
  /// RestoreGroups); training code must not mutate the bank directly.
  GlobalWeightBank* mutable_bank() { return &bank_; }
  const RffFeatureMap& rff() const { return rff_; }
  const OodGnnConfig& config() const { return config_; }

 private:
  OodGnnConfig config_;
  RffFeatureMap rff_;
  GlobalWeightBank bank_;
  GraphWeightOptimizer optimizer_;
  double last_loss_ = 0.0;
};

}  // namespace oodgnn

#endif  // OODGNN_CORE_OOD_GNN_H_
