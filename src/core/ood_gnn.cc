#include "src/core/ood_gnn.h"

#include "src/obs/trace.h"
#include "src/tensor/arena.h"
#include "src/tensor/exec_plan.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {

OodGnnReweighter::OodGnnReweighter(int representation_dim, int batch_size,
                                   const OodGnnConfig& config, Rng* rng)
    : config_(config),
      rff_(representation_dim, config.rff, rng),
      bank_(GlobalWeightBank::WithUniformGamma(config.num_global_groups,
                                               batch_size, representation_dim,
                                               config.momentum)),
      optimizer_(config.weights) {}

std::vector<float> OodGnnReweighter::ComputeWeights(const Tensor& local_z) {
  OODGNN_TRACE_SCOPE("core/compute_weights");
  OODGNN_CHECK_EQ(local_z.cols(), rff_.input_dim());
  // The inner Adam loop's allocation pattern is data-dependent
  // (conditional best-iterate copies, weight-bank initialization) and
  // the bank's groups persist across steps, so this region cannot run
  // inside a compiled-train plan: suspend any active record/replay
  // scope and, under compiled execution, serve its tensors from the
  // thread's dynamic arena instead (still zero steady-state heap
  // allocations after the first batch).
  ScopedDynamicArena plan_guard(CompiledEnabled() || CompiledTrainEnabled());
  if (local_z.rows() < 2) {
    // A single-sample batch carries no pairwise dependence signal.
    return std::vector<float>(static_cast<size_t>(local_z.rows()), 1.f);
  }
  const GlobalWeightBank* bank =
      config_.use_global_bank ? &bank_ : nullptr;
  WeightOptimizerResult result = optimizer_.Optimize(local_z, rff_, bank);
  last_loss_ = result.final_loss;

  if (config_.use_global_bank) {
    Tensor local_w(local_z.rows(), 1);
    for (int i = 0; i < local_z.rows(); ++i) {
      local_w.at(i, 0) = result.weights[static_cast<size_t>(i)];
    }
    bank_.Update(local_z, local_w);
  }
  return result.weights;
}

}  // namespace oodgnn
