#ifndef OODGNN_CORE_HSIC_H_
#define OODGNN_CORE_HSIC_H_

#include "src/tensor/tensor.h"

namespace oodgnn {

/// Exact (biased) empirical Hilbert-Schmidt Independence Criterion
/// between two scalar samples x and y (each an N×1 column) with
/// Gaussian kernels:
///   HSIC(x, y) = trace(K H L H) / (N−1)²,  H = I − 11ᵀ/N.
/// O(N²) time and memory — this is the estimator the paper deems
/// infeasible for training on large datasets (§3.2); the library uses
/// it as the ground-truth reference that the RFF approximation is
/// validated against (see tests/core_test.cc and bench_kernels).
///
/// `bandwidth` is the Gaussian kernel σ; pass <= 0 to use the median
/// heuristic.
double ExactHsic(const Tensor& x, const Tensor& y, double bandwidth = -1.0);

/// Sum of exact pairwise HSIC over all dimension pairs i<j of a
/// representation matrix Z [N, d] — the exact counterpart of
/// DependenceMeasure. O(d²·N²).
double ExactPairwiseHsic(const Tensor& z, double bandwidth = -1.0);

/// Median pairwise distance of a scalar sample (the classic bandwidth
/// heuristic). Returns 1 for degenerate samples.
double MedianBandwidth(const Tensor& x);

}  // namespace oodgnn

#endif  // OODGNN_CORE_HSIC_H_
