#ifndef OODGNN_CORE_WEIGHT_OPTIMIZER_H_
#define OODGNN_CORE_WEIGHT_OPTIMIZER_H_

#include <vector>

#include "src/core/rff.h"
#include "src/core/weight_bank.h"
#include "src/tensor/tensor.h"

namespace oodgnn {

/// Hyper-parameters of the inner weight-learning loop (Eq. 10 /
/// Algorithm 1 line 7).
struct WeightOptimizerConfig {
  /// Inner iterations (Epoch_Reweight; the paper uses 20).
  int epochs_reweight = 20;

  /// Learning rate of the inner (Adam) optimizer over the weights.
  /// Needs to be large enough for the weights to move substantially
  /// within epochs_reweight iterations.
  float lr = 0.1f;

  /// ℓ2 penalty on the weights "to prevent degenerated solutions"
  /// (paper §4.1.3), applied as l2_penalty · mean(w²) so its strength
  /// is independent of the batch size.
  float l2_penalty = 0.05f;

  /// Weights are projected into [0, clamp_max] after every step and
  /// rescaled so their mean stays 1 (Σ_n w_n = N constraint).
  float clamp_max = 10.f;
};

/// Result of one inner optimization.
struct WeightOptimizerResult {
  /// Optimized local weights, one per local sample (mean 1, ≥ 0).
  std::vector<float> weights;
  /// Pure decorrelation loss (Eq. 7's objective, excluding the ℓ2
  /// regularizer) before the first and after the last step.
  double initial_loss = 0.0;
  double final_loss = 0.0;
};

/// Learns the local sample weights W^(l) that minimize the weighted
/// decorrelation objective over the concatenation of the global memory
/// bank and the local batch (Eqs. 8 and 10). The representations are
/// treated as constants (the encoder is frozen during this step).
class GraphWeightOptimizer {
 public:
  explicit GraphWeightOptimizer(const WeightOptimizerConfig& config)
      : config_(config) {}

  /// Optimizes weights for `local_z` [B, d]. If `bank` is non-null and
  /// initialized, its groups participate (with constant weights) in the
  /// objective; the bank itself is NOT updated here (the caller decides
  /// when to call GlobalWeightBank::Update).
  WeightOptimizerResult Optimize(const Tensor& local_z,
                                 const RffFeatureMap& rff,
                                 const GlobalWeightBank* bank) const;

  const WeightOptimizerConfig& config() const { return config_; }

 private:
  WeightOptimizerConfig config_;
};

}  // namespace oodgnn

#endif  // OODGNN_CORE_WEIGHT_OPTIMIZER_H_
