#include "src/core/dependence.h"

#include <cstdint>
#include <vector>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/util/check.h"

namespace oodgnn {

Tensor PairwiseDependenceMatrix(const Tensor& z, const RffFeatureMap& rff) {
  OODGNN_TRACE_SCOPE("core/dependence_matrix");
  OODGNN_CHECK_EQ(z.cols(), rff.input_dim());
  const int n = z.rows();
  OODGNN_CHECK_GT(n, 1);
  const Tensor features = rff.Transform(z);
  const int m = features.cols();
  const std::vector<int>& source = rff.feature_source_dim();
  const Backend& be = GetBackend();

  // Column means of the (uniformly weighted) features; each column sums
  // over samples in ascending-row order on every backend.
  std::vector<double> mean(static_cast<size_t>(m), 0.0);
  be.ForCost(m, static_cast<std::int64_t>(n) * m, [&](int c0, int c1) {
    for (int c = c0; c < c1; ++c) {
      double acc = 0.0;
      for (int r = 0; r < n; ++r) acc += features.at(r, c);
      mean[static_cast<size_t>(c)] = acc / n;
    }
  });

  // Full covariance of the centered features, upper triangle; rows of
  // the covariance are independent, so the O(n·d²) contraction — the
  // decorrelation bottleneck of Eqs. 3–5 — partitions over them.
  Tensor cov(m, m);
  be.ForCost(m, 2ll * n * m * m, [&](int a0, int a1) {
    for (int a = a0; a < a1; ++a) {
      for (int r = 0; r < n; ++r) {
        const float* row = features.row(r);
        const double da = row[a] - mean[static_cast<size_t>(a)];
        for (int b = a; b < m; ++b) {
          const double db = row[b] - mean[static_cast<size_t>(b)];
          cov.at(a, b) += static_cast<float>(da * db);
        }
      }
    }
  });
  const float denom = static_cast<float>(n - 1);
  be.ForCost(m, static_cast<std::int64_t>(m) * m, [&](int a0, int a1) {
    for (int a = a0; a < a1; ++a) {
      for (int b = a; b < m; ++b) {
        cov.at(a, b) /= denom;
        cov.at(b, a) = cov.at(a, b);
      }
    }
  });

  // Accumulate squared covariance entries into per-dimension-pair cells.
  // Partitioned over *output* rows (source dimensions): each chunk scans
  // all feature pairs and keeps only those landing in its rows, so a
  // cell's accumulation order is ascending (a, b) regardless of chunking.
  Tensor dependence(rff.input_dim(), rff.input_dim());
  be.ForCost(rff.input_dim(), 2ll * m * m, [&](int i0, int i1) {
    for (int a = 0; a < m; ++a) {
      const int i = source[static_cast<size_t>(a)];
      if (i < i0 || i >= i1) continue;
      for (int b = 0; b < m; ++b) {
        const int j = source[static_cast<size_t>(b)];
        if (i == j) continue;
        dependence.at(i, j) += cov.at(a, b) * cov.at(a, b);
      }
    }
  });
  return dependence;
}

DependenceSummary SummarizeDependence(const Tensor& z,
                                      const RffFeatureMap& rff) {
  Tensor matrix = PairwiseDependenceMatrix(z, rff);
  DependenceSummary summary;
  for (int i = 0; i < matrix.rows(); ++i) {
    for (int j = i + 1; j < matrix.cols(); ++j) {
      const double v = matrix.at(i, j);
      summary.total += v;
      if (v > summary.max_pair) {
        summary.max_pair = v;
        summary.max_i = i;
        summary.max_j = j;
      }
    }
  }
  return summary;
}

}  // namespace oodgnn
