#include "src/core/dependence.h"

#include "src/util/check.h"

namespace oodgnn {

Tensor PairwiseDependenceMatrix(const Tensor& z, const RffFeatureMap& rff) {
  OODGNN_CHECK_EQ(z.cols(), rff.input_dim());
  const int n = z.rows();
  OODGNN_CHECK_GT(n, 1);
  const Tensor features = rff.Transform(z);
  const int m = features.cols();
  const std::vector<int>& source = rff.feature_source_dim();

  // Column means of the (uniformly weighted) features.
  std::vector<double> mean(static_cast<size_t>(m), 0.0);
  for (int r = 0; r < n; ++r) {
    const float* row = features.row(r);
    for (int c = 0; c < m; ++c) mean[static_cast<size_t>(c)] += row[c];
  }
  for (double& v : mean) v /= n;

  // Full covariance of the centered features.
  Tensor cov(m, m);
  for (int r = 0; r < n; ++r) {
    const float* row = features.row(r);
    for (int a = 0; a < m; ++a) {
      const double da = row[a] - mean[static_cast<size_t>(a)];
      for (int b = a; b < m; ++b) {
        const double db = row[b] - mean[static_cast<size_t>(b)];
        cov.at(a, b) += static_cast<float>(da * db);
      }
    }
  }
  const float denom = static_cast<float>(n - 1);
  for (int a = 0; a < m; ++a) {
    for (int b = a; b < m; ++b) {
      cov.at(a, b) /= denom;
      cov.at(b, a) = cov.at(a, b);
    }
  }

  // Accumulate squared covariance entries into per-dimension-pair cells.
  Tensor dependence(rff.input_dim(), rff.input_dim());
  for (int a = 0; a < m; ++a) {
    for (int b = 0; b < m; ++b) {
      const int i = source[static_cast<size_t>(a)];
      const int j = source[static_cast<size_t>(b)];
      if (i == j) continue;
      dependence.at(i, j) += cov.at(a, b) * cov.at(a, b);
    }
  }
  return dependence;
}

DependenceSummary SummarizeDependence(const Tensor& z,
                                      const RffFeatureMap& rff) {
  Tensor matrix = PairwiseDependenceMatrix(z, rff);
  DependenceSummary summary;
  for (int i = 0; i < matrix.rows(); ++i) {
    for (int j = i + 1; j < matrix.cols(); ++j) {
      const double v = matrix.at(i, j);
      summary.total += v;
      if (v > summary.max_pair) {
        summary.max_pair = v;
        summary.max_i = i;
        summary.max_j = j;
      }
    }
  }
  return summary;
}

}  // namespace oodgnn
