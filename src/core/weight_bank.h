#ifndef OODGNN_CORE_WEIGHT_BANK_H_
#define OODGNN_CORE_WEIGHT_BANK_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {

/// The global-local weight estimator's memory (Eqs. 8–9): K groups of
/// global representations Z^(g_k) ∈ R^{B×d} and weights W^(g_k) ∈ R^B,
/// refreshed by per-group momentum updates from the optimized local
/// batch. Groups with a large γ act as long-term memory, small γ as
/// short-term memory.
class GlobalWeightBank {
 public:
  /// Creates K empty groups for batches of `batch_size` representations
  /// of width `dim`, with per-group momentum coefficients `gammas`
  /// (size K, each in [0,1)).
  GlobalWeightBank(int batch_size, int dim, std::vector<float> gammas);

  /// Convenience: K groups with momenta spread geometrically from
  /// `base_gamma` (K=1 reproduces the paper's single-γ setup).
  static GlobalWeightBank WithUniformGamma(int num_groups, int batch_size,
                                           int dim, float base_gamma);

  int num_groups() const { return static_cast<int>(gammas_.size()); }
  int batch_size() const { return batch_size_; }
  int dim() const { return dim_; }

  /// True once the groups hold data (first Update seeds them).
  bool initialized() const { return initialized_; }

  /// Group accessors (valid only when initialized).
  const Tensor& z(int group) const;
  const Tensor& w(int group) const;

  /// Per-group momentum coefficients (size K).
  const std::vector<float>& gammas() const { return gammas_; }

  /// Raw group snapshots for checkpointing. Entries are empty tensors
  /// until the first Update seeds the bank.
  const std::vector<Tensor>& z_groups() const { return z_groups_; }
  const std::vector<Tensor>& w_groups() const { return w_groups_; }

  /// Restores groups captured by a checkpoint. When `initialized`, each
  /// z must be [batch_size, dim] and each w [batch_size, 1] with exactly
  /// K groups; otherwise all groups must be empty. Returns false
  /// (leaving the bank untouched) on any mismatch.
  bool RestoreGroups(std::vector<Tensor> z, std::vector<Tensor> w,
                     bool initialized);

  /// Stacks all K groups: Z [K·B, d] and W [K·B, 1]. Empty tensors when
  /// uninitialized.
  Tensor StackedZ() const;
  Tensor StackedW() const;

  /// Momentum update (Eq. 9) from the optimized local representations
  /// [B, d] and weights [B, 1]. The first call seeds every group with
  /// the local values. Calls with a mismatched row count (e.g. a final
  /// partial batch) are ignored.
  void Update(const Tensor& local_z, const Tensor& local_w);

 private:
  int batch_size_;
  int dim_;
  std::vector<float> gammas_;
  std::vector<Tensor> z_groups_;
  std::vector<Tensor> w_groups_;
  bool initialized_ = false;
};

}  // namespace oodgnn

#endif  // OODGNN_CORE_WEIGHT_BANK_H_
