#include "src/core/weight_bank.h"

#include <cmath>

#include "src/util/check.h"

namespace oodgnn {

GlobalWeightBank::GlobalWeightBank(int batch_size, int dim,
                                   std::vector<float> gammas)
    : batch_size_(batch_size), dim_(dim), gammas_(std::move(gammas)) {
  OODGNN_CHECK_GT(batch_size, 0);
  OODGNN_CHECK_GT(dim, 0);
  OODGNN_CHECK(!gammas_.empty());
  for (float g : gammas_) {
    OODGNN_CHECK(g >= 0.f && g < 1.f) << "momentum must be in [0,1)";
  }
  z_groups_.assign(gammas_.size(), Tensor());
  w_groups_.assign(gammas_.size(), Tensor());
}

GlobalWeightBank GlobalWeightBank::WithUniformGamma(int num_groups,
                                                    int batch_size, int dim,
                                                    float base_gamma) {
  OODGNN_CHECK_GT(num_groups, 0);
  std::vector<float> gammas;
  gammas.reserve(static_cast<size_t>(num_groups));
  // Spread momenta geometrically below base_gamma so additional groups
  // act as progressively shorter-term memories (K=1 -> {base_gamma}).
  for (int k = 0; k < num_groups; ++k) {
    gammas.push_back(base_gamma *
                     std::pow(0.7f, static_cast<float>(k)));
  }
  return GlobalWeightBank(batch_size, dim, std::move(gammas));
}

const Tensor& GlobalWeightBank::z(int group) const {
  OODGNN_CHECK(initialized_);
  OODGNN_CHECK(group >= 0 && group < num_groups());
  return z_groups_[static_cast<size_t>(group)];
}

const Tensor& GlobalWeightBank::w(int group) const {
  OODGNN_CHECK(initialized_);
  OODGNN_CHECK(group >= 0 && group < num_groups());
  return w_groups_[static_cast<size_t>(group)];
}

Tensor GlobalWeightBank::StackedZ() const {
  if (!initialized_) return Tensor();
  Tensor out(num_groups() * batch_size_, dim_);
  for (int k = 0; k < num_groups(); ++k) {
    const Tensor& group = z_groups_[static_cast<size_t>(k)];
    for (int r = 0; r < batch_size_; ++r) {
      const float* src = group.row(r);
      std::copy(src, src + dim_, out.row(k * batch_size_ + r));
    }
  }
  return out;
}

Tensor GlobalWeightBank::StackedW() const {
  if (!initialized_) return Tensor();
  Tensor out(num_groups() * batch_size_, 1);
  for (int k = 0; k < num_groups(); ++k) {
    const Tensor& group = w_groups_[static_cast<size_t>(k)];
    for (int r = 0; r < batch_size_; ++r) {
      out.at(k * batch_size_ + r, 0) = group.at(r, 0);
    }
  }
  return out;
}

bool GlobalWeightBank::RestoreGroups(std::vector<Tensor> z,
                                     std::vector<Tensor> w,
                                     bool initialized) {
  if (z.size() != gammas_.size() || w.size() != gammas_.size()) return false;
  for (size_t k = 0; k < gammas_.size(); ++k) {
    if (initialized) {
      if (z[k].rows() != batch_size_ || z[k].cols() != dim_ ||
          w[k].rows() != batch_size_ || w[k].cols() != 1) {
        return false;
      }
    } else if (!z[k].empty() || !w[k].empty()) {
      return false;
    }
  }
  z_groups_ = std::move(z);
  w_groups_ = std::move(w);
  initialized_ = initialized;
  return true;
}

void GlobalWeightBank::Update(const Tensor& local_z, const Tensor& local_w) {
  OODGNN_CHECK_EQ(local_z.cols(), dim_);
  OODGNN_CHECK_EQ(local_w.cols(), 1);
  OODGNN_CHECK_EQ(local_w.rows(), local_z.rows());
  if (local_z.rows() != batch_size_) return;  // Partial batch: skip.

  if (!initialized_) {
    for (size_t k = 0; k < gammas_.size(); ++k) {
      z_groups_[k] = local_z;
      w_groups_[k] = local_w;
    }
    initialized_ = true;
    return;
  }
  for (size_t k = 0; k < gammas_.size(); ++k) {
    const float gamma = gammas_[k];
    Tensor& zg = z_groups_[k];
    Tensor& wg = w_groups_[k];
    for (int i = 0; i < zg.size(); ++i) {
      zg[i] = gamma * zg[i] + (1.f - gamma) * local_z[i];
    }
    for (int i = 0; i < wg.size(); ++i) {
      wg[i] = gamma * wg[i] + (1.f - gamma) * local_w[i];
    }
  }
}

}  // namespace oodgnn
