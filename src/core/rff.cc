#include "src/core/rff.h"

#include <cmath>

#include "src/obs/trace.h"
#include "src/tensor/backend.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace oodgnn {

RffFeatureMap::RffFeatureMap(int input_dim, const RffConfig& config, Rng* rng)
    : input_dim_(input_dim), config_(config) {
  OODGNN_CHECK_GT(input_dim, 0);
  OODGNN_CHECK_GT(config.num_functions, 0);
  OODGNN_CHECK(config.dim_fraction > 0.f && config.dim_fraction <= 1.f);

  // Randomly select the subset of representation dimensions to measure.
  if (config.dim_fraction >= 1.f) {
    selected_dims_.resize(static_cast<size_t>(input_dim));
    for (int i = 0; i < input_dim; ++i) {
      selected_dims_[static_cast<size_t>(i)] = i;
    }
  } else {
    const int keep = std::max(
        2, static_cast<int>(std::lround(config.dim_fraction * input_dim)));
    std::vector<size_t> perm = rng->Permutation(static_cast<size_t>(input_dim));
    for (int i = 0; i < keep; ++i) {
      selected_dims_.push_back(static_cast<int>(perm[static_cast<size_t>(i)]));
    }
  }

  const int per_dim = config.linear_only ? 1 : config.num_functions;
  for (int dim : selected_dims_) {
    for (int q = 0; q < per_dim; ++q) {
      feature_source_dim_.push_back(dim);
      omega_.push_back(static_cast<float>(rng->Normal(0.0, 1.0)));
      phase_.push_back(
          static_cast<float>(rng->Uniform(0.0, 2.0 * M_PI)));
    }
  }
}

Tensor RffFeatureMap::Transform(const Tensor& z) const {
  OODGNN_TRACE_SCOPE("core/rff_transform");
  OODGNN_CHECK_EQ(z.cols(), input_dim_);
  const int n = z.rows();
  const int m = num_features();
  Tensor out(n, m);
  const float kSqrt2 = static_cast<float>(std::sqrt(2.0));
  // Rows are independent, so the map partitions cleanly across the
  // backend's workers (the cos() makes this the per-batch hot loop);
  // the backend also picks the SIMD mirror of the kernel when enabled.
  GetBackend().RffMap(z, feature_source_dim_, omega_, phase_,
                      config_.linear_only, kSqrt2, &out);
  return out;
}

}  // namespace oodgnn
