#include "src/core/decorrelation.h"

#include "src/obs/trace.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

Variable DecorrelationLoss(const Tensor& features,
                           const std::vector<int>& feature_source_dim,
                           const Variable& weights) {
  OODGNN_TRACE_SCOPE("core/decorrelation_loss");
  const int n = features.rows();
  const int m = features.cols();
  OODGNN_CHECK_EQ(static_cast<int>(feature_source_dim.size()), m);
  OODGNN_CHECK_EQ(weights.rows(), n);
  OODGNN_CHECK_EQ(weights.cols(), 1);
  OODGNN_CHECK_GT(n, 1);

  // U = diag(w)·F, column-centered (Eq. 5 applies the weights to the
  // features and subtracts the weighted mean).
  Variable f = Variable::Constant(features);
  Variable weighted = MulColVec(f, weights);
  Variable mean = MeanRows(weighted);
  Variable centered = AddRowVec(weighted, Scale(mean, -1.f));

  // Full cross-covariance G [M, M] in one GEMM.
  Variable cov = Scale(MatMul(Transpose(centered), centered),
                       1.f / static_cast<float>(n - 1));

  // Zero out within-dimension blocks; each unordered pair (i<j) then
  // appears twice (C_ij and C_jiᵀ), hence the ½ factor.
  Tensor mask(m, m);
  for (int a = 0; a < m; ++a) {
    for (int b = 0; b < m; ++b) {
      mask.at(a, b) = feature_source_dim[static_cast<size_t>(a)] !=
                              feature_source_dim[static_cast<size_t>(b)]
                          ? 1.f
                          : 0.f;
    }
  }
  Variable masked = Mul(cov, Variable::Constant(mask));
  return Scale(Sum(Square(masked)), 0.5f);
}

double DependenceMeasure(const Tensor& z, const RffFeatureMap& rff) {
  Tensor features = rff.Transform(z);
  Variable uniform = Variable::Constant(Tensor(z.rows(), 1, 1.f));
  Variable loss =
      DecorrelationLoss(features, rff.feature_source_dim(), uniform);
  return static_cast<double>(loss.value()[0]);
}

}  // namespace oodgnn
