#ifndef OODGNN_CORE_DECORRELATION_H_
#define OODGNN_CORE_DECORRELATION_H_

#include <vector>

#include "src/core/rff.h"
#include "src/tensor/variable.h"

namespace oodgnn {

/// Builds the weighted decorrelation objective of Eqs. (5)/(7):
///   L(w) = Σ_{1≤i<j≤d} ‖ Ĉ^w_{Z_i,Z_j} ‖_F²
/// where Ĉ^w is the weighted partial cross-covariance between the RFF
/// features of representation dimensions i and j.
///
/// `features` is the (constant) RFF feature matrix [N, M] produced by
/// RffFeatureMap::Transform; `feature_source_dim` maps each feature
/// column to its source representation dimension (same-dimension pairs
/// are excluded from the objective); `weights` is the [N,1] sample
/// weight column, typically a concatenation of constant global weights
/// and a trainable local block.
///
/// Implementation note: with U = diag(w)·F and Ū its column-centered
/// version, the full covariance G = ŪᵀŪ/(N−1) contains every block
/// Ĉ_ij, so the objective is ½·Σ of squared entries of G outside the
/// within-dimension diagonal blocks — a single GEMM instead of O(d²)
/// block computations.
Variable DecorrelationLoss(const Tensor& features,
                           const std::vector<int>& feature_source_dim,
                           const Variable& weights);

/// Unweighted dependence diagnostic: the same objective evaluated with
/// uniform weights (no autograd). Returns the scalar Σ_{i<j}‖Ĉ_ij‖_F².
/// Near zero iff the (RFF-measured) dimensions are pairwise
/// uncorrelated — the empirical analogue of Proposition 1.
double DependenceMeasure(const Tensor& z, const RffFeatureMap& rff);

}  // namespace oodgnn

#endif  // OODGNN_CORE_DECORRELATION_H_
