#include "src/core/weight_optimizer.h"

#include <algorithm>

#include "src/core/decorrelation.h"
#include "src/nn/optimizer.h"
#include "src/obs/trace.h"
#include "src/tensor/ops.h"
#include "src/util/check.h"

namespace oodgnn {

WeightOptimizerResult GraphWeightOptimizer::Optimize(
    const Tensor& local_z, const RffFeatureMap& rff,
    const GlobalWeightBank* bank) const {
  OODGNN_TRACE_SCOPE("core/weight_optimize");
  const int local_n = local_z.rows();
  OODGNN_CHECK_GT(local_n, 1);
  OODGNN_CHECK_EQ(local_z.cols(), rff.input_dim());

  // Assemble Ẑ = [Z^(g_1) … Z^(g_K) ‖ Z^(l)] (Eq. 8) and the constant
  // RFF features of the stack.
  const bool use_bank = bank != nullptr && bank->initialized();
  Tensor stacked_z;
  Tensor global_w;
  if (use_bank) {
    Tensor bank_z = bank->StackedZ();
    OODGNN_CHECK_EQ(bank_z.cols(), local_z.cols());
    stacked_z = Tensor(bank_z.rows() + local_n, local_z.cols());
    for (int r = 0; r < bank_z.rows(); ++r) {
      const float* src = bank_z.row(r);
      std::copy(src, src + bank_z.cols(), stacked_z.row(r));
    }
    for (int r = 0; r < local_n; ++r) {
      const float* src = local_z.row(r);
      std::copy(src, src + local_z.cols(), stacked_z.row(bank_z.rows() + r));
    }
    global_w = bank->StackedW();
  } else {
    stacked_z = local_z;
  }
  const Tensor features = rff.Transform(stacked_z);

  // Local weights: trainable, initialized to 1 (Algorithm 1 line 4).
  Variable local_w = Variable::Param(Tensor(local_n, 1, 1.f));
  Adam inner({local_w}, config_.lr);

  auto decorrelation = [&]() {
    Variable w_hat =
        use_bank
            ? ConcatRows({Variable::Constant(global_w), local_w})
            : local_w;
    return DecorrelationLoss(features, rff.feature_source_dim(), w_hat);
  };
  auto objective = [&]() {
    Variable loss = decorrelation();
    if (config_.l2_penalty > 0.f) {
      // Mean-normalized ℓ2 keeps the regularizer strength independent
      // of the batch size.
      loss = Add(loss, Scale(MeanAll(Square(local_w)), config_.l2_penalty));
    }
    return loss;
  };

  WeightOptimizerResult result;
  result.initial_loss = static_cast<double>(decorrelation().value()[0]);

  // Adam plus the Σw=N projection can overshoot and oscillate; we keep
  // the best iterate seen (the uniform start included), so the returned
  // weights never increase the objective.
  double best_loss = result.initial_loss;
  Tensor best_weights = local_w.value();

  for (int epoch = 0; epoch < config_.epochs_reweight; ++epoch) {
    inner.ZeroGrad();
    Variable loss = objective();
    loss.Backward();
    inner.Step();

    // Projection: w ≥ 0, w ≤ clamp_max, mean(w) = 1 (Σ w_n = N).
    Tensor& w = local_w.mutable_value();
    float total = 0.f;
    for (int i = 0; i < w.size(); ++i) {
      w[i] = std::clamp(w[i], 0.f, config_.clamp_max);
      total += w[i];
    }
    if (total > 1e-8f) {
      const float scale = static_cast<float>(local_n) / total;
      for (int i = 0; i < w.size(); ++i) w[i] *= scale;
    } else {
      w.Fill(1.f);  // Degenerate: reset to uniform.
    }

    const double current = static_cast<double>(decorrelation().value()[0]);
    if (current < best_loss) {
      best_loss = current;
      best_weights = local_w.value();
    }
  }
  local_w.mutable_value() = best_weights;

  result.final_loss = best_loss;
  result.weights.resize(static_cast<size_t>(local_n));
  for (int i = 0; i < local_n; ++i) {
    result.weights[static_cast<size_t>(i)] = local_w.value()[i];
  }
  return result;
}

}  // namespace oodgnn
