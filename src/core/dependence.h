#ifndef OODGNN_CORE_DEPENDENCE_H_
#define OODGNN_CORE_DEPENDENCE_H_

#include "src/core/rff.h"
#include "src/tensor/tensor.h"

namespace oodgnn {

/// Diagnostic: the d×d matrix of pairwise RFF dependence values between
/// representation dimensions, D[i][j] = ‖Ĉ_{Z_i,Z_j}‖²_F with uniform
/// weights (zero diagonal). The sum of its upper triangle equals
/// DependenceMeasure(z, rff). Useful for inspecting *which* dimensions
/// a trained encoder entangles before/after reweighting.
Tensor PairwiseDependenceMatrix(const Tensor& z, const RffFeatureMap& rff);

/// Summary statistics of a dependence matrix.
struct DependenceSummary {
  double total = 0.0;    ///< Σ_{i<j} D[i][j].
  double max_pair = 0.0; ///< Largest single pairwise dependence.
  int max_i = -1;        ///< Indices of the most dependent pair.
  int max_j = -1;
};

/// Computes the summary of PairwiseDependenceMatrix(z, rff).
DependenceSummary SummarizeDependence(const Tensor& z,
                                      const RffFeatureMap& rff);

}  // namespace oodgnn

#endif  // OODGNN_CORE_DEPENDENCE_H_
