#include "src/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "src/gnn/pna_conv.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/obs/journal.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/arena.h"
#include "src/tensor/backend.h"
#include "src/tensor/exec_plan.h"
#include "src/tensor/ops.h"
#include "src/tensor/variable.h"
#include "src/train/checkpoint.h"
#include "src/train/train_plan.h"
#include "src/train/metrics.h"
#include "src/util/check.h"
#include "src/util/file.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

/// Loss dispatch per task type (Eq. 6: ℓ is cross-entropy for
/// classification, MSE for regression).
Variable PredictionLoss(const Variable& logits, const GraphBatch& batch,
                        TaskType type, const std::vector<float>& weights) {
  switch (type) {
    case TaskType::kMulticlass:
      return SoftmaxCrossEntropy(logits, batch.class_labels, weights);
    case TaskType::kBinary:
      return BceWithLogits(logits, batch.targets, batch.target_mask, weights);
    case TaskType::kRegression:
      return MseLoss(logits, batch.targets, weights);
  }
  OODGNN_CHECK(false);
  return Variable();
}

/// Collects model outputs over a split (eval mode, batched). Runs
/// grad-free — no tape, no backward closures — and asserts that the
/// eval-mode forward never draws from `rng`, so callers may pass any
/// Rng without perturbing its stream.
Tensor PredictSplit(GraphPredictionModel* model, const GraphDataset& dataset,
                    const std::vector<size_t>& indices, int batch_size,
                    Rng* rng, std::vector<int>* labels, Tensor* targets,
                    Tensor* mask) {
  NoGradGuard no_grad;
  const std::string rng_before = rng->SaveState();
  // Accumulators are allocated before the arena scope below: they
  // outlive the per-batch intermediates and must stay on the heap.
  Tensor all_logits(static_cast<int>(indices.size()), model->output_dim());
  if (targets->empty() && dataset.task_type != TaskType::kMulticlass) {
    *targets = Tensor(static_cast<int>(indices.size()), dataset.num_tasks);
    *mask = Tensor(static_cast<int>(indices.size()), dataset.num_tasks, 1.f);
  }
  // Compiled mode routes every per-batch intermediate through the
  // thread's shared dynamic arena: after the first batch sizes the
  // slabs, subsequent batches of the split perform zero tensor-heap
  // allocations (first-fit hole reuse; see src/tensor/arena.h). The
  // same ScopedDynamicArena entry point serves compiled training's
  // unplannable regions, so eval shares its arena with them.
  ScopedDynamicArena arena_scope(CompiledEnabled() || CompiledTrainEnabled());
  int row = 0;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(indices.size(), begin + static_cast<size_t>(batch_size));
    GraphBatch batch = MakeBatch(dataset.graphs, indices, begin, end);
    Variable logits = model->Predict(batch, /*training=*/false, rng);
    GetBackend().CopyRowsTo(logits.value(), &all_logits, row);
    for (int r = 0; r < logits.rows(); ++r) {
      if (dataset.task_type == TaskType::kMulticlass) {
        labels->push_back(batch.class_labels[static_cast<size_t>(r)]);
      } else {
        for (int t = 0; t < dataset.num_tasks; ++t) {
          targets->at(row + r, t) = batch.targets.at(r, t);
          mask->at(row + r, t) = batch.target_mask.at(r, t);
        }
      }
    }
    row += logits.rows();
  }
  OODGNN_CHECK(rng->SaveState() == rng_before)
      << "eval-mode Predict consumed randomness";
  return all_logits;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Cumulative totals of the backend's per-kernel perf counters
/// ("kernel/<op>/…" in the global metrics registry; all zero unless
/// profiling is enabled).
struct KernelTotals {
  std::int64_t calls = 0;
  std::int64_t elems = 0;
  std::int64_t us = 0;
  std::int64_t parallel_calls = 0;
};

KernelTotals SumKernelCounters() {
  KernelTotals totals;
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().GetSnapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("kernel/", 0) != 0) continue;
    if (EndsWith(name, "/parallel_calls")) {
      totals.parallel_calls += value;
    } else if (EndsWith(name, "/calls")) {
      totals.calls += value;
    } else if (EndsWith(name, "/elems")) {
      totals.elems += value;
    } else if (EndsWith(name, "/us")) {
      totals.us += value;
    }
  }
  return totals;
}

/// Inclusive microseconds per phase, for per-epoch deltas.
std::map<std::string, std::int64_t> PhaseTotalsUs() {
  std::map<std::string, std::int64_t> totals;
  for (const obs::PhaseStats& stats : obs::TraceSnapshot()) {
    totals[stats.name] = stats.total_us;
  }
  return totals;
}

/// {"phase":delta_ms,...} between two PhaseTotalsUs() snapshots.
std::string PhaseDeltaJson(const std::map<std::string, std::int64_t>& before,
                           const std::map<std::string, std::int64_t>& after) {
  obs::JsonObjectWriter phases;
  for (const auto& [name, total_us] : after) {
    auto it = before.find(name);
    const std::int64_t delta_us =
        total_us - (it == before.end() ? 0 : it->second);
    if (delta_us > 0) phases.Put(name, static_cast<double>(delta_us) / 1e3);
  }
  return phases.Build();
}

/// Everything the checkpoint subsystem snapshots, gathered in one place
/// so capture and restore cannot drift apart.
struct RunState {
  Method method;
  const GraphDataset* dataset;
  const TrainConfig* config;
  GraphPredictionModel* model;
  Adam* optimizer;
  OodGnnReweighter* reweighter;  // null for baselines
  Rng* rng;
  std::vector<size_t>* order;
  double* best_valid;
  TrainResult* result;
};

TrainState CaptureState(const RunState& run, int next_epoch) {
  TrainState state;
  state.dataset_name = run.dataset->name;
  state.method = static_cast<uint32_t>(run.method);
  state.seed = run.config->seed;
  state.epochs = static_cast<uint32_t>(run.config->epochs);
  state.batch_size = static_cast<uint32_t>(run.config->batch_size);
  state.next_epoch = static_cast<uint32_t>(next_epoch);
  state.rng_state = run.rng->SaveState();
  state.order.assign(run.order->begin(), run.order->end());
  for (const Variable& param : run.model->Parameters()) {
    state.params.push_back(param.value());
  }
  state.optimizer = run.optimizer->GetState();
  for (const Tensor* buffer : run.model->Buffers()) {
    state.buffers.push_back(*buffer);
  }
  if (run.reweighter != nullptr) {
    const GlobalWeightBank& bank = run.reweighter->bank();
    state.has_bank = true;
    state.bank_initialized = bank.initialized();
    state.bank_gammas = bank.gammas();
    state.bank_z = bank.z_groups();
    state.bank_w = bank.w_groups();
  }
  state.best_valid = *run.best_valid;
  state.train_metric = run.result->train_metric;
  state.valid_metric = run.result->valid_metric;
  state.test_metric = run.result->test_metric;
  state.test2_metric = run.result->test2_metric;
  state.epoch_losses = run.result->epoch_losses;
  state.epoch_decorrelation_losses = run.result->epoch_decorrelation_losses;
  state.final_weights = run.result->final_weights;
  state.final_weight_graphs.assign(run.result->final_weight_graphs.begin(),
                                   run.result->final_weight_graphs.end());
  return state;
}

/// Applies a loaded snapshot to freshly constructed training objects.
/// Every structural property is validated against the live run before
/// anything is mutated; a false return means "ignore the checkpoint and
/// start fresh" and leaves the run untouched.
bool RestoreFromState(const TrainState& state, const RunState& run) {
  if (state.dataset_name != run.dataset->name ||
      state.method != static_cast<uint32_t>(run.method) ||
      state.seed != run.config->seed ||
      state.epochs != static_cast<uint32_t>(run.config->epochs) ||
      state.batch_size != static_cast<uint32_t>(run.config->batch_size)) {
    OODGNN_LOG(Warning) << "checkpoint was written by a different run "
                        << "(dataset/method/seed/epochs/batch mismatch)";
    return false;
  }
  // The saved order must be a permutation of this dataset's train split.
  if (state.order.size() != run.order->size()) return false;
  {
    std::vector<uint64_t> saved = state.order;
    std::vector<uint64_t> expected(run.order->begin(), run.order->end());
    std::sort(saved.begin(), saved.end());
    std::sort(expected.begin(), expected.end());
    if (saved != expected) {
      OODGNN_LOG(Warning)
          << "checkpoint train order does not match the dataset split";
      return false;
    }
  }
  std::vector<Variable> params = run.model->Parameters();
  if (state.params.size() != params.size()) return false;
  for (size_t i = 0; i < params.size(); ++i) {
    if (!state.params[i].SameShape(params[i].value())) {
      OODGNN_LOG(Warning) << "checkpoint parameter " << i
                          << " has a mismatched shape";
      return false;
    }
  }
  std::vector<Tensor*> buffers = run.model->Buffers();
  if (state.buffers.size() != buffers.size()) {
    OODGNN_LOG(Warning) << "checkpoint buffer count does not match the model";
    return false;
  }
  for (size_t i = 0; i < buffers.size(); ++i) {
    if (!state.buffers[i].SameShape(*buffers[i])) {
      OODGNN_LOG(Warning) << "checkpoint buffer " << i
                          << " has a mismatched shape";
      return false;
    }
  }
  if (state.has_bank != (run.reweighter != nullptr)) return false;
  // Adam keeps one first- and one second-moment tensor per parameter;
  // validate the slot layout here so the mutation phase below cannot
  // fail halfway and leave the fresh-start fallback corrupted.
  if (state.optimizer.slots.size() != 2 * params.size()) {
    OODGNN_LOG(Warning) << "checkpoint optimizer state is incompatible";
    return false;
  }
  for (size_t i = 0; i < state.optimizer.slots.size(); ++i) {
    if (!state.optimizer.slots[i].SameShape(
            params[i % params.size()].value())) {
      OODGNN_LOG(Warning) << "checkpoint optimizer slot " << i
                          << " has a mismatched shape";
      return false;
    }
  }
  if (run.reweighter != nullptr &&
      state.bank_gammas != run.reweighter->bank().gammas()) {
    OODGNN_LOG(Warning) << "checkpoint weight bank is incompatible";
    return false;
  }
  Rng restored_rng(0);
  if (!restored_rng.LoadState(state.rng_state)) {
    OODGNN_LOG(Warning) << "checkpoint RNG state is malformed";
    return false;
  }

  // Validation passed — apply everything.
  if (run.reweighter != nullptr &&
      !run.reweighter->mutable_bank()->RestoreGroups(
          state.bank_z, state.bank_w, state.bank_initialized)) {
    OODGNN_LOG(Warning) << "checkpoint weight bank is incompatible";
    return false;
  }
  OODGNN_CHECK(run.optimizer->SetState(state.optimizer));
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = state.params[i];
  }
  for (size_t i = 0; i < buffers.size(); ++i) {
    *buffers[i] = state.buffers[i];
  }
  *run.rng = restored_rng;
  run.order->assign(state.order.begin(), state.order.end());
  *run.best_valid = state.best_valid;
  run.result->train_metric = state.train_metric;
  run.result->valid_metric = state.valid_metric;
  run.result->test_metric = state.test_metric;
  run.result->test2_metric = state.test2_metric;
  run.result->epoch_losses = state.epoch_losses;
  run.result->epoch_decorrelation_losses = state.epoch_decorrelation_losses;
  run.result->final_weights = state.final_weights;
  run.result->final_weight_graphs.assign(state.final_weight_graphs.begin(),
                                         state.final_weight_graphs.end());
  return true;
}

}  // namespace

bool HigherIsBetter(TaskType type) {
  return type != TaskType::kRegression;
}

double EvaluateSplit(GraphPredictionModel* model, const GraphDataset& dataset,
                     const std::vector<size_t>& indices, int batch_size,
                     Rng* rng) {
  OODGNN_TRACE_SCOPE("train/eval");
  OODGNN_CHECK(!indices.empty());
  std::vector<int> labels;
  Tensor targets;
  Tensor mask;
  Tensor logits = PredictSplit(model, dataset, indices, batch_size, rng,
                               &labels, &targets, &mask);
  switch (dataset.task_type) {
    case TaskType::kMulticlass:
      return Accuracy(logits, labels);
    case TaskType::kBinary:
      return MultiTaskRocAuc(logits, targets, mask);
    case TaskType::kRegression:
      return Rmse(logits, targets, mask);
  }
  OODGNN_CHECK(false);
  return 0.0;
}

TrainResult TrainAndEvaluate(Method method, const GraphDataset& dataset,
                             const TrainConfig& config) {
  OODGNN_CHECK(!dataset.train_idx.empty());
  OODGNN_CHECK_GE(config.eval_every, 1);
  Timer timer;
  Rng rng(config.seed);
  // Evaluation gets its own stream derived straight from the seed (NOT
  // rng.Fork(), which would consume training draws). Eval-mode forwards
  // draw nothing anyway — PredictSplit asserts it — but isolating the
  // streams makes "mid-run eval cannot perturb training" structural
  // rather than incidental.
  Rng eval_rng(config.seed ^ 0x9E3779B97F4A7C15ull);

  EncoderConfig encoder_config = config.encoder;
  encoder_config.feature_dim = dataset.feature_dim;
  if (method == Method::kPna) {
    std::vector<const Graph*> train_graphs;
    for (size_t idx : dataset.train_idx) {
      train_graphs.push_back(&dataset.graphs[idx]);
    }
    encoder_config.pna_delta = ComputePnaDelta(train_graphs);
  }

  GraphPredictionModel model(method, encoder_config, dataset.OutputDim(),
                             &rng);
  Adam optimizer(model.Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                 config.weight_decay);

  std::unique_ptr<OodGnnReweighter> reweighter;
  if (method == Method::kOodGnn) {
    reweighter = std::make_unique<OodGnnReweighter>(
        model.representation_dim(), config.batch_size, config.ood, &rng);
  }

  TrainResult result;
  result.num_parameters = model.NumParameters();

  const bool higher_better = HigherIsBetter(dataset.task_type);
  double best_valid = higher_better ? -1e30 : 1e30;

  std::vector<size_t> order = dataset.train_idx;

  obs::RunJournal* journal = obs::GlobalJournal();

  // Fault tolerance: resolve the snapshot file for this (dataset,
  // method, seed) run, restore an existing snapshot when resuming, and
  // make sure the checkpoint directory exists before the first save.
  const RunState run{method,      &dataset,         &config, &model,
                     &optimizer,  reweighter.get(), &rng,    &order,
                     &best_valid, &result};
  std::string checkpoint_path;
  if (config.checkpoint_every > 0 || config.resume) {
    checkpoint_path = CheckpointPath(config.checkpoint_dir, dataset.name,
                                     MethodName(method), config.seed);
  }
  int start_epoch = 0;
  if (config.resume && FileExists(checkpoint_path)) {
    TrainState state;
    if (LoadTrainState(checkpoint_path, &state) &&
        RestoreFromState(state, run)) {
      start_epoch = static_cast<int>(state.next_epoch);
      OODGNN_LOG(Info) << dataset.name << " [" << MethodName(method)
                       << "]: resumed from " << checkpoint_path
                       << " after epoch " << start_epoch << "/"
                       << config.epochs;
      if (journal != nullptr) {
        journal->WriteLine(obs::JsonObjectWriter()
                               .Put("event", "resume")
                               .Put("dataset", dataset.name)
                               .Put("method", MethodName(method))
                               .Put("seed",
                                    static_cast<std::int64_t>(config.seed))
                               .Put("restored_epoch", start_epoch)
                               .Put("epochs", config.epochs)
                               .Put("checkpoint", checkpoint_path)
                               .Build());
      }
    } else {
      OODGNN_LOG(Warning) << dataset.name << " [" << MethodName(method)
                          << "]: cannot resume from " << checkpoint_path
                          << "; starting fresh";
    }
  }
  if (config.checkpoint_every > 0) EnsureDirectory(config.checkpoint_dir);

  // Compiled training (DESIGN.md §17): record one forward+backward
  // tape per batch-shape bucket and replay it with static
  // grad-liveness arena offsets — bitwise-identical to eager, zero
  // steady-state heap tensor allocation. Off by default
  // (--compiled-train / OODGNN_COMPILED_TRAIN).
  const bool compiled_train = CompiledTrainEnabled();
  std::unique_ptr<TrainStepPlanner> planner;
  if (compiled_train) {
    planner = std::make_unique<TrainStepPlanner>(config.plan_bucket_nodes,
                                                 config.plan_bucket_edges);
  }

  // Mini-batch row ranges over the shuffled order. A trailing batch
  // with fewer than 2 graphs carries no pairwise dependence signal, so
  // instead of silently dropping it every epoch it is folded into the
  // previous batch (the weight bank already ignores off-size batches).
  std::vector<std::pair<size_t, size_t>> batch_ranges;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(config.batch_size)) {
    batch_ranges.emplace_back(
        begin,
        std::min(order.size(), begin + static_cast<size_t>(config.batch_size)));
  }
  if (batch_ranges.size() > 1 &&
      batch_ranges.back().second - batch_ranges.back().first < 2) {
    batch_ranges[batch_ranges.size() - 2].second = batch_ranges.back().second;
    batch_ranges.pop_back();
    OODGNN_LOG(Info) << dataset.name
                     << ": trailing mini-batch of 1 graph folded into the "
                        "previous batch (batch_size="
                     << config.batch_size << ")";
  }

  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    Timer epoch_timer;
    std::map<std::string, std::int64_t> phase_before;
    if (journal != nullptr && obs::ProfilingEnabled()) {
      phase_before = PhaseTotalsUs();
    }
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    double epoch_decor = 0.0;
    int num_batches = 0;
    std::int64_t epoch_examples = 0;
    std::vector<double> epoch_weights;
    const bool final_epoch = epoch + 1 == config.epochs;

    for (const auto& [begin, end] : batch_ranges) {
      if (end - begin < 2) {
        // Unfoldable: the whole training split is a single graph.
        OODGNN_LOG_EVERY_N(Warning, 50)
            << dataset.name << ": skipping mini-batch of "
            << end - begin << " graph(s); need at least 2 to train";
        continue;
      }
      // The batch is built outside any plan scope (its profile is the
      // bucket key, and its tensors must not live at replayed static
      // offsets); under compiled training its storage comes from the
      // thread's dynamic arena so steady-state steps stay heap-free.
      GraphBatch batch = [&] {
        ScopedDynamicArena batch_arena(compiled_train);
        return MakeBatch(dataset.graphs, order, begin, end);
      }();

      const auto step_body = [&] {
        // Algorithm 1 line 3: forward to representations.
        Variable z = [&] {
          OODGNN_TRACE_SCOPE("train/encode");
          return model.Encode(batch, /*training=*/true, &rng);
        }();

        // Lines 4–8: learn the sample weights on detached
        // representations (after a short warmup during which the
        // encoder settles). ComputeWeights is data-dependent (best-
        // iterate copies, bank init) and suspends any active plan
        // scope internally.
        std::vector<float> weights;
        if (reweighter && epoch >= config.ood.warmup_epochs) {
          OODGNN_TRACE_SCOPE("train/reweight");
          weights = reweighter->ComputeWeights(z.value());
          epoch_decor += reweighter->last_decorrelation_loss();
          if (journal != nullptr) {
            epoch_weights.insert(epoch_weights.end(), weights.begin(),
                                 weights.end());
          }
          if (final_epoch) {
            result.final_weights.insert(result.final_weights.end(),
                                        weights.begin(), weights.end());
            result.final_weight_graphs.insert(result.final_weight_graphs.end(),
                                              order.begin() + begin,
                                              order.begin() + end);
          }
        }

        // Line 9: weighted prediction loss, backprop, update Φ and R.
        {
          OODGNN_TRACE_SCOPE("train/loss_step");
          Variable logits = model.Classify(z, /*training=*/true);
          Variable loss =
              PredictionLoss(logits, batch, dataset.task_type, weights);
          optimizer.ZeroGrad();
          if (compiled_train) {
            // Releases each interior value/grad as the sweep passes it
            // — the liveness signal the recorded plan's static offsets
            // are computed from. Bitwise-identical to Backward().
            loss.BackwardAndReleaseTape();
          } else {
            loss.Backward();
          }
          optimizer.Step();
          epoch_loss += static_cast<double>(loss.value()[0]);
        }
      };
      if (planner != nullptr) {
        planner->RunStep(batch.num_graphs, batch.num_nodes,
                         static_cast<int>(batch.edge_src.size()), step_body);
      } else {
        step_body();
      }
      epoch_examples += static_cast<std::int64_t>(end - begin);
      ++num_batches;
    }
    if (num_batches == 0) continue;
    result.epoch_losses.push_back(epoch_loss / num_batches);
    if (reweighter) {
      result.epoch_decorrelation_losses.push_back(epoch_decor / num_batches);
      // HSIC drift gauge: the epoch-mean statistical dependence among
      // representation dimensions (the quantity Algorithm 1 drives
      // down). Exporters scraping the global registry can watch
      // decorrelation progress live alongside the serving metrics.
      obs::MetricsRegistry::Global()
          .GetGauge("core/hsic/last_value")
          .Set(result.epoch_decorrelation_losses.back());
    }
    const double train_phase_seconds = epoch_timer.ElapsedSeconds();

    // Model selection on the validation split (falls back to train),
    // every eval_every-th epoch plus the final one. Eval runs grad-free
    // on the independent eval_rng, so skipping or adding evaluations
    // leaves the training trajectory bitwise unchanged.
    const bool do_eval =
        (epoch + 1) % config.eval_every == 0 || final_epoch;
    double valid_metric = 0.0;
    bool improved = false;
    if (do_eval) {
      const std::vector<size_t>& valid_split =
          dataset.valid_idx.empty() ? dataset.train_idx : dataset.valid_idx;
      valid_metric = EvaluateSplit(&model, dataset, valid_split,
                                   config.batch_size, &eval_rng);
      improved = higher_better ? valid_metric > best_valid
                               : valid_metric < best_valid;
      if (improved) {
        best_valid = valid_metric;
        result.valid_metric = valid_metric;
        result.train_metric = EvaluateSplit(
            &model, dataset, dataset.train_idx, config.batch_size, &eval_rng);
        if (!dataset.test_idx.empty()) {
          result.test_metric = EvaluateSplit(
              &model, dataset, dataset.test_idx, config.batch_size, &eval_rng);
        }
        if (!dataset.test2_idx.empty()) {
          result.test2_metric = EvaluateSplit(
              &model, dataset, dataset.test2_idx, config.batch_size,
              &eval_rng);
        }
      }
    }
    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    const double examples_per_sec =
        train_phase_seconds > 0.0
            ? static_cast<double>(epoch_examples) / train_phase_seconds
            : 0.0;
    if (config.verbose) {
      std::ostringstream line;
      line << dataset.name << " [" << MethodName(method) << "] epoch "
           << epoch + 1 << "/" << config.epochs
           << " loss=" << result.epoch_losses.back();
      if (do_eval) line << " valid=" << valid_metric;
      line << " time=" << epoch_seconds << "s (" << examples_per_sec
           << " ex/s)";
      OODGNN_LOG(Info) << line.str();
    }
    if (journal != nullptr) {
      obs::JsonObjectWriter record;
      record.Put("event", "epoch")
          .Put("dataset", dataset.name)
          .Put("method", MethodName(method))
          .Put("seed", static_cast<std::int64_t>(config.seed))
          .Put("epoch", epoch + 1)
          .Put("epochs", config.epochs)
          .Put("train_loss", result.epoch_losses.back())
          .Put("epoch_seconds", epoch_seconds)
          .Put("examples_per_sec", examples_per_sec);
      if (do_eval) {
        record.Put("valid_metric", valid_metric).Put("improved", improved);
      }
      if (reweighter) {
        record.Put("decorrelation_loss",
                   result.epoch_decorrelation_losses.back());
      }
      if (!epoch_weights.empty()) {
        // Weight-distribution stats (the Fig. 4 signal, per epoch).
        const auto [min_it, max_it] =
            std::minmax_element(epoch_weights.begin(), epoch_weights.end());
        record.Put("weight_mean", Mean(epoch_weights))
            .Put("weight_std", StdDev(epoch_weights))
            .Put("weight_min", *min_it)
            .Put("weight_max", *max_it);
      }
      if (obs::ProfilingEnabled()) {
        const KernelTotals kernels = SumKernelCounters();
        record.Put("kernel_calls", kernels.calls)
            .Put("kernel_elems", kernels.elems)
            .Put("kernel_us", kernels.us)
            .Put("kernel_parallel_calls", kernels.parallel_calls)
            .PutRaw("phase_ms", PhaseDeltaJson(phase_before, PhaseTotalsUs()));
      }
      journal->WriteLine(record.Build());
    }
    if (config.checkpoint_every > 0 &&
        (epoch + 1) % config.checkpoint_every == 0) {
      if (!SaveTrainState(checkpoint_path, CaptureState(run, epoch + 1))) {
        OODGNN_LOG(Warning) << "failed to write checkpoint "
                            << checkpoint_path;
      }
    }
    // Fault injection: simulate the process dying right after this
    // epoch (and its scheduled checkpoint, if any) completed.
    if (CrashAfterEpochRequested(epoch + 1)) {
      CrashNow("OODGNN_CRASH_AFTER_EPOCH");
    }
  }

  result.train_seconds = timer.ElapsedSeconds();

  if (journal != nullptr) {
    // Final run record: best-epoch metrics plus, when profiling, the
    // whole run's phase aggregate and backend counters.
    obs::JsonObjectWriter record;
    record.Put("event", "run_summary")
        .Put("dataset", dataset.name)
        .Put("method", MethodName(method))
        .Put("seed", static_cast<std::int64_t>(config.seed))
        .Put("train_metric", result.train_metric)
        .Put("valid_metric", result.valid_metric)
        .Put("test_metric", result.test_metric)
        .Put("test2_metric", result.test2_metric)
        .Put("num_parameters", result.num_parameters)
        .Put("train_seconds", result.train_seconds);
    if (obs::ProfilingEnabled()) {
      obs::JsonObjectWriter phases;
      for (const obs::PhaseStats& s : obs::TraceSnapshot()) {
        phases.PutRaw(s.name,
                      obs::JsonObjectWriter()
                          .Put("count", s.count)
                          .Put("total_ms", static_cast<double>(s.total_us) / 1e3)
                          .Put("self_ms",
                               static_cast<double>(s.self_us()) / 1e3)
                          .Build());
      }
      const KernelTotals kernels = SumKernelCounters();
      record.PutRaw("phases", phases.Build())
          .Put("kernel_calls", kernels.calls)
          .Put("kernel_elems", kernels.elems)
          .Put("kernel_us", kernels.us)
          .Put("kernel_parallel_calls", kernels.parallel_calls);
    }
    journal->WriteLine(record.Build());
  }
  return result;
}

}  // namespace oodgnn
