#include "src/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "src/gnn/pna_conv.h"
#include "src/graph/batch.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/tensor/backend.h"
#include "src/tensor/ops.h"
#include "src/train/metrics.h"
#include "src/util/check.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace oodgnn {
namespace {

/// Loss dispatch per task type (Eq. 6: ℓ is cross-entropy for
/// classification, MSE for regression).
Variable PredictionLoss(const Variable& logits, const GraphBatch& batch,
                        TaskType type, const std::vector<float>& weights) {
  switch (type) {
    case TaskType::kMulticlass:
      return SoftmaxCrossEntropy(logits, batch.class_labels, weights);
    case TaskType::kBinary:
      return BceWithLogits(logits, batch.targets, batch.target_mask, weights);
    case TaskType::kRegression:
      return MseLoss(logits, batch.targets, weights);
  }
  OODGNN_CHECK(false);
  return Variable();
}

/// Collects model outputs over a split (eval mode, batched).
Tensor PredictSplit(GraphPredictionModel* model, const GraphDataset& dataset,
                    const std::vector<size_t>& indices, int batch_size,
                    Rng* rng, std::vector<int>* labels, Tensor* targets,
                    Tensor* mask) {
  Tensor all_logits(static_cast<int>(indices.size()), model->output_dim());
  if (targets->empty() && dataset.task_type != TaskType::kMulticlass) {
    *targets = Tensor(static_cast<int>(indices.size()), dataset.num_tasks);
    *mask = Tensor(static_cast<int>(indices.size()), dataset.num_tasks, 1.f);
  }
  int row = 0;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(indices.size(), begin + static_cast<size_t>(batch_size));
    GraphBatch batch = MakeBatch(dataset.graphs, indices, begin, end);
    Variable logits = model->Predict(batch, /*training=*/false, rng);
    GetBackend().CopyRowsTo(logits.value(), &all_logits, row);
    for (int r = 0; r < logits.rows(); ++r) {
      if (dataset.task_type == TaskType::kMulticlass) {
        labels->push_back(batch.class_labels[static_cast<size_t>(r)]);
      } else {
        for (int t = 0; t < dataset.num_tasks; ++t) {
          targets->at(row + r, t) = batch.targets.at(r, t);
          mask->at(row + r, t) = batch.target_mask.at(r, t);
        }
      }
    }
    row += logits.rows();
  }
  return all_logits;
}

}  // namespace

bool HigherIsBetter(TaskType type) {
  return type != TaskType::kRegression;
}

double EvaluateSplit(GraphPredictionModel* model, const GraphDataset& dataset,
                     const std::vector<size_t>& indices, int batch_size,
                     Rng* rng) {
  OODGNN_CHECK(!indices.empty());
  std::vector<int> labels;
  Tensor targets;
  Tensor mask;
  Tensor logits = PredictSplit(model, dataset, indices, batch_size, rng,
                               &labels, &targets, &mask);
  switch (dataset.task_type) {
    case TaskType::kMulticlass:
      return Accuracy(logits, labels);
    case TaskType::kBinary:
      return MultiTaskRocAuc(logits, targets, mask);
    case TaskType::kRegression:
      return Rmse(logits, targets, mask);
  }
  OODGNN_CHECK(false);
  return 0.0;
}

TrainResult TrainAndEvaluate(Method method, const GraphDataset& dataset,
                             const TrainConfig& config) {
  OODGNN_CHECK(!dataset.train_idx.empty());
  Timer timer;
  Rng rng(config.seed);

  EncoderConfig encoder_config = config.encoder;
  encoder_config.feature_dim = dataset.feature_dim;
  if (method == Method::kPna) {
    std::vector<const Graph*> train_graphs;
    for (size_t idx : dataset.train_idx) {
      train_graphs.push_back(&dataset.graphs[idx]);
    }
    encoder_config.pna_delta = ComputePnaDelta(train_graphs);
  }

  GraphPredictionModel model(method, encoder_config, dataset.OutputDim(),
                             &rng);
  Adam optimizer(model.Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                 config.weight_decay);

  std::unique_ptr<OodGnnReweighter> reweighter;
  if (method == Method::kOodGnn) {
    reweighter = std::make_unique<OodGnnReweighter>(
        model.representation_dim(), config.batch_size, config.ood, &rng);
  }

  TrainResult result;
  result.num_parameters = model.NumParameters();

  const bool higher_better = HigherIsBetter(dataset.task_type);
  double best_valid = higher_better ? -1e30 : 1e30;

  std::vector<size_t> order = dataset.train_idx;

  // Mini-batch row ranges over the shuffled order. A trailing batch
  // with fewer than 2 graphs carries no pairwise dependence signal, so
  // instead of silently dropping it every epoch it is folded into the
  // previous batch (the weight bank already ignores off-size batches).
  std::vector<std::pair<size_t, size_t>> batch_ranges;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(config.batch_size)) {
    batch_ranges.emplace_back(
        begin,
        std::min(order.size(), begin + static_cast<size_t>(config.batch_size)));
  }
  if (batch_ranges.size() > 1 &&
      batch_ranges.back().second - batch_ranges.back().first < 2) {
    batch_ranges[batch_ranges.size() - 2].second = batch_ranges.back().second;
    batch_ranges.pop_back();
    OODGNN_LOG(Info) << dataset.name
                     << ": trailing mini-batch of 1 graph folded into the "
                        "previous batch (batch_size="
                     << config.batch_size << ")";
  }

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    double epoch_decor = 0.0;
    int num_batches = 0;
    const bool final_epoch = epoch + 1 == config.epochs;

    for (const auto& [begin, end] : batch_ranges) {
      if (end - begin < 2) {
        // Unfoldable: the whole training split is a single graph.
        if (epoch == 0) {
          OODGNN_LOG(Warning)
              << dataset.name << ": skipping mini-batch of "
              << end - begin << " graph(s); need at least 2 to train";
        }
        continue;
      }
      GraphBatch batch = MakeBatch(dataset.graphs, order, begin, end);

      // Algorithm 1 line 3: forward to representations.
      Variable z = model.Encode(batch, /*training=*/true, &rng);

      // Lines 4–8: learn the sample weights on detached representations
      // (after a short warmup during which the encoder settles).
      std::vector<float> weights;
      if (reweighter && epoch >= config.ood.warmup_epochs) {
        weights = reweighter->ComputeWeights(z.value());
        epoch_decor += reweighter->last_decorrelation_loss();
        if (final_epoch) {
          result.final_weights.insert(result.final_weights.end(),
                                      weights.begin(), weights.end());
          result.final_weight_graphs.insert(result.final_weight_graphs.end(),
                                            order.begin() + begin,
                                            order.begin() + end);
        }
      }

      // Line 9: weighted prediction loss, backprop, update Φ and R.
      Variable logits = model.Classify(z, /*training=*/true);
      Variable loss =
          PredictionLoss(logits, batch, dataset.task_type, weights);
      optimizer.ZeroGrad();
      loss.Backward();
      optimizer.Step();

      epoch_loss += static_cast<double>(loss.value()[0]);
      ++num_batches;
    }
    if (num_batches == 0) continue;
    result.epoch_losses.push_back(epoch_loss / num_batches);
    if (reweighter) {
      result.epoch_decorrelation_losses.push_back(epoch_decor / num_batches);
    }

    // Model selection on the validation split (falls back to train).
    const std::vector<size_t>& valid_split =
        dataset.valid_idx.empty() ? dataset.train_idx : dataset.valid_idx;
    const double valid_metric =
        EvaluateSplit(&model, dataset, valid_split, config.batch_size, &rng);
    const bool improved = higher_better ? valid_metric > best_valid
                                        : valid_metric < best_valid;
    if (improved) {
      best_valid = valid_metric;
      result.valid_metric = valid_metric;
      result.train_metric = EvaluateSplit(&model, dataset, dataset.train_idx,
                                          config.batch_size, &rng);
      if (!dataset.test_idx.empty()) {
        result.test_metric = EvaluateSplit(&model, dataset, dataset.test_idx,
                                           config.batch_size, &rng);
      }
      if (!dataset.test2_idx.empty()) {
        result.test2_metric = EvaluateSplit(
            &model, dataset, dataset.test2_idx, config.batch_size, &rng);
      }
    }
    if (config.verbose) {
      OODGNN_LOG(Info) << dataset.name << " [" << MethodName(method)
                       << "] epoch " << epoch + 1 << "/" << config.epochs
                       << " loss=" << result.epoch_losses.back()
                       << " valid=" << valid_metric;
    }
  }

  result.train_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace oodgnn
