#ifndef OODGNN_TRAIN_TRAINER_H_
#define OODGNN_TRAIN_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/ood_gnn.h"
#include "src/gnn/model_zoo.h"
#include "src/graph/dataset.h"

namespace oodgnn {

/// Hyper-parameters shared by every method (§4.1.3 of the paper).
struct TrainConfig {
  int epochs = 30;
  int batch_size = 64;
  float lr = 1e-3f;
  float weight_decay = 0.f;
  uint64_t seed = 0;
  bool verbose = false;

  /// Evaluate (and run model selection) every `eval_every`-th epoch;
  /// the final epoch is always evaluated so a run never ends without
  /// metrics. Evaluation is grad-free, draws no randomness, and uses
  /// its own seed-derived Rng, so the training trajectory is bitwise
  /// identical for every eval cadence (pinned by a regression test).
  int eval_every = 1;

  /// Fault tolerance (src/train/checkpoint.h). With checkpoint_every
  /// > 0, a full TrainState snapshot is written atomically to
  /// checkpoint_dir after every checkpoint_every-th epoch. With resume,
  /// an existing compatible snapshot is restored first and training
  /// continues bitwise-identically to an uninterrupted run; an absent,
  /// corrupted, or incompatible snapshot logs a warning and starts
  /// fresh. Snapshots are keyed by (dataset, method, seed), so repeated
  /// seeds get independent files.
  int checkpoint_every = 0;
  std::string checkpoint_dir = "checkpoints";
  bool resume = false;

  /// Batch-shape bucketing quanta for compiled training (active only
  /// under CompiledTrainEnabled(); see src/train/train_plan.h). Node
  /// and edge counts are padded up to these multiples to form the
  /// plan-bucket key, so an epoch's slightly-varying shapes share a
  /// small fixed set of recorded plans.
  int plan_bucket_nodes = 64;
  int plan_bucket_edges = 256;

  /// Encoder hyper-parameters. feature_dim and pna_delta are filled in
  /// automatically from the dataset.
  EncoderConfig encoder;

  /// Reweighting hyper-parameters (used only by Method::kOodGnn).
  OodGnnConfig ood;
};

/// Outcome of one training run. Split metrics are reported at the epoch
/// with the best validation metric (higher-is-better for accuracy and
/// ROC-AUC, lower-is-better for RMSE); −1 marks an absent split.
struct TrainResult {
  double train_metric = -1.0;
  double valid_metric = -1.0;
  double test_metric = -1.0;
  double test2_metric = -1.0;

  /// Mean weighted prediction loss per epoch (the Fig. 3 curve).
  std::vector<double> epoch_losses;

  /// Decorrelation loss after the inner weight step, per epoch
  /// (OOD-GNN only).
  std::vector<double> epoch_decorrelation_losses;

  /// Learned sample weights collected over the final epoch (the Fig. 4
  /// histogram input; empty for baselines).
  std::vector<float> final_weights;

  /// Dataset indices aligned with final_weights: final_weights[i] is
  /// the weight learned for graphs[final_weight_graphs[i]]. Enables
  /// correlating weights with per-graph properties.
  std::vector<size_t> final_weight_graphs;

  int64_t num_parameters = 0;
  double train_seconds = 0.0;
};

/// Trains `method` on the dataset's train split and evaluates on every
/// split. Deterministic given config.seed.
TrainResult TrainAndEvaluate(Method method, const GraphDataset& dataset,
                             const TrainConfig& config);

/// Evaluates an already-trained model on the given index split with the
/// dataset's native metric (accuracy / ROC-AUC / RMSE).
double EvaluateSplit(GraphPredictionModel* model, const GraphDataset& dataset,
                     const std::vector<size_t>& indices, int batch_size,
                     Rng* rng);

/// True when a larger metric value is better for this task type
/// (accuracy, ROC-AUC); false for RMSE.
bool HigherIsBetter(TaskType type);

}  // namespace oodgnn

#endif  // OODGNN_TRAIN_TRAINER_H_
