#ifndef OODGNN_TRAIN_METRICS_H_
#define OODGNN_TRAIN_METRICS_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace oodgnn {

/// Multi-class accuracy: fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int>& labels);

/// Row-wise argmax of a logits matrix.
std::vector<int> ArgmaxRows(const Tensor& logits);

/// Binary ROC-AUC from raw scores (higher = more positive). Ties are
/// handled by the rank-sum (Mann-Whitney) formulation. Returns 0.5 when
/// only one class is present.
double BinaryRocAuc(const std::vector<double>& scores,
                    const std::vector<int>& labels);

/// OGB-style multi-task ROC-AUC: per-task AUC over entries whose mask
/// is non-zero, averaged over tasks that contain both classes.
/// `scores`/`targets`/`mask` are [N, T]; an empty mask means all labels
/// present. Returns 0.5 if no task is evaluable.
double MultiTaskRocAuc(const Tensor& scores, const Tensor& targets,
                       const Tensor& mask);

/// Root mean squared error over all (optionally masked) entries.
double Rmse(const Tensor& predictions, const Tensor& targets,
            const Tensor& mask);

}  // namespace oodgnn

#endif  // OODGNN_TRAIN_METRICS_H_
