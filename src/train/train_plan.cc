#include "src/train/train_plan.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace {

/// A bucket that keeps outgrowing its recorded envelope stops
/// retracing after this many recordings; oversized blocks then fall
/// back to the heap individually (prefix-safe), which bounds the cost
/// of profile ping-pong between non-dominating shapes.
constexpr int kMaxRecordsPerBucket = 4;

int PadUp(int value, int quantum) {
  if (quantum <= 1) return value;
  return ((value + quantum - 1) / quantum) * quantum;
}

}  // namespace

TrainStepPlanner::TrainStepPlanner(int bucket_nodes, int bucket_edges)
    : bucket_nodes_(std::max(1, bucket_nodes)),
      bucket_edges_(std::max(1, bucket_edges)) {}

void TrainStepPlanner::PublishGauges() {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("train/plan/replays")
      .Set(static_cast<double>(stats_.replays));
  registry.GetGauge("train/plan/retraces")
      .Set(static_cast<double>(stats_.retraces));
  registry.GetGauge("train/plan/fallbacks")
      .Set(static_cast<double>(stats_.fallbacks));
  registry.GetGauge("train/plan/arena_bytes")
      .Set(static_cast<double>(stats_.arena_bytes));
}

std::vector<TrainStepPlanner::BucketReport> TrainStepPlanner::BucketReports()
    const {
  std::vector<BucketReport> reports;
  reports.reserve(buckets_.size());
  for (const auto& [key, bucket] : buckets_) {
    BucketReport report;
    report.graphs = std::get<0>(key);
    report.nodes = std::get<1>(key);
    report.edges = std::get<2>(key);
    report.steps = bucket.steps;
    report.replays = bucket.replays;
    report.retraces = std::max(0, bucket.records - 1);
    report.fallbacks = bucket.fallbacks;
    switch (bucket.phase) {
      case Phase::kWarmup: report.phase = "warmup"; break;
      case Phase::kRecord: report.phase = "record"; break;
      case Phase::kReady: report.phase = "ready"; break;
      case Phase::kEager: report.phase = "eager"; break;
    }
    report.plan_arena_bytes =
        bucket.plan != nullptr ? bucket.plan->capacity_bytes() : 0;
    reports.push_back(report);
  }
  return reports;
}

void TrainStepPlanner::RunStep(int num_graphs, int num_nodes, int num_edges,
                               const std::function<void()>& body) {
  const Key key{num_graphs, PadUp(num_nodes, bucket_nodes_),
                PadUp(num_edges, bucket_edges_)};
  Bucket& bucket = buckets_[key];
  ++bucket.steps;

  switch (bucket.phase) {
    case Phase::kWarmup: {
      // One eager step so every lazily-created cross-step tensor (leaf
      // gradient buffers above all) exists before recording — the
      // recorded allocation sequence then matches every later step's.
      body();
      ++stats_.warmups;
      bucket.phase = Phase::kRecord;
      break;
    }
    case Phase::kRecord: {
      PlanRecordScope scope;
      body();
      ComputePlan plan = scope.Finish();
      plan.max_graphs = num_graphs;
      plan.max_nodes = num_nodes;
      plan.max_edges = num_edges;
      if (plan.capacity_floats > arena_capacity_floats_) {
        // Shared arena only grows; between steps no plan-served block
        // is outstanding, so resizing cannot invalidate live tensors.
        arena_capacity_floats_ = plan.capacity_floats;
        arena_.Resize(arena_capacity_floats_);
        stats_.arena_bytes = arena_.capacity_floats() *
                             static_cast<std::int64_t>(sizeof(float));
      }
      ++stats_.records;
      ++bucket.records;
      if (bucket.records > 1) ++stats_.retraces;
      bucket.plan = std::make_shared<const ComputePlan>(std::move(plan));
      bucket.phase = Phase::kReady;
      OODGNN_LOG(Debug) << "train plan bucket (" << std::get<0>(key) << "g,"
                        << std::get<1>(key) << "n," << std::get<2>(key)
                        << "e): " << bucket.plan->Summary();
      break;
    }
    case Phase::kReady: {
      if ((num_nodes > bucket.plan->max_nodes ||
           num_edges > bucket.plan->max_edges ||
           num_graphs > bucket.plan->max_graphs) &&
          bucket.records < kMaxRecordsPerBucket) {
        // Envelope exceeded: retrace at the larger profile so the
        // bucket ratchets up to its ceiling instead of paying
        // per-block heap fallbacks forever.
        bucket.phase = Phase::kRecord;
        --bucket.steps;  // The recursive call re-counts this step.
        RunStep(num_graphs, num_nodes, num_edges, body);
        return;
      }
      PlanReplayStats replay_stats;
      {
        PlanReplayScope scope(bucket.plan, &arena_);
        body();
        replay_stats = scope.stats();
      }
      if (replay_stats.diverged) {
        ++stats_.fallbacks;
        ++bucket.fallbacks;
        ++bucket.strikes;
        // One strike: the structure changed (e.g. the reweighter
        // switched on) — retrace. Two consecutive: the method's op
        // stream is data-dependent — stop planning this bucket.
        bucket.phase =
            bucket.strikes >= 2 ? Phase::kEager : Phase::kRecord;
        if (bucket.phase == Phase::kEager) {
          OODGNN_LOG(Info)
              << "train plan bucket (" << std::get<0>(key) << "g,"
              << std::get<1>(key) << "n," << std::get<2>(key)
              << "e) demoted to eager after repeated divergence";
        }
      } else {
        ++stats_.replays;
        ++bucket.replays;
        if (replay_stats.heap_allocs > 0) {
          ++stats_.fallbacks;
          ++bucket.fallbacks;
        }
        bucket.strikes = 0;
      }
      break;
    }
    case Phase::kEager: {
      body();
      ++stats_.eager_steps;
      break;
    }
  }
  PublishGauges();
}

}  // namespace oodgnn
