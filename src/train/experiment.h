#ifndef OODGNN_TRAIN_EXPERIMENT_H_
#define OODGNN_TRAIN_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/train/trainer.h"
#include "src/util/flags.h"

namespace oodgnn {

/// Per-split metric samples across repeated seeds.
struct MethodScores {
  std::vector<double> train;
  std::vector<double> valid;
  std::vector<double> test;
  std::vector<double> test2;
  /// The last run's full TrainResult (loss curves, weights, params).
  TrainResult last_run;
};

/// Trains `method` on `dataset` for `num_seeds` seeds (seed, seed+1, …)
/// and collects the metrics of each run. The encoder readout is set to
/// RecommendedReadout(dataset.name), overriding base_config.
MethodScores RunSeeds(Method method, const GraphDataset& dataset,
                      const TrainConfig& base_config, int num_seeds);

/// Formats seeds' metrics as the paper's "mean±std" cell. With
/// `percent`, values are scaled ×100 and printed with 1 decimal;
/// otherwise printed with 2 decimals (RMSE-style).
std::string FormatCell(const std::vector<double>& values, bool percent);

/// Shared command-line handling for the table/figure benchmark
/// binaries: `--full` switches to paper-scale settings, `--seeds`,
/// `--epochs`, `--scale`, `--hidden`, `--layers`, `--batch`,
/// `--eval-every` override individual knobs. Observability: `--profile`
/// enables the tracer and per-kernel counters (src/obs) and prints
/// aggregate profile tables at exit; `--trace-json=<path>` writes the
/// per-epoch JSONL run journal; `--metrics-out=<prefix>` starts the
/// background exporter publishing <prefix>.prom / <prefix>.jsonl every
/// `--metrics-interval-ms` (default 1000, also reachable via
/// OODGNN_METRICS_OUT / OODGNN_METRICS_INTERVAL_MS); and
/// `--metrics-json=<path>` dumps one final registry snapshot as JSON
/// when the binary exits.
/// Fault tolerance: `--checkpoint-every=N` snapshots the full training
/// state every N epochs into `--checkpoint-dir` (default "checkpoints")
/// and `--resume` restores a compatible snapshot before training
/// (src/train/checkpoint.h).
struct BenchOptions {
  int seeds = 2;
  double data_scale = 1.0;
  bool full = false;
  TrainConfig train;

  /// Host logical-CPU count, captured once at flag-parse time and
  /// reused by every bench JSON emitter (std::thread's probe can
  /// legally return 0 — normalized to 1 here so the recorded value is
  /// always meaningful).
  int hardware_concurrency = 1;

  /// Parses flags, applying `--full` defaults first and explicit
  /// overrides second.
  static BenchOptions FromFlags(const Flags& flags);

  /// The process-wide logical-CPU count backing the field above:
  /// probed exactly once (std::thread::hardware_concurrency, falling
  /// back to sysconf when the probe legally returns 0, floored at 1).
  /// Bench binaries that bypass FromFlags call this directly so every
  /// committed BENCH_*.json records the same real value.
  static int HardwareConcurrency();
};

/// Applies a benchmark binary's own fast-mode defaults: each value is
/// used only when --full is absent AND the corresponding flag was not
/// given explicitly.
void ApplyFastDefaults(const Flags& flags, int seeds, int epochs,
                       double scale, BenchOptions* options);

/// Readout convention per benchmark family: sum pooling for the
/// TU-style size-shift datasets (the GIN paper's convention — and the
/// channel through which the size↔label spurious correlation reaches
/// the representation), mean pooling for the OGB molecule datasets and
/// the superpixel graphs (the OGB convention).
ReadoutKind RecommendedReadout(const std::string& dataset_name);

}  // namespace oodgnn

#endif  // OODGNN_TRAIN_EXPERIMENT_H_
