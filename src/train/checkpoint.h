#ifndef OODGNN_TRAIN_CHECKPOINT_H_
#define OODGNN_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/nn/optimizer.h"
#include "src/tensor/tensor.h"

namespace oodgnn {

/// Full snapshot of an in-flight training run (everything
/// TrainAndEvaluate mutates across epochs). Restoring a TrainState into
/// freshly constructed model/optimizer/reweighter objects and
/// continuing is bitwise identical to never having stopped: model
/// parameters, optimizer moments, the RNG stream, the shuffled epoch
/// order, the global-local weight bank (Eqs. 8–9), and the
/// best-validation bookkeeping are all captured.
struct TrainState {
  /// Run identity, validated before anything is restored so a
  /// checkpoint can never be resumed into a different experiment.
  std::string dataset_name;
  uint32_t method = 0;
  uint64_t seed = 0;
  uint32_t epochs = 0;
  uint32_t batch_size = 0;

  /// First epoch that has NOT been completed yet (resume entry point).
  uint32_t next_epoch = 0;

  /// Serialized Rng engine (Rng::SaveState) as of the end of the last
  /// completed epoch.
  std::string rng_state;

  /// The shuffled training order; the next epoch's shuffle permutes
  /// this in place, so it is part of the deterministic trajectory.
  std::vector<uint64_t> order;

  /// Model parameters in registration order, and the optimizer's slot
  /// state (Adam moments + step count).
  std::vector<Tensor> params;
  OptimizerState optimizer;

  /// Non-trainable module state (Module::Buffers), e.g. batch-norm
  /// running statistics. These evolve during training without
  /// gradients, and evaluation-mode forward passes read them, so
  /// omitting them would make a resumed run's metrics diverge even
  /// when the parameter trajectory is bitwise identical.
  std::vector<Tensor> buffers;

  /// Global-local weight bank (present only for OOD-GNN runs).
  bool has_bank = false;
  bool bank_initialized = false;
  std::vector<float> bank_gammas;
  std::vector<Tensor> bank_z;
  std::vector<Tensor> bank_w;

  /// Best-validation bookkeeping and the result-so-far (metrics at the
  /// best epoch, the loss curves, and any final-epoch weights).
  double best_valid = 0.0;
  double train_metric = -1.0;
  double valid_metric = -1.0;
  double test_metric = -1.0;
  double test2_metric = -1.0;
  std::vector<double> epoch_losses;
  std::vector<double> epoch_decorrelation_losses;
  std::vector<float> final_weights;
  std::vector<uint64_t> final_weight_graphs;
};

/// Exit code used by the crash-injection hooks; tests assert on it to
/// distinguish an injected crash from any other failure.
inline constexpr int kCrashExitCode = 137;

/// Canonical snapshot file name for one (dataset, method, seed) run
/// inside `dir` (empty dir means the current directory).
std::string CheckpointPath(const std::string& dir,
                           const std::string& dataset_name,
                           const std::string& method_name, uint64_t seed);

/// Creates `path` (and missing parents) like `mkdir -p`. Returns false
/// when a component exists as a non-directory or creation fails.
bool EnsureDirectory(const std::string& path);

/// Atomically writes `state` to `path`: the framed payload (magic,
/// version, size, FNV-1a checksum) goes to `path + ".tmp"`, is fsynced,
/// and only then renamed over `path`, so a crash mid-write can never
/// destroy the previous snapshot. Honors the OODGNN_CRASH_IN_WRITE
/// fault hook (see below). Returns false on I/O failure.
bool SaveTrainState(const std::string& path, const TrainState& state);

/// Loads a snapshot written by SaveTrainState. Hardened against hostile
/// bytes: the header-declared payload size must match the file's actual
/// size, the checksum must verify, and every count inside the payload
/// is bounds-checked against the remaining bytes before allocation.
/// Returns false with a logged reason on any corruption; never crashes
/// or over-allocates.
bool LoadTrainState(const std::string& path, TrainState* state);

/// Crash-injection hooks for fault-tolerance tests, driven by
/// environment variables (read at call time):
///  - OODGNN_CRASH_AFTER_EPOCH=<n>: the trainer calls
///    CrashAfterEpochRequested(n) after checkpointing epoch n and, if it
///    matches, terminates via CrashNow.
///  - OODGNN_CRASH_IN_WRITE=1: SaveTrainState aborts after writing a
///    partial temp file (exercising the atomic-rename protocol).
bool CrashAfterEpochRequested(int completed_epoch);
[[noreturn]] void CrashNow(const char* where);

}  // namespace oodgnn

#endif  // OODGNN_TRAIN_CHECKPOINT_H_
