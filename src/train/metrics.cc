#include "src/train/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/check.h"

namespace oodgnn {

std::vector<int> ArgmaxRows(const Tensor& logits) {
  std::vector<int> out(static_cast<size_t>(logits.rows()));
  for (int r = 0; r < logits.rows(); ++r) {
    const float* row = logits.row(r);
    out[static_cast<size_t>(r)] = static_cast<int>(
        std::max_element(row, row + logits.cols()) - row);
  }
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  OODGNN_CHECK_EQ(static_cast<size_t>(logits.rows()), labels.size());
  OODGNN_CHECK_GT(logits.rows(), 0);
  std::vector<int> predictions = ArgmaxRows(logits);
  int correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double BinaryRocAuc(const std::vector<double>& scores,
                    const std::vector<int>& labels) {
  OODGNN_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  size_t positives = 0;
  for (int y : labels) {
    OODGNN_CHECK(y == 0 || y == 1);
    positives += static_cast<size_t>(y);
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-sum AUC with midranks for ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) /
                               2.0 +
                           1.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) positive_rank_sum += midrank;
    }
    i = j + 1;
  }
  const double p = static_cast<double>(positives);
  const double q = static_cast<double>(negatives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * q);
}

double MultiTaskRocAuc(const Tensor& scores, const Tensor& targets,
                       const Tensor& mask) {
  OODGNN_CHECK(scores.SameShape(targets));
  OODGNN_CHECK(mask.empty() || scores.SameShape(mask));
  double total = 0.0;
  int evaluable_tasks = 0;
  for (int t = 0; t < scores.cols(); ++t) {
    std::vector<double> task_scores;
    std::vector<int> task_labels;
    for (int r = 0; r < scores.rows(); ++r) {
      if (!mask.empty() && mask.at(r, t) == 0.f) continue;
      task_scores.push_back(static_cast<double>(scores.at(r, t)));
      task_labels.push_back(targets.at(r, t) > 0.5f ? 1 : 0);
    }
    const bool has_both =
        std::count(task_labels.begin(), task_labels.end(), 1) > 0 &&
        std::count(task_labels.begin(), task_labels.end(), 0) > 0;
    if (!has_both) continue;
    total += BinaryRocAuc(task_scores, task_labels);
    ++evaluable_tasks;
  }
  return evaluable_tasks > 0 ? total / evaluable_tasks : 0.5;
}

double Rmse(const Tensor& predictions, const Tensor& targets,
            const Tensor& mask) {
  OODGNN_CHECK(predictions.SameShape(targets));
  OODGNN_CHECK(mask.empty() || predictions.SameShape(mask));
  double total = 0.0;
  int64_t count = 0;
  for (int i = 0; i < predictions.size(); ++i) {
    if (!mask.empty() && mask[i] == 0.f) continue;
    const double diff =
        static_cast<double>(predictions[i]) - static_cast<double>(targets[i]);
    total += diff * diff;
    ++count;
  }
  OODGNN_CHECK_GT(count, 0);
  return std::sqrt(total / static_cast<double>(count));
}

}  // namespace oodgnn
