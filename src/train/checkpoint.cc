#include "src/train/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/nn/serialize.h"
#include "src/util/file.h"
#include "src/util/logging.h"

namespace oodgnn {
namespace {

constexpr uint32_t kStateMagic = 0x4F4F4443;  // "OODC"
constexpr uint32_t kStateVersion = 1;
// magic + version + payload size + checksum.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string BuildPayload(const TrainState& state) {
  BinaryPayloadWriter writer;
  writer.PutString(state.dataset_name);
  writer.PutU32(state.method);
  writer.PutU64(state.seed);
  writer.PutU32(state.epochs);
  writer.PutU32(state.batch_size);
  writer.PutU32(state.next_epoch);
  writer.PutString(state.rng_state);
  writer.PutU64Vector(state.order);
  writer.PutU32(static_cast<uint32_t>(state.params.size()));
  for (const Tensor& param : state.params) writer.PutTensor(param);
  writer.PutI64(state.optimizer.step_count);
  writer.PutU32(static_cast<uint32_t>(state.optimizer.slots.size()));
  for (const Tensor& slot : state.optimizer.slots) writer.PutTensor(slot);
  writer.PutU32(static_cast<uint32_t>(state.buffers.size()));
  for (const Tensor& buffer : state.buffers) writer.PutTensor(buffer);
  writer.PutU8(state.has_bank ? 1 : 0);
  if (state.has_bank) {
    writer.PutU8(state.bank_initialized ? 1 : 0);
    writer.PutF32Vector(state.bank_gammas);
    for (const Tensor& z : state.bank_z) writer.PutTensor(z);
    for (const Tensor& w : state.bank_w) writer.PutTensor(w);
  }
  writer.PutF64(state.best_valid);
  writer.PutF64(state.train_metric);
  writer.PutF64(state.valid_metric);
  writer.PutF64(state.test_metric);
  writer.PutF64(state.test2_metric);
  writer.PutF64Vector(state.epoch_losses);
  writer.PutF64Vector(state.epoch_decorrelation_losses);
  writer.PutF32Vector(state.final_weights);
  writer.PutU64Vector(state.final_weight_graphs);
  return writer.payload();
}

bool ParsePayload(const std::string& path, BinaryPayloadReader* reader,
                  TrainState* state) {
  uint32_t param_count = 0;
  uint32_t slot_count = 0;
  uint8_t has_bank = 0;
  if (!reader->GetString(&state->dataset_name) ||
      !reader->GetU32(&state->method) || !reader->GetU64(&state->seed) ||
      !reader->GetU32(&state->epochs) ||
      !reader->GetU32(&state->batch_size) ||
      !reader->GetU32(&state->next_epoch) ||
      !reader->GetString(&state->rng_state) ||
      !reader->GetU64Vector(&state->order) || !reader->GetU32(&param_count)) {
    OODGNN_LOG(Error) << path << ": truncated checkpoint preamble";
    return false;
  }
  if (state->next_epoch > state->epochs) {
    OODGNN_LOG(Error) << path << ": next_epoch " << state->next_epoch
                      << " exceeds declared horizon " << state->epochs;
    return false;
  }
  // Every tensor record needs at least its 8-byte shape header; reject
  // inflated counts before reserving anything.
  if (static_cast<uint64_t>(param_count) * 8 > reader->remaining()) {
    OODGNN_LOG(Error) << path << ": parameter count " << param_count
                      << " exceeds the remaining payload";
    return false;
  }
  state->params.resize(param_count);
  for (Tensor& param : state->params) {
    if (!reader->GetTensor(&param)) {
      OODGNN_LOG(Error) << path << ": truncated or oversized parameter";
      return false;
    }
  }
  if (!reader->GetI64(&state->optimizer.step_count) ||
      state->optimizer.step_count < 0 || !reader->GetU32(&slot_count) ||
      static_cast<uint64_t>(slot_count) * 8 > reader->remaining()) {
    OODGNN_LOG(Error) << path << ": malformed optimizer section";
    return false;
  }
  state->optimizer.slots.resize(slot_count);
  for (Tensor& slot : state->optimizer.slots) {
    if (!reader->GetTensor(&slot)) {
      OODGNN_LOG(Error) << path << ": truncated or oversized optimizer slot";
      return false;
    }
  }
  uint32_t buffer_count = 0;
  if (!reader->GetU32(&buffer_count) ||
      static_cast<uint64_t>(buffer_count) * 8 > reader->remaining()) {
    OODGNN_LOG(Error) << path << ": malformed buffer section";
    return false;
  }
  state->buffers.resize(buffer_count);
  for (Tensor& buffer : state->buffers) {
    if (!reader->GetTensor(&buffer)) {
      OODGNN_LOG(Error) << path << ": truncated or oversized buffer";
      return false;
    }
  }
  if (!reader->GetU8(&has_bank) || has_bank > 1) {
    OODGNN_LOG(Error) << path << ": malformed bank flag";
    return false;
  }
  state->has_bank = has_bank == 1;
  if (state->has_bank) {
    uint8_t initialized = 0;
    if (!reader->GetU8(&initialized) || initialized > 1 ||
        !reader->GetF32Vector(&state->bank_gammas)) {
      OODGNN_LOG(Error) << path << ": malformed bank header";
      return false;
    }
    state->bank_initialized = initialized == 1;
    const size_t groups = state->bank_gammas.size();
    if (groups * 16 > reader->remaining()) {
      OODGNN_LOG(Error) << path << ": bank group count " << groups
                        << " exceeds the remaining payload";
      return false;
    }
    state->bank_z.resize(groups);
    state->bank_w.resize(groups);
    for (Tensor& z : state->bank_z) {
      if (!reader->GetTensor(&z)) {
        OODGNN_LOG(Error) << path << ": truncated bank representations";
        return false;
      }
    }
    for (Tensor& w : state->bank_w) {
      if (!reader->GetTensor(&w)) {
        OODGNN_LOG(Error) << path << ": truncated bank weights";
        return false;
      }
    }
  }
  if (!reader->GetF64(&state->best_valid) ||
      !reader->GetF64(&state->train_metric) ||
      !reader->GetF64(&state->valid_metric) ||
      !reader->GetF64(&state->test_metric) ||
      !reader->GetF64(&state->test2_metric) ||
      !reader->GetF64Vector(&state->epoch_losses) ||
      !reader->GetF64Vector(&state->epoch_decorrelation_losses) ||
      !reader->GetF32Vector(&state->final_weights) ||
      !reader->GetU64Vector(&state->final_weight_graphs)) {
    OODGNN_LOG(Error) << path << ": truncated bookkeeping section";
    return false;
  }
  if (!reader->AtEnd()) {
    OODGNN_LOG(Error) << path << ": " << reader->remaining()
                      << " trailing payload bytes";
    return false;
  }
  return true;
}

/// Best-effort fsync of the directory containing `path` so the rename
/// itself is durable.
void SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool CrashInWriteRequested() {
  const char* value = std::getenv("OODGNN_CRASH_IN_WRITE");
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace

std::string CheckpointPath(const std::string& dir,
                           const std::string& dataset_name,
                           const std::string& method_name, uint64_t seed) {
  std::string path = dir.empty() ? "." : dir;
  path += '/';
  path += dataset_name.empty() ? "run" : dataset_name;
  path += '_';
  path += method_name;
  path += "_seed";
  path += std::to_string(seed);
  path += ".ckpt";
  return path;
}

bool EnsureDirectory(const std::string& path) {
  if (path.empty() || path == ".") return true;
  std::string prefix;
  size_t begin = 0;
  while (begin <= path.size()) {
    size_t end = path.find('/', begin);
    if (end == std::string::npos) end = path.size();
    prefix = path.substr(0, end);
    begin = end + 1;
    if (prefix.empty() || prefix == ".") continue;
    struct stat info;
    if (::stat(prefix.c_str(), &info) == 0) {
      if (!S_ISDIR(info.st_mode)) {
        OODGNN_LOG(Error) << prefix << " exists and is not a directory";
        return false;
      }
      continue;
    }
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      OODGNN_LOG(Error) << "cannot create directory " << prefix;
      return false;
    }
  }
  return true;
}

bool SaveTrainState(const std::string& path, const TrainState& state) {
  const std::string payload = BuildPayload(state);
  BinaryPayloadWriter header;
  header.PutU32(kStateMagic);
  header.PutU32(kStateVersion);
  header.PutU64(payload.size());
  header.PutU64(Fnv1a64(payload.data(), payload.size()));

  const std::string tmp_path = path + ".tmp";
  FilePtr file(std::fopen(tmp_path.c_str(), "wb"));
  if (!file) {
    OODGNN_LOG(Error) << "cannot open " << tmp_path << " for writing";
    return false;
  }
  if (std::fwrite(header.payload().data(), 1, header.payload().size(),
                  file.get()) != header.payload().size()) {
    return false;
  }
  if (CrashInWriteRequested()) {
    // Fault injection: die with only the header and half the payload in
    // the temp file. The durable snapshot at `path` must survive.
    std::fwrite(payload.data(), 1, payload.size() / 2, file.get());
    std::fflush(file.get());
    CrashNow("SaveTrainState(OODGNN_CRASH_IN_WRITE)");
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file.get()) !=
          payload.size()) {
    return false;
  }
  if (std::fflush(file.get()) != 0 || ::fsync(::fileno(file.get())) != 0) {
    OODGNN_LOG(Error) << "cannot flush " << tmp_path;
    return false;
  }
  file.reset();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    OODGNN_LOG(Error) << "cannot rename " << tmp_path << " to " << path;
    return false;
  }
  SyncParentDirectory(path);
  return true;
}

bool LoadTrainState(const std::string& path, TrainState* state) {
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) {
    OODGNN_LOG(Error) << "cannot open " << path << " for reading";
    return false;
  }
  if (bytes.size() < kHeaderBytes) {
    OODGNN_LOG(Error) << path << ": file smaller than the checkpoint header";
    return false;
  }
  BinaryPayloadReader header(bytes.data(), kHeaderBytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  header.GetU32(&magic);
  header.GetU32(&version);
  header.GetU64(&payload_size);
  header.GetU64(&checksum);
  if (magic != kStateMagic) {
    OODGNN_LOG(Error) << path << " is not an oodgnn training checkpoint";
    return false;
  }
  if (version != kStateVersion) {
    OODGNN_LOG(Error) << path << ": unsupported training checkpoint version "
                      << version;
    return false;
  }
  // The declared payload must exactly match the bytes on disk — both
  // truncation and an oversized header are rejected before any of the
  // payload is interpreted (or allocated against).
  if (payload_size != bytes.size() - kHeaderBytes) {
    OODGNN_LOG(Error) << path << ": header declares " << payload_size
                      << " payload bytes but the file holds "
                      << bytes.size() - kHeaderBytes;
    return false;
  }
  const char* payload = bytes.data() + kHeaderBytes;
  if (Fnv1a64(payload, static_cast<size_t>(payload_size)) != checksum) {
    OODGNN_LOG(Error) << path << ": checksum mismatch (corrupted checkpoint)";
    return false;
  }
  TrainState parsed;
  BinaryPayloadReader reader(payload, static_cast<size_t>(payload_size));
  if (!ParsePayload(path, &reader, &parsed)) return false;
  *state = std::move(parsed);
  return true;
}

bool CrashAfterEpochRequested(int completed_epoch) {
  const char* value = std::getenv("OODGNN_CRASH_AFTER_EPOCH");
  return value != nullptr && std::atoi(value) == completed_epoch;
}

void CrashNow(const char* where) {
  std::fprintf(stderr, "[oodgnn] injected crash: %s\n", where);
  std::fflush(nullptr);
  ::_exit(kCrashExitCode);
}

}  // namespace oodgnn
