#ifndef OODGNN_TRAIN_TRAIN_PLAN_H_
#define OODGNN_TRAIN_TRAIN_PLAN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/tensor/exec_plan.h"

namespace oodgnn {

/// Counters a TrainStepPlanner accumulates over a run. Also exported
/// live through the global metrics registry as the train/plan/*
/// gauges after every step.
struct TrainPlanStats {
  std::int64_t warmups = 0;   ///< Eager steps that materialize lazy state.
  std::int64_t records = 0;   ///< Steps traced into a plan (incl. retraces).
  std::int64_t retraces = 0;  ///< Re-recordings after the bucket's first.
  std::int64_t replays = 0;   ///< Steps fully served by a plan.
  std::int64_t fallbacks = 0; ///< Replays that diverged or touched the heap.
  std::int64_t eager_steps = 0;  ///< Steps in buckets demoted to eager.
  std::int64_t arena_bytes = 0;  ///< Current shared PlanArena capacity.
};

/// Plan-then-execute for the training loop (DESIGN.md §17): buckets
/// mini-batches by their padded shape profile, records one eager
/// forward+backward per bucket into a ComputePlan (gradient buffers
/// included — their lifetimes mirror forward liveness, so one
/// recording covers both phases), and replays it for every later
/// same-bucket step with zero steady-state heap tensor allocation.
///
/// Per-bucket lifecycle:
///   warmup  — first step runs eager, materializing lazy cross-step
///             state (leaf gradient buffers) so the recorded
///             allocation sequence matches every later step's;
///   record  — second step runs under a PlanRecordScope; the traced
///             plan's envelope is the step's actual batch profile;
///   ready   — later steps replay. A batch exceeding the recorded
///             envelope triggers a retrace (bounded per bucket; after
///             the bound, oversized blocks fall back to the heap
///             individually, prefix-safe). A structural divergence
///             (op/kernel stream mismatch — e.g. a method with
///             data-dependent graph structure) counts a strike:
///             one strike retraces, two consecutive demote the bucket
///             to eager for the rest of the run. A clean replay
///             clears strikes.
///
/// Replay is bitwise-identical to eager by construction: the same
/// kernels run in the same order on the same values; only the buffer
/// addresses differ. Single-threaded use (the trainer's loop thread);
/// backend workers never allocate tensors.
class TrainStepPlanner {
 public:
  /// Shapes are padded up to these quanta to form the bucket key
  /// (graph count stays exact: targets/labels rows depend on it).
  TrainStepPlanner(int bucket_nodes, int bucket_edges);

  /// Runs one training step (`body` = forward + backward + optimizer)
  /// under this bucket's current lifecycle phase. The batch must be
  /// built *before* this call (the profile is the bucket key) and
  /// outside any plan scope — see ScopedDynamicArena.
  void RunStep(int num_graphs, int num_nodes, int num_edges,
               const std::function<void()>& body);

  const TrainPlanStats& stats() const { return stats_; }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Per-bucket accounting for benchmark reports ("retrace/fallback
  /// counts per bucket" in BENCH_training.json).
  struct BucketReport {
    int graphs = 0;
    int nodes = 0;   ///< Padded (bucket-key) node count.
    int edges = 0;   ///< Padded (bucket-key) edge count.
    std::int64_t steps = 0;
    std::int64_t replays = 0;
    std::int64_t retraces = 0;
    std::int64_t fallbacks = 0;
    const char* phase = "";
    std::int64_t plan_arena_bytes = 0;  ///< This bucket's plan capacity.
  };
  std::vector<BucketReport> BucketReports() const;

 private:
  enum class Phase { kWarmup, kRecord, kReady, kEager };

  struct Bucket {
    Phase phase = Phase::kWarmup;
    std::shared_ptr<const ComputePlan> plan;
    int strikes = 0;
    int records = 0;
    std::int64_t steps = 0;
    std::int64_t replays = 0;
    std::int64_t fallbacks = 0;
  };

  using Key = std::tuple<int, int, int>;  // (graphs, nodes^, edges^)

  void PublishGauges();

  int bucket_nodes_;
  int bucket_edges_;
  std::map<Key, Bucket> buckets_;
  PlanArena arena_;
  std::int64_t arena_capacity_floats_ = 0;
  TrainPlanStats stats_;
};

}  // namespace oodgnn

#endif  // OODGNN_TRAIN_TRAIN_PLAN_H_
