#include "src/train/experiment.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "src/obs/exporter.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/arena.h"
#include "src/tensor/backend.h"
#include "src/util/check.h"

namespace oodgnn {
namespace {

void PrintProfileReport() {
  const std::vector<obs::PhaseStats> phases = obs::TraceSnapshot();
  if (!phases.empty()) {
    std::printf("\n=== Profile: phases (--profile) ===\n%s",
                obs::RenderProfile(phases).c_str());
  }
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().GetSnapshot();
  if (!metrics.empty()) {
    std::printf("\n=== Profile: kernel counters ===\n%s",
                metrics.ToTableString().c_str());
  }
  std::fflush(stdout);
}

/// Prints the aggregate phase/kernel tables once, when the binary
/// exits — every benchmark gets a final profile report for free.
void RegisterProfileReportAtExit() {
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(PrintProfileReport); });
}

}  // namespace

int BenchOptions::HardwareConcurrency() {
  static const int cores = [] {
    unsigned probed = std::thread::hardware_concurrency();
    if (probed == 0) {
      // The standard allows a 0 "not computable" answer; fall back to
      // the online-processor count before giving up.
      const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
      probed = online > 0 ? static_cast<unsigned>(online) : 1;
    }
    return static_cast<int>(probed);
  }();
  return cores;
}

MethodScores RunSeeds(Method method, const GraphDataset& dataset,
                      const TrainConfig& base_config, int num_seeds) {
  OODGNN_CHECK_GT(num_seeds, 0);
  MethodScores scores;
  for (int s = 0; s < num_seeds; ++s) {
    TrainConfig config = base_config;
    config.encoder.readout = RecommendedReadout(dataset.name);
    config.seed = base_config.seed + static_cast<uint64_t>(s);
    TrainResult result = TrainAndEvaluate(method, dataset, config);
    scores.train.push_back(result.train_metric);
    scores.valid.push_back(result.valid_metric);
    scores.test.push_back(result.test_metric);
    if (result.test2_metric >= 0) scores.test2.push_back(result.test2_metric);
    scores.last_run = std::move(result);
  }
  return scores;
}

std::string FormatCell(const std::vector<double>& values, bool percent) {
  if (values.empty()) return "-";
  std::vector<double> scaled = values;
  if (percent) {
    for (double& v : scaled) v *= 100.0;
  }
  double mean = 0.0;
  for (double v : scaled) mean += v;
  mean /= static_cast<double>(scaled.size());
  double var = 0.0;
  for (double v : scaled) var += (v - mean) * (v - mean);
  const double stddev =
      scaled.size() > 1
          ? std::sqrt(var / static_cast<double>(scaled.size() - 1))
          : 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), percent ? "%.1f±%.1f" : "%.2f±%.2f", mean,
                stddev);
  return buf;
}

ReadoutKind RecommendedReadout(const std::string& dataset_name) {
  if (dataset_name == "TRIANGLES" || dataset_name == "COLLAB" ||
      dataset_name == "PROTEINS_25" || dataset_name == "DD_200" ||
      dataset_name == "DD_300") {
    return ReadoutKind::kSum;
  }
  return ReadoutKind::kMean;
}

void ApplyFastDefaults(const Flags& flags, int seeds, int epochs,
                       double scale, BenchOptions* options) {
  if (options->full) return;
  if (!flags.Has("seeds")) options->seeds = seeds;
  if (!flags.Has("epochs")) options->train.epochs = epochs;
  if (!flags.Has("scale")) options->data_scale = scale;
}

BenchOptions BenchOptions::FromFlags(const Flags& flags) {
  BenchOptions options;
  options.full = flags.GetBool("full", false);
  if (options.full) {
    // Paper-leaning settings: bigger data, more seeds, longer training.
    options.seeds = 5;
    options.data_scale = 3.0;
    options.train.epochs = 60;
    options.train.encoder.hidden_dim = 64;
  } else {
    options.seeds = 2;
    options.data_scale = 1.0;
    options.train.epochs = 20;
    options.train.encoder.hidden_dim = 32;
  }
  options.train.batch_size = 64;
  options.train.lr = 1e-3f;
  options.train.encoder.num_layers = 3;
  options.train.encoder.dropout = 0.3f;

  options.seeds = flags.GetInt("seeds", options.seeds);
  options.data_scale = flags.GetDouble("scale", options.data_scale);
  options.train.epochs = flags.GetInt("epochs", options.train.epochs);
  options.train.batch_size = flags.GetInt("batch", options.train.batch_size);
  options.train.lr =
      static_cast<float>(flags.GetDouble("lr", options.train.lr));
  options.train.encoder.hidden_dim =
      flags.GetInt("hidden", options.train.encoder.hidden_dim);
  options.train.encoder.num_layers =
      flags.GetInt("layers", options.train.encoder.num_layers);
  options.train.verbose = flags.GetBool("verbose", false);
  // Eval cadence: evaluate every N epochs (final epoch always). The
  // training trajectory is cadence-invariant, so this is a pure
  // wall-clock knob for long runs.
  options.train.eval_every =
      flags.GetInt("eval-every", options.train.eval_every);
  // Fault tolerance: periodic full-state snapshots plus auto-resume
  // (src/train/checkpoint.h). Snapshot files are keyed by (dataset,
  // method, seed), so multi-seed sweeps resume per run.
  options.train.checkpoint_every = flags.GetInt("checkpoint-every", 0);
  options.train.checkpoint_dir =
      flags.GetString("checkpoint-dir", options.train.checkpoint_dir);
  options.train.resume = flags.GetBool("resume", false);
  // Shared --threads handling: every benchmark binary picks its compute
  // backend here (serial for 1, pooled workers otherwise).
  SetBackendThreads(flags.GetThreads(1));
  // Shared --compiled handling: arena-backed no-grad execution for eval
  // batches and the serving engine (also reachable via
  // OODGNN_COMPILED).
  SetCompiledEnabled(flags.GetCompiled(CompiledEnabled()));
  // Shared --compiled-train handling: plan-then-execute training with
  // batch-shape bucketing (also reachable via OODGNN_COMPILED_TRAIN;
  // see src/train/train_plan.h).
  SetCompiledTrainEnabled(flags.GetCompiledTrain(CompiledTrainEnabled()));
  options.train.plan_bucket_nodes =
      flags.GetTrainBucketNodes(options.train.plan_bucket_nodes);
  options.train.plan_bucket_edges =
      flags.GetTrainBucketEdges(options.train.plan_bucket_edges);
  // Captured once so every bench JSON emitter records the same, real
  // value instead of re-probing (and so a probe returning 0 cannot
  // leak into committed benchmark artifacts).
  options.hardware_concurrency = HardwareConcurrency();
  // Shared observability handling: --profile turns on the tracer and
  // the per-kernel counters (also reachable via OODGNN_PROFILE) and
  // schedules the final profile tables; --trace-json=<path> opens the
  // JSONL run journal the trainer writes per-epoch records to.
  if (flags.GetBool("profile", false)) obs::SetProfilingEnabled(true);
  if (obs::ProfilingEnabled()) RegisterProfileReportAtExit();
  const std::string trace_json = flags.GetString("trace-json", "");
  if (!trace_json.empty()) obs::OpenGlobalJournal(trace_json);
  // Shared metrics handling: --metrics-out=<prefix> streams the global
  // registry to <prefix>.prom / <prefix>.jsonl on a background thread;
  // --metrics-json=<path> writes one final snapshot at exit.
  const std::string metrics_out = flags.GetMetricsOut();
  if (!metrics_out.empty()) {
    obs::StartGlobalExporter(metrics_out, flags.GetMetricsIntervalMs());
  }
  const std::string metrics_json = flags.GetString("metrics-json", "");
  if (!metrics_json.empty()) obs::RegisterMetricsJsonDumpAtExit(metrics_json);
  return options;
}

}  // namespace oodgnn
