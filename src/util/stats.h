#ifndef OODGNN_UTIL_STATS_H_
#define OODGNN_UTIL_STATS_H_

#include <string>
#include <vector>

namespace oodgnn {

/// Arithmetic mean of `values`. Requires a non-empty input.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator). Returns 0 for fewer than
/// two values.
double StdDev(const std::vector<double>& values);

/// Formats "mean±std" with the given number of decimals, e.g. "78.4±0.9".
std::string MeanStdString(const std::vector<double>& values, int decimals = 1);

/// Histogram with uniformly spaced bins over [lo, hi]. Values outside the
/// range are clamped into the boundary bins.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<int> counts;

  /// Bin centers, one per count.
  std::vector<double> BinCenters() const;
};

/// Builds a histogram of `values` with `bins` buckets spanning
/// [min(values), max(values)] (or [lo, hi] if provided explicitly).
Histogram MakeHistogram(const std::vector<double>& values, int bins);
Histogram MakeHistogram(const std::vector<double>& values, int bins,
                        double lo, double hi);

/// Renders a histogram as fixed-width ASCII bars, one line per bin.
std::string RenderHistogram(const Histogram& hist, int max_bar_width = 40);

}  // namespace oodgnn

#endif  // OODGNN_UTIL_STATS_H_
