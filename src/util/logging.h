#ifndef OODGNN_UTIL_LOGGING_H_
#define OODGNN_UTIL_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

namespace oodgnn {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is printed to stderr. Messages below
/// this level are dropped. Default: kInfo, or the OODGNN_LOG_LEVEL
/// environment variable if set (accepts "debug"/"info"/"warning"/
/// "error" or the numeric values 0–3; unknown values are ignored).
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Builds a log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace oodgnn

#define OODGNN_LOG(level)                                       \
  ::oodgnn::internal_logging::LogMessage(                       \
      ::oodgnn::LogLevel::k##level, __FILE__, __LINE__)

#define OODGNN_LOGGING_CONCAT_IMPL(a, b) a##b
#define OODGNN_LOGGING_CONCAT(a, b) OODGNN_LOGGING_CONCAT_IMPL(a, b)

/// Emits the message on the 1st, (n+1)th, (2n+1)th, … execution of this
/// call site (a per-site atomic counter), so per-batch warnings cannot
/// flood stderr. Expands to a declaration plus an if — use it as a full
/// statement inside a braced block, never as the body of an unbraced if.
#define OODGNN_LOG_EVERY_N(level, n)                                       \
  static ::std::atomic<long> OODGNN_LOGGING_CONCAT(oodgnn_log_occurrences_, \
                                                   __LINE__){0};            \
  if (OODGNN_LOGGING_CONCAT(oodgnn_log_occurrences_, __LINE__)              \
              .fetch_add(1, ::std::memory_order_relaxed) %                  \
          (n) ==                                                            \
      0)                                                                    \
  OODGNN_LOG(level)

#endif  // OODGNN_UTIL_LOGGING_H_
