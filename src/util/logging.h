#ifndef OODGNN_UTIL_LOGGING_H_
#define OODGNN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace oodgnn {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is printed to stderr. Messages below
/// this level are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Builds a log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace oodgnn

#define OODGNN_LOG(level)                                       \
  ::oodgnn::internal_logging::LogMessage(                       \
      ::oodgnn::LogLevel::k##level, __FILE__, __LINE__)

#endif  // OODGNN_UTIL_LOGGING_H_
