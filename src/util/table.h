#ifndef OODGNN_UTIL_TABLE_H_
#define OODGNN_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace oodgnn {

/// Fixed-column ASCII table used by the benchmark harnesses to print
/// paper-style result tables (one row per method, one column per
/// dataset/metric).
class ResultTable {
 public:
  /// Creates a table with the given column headers. The first column is
  /// conventionally the row label ("Method").
  explicit ResultTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns and a header separator.
  std::string ToString() const;

  /// Renders the table as CSV (no alignment, comma-separated).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oodgnn

#endif  // OODGNN_UTIL_TABLE_H_
