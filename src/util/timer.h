#ifndef OODGNN_UTIL_TIMER_H_
#define OODGNN_UTIL_TIMER_H_

#include <chrono>

namespace oodgnn {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace oodgnn

#endif  // OODGNN_UTIL_TIMER_H_
