#ifndef OODGNN_UTIL_TIMER_H_
#define OODGNN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace oodgnn {

/// Microseconds on the process-wide monotonic clock. The tracer
/// (src/obs/trace), the run journal (src/obs/journal) and Timer all
/// read this one clock, so their timestamps are directly comparable.
inline std::int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_us_(NowMicros()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_us_ = NowMicros(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return static_cast<double>(NowMicros() - start_us_) * 1e-6;
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::int64_t start_us_;
};

}  // namespace oodgnn

#endif  // OODGNN_UTIL_TIMER_H_
