#ifndef OODGNN_UTIL_CHECK_H_
#define OODGNN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace oodgnn {
namespace internal_check {

/// Terminates the process after printing a contract-violation message.
/// Used by the OODGNN_CHECK family of macros; not intended to be called
/// directly.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "[oodgnn] CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

/// Helper that lazily builds the streamed message for a failed check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace oodgnn

/// Aborts with a diagnostic when `condition` is false. Streams extra
/// context: OODGNN_CHECK(n > 0) << "n=" << n;
#define OODGNN_CHECK(condition)                                       \
  if (condition) {                                                    \
  } else                                                              \
    ::oodgnn::internal_check::CheckMessageBuilder(__FILE__, __LINE__, \
                                                  #condition)

#define OODGNN_CHECK_EQ(a, b) OODGNN_CHECK((a) == (b))
#define OODGNN_CHECK_NE(a, b) OODGNN_CHECK((a) != (b))
#define OODGNN_CHECK_LT(a, b) OODGNN_CHECK((a) < (b))
#define OODGNN_CHECK_LE(a, b) OODGNN_CHECK((a) <= (b))
#define OODGNN_CHECK_GT(a, b) OODGNN_CHECK((a) > (b))
#define OODGNN_CHECK_GE(a, b) OODGNN_CHECK((a) >= (b))

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define OODGNN_DCHECK(condition) OODGNN_CHECK(true)
#else
#define OODGNN_DCHECK(condition) OODGNN_CHECK(condition)
#endif

#endif  // OODGNN_UTIL_CHECK_H_
