#include "src/util/rng.h"

#include <numeric>
#include <sstream>

#include "src/util/check.h"

namespace oodgnn {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  OODGNN_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  OODGNN_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  OODGNN_CHECK_GT(total, 0.0) << "categorical weights must not all be zero";
  double r = Uniform(0.0, total);
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (r < cumulative) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork() { return Rng(engine_()); }

std::string Rng::SaveState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) return false;
  engine_ = restored;
  return true;
}

}  // namespace oodgnn
