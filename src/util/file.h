#ifndef OODGNN_UTIL_FILE_H_
#define OODGNN_UTIL_FILE_H_

#include <string>

namespace oodgnn {

/// Writes `content` to `path`, replacing any existing file. Returns
/// false on I/O failure.
bool WriteStringToFile(const std::string& path, const std::string& content);

/// Reads the whole file into `content`. Returns false if the file
/// cannot be opened or read.
bool ReadFileToString(const std::string& path, std::string* content);

/// True if a file exists and is readable.
bool FileExists(const std::string& path);

}  // namespace oodgnn

#endif  // OODGNN_UTIL_FILE_H_
