#ifndef OODGNN_UTIL_CLOCK_H_
#define OODGNN_UTIL_CLOCK_H_

#include <cstdint>

#include "src/util/timer.h"

namespace oodgnn {

/// Injectable time source for everything in the serving path that
/// *decides* based on time: request-span stamps, SLO sliding windows,
/// token-bucket refills, and deadline expiry all read an abstract
/// Clock instead of calling NowMicros() directly. Production code uses
/// Clock::Real() (the same process-wide monotonic clock as the tracer
/// and journal, so timestamps stay comparable); tests inject a
/// FakeClock (tests/test_util.h) and advance it by hand, which makes
/// deadline expiry, quota refill, burn-rate breach and shed decisions
/// exactly reproducible without wall-clock sleeps.
///
/// Implementations must be thread-safe: the engine stamps spans from
/// submitter threads and reads deadlines from worker threads through
/// one shared instance.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds. Real time is monotonic; fake clocks
  /// may jump arbitrarily (consumers that need monotonicity clamp —
  /// see SloTracker).
  virtual std::int64_t NowMicros() const = 0;

  /// The process-wide monotonic clock (util/timer.h NowMicros).
  /// Never null; the returned instance lives for the process.
  static const Clock* Real();
};

namespace internal {

/// Clock::Real()'s implementation, exposed only so it can be
/// instantiated as a function-local static in the header.
class RealClock final : public Clock {
 public:
  std::int64_t NowMicros() const override { return ::oodgnn::NowMicros(); }
};

}  // namespace internal

inline const Clock* Clock::Real() {
  static const internal::RealClock clock;
  return &clock;
}

}  // namespace oodgnn

#endif  // OODGNN_UTIL_CLOCK_H_
