#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "src/util/check.h"

namespace oodgnn {

double Mean(const std::vector<double>& values) {
  OODGNN_CHECK(!values.empty());
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

std::string MeanStdString(const std::vector<double>& values, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", decimals, Mean(values),
                decimals, StdDev(values));
  return buf;
}

std::vector<double> Histogram::BinCenters() const {
  std::vector<double> centers(counts.size());
  double width = (hi - lo) / static_cast<double>(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    centers[i] = lo + (static_cast<double>(i) + 0.5) * width;
  }
  return centers;
}

Histogram MakeHistogram(const std::vector<double>& values, int bins,
                        double lo, double hi) {
  OODGNN_CHECK_GT(bins, 0);
  OODGNN_CHECK_LT(lo, hi);
  Histogram hist;
  hist.lo = lo;
  hist.hi = hi;
  hist.counts.assign(static_cast<size_t>(bins), 0);
  for (double v : values) {
    double t = (v - lo) / (hi - lo);
    int bin = static_cast<int>(t * bins);
    bin = std::clamp(bin, 0, bins - 1);
    ++hist.counts[static_cast<size_t>(bin)];
  }
  return hist;
}

Histogram MakeHistogram(const std::vector<double>& values, int bins) {
  OODGNN_CHECK(!values.empty());
  auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  double lo = *lo_it;
  double hi = *hi_it;
  if (hi - lo < 1e-12) hi = lo + 1.0;  // Degenerate range: widen.
  return MakeHistogram(values, bins, lo, hi);
}

std::string RenderHistogram(const Histogram& hist, int max_bar_width) {
  int max_count = 0;
  for (int c : hist.counts) max_count = std::max(max_count, c);
  std::ostringstream out;
  auto centers = hist.BinCenters();
  for (size_t i = 0; i < hist.counts.size(); ++i) {
    int bar = max_count == 0
                  ? 0
                  : hist.counts[i] * max_bar_width / max_count;
    char label[32];
    std::snprintf(label, sizeof(label), "%8.3f", centers[i]);
    out << label << " | " << std::string(static_cast<size_t>(bar), '#')
        << " " << hist.counts[i] << "\n";
  }
  return out.str();
}

}  // namespace oodgnn
