#include "src/util/thread_pool.h"

#include <algorithm>

namespace oodgnn {
namespace {

thread_local bool tls_in_worker = false;

/// Set while a thread owns a pool's dispatch lock, so its own chunk-0
/// callback re-entering ParallelFor runs inline instead of retrying the
/// lock it already holds.
thread_local bool tls_dispatching = false;

}  // namespace

bool ThreadPool::InWorker() { return tls_in_worker; }

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_in_worker = true;
  long seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::function<void(int, int)>* fn = job_;
    const int n = job_n_;
    lock.unlock();
    const auto [begin, end] = Chunk(n, num_threads_, worker_index);
    if (begin < end) (*fn)(begin, end);
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int, int)>& fn) {
  if (n <= 0) return;
  if (num_threads_ == 1 || tls_in_worker || tls_dispatching ||
      !dispatch_mu_.try_lock()) {
    // Serial pool, nested call, or the pool is already dispatching for
    // another thread: run the whole range inline. Same arithmetic,
    // same result — only the partition differs.
    fn(0, n);
    return;
  }
  tls_dispatching = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  const auto [begin, end] = Chunk(n, num_threads_, 0);
  if (begin < end) fn(begin, end);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  tls_dispatching = false;
  dispatch_mu_.unlock();
}

}  // namespace oodgnn
