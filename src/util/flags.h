#ifndef OODGNN_UTIL_FLAGS_H_
#define OODGNN_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace oodgnn {

/// Minimal command-line flag parser for the benchmark and example
/// binaries. Accepts "--name=value", "--name value" and boolean
/// "--name" forms; everything else is collected as a positional
/// argument.
class Flags {
 public:
  /// Parses argv. Aborts on a malformed flag (e.g. "--=x").
  Flags(int argc, char** argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  /// Typed getters returning `fallback` when the flag is absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int GetInt(const std::string& name, int fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  /// Worker-thread count for the compute backend: the `--threads` flag
  /// if given, else the OODGNN_THREADS environment variable, else
  /// `fallback`. Pass the result to SetBackendThreads()
  /// (src/tensor/backend.h); values <= 1 select the serial backend.
  int GetThreads(int fallback = 1) const;

  /// Compiled/arena execution toggle for no-grad forwards: the
  /// `--compiled` flag if given, else the OODGNN_COMPILED environment
  /// variable, else `fallback`. Pass the result to
  /// SetCompiledEnabled() (src/tensor/arena.h).
  bool GetCompiled(bool fallback = false) const;

  /// Metrics-exporter output prefix: the `--metrics-out` flag if
  /// given, else the OODGNN_METRICS_OUT environment variable, else
  /// `fallback` (empty means "exporter off"). Pass the result to
  /// obs::StartGlobalExporter (src/obs/exporter.h).
  std::string GetMetricsOut(const std::string& fallback = "") const;

  /// Exporter tick interval: the `--metrics-interval-ms` flag if
  /// given, else the OODGNN_METRICS_INTERVAL_MS environment variable,
  /// else `fallback`.
  int GetMetricsIntervalMs(int fallback = 1000) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace oodgnn

#endif  // OODGNN_UTIL_FLAGS_H_
